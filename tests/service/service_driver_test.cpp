// ServiceDriver: multiplexing many sessions over one ForkJoinPool,
// the quiescence barrier, the background pump, the metrics source, and
// one RunRecord with origin "service" per drained micro-batch. Includes
// the acceptance-scale smoke: >= 1000 concurrent sessions on one pool.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "forkjoin/pool.hpp"
#include "observe/config.hpp"
#include "observe/metrics.hpp"
#include "observe/run_registry.hpp"
#include "pls.hpp"

namespace {

namespace service = pls::service;
namespace streams = pls::streams;
using pls::stages::map;

TEST(ServiceDriver, MultiplexesOneThousandSessions) {
  constexpr std::size_t kSessions = 1000;
  constexpr int kPerSession = 64;
  constexpr std::size_t kWindow = 16;

  service::ServiceDriver driver;
  const auto spec = service::pipeline(map([](int v) { return v * 2; }))
                        .window(kWindow)
                        .collect(streams::collectors::summing<int>());

  std::vector<std::shared_ptr<service::SessionBase>> bases;
  std::vector<std::function<std::vector<int>()>> takers;
  std::vector<std::function<std::uint64_t()>> batch_counts;
  for (std::size_t s = 0; s < kSessions; ++s) {
    auto session = spec.open<int>(driver);
    for (int i = 0; i < kPerSession; ++i) session->offer(i);
    bases.push_back(session);
    takers.emplace_back([session] { return session->take_results(); });
    batch_counts.emplace_back([session] { return session->batches_run(); });
  }
  EXPECT_EQ(driver.session_count(), kSessions);

  driver.drain_all();

  // Every session: 64 inputs / window 16 = 4 windows, each summing
  // 2 * (16k .. 16k+15).
  for (std::size_t s = 0; s < kSessions; ++s) {
    const auto got = takers[s]();
    ASSERT_EQ(got.size(), kPerSession / kWindow) << "session " << s;
    for (std::size_t w = 0; w < got.size(); ++w) {
      int want = 0;
      for (std::size_t j = 0; j < kWindow; ++j) {
        want += 2 * static_cast<int>(w * kWindow + j);
      }
      EXPECT_EQ(got[w], want) << "session " << s << " window " << w;
    }
    EXPECT_GE(batch_counts[s](), 1u);
    EXPECT_EQ(bases[s]->queue_stats().depth, 0u);
  }
}

TEST(ServiceDriver, ConcurrentProducersWithExplicitPumps) {
  // Producers race offers from several threads while the main thread
  // pumps; drain_all() at the end is the quiescence barrier.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;

  pls::forkjoin::ForkJoinPool pool(4);
  service::ServiceDriver driver(&pool);
  auto session =
      service::pipeline()
          .window(1)
          .configure(streams::ExecutionConfig{}.with_queue_capacity(1 << 14))
          .collect(streams::collectors::counting<int>())
          .open<int>(driver);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&session] {
      for (int i = 0; i < kPerProducer; ++i) session->offer(i);
    });
  }
  for (int i = 0; i < 50; ++i) {
    driver.pump();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  for (auto& t : producers) t.join();
  driver.drain_all();

  const auto counts = session->take_results();
  EXPECT_EQ(counts.size(), kProducers * kPerProducer);  // window of 1
  for (const auto c : counts) EXPECT_EQ(c, 1u);
  EXPECT_EQ(session->queue_stats().shed, 0u);
}

TEST(ServiceDriver, BackgroundPumpDrainsWithoutExplicitCalls) {
  service::ServiceDriver driver;
  auto session = service::pipeline(map([](int v) { return v + 1; }))
                     .window(8)
                     .collect(streams::collectors::summing<int>())
                     .open<int>(driver);
  driver.start(std::chrono::milliseconds(1));
  for (int i = 0; i < 64; ++i) session->offer(i);

  // Poll for the pump to have serviced everything (bounded wait).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (session->queue_stats().depth > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  driver.stop();
  driver.drain_all();  // flush anything the last sweep left behind

  EXPECT_EQ(session->take_results().size(), 8u);  // 64 / window 8
  EXPECT_EQ(session->queue_stats().depth, 0u);
}

TEST(ServiceDriver, ExportsMetricsRows) {
  if (!pls::observe::kEnabled) GTEST_SKIP() << "PLS_OBSERVE=0";
  service::ServiceDriver driver;
  auto session = service::pipeline()
                     .window(2)
                     .collect(streams::collectors::counting<int>())
                     .open<int>(driver);
  for (int i = 0; i < 8; ++i) session->offer(i);
  driver.drain_all();
  session->offer(42);  // leave one element queued for the depth gauges

  const auto sample = pls::observe::MetricsRegistry::global().collect();
  double sessions = -1.0, depth_total = -1.0, batches = -1.0;
  bool latency_p50 = false, per_session_row = false;
  for (const auto& row : sample.rows) {
    if (row.name == "pls_service_sessions") sessions = row.value;
    if (row.name == "pls_service_queue_depth_total") depth_total = row.value;
    if (row.name == "pls_service_batches_total") batches = row.value;
    if (row.name == "pls_service_batch_latency_ns" &&
        row.label_value == "0.5") {
      latency_p50 = true;
    }
    if (row.name == "pls_service_queue_depth" && row.label_key == "session") {
      per_session_row = true;
    }
  }
  EXPECT_EQ(sessions, 1.0);
  EXPECT_EQ(depth_total, 1.0);
  EXPECT_GE(batches, 1.0);
  EXPECT_TRUE(latency_p50);
  EXPECT_TRUE(per_session_row);  // fleet of 1 < kPerSessionRowLimit
}

TEST(ServiceDriver, OneRunRecordPerDrainedBatch) {
  if (!pls::observe::kEnabled) GTEST_SKIP() << "PLS_OBSERVE=0";
  auto& registry = pls::observe::RunRegistry::global();
  const std::uint64_t before = registry.total();

  service::ServiceDriver driver;
  auto session = service::pipeline(map([](int v) { return v * 3; }))
                     .window(4)
                     .batch(8)
                     .collect(streams::collectors::summing<int>())
                     .open<int>(driver);
  for (int i = 0; i < 40; ++i) session->offer(i);
  driver.drain_all();

  const std::uint64_t batches = session->batches_run();
  EXPECT_GE(batches, 5u);  // 40 elements, micro-batches capped at 8

  std::uint64_t service_records = 0;
  for (const auto& rec : registry.records_since(before)) {
    if (rec.origin == "service") {
      ++service_records;
      EXPECT_TRUE(rec.fused);
      EXPECT_GT(rec.source_size, 0u);
      EXPECT_LE(rec.source_size, 8u);
    }
  }
  EXPECT_EQ(service_records, batches);
}

TEST(ServiceDriver, DriverDestructionQuiescesCleanly) {
  // A driver with queued work and a running pump must tear down without
  // leaks or races: stop, quiesce, deregister.
  for (int round = 0; round < 3; ++round) {
    service::ServiceDriver driver;
    auto session = service::pipeline()
                       .window(4)
                       .collect(streams::collectors::counting<int>())
                       .open<int>(driver);
    driver.start(std::chrono::milliseconds(1));
    for (int i = 0; i < 100; ++i) session->offer(i);
    driver.pump();
    // Destructor runs here with drains possibly in flight.
  }
}

}  // namespace
