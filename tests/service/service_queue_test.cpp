// IngestQueue watermark/overload semantics (docs/service.md):
//  - blocking policy: queue depth provably never exceeds the high
//    watermark, even under concurrent producers racing a slow drainer,
//    and nothing is ever shed;
//  - shed/sample policies: every offered element is accounted for
//    (offered == accepted + shed) and the drained elements are exactly
//    the accepted ones;
//  - drain shape: micro-batches are always powers of two.
#include "service/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace {

using pls::service::IngestQueue;
using pls::service::QueueStats;
using pls::streams::OverloadPolicy;

TEST(ServiceQueueTest, BlockingDepthNeverExceedsHighWatermark) {
  constexpr std::size_t kCapacity = 64;
  constexpr std::size_t kHigh = 32;
  constexpr std::size_t kLow = 8;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;

  IngestQueue<int> q(kCapacity, kHigh, kLow, OverloadPolicy::kBlock);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> observed_hwm{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.offer(p * kPerProducer + i));  // kBlock never sheds
      }
    });
  }

  // Slow drainer: let the producers pile into the watermark, then pull
  // small batches; sample the depth between batches.
  std::thread drainer([&] {
    std::vector<int> batch;
    std::uint64_t drained = 0;
    while (drained < kProducers * kPerProducer) {
      const std::size_t d = q.depth();
      std::size_t seen = observed_hwm.load();
      while (d > seen && !observed_hwm.compare_exchange_weak(seen, d)) {
      }
      drained += q.drain_batch(batch, 16);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    done.store(true);
  });

  for (auto& t : producers) t.join();
  drainer.join();
  ASSERT_TRUE(done.load());

  const QueueStats s = q.stats();
  EXPECT_EQ(s.offered, kProducers * kPerProducer);
  EXPECT_EQ(s.accepted, s.offered);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.drained, s.accepted);
  EXPECT_EQ(s.depth, 0u);
  // The property under test: blocking flow control bounds the depth.
  EXPECT_LE(s.depth_hwm, kHigh);
  EXPECT_LE(observed_hwm.load(), kHigh);
}

TEST(ServiceQueueTest, ShedAccountsForEveryDroppedElement) {
  constexpr std::size_t kHigh = 16;
  IngestQueue<int> q(64, kHigh, 4, OverloadPolicy::kShed);

  constexpr int kOffers = 1000;
  for (int i = 0; i < kOffers; ++i) q.offer(i);

  QueueStats s = q.stats();
  EXPECT_EQ(s.offered, kOffers);
  EXPECT_EQ(s.accepted + s.shed, s.offered);  // the accounting invariant
  EXPECT_EQ(s.depth, s.accepted);             // nothing drained yet
  EXPECT_LE(s.depth_hwm, kHigh);              // shedding starts at high
  EXPECT_TRUE(s.congested);

  // Drain everything: the drained elements are exactly the accepted ones.
  std::vector<int> batch;
  std::uint64_t drained = 0;
  while (std::size_t n = q.drain_batch(batch, 64)) drained += n;
  s = q.stats();
  EXPECT_EQ(drained, s.accepted);
  EXPECT_EQ(s.drained, s.accepted);
  EXPECT_EQ(s.depth, 0u);
  EXPECT_FALSE(s.congested);
}

TEST(ServiceQueueTest, ShedHysteresisClearsAtLowWatermark) {
  constexpr std::size_t kHigh = 16;
  constexpr std::size_t kLow = 4;
  IngestQueue<int> q(64, kHigh, kLow, OverloadPolicy::kShed);

  for (std::size_t i = 0; i < kHigh; ++i) EXPECT_TRUE(q.offer(int(i)));
  EXPECT_TRUE(q.stats().congested);
  EXPECT_FALSE(q.offer(99));  // congested: shed

  // One batch of 8 leaves depth 8 > low: still congested, still shedding.
  std::vector<int> batch;
  EXPECT_EQ(q.drain_batch(batch, 8), 8u);
  EXPECT_TRUE(q.stats().congested);
  EXPECT_FALSE(q.offer(99));

  // Draining to the low mark clears congestion; offers flow again.
  EXPECT_EQ(q.drain_batch(batch, 4), 4u);
  EXPECT_FALSE(q.stats().congested);
  EXPECT_TRUE(q.offer(100));
}

TEST(ServiceQueueTest, SampleKeepsEveryStrideThOfferWhileCongested) {
  constexpr std::size_t kHigh = 16;
  IngestQueue<int> q(256, kHigh, 4, OverloadPolicy::kSample);

  constexpr int kOffers = 1000;
  std::uint64_t accepted_true = 0;
  for (int i = 0; i < kOffers; ++i) {
    if (q.offer(i)) ++accepted_true;
  }

  const QueueStats s = q.stats();
  EXPECT_EQ(s.offered, kOffers);
  EXPECT_EQ(s.accepted + s.shed, s.offered);
  EXPECT_EQ(s.accepted, accepted_true);
  // Sampling keeps elements past the high mark (unlike shed)...
  EXPECT_GT(s.accepted, kHigh);
  // ...at exactly the deterministic 1-in-stride decimation.
  const std::uint64_t congested_offers = kOffers - kHigh;
  const std::uint64_t expected_kept =
      (congested_offers + IngestQueue<int>::kSampleStride - 1) /
      IngestQueue<int>::kSampleStride;
  EXPECT_EQ(s.accepted, kHigh + expected_kept);
}

TEST(ServiceQueueTest, DrainBatchesArePowersOfTwo) {
  IngestQueue<int> q(256, 256, 16, OverloadPolicy::kBlock);
  for (int i = 0; i < 100; ++i) q.offer(i);

  std::vector<int> batch;
  std::vector<int> all;
  std::vector<std::size_t> sizes;
  while (std::size_t n = q.drain_batch(batch, 64)) {
    EXPECT_EQ(n & (n - 1), 0u) << "batch of " << n << " is not a power of two";
    EXPECT_EQ(batch.size(), n);
    all.insert(all.end(), batch.begin(), batch.end());
    sizes.push_back(n);
  }
  // 100 = 64 + 32 + 4: max-capped, then floor-pow2 of the remainders.
  EXPECT_EQ(sizes, (std::vector<std::size_t>{64, 32, 4}));
  // FIFO order is preserved across batches.
  std::vector<int> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(all, expected);
}

TEST(ServiceQueueTest, WatermarkValidation) {
  EXPECT_THROW((IngestQueue<int>(0, 1, 1, OverloadPolicy::kBlock)),
               pls::precondition_error);
  EXPECT_THROW((IngestQueue<int>(8, 16, 1, OverloadPolicy::kBlock)),
               pls::precondition_error);
  EXPECT_THROW((IngestQueue<int>(8, 4, 6, OverloadPolicy::kBlock)),
               pls::precondition_error);
}

}  // namespace
