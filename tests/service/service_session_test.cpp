// The differential suite for the service layer (ISSUE acceptance): a
// session fed interleaved micro-batches must produce byte-identical
// window results to the equivalent one-shot batch pipeline, because
// WindowSink's windows are element-count based and deliberately span
// batch boundaries. Also pins the FusedPipeline reuse contract
// (reset()/ReusableSource, single-drive chains) and the ExecutionConfig
// service-knob round-trip through pls::session::stream_config().
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "pls.hpp"
#include "streams/spliterators.hpp"

namespace {

namespace service = pls::service;
namespace streams = pls::streams;
using pls::stages::filter;
using pls::stages::map;

std::vector<double> noisy_doubles(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Deterministic, irregular, not bit-friendly: exercises real fp folds.
    v[i] = std::sin(static_cast<double>(i) * 0.7) * 100.0 +
           static_cast<double>(i % 13) * 0.037;
  }
  return v;
}

/// The reference side of the differential: fold `collector` over each
/// count window of the pre-computed chain outputs, oldest first — the
/// exact emission rule WindowSink implements.
template <typename C, typename T>
std::vector<typename C::result_type> reference_windows(
    const C& collector, const std::vector<T>& outs, std::size_t window,
    std::size_t slide) {
  std::vector<typename C::result_type> res;
  if (outs.size() < window) return res;
  for (std::size_t start = 0; start + window <= outs.size(); start += slide) {
    auto acc = collector.supply();
    for (std::size_t j = 0; j < window; ++j) {
      collector.accumulate(acc, outs[start + j]);
    }
    res.push_back(collector.finish(std::move(acc)));
  }
  return res;
}

void expect_bit_identical(const std::vector<double>& got,
                          const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                           got.size() * sizeof(double)))
      << "window results differ bitwise from the one-shot batch reference";
}

TEST(ServiceSession, TumblingWindowsMatchOneShotBatchBitwise) {
  const auto input = noisy_doubles(1000);
  const auto xf = [](double v) { return v * 1.5 + 0.25; };
  const auto keep = [](double v) { return v > -40.0; };
  constexpr std::size_t kWindow = 32;

  // One-shot batch side: the same stage vocabulary through pls::pipe,
  // then the reference window fold.
  const auto chain_out =
      pls::pipe(map(xf), filter(keep)).over(input).to_vector();
  const auto expected = reference_windows(
      streams::collectors::summing<double>(), chain_out, kWindow, kWindow);
  ASSERT_GT(expected.size(), 10u);  // the test must actually exercise windows

  // Service side: same stages, same collector, fed in deliberately
  // irregular micro-batches with drains interleaved mid-stream.
  service::ServiceDriver driver;
  auto session = service::pipeline(map(xf), filter(keep))
                     .window(kWindow)
                     .collect(streams::collectors::summing<double>())
                     .open<double>(driver);

  std::vector<double> got;
  std::size_t offered = 0;
  std::size_t chunk = 1;
  while (offered < input.size()) {
    const std::size_t n = std::min(chunk, input.size() - offered);
    EXPECT_EQ(session->offer_all(input.data() + offered, n), n);
    offered += n;
    session->drain(/*drain_all=*/true);  // results must not depend on this
    auto part = session->take_results();
    got.insert(got.end(), part.begin(), part.end());
    chunk = chunk % 2 == 0 ? chunk + 3 : chunk * 2;  // 1,2,5,10,13,26,...
  }
  EXPECT_GT(session->batches_run(), 1u);

  expect_bit_identical(got, expected);
}

TEST(ServiceSession, SlidingWindowsMatchOneShotBatch) {
  const auto input = noisy_doubles(400);
  const auto xf = [](double v) { return v * 0.5; };
  constexpr std::size_t kWindow = 32;
  constexpr std::size_t kSlide = 8;

  const auto chain_out = pls::pipe(map(xf)).over(input).to_vector();
  // to_vector collector: compares whole window contents, the strongest
  // equality there is — every element, every overlap, in order.
  const auto expected = reference_windows(
      streams::collectors::to_vector<double>(), chain_out, kWindow, kSlide);
  ASSERT_GT(expected.size(), 20u);

  service::ServiceDriver driver;
  auto session = service::pipeline(map(xf))
                     .window(kWindow, kSlide)
                     .batch(16)
                     .collect(streams::collectors::to_vector<double>())
                     .open<double>(driver);

  for (std::size_t i = 0; i < input.size(); i += 7) {
    const std::size_t n = std::min<std::size_t>(7, input.size() - i);
    session->offer_all(input.data() + i, n);
    if (i % 3 == 0) session->drain(true);  // drain at arbitrary points
  }
  session->drain(true);

  const auto got = session->take_results();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t w = 0; w < got.size(); ++w) {
    expect_bit_identical(got[w], expected[w]);
  }
}

TEST(ServiceSession, IdentityPipelineWindowsAreInputChunks) {
  // Zero stage ops: the session still fuses (bare BatchSpliterator) and
  // windows chunk the raw input.
  service::ServiceDriver driver;
  auto session = service::pipeline()
                     .window(4)
                     .collect(streams::collectors::to_vector<int>())
                     .open<int>(driver);
  for (int i = 0; i < 12; ++i) session->offer(i);
  session->drain(true);
  const auto got = session->take_results();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(got[1], (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(got[2], (std::vector<int>{8, 9, 10, 11}));
}

TEST(ServiceSession, BatchSlicingDoesNotAffectResults) {
  // Two sessions from one spec: element-at-a-time drains vs one big
  // drain. Window results must be identical — the core service claim.
  const auto input = noisy_doubles(256);
  const auto spec = service::pipeline(map([](double v) { return v * v; }))
                        .window(16)
                        .collect(streams::collectors::summing<double>());

  service::ServiceDriver driver;
  auto fine = spec.open<double>(driver);
  auto coarse = spec.open<double>(driver);
  EXPECT_NE(fine->id(), coarse->id());

  for (const double v : input) {
    fine->offer(v);
    fine->drain(true);  // every batch is a single element
  }
  coarse->offer_all(input.data(), input.size());
  coarse->drain(true);

  const auto a = fine->take_results();
  const auto b = coarse->take_results();
  expect_bit_identical(a, b);
  EXPECT_GT(fine->batches_run(), coarse->batches_run());
}

TEST(ServiceSession, PlanIsServiceOriginAndFused) {
  service::ServiceDriver driver;
  auto session = service::pipeline(map([](int v) { return v + 1; }))
                     .window(8)
                     .collect(streams::collectors::counting<int>())
                     .open<int>(driver);
  const streams::ExecutionPlan& p = session->plan();
  EXPECT_EQ(p.origin, streams::PlanOrigin::kService);
  EXPECT_TRUE(p.fused);
}

TEST(ServiceSession, CollectWithoutWindowThrows) {
  EXPECT_THROW(service::pipeline(map([](int v) { return v; }))
                   .collect(streams::collectors::counting<int>()),
               pls::precondition_error);
}

TEST(ServiceSession, ConfiguredQueuePolicyIsLive) {
  // The spec's ExecutionConfig really configures the session's queue:
  // a tiny shed queue drops over-offers and counts them.
  service::ServiceDriver driver;
  auto session =
      service::pipeline()
          .window(4)
          .configure(streams::ExecutionConfig{}
                         .with_queue_capacity(32)
                         .with_watermarks(/*high=*/8, /*low=*/2)
                         .with_overload_policy(streams::OverloadPolicy::kShed))
          .collect(streams::collectors::to_vector<int>())
          .open<int>(driver);
  for (int i = 0; i < 100; ++i) session->offer(i);
  const auto s = session->queue_stats();
  EXPECT_EQ(s.offered, 100u);
  EXPECT_EQ(s.accepted, 8u);  // shedding starts at the high mark
  EXPECT_EQ(s.accepted + s.shed, s.offered);
  session->drain(true);
  EXPECT_EQ(session->take_results().size(), 2u);  // 8 accepted / window 4
}

// ---- FusedPipeline reuse contract (satellite fix) ---------------------

template <typename T>
class VecSink final : public streams::Sink<T> {
 public:
  void begin(std::uint64_t) override {}
  void end() override {}
  void accept(const T& v) override { out.push_back(v); }
  std::vector<T> out;
};

TEST(FusedPipelineReuse, SecondDriveWithoutResetThrows) {
  auto data = std::make_shared<const std::vector<long>>(
      std::vector<long>{1, 2, 3, 4});
  std::unique_ptr<streams::Spliterator<long>> sp =
      std::make_unique<streams::ArraySpliterator<long>>(data);
  auto fused = streams::fuse_source<long>(sp);
  ASSERT_NE(fused, nullptr);

  VecSink<long> sink;
  fused->drive(sink);
  EXPECT_EQ(sink.out, (std::vector<long>{1, 2, 3, 4}));
  EXPECT_THROW(fused->drive(sink), pls::precondition_error);
}

TEST(FusedPipelineReuse, ResetRequiresReusableSource) {
  auto data =
      std::make_shared<const std::vector<long>>(std::vector<long>{1, 2});
  std::unique_ptr<streams::Spliterator<long>> sp =
      std::make_unique<streams::ArraySpliterator<long>>(data);
  auto fused = streams::fuse_source<long>(sp);
  ASSERT_NE(fused, nullptr);
  VecSink<long> sink;
  fused->drive(sink);
  // ArraySpliterator is not a ReusableSource: reset must refuse, not
  // silently replay a consumed source.
  EXPECT_THROW(fused->reset(), pls::precondition_error);
}

TEST(FusedPipelineReuse, CancellingChainIsSingleDrive) {
  auto data = std::make_shared<const std::vector<long>>(
      std::vector<long>{1, 2, 3, 4, 5, 6, 7, 8});
  std::unique_ptr<streams::Spliterator<long>> sp =
      std::make_unique<streams::ArraySpliterator<long>>(data);
  auto fused = streams::fuse_source<long>(sp);
  ASSERT_NE(fused, nullptr);
  fused->append_stage(
      std::make_shared<streams::SliceStage<long>>(/*skip=*/0, /*limit=*/3));
  ASSERT_TRUE(fused->cancels());
  // A short-circuited chain consumed an unknowable prefix of its source:
  // reset is refused even before any drive.
  EXPECT_THROW(fused->reset(), pls::precondition_error);
}

TEST(FusedPipelineReuse, BatchSpliteratorResetReplaysAndRebinds) {
  auto owned = std::make_unique<service::BatchSpliterator<long>>();
  auto* src = owned.get();
  std::unique_ptr<streams::Spliterator<long>> sp = std::move(owned);
  auto fused = streams::fuse_source<long>(sp);
  ASSERT_NE(fused, nullptr);

  const std::vector<long> first{10, 20, 30};
  const std::vector<long> second{7, 8};

  VecSink<long> sink;
  src->bind(first.data(), first.size());
  fused->drive(sink);
  fused->reset();
  src->bind(second.data(), second.size());
  fused->drive(sink);
  EXPECT_EQ(sink.out, (std::vector<long>{10, 20, 30, 7, 8}));

  // rearm() without rebinding replays the same span.
  fused->reset();
  VecSink<long> replay;
  fused->drive(replay);
  EXPECT_EQ(replay.out, second);
}

// ---- ExecutionConfig service knobs ------------------------------------

TEST(ServiceConfig, KnobsRoundTripThroughSessionStreamConfig) {
  pls::config cfg;
  cfg.queue_capacity = 512;
  cfg.high_watermark = 128;
  cfg.low_watermark = 16;
  cfg.overload = streams::OverloadPolicy::kSample;
  pls::run(cfg, [&](pls::session& s) {
    const auto ec = s.stream_config();
    EXPECT_EQ(ec.queue_capacity, 512u);
    EXPECT_EQ(ec.high_watermark, 128u);
    EXPECT_EQ(ec.low_watermark, 16u);
    EXPECT_EQ(ec.overload, streams::OverloadPolicy::kSample);
    EXPECT_EQ(ec.effective_high_watermark(), 128u);
    EXPECT_EQ(ec.effective_low_watermark(), 16u);
  });
}

TEST(ServiceConfig, EffectiveWatermarkDefaults) {
  streams::ExecutionConfig ec;
  // Unset marks derive from capacity: high = capacity, low = high / 2.
  EXPECT_EQ(ec.effective_high_watermark(), ec.queue_capacity);
  EXPECT_EQ(ec.effective_low_watermark(), ec.queue_capacity / 2);

  const auto tuned = streams::ExecutionConfig{}
                         .with_queue_capacity(64)
                         .with_watermarks(48)
                         .with_overload_policy(streams::OverloadPolicy::kShed);
  EXPECT_EQ(tuned.effective_high_watermark(), 48u);
  EXPECT_EQ(tuned.effective_low_watermark(), 24u);  // high / 2 when unset
  EXPECT_EQ(tuned.overload, streams::OverloadPolicy::kShed);

  // Out-of-range marks are precondition errors at use.
  EXPECT_THROW(streams::ExecutionConfig{}
                   .with_queue_capacity(8)
                   .with_watermarks(16)
                   .effective_high_watermark(),
               pls::precondition_error);
}

TEST(ServiceConfig, OverloadPolicyNames) {
  EXPECT_STREQ(streams::overload_policy_name(streams::OverloadPolicy::kBlock),
               "block");
  EXPECT_STREQ(streams::overload_policy_name(streams::OverloadPolicy::kShed),
               "shed");
  EXPECT_STREQ(streams::overload_policy_name(streams::OverloadPolicy::kSample),
               "sample");
}

}  // namespace
