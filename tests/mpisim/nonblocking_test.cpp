// Non-blocking receive handles and probing.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "mpisim/communicator.hpp"

namespace {

using namespace pls::mpisim;

TEST(Nonblocking, ProbeSeesPendingMessage) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 3, 42);
      comm.send(1, 9, 43);  // completion signal
    } else {
      // Wait until something with tag 9 arrived; by then tag 3 is also
      // there (FIFO per channel on the same mailbox).
      (void)comm.recv<int>(0, 9);
      EXPECT_TRUE(comm.probe(0, 3));
      EXPECT_FALSE(comm.probe(0, 77));
      EXPECT_EQ(comm.recv<int>(0, 3), 42);
      EXPECT_FALSE(comm.probe(0, 3));
    }
  });
}

TEST(Nonblocking, IrecvWaitDeliversValue) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, std::string("deferred"));
    } else {
      auto req = comm.irecv<std::string>(0, 5);
      EXPECT_EQ(req.wait(), "deferred");
    }
  });
}

TEST(Nonblocking, IrecvReadyTracksArrival) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      (void)comm.recv<int>(1, 1);  // rank 1 signals readiness first
      comm.send(1, 2, 99);
    } else {
      auto req = comm.irecv<int>(0, 2);
      EXPECT_FALSE(req.ready());  // nothing sent yet
      comm.send(0, 1, 0);         // unblock rank 0
      while (!req.ready()) {
        std::this_thread::yield();
      }
      EXPECT_EQ(req.wait(), 99);
    }
  });
}

TEST(Nonblocking, OverlapComputeWithPendingRecv) {
  // The classic pattern: post the receive, compute, then wait.
  World world(2);
  const auto stats = world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, 7);
    } else {
      auto req = comm.irecv<int>(0, 0);
      comm.charge_compute(5000.0);  // overlapped work
      EXPECT_EQ(req.wait(), 7);
    }
  });
  // The receiver's clock is dominated by its own compute, not the
  // message latency (which overlapped).
  EXPECT_GE(stats[1].clock_ns, 5000.0);
}

TEST(Nonblocking, InvalidSourceRejected) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 0) (void)comm.irecv<int>(0, 0);  // self
  }),
               pls::precondition_error);
}

}  // namespace
