#include "mpisim/collectives.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using namespace pls::mpisim;

class CollectivesSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesSweep, BroadcastReachesAllRanks) {
  World world(GetParam());
  world.run([](Comm& comm) {
    const int value = comm.rank() == 2 % comm.size() ? 77 : -1;
    const int got = broadcast(comm, value, 2 % comm.size());
    EXPECT_EQ(got, 77);
  });
}

TEST_P(CollectivesSweep, ReduceSumsAtRoot) {
  World world(GetParam());
  world.run([](Comm& comm) {
    const int got = reduce(comm, comm.rank() + 1, std::plus<int>{}, 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(got, comm.size() * (comm.size() + 1) / 2);
    }
  });
}

TEST_P(CollectivesSweep, GatherCollectsInRankOrder) {
  World world(GetParam());
  world.run([](Comm& comm) {
    const auto all = gather(comm, comm.rank() * 10, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(comm.size()));
      for (int r = 0; r < comm.size(); ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 10);
      }
    }
  });
}

TEST_P(CollectivesSweep, ScatterDeliversOwnPart) {
  World world(GetParam());
  world.run([](Comm& comm) {
    std::vector<std::string> parts;
    if (comm.rank() == 0) {
      for (int r = 0; r < comm.size(); ++r) {
        parts.push_back("part-" + std::to_string(r));
      }
    }
    const auto mine = scatter(comm, std::move(parts), 0);
    EXPECT_EQ(mine, "part-" + std::to_string(comm.rank()));
  });
}

TEST_P(CollectivesSweep, AllgatherEverywhere) {
  World world(GetParam());
  world.run([](Comm& comm) {
    const auto all = allgather(comm, comm.rank() + 100);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r + 100);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectivesSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

TEST(Collectives, AllreducePowerOfTwoRanks) {
  for (int p : {1, 2, 4, 8}) {
    World world(p);
    world.run([](Comm& comm) {
      const int got = allreduce(comm, comm.rank() + 1, std::plus<int>{});
      EXPECT_EQ(got, comm.size() * (comm.size() + 1) / 2);
    });
  }
}

TEST(Collectives, AllreduceNonCommutativeKeepsRankOrder) {
  World world(8);
  world.run([](Comm& comm) {
    const auto got = allreduce(comm, std::to_string(comm.rank()),
                               std::plus<std::string>{});
    EXPECT_EQ(got, "01234567");
  });
}

TEST(Collectives, BroadcastFromNonZeroRoot) {
  World world(6);
  world.run([](Comm& comm) {
    const int got = broadcast(comm, comm.rank() == 4 ? 99 : 0, 4);
    EXPECT_EQ(got, 99);
  });
}

TEST(Collectives, ReduceNonCommutativeKeepsRankOrder) {
  World world(7);
  world.run([](Comm& comm) {
    const auto got = reduce(comm, std::to_string(comm.rank()),
                            std::plus<std::string>{}, 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(got, "0123456");
    }
  });
}

TEST_P(CollectivesSweep, InclusiveScanPrefix) {
  World world(GetParam());
  world.run([](Comm& comm) {
    const int got = scan(comm, comm.rank() + 1, std::plus<int>{});
    const int r = comm.rank();
    EXPECT_EQ(got, (r + 1) * (r + 2) / 2);
  });
}

TEST_P(CollectivesSweep, ExclusiveScanPrefix) {
  World world(GetParam());
  world.run([](Comm& comm) {
    const int got = exscan(comm, comm.rank() + 1, std::plus<int>{}, 0);
    const int r = comm.rank();
    EXPECT_EQ(got, r * (r + 1) / 2);
  });
}

TEST(Collectives, ScanNonCommutativeKeepsRankOrder) {
  World world(8);
  world.run([](Comm& comm) {
    const auto got = scan(comm, std::to_string(comm.rank()),
                          std::plus<std::string>{});
    std::string expected;
    for (int r = 0; r <= comm.rank(); ++r) expected += std::to_string(r);
    EXPECT_EQ(got, expected);
  });
}

TEST(Collectives, BroadcastChargesCommunicationTime) {
  World world(4);
  const auto stats = world.run([](Comm& comm) {
    (void)broadcast(comm, 1234, 0);
  });
  EXPECT_GT(world.simulated_time_ns(), 0.0);
  // Leaf ranks received at least one message worth of latency.
  EXPECT_GT(stats[3].clock_ns, 0.0);
}

}  // namespace
