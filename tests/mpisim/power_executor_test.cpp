#include "mpisim/power_executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "powerlist/algorithms/polynomial.hpp"
#include "support/rng.hpp"

namespace {

using namespace pls::mpisim;

TEST(LocalPart, BlockDistribution) {
  const std::vector<int> full{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(local_part(full, 0, 4, Distribution::kBlock),
            (std::vector<int>{0, 1}));
  EXPECT_EQ(local_part(full, 3, 4, Distribution::kBlock),
            (std::vector<int>{6, 7}));
}

TEST(LocalPart, CyclicDistribution) {
  const std::vector<int> full{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(local_part(full, 0, 4, Distribution::kCyclic),
            (std::vector<int>{0, 4}));
  EXPECT_EQ(local_part(full, 3, 4, Distribution::kCyclic),
            (std::vector<int>{3, 7}));
}

TEST(LocalPart, PartsPartitionTheList) {
  std::vector<int> full(32);
  std::iota(full.begin(), full.end(), 0);
  for (auto dist : {Distribution::kBlock, Distribution::kCyclic}) {
    std::vector<int> seen;
    for (int r = 0; r < 8; ++r) {
      for (int v : local_part(full, r, 8, dist)) seen.push_back(v);
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, full);
  }
}

TEST(LocalPart, RejectsNonPowerOfTwoRanks) {
  const std::vector<int> full{1, 2, 3, 4, 5, 6};
  EXPECT_THROW(local_part(full, 0, 3, Distribution::kBlock),
               pls::precondition_error);
}

TEST(HypercubeCombine, NonCommutativeOrderAcrossLevels) {
  // Concatenation with level tags shows both the ordering and the
  // deepest-level-first schedule.
  World world(4);
  world.run([](Comm& comm) {
    const auto result = hypercube_allcombine(
        comm, std::to_string(comm.rank()),
        [](unsigned level, std::string low, std::string high) {
          return "(" + low + "+" + high + ")@" + std::to_string(level);
        });
    // Level 1 joins ranks differing in bit 1 -> (0+2), (1+3); level 0
    // joins the results -> ((0+2)@1 + (1+3)@1)@0.
    EXPECT_EQ(result, "((0+2)@1+(1+3)@1)@0");
  });
}

class MpiReduceSweep : public ::testing::TestWithParam<int> {};

TEST_P(MpiReduceSweep, SumMatchesSequentialBothDistributions) {
  std::vector<long> data(256);
  std::iota(data.begin(), data.end(), 1);
  const long expected = 256 * 257 / 2;
  for (auto dist : {Distribution::kBlock, Distribution::kCyclic}) {
    World world(GetParam());
    world.run([&](Comm& comm) {
      EXPECT_EQ(mpi_reduce(comm, data, std::plus<long>{}, dist), expected);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MpiReduceSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(MpiReduce, BlockDistributionNonCommutative) {
  // Block distribution keeps encounter order, so string concatenation
  // must reproduce the sequential fold.
  std::vector<std::string> data;
  for (int i = 0; i < 16; ++i) data.push_back(std::to_string(i % 10));
  std::string expected;
  for (const auto& s : data) expected += s;
  World world(4);
  world.run([&](Comm& comm) {
    EXPECT_EQ(
        mpi_reduce(comm, data, std::plus<std::string>{}, Distribution::kBlock),
        expected);
  });
}

class MpiPolynomialSweep : public ::testing::TestWithParam<int> {};

TEST_P(MpiPolynomialSweep, MatchesHornerAscending) {
  pls::Xoshiro256 rng(42);
  std::vector<double> coeffs(512);
  for (auto& c : coeffs) c = rng.next_double() * 2.0 - 1.0;
  const double x = 0.9876;
  const double expected = pls::powerlist::horner_ascending(
      pls::powerlist::view_of(coeffs), x);
  World world(GetParam());
  world.run([&](Comm& comm) {
    EXPECT_NEAR(mpi_polynomial_eval(comm, coeffs, x), expected, 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MpiPolynomialSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(MpiPolynomial, DeltaCoefficientProbe) {
  // coeffs = delta at k: value must be x^k whatever the rank count.
  const double x = 1.05;
  for (std::size_t k : {0u, 1u, 7u, 12u}) {
    std::vector<double> coeffs(16, 0.0);
    coeffs[k] = 1.0;
    World world(8);
    world.run([&](Comm& comm) {
      EXPECT_NEAR(mpi_polynomial_eval(comm, coeffs, x),
                  std::pow(x, static_cast<double>(k)), 1e-12)
          << "k=" << k;
    });
  }
}

TEST(MpiPolynomial, SimulatedTimeShrinksWithMoreRanks) {
  // Large polynomial, default network: compute dominates, so the
  // simulated completion time must drop as ranks are added.
  std::vector<double> coeffs(1u << 14, 0.5);
  const double x = 0.999;
  double prev = 0.0;
  for (int p : {1, 2, 4, 8}) {
    World world(p);
    world.run([&](Comm& comm) {
      (void)mpi_polynomial_eval(comm, coeffs, x, /*ns_per_op=*/3.0);
    });
    const double t = world.simulated_time_ns();
    if (p > 1) {
      EXPECT_LT(t, prev) << "p=" << p;
    }
    prev = t;
  }
}

class MpiMapSweep : public ::testing::TestWithParam<int> {};

TEST_P(MpiMapSweep, RootGetsFullMappedList) {
  std::vector<int> data(120);
  std::iota(data.begin(), data.end(), 0);
  World world(GetParam());
  world.run([&](Comm& comm) {
    const auto out = mpi_map<int, int>(comm, data,
                                       [](const int& v) { return v * v; });
    if (comm.rank() == 0) {
      ASSERT_EQ(out.size(), data.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_EQ(out[i], data[i] * data[i]);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MpiMapSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

class MpiFftSweep : public ::testing::TestWithParam<int> {};

TEST_P(MpiFftSweep, MatchesSingleNodeFft) {
  pls::Xoshiro256 rng(77);
  std::vector<pls::powerlist::Complex> signal;
  for (int i = 0; i < 256; ++i) {
    signal.emplace_back(rng.next_double() - 0.5, rng.next_double() - 0.5);
  }
  auto reference = signal;
  pls::powerlist::fft_in_place(reference);
  World world(GetParam());
  world.run([&](Comm& comm) {
    const auto spectrum = mpi_fft(comm, signal);
    ASSERT_EQ(spectrum.size(), reference.size());
    for (std::size_t i = 0; i < spectrum.size(); ++i) {
      EXPECT_NEAR(std::abs(spectrum[i] - reference[i]), 0.0, 1e-8)
          << "bin " << i << " ranks " << comm.size();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MpiFftSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

class MpiScanSweep : public ::testing::TestWithParam<int> {};

TEST_P(MpiScanSweep, DistributedScanMatchesSequential) {
  std::vector<long> data(256);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<long>((i * 31) % 17) - 8;
  }
  std::vector<long> expected(data.size());
  std::partial_sum(data.begin(), data.end(), expected.begin());
  World world(GetParam());
  world.run([&](Comm& comm) {
    const auto local =
        mpi_scan_list(comm, data, std::plus<long>{}, 0L);
    const std::size_t part = data.size() / static_cast<std::size_t>(comm.size());
    const std::size_t lo = part * static_cast<std::size_t>(comm.rank());
    ASSERT_EQ(local.size(), part);
    for (std::size_t i = 0; i < part; ++i) {
      EXPECT_EQ(local[i], expected[lo + i]) << "rank " << comm.rank();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MpiScanSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(MpiScan, NonCommutativeOperator) {
  std::vector<std::string> data;
  for (int i = 0; i < 16; ++i) data.push_back(std::string(1, 'a' + i % 26));
  World world(4);
  world.run([&](Comm& comm) {
    const auto local = mpi_scan_list(comm, data, std::plus<std::string>{},
                                     std::string{});
    // Last rank's last element is the full concatenation.
    if (comm.rank() == comm.size() - 1) {
      std::string full;
      for (const auto& s : data) full += s;
      EXPECT_EQ(local.back(), full);
    }
  });
}

TEST(MpiFft, DeltaSignalFlatSpectrumAcrossRanks) {
  std::vector<pls::powerlist::Complex> delta(64, {0.0, 0.0});
  delta[0] = {1.0, 0.0};
  World world(8);
  world.run([&](Comm& comm) {
    const auto spectrum = mpi_fft(comm, delta);
    for (const auto& c : spectrum) {
      EXPECT_NEAR(c.real(), 1.0, 1e-9);
      EXPECT_NEAR(c.imag(), 0.0, 1e-9);
    }
  });
}

TEST(MpiPolynomial, CommunicationIsChargedOnMultiRankRuns) {
  std::vector<double> coeffs(64, 1.0);
  World world(4);
  const auto stats = world.run([&](Comm& comm) {
    (void)mpi_polynomial_eval(comm, coeffs, 0.5);
  });
  for (const auto& s : stats) {
    EXPECT_GT(s.comm_ns, 0.0);
    EXPECT_GT(s.compute_ns, 0.0);
    EXPECT_EQ(s.messages, 2u);  // one exchange per hypercube dimension
  }
}

}  // namespace
