#include "mpisim/communicator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

namespace {

using pls::mpisim::Comm;
using pls::mpisim::NetworkModel;
using pls::mpisim::World;

TEST(World, SingleRankRuns) {
  World world(1);
  int visits = 0;
  world.run([&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(World, AllRanksRunOnce) {
  World world(5);
  std::vector<std::atomic<int>> visits(5);
  for (auto& v : visits) v.store(0);
  world.run([&](Comm& comm) { visits[comm.rank()].fetch_add(1); });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(World, PingPong) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, 42);
      EXPECT_EQ(comm.recv<int>(1, 8), 43);
    } else {
      EXPECT_EQ(comm.recv<int>(0, 7), 42);
      comm.send(0, 8, 43);
    }
  });
}

TEST(World, VectorPayload) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> v{1.0, 2.5, 3.0};
      comm.send(1, 0, v);
    } else {
      const auto v = comm.recv<std::vector<double>>(0, 0);
      EXPECT_EQ(v, (std::vector<double>{1.0, 2.5, 3.0}));
    }
  });
}

TEST(World, TagMatchingOutOfOrder) {
  // Receiver asks for tag 2 first although tag 1 was sent first.
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::string("first"));
      comm.send(1, 2, std::string("second"));
    } else {
      EXPECT_EQ(comm.recv<std::string>(0, 2), "second");
      EXPECT_EQ(comm.recv<std::string>(0, 1), "first");
    }
  });
}

TEST(World, FifoOrderWithinTag) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send(1, 0, i);
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(comm.recv<int>(0, 0), i);
    }
  });
}

TEST(World, ExchangeIsDeadlockFree) {
  World world(2);
  world.run([](Comm& comm) {
    const int peer = 1 - comm.rank();
    const int got = comm.exchange(peer, 5, comm.rank() * 100);
    EXPECT_EQ(got, peer * 100);
  });
}

TEST(World, WrongPayloadTypeThrows) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, 1.5);  // double
    } else {
      (void)comm.recv<int>(0, 0);  // asks for int
    }
  }),
               pls::precondition_error);
}

TEST(World, SelfSendRejected) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 0) comm.send(0, 0, 1);
    // rank 1 does nothing
  }),
               pls::precondition_error);
}

TEST(World, BarrierSynchronisesClocks) {
  World world(4);
  const auto stats = world.run([](Comm& comm) {
    comm.charge_compute(1000.0 * (comm.rank() + 1));  // skewed clocks
    comm.barrier();
  });
  // After the barrier every clock equals max(4000) + barrier cost.
  const double expected = 4000.0 + world.network().barrier_ns;
  for (const auto& s : stats) EXPECT_DOUBLE_EQ(s.clock_ns, expected);
}

TEST(World, RepeatedBarriers) {
  World world(3);
  world.run([](Comm& comm) {
    for (int i = 0; i < 50; ++i) comm.barrier();
  });
  SUCCEED();  // no deadlock, no crash
}

TEST(World, ComputeChargesAccumulate) {
  World world(1);
  const auto stats = world.run([](Comm& comm) {
    comm.charge_compute(10.0);
    comm.charge_compute(15.0);
  });
  EXPECT_DOUBLE_EQ(stats[0].compute_ns, 25.0);
  EXPECT_DOUBLE_EQ(stats[0].clock_ns, 25.0);
}

TEST(World, MessageCostAdvancesReceiverClock) {
  NetworkModel net;
  net.alpha_ns = 100.0;
  net.beta_ns_per_byte = 1.0;
  World world(2, net);
  const auto stats = world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::int64_t{7});  // 8 bytes
    } else {
      (void)comm.recv<std::int64_t>(0, 0);
    }
  });
  // Receiver clock: message available at 0 + 100 + 8*1 = 108.
  EXPECT_DOUBLE_EQ(stats[1].clock_ns, 108.0);
  // Sender clock: send overhead alpha only.
  EXPECT_DOUBLE_EQ(stats[0].clock_ns, 100.0);
  EXPECT_EQ(stats[0].messages, 1u);
  EXPECT_EQ(stats[0].bytes, 8u);
}

TEST(World, SimulatedTimeIsMaxClock) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 1) comm.charge_compute(5000.0);
  });
  EXPECT_DOUBLE_EQ(world.simulated_time_ns(), 5000.0);
}

TEST(World, ExceptionInOneRankPropagates) {
  World world(3);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 2) throw std::runtime_error("rank failure");
  }),
               std::runtime_error);
}

TEST(World, ManyRanksRingPass) {
  // Token passes around a ring of 8 ranks and accumulates ranks.
  World world(8);
  world.run([](Comm& comm) {
    const int n = comm.size();
    const int next = (comm.rank() + 1) % n;
    const int prev = (comm.rank() + n - 1) % n;
    if (comm.rank() == 0) {
      comm.send(next, 0, 0);
      const int total = comm.recv<int>(prev, 0);
      EXPECT_EQ(total, n * (n - 1) / 2);
    } else {
      const int acc = comm.recv<int>(prev, 0);
      comm.send(next, 0, acc + comm.rank());
    }
  });
}

}  // namespace
