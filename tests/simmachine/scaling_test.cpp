#include "simmachine/scaling.hpp"

#include <gtest/gtest.h>

namespace {

using namespace pls::simmachine;

CostModel unit_model() {
  CostModel m;
  m.spawn_overhead_ns = 0.0;
  m.steal_overhead_ns = 0.0;
  m.join_overhead_ns = 0.0;
  return m;
}

TaskTrace wide_trace(unsigned levels, double leaf_ops) {
  return TaskTrace::balanced(
      levels, std::size_t{1} << levels,
      [leaf_ops](std::size_t) { return leaf_ops; },
      [](std::size_t) { return 0.0; }, [](std::size_t) { return 0.0; });
}

TEST(Scaling, CurveHasOnePointPerProcessorCount) {
  const auto curve =
      scaling_curve(wide_trace(6, 100.0), unit_model(), {1, 2, 4, 8});
  ASSERT_EQ(curve.points.size(), 4u);
  EXPECT_EQ(curve.points[0].processors, 1u);
  EXPECT_EQ(curve.points[3].processors, 8u);
}

TEST(Scaling, PerfectWorkScalesLinearly) {
  const auto curve =
      scaling_curve(wide_trace(8, 500.0), unit_model(), {1, 2, 4, 8, 16});
  for (const auto& p : curve.points) {
    EXPECT_NEAR(p.speedup, static_cast<double>(p.processors), 0.05)
        << "P=" << p.processors;
    EXPECT_GT(p.efficiency, 0.95);
  }
}

TEST(Scaling, EfficiencyDropsPastTheLeafCount) {
  // 8 leaves: beyond 8 processors there is nothing to run.
  const auto curve =
      scaling_curve(wide_trace(3, 1000.0), unit_model(), {4, 8, 16, 32});
  EXPECT_NEAR(curve.points[1].speedup, 8.0, 0.01);
  EXPECT_NEAR(curve.points[2].speedup, 8.0, 0.01);  // saturated
  EXPECT_LT(curve.points[3].efficiency, 0.3);
}

TEST(Scaling, KneeFindsLastEfficientPoint) {
  const auto curve =
      scaling_curve(wide_trace(4, 1000.0), unit_model(), {1, 2, 4, 8, 16, 32});
  // 16 leaves: efficiency 1.0 up to P=16, then halves.
  EXPECT_EQ(curve.knee(0.9), 16u);
}

TEST(Scaling, MaxSpeedupIsMonotoneSummary) {
  const auto curve =
      scaling_curve(wide_trace(6, 300.0), unit_model(), {1, 2, 4});
  EXPECT_NEAR(curve.max_speedup(), 4.0, 0.05);
}

TEST(Scaling, EmptySweepRejected) {
  EXPECT_THROW(scaling_curve(wide_trace(2, 1.0), unit_model(), {}),
               pls::precondition_error);
}

}  // namespace
