#include "simmachine/trace.hpp"

#include <gtest/gtest.h>

namespace {

using pls::simmachine::TaskTrace;

TEST(Trace, SingleLeaf) {
  TaskTrace t;
  const auto id = t.add_leaf(100.0);
  t.set_root(id);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_DOUBLE_EQ(t.total_work_ops(), 100.0);
  EXPECT_DOUBLE_EQ(t.span_ops(), 100.0);
}

TEST(Trace, ForkWorkIsSumSpanIsMax) {
  TaskTrace t;
  const auto l = t.add_leaf(10.0);
  const auto r = t.add_leaf(30.0);
  const auto f = t.add_fork(2.0, 5.0, l, r);
  t.set_root(f);
  EXPECT_DOUBLE_EQ(t.total_work_ops(), 10 + 30 + 2 + 5);
  EXPECT_DOUBLE_EQ(t.span_ops(), 2 + 30 + 5);
}

TEST(Trace, NestedSpan) {
  TaskTrace t;
  const auto a = t.add_leaf(8.0);
  const auto b = t.add_leaf(4.0);
  const auto inner = t.add_fork(1.0, 1.0, a, b);  // span 1+8+1 = 10
  const auto c = t.add_leaf(50.0);
  const auto root = t.add_fork(0.0, 2.0, inner, c);
  t.set_root(root);
  EXPECT_DOUBLE_EQ(t.span_ops(), 0 + 50 + 2);
  EXPECT_DOUBLE_EQ(t.total_work_ops(), 8 + 4 + 1 + 1 + 50 + 0 + 2);
}

TEST(Trace, RootRequiredForQueries) {
  TaskTrace t;
  t.add_leaf(1.0);
  EXPECT_FALSE(t.has_root());
  EXPECT_THROW(t.root(), pls::precondition_error);
}

TEST(Trace, ForkChildrenMustExist) {
  TaskTrace t;
  const auto l = t.add_leaf(1.0);
  EXPECT_THROW(t.add_fork(0.0, 0.0, l, 99), pls::precondition_error);
}

TEST(Trace, NegativeCostsRejected) {
  TaskTrace t;
  EXPECT_THROW(t.add_leaf(-1.0), pls::precondition_error);
}

TEST(Trace, BalancedBuilderShape) {
  // 3 levels over n=8: 8 leaves + 7 forks.
  const auto t = TaskTrace::balanced(
      3, 8, [](std::size_t len) { return static_cast<double>(len); },
      [](std::size_t) { return 1.0; }, [](std::size_t) { return 2.0; });
  EXPECT_EQ(t.node_count(), 15u);
  // Work: leaves contribute 8*1 (len 1 each), forks 7*(1+2).
  EXPECT_DOUBLE_EQ(t.total_work_ops(), 8 * 1.0 + 7 * 3.0);
  // Span: 3 levels of (1 descend + 2 combine) + leaf 1.
  EXPECT_DOUBLE_EQ(t.span_ops(), 3 * 3.0 + 1.0);
}

TEST(Trace, BalancedBuilderLeafLengths) {
  // 2 levels over n=16 -> leaves of length 4; leaf op fn sees that length.
  const auto t = TaskTrace::balanced(
      2, 16, [](std::size_t len) { return static_cast<double>(len * 10); },
      [](std::size_t) { return 0.0; }, [](std::size_t) { return 0.0; });
  EXPECT_DOUBLE_EQ(t.total_work_ops(), 4 * 40.0);
}

TEST(Trace, BalancedBuilderRejectsIndivisibleSize) {
  EXPECT_THROW(TaskTrace::balanced(
                   3, 6, [](std::size_t) { return 1.0; },
                   [](std::size_t) { return 0.0; },
                   [](std::size_t) { return 0.0; }),
               pls::precondition_error);
}

TEST(Trace, DescendCostsSeeFullSublistLength) {
  std::vector<std::size_t> seen;
  (void)TaskTrace::balanced(
      2, 8, [](std::size_t) { return 0.0; },
      [&](std::size_t len) {
        seen.push_back(len);
        return 0.0;
      },
      [](std::size_t) { return 0.0; });
  // Two fork levels: one node of length 8, two of length 4.
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 8u), 1);
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 4u), 2);
}

}  // namespace
