#include "simmachine/dot.hpp"

#include <gtest/gtest.h>

namespace {

using pls::simmachine::TaskTrace;
using pls::simmachine::to_dot;

TEST(Dot, SingleLeaf) {
  TaskTrace t;
  t.set_root(t.add_leaf(5.0));
  const auto dot = to_dot(t);
  EXPECT_NE(dot.find("digraph task_trace {"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("5 ops"), std::string::npos);
  EXPECT_NE(dot.find("style=bold"), std::string::npos);
}

TEST(Dot, ForkHasTwoEdges) {
  TaskTrace t;
  const auto l = t.add_leaf(1.0);
  const auto r = t.add_leaf(2.0);
  t.set_root(t.add_fork(3.0, 4.0, l, r));
  const auto dot = to_dot(t, "g");
  EXPECT_NE(dot.find("n2 -> n0"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("3 / 4"), std::string::npos);
}

TEST(Dot, NodeCountMatchesLines) {
  const auto t = TaskTrace::balanced(
      3, 8, [](std::size_t) { return 1.0; }, [](std::size_t) { return 0.0; },
      [](std::size_t) { return 0.0; });
  const auto dot = to_dot(t);
  std::size_t boxes = 0, pos = 0;
  while ((pos = dot.find("shape=box", pos)) != std::string::npos) {
    ++boxes;
    pos += 1;
  }
  EXPECT_EQ(boxes, 8u);  // one per leaf
}

}  // namespace
