#include "simmachine/scheduler.hpp"

#include <gtest/gtest.h>

namespace {

using pls::simmachine::CostModel;
using pls::simmachine::SimResult;
using pls::simmachine::Simulator;
using pls::simmachine::TaskTrace;

CostModel zero_overhead() {
  CostModel m;
  m.ns_per_op = 1.0;
  m.spawn_overhead_ns = 0.0;
  m.steal_overhead_ns = 0.0;
  m.join_overhead_ns = 0.0;
  return m;
}

TaskTrace balanced_trace(unsigned levels, double leaf_ops) {
  return TaskTrace::balanced(
      levels, std::size_t{1} << levels,
      [leaf_ops](std::size_t) { return leaf_ops; },
      [](std::size_t) { return 0.0; }, [](std::size_t) { return 0.0; });
}

TEST(Scheduler, SingleLeafSingleProcessor) {
  TaskTrace t;
  t.set_root(t.add_leaf(500.0));
  Simulator sim(zero_overhead(), 1);
  const SimResult r = sim.run(t);
  EXPECT_DOUBLE_EQ(r.makespan_ns, 500.0);
  EXPECT_EQ(r.steals, 0u);
  EXPECT_EQ(r.segments, 1u);
}

TEST(Scheduler, OneProcessorMakespanEqualsWork) {
  const auto t = balanced_trace(4, 100.0);
  Simulator sim(zero_overhead(), 1);
  const SimResult r = sim.run(t);
  EXPECT_DOUBLE_EQ(r.makespan_ns, t.total_work_ops());
  EXPECT_EQ(r.steals, 0u);
}

TEST(Scheduler, TwoProcessorsHalveBalancedWork) {
  // 16 equal leaves, zero overheads: two processors finish in half the
  // sequential time.
  const auto t = balanced_trace(4, 100.0);
  Simulator sim(zero_overhead(), 2);
  const SimResult r = sim.run(t);
  EXPECT_DOUBLE_EQ(r.makespan_ns, t.total_work_ops() / 2.0);
}

TEST(Scheduler, ManyProcessorsApproachSpan) {
  const auto t = balanced_trace(6, 100.0);  // 64 leaves
  Simulator sim(zero_overhead(), 64);
  const SimResult r = sim.run(t);
  EXPECT_DOUBLE_EQ(r.makespan_ns, t.span_ops());
}

TEST(Scheduler, SpeedupMonotonicInProcessors) {
  const auto t = balanced_trace(8, 1000.0);
  const CostModel m = zero_overhead();
  double prev = 0.0;
  for (unsigned p : {1u, 2u, 4u, 8u, 16u}) {
    const SimResult r = Simulator(m, p).run(t);
    const double speedup = t.total_work_ops() / r.makespan_ns;
    EXPECT_GT(speedup, prev);
    prev = speedup;
  }
}

TEST(Scheduler, BrentBoundHolds) {
  // Greedy scheduling guarantees T_P <= T1/P + Tinf; with overheads zero
  // the simulator must respect it.
  const auto t = TaskTrace::balanced(
      7, std::size_t{1} << 7,
      [](std::size_t) { return 64.0; }, [](std::size_t len) {
        return static_cast<double>(len) * 0.1;
      },
      [](std::size_t len) { return static_cast<double>(len) * 0.2; });
  const CostModel m = zero_overhead();
  for (unsigned p : {1u, 2u, 3u, 5u, 8u, 13u}) {
    const SimResult r = Simulator(m, p).run(t);
    EXPECT_LE(r.makespan_ns,
              t.total_work_ops() / p + t.span_ops() + 1e-9)
        << "P=" << p;
    // And no schedule beats the trivial lower bounds.
    EXPECT_GE(r.makespan_ns, t.total_work_ops() / p - 1e-9);
    EXPECT_GE(r.makespan_ns, t.span_ops() - 1e-9);
  }
}

TEST(Scheduler, OverheadsReduceSpeedup) {
  const auto t = balanced_trace(8, 50.0);  // small leaves: overhead-bound
  CostModel cheap = zero_overhead();
  CostModel costly = zero_overhead();
  costly.spawn_overhead_ns = 200.0;
  costly.steal_overhead_ns = 500.0;
  costly.join_overhead_ns = 100.0;
  const SimResult fast = Simulator(cheap, 8).run(t);
  const SimResult slow = Simulator(costly, 8).run(t);
  EXPECT_GT(slow.makespan_ns, fast.makespan_ns);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  const auto t = balanced_trace(9, 77.0);
  CostModel m = zero_overhead();
  m.spawn_overhead_ns = 10.0;
  m.steal_overhead_ns = 25.0;
  const SimResult a = Simulator(m, 7).run(t);
  const SimResult b = Simulator(m, 7).run(t);
  EXPECT_DOUBLE_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_EQ(a.steals, b.steals);
  EXPECT_EQ(a.segments, b.segments);
}

TEST(Scheduler, StealsHappenWithMultipleProcessors) {
  const auto t = balanced_trace(6, 100.0);
  const SimResult r = Simulator(zero_overhead(), 4).run(t);
  EXPECT_GT(r.steals, 0u);
}

TEST(Scheduler, SegmentCountMatchesTraceStructure) {
  // Each leaf is 1 segment; each fork contributes descend + combine.
  const auto t = balanced_trace(5, 10.0);  // 32 leaves, 31 forks
  const SimResult r = Simulator(zero_overhead(), 3).run(t);
  EXPECT_EQ(r.segments, 32u + 2u * 31u);
}

TEST(Scheduler, UtilizationAtMostOne) {
  const auto t = balanced_trace(7, 120.0);
  for (unsigned p : {1u, 4u, 16u}) {
    const SimResult r = Simulator(zero_overhead(), p).run(t);
    EXPECT_LE(r.utilization(), 1.0 + 1e-12);
    EXPECT_GT(r.utilization(), 0.0);
  }
}

TEST(Scheduler, SpeedupVsHelper) {
  SimResult r;
  r.makespan_ns = 50.0;
  EXPECT_DOUBLE_EQ(r.speedup_vs(400.0), 8.0);
}

TEST(Scheduler, CalibratedModelScalesTime) {
  const auto t = balanced_trace(3, 100.0);
  CostModel m = CostModel::calibrated(/*measured_ns=*/8000.0,
                                      /*total_ops=*/1000.0, zero_overhead());
  EXPECT_DOUBLE_EQ(m.ns_per_op, 8.0);
  const SimResult r = Simulator(m, 1).run(t);
  EXPECT_DOUBLE_EQ(r.makespan_ns, t.total_work_ops() * 8.0);
}

TEST(Scheduler, ZeroProcessorsRejected) {
  EXPECT_THROW(Simulator(zero_overhead(), 0), pls::precondition_error);
}

}  // namespace
