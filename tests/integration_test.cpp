// Cross-module integration: each computation the library implements via
// several independent paths (skeleton executors, stream collectors,
// facade, JPLF layer, simulated machine, message-passing simulation)
// must produce identical results. These are the tests that catch
// mismatched conventions between layers.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "pls.hpp"

namespace {

using namespace pls::powerlist;
using pls::forkjoin::ForkJoinPool;
using pls::streams::Stream;

ForkJoinPool& pool() {
  static ForkJoinPool p(4);
  return p;
}

// ---- polynomial evaluation: six independent paths ----------------------

TEST(Integration, PolynomialSixWays) {
  pls::Xoshiro256 rng(101);
  std::vector<double> asc(1024);  // ascending coefficients
  for (auto& c : asc) c = rng.next_double() - 0.5;
  const double x = 0.998;

  const double reference = horner_ascending(view_of(asc), x);

  // 1. PowerFunction (equation 4), sequential executor.
  PolynomialFunction<double> vp;
  EXPECT_NEAR(execute_sequential(vp, view_of(asc), x, 8), reference, 1e-9);

  // 2. Same function, fork-join executor.
  EXPECT_NEAR(execute_forkjoin(pool(), vp, view_of(asc), x, 8), reference,
              1e-9);

  // 3. Tupled transformation (tie decomposition).
  EXPECT_NEAR(polynomial_value_tupled(view_of(asc), x, 8), reference, 1e-9);

  // 4. Stream Collector adaptation (descending convention: reverse).
  std::vector<double> desc(asc.rbegin(), asc.rend());
  auto shared = std::make_shared<const std::vector<double>>(desc);
  EXPECT_NEAR(evaluate_polynomial_stream(shared, x, true), reference, 1e-9);

  // 5. JPLF-compatibility layer.
  jplf::ZipPowerList<double> list(view_of(asc));
  class JplfVp final : public jplf::JplfPowerFunction<double, double> {
   public:
    JplfVp(double point, std::size_t threshold)
        : x_(point), threshold_(threshold) {}
    double basic_case(const jplf::BasePowerList<double>& l) override {
      return horner_ascending(l.view(), x_);
    }
    double combine(double l, double r) override { return l + x_ * r; }
    std::unique_ptr<jplf::JplfPowerFunction<double, double>>
    create_left_function() const override {
      return std::make_unique<JplfVp>(x_ * x_, threshold_);
    }
    std::unique_ptr<jplf::JplfPowerFunction<double, double>>
    create_right_function() const override {
      return std::make_unique<JplfVp>(x_ * x_, threshold_);
    }
    std::size_t basic_threshold() const override { return threshold_; }

   private:
    double x_;
    std::size_t threshold_;
  };
  JplfVp jplf_vp(x, 8);
  const double via_jplf = jplf_vp.compute(list);
  EXPECT_NEAR(via_jplf, reference, 1e-9);

  // 6. Message-passing simulation, 8 ranks.
  pls::mpisim::World world(8);
  world.run([&](pls::mpisim::Comm& comm) {
    EXPECT_NEAR(pls::mpisim::mpi_polynomial_eval(comm, asc, x), reference,
                1e-9);
  });

  // 7. Simulated-machine executor (result side).
  const auto sim_ex = execute_simulated(
      pls::simmachine::Simulator({}, 8), vp, view_of(asc), x, 8);
  EXPECT_NEAR(sim_ex.result, reference, 1e-9);
}

// ---- reduction: six paths ----------------------------------------------

TEST(Integration, SumSixWays) {
  std::vector<long> data(4096);
  std::iota(data.begin(), data.end(), 1);
  const long reference = 4096L * 4097 / 2;

  ReduceFunction<long, std::plus<long>> f{std::plus<long>{}};
  EXPECT_EQ(execute_sequential(f, view_of(data), {}, 64), reference);
  EXPECT_EQ(execute_forkjoin(pool(), f, view_of(data), {}, 64), reference);
  EXPECT_EQ(Stream<long>::of(data).parallel().via(pool()).sum(), reference);
  EXPECT_EQ(PowerStream<long>::of(data).via(pool()).reduce(
                std::plus<long>{}),
            reference);
  {
    pls::plist::NWayReduce<long, std::plus<long>> nway{std::plus<long>{}, 4};
    EXPECT_EQ(pls::plist::execute_sequential(
                  nway, pls::plist::PListView<const long>::over(data)),
              reference);
  }
  {
    pls::mpisim::World world(4);
    world.run([&](pls::mpisim::Comm& comm) {
      EXPECT_EQ(pls::mpisim::mpi_reduce(comm, data, std::plus<long>{}),
                reference);
    });
  }
}

// ---- FFT: four paths -----------------------------------------------------

TEST(Integration, FftFourWays) {
  pls::Xoshiro256 rng(202);
  std::vector<Complex> signal(256);
  for (auto& c : signal) {
    c = Complex{rng.next_double() - 0.5, rng.next_double() - 0.5};
  }
  const auto reference = dft(view_of(signal));
  auto near = [&](const std::vector<Complex>& got) {
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(std::abs(got[i] - reference[i]), 0.0, 1e-8) << i;
    }
  };

  FftFunction fft;
  near(execute_sequential(fft, view_of(signal), {}, 4));
  near(execute_forkjoin(pool(), fft, view_of(signal), {}, 4));
  {
    auto iterative = signal;
    fft_in_place(iterative);
    near(iterative);
  }
  near(PowerStream<Complex>::of(signal).with_leaf(4).fft());
  {
    pls::mpisim::World world(8);
    world.run([&](pls::mpisim::Comm& comm) {
      const auto got = pls::mpisim::mpi_fft(comm, signal);
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(std::abs(got[i] - reference[i]), 0.0, 1e-8);
      }
    });
  }
}

// ---- sorting: five paths ---------------------------------------------------

TEST(Integration, SortFiveWays) {
  pls::Xoshiro256 rng(303);
  std::vector<int> data(1024);
  for (auto& v : data) v = static_cast<int>(rng.next_below(1u << 20));
  auto reference = data;
  std::sort(reference.begin(), reference.end());

  BatcherSortFunction<int> batcher;
  EXPECT_EQ(execute_sequential(batcher, view_of(data), {}, 32), reference);
  EXPECT_EQ(execute_forkjoin(pool(), batcher, view_of(data), {}, 32),
            reference);
  {
    auto v = data;
    bitonic_sort(v);
    EXPECT_EQ(v, reference);
  }
  EXPECT_EQ(PowerStream<int>::of(data).via(pool()).sorted(), reference);
  {
    pls::plist::MultiwayMergeSort<int> mms(4);
    EXPECT_EQ(pls::plist::execute_sequential(
                  mms, pls::plist::PListView<const int>::over(data), {}, 16),
              reference);
  }
}

// ---- scan: four paths -------------------------------------------------------

TEST(Integration, ScanFourWays) {
  pls::Xoshiro256 rng(404);
  std::vector<long> data(512);
  for (auto& v : data) v = static_cast<long>(rng.next_below(1000));
  const auto reference = scan_sequential(view_of(data), std::plus<long>{});

  SklanskyScanFunction<long, std::plus<long>> sk{std::plus<long>{}};
  EXPECT_EQ(execute_sequential(sk, view_of(data), {}, 16).values(),
            reference);
  EXPECT_EQ(execute_forkjoin(pool(), sk, view_of(data), {}, 16).values(),
            reference);
  EXPECT_EQ(scan_ladner_fischer(view_of(data), std::plus<long>{}),
            reference);
  EXPECT_EQ(PowerStream<long>::of(data).via(pool()).scan(std::plus<long>{}),
            reference);
}

// ---- identity through the stream machinery, both operators ------------------

TEST(Integration, IdentityRoundTripsEverywhere) {
  std::vector<double> data(128);
  std::iota(data.begin(), data.end(), 0.0);
  auto shared = std::make_shared<const std::vector<double>>(data);

  // Zip spliterator + zip_all.
  {
    auto sp = std::make_unique<ZipSpliterator<double>>(shared);
    auto out = pls::streams::stream_support::from_spliterator<double>(
                   std::move(sp), true)
                   .via(pool())
                   .with_min_chunk(4)
                   .collect(to_power_array_zip<double>());
    EXPECT_EQ(out.values(), data);
  }
  // Tie spliterator + tie_all.
  {
    auto sp = std::make_unique<TieSpliterator<double>>(shared);
    auto out = pls::streams::stream_support::from_spliterator<double>(
                   std::move(sp), true)
                   .via(pool())
                   .with_min_chunk(4)
                   .collect(to_power_array_tie<double>());
    EXPECT_EQ(out.values(), data);
  }
  // inv twice through the facade.
  {
    const auto once = PowerStream<double>::of(data).inv();
    EXPECT_EQ(PowerStream<double>::of(once).inv(), data);
  }
}

}  // namespace
