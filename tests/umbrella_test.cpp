// Compile-and-smoke test of the umbrella header: one symbol from every
// module, in one translation unit.
#include "pls.hpp"

#include <gtest/gtest.h>

TEST(Umbrella, EveryModuleIsReachable) {
  // support
  EXPECT_TRUE(pls::is_power_of_two(64));
  pls::Xoshiro256 rng(1);
  EXPECT_LT(rng.next_double(), 1.0);

  // forkjoin
  pls::forkjoin::ForkJoinPool pool(2);
  EXPECT_EQ(pool.run([] { return 7; }), 7);

  // simmachine
  pls::simmachine::TaskTrace trace;
  trace.set_root(trace.add_leaf(10.0));
  const auto sim = pls::simmachine::Simulator({}, 2).run(trace);
  EXPECT_GT(sim.makespan_ns, 0.0);

  // streams
  const auto sum = pls::streams::Stream<int>::range(0, 10).sum();
  EXPECT_EQ(sum, 45);

  // powerlist
  std::vector<double> data{1.0, 2.0, 3.0, 4.0};
  pls::powerlist::ReduceFunction<double, std::plus<double>> f{
      std::plus<double>{}};
  EXPECT_DOUBLE_EQ(
      pls::powerlist::execute_sequential(f, pls::powerlist::view_of(data)),
      10.0);

  // plist
  const auto parts =
      pls::plist::PListView<const double>::over(data).tie_n(2);
  EXPECT_EQ(parts.size(), 2u);

  // mpisim
  pls::mpisim::World world(2);
  world.run([](pls::mpisim::Comm& comm) {
    const int v = pls::mpisim::broadcast(comm, comm.rank() == 0 ? 5 : 0, 0);
    EXPECT_EQ(v, 5);
  });
}
