// Counter blocks and registry: single-thread semantics, cross-thread
// aggregation, and the fork-join pool's per-worker steal accounting.
#include "observe/counters.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "forkjoin/pool.hpp"

namespace {

using pls::observe::CounterTotals;
using pls::observe::kEnabled;
using pls::observe::local_counters;

TEST(Counters, TotalsArithmetic) {
  CounterTotals a;
  a.tasks_executed = 10;
  a.steals = 3;
  a.max_split_depth = 4;
  CounterTotals b;
  b.tasks_executed = 1;
  b.steals = 2;
  b.max_split_depth = 7;
  CounterTotals sum = a;
  sum += b;
  EXPECT_EQ(sum.tasks_executed, 11u);
  EXPECT_EQ(sum.steals, 5u);
  EXPECT_EQ(sum.max_split_depth, 7u);  // max, not sum

  const CounterTotals delta = sum - a;
  EXPECT_EQ(delta.tasks_executed, 1u);
  EXPECT_EQ(delta.steals, 2u);
  EXPECT_EQ(delta.max_split_depth, 7u);  // later snapshot's value kept
}

TEST(Counters, BlockCountsAndResets) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  auto& block = local_counters();
  const CounterTotals before = block.snapshot();
  block.on_task_executed();
  block.on_steal(true);
  block.on_steal(false);
  block.on_steal(false);
  block.on_fork();
  block.on_split(5);
  block.on_split(2);
  block.on_leaf(128);
  block.on_combine();
  const CounterTotals delta = block.snapshot() - before;
  EXPECT_EQ(delta.tasks_executed, 1u);
  EXPECT_EQ(delta.steals, 1u);
  EXPECT_EQ(delta.steal_failures, 2u);
  EXPECT_EQ(delta.forks, 1u);
  EXPECT_EQ(delta.splits, 2u);
  EXPECT_GE(delta.max_split_depth, 5u);
  EXPECT_EQ(delta.elements_accumulated, 128u);
  EXPECT_EQ(delta.leaf_chunks, 1u);
  EXPECT_EQ(delta.combines, 1u);
}

TEST(Counters, LocalBlockIsPerThread) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  auto* mine = &local_counters();
  pls::observe::CounterBlock* theirs = nullptr;
  std::thread t([&] { theirs = &local_counters(); });
  t.join();
  EXPECT_NE(mine, theirs);
  // Stable across calls on the same thread.
  EXPECT_EQ(mine, &local_counters());
}

TEST(Counters, AggregateSeesOtherThreads) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  const CounterTotals before = pls::observe::aggregate_counters();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      for (int k = 0; k < 100; ++k) local_counters().on_combine();
    });
  }
  for (auto& t : threads) t.join();
  const CounterTotals delta = pls::observe::aggregate_counters() - before;
  EXPECT_EQ(delta.combines, 100u * kThreads);
}

TEST(Counters, PoolPerWorkerStealAccounting) {
  pls::forkjoin::ForkJoinPool pool(4);
  // Irregular fan-out forces real stealing between the four workers.
  struct Rec {
    pls::forkjoin::ForkJoinPool& pool;
    long go(int depth) {
      if (depth == 0) return 1;
      long a = 0, b = 0;
      pool.invoke_two([&] { a = go(depth - 1); }, [&] { b = go(depth - 1); });
      return a + b;
    }
  } rec{pool};
  const long leaves = pool.run([&] { return rec.go(12); });
  EXPECT_EQ(leaves, 1 << 12);

  // Pool-level tallies and per-worker blocks must agree.
  const auto totals = pool.counter_totals();
  const auto per_worker = pool.per_worker_counters();
  EXPECT_EQ(per_worker.size(), 4u);
  if (!kEnabled) {
    EXPECT_EQ(totals.tasks_executed, 0u);
    return;
  }
  EXPECT_EQ(totals.steals, pool.steal_count());
  EXPECT_EQ(totals.steal_failures, pool.steal_failure_count());
  // Every forked child is executed exactly once, plus the one external run.
  EXPECT_EQ(totals.tasks_executed, totals.forks + 1);
  CounterTotals recomputed;
  for (const auto& w : per_worker) recomputed += w;
  EXPECT_EQ(recomputed.tasks_executed, totals.tasks_executed);
  EXPECT_EQ(recomputed.steals, totals.steals);
}

TEST(Counters, RegistryLabelsWorkers) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  pls::forkjoin::ForkJoinPool pool(2);
  pool.run([] { return 0; });
  bool found_worker_label = false;
  for (const auto& w : pls::observe::CounterRegistry::global().per_worker()) {
    if (w.label.rfind("fj-worker-", 0) == 0) found_worker_label = true;
  }
  EXPECT_TRUE(found_worker_label);
}

}  // namespace
