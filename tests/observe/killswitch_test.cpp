// PLS_OBSERVE=0 contract: this TU pins the kill switch off regardless of
// how the rest of the build was configured (the observe headers are
// self-contained, so a per-TU setting is safe) and asserts that the whole
// layer compiles down to no-ops — empty spans, stateless counters, an
// exporter that produces an empty-but-valid trace. Together with the
// `observe-off` CMake preset (which builds *everything* with the switch
// off) this keeps both sides of the #if compiling in every build.
#undef PLS_OBSERVE
#define PLS_OBSERVE 0

#include "observe/counters.hpp"
#include "observe/critical_path.hpp"
#include "observe/export.hpp"
#include "observe/flamegraph.hpp"
#include "observe/histogram.hpp"
#include "observe/metrics.hpp"
#include "observe/run_registry.hpp"
#include "observe/sampler.hpp"
#include "observe/trace.hpp"

#include <gtest/gtest.h>

#include <type_traits>

namespace {

using pls::observe::CounterTotals;
using pls::observe::EventKind;
using pls::observe::Span;
using pls::observe::TraceRecorder;

// The no-op-codegen contract, checked at compile time: a killed Span
// carries no state (nothing for the optimizer to keep alive), and the
// layer reports itself as disabled.
static_assert(!pls::observe::kEnabled);
static_assert(std::is_empty_v<Span>);
static_assert(std::is_empty_v<pls::observe::CounterBlock>);
static_assert(std::is_empty_v<pls::observe::Histogram>);
static_assert(std::is_empty_v<pls::observe::HistogramBlock>);
static_assert(std::is_empty_v<pls::observe::CpScope>);
static_assert(std::is_empty_v<pls::observe::LatencyTimer>);
static_assert(std::is_empty_v<pls::observe::TraceSession>);
// The continuous-telemetry layer collapses the same way: registry,
// sampler ring, run history and the RAII session all carry no state.
static_assert(std::is_empty_v<pls::observe::MetricsRegistry>);
static_assert(std::is_empty_v<pls::observe::MetricsSession>);
static_assert(std::is_empty_v<pls::observe::SampleRing>);
static_assert(std::is_empty_v<pls::observe::RunRegistry>);

TEST(KillSwitch, CountersAreInert) {
  auto& block = pls::observe::local_counters();
  block.on_task_executed();
  block.on_steal(true);
  block.on_split(9);
  block.on_leaf(1000);
  block.on_fused_leaf();
  block.on_combine();
  const CounterTotals t = block.snapshot();
  EXPECT_EQ(t.tasks_executed, 0u);
  EXPECT_EQ(t.steals, 0u);
  EXPECT_EQ(t.splits, 0u);
  EXPECT_EQ(t.elements_accumulated, 0u);
  EXPECT_EQ(t.fused_leaves, 0u);
  EXPECT_EQ(t.combines, 0u);

  const CounterTotals agg = pls::observe::aggregate_counters();
  EXPECT_EQ(agg.tasks_executed, 0u);
  EXPECT_TRUE(pls::observe::CounterRegistry::global().per_worker().empty());
}

TEST(KillSwitch, RecorderCannotBeEnabled) {
  auto& rec = TraceRecorder::global();
  rec.enable();
  EXPECT_FALSE(rec.enabled());
  {
    Span s(EventKind::kSplit, 1);
    s.set_arg(2);
  }
  pls::observe::instant(EventKind::kSteal);
  rec.record(EventKind::kTask, 0, 100);
  rec.record_virtual(EventKind::kCombine, 0, 0.0, 1.0);
  EXPECT_TRUE(rec.events().empty());
}

TEST(KillSwitch, ExportIsEmptyButValid) {
  const std::string json = TraceRecorder::global().chrome_json();
  EXPECT_EQ(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

TEST(KillSwitch, CriticalPathLayerIsInert) {
  auto& rec = pls::observe::CriticalPathRecorder::global();
  rec.enable();
  EXPECT_FALSE(rec.enabled());
  pls::observe::CpNode* root = pls::observe::cp_new_root();
  EXPECT_EQ(root, nullptr);
  const auto [l, r] = pls::observe::cp_fork(root);
  EXPECT_EQ(l, nullptr);
  EXPECT_EQ(r, nullptr);
  pls::observe::cp_add_elements(root, 128);
  {
    pls::observe::CpScope scope(root, pls::observe::CpPhase::kAccumulate);
  }
  EXPECT_EQ(rec.node_count(), 0u);
  const auto stats = rec.analyze(1.0);
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.work_ns, 0.0);
  EXPECT_TRUE(pls::observe::flamegraph_folded(rec).empty());
}

TEST(KillSwitch, HistogramsAreInert) {
  auto& block = pls::observe::local_histograms();
  block.record(pls::observe::Metric::kTaskRun, 1000);
  {
    pls::observe::LatencyTimer t(pls::observe::Metric::kStealLatency);
  }
  const auto agg = pls::observe::aggregate_histograms();
  for (std::size_t i = 0; i < pls::observe::kMetricCount; ++i) {
    EXPECT_TRUE(agg.metric[i].empty());
  }
  // Snapshot arithmetic stays real in both modes (reporting contract).
  pls::observe::HistogramSnapshot s;
  ++s.counts[pls::observe::histogram_bucket(8)];
  ++s.total;
  s.sum = 8;
  s.max_value = 8;
  EXPECT_EQ((s + s).total, 2u);
  EXPECT_GT(s.quantile(0.5), 0.0);
}

TEST(KillSwitch, TelemetryLayerIsInert) {
  // Registry: sources are dropped, collection yields nothing.
  auto& reg = pls::observe::MetricsRegistry::global();
  const auto token = reg.add_source([](pls::observe::MetricsSample& s) {
    s.rows.push_back(pls::observe::MetricRow{});
  });
  EXPECT_EQ(token, 0u);
  EXPECT_TRUE(reg.collect().rows.empty());
  reg.remove_source(token);

  // Sampler: start() refuses, the ring never fills.
  auto& sampler = pls::observe::MetricsSampler::global();
  EXPECT_FALSE(sampler.start(1));
  EXPECT_FALSE(sampler.running());
  sampler.ring().push(pls::observe::MetricsSample{});
  EXPECT_EQ(sampler.ring().size(), 0u);
  EXPECT_TRUE(sampler.ring().samples().empty());
  sampler.stop();

  // Run registry: appends vanish.
  auto& runs = pls::observe::RunRegistry::global();
  runs.append(pls::observe::RunRecord{});
  EXPECT_EQ(runs.total(), 0u);
  EXPECT_TRUE(runs.records().empty());

  // Exporter: cannot be armed, flush writes nothing.
  auto& log = pls::observe::MetricsLog::global();
  log.enable();
  log.set_output_path("should-not-be-written.jsonl");
  EXPECT_TRUE(log.output_path().empty());
  EXPECT_FALSE(log.flush());
  { pls::observe::MetricsSession session(1); }

  // The exposition writer stays real in both modes (reporting contract):
  // a synthetic sample still renders grammar-valid text.
  pls::observe::MetricsSample sample;
  sample.rows.push_back(pls::observe::MetricRow{
      "pls_demo_total", pls::observe::MetricKind::kCounter, 1.0, "", "",
      "demo"});
  const std::string text = pls::observe::prometheus_text(sample);
  EXPECT_NE(text.find("# TYPE pls_demo_total counter"), std::string::npos);
  EXPECT_NE(text.find("pls_demo_total 1"), std::string::npos);
}

TEST(KillSwitch, TotalsStillUsableForReporting) {
  // CounterTotals stays a real struct in both modes so reporting code
  // (ExecutionReport, bench JSON) needs no #if.
  CounterTotals a;
  a.steals = 2;
  CounterTotals b;
  b.steals = 3;
  a += b;
  EXPECT_EQ(a.steals, 5u);
}

}  // namespace
