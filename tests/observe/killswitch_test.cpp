// PLS_OBSERVE=0 contract: this TU pins the kill switch off regardless of
// how the rest of the build was configured (the observe headers are
// self-contained, so a per-TU setting is safe) and asserts that the whole
// layer compiles down to no-ops — empty spans, stateless counters, an
// exporter that produces an empty-but-valid trace. Together with the
// `observe-off` CMake preset (which builds *everything* with the switch
// off) this keeps both sides of the #if compiling in every build.
#undef PLS_OBSERVE
#define PLS_OBSERVE 0

#include "observe/counters.hpp"
#include "observe/trace.hpp"

#include <gtest/gtest.h>

#include <type_traits>

namespace {

using pls::observe::CounterTotals;
using pls::observe::EventKind;
using pls::observe::Span;
using pls::observe::TraceRecorder;

// The no-op-codegen contract, checked at compile time: a killed Span
// carries no state (nothing for the optimizer to keep alive), and the
// layer reports itself as disabled.
static_assert(!pls::observe::kEnabled);
static_assert(std::is_empty_v<Span>);
static_assert(std::is_empty_v<pls::observe::CounterBlock>);

TEST(KillSwitch, CountersAreInert) {
  auto& block = pls::observe::local_counters();
  block.on_task_executed();
  block.on_steal(true);
  block.on_split(9);
  block.on_leaf(1000);
  block.on_combine();
  const CounterTotals t = block.snapshot();
  EXPECT_EQ(t.tasks_executed, 0u);
  EXPECT_EQ(t.steals, 0u);
  EXPECT_EQ(t.splits, 0u);
  EXPECT_EQ(t.elements_accumulated, 0u);
  EXPECT_EQ(t.combines, 0u);

  const CounterTotals agg = pls::observe::aggregate_counters();
  EXPECT_EQ(agg.tasks_executed, 0u);
  EXPECT_TRUE(pls::observe::CounterRegistry::global().per_worker().empty());
}

TEST(KillSwitch, RecorderCannotBeEnabled) {
  auto& rec = TraceRecorder::global();
  rec.enable();
  EXPECT_FALSE(rec.enabled());
  {
    Span s(EventKind::kSplit, 1);
    s.set_arg(2);
  }
  pls::observe::instant(EventKind::kSteal);
  rec.record(EventKind::kTask, 0, 100);
  rec.record_virtual(EventKind::kCombine, 0, 0.0, 1.0);
  EXPECT_TRUE(rec.events().empty());
}

TEST(KillSwitch, ExportIsEmptyButValid) {
  const std::string json = TraceRecorder::global().chrome_json();
  EXPECT_EQ(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

TEST(KillSwitch, TotalsStillUsableForReporting) {
  // CounterTotals stays a real struct in both modes so reporting code
  // (ExecutionReport, bench JSON) needs no #if.
  CounterTotals a;
  a.steals = 2;
  CounterTotals b;
  b.steals = 3;
  a += b;
  EXPECT_EQ(a.steals, 5u);
}

}  // namespace
