// Span recorder: runtime gating, event well-formedness, the chrome-trace
// JSON export (validated by a small JSON parser — the schema must
// round-trip), and the simulated machine emitting the same schema.
#include "observe/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "simmachine/costmodel.hpp"
#include "simmachine/scheduler.hpp"
#include "simmachine/trace.hpp"

namespace {

using pls::observe::EventKind;
using pls::observe::kEnabled;
using pls::observe::Span;
using pls::observe::TraceRecorder;

/// Minimal recursive-descent JSON validator: returns true iff the input
/// is one well-formed JSON value (enough to prove the exporter cannot
/// emit trailing commas, unquoted keys, or unbalanced structure).
class JsonValidator {
 public:
  static bool valid(const std::string& s) {
    JsonValidator v(s);
    v.skip_ws();
    if (!v.value()) return false;
    v.skip_ws();
    return v.pos_ == s.size();
  }

 private:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::global().disable();
    TraceRecorder::global().clear();
  }
  void TearDown() override {
    TraceRecorder::global().disable();
    TraceRecorder::global().clear();
  }
};

TEST_F(TraceTest, DisabledRecorderRecordsNothing) {
  {
    Span s(EventKind::kSplit, 42);
  }
  pls::observe::instant(EventKind::kSteal);
  EXPECT_TRUE(TraceRecorder::global().events().empty());
}

TEST_F(TraceTest, SpansBecomeEvents) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  TraceRecorder::global().enable();
  {
    Span outer(EventKind::kSplit, 7);
    Span inner(EventKind::kAccumulate, 100);
  }
  pls::observe::instant(EventKind::kFork);
  TraceRecorder::global().disable();

  const auto events = TraceRecorder::global().events();
  ASSERT_EQ(events.size(), 3u);
  std::size_t splits = 0, accumulates = 0, forks = 0;
  for (const auto& e : events) {
    EXPECT_EQ(e.pid, 0u);
    EXPECT_GE(e.start_ns, 0.0);
    EXPECT_GE(e.dur_ns, 0.0);
    if (e.kind == EventKind::kSplit) {
      ++splits;
      EXPECT_EQ(e.arg, 7u);
    }
    if (e.kind == EventKind::kAccumulate) {
      ++accumulates;
      EXPECT_EQ(e.arg, 100u);
    }
    if (e.kind == EventKind::kFork) {
      ++forks;
      EXPECT_EQ(e.dur_ns, 0.0);
    }
  }
  EXPECT_EQ(splits, 1u);
  EXPECT_EQ(accumulates, 1u);
  EXPECT_EQ(forks, 1u);
}

TEST_F(TraceTest, ChromeJsonIsWellFormed) {
  if (kEnabled) {
    TraceRecorder::global().enable();
    { Span s(EventKind::kCombine, 3); }
    { Span s(EventKind::kTask); }
    TraceRecorder::global().disable();
  }
  const std::string json = TraceRecorder::global().chrome_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  if (kEnabled) {
    EXPECT_NE(json.find("\"combine\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  }
}

TEST_F(TraceTest, ClearDropsEvents) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  TraceRecorder::global().enable();
  { Span s(EventKind::kJoin); }
  TraceRecorder::global().disable();
  EXPECT_FALSE(TraceRecorder::global().events().empty());
  TraceRecorder::global().clear();
  EXPECT_TRUE(TraceRecorder::global().events().empty());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST_F(TraceTest, SessionFlushesOnScopeExit) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  const std::string path =
      ::testing::TempDir() + "trace_session_scope.json";
  std::remove(path.c_str());
  {
    pls::observe::TraceSession session(path);
    EXPECT_TRUE(TraceRecorder::global().enabled());
    Span s(EventKind::kSplit, 9);
  }
  EXPECT_FALSE(TraceRecorder::global().enabled());
  const std::string json = slurp(path);
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"split\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, SessionFlushesEvenWhenUnwindingOnException) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  const std::string path =
      ::testing::TempDir() + "trace_session_throw.json";
  std::remove(path.c_str());
  try {
    pls::observe::TraceSession session(path);
    { Span s(EventKind::kCombine, 1); }
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  const std::string json = slurp(path);
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"combine\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, FlushWithoutPathOrEventsIsANoOp) {
  auto& rec = TraceRecorder::global();
  rec.set_output_path("");
  EXPECT_FALSE(rec.flush());  // no path
  if (kEnabled) {
    const std::string path = ::testing::TempDir() + "trace_empty.json";
    std::remove(path.c_str());
    rec.set_output_path(path);
    EXPECT_FALSE(rec.flush());  // no events: existing file not clobbered
    std::ifstream probe(path);
    EXPECT_FALSE(probe.good());
    rec.set_output_path("");
  }
}

TEST_F(TraceTest, SimulatorEmitsSameSchema) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  using pls::simmachine::CostModel;
  using pls::simmachine::Simulator;
  using pls::simmachine::TaskTrace;

  const TaskTrace trace = TaskTrace::balanced(
      3, 64, [](std::size_t len) { return static_cast<double>(len); },
      [](std::size_t) { return 1.0; }, [](std::size_t) { return 1.0; });
  CostModel m;
  m.ns_per_op = 2.0;
  const Simulator sim(m, 4);

  TraceRecorder::global().enable();
  const auto result = sim.run(trace);
  TraceRecorder::global().disable();

  const auto events = TraceRecorder::global().events();
  std::size_t virtual_segments = 0;
  double last_end = 0.0;
  for (const auto& e : events) {
    ASSERT_EQ(e.pid, 1u) << "simulated events must carry pid 1";
    EXPECT_LT(e.tid, 4u);
    if (e.kind != EventKind::kSteal) ++virtual_segments;
    last_end = std::max(last_end, e.start_ns + e.dur_ns);
  }
  // One event per executed segment: 8 leaves + 7 descends + 7 combines.
  EXPECT_EQ(virtual_segments, result.segments);
  EXPECT_EQ(virtual_segments, 22u);
  // The last event ends at the simulated makespan.
  EXPECT_NEAR(last_end, result.makespan_ns, 1e-9);
  // And the export of a mixed trace is still valid JSON.
  EXPECT_TRUE(JsonValidator::valid(TraceRecorder::global().chrome_json()));
}

}  // namespace
