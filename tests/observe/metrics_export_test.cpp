// Continuous-telemetry exporter contract (ISSUE 9 acceptance):
//
//   1. A profiled fig3-style run under a MetricsSession yields a
//      Prometheus exposition that is valid against the text-format
//      grammar (metric-name charset, HELP/TYPE lines, label escaping,
//      monotone counter semantics) and contains every CounterBlock field,
//      the histogram quantiles, and the pool gauges.
//   2. The JSONL run log holds exactly one run record per executed
//      terminal, whose cache_key matches pls::session::plan(), and
//      survives a parse-and-recount round trip.
//
// The parsers below are deliberately minimal — enough structure to fail
// on grammar violations, no external JSON/Prometheus dependency.
#include "pls.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace obs = pls::observe;

// ---- tiny Prometheus text-format parser -------------------------------

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(name[0])) return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!tail(name[i])) return false;
  }
  return true;
}

struct PromSample {
  std::string name;
  std::string labels;  ///< raw text inside {...}, empty when unlabelled
  double value = 0.0;
};

struct PromDoc {
  std::map<std::string, std::string> types;  ///< name -> counter|gauge
  std::set<std::string> helps;               ///< names with a HELP line
  std::vector<PromSample> samples;
  std::vector<std::string> errors;
};

PromDoc parse_prometheus(const std::string& text) {
  PromDoc doc;
  std::istringstream in(text);
  std::string line;
  auto fail = [&](const std::string& why) {
    doc.errors.push_back(why + ": " + line);
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const bool is_type = line[2] == 'T';
      const std::string rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      if (sp == std::string::npos) {
        fail("comment line without payload");
        continue;
      }
      const std::string name = rest.substr(0, sp);
      if (!valid_metric_name(name)) fail("bad metric name in comment");
      if (is_type) {
        const std::string type = rest.substr(sp + 1);
        if (type != "counter" && type != "gauge") fail("unknown TYPE");
        if (doc.types.count(name) != 0) fail("duplicate TYPE line");
        doc.types[name] = type;
      } else {
        doc.helps.insert(name);
      }
      continue;
    }
    if (line[0] == '#') continue;  // other comments are legal
    // Sample line: name[{label="value"}] value
    PromSample s;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    s.name = line.substr(0, i);
    if (!valid_metric_name(s.name)) fail("bad metric name in sample");
    if (i < line.size() && line[i] == '{') {
      // Scan the label block respecting escapes inside quoted values: a
      // raw '}' inside a properly escaped value cannot occur unquoted.
      std::size_t j = i + 1;
      bool in_string = false;
      for (; j < line.size(); ++j) {
        const char c = line[j];
        if (in_string) {
          if (c == '\\') {
            if (j + 1 >= line.size()) break;
            const char e = line[j + 1];
            if (e != '\\' && e != '"' && e != 'n') {
              fail("invalid escape in label value");
            }
            ++j;
          } else if (c == '"') {
            in_string = false;
          }
        } else if (c == '"') {
          in_string = true;
        } else if (c == '}') {
          break;
        }
      }
      if (j >= line.size() || line[j] != '}') {
        fail("unterminated label block");
        continue;
      }
      s.labels = line.substr(i + 1, j - i - 1);
      i = j + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      fail("sample without value separator");
      continue;
    }
    const std::string value = line.substr(i + 1);
    char* end = nullptr;
    s.value = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) fail("unparseable sample value");
    if (doc.types.count(s.name) == 0) {
      fail("sample before its TYPE line");
    }
    doc.samples.push_back(std::move(s));
  }
  return doc;
}

// ---- tiny JSONL field extraction --------------------------------------

/// Value of `"key":` in a single-line JSON object, raw (unquoted for
/// strings); empty when absent. Sufficient for the writer's known format.
std::string json_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return {};
  std::size_t i = at + needle.size();
  if (line[i] == '"') {
    std::size_t j = i + 1;
    while (j < line.size() && line[j] != '"') {
      if (line[j] == '\\') ++j;
      ++j;
    }
    return line.substr(i + 1, j - i - 1);
  }
  std::size_t j = i;
  while (j < line.size() && line[j] != ',' && line[j] != '}') ++j;
  return line.substr(i, j - i);
}

// ---- workloads --------------------------------------------------------

std::vector<double> coefficients(std::size_t n) {
  std::vector<double> c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c[i] = 1.0 + static_cast<double>(i % 7) * 0.125;
  }
  return c;
}

long stream_reduce(pls::session& s, long n) {
  auto data = std::make_shared<const std::vector<long>>([n] {
    std::vector<long> v(static_cast<std::size_t>(n));
    std::iota(v.begin(), v.end(), 1);
    return v;
  }());
  return pls::streams::Stream<long>::of_shared(data)
      .parallel(s.stream_config())
      .map([](long v) { return v * 2; })
      .reduce(0L, [](long a, long b) { return a + b; });
}

// ---- tests ------------------------------------------------------------

TEST(MetricsExport, ExpositionGrammarAndCoverage) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  obs::MetricsSession metrics(/*interval_ms=*/2);
  pls::config cfg;
  cfg.parallelism = 2;
  cfg.grain = 64;
  cfg.profile = true;
  pls::run(cfg, [&](pls::session& s) {
    // The fig3 workload shape: profiled PowerList polynomial evaluation.
    const auto coeffs = coefficients(1 << 10);
    pls::powerlist::PolynomialFunction<double> vp;
    const auto view = pls::powerlist::view_of(coeffs);
    const auto report = s.execute_profiled(vp, view, 0.9991);
    (void)report;
    (void)stream_reduce(s, 1 << 12);

    const std::string text = obs::prometheus_text(s.metrics());
    const PromDoc doc = parse_prometheus(text);
    EXPECT_TRUE(doc.errors.empty())
        << doc.errors.size() << " grammar errors, first: " << doc.errors[0];
    EXPECT_FALSE(doc.samples.empty());

    // Every CounterBlock field appears under its canonical-table name.
    for (const obs::CounterField& f : obs::kCounterFields) {
      const std::string name = f.monotone
                                   ? "pls_" + std::string(f.name) + "_total"
                                   : "pls_" + std::string(f.name);
      ASSERT_EQ(doc.types.count(name), 1u) << "missing counter field " << name;
      EXPECT_EQ(doc.types.at(name), f.monotone ? "counter" : "gauge") << name;
      EXPECT_EQ(doc.helps.count(name), 1u) << "missing HELP for " << name;
    }

    // Histogram quantiles: both quantile labels per time metric.
    for (const char* q : {"quantile=\"0.5\"", "quantile=\"0.9\""}) {
      bool found = false;
      for (const PromSample& sm : doc.samples) {
        if (sm.name == "pls_hist_leaf_run_ns" &&
            sm.labels.find(q) != std::string::npos) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << "missing pls_hist_leaf_run_ns " << q;
    }

    // Pool gauges, labelled by pool ordinal.
    for (const char* name :
         {"pls_pool_workers", "pls_pool_utilization",
          "pls_pool_starvation_ratio", "pls_pool_queue_backlog"}) {
      bool found = false;
      for (const PromSample& sm : doc.samples) {
        if (sm.name == name && sm.labels.rfind("pool=", 0) == 0) found = true;
      }
      EXPECT_TRUE(found) << "missing pool gauge " << name;
    }
    EXPECT_EQ(doc.types.count("pls_plan_cache_entries"), 1u);
    EXPECT_EQ(doc.types.count("pls_runs_total"), 1u);

  });
}

TEST(MetricsExport, CountersAreMonotoneAcrossScrapes) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  pls::config cfg;
  cfg.parallelism = 2;
  pls::run(cfg, [&](pls::session& s) {
    const PromDoc before = parse_prometheus(obs::prometheus_text(s.metrics()));
    (void)stream_reduce(s, 1 << 12);
    const PromDoc after = parse_prometheus(obs::prometheus_text(s.metrics()));
    EXPECT_TRUE(after.errors.empty());
    auto series = [](const PromDoc& d) {
      std::map<std::string, double> out;
      for (const PromSample& sm : d.samples) {
        if (d.types.count(sm.name) != 0 &&
            d.types.at(sm.name) == "counter") {
          out[sm.name + "{" + sm.labels + "}"] = sm.value;
        }
      }
      return out;
    };
    const auto s0 = series(before);
    const auto s1 = series(after);
    ASSERT_FALSE(s0.empty());
    for (const auto& [key, v0] : s0) {
      const auto it = s1.find(key);
      ASSERT_NE(it, s1.end()) << "counter series vanished: " << key;
      EXPECT_GE(it->second, v0) << "counter went backwards: " << key;
    }

  });
}

TEST(MetricsExport, LabelEscapingRoundTrips) {
  // The writer is real in both build modes; feed it a hostile label.
  obs::MetricsSample sample;
  sample.rows.push_back(obs::MetricRow{
      "pls_escape_probe", obs::MetricKind::kGauge, 1.0, "path",
      "a\"b\\c\nd", "escape \\ probe\nhelp"});
  const std::string text = obs::prometheus_text(sample);
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos) << text;
  EXPECT_NE(text.find("# HELP pls_escape_probe escape \\\\ probe\\nhelp"),
            std::string::npos)
      << text;
  const PromDoc doc = parse_prometheus(text);
  EXPECT_TRUE(doc.errors.empty()) << (doc.errors.empty() ? "" : doc.errors[0]);
  ASSERT_EQ(doc.samples.size(), 1u);
  EXPECT_EQ(doc.samples[0].name, "pls_escape_probe");
}

TEST(MetricsExport, RunLogOneRecordPerTerminalAndRecount) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  const std::string path =
      testing::TempDir() + "pls_metrics_export_test_runs.jsonl";
  std::remove(path.c_str());

  std::uint64_t expected_key = 0;
  std::uint64_t expected_runs = 0;
  std::uint64_t expected_elements = 0;
  {
    obs::MetricsSession metrics(/*interval_ms=*/2, path);
    pls::config cfg;
    cfg.parallelism = 2;
    cfg.grain = 64;
    cfg.profile = true;
    pls::run(cfg, [&](pls::session& s) {
      constexpr int kStreamTerminals = 3;
      for (int i = 0; i < kStreamTerminals; ++i) {
        (void)stream_reduce(s, 1 << 12);
      }
      const auto coeffs = coefficients(1 << 10);
      pls::powerlist::PolynomialFunction<double> vp;
      const auto view = pls::powerlist::view_of(coeffs);
      (void)s.execute_profiled(vp, view, 0.9991);

      const auto runs = s.runs();
      ASSERT_EQ(runs.size(),
                static_cast<std::size_t>(kStreamTerminals) + 1u)
          << "expected exactly one run record per executed terminal";
      // The last record correlates with the thread's last plan.
      EXPECT_EQ(runs.back().cache_key, s.plan().cache_key);
      EXPECT_EQ(runs.back().terminal, "power_function");
      for (const obs::RunRecord& r : runs) {
        EXPECT_GT(r.counters.elements_accumulated, 0u);
        expected_elements += r.counters.elements_accumulated;
      }
      expected_key = runs.back().cache_key;
      expected_runs = runs.size();
    });
  }  // MetricsSession teardown flushes the JSONL log.

  std::ifstream in(path);
  ASSERT_TRUE(in) << "run log was not written: " << path;
  std::string line;
  std::uint64_t run_lines = 0;
  std::uint64_t sample_lines = 0;
  std::uint64_t recounted_elements = 0;
  std::string last_key;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.front(), '{');
    ASSERT_EQ(line.back(), '}');
    const std::string type = json_field(line, "type");
    if (type == "run") {
      ++run_lines;
      last_key = json_field(line, "cache_key");
      const std::string elements =
          json_field(line, "elements_accumulated");
      ASSERT_FALSE(elements.empty());
      recounted_elements += std::strtoull(elements.c_str(), nullptr, 10);
    } else {
      ASSERT_EQ(type, "sample");
      ++sample_lines;
    }
  }
  // Parse-and-recount: the log carries the same run count, the same
  // element totals, and the same (full 64-bit, string-encoded) cache key
  // that the in-process registry reported.
  EXPECT_EQ(run_lines, expected_runs);
  EXPECT_EQ(recounted_elements, expected_elements);
  EXPECT_EQ(last_key, std::to_string(expected_key));
  EXPECT_GE(sample_lines, 1u) << "teardown pushes at least one sample";
  std::remove(path.c_str());
}

}  // namespace
