// Observability overhead self-test: the always-on instrumentation
// (counters + latency histograms) plus a fully enabled profiling window
// (critical-path recorder + trace recorder) must not slow a fork-join
// workload beyond a generous bound. This is a tripwire for accidental
// hot-path regressions (a mutex on the fork path, a syscall per leaf),
// not a precise benchmark — the bound is deliberately loose so shared-host
// noise cannot fail it.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <numeric>
#include <vector>

#include "observe/critical_path.hpp"
#include "observe/export.hpp"
#include "observe/histogram.hpp"
#include "observe/sampler.hpp"
#include "observe/trace.hpp"
#include "powerlist/algorithms/map_reduce.hpp"
#include "powerlist/executors.hpp"

namespace {

namespace obs = pls::observe;

double run_workload_ms(pls::forkjoin::ForkJoinPool& pool,
                       const std::vector<long>& data, int rounds) {
  pls::powerlist::ReduceFunction<long, std::plus<long>> sum{
      std::plus<long>{}};
  const auto view = pls::powerlist::view_of(data);
  const long expected =
      static_cast<long>(data.size()) *
      (static_cast<long>(data.size()) + 1) / 2;
  double best_ms = 1e300;
  for (int i = 0; i < rounds; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const long r =
        pls::powerlist::execute_forkjoin(pool, sum, view, {}, 1 << 8);
    const auto t1 = std::chrono::steady_clock::now();
    EXPECT_EQ(r, expected);
    best_ms = std::min(
        best_ms,
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best_ms;
}

TEST(ObserveOverhead, ProfiledRunWithinBoundOfPlainRun) {
  pls::forkjoin::ForkJoinPool pool(2);
  std::vector<long> data(1 << 16);
  std::iota(data.begin(), data.end(), 1);
  constexpr int kRounds = 5;

  // Warm up the pool and page in the data before either measurement.
  run_workload_ms(pool, data, 1);

  // Plain: recorders off (the default) — only the always-on counter and
  // histogram increments remain.
  const double plain_ms = run_workload_ms(pool, data, kRounds);

  // Profiled: critical-path and trace recorders enabled.
  auto& cp = obs::CriticalPathRecorder::global();
  auto& tr = obs::TraceRecorder::global();
  cp.clear();
  cp.enable();
  tr.clear();
  tr.enable();
  const double profiled_ms = run_workload_ms(pool, data, kRounds);
  tr.disable();
  tr.clear();
  cp.disable();
  cp.clear();

  // Bound: 5x plus 20 ms of slack. On this workload (2^16 elements,
  // 2^8-element leaves, so ~256 leaf tasks per run) real overhead is a
  // few percent; a hot-path mistake (per-element locking, syscalls)
  // blows past 5x immediately.
  EXPECT_LT(profiled_ms, plain_ms * 5.0 + 20.0)
      << "plain=" << plain_ms << "ms profiled=" << profiled_ms << "ms";
}

TEST(ObserveOverhead, ActiveSamplerWithinBound) {
  // An aggressively fast (1 ms) background sampler runs concurrently with
  // the workload: registry collection walks every counter/histogram slot,
  // so this checks the sampler stays off the execution hot paths (it
  // must cost reads, never locks the workers touch).
  pls::forkjoin::ForkJoinPool pool(2);
  std::vector<long> data(1 << 16);
  std::iota(data.begin(), data.end(), 1);
  constexpr int kRounds = 5;
  run_workload_ms(pool, data, 1);
  const double plain_ms = run_workload_ms(pool, data, kRounds);

  double sampled_ms = 0.0;
  {
    obs::MetricsSession session(/*interval_ms=*/1);
    EXPECT_EQ(obs::MetricsSampler::global().running(), obs::kEnabled);
    sampled_ms = run_workload_ms(pool, data, kRounds);
  }
  EXPECT_LT(sampled_ms, plain_ms * 5.0 + 20.0)
      << "plain=" << plain_ms << "ms sampled=" << sampled_ms << "ms";
}

TEST(ObserveOverhead, MetricsSessionLeavesNoResidue) {
  // After teardown the sampling thread is gone and the ring stops
  // growing — further work must not produce samples.
  { obs::MetricsSession session(/*interval_ms=*/1); }
  EXPECT_FALSE(obs::MetricsSampler::global().running());
  const auto pushed_before = obs::MetricsSampler::global().ring().total_pushed();
  pls::forkjoin::ForkJoinPool pool(2);
  std::vector<long> data(1 << 12);
  std::iota(data.begin(), data.end(), 1);
  run_workload_ms(pool, data, 2);
  EXPECT_EQ(obs::MetricsSampler::global().ring().total_pushed(),
            pushed_before);
}

TEST(ObserveOverhead, DisabledRecordersLeaveNoResidue) {
  // After a profiled window is torn down, new runs must not accumulate
  // nodes or trace events.
  pls::forkjoin::ForkJoinPool pool(2);
  std::vector<long> data(1 << 12);
  std::iota(data.begin(), data.end(), 1);
  run_workload_ms(pool, data, 1);
  EXPECT_EQ(obs::CriticalPathRecorder::global().node_count(), 0u);
  EXPECT_TRUE(obs::TraceRecorder::global().events().empty());
}

}  // namespace
