// Critical-path recorder contract: T1/T∞/phase attribution on hand-built
// DAGs with scale = 1.0 (ticks are nanoseconds, so the expected numbers
// are exact), serial composition of roots, the folded flamegraph export,
// and a sanity check that the span measured on a real profiled run stays
// within a (generously) documented factor of the simmachine prediction.
#include "observe/critical_path.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "observe/flamegraph.hpp"
#include "powerlist/algorithms/map_reduce.hpp"
#include "powerlist/executors.hpp"
#include "simmachine/costmodel.hpp"
#include "simmachine/scheduler.hpp"
#include "simmachine/trace.hpp"

namespace {

namespace obs = pls::observe;
using obs::CpPhase;
using obs::CriticalPathRecorder;

class CriticalPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kEnabled) {
      GTEST_SKIP() << "PLS_OBSERVE=0: recorder is a no-op shell "
                      "(covered by killswitch_test)";
    }
    CriticalPathRecorder::global().clear();
    CriticalPathRecorder::global().enable();
  }

  void TearDown() override {
    CriticalPathRecorder::global().disable();
    CriticalPathRecorder::global().clear();
  }
};

TEST_F(CriticalPathTest, HandBuiltTreeWorkSpanAndPhases) {
  auto& rec = CriticalPathRecorder::global();
  // root splits (10), children accumulate (left 100, right 40),
  // root combines (5): T1 = 155, T∞ = 10 + 5 + max(100, 40) = 115.
  obs::CpNode* root = rec.new_root();
  root->add_time(CpPhase::kSplit, 10);
  root->add_time(CpPhase::kCombine, 5);
  auto [l, r] = rec.fork(root);
  l->add_time(CpPhase::kAccumulate, 100);
  l->elements += 64;
  r->add_time(CpPhase::kAccumulate, 40);
  r->elements += 64;

  const auto s = rec.analyze(/*scale=*/1.0);
  EXPECT_DOUBLE_EQ(s.work_ns, 155.0);
  EXPECT_DOUBLE_EQ(s.span_ns, 115.0);
  EXPECT_DOUBLE_EQ(s.parallelism(), 155.0 / 115.0);
  EXPECT_DOUBLE_EQ(s.brent_bound_ns(2), 155.0 / 2.0 + 115.0);
  EXPECT_DOUBLE_EQ(s.phases.split_ns, 10.0);
  EXPECT_DOUBLE_EQ(s.phases.accumulate_ns, 140.0);
  EXPECT_DOUBLE_EQ(s.phases.combine_ns, 5.0);
  EXPECT_EQ(s.nodes, 3u);
  EXPECT_EQ(s.leaves, 2u);
  EXPECT_EQ(s.elements, 128u);
  EXPECT_EQ(s.max_depth, 1u);
}

TEST_F(CriticalPathTest, DeeperTreeSpanFollowsHeaviestPath) {
  auto& rec = CriticalPathRecorder::global();
  obs::CpNode* root = rec.new_root();
  root->add_time(CpPhase::kSplit, 1);
  auto [l, r] = rec.fork(root);
  l->add_time(CpPhase::kAccumulate, 10);
  r->add_time(CpPhase::kSplit, 2);
  auto [rl, rr] = rec.fork(r);
  rl->add_time(CpPhase::kAccumulate, 7);
  rr->add_time(CpPhase::kAccumulate, 30);

  // Heaviest root-to-leaf path: root(1) -> r(2) -> rr(30) = 33.
  const auto s = rec.analyze(1.0);
  EXPECT_DOUBLE_EQ(s.work_ns, 50.0);
  EXPECT_DOUBLE_EQ(s.span_ns, 33.0);
  EXPECT_EQ(s.max_depth, 2u);
  EXPECT_EQ(s.leaves, 3u);
}

TEST_F(CriticalPathTest, RootsComposeSerially) {
  auto& rec = CriticalPathRecorder::global();
  obs::CpNode* a = rec.new_root();
  a->add_time(CpPhase::kAccumulate, 40);
  obs::CpNode* b = rec.new_root();
  b->add_time(CpPhase::kAccumulate, 25);

  // Two terminal operations recorded in one window ran one after the
  // other, so their spans add: T∞ = 40 + 25.
  const auto s = rec.analyze(1.0);
  EXPECT_DOUBLE_EQ(s.work_ns, 65.0);
  EXPECT_DOUBLE_EQ(s.span_ns, 65.0);
}

TEST_F(CriticalPathTest, PhaseTableListsEveryPhaseAndStealIdle) {
  auto& rec = CriticalPathRecorder::global();
  obs::CpNode* root = rec.new_root();
  root->add_time(CpPhase::kSplit, 100);
  auto [l, r] = rec.fork(root);
  l->add_time(CpPhase::kAccumulate, 500);
  r->add_time(CpPhase::kCombine, 200);

  const auto s = rec.analyze(1.0);
  const std::string table = s.phase_table(/*wall_ns=*/1000.0, /*workers=*/2);
  EXPECT_NE(table.find("split"), std::string::npos);
  EXPECT_NE(table.find("accumulate"), std::string::npos);
  EXPECT_NE(table.find("combine"), std::string::npos);
  EXPECT_NE(table.find("steal-idle"), std::string::npos);
  // Without a wall-clock bound there is no idle row.
  const std::string bare = s.phase_table();
  EXPECT_EQ(bare.find("steal-idle"), std::string::npos);
}

TEST_F(CriticalPathTest, FlamegraphFoldedFormat) {
  auto& rec = CriticalPathRecorder::global();
  obs::CpNode* root = rec.new_root();
  root->add_time(CpPhase::kSplit, 4000);
  auto [l, r] = rec.fork(root);
  l->add_time(CpPhase::kAccumulate, 8000);
  r->add_time(CpPhase::kAccumulate, 6000);

  // Scale 1000 ns/tick makes one tick one microsecond of folded weight.
  std::ostringstream os;
  obs::write_flamegraph(os, rec, /*ns_per_tick_scale=*/1000.0);
  const std::string folded = os.str();
  EXPECT_NE(folded.find("root#0;split 4000\n"), std::string::npos);
  EXPECT_NE(folded.find("root#0;L;accumulate 8000\n"), std::string::npos);
  EXPECT_NE(folded.find("root#0;R;accumulate 6000\n"), std::string::npos);
  // Every line is "stack weight": ends in a digit, frames ';'-separated.
  std::istringstream lines(folded);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(line.back())))
        << line;
    EXPECT_NE(line.find(';'), std::string::npos) << line;
  }
}

TEST_F(CriticalPathTest, MeasuredSpanSanityAgainstSimulation) {
  // Profile a real fork-join reduce and compare the measured critical
  // path against the simmachine's prediction for the same tree shape.
  // Measured time on a shared single-CPU host is noisy and the sim's
  // cost model is calibrated per-element, so the contract is deliberately
  // loose: structural invariants must hold exactly (span <= work,
  // parallelism >= 1, span on the order of the tree depth) and the
  // measured/simulated span ratio must stay within a factor of 200 —
  // enough to catch unit mistakes (ms vs ns) and attribution bugs while
  // never tripping on scheduler jitter.
  pls::forkjoin::ForkJoinPool pool(2);
  constexpr std::size_t kN = 1 << 14;
  constexpr std::size_t kLeaf = 1 << 8;
  std::vector<long> data(kN);
  std::iota(data.begin(), data.end(), 1);
  pls::powerlist::ReduceFunction<long, std::plus<long>> sum{
      std::plus<long>{}};
  const auto view = pls::powerlist::view_of(std::as_const(data));

  const auto report =
      pls::powerlist::execute_forkjoin_profiled(pool, sum, view, {}, kLeaf);
  ASSERT_EQ(report.result, static_cast<long>(kN) * (kN + 1) / 2);
  ASSERT_FALSE(report.profile.empty());

  const auto& p = report.profile;
  EXPECT_GT(p.work_ns, 0.0);
  EXPECT_GT(p.span_ns, 0.0);
  EXPECT_LE(p.span_ns, p.work_ns + 1.0);
  EXPECT_GE(p.parallelism(), 1.0 - 1e-9);
  EXPECT_EQ(p.leaves, kN / kLeaf);
  EXPECT_EQ(p.elements, kN);

  // Simulate the same balanced tree (2^6 leaves of 2^8 elements) with a
  // cost model calibrated so one abstract op is one element, priced at
  // the measured per-element accumulate time.
  const double accum_ns = std::max(p.phases.accumulate_ns, 1.0);
  const auto model = pls::simmachine::CostModel::calibrated(
      accum_ns, static_cast<double>(kN));
  const auto trace = pls::simmachine::TaskTrace::balanced(
      /*levels=*/6, kN,
      [](std::size_t len) { return static_cast<double>(len); },
      [](std::size_t) { return 50.0; }, [](std::size_t) { return 50.0; });
  const auto sim = pls::simmachine::Simulator(model, 2).run(trace);

  ASSERT_GT(sim.span_ns, 0.0);
  const double ratio = p.span_ns / sim.span_ns;
  EXPECT_GT(ratio, 1.0 / 200.0) << "measured span implausibly small";
  EXPECT_LT(ratio, 200.0) << "measured span implausibly large";

  // The report's human-readable summary is populated for profiled runs.
  const std::string summary = report.profile_summary(pool.parallelism());
  EXPECT_NE(summary.find("work T1"), std::string::npos);
  EXPECT_NE(summary.find("parallelism"), std::string::npos);
  EXPECT_NE(summary.find("steal-idle"), std::string::npos);
}

}  // namespace
