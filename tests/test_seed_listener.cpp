// Linked into every test binary (tests/CMakeLists.txt): on the first
// failed assertion of a run, print the process-wide test seed so any red
// run — property-based or not — carries its replay line.
#include <gtest/gtest.h>

#include <cstdio>

#include "support/rng.hpp"

namespace {

class SeedReporter final : public testing::EmptyTestEventListener {
  void OnTestPartResult(const testing::TestPartResult& result) override {
    if (!result.failed() || printed_) return;
    printed_ = true;
    std::printf(
        "[  SEED  ] PLS_TEST_SEED=0x%llx — export this variable to replay "
        "every randomized choice of this binary identically\n",
        static_cast<unsigned long long>(pls::test_seed()));
    std::fflush(stdout);
  }

  bool printed_ = false;
};

[[maybe_unused]] const bool kRegistered = [] {
  testing::UnitTest::GetInstance()->listeners().Append(new SeedReporter);
  return true;
}();

}  // namespace
