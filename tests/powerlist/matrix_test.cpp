#include "powerlist/algorithms/matrix.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace {

using namespace pls::powerlist;
using pls::forkjoin::ForkJoinPool;

Matrix random_matrix(std::size_t n, std::uint64_t seed) {
  pls::Xoshiro256 rng(seed);
  Matrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m.at(i, j) = rng.next_double() * 2.0 - 1.0;
    }
  }
  return m;
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  pls::Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.next_double() * 2.0 - 1.0;
  return v;
}

TEST(Matrix, OrderMustBePowerOfTwo) {
  EXPECT_THROW(Matrix(3), pls::precondition_error);
  Matrix ok(4);
  EXPECT_EQ(ok.order(), 4u);
}

TEST(Matrix, IdentityBehaviour) {
  const auto id = Matrix::identity(8);
  const auto a = random_matrix(8, 1);
  EXPECT_LT(matmul_naive(a, id).max_abs_diff(a), 1e-12);
  EXPECT_LT(matmul_naive(id, a).max_abs_diff(a), 1e-12);
}

TEST(MatrixView, QuadrantAddressing) {
  Matrix m(4);
  int v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) m.at(i, j) = v++;
  }
  MatrixView<const Matrix> view(m);
  EXPECT_EQ(view.quadrant(0, 0).at(0, 0), 0.0);
  EXPECT_EQ(view.quadrant(0, 1).at(0, 0), 2.0);
  EXPECT_EQ(view.quadrant(1, 0).at(0, 0), 8.0);
  EXPECT_EQ(view.quadrant(1, 1).at(1, 1), 15.0);
}

TEST(MatrixView, NestedQuadrants) {
  Matrix m(8);
  m.at(6, 7) = 42.0;
  MatrixView<const Matrix> view(m);
  // (6,7) lives in quadrant (1,1), sub-quadrant (1,1), cell (0,1).
  EXPECT_EQ(view.quadrant(1, 1).quadrant(1, 1).at(0, 1), 42.0);
}

class MatmulSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatmulSweep, DcMatchesNaive) {
  const auto a = random_matrix(GetParam(), GetParam());
  const auto b = random_matrix(GetParam(), GetParam() + 1);
  const auto reference = matmul_naive(a, b);
  for (std::size_t leaf : {std::size_t{1}, std::size_t{4}, GetParam()}) {
    EXPECT_LT(matmul_dc(a, b, leaf).max_abs_diff(reference), 1e-9)
        << "leaf=" << leaf;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, MatmulSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 64));

TEST(Matmul, ParallelMatchesSequential) {
  ForkJoinPool pool(4);
  const auto a = random_matrix(64, 7);
  const auto b = random_matrix(64, 9);
  const auto seq = matmul_dc(a, b, 8);
  const auto par = matmul_dc(a, b, 8, &pool);
  EXPECT_LT(par.max_abs_diff(seq), 1e-12);
}

TEST(Matmul, AssociativityNumericalCheck) {
  const auto a = random_matrix(16, 11);
  const auto b = random_matrix(16, 13);
  const auto c = random_matrix(16, 17);
  const auto left = matmul_dc(matmul_dc(a, b, 4), c, 4);
  const auto right = matmul_dc(a, matmul_dc(b, c, 4), 4);
  EXPECT_LT(left.max_abs_diff(right), 1e-9);
}

TEST(Transpose, MatchesElementwise) {
  const auto a = random_matrix(32, 19);
  const auto t = transpose_dc(a, 4);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 32; ++j) {
      EXPECT_EQ(t.at(j, i), a.at(i, j));
    }
  }
}

TEST(Transpose, IsInvolution) {
  const auto a = random_matrix(64, 23);
  EXPECT_LT(transpose_dc(transpose_dc(a, 8), 8).max_abs_diff(a), 1e-15);
}

TEST(Transpose, ProductRule) {
  // (AB)^T == B^T A^T.
  const auto a = random_matrix(16, 29);
  const auto b = random_matrix(16, 31);
  const auto lhs = transpose_dc(matmul_dc(a, b, 4), 4);
  const auto rhs = matmul_dc(transpose_dc(b, 4), transpose_dc(a, 4), 4);
  EXPECT_LT(lhs.max_abs_diff(rhs), 1e-9);
}

class MatvecSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatvecSweep, DcMatchesNaive) {
  const auto a = random_matrix(GetParam(), GetParam() * 3);
  const auto x = random_vector(GetParam(), GetParam() * 5);
  const auto reference = matvec_naive(a, x);
  const auto got = matvec_dc(a, x, 4);
  ASSERT_EQ(got.size(), reference.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], reference[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, MatvecSweep,
                         ::testing::Values(1, 2, 8, 64, 256));

TEST(Matvec, ParallelMatchesSequential) {
  ForkJoinPool pool(4);
  const auto a = random_matrix(256, 37);
  const auto x = random_vector(256, 41);
  const auto seq = matvec_dc(a, x, 16);
  const auto par = matvec_dc(a, x, 16, &pool);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_DOUBLE_EQ(par[i], seq[i]);
  }
}

TEST(Matvec, LinearityInVector) {
  const auto a = random_matrix(32, 43);
  const auto x = random_vector(32, 47);
  const auto y = random_vector(32, 53);
  std::vector<double> xy(32);
  for (std::size_t i = 0; i < 32; ++i) xy[i] = x[i] + y[i];
  const auto axy = matvec_dc(a, xy, 8);
  const auto ax = matvec_dc(a, x, 8);
  const auto ay = matvec_dc(a, y, 8);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(axy[i], ax[i] + ay[i], 1e-9);
  }
}

}  // namespace
