// Unit tests for the PowerList algorithm library: pointwise operators,
// map/reduce, inv/rev, scan, Gray codes.
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "powerlist/algorithms/gray.hpp"
#include "powerlist/algorithms/inv_rev.hpp"
#include "powerlist/algorithms/map_reduce.hpp"
#include "powerlist/algorithms/pointwise.hpp"
#include "powerlist/algorithms/scan.hpp"
#include "powerlist/executors.hpp"

namespace {

using namespace pls::powerlist;

std::vector<int> iota(std::size_t n, int start = 0) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

// ---- pointwise ------------------------------------------------------

TEST(Pointwise, AddAndMul) {
  const auto a = iota(4, 1);       // 1 2 3 4
  const auto b = iota(4, 10);      // 10 11 12 13
  EXPECT_EQ(add<int>(view_of(a), view_of(b)),
            (std::vector<int>{11, 13, 15, 17}));
  EXPECT_EQ(mul<int>(view_of(a), view_of(b)),
            (std::vector<int>{10, 22, 36, 52}));
}

TEST(Pointwise, DissimilarRejected) {
  const auto a = iota(4);
  const auto b = iota(8);
  EXPECT_THROW(add<int>(view_of(a), view_of(b)), pls::precondition_error);
}

TEST(Pointwise, IntoWritesDestination) {
  const auto a = iota(4, 1);
  const auto b = iota(4, 1);
  std::vector<int> dst(4);
  pointwise_into(view_of(a), view_of(b), view_of(dst),
                 [](int x, int y) { return x * y; });
  EXPECT_EQ(dst, (std::vector<int>{1, 4, 9, 16}));
}

TEST(Pointwise, BroadcastScalar) {
  const auto p = iota(4, 1);
  const auto out =
      broadcast(3, view_of(p), [](int s, int v) { return s * v; });
  EXPECT_EQ(out, (std::vector<int>{3, 6, 9, 12}));
}

TEST(Pointwise, WorksOnStridedViews) {
  const auto data = iota(8);  // 0..7
  const auto [evens, odds] = view_of(data).zip();
  EXPECT_EQ(add<int>(evens, odds), (std::vector<int>{1, 5, 9, 13}));
}

// ---- map / reduce ----------------------------------------------------

TEST(MapFunction, TieProducesMappedList) {
  const auto data = iota(8);
  MapFunction<int, int, int (*)(const int&)> doubler(
      [](const int& v) { return v * 2; }, DecompositionOp::kTie);
  const auto out = execute_sequential(doubler, view_of(data), {}, 2);
  EXPECT_EQ(out.values(), (std::vector<int>{0, 2, 4, 6, 8, 10, 12, 14}));
}

TEST(MapFunction, ZipProducesSameOrder) {
  const auto data = iota(8);
  MapFunction<int, int, int (*)(const int&)> doubler(
      [](const int& v) { return v * 2; }, DecompositionOp::kZip);
  const auto out = execute_sequential(doubler, view_of(data), {}, 1);
  EXPECT_EQ(out.values(), (std::vector<int>{0, 2, 4, 6, 8, 10, 12, 14}));
}

TEST(MapFunction, TypeChangingMap) {
  const std::vector<int> data{1, 22, 333, 4444};
  MapFunction<int, std::string, std::string (*)(const int&)> stringify(
      [](const int& v) { return std::to_string(v); }, DecompositionOp::kTie);
  const auto out = execute_sequential(stringify, view_of(data));
  EXPECT_EQ(out.values(),
            (std::vector<std::string>{"1", "22", "333", "4444"}));
}

TEST(MapInto, NoAllocationPath) {
  const auto src = iota(16);
  std::vector<int> dst(16, -1);
  map_into(view_of(src), view_of(dst), [](int v) { return v + 100; },
           DecompositionOp::kZip);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(dst[static_cast<std::size_t>(i)], i + 100);
}

TEST(ReduceFunction, MaxViaReduce) {
  std::vector<int> data{5, 17, 3, 9, 11, 2, 8, 1};
  ReduceFunction<int, const int& (*)(const int&, const int&)> maxer(
      [](const int& a, const int& b) -> const int& {
        return a > b ? a : b;
      });
  EXPECT_EQ(execute_sequential(maxer, view_of(std::as_const(data))), 17);
}

// ---- inv / rev -------------------------------------------------------

TEST(Inv, MatchesBitReversalPermutation) {
  const auto data = iota(16);
  InvFunction<int> inv;
  const auto via_function =
      execute_sequential(inv, view_of(data)).values();
  const auto direct = inv_permutation(view_of(data));
  EXPECT_EQ(via_function, direct);
}

TEST(Inv, KnownSmallCase) {
  const auto data = iota(8);
  const auto out = inv_permutation(view_of(data));
  // index b -> position rev(b): [0,4,2,6,1,5,3,7]
  EXPECT_EQ(out, (std::vector<int>{0, 4, 2, 6, 1, 5, 3, 7}));
}

TEST(Inv, IsInvolution) {
  const auto data = iota(64);
  const auto once = inv_permutation(view_of(data));
  const auto twice = inv_permutation(view_of(once));
  EXPECT_EQ(twice, data);
}

TEST(Inv, FunctionAgreesAcrossLeafSizes) {
  const auto data = iota(32);
  InvFunction<int> inv;
  const auto reference = inv_permutation(view_of(data));
  for (std::size_t leaf : {1u, 2u, 4u, 8u, 32u}) {
    EXPECT_EQ(execute_sequential(inv, view_of(data), {}, leaf).values(),
              reference)
        << "leaf=" << leaf;
  }
}

TEST(Inv, InPlaceMatchesOutOfPlace) {
  auto data = iota(128);
  const auto expected = inv_permutation(view_of(std::as_const(data)));
  inv_permute_in_place(data);
  EXPECT_EQ(data, expected);
}

TEST(Rev, ReversesList) {
  const auto data = iota(8);
  RevFunction<int> rev;
  const auto out = execute_sequential(rev, view_of(data)).values();
  EXPECT_EQ(out, (std::vector<int>{7, 6, 5, 4, 3, 2, 1, 0}));
}

TEST(Rev, AgreesAcrossLeafSizes) {
  const auto data = iota(64);
  RevFunction<int> rev;
  auto expected = data;
  std::reverse(expected.begin(), expected.end());
  for (std::size_t leaf : {1u, 4u, 16u, 64u}) {
    EXPECT_EQ(execute_sequential(rev, view_of(data), {}, leaf).values(),
              expected);
  }
}

// ---- scan ------------------------------------------------------------

TEST(Scan, SequentialReference) {
  const std::vector<int> data{1, 2, 3, 4};
  EXPECT_EQ(scan_sequential(view_of(data), std::plus<int>{}),
            (std::vector<int>{1, 3, 6, 10}));
}

TEST(Scan, SklanskyMatchesSequential) {
  const auto data = iota(64, 1);
  SklanskyScanFunction<int, std::plus<int>> scan{std::plus<int>{}};
  const auto expected = scan_sequential(view_of(data), std::plus<int>{});
  for (std::size_t leaf : {1u, 4u, 16u}) {
    EXPECT_EQ(execute_sequential(scan, view_of(data), {}, leaf).values(),
              expected)
        << "leaf=" << leaf;
  }
}

TEST(Scan, LadnerFischerMatchesSequential) {
  const auto data = iota(128, 1);
  EXPECT_EQ(scan_ladner_fischer(view_of(data), std::plus<int>{}),
            scan_sequential(view_of(data), std::plus<int>{}));
}

TEST(Scan, NonCommutativeOperator) {
  // Scan with string concatenation: associativity suffices for both
  // constructions; order must be preserved.
  const std::vector<std::string> data{"a", "b", "c", "d"};
  const auto expected =
      scan_sequential(view_of(data), std::plus<std::string>{});
  EXPECT_EQ(expected, (std::vector<std::string>{"a", "ab", "abc", "abcd"}));
  SklanskyScanFunction<std::string, std::plus<std::string>> scan{
      std::plus<std::string>{}};
  EXPECT_EQ(execute_sequential(scan, view_of(data)).values(), expected);
  EXPECT_EQ(scan_ladner_fischer(view_of(data), std::plus<std::string>{}),
            expected);
}

TEST(Scan, SingletonScan) {
  const std::vector<int> data{7};
  EXPECT_EQ(scan_ladner_fischer(view_of(data), std::plus<int>{}),
            (std::vector<int>{7}));
}

// ---- gray ------------------------------------------------------------

TEST(Gray, SequenceMatchesClosedForm) {
  const auto g = gray_sequence(8);
  ASSERT_EQ(g.size(), 256u);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g[i], pls::gray_code(i));
  }
}

TEST(Gray, ZeroBits) {
  EXPECT_EQ(gray_sequence(0), (std::vector<std::uint64_t>{0}));
}

TEST(Gray, AdjacencyProperty) {
  const auto g = gray_sequence(6);
  for (std::size_t i = 0; i + 1 < g.size(); ++i) {
    EXPECT_EQ(pls::popcount64(g[i] ^ g[i + 1]), 1u) << "at " << i;
  }
  // And the cycle closes: last and first also differ by one bit.
  EXPECT_EQ(pls::popcount64(g.front() ^ g.back()), 1u);
}

}  // namespace
