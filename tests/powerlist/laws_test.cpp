// Property-based tests of the PowerList algebra and the stream laws,
// parameterised over sizes (TEST_P sweeps, as the theory's induction
// principle suggests: check singletons and both constructors).
#include <gtest/gtest.h>

#include <functional>
#include <numeric>

#include "powerlist/algorithms/inv_rev.hpp"
#include "powerlist/algorithms/map_reduce.hpp"
#include "powerlist/algorithms/polynomial.hpp"
#include "powerlist/algorithms/scan.hpp"
#include "powerlist/collector_functions.hpp"
#include "powerlist/executors.hpp"
#include "streams/stream.hpp"
#include "support/rng.hpp"

namespace {

using namespace pls::powerlist;
using pls::streams::Stream;

std::vector<long> random_longs(std::size_t n, std::uint64_t seed) {
  pls::Xoshiro256 rng(seed);
  std::vector<long> v(n);
  for (auto& x : v) x = static_cast<long>(rng.next_below(1000)) - 500;
  return v;
}

class AlgebraLaws : public ::testing::TestWithParam<std::size_t> {
 protected:
  std::size_t n() const { return GetParam(); }
};

// p = tie(p).first | tie(p).second and p = zip interleave — deconstruction
// followed by the matching construction is the identity.
TEST_P(AlgebraLaws, DeconstructionConstructionIdentity) {
  if (n() < 2) return;
  const auto data = random_longs(n(), 1);
  const auto v = view_of(data);
  {
    const auto [p, q] = v.tie();
    auto rebuilt = p.to_vector();
    const auto right = q.to_vector();
    rebuilt.insert(rebuilt.end(), right.begin(), right.end());
    EXPECT_EQ(rebuilt, data);
  }
  {
    const auto [p, q] = v.zip();
    std::vector<long> rebuilt;
    for (std::size_t i = 0; i < p.length(); ++i) {
      rebuilt.push_back(p[i]);
      rebuilt.push_back(q[i]);
    }
    EXPECT_EQ(rebuilt, data);
  }
}

// tie and zip commute: zip halves of tie halves equal tie halves of zip
// halves (the "commutativity of the two deconstructions" that makes the
// two-operator algebra coherent).
TEST_P(AlgebraLaws, TieZipCommute) {
  if (n() < 4) return;
  const auto data = random_longs(n(), 2);
  const auto v = view_of(data);
  const auto [t1, t2] = v.tie();
  const auto [z1, z2] = v.zip();
  // zip of first tie half == first tie half of zip halves.
  const auto [t1z1, t1z2] = t1.zip();
  const auto [z1t1, z1t2] = z1.tie();
  const auto [z2t1, z2t2] = z2.tie();
  EXPECT_EQ(t1z1.to_vector(), z1t1.to_vector());
  EXPECT_EQ(t1z2.to_vector(), z2t1.to_vector());
  const auto [t2z1, t2z2] = t2.zip();
  EXPECT_EQ(t2z1.to_vector(), z1t2.to_vector());
  EXPECT_EQ(t2z2.to_vector(), z2t2.to_vector());
  (void)t1z2;
  (void)z1t2;
}

TEST_P(AlgebraLaws, InvIsInvolution) {
  const auto data = random_longs(n(), 3);
  const auto once = inv_permutation(view_of(data));
  EXPECT_EQ(inv_permutation(view_of(once)), data);
}

TEST_P(AlgebraLaws, RevIsInvolution) {
  const auto data = random_longs(n(), 4);
  RevFunction<long> rev;
  const auto once = execute_sequential(rev, view_of(data)).values();
  EXPECT_EQ(execute_sequential(rev, view_of(once)).values(), data);
}

TEST_P(AlgebraLaws, InvCommutesWithMap) {
  // map(f) ∘ inv == inv ∘ map(f): permutations commute with pointwise maps.
  const auto data = random_longs(n(), 5);
  auto f = [](long v) { return v * 3 + 1; };
  auto mapped = data;
  for (auto& v : mapped) v = f(v);
  const auto inv_then_map = [&] {
    auto p = inv_permutation(view_of(data));
    for (auto& v : p) v = f(v);
    return p;
  }();
  EXPECT_EQ(inv_then_map, inv_permutation(view_of(mapped)));
}

TEST_P(AlgebraLaws, MapFusion) {
  // map(f) . map(g) == map(f . g) through the stream pipeline.
  const auto data = random_longs(n(), 6);
  const auto twice = Stream<long>::of(data)
                         .map([](long v) { return v + 7; })
                         .map([](long v) { return v * 2; })
                         .to_vector();
  const auto fused = Stream<long>::of(data)
                         .map([](long v) { return (v + 7) * 2; })
                         .to_vector();
  EXPECT_EQ(twice, fused);
}

TEST_P(AlgebraLaws, ReduceIsDecompositionInvariant) {
  // For an associative+commutative op, tie- and zip-based reduce agree
  // (and match the sequential fold).
  const auto data = random_longs(n(), 7);
  const long expected =
      std::accumulate(data.begin(), data.end(), 0L, std::plus<long>{});
  ReduceFunction<long, std::plus<long>> tie_sum{std::plus<long>{},
                                                DecompositionOp::kTie};
  ReduceFunction<long, std::plus<long>> zip_sum{std::plus<long>{},
                                                DecompositionOp::kZip};
  EXPECT_EQ(execute_sequential(tie_sum, view_of(data)), expected);
  EXPECT_EQ(execute_sequential(zip_sum, view_of(data)), expected);
}

TEST_P(AlgebraLaws, ReduceIsHomomorphismOnTie) {
  // reduce(p | q) == op(reduce(p), reduce(q)): the list-homomorphism law.
  if (n() < 2) return;
  const auto data = random_longs(n(), 8);
  const auto [p, q] = view_of(data).tie();
  ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  EXPECT_EQ(execute_sequential(sum, view_of(data)),
            execute_sequential(sum, p) + execute_sequential(sum, q));
}

TEST_P(AlgebraLaws, ScanLastEqualsReduce) {
  const auto data = random_longs(n(), 9);
  const auto scanned = scan_ladner_fischer(view_of(data), std::plus<long>{});
  ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  EXPECT_EQ(scanned.back(), execute_sequential(sum, view_of(data)));
}

TEST_P(AlgebraLaws, ScanConstructionsAgree) {
  const auto data = random_longs(n(), 10);
  SklanskyScanFunction<long, std::plus<long>> sklansky{std::plus<long>{}};
  EXPECT_EQ(execute_sequential(sklansky, view_of(data)).values(),
            scan_ladner_fischer(view_of(data), std::plus<long>{}));
}

TEST_P(AlgebraLaws, PolynomialIsLinearInCoefficients) {
  // vp(a + b, x) == vp(a, x) + vp(b, x).
  const auto a = random_longs(n(), 11);
  const auto b = random_longs(n(), 12);
  std::vector<double> da(a.begin(), a.end()), db(b.begin(), b.end());
  std::vector<double> sum(n());
  for (std::size_t i = 0; i < n(); ++i) sum[i] = da[i] + db[i];
  PolynomialFunction<double> vp;
  const double x = 0.87;
  EXPECT_NEAR(execute_sequential(vp, view_of(sum), x),
              execute_sequential(vp, view_of(da), x) +
                  execute_sequential(vp, view_of(db), x),
              1e-6);
}

TEST_P(AlgebraLaws, IdentityCollectRoundTripBothOperators) {
  // The paper's identity check, swept: any PowerList survives a split
  // with either spliterator and recombination with the matching
  // constructor.
  std::vector<double> data(n());
  std::iota(data.begin(), data.end(), 0.0);
  auto shared = std::make_shared<const std::vector<double>>(data);
  {
    auto sp = std::make_unique<ZipSpliterator<double>>(shared);
    auto out = pls::streams::stream_support::from_spliterator<double>(
                   std::move(sp), true)
                   .with_min_chunk(1)
                   .collect(to_power_array_zip<double>());
    EXPECT_EQ(out.values(), data);
  }
  {
    auto sp = std::make_unique<TieSpliterator<double>>(shared);
    auto out = pls::streams::stream_support::from_spliterator<double>(
                   std::move(sp), true)
                   .with_min_chunk(1)
                   .collect(to_power_array_tie<double>());
    EXPECT_EQ(out.values(), data);
  }
}

TEST_P(AlgebraLaws, StreamFilterComposition) {
  const auto data = random_longs(n(), 13);
  auto p = [](long v) { return v % 2 == 0; };
  auto q = [](long v) { return v > 0; };
  const auto chained =
      Stream<long>::of(data).filter(p).filter(q).to_vector();
  const auto combined = Stream<long>::of(data)
                            .filter([&](long v) { return p(v) && q(v); })
                            .to_vector();
  EXPECT_EQ(chained, combined);
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwoSizes, AlgebraLaws,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256,
                                           1024));

}  // namespace
