#include "powerlist/algorithms/fft.hpp"

#include <gtest/gtest.h>

#include "forkjoin/pool.hpp"
#include "powerlist/executors.hpp"
#include "support/rng.hpp"

namespace {

using namespace pls::powerlist;
using pls::forkjoin::ForkJoinPool;

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  pls::Xoshiro256 rng(seed);
  std::vector<Complex> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.emplace_back(rng.next_double() * 2.0 - 1.0,
                   rng.next_double() * 2.0 - 1.0);
  }
  return v;
}

void expect_near(const std::vector<Complex>& a, const std::vector<Complex>& b,
                 double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), tol) << "re at " << i;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), tol) << "im at " << i;
  }
}

TEST(Fft, PowersAreRootsOfUnity) {
  const auto u = powers(4);
  // w = 8th principal root with negative sign: w^4 = -1... check |u|=1 and
  // u[0] = 1.
  EXPECT_NEAR(u[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(u[0].imag(), 0.0, 1e-12);
  for (const auto& c : u) EXPECT_NEAR(std::abs(c), 1.0, 1e-12);
  // u[2] = w^2 = e^{-i pi/2} = -i.
  EXPECT_NEAR(u[2].real(), 0.0, 1e-12);
  EXPECT_NEAR(u[2].imag(), -1.0, 1e-12);
}

TEST(Fft, SingletonIsIdentity) {
  std::vector<Complex> x{{3.0, -2.0}};
  FftFunction fft;
  const auto out = execute_sequential(fft, view_of(std::as_const(x)));
  expect_near(out, x, 1e-12);
}

TEST(Fft, SizeTwoButterfly) {
  std::vector<Complex> x{{1.0, 0.0}, {2.0, 0.0}};
  FftFunction fft;
  const auto out = execute_sequential(fft, view_of(std::as_const(x)));
  expect_near(out, {{3.0, 0.0}, {-1.0, 0.0}}, 1e-12);
}

TEST(Fft, DeltaHasFlatSpectrum) {
  std::vector<Complex> x(8, Complex{0.0, 0.0});
  x[0] = Complex{1.0, 0.0};
  FftFunction fft;
  const auto out = execute_sequential(fft, view_of(std::as_const(x)));
  for (const auto& c : out) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantSignalConcentratesAtDc) {
  std::vector<Complex> x(16, Complex{1.0, 0.0});
  FftFunction fft;
  const auto out = execute_sequential(fft, view_of(std::as_const(x)));
  EXPECT_NEAR(out[0].real(), 16.0, 1e-9);
  for (std::size_t k = 1; k < out.size(); ++k) {
    EXPECT_NEAR(std::abs(out[k]), 0.0, 1e-9) << k;
  }
}

TEST(Fft, PowerlistMatchesNaiveDft) {
  const auto x = random_signal(64, 7);
  FftFunction fft;
  const auto via_powerlist =
      execute_sequential(fft, view_of(std::as_const(x)));
  const auto via_dft = dft(view_of(std::as_const(x)));
  expect_near(via_powerlist, via_dft, 1e-9);
}

TEST(Fft, LeafSizeSweepAgrees) {
  // Leaves where decomposition stopped compute a direct DFT of the strided
  // sublist (the paper's Section V leaf specialisation); results must not
  // depend on where splitting stops.
  const auto x = random_signal(64, 11);
  FftFunction fft;
  const auto reference = dft(view_of(std::as_const(x)));
  for (std::size_t leaf : {1u, 2u, 4u, 8u, 16u, 64u}) {
    const auto out =
        execute_sequential(fft, view_of(std::as_const(x)), {}, leaf);
    expect_near(out, reference, 1e-9);
  }
}

TEST(Fft, IterativeMatchesPowerlist) {
  const auto x = random_signal(256, 13);
  FftFunction fft;
  const auto via_powerlist =
      execute_sequential(fft, view_of(std::as_const(x)), {}, 4);
  auto iterative = x;
  fft_in_place(iterative);
  expect_near(via_powerlist, iterative, 1e-8);
}

TEST(Fft, ForkJoinMatchesSequential) {
  ForkJoinPool pool(4);
  const auto x = random_signal(128, 17);
  FftFunction fft;
  const auto seq = execute_sequential(fft, view_of(std::as_const(x)), {}, 4);
  const auto par =
      execute_forkjoin(pool, fft, view_of(std::as_const(x)), {}, 4);
  expect_near(par, seq, 1e-12);
}

TEST(Fft, RoundTripThroughInverse) {
  const auto x = random_signal(128, 19);
  auto spectrum = x;
  fft_in_place(spectrum);
  const auto back = inverse_fft(spectrum);
  expect_near(back, x, 1e-9);
}

TEST(Fft, LinearityProperty) {
  const auto a = random_signal(32, 23);
  const auto b = random_signal(32, 29);
  std::vector<Complex> sum(32);
  for (std::size_t i = 0; i < 32; ++i) sum[i] = a[i] + b[i];
  FftFunction fft;
  const auto fa = execute_sequential(fft, view_of(std::as_const(a)));
  const auto fb = execute_sequential(fft, view_of(std::as_const(b)));
  const auto fsum = execute_sequential(fft, view_of(std::as_const(sum)));
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(std::abs(fsum[i] - (fa[i] + fb[i])), 0.0, 1e-9);
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  const auto x = random_signal(64, 31);
  auto spectrum = x;
  fft_in_place(spectrum);
  double time_energy = 0.0, freq_energy = 0.0;
  for (const auto& c : x) time_energy += std::norm(c);
  for (const auto& c : spectrum) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy, time_energy * 64.0, 1e-6);
}

}  // namespace
