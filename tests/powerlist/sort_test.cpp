#include "powerlist/algorithms/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "powerlist/executors.hpp"
#include "support/rng.hpp"

namespace {

using namespace pls::powerlist;
using pls::forkjoin::ForkJoinPool;

std::vector<int> random_ints(std::size_t n, std::uint64_t seed) {
  pls::Xoshiro256 rng(seed);
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng.next_below(1000000));
  return v;
}

TEST(OddEvenMerge, MergesTwoSortedSingletons) {
  EXPECT_EQ(odd_even_merge<int>({2}, {1}), (std::vector<int>{1, 2}));
  EXPECT_EQ(odd_even_merge<int>({1}, {2}), (std::vector<int>{1, 2}));
}

TEST(OddEvenMerge, MergesSortedRuns) {
  const std::vector<int> a{1, 4, 6, 9};
  const std::vector<int> b{2, 3, 7, 10};
  EXPECT_EQ(odd_even_merge(a, b),
            (std::vector<int>{1, 2, 3, 4, 6, 7, 9, 10}));
}

TEST(OddEvenMerge, HandlesDuplicates) {
  const std::vector<int> a{1, 1, 2, 2};
  const std::vector<int> b{1, 2, 2, 3};
  EXPECT_EQ(odd_even_merge(a, b),
            (std::vector<int>{1, 1, 1, 2, 2, 2, 2, 3}));
}

TEST(OddEvenMerge, RejectsDissimilarInputs) {
  EXPECT_THROW(odd_even_merge<int>({1, 2}, {3}), pls::precondition_error);
}

class BatcherSortSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatcherSortSweep, SortsRandomData) {
  const auto data = random_ints(GetParam(), GetParam() * 31 + 7);
  BatcherSortFunction<int> sorter;
  const auto out =
      execute_sequential(sorter, view_of(std::as_const(data)), {}, 4);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatcherSortSweep,
                         ::testing::Values(1, 2, 4, 8, 64, 256, 1024));

TEST(BatcherSort, DescendingComparator) {
  const auto data = random_ints(64, 3);
  BatcherSortFunction<int, std::greater<int>> sorter{std::greater<int>{}};
  const auto out =
      execute_sequential(sorter, view_of(std::as_const(data)), {}, 8);
  auto expected = data;
  std::sort(expected.begin(), expected.end(), std::greater<int>{});
  EXPECT_EQ(out, expected);
}

TEST(BatcherSort, ForkJoinMatchesSequential) {
  ForkJoinPool pool(4);
  const auto data = random_ints(512, 5);
  BatcherSortFunction<int> sorter;
  const auto view = view_of(std::as_const(data));
  EXPECT_EQ(execute_forkjoin(pool, sorter, view, {}, 16),
            execute_sequential(sorter, view, {}, 16));
}

TEST(BatcherSort, AlreadySortedAndReversed) {
  std::vector<int> asc(128);
  std::iota(asc.begin(), asc.end(), 0);
  auto desc = asc;
  std::reverse(desc.begin(), desc.end());
  BatcherSortFunction<int> sorter;
  EXPECT_EQ(execute_sequential(sorter, view_of(std::as_const(asc)), {}, 8),
            asc);
  EXPECT_EQ(execute_sequential(sorter, view_of(std::as_const(desc)), {}, 8),
            asc);
}

class BitonicSortSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitonicSortSweep, SortsRandomData) {
  auto data = random_ints(GetParam(), GetParam() * 17 + 1);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  bitonic_sort(data);
  EXPECT_EQ(data, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitonicSortSweep,
                         ::testing::Values(1, 2, 4, 16, 128, 1024, 4096));

TEST(BitonicSort, RejectsNonPowerOfTwo) {
  std::vector<int> v{3, 1, 2};
  EXPECT_THROW(bitonic_sort(v), pls::precondition_error);
}

TEST(BitonicSort, ParallelMatchesSequential) {
  ForkJoinPool pool(4);
  auto a = random_ints(2048, 9);
  auto b = a;
  bitonic_sort(a);
  bitonic_sort_parallel(pool, b, 128);
  EXPECT_EQ(a, b);
}

class TranspositionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TranspositionSweep, SortsRandomData) {
  auto data = random_ints(GetParam(), GetParam() + 77);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  odd_even_transposition_sort(data);
  EXPECT_EQ(data, expected);
}

// Works on any length (not just powers of two): the network degrades
// gracefully to general lists.
INSTANTIATE_TEST_SUITE_P(Sizes, TranspositionSweep,
                         ::testing::Values(0, 1, 2, 3, 7, 64, 100, 255));

TEST(TranspositionSort, DescendingComparator) {
  std::vector<int> v{3, 1, 4, 1, 5, 9, 2, 6};
  odd_even_transposition_sort(v, std::greater<int>{});
  EXPECT_EQ(v, (std::vector<int>{9, 6, 5, 4, 3, 2, 1, 1}));
}

TEST(BitonicSort, AllEqualElements) {
  std::vector<int> v(256, 42);
  bitonic_sort(v);
  EXPECT_TRUE(std::all_of(v.begin(), v.end(), [](int x) { return x == 42; }));
}

}  // namespace
