#include "powerlist/view.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace {

using pls::powerlist::DecompositionOp;
using pls::powerlist::PowerListView;
using pls::powerlist::view_of;

std::vector<int> iota(std::size_t n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(View, BasicProperties) {
  auto data = iota(8);
  auto v = view_of(data);
  EXPECT_EQ(v.length(), 8u);
  EXPECT_EQ(v.levels(), 3u);
  EXPECT_FALSE(v.is_singleton());
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[7], 7);
}

TEST(View, NonPowerOfTwoRejected) {
  auto data = iota(6);
  EXPECT_THROW(view_of(data), pls::precondition_error);
}

TEST(View, EmptyRejected) {
  std::vector<int> data;
  EXPECT_THROW(view_of(data), pls::precondition_error);
}

TEST(View, SingletonCannotSplit) {
  auto data = iota(1);
  auto v = view_of(data);
  EXPECT_TRUE(v.is_singleton());
  EXPECT_THROW(v.tie(), pls::precondition_error);
  EXPECT_THROW(v.zip(), pls::precondition_error);
}

TEST(View, TieSplitsHalves) {
  auto data = iota(8);
  const auto [p, q] = view_of(data).tie();
  EXPECT_EQ(p.to_vector(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.to_vector(), (std::vector<int>{4, 5, 6, 7}));
}

TEST(View, ZipSplitsEvenOdd) {
  auto data = iota(8);
  const auto [p, q] = view_of(data).zip();
  EXPECT_EQ(p.to_vector(), (std::vector<int>{0, 2, 4, 6}));
  EXPECT_EQ(q.to_vector(), (std::vector<int>{1, 3, 5, 7}));
}

TEST(View, NestedTieThenZip) {
  auto data = iota(8);
  const auto [first_half, second_half] = view_of(data).tie();
  const auto [evens, odds] = first_half.zip();
  EXPECT_EQ(evens.to_vector(), (std::vector<int>{0, 2}));
  EXPECT_EQ(odds.to_vector(), (std::vector<int>{1, 3}));
  const auto [e2, o2] = second_half.zip();
  EXPECT_EQ(e2.to_vector(), (std::vector<int>{4, 6}));
  EXPECT_EQ(o2.to_vector(), (std::vector<int>{5, 7}));
}

TEST(View, NestedZipThenZip) {
  auto data = iota(8);
  const auto [evens, odds] = view_of(data).zip();
  const auto [ee, eo] = evens.zip();
  EXPECT_EQ(ee.to_vector(), (std::vector<int>{0, 4}));
  EXPECT_EQ(eo.to_vector(), (std::vector<int>{2, 6}));
  (void)odds;
}

TEST(View, SplitByOperatorTag) {
  auto data = iota(4);
  const auto [tl, tr] = view_of(data).split(DecompositionOp::kTie);
  EXPECT_EQ(tl.to_vector(), (std::vector<int>{0, 1}));
  const auto [zl, zr] = view_of(data).split(DecompositionOp::kZip);
  EXPECT_EQ(zl.to_vector(), (std::vector<int>{0, 2}));
  (void)tr;
  (void)zr;
}

TEST(View, MutableViewWritesThrough) {
  auto data = iota(4);
  auto v = view_of(data);
  const auto [p, q] = v.zip();
  p[0] = 100;
  q[1] = 200;
  EXPECT_EQ(data, (std::vector<int>{100, 1, 2, 200}));
}

TEST(View, ConstConversion) {
  auto data = iota(4);
  PowerListView<int> mv = view_of(data);
  PowerListView<const int> cv = mv;
  EXPECT_EQ(cv.to_vector(), data);
}

TEST(View, SimilarChecksLengthOnly) {
  auto a = iota(4);
  auto b = iota(8);
  EXPECT_FALSE(view_of(a).similar(view_of(b)));
  const auto [p, q] = view_of(b).tie();
  EXPECT_TRUE(view_of(a).similar(p));
  EXPECT_TRUE(p.similar(q));
}

TEST(View, RecursiveZipReachesStridedSingletons) {
  auto data = iota(8);
  // zip three times: singleton containing element with bit-reversed index.
  auto v = view_of(data);
  std::vector<PowerListView<int>> current{v};
  for (int level = 0; level < 3; ++level) {
    std::vector<PowerListView<int>> next;
    for (auto& view : current) {
      auto [p, q] = view.zip();
      next.push_back(p);
      next.push_back(q);
    }
    current = next;
  }
  ASSERT_EQ(current.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(current[i].is_singleton());
    // Descending via zip in order yields elements by bit-reversal of the
    // path; position i in the leaf sequence holds element with reversed
    // bits of i.
    EXPECT_EQ(current[i][0],
              static_cast<int>(pls::reverse_bits(i, 3)));
  }
}

TEST(View, TieZipReconstructionIdentity) {
  // Interleaving the zip halves reconstructs; concatenating the tie halves
  // reconstructs.
  auto data = iota(16);
  const auto [ze, zo] = view_of(data).zip();
  std::vector<int> rebuilt;
  for (std::size_t i = 0; i < ze.length(); ++i) {
    rebuilt.push_back(ze[i]);
    rebuilt.push_back(zo[i]);
  }
  EXPECT_EQ(rebuilt, data);
}

}  // namespace
