// Tests of the Streams <-> PowerList adaptation layer: the paper's
// Section IV examples executed through the stream pipeline.
#include "powerlist/collector_functions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "powerlist/algorithms/hadamard.hpp"
#include "powerlist/algorithms/polynomial.hpp"

namespace {

using namespace pls::powerlist;
using pls::forkjoin::ForkJoinPool;
using pls::streams::Stream;
namespace stream_support = pls::streams::stream_support;

std::shared_ptr<const std::vector<double>> shared_doubles(std::size_t n) {
  std::vector<double> v(n);
  std::iota(v.begin(), v.end(), 0.0);
  return std::make_shared<const std::vector<double>>(std::move(v));
}

// --- the paper's first example: identity through a ZipSpliterator -------

TEST(IdentityExample, ZipSplitZipAllReconstructsSequential) {
  auto data = shared_doubles(16);
  auto sp = std::make_unique<ZipSpliterator<double>>(data);
  auto stream =
      stream_support::from_spliterator<double>(std::move(sp), false);
  const auto out = std::move(stream).collect(to_power_array_zip<double>());
  EXPECT_EQ(out.values(), *data);
}

TEST(IdentityExample, ZipSplitZipAllReconstructsParallel) {
  auto data = shared_doubles(64);
  auto sp = std::make_unique<ZipSpliterator<double>>(data);
  auto stream = stream_support::from_spliterator<double>(std::move(sp), true);
  const auto out = std::move(stream)
                       .with_min_chunk(4)
                       .collect(to_power_array_zip<double>());
  EXPECT_EQ(out.values(), *data);
}

TEST(IdentityExample, TieSplitTieAllReconstructs) {
  auto data = shared_doubles(32);
  auto sp = std::make_unique<TieSpliterator<double>>(data);
  auto stream = stream_support::from_spliterator<double>(std::move(sp), true);
  const auto out = std::move(stream)
                       .with_min_chunk(2)
                       .collect(to_power_array_tie<double>());
  EXPECT_EQ(out.values(), *data);
}

TEST(IdentityExample, Power2CharacteristicIsVerifiable) {
  auto data = shared_doubles(16);
  ZipSpliterator<double> sp(data);
  EXPECT_TRUE(sp.has(pls::streams::kPower2));
  auto bad = shared_doubles(12);
  ZipSpliterator<double> sp_bad(bad);
  EXPECT_FALSE(sp_bad.has(pls::streams::kPower2));
}

// --- map through the collect template method ----------------------------

TEST(PowerMapCollector, AppliesFunctionTie) {
  auto data = shared_doubles(16);
  auto sp = std::make_unique<TieSpliterator<double>>(data);
  auto stream = stream_support::from_spliterator<double>(std::move(sp), true);
  const auto out =
      std::move(stream)
          .with_min_chunk(2)
          .collect(power_map_collector<double>(
              [](const double& d) { return d * d; }, DecompositionOp::kTie));
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * static_cast<double>(i));
  }
}

TEST(PowerMapCollector, AppliesFunctionZip) {
  auto data = shared_doubles(32);
  auto sp = std::make_unique<ZipSpliterator<double>>(data);
  auto stream = stream_support::from_spliterator<double>(std::move(sp), true);
  const auto out = std::move(stream)
                       .with_min_chunk(1)
                       .collect(power_map_collector<double>(
                           [](const double& d) { return d + 0.5; },
                           DecompositionOp::kZip));
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) + 0.5);
  }
}

// --- the paper's central example: PolynomialValue -----------------------

class PolynomialStreamSweep
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PolynomialStreamSweep, SequentialMatchesHorner) {
  const std::size_t n = GetParam();
  std::vector<double> coeffs(n);
  for (std::size_t i = 0; i < n; ++i) {
    coeffs[i] = static_cast<double>(i % 7) - 3.0;
  }
  const double x = 0.95;
  const double expected = horner_descending(view_of(coeffs), x);
  auto shared = std::make_shared<const std::vector<double>>(coeffs);
  const double got = evaluate_polynomial_stream(shared, x, false);
  EXPECT_NEAR(got, expected, 1e-9 * static_cast<double>(n));
}

TEST_P(PolynomialStreamSweep, ParallelMatchesHorner) {
  const std::size_t n = GetParam();
  std::vector<double> coeffs(n);
  for (std::size_t i = 0; i < n; ++i) {
    coeffs[i] = static_cast<double>((i * 13) % 11) - 5.0;
  }
  const double x = 1.01;
  const double expected = horner_descending(view_of(coeffs), x);
  auto shared = std::make_shared<const std::vector<double>>(coeffs);
  ForkJoinPool pool(4);
  pls::streams::ExecutionConfig cfg;
  cfg.pool = &pool;
  const double got = evaluate_polynomial_stream(shared, x, true, cfg);
  // Relative tolerance: x > 1 makes high-degree values huge.
  EXPECT_NEAR(got, expected, std::abs(expected) * 1e-10 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PolynomialStreamSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024,
                                           4096));

TEST(PolynomialStream, SingleCoefficient) {
  auto shared =
      std::make_shared<const std::vector<double>>(std::vector<double>{7.5});
  EXPECT_DOUBLE_EQ(evaluate_polynomial_stream(shared, 123.0, false), 7.5);
}

TEST(PolynomialStream, NonPowerOfTwoRejected) {
  auto shared = std::make_shared<const std::vector<double>>(
      std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_THROW(evaluate_polynomial_stream(shared, 1.0, false),
               pls::precondition_error);
}

TEST(PolynomialStream, VariousChunkTargetsAgree) {
  std::vector<double> coeffs(256);
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    coeffs[i] = std::sin(static_cast<double>(i));
  }
  const double x = 0.999;
  const double expected = horner_descending(view_of(coeffs), x);
  auto shared = std::make_shared<const std::vector<double>>(coeffs);
  ForkJoinPool pool(2);
  for (std::uint64_t chunk : {1u, 2u, 8u, 32u, 256u}) {
    pls::streams::ExecutionConfig cfg;
    cfg.pool = &pool;
    cfg.min_chunk = chunk;
    EXPECT_NEAR(evaluate_polynomial_stream(shared, x, true, cfg), expected,
                1e-8)
        << "chunk=" << chunk;
  }
}

// --- equation 5 through DescendOpSpliterator ----------------------------

TEST(DescendOp, WalshHadamardSequentialMatchesReference) {
  std::vector<double> v{1.0, -2.0, 3.0, 0.5, -1.5, 2.0, 0.0, 4.0};
  const auto expected = wht_reference(v);
  const auto out = walsh_hadamard_stream(v, false);
  ASSERT_EQ(out.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(out[i], expected[i], 1e-9) << i;
  }
}

TEST(DescendOp, WalshHadamardParallelMatchesReference) {
  std::vector<double> v(64);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>((i * 37) % 19) - 9.0;
  }
  const auto expected = wht_reference(v);
  ForkJoinPool pool(4);
  pls::streams::ExecutionConfig cfg;
  cfg.pool = &pool;
  cfg.min_chunk = 4;
  const auto out = walsh_hadamard_stream(v, true, cfg);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(out[i], expected[i], 1e-9) << i;
  }
}

TEST(DescendOp, LeafCompletionViaForEachRemaining) {
  // min_chunk = size: no splits happen; for_each_remaining must complete
  // the whole transform by itself.
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const auto expected = wht_reference(v);
  pls::streams::ExecutionConfig cfg;
  cfg.min_chunk = 100;
  const auto out = walsh_hadamard_stream(v, true, cfg);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(out[i], expected[i], 1e-9) << i;
  }
}

TEST(DescendOp, NoSplitAfterTraversalBegan) {
  // Splitting after the leaf transform ran would re-apply the rewrite;
  // the spliterator must refuse.
  auto storage =
      std::make_shared<std::vector<double>>(std::vector<double>{1, 2, 3, 4});
  auto plus = [](double a, double b) { return a + b; };
  auto minus = [](double a, double b) { return a - b; };
  DescendOpSpliterator<double, decltype(plus), decltype(minus)> sp(
      storage, plus, minus);
  double first = 0;
  sp.try_advance([&](const double& v) { first = v; });
  EXPECT_EQ(sp.try_split(), nullptr);
  // And traversal still completes the correct transform.
  std::vector<double> rest;
  sp.for_each_remaining([&](const double& v) { rest.push_back(v); });
  const auto expected = wht_reference(std::vector<double>{1, 2, 3, 4});
  EXPECT_NEAR(first, expected[0], 1e-12);
  ASSERT_EQ(rest.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(rest[i], expected[i + 1], 1e-12);
  }
}

TEST(DescendOp, FastInPlaceMatchesReference) {
  std::vector<double> v(128);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::cos(static_cast<double>(i));
  }
  const auto expected = wht_reference(v);
  auto fast = v;
  wht_in_place(fast);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(fast[i], expected[i], 1e-9) << i;
  }
}

TEST(DescendOp, WhtIsSelfInverseUpToScale) {
  std::vector<double> v{3.0, 1.0, -2.0, 5.0};
  auto twice = v;
  wht_in_place(twice);
  wht_in_place(twice);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(twice[i], 4.0 * v[i], 1e-9);
  }
}

}  // namespace
