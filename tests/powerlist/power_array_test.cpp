#include "powerlist/power_array.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using pls::powerlist::PowerArray;

TEST(PowerArray, StartsEmpty) {
  PowerArray<int> a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0u);
}

TEST(PowerArray, AddAppends) {
  PowerArray<int> a;
  a.add(1);
  a.add(2);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[1], 2);
}

TEST(PowerArray, TieAllConcatenates) {
  PowerArray<int> a{1, 2};
  PowerArray<int> b{3, 4};
  a.tie_all(b);
  EXPECT_EQ(a, (PowerArray<int>{1, 2, 3, 4}));
  EXPECT_TRUE(b.empty());  // contents moved out
}

TEST(PowerArray, ZipAllInterleaves) {
  PowerArray<int> a{1, 3};
  PowerArray<int> b{2, 4};
  a.zip_all(b);
  EXPECT_EQ(a, (PowerArray<int>{1, 2, 3, 4}));
  EXPECT_TRUE(b.empty());
}

TEST(PowerArray, ZipAllRequiresSimilar) {
  PowerArray<int> a{1, 2};
  PowerArray<int> b{3};
  EXPECT_THROW(a.zip_all(b), pls::precondition_error);
}

TEST(PowerArray, TieAllAllowsDissimilarIntermediates) {
  // During a collect over a non-power-of-two source, tie combines of
  // unequal partial containers are legal.
  PowerArray<int> a{1, 2, 3};
  PowerArray<int> b{4};
  a.tie_all(b);
  EXPECT_EQ(a, (PowerArray<int>{1, 2, 3, 4}));
}

TEST(PowerArray, HierarchicalZipReconstruction) {
  // Combining bottom-up with zip_all inverts recursive zip splitting:
  // leaves in bit-reversed order recombine to identity.
  PowerArray<int> l0{0}, l1{4}, l2{2}, l3{6}, l4{1}, l5{5}, l6{3}, l7{7};
  l0.zip_all(l1);  // [0,4]
  l2.zip_all(l3);  // [2,6]
  l4.zip_all(l5);  // [1,5]
  l6.zip_all(l7);  // [3,7]
  l0.zip_all(l2);  // [0,2,4,6]
  l4.zip_all(l6);  // [1,3,5,7]
  l0.zip_all(l4);
  EXPECT_EQ(l0, (PowerArray<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(PowerArray, IsPowerListPredicate) {
  PowerArray<int> a{1, 2, 3};
  EXPECT_FALSE(a.is_power_list());
  a.add(4);
  EXPECT_TRUE(a.is_power_list());
}

TEST(PowerArray, ViewRequiresPowerOfTwo) {
  PowerArray<int> a{1, 2, 3};
  EXPECT_THROW(a.view(), pls::precondition_error);
  a.add(4);
  EXPECT_EQ(a.view().to_vector(), (std::vector<int>{1, 2, 3, 4}));
}

TEST(PowerArray, TakeMovesStorage) {
  PowerArray<std::string> a{"x", "y"};
  auto v = std::move(a).take();
  EXPECT_EQ(v, (std::vector<std::string>{"x", "y"}));
}

TEST(PowerArray, WorksWithMoveOnlyFriendlyTypes) {
  PowerArray<std::string> a;
  a.add(std::string("hello"));
  PowerArray<std::string> b;
  b.add(std::string("world"));
  a.zip_all(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], "hello");
  EXPECT_EQ(a[1], "world");
}

}  // namespace
