// Tests for the extension algorithms: MSS homomorphism, FFT convolution,
// and the tupling transformation of the paper's reference [22].
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "forkjoin/pool.hpp"
#include "powerlist/algorithms/convolution.hpp"
#include "powerlist/algorithms/mss.hpp"
#include "powerlist/algorithms/polynomial.hpp"
#include "powerlist/executors.hpp"
#include "support/rng.hpp"

namespace {

using namespace pls::powerlist;
using pls::forkjoin::ForkJoinPool;

// ---- MSS -----------------------------------------------------------------

TEST(Mss, KnownCases) {
  const std::vector<int> classic{-2, 1, -3, 4, -1, 2, 1, -5};
  EXPECT_EQ(mss(view_of(classic)), 6);  // [4, -1, 2, 1]
  const std::vector<int> all_negative{-3, -1, -7, -2};
  EXPECT_EQ(mss(view_of(all_negative)), 0);  // empty segment
  const std::vector<int> all_positive{1, 2, 3, 4};
  EXPECT_EQ(mss(view_of(all_positive)), 10);
}

TEST(Mss, MonoidIsAssociative) {
  pls::Xoshiro256 rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto s = [&] {
      return MssState<long>::of(static_cast<long>(rng.next_below(21)) - 10);
    };
    const auto a = s(), b = s(), c = s();
    EXPECT_EQ(mss_combine(mss_combine(a, b), c),
              mss_combine(a, mss_combine(b, c)));
  }
}

class MssSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MssSweep, MatchesKadaneAcrossLeafSizes) {
  pls::Xoshiro256 rng(GetParam());
  std::vector<long> data(GetParam());
  for (auto& v : data) v = static_cast<long>(rng.next_below(41)) - 20;
  const long expected = mss_sequential(view_of(data));
  for (std::size_t leaf : {std::size_t{1}, std::size_t{4}, GetParam()}) {
    EXPECT_EQ(mss(view_of(data), leaf), expected) << "leaf=" << leaf;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MssSweep,
                         ::testing::Values(1, 2, 8, 64, 512, 4096));

TEST(Mss, ForkJoinMatchesSequential) {
  ForkJoinPool pool(4);
  pls::Xoshiro256 rng(17);
  std::vector<long> data(2048);
  for (auto& v : data) v = static_cast<long>(rng.next_below(101)) - 50;
  MssFunction<long> f;
  const auto seq = execute_sequential(f, view_of(data), {}, 32);
  const auto par = execute_forkjoin(pool, f, view_of(data), {}, 32);
  EXPECT_EQ(seq, par);
  EXPECT_EQ(seq.best, mss_sequential(view_of(data)));
}

// ---- convolution -----------------------------------------------------------

TEST(Convolution, NaiveKnownCase) {
  // (1 + 2x)(3 + 4x) = 3 + 10x + 8x^2.
  EXPECT_EQ(convolve_naive({1, 2}, {3, 4}),
            (std::vector<double>{3, 10, 8}));
}

TEST(Convolution, FftMatchesNaive) {
  pls::Xoshiro256 rng(23);
  for (const auto& [na, nb] : {std::pair<std::size_t, std::size_t>{1, 1},
                              {3, 5},
                              {17, 9},
                              {100, 100},
                              {255, 257}}) {
    std::vector<double> a(na), b(nb);
    for (auto& v : a) v = rng.next_double() - 0.5;
    for (auto& v : b) v = rng.next_double() - 0.5;
    const auto naive = convolve_naive(a, b);
    const auto fast = convolve_fft(a, b);
    ASSERT_EQ(fast.size(), naive.size());
    for (std::size_t i = 0; i < naive.size(); ++i) {
      EXPECT_NEAR(fast[i], naive[i], 1e-7) << "at " << i;
    }
  }
}

TEST(Convolution, PolyMultiplyEvaluationConsistency) {
  // (a*b)(x) == a(x) * b(x) for the product coefficients.
  pls::Xoshiro256 rng(29);
  std::vector<double> a(64), b(64);
  for (auto& v : a) v = rng.next_double() - 0.5;
  for (auto& v : b) v = rng.next_double() - 0.5;
  auto product = poly_multiply(a, b);
  product.push_back(0.0);  // pad 127 -> 128 for the PowerList view
  const double x = 0.91;
  EXPECT_NEAR(horner_ascending(view_of(product), x),
              horner_ascending(view_of(a), x) *
                  horner_ascending(view_of(b), x),
              1e-8);
}

TEST(Convolution, DeltaIsIdentity) {
  const std::vector<double> delta{1.0};
  const std::vector<double> p{4.0, -1.0, 2.5};
  EXPECT_EQ(poly_multiply(delta, p), p);
}

// ---- tupling ----------------------------------------------------------------

TEST(Tupling, MatchesEquationFourFunction) {
  pls::Xoshiro256 rng(31);
  std::vector<double> coeffs(256);
  for (auto& c : coeffs) c = rng.next_double() * 2.0 - 1.0;
  const double x = 0.97;
  PolynomialFunction<double> eq4;
  const double via_eq4 = execute_sequential(eq4, view_of(coeffs), x, 4);
  const double via_tupled = polynomial_value_tupled(view_of(coeffs), x, 4);
  EXPECT_NEAR(via_tupled, via_eq4, 1e-9);
  EXPECT_NEAR(via_tupled, horner_ascending(view_of(coeffs), x), 1e-9);
}

TEST(Tupling, PowerComponentIsXToTheLength) {
  const std::vector<double> coeffs(64, 1.0);
  TupledPolynomialFunction<double> f;
  const double x = 1.1;
  const auto out = execute_sequential(f, view_of(coeffs), x, 8);
  EXPECT_NEAR(out.power, std::pow(x, 64.0), 1e-9);
}

class TuplingSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TuplingSweep, AgreesWithHornerAcrossSizesAndLeaves) {
  pls::Xoshiro256 rng(GetParam() * 3 + 1);
  std::vector<double> coeffs(GetParam());
  for (auto& c : coeffs) c = rng.next_double() - 0.5;
  const double x = 0.995;
  const double expected = horner_ascending(view_of(coeffs), x);
  for (std::size_t leaf : {std::size_t{1}, std::size_t{8}, GetParam()}) {
    EXPECT_NEAR(polynomial_value_tupled(view_of(coeffs), x, leaf), expected,
                1e-9)
        << "leaf=" << leaf;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TuplingSweep,
                         ::testing::Values(1, 2, 4, 32, 256, 2048));

TEST(Tupling, ForkJoinMatches) {
  ForkJoinPool pool(4);
  std::vector<double> coeffs(1024, 0.5);
  TupledPolynomialFunction<double> f;
  const double x = 0.999;
  const auto seq = execute_sequential(f, view_of(coeffs), x, 32);
  const auto par = execute_forkjoin(pool, f, view_of(coeffs), x, 32);
  EXPECT_NEAR(seq.value, par.value, 1e-9);
  EXPECT_NEAR(seq.power, par.power, 1e-9);
}

}  // namespace
