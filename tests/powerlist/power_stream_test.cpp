#include "powerlist/power_stream.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "support/rng.hpp"

namespace {

using namespace pls::powerlist;
using pls::forkjoin::ForkJoinPool;

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed) {
  pls::Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (auto& d : v) d = rng.next_double() * 2.0 - 1.0;
  return v;
}

TEST(PowerStream, RejectsNonPowerOfTwo) {
  EXPECT_THROW(PowerStream<int>::of({1, 2, 3}), pls::precondition_error);
}

TEST(PowerStream, ReduceSequential) {
  auto ps = PowerStream<long>::of({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(ps.reduce(std::plus<long>{}), 36);
}

TEST(PowerStream, ReduceForkJoinMatches) {
  ForkJoinPool pool(4);
  std::vector<long> data(1024);
  std::iota(data.begin(), data.end(), 1);
  const long expected = 1024 * 1025 / 2;
  auto ps = PowerStream<long>::of(data).via(pool).with_leaf(32);
  EXPECT_EQ(ps.reduce(std::plus<long>{}), expected);
}

TEST(PowerStream, MapThenReduceChains) {
  ForkJoinPool pool(2);
  std::vector<int> data(256);
  std::iota(data.begin(), data.end(), 0);
  const long result = PowerStream<int>::of(data)
                          .via(pool)
                          .map([](const int& v) { return long{v} * 2; })
                          .reduce(std::plus<long>{});
  EXPECT_EQ(result, 2L * 255 * 256 / 2);
}

TEST(PowerStream, MapChangesElementType) {
  const auto out = PowerStream<int>::of({1, 2, 3, 4})
                       .map([](const int& v) { return v + 0.5; })
                       .take();
  EXPECT_EQ(out, (std::vector<double>{1.5, 2.5, 3.5, 4.5}));
}

TEST(PowerStream, ZipMapPreservesOrder) {
  std::vector<int> data(64);
  std::iota(data.begin(), data.end(), 0);
  const auto out = PowerStream<int>::of(data)
                       .map([](const int& v) { return v * 3; },
                            DecompositionOp::kZip)
                       .take();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 3);
  }
}

TEST(PowerStream, ScanMatchesSequential) {
  const auto data = random_doubles(128, 3);
  auto ps = PowerStream<double>::of(data);
  const auto scanned = ps.scan(std::plus<double>{});
  double acc = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    acc += data[i];
    EXPECT_NEAR(scanned[i], acc, 1e-9);
  }
}

TEST(PowerStream, InvAndRev) {
  std::vector<int> data{0, 1, 2, 3, 4, 5, 6, 7};
  auto ps = PowerStream<int>::of(data);
  EXPECT_EQ(ps.inv(), (std::vector<int>{0, 4, 2, 6, 1, 5, 3, 7}));
  EXPECT_EQ(ps.rev(), (std::vector<int>{7, 6, 5, 4, 3, 2, 1, 0}));
}

TEST(PowerStream, SortedMatchesStdSort) {
  ForkJoinPool pool(4);
  auto data = random_doubles(512, 9);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  const auto sorted =
      PowerStream<double>::of(data).via(pool).with_leaf(32).sorted();
  EXPECT_EQ(sorted, expected);
}

TEST(PowerStream, PolynomialValueMatchesHorner) {
  const auto coeffs = random_doubles(256, 11);
  const double x = 0.93;
  auto ps = PowerStream<double>::of(coeffs);
  EXPECT_NEAR(ps.polynomial_value(x), horner_ascending(view_of(coeffs), x),
              1e-9);
}

TEST(PowerStream, FftMatchesIterative) {
  std::vector<Complex> signal;
  pls::Xoshiro256 rng(13);
  for (int i = 0; i < 128; ++i) {
    signal.emplace_back(rng.next_double(), rng.next_double());
  }
  auto spectrum = PowerStream<Complex>::of(signal).with_leaf(8).fft();
  auto reference = signal;
  fft_in_place(reference);
  ASSERT_EQ(spectrum.size(), reference.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    EXPECT_NEAR(std::abs(spectrum[i] - reference[i]), 0.0, 1e-8);
  }
}

TEST(PowerStream, SequentialAndForkJoinAgree) {
  ForkJoinPool pool(3);
  const auto data = random_doubles(1024, 17);
  auto seq = PowerStream<double>::of(data).sequential();
  auto par = PowerStream<double>::of(data).via(pool);
  EXPECT_DOUBLE_EQ(
      seq.reduce([](double a, double b) { return std::max(a, b); }),
      par.reduce([](double a, double b) { return std::max(a, b); }));
}

}  // namespace
