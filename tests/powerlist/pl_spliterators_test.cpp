#include "powerlist/spliterators.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

namespace {

using pls::powerlist::SpliteratorPower2;
using pls::powerlist::TieSpliterator;
using pls::powerlist::ZipSpliterator;
using pls::streams::Spliterator;

std::shared_ptr<const std::vector<int>> shared_iota(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return std::make_shared<const std::vector<int>>(std::move(v));
}

template <typename T>
std::vector<T> drain(Spliterator<T>& sp) {
  std::vector<T> out;
  sp.for_each_remaining([&](const T& v) { out.push_back(v); });
  return out;
}

TEST(TieSpliterator, TraversesInOrder) {
  TieSpliterator<int> sp(shared_iota(8));
  EXPECT_EQ(drain(sp), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TieSpliterator, SplitIsSegmented) {
  TieSpliterator<int> sp(shared_iota(8));
  auto prefix = sp.try_split();
  ASSERT_NE(prefix, nullptr);
  EXPECT_EQ(drain(*prefix), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(drain(sp), (std::vector<int>{4, 5, 6, 7}));
}

TEST(ZipSpliterator, SplitIsInterleaved) {
  ZipSpliterator<int> sp(shared_iota(8));
  auto prefix = sp.try_split();
  ASSERT_NE(prefix, nullptr);
  EXPECT_EQ(drain(*prefix), (std::vector<int>{0, 2, 4, 6}));
  EXPECT_EQ(drain(sp), (std::vector<int>{1, 3, 5, 7}));
}

TEST(ZipSpliterator, DoubleSplitQuartersByResidue) {
  ZipSpliterator<int> sp(shared_iota(16));
  auto evens = sp.try_split();       // residue 0 mod 2
  auto evens2 = evens->try_split();  // residue 0 mod 4
  auto odds2 = sp.try_split();       // residue 1 mod 4
  EXPECT_EQ(drain(*evens2), (std::vector<int>{0, 4, 8, 12}));
  EXPECT_EQ(drain(*evens), (std::vector<int>{2, 6, 10, 14}));
  EXPECT_EQ(drain(*odds2), (std::vector<int>{1, 5, 9, 13}));
  EXPECT_EQ(drain(sp), (std::vector<int>{3, 7, 11, 15}));
}

TEST(ZipSpliterator, RefusesOddCount) {
  // A strided window of odd length cannot zip-deconstruct.
  auto data = shared_iota(3);
  ZipSpliterator<int> sp(data, 0, 1, 3);
  EXPECT_EQ(sp.try_split(), nullptr);
}

TEST(SpliteratorPower2, Power2CharacteristicTracksCount) {
  auto data = shared_iota(8);
  TieSpliterator<int> sp8(data, 0, 1, 8);
  EXPECT_TRUE(sp8.has(pls::streams::kPower2));
  TieSpliterator<int> sp6(data, 0, 1, 6);
  EXPECT_FALSE(sp6.has(pls::streams::kPower2));
}

TEST(SpliteratorPower2, SplitsOfPowerOfTwoKeepPower2) {
  ZipSpliterator<int> sp(shared_iota(16));
  auto prefix = sp.try_split();
  EXPECT_TRUE(prefix->has(pls::streams::kPower2));
  EXPECT_TRUE(sp.has(pls::streams::kPower2));
}

TEST(SpliteratorPower2, EstimateSizeIsExact) {
  ZipSpliterator<int> sp(shared_iota(32));
  EXPECT_EQ(sp.estimate_size(), 32u);
  auto prefix = sp.try_split();
  EXPECT_EQ(prefix->estimate_size(), 16u);
  EXPECT_EQ(sp.estimate_size(), 16u);
}

TEST(SpliteratorPower2, WindowValidation) {
  auto data = shared_iota(8);
  // start 4, stride 2, count 3 touches index 4+2*2=8 -> out of range.
  EXPECT_THROW(TieSpliterator<int>(data, 4, 2, 3), pls::precondition_error);
  // count 2 touches 4 and 6: fine.
  TieSpliterator<int> ok(data, 4, 2, 2);
  EXPECT_EQ(drain(ok), (std::vector<int>{4, 6}));
}

TEST(SpliteratorPower2, TryAdvanceThenSplitConsistent) {
  ZipSpliterator<int> sp(shared_iota(8));
  int first = -1;
  sp.try_advance([&](const int& v) { first = v; });
  EXPECT_EQ(first, 0);
  // 7 elements remain: odd count, zip refuses to split.
  EXPECT_EQ(sp.try_split(), nullptr);
  EXPECT_EQ(drain(sp), (std::vector<int>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(TieZipSpliterators, FullRecursiveSplitPartitionsSource) {
  // Split a zip spliterator down to singletons; union must be the source.
  constexpr int n = 32;
  std::vector<std::unique_ptr<Spliterator<int>>> parts;
  parts.push_back(std::make_unique<ZipSpliterator<int>>(shared_iota(n)));
  for (std::size_t i = 0; i < parts.size();) {
    if (auto p = parts[i]->try_split()) {
      parts.push_back(std::move(p));
    } else {
      ++i;
    }
  }
  EXPECT_EQ(parts.size(), static_cast<std::size_t>(n));
  std::vector<int> all;
  for (auto& p : parts) {
    for (int v : drain(*p)) all.push_back(v);
  }
  std::sort(all.begin(), all.end());
  std::vector<int> expect(n);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(all, expect);
}

}  // namespace
