// Destination-passing execution in the PowerList layer: the _into
// executors over InplacePowerFunction, the sized-sink PowerArray
// collectors, PowerArray::adopt, and the zip_all scratch reuse.
#include "powerlist/executors.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "forkjoin/pool.hpp"
#include "observe/counters.hpp"
#include "powerlist/collector_functions.hpp"
#include "powerlist/function.hpp"
#include "powerlist/power_array.hpp"
#include "powerlist/spliterators.hpp"
#include "powerlist/view.hpp"
#include "streams/stream.hpp"

namespace {

using pls::forkjoin::ForkJoinPool;
using pls::observe::aggregate_counters;
using pls::observe::CounterTotals;
using pls::observe::kEnabled;
using pls::powerlist::DecompositionOp;
using pls::powerlist::execute_forkjoin_into;
using pls::powerlist::execute_sequential_into;
using pls::powerlist::InplacePowerFunction;
using pls::powerlist::NoContext;
using pls::powerlist::PowerArray;
using pls::powerlist::PowerListView;
using pls::powerlist::TieSpliterator;
using pls::powerlist::ZipSpliterator;

std::vector<int> test_data(std::size_t n) {
  std::vector<int> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<int>((i * 2654435761u) % 1000);
  }
  return v;
}

// ---- InplacePowerFunction + the _into executors ----------------------

/// Elementwise affine map written in destination-passing style.
class AffineInto final : public InplacePowerFunction<int> {
 public:
  AffineInto(DecompositionOp op, int scale, int shift)
      : op_(op), scale_(scale), shift_(shift) {}

  DecompositionOp decomposition() const override { return op_; }

  void basic_case_into(PowerListView<const int> leaf, PowerListView<int> out,
                       const NoContext&) const override {
    for (std::size_t i = 0; i < leaf.length(); ++i) {
      out[i] = leaf[i] * scale_ + shift_;
    }
  }

 private:
  DecompositionOp op_;
  int scale_;
  int shift_;
};

class IntoExecutors : public ::testing::TestWithParam<DecompositionOp> {};

TEST_P(IntoExecutors, SequentialWritesFinalPositions) {
  const auto input = test_data(64);
  std::vector<int> output(64, -1);
  AffineInto f(GetParam(), 3, 7);
  execute_sequential_into(f, pls::powerlist::view_of(input),
                          pls::powerlist::view_of(output), NoContext{},
                          /*leaf_size=*/4);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(output[i], input[i] * 3 + 7);
  }
}

TEST_P(IntoExecutors, ForkJoinMatchesSequential) {
  const auto input = test_data(1 << 10);
  std::vector<int> seq(input.size(), 0);
  std::vector<int> par(input.size(), 0);
  AffineInto f(GetParam(), 5, -2);
  execute_sequential_into(f, pls::powerlist::view_of(input),
                          pls::powerlist::view_of(seq), NoContext{}, 8);
  ForkJoinPool pool(2);
  const CounterTotals before = aggregate_counters();
  execute_forkjoin_into(pool, f, pls::powerlist::view_of(input),
                        pls::powerlist::view_of(par), NoContext{}, 8);
  const CounterTotals delta = aggregate_counters() - before;
  EXPECT_EQ(par, seq);
  if (kEnabled) {
    EXPECT_EQ(delta.combines, 0u)
        << "destination-passing execution has no combine phase";
    EXPECT_GT(delta.splits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(BothOps, IntoExecutors,
                         ::testing::Values(DecompositionOp::kTie,
                                           DecompositionOp::kZip));

// ---- sized-sink PowerArray collectors --------------------------------

TEST(PowerArrayDps, ZipIdentityReconstructsWithoutCombines) {
  auto data =
      std::make_shared<const std::vector<int>>(test_data(1 << 8));
  auto sp = std::make_unique<ZipSpliterator<int>>(data);
  auto stream = pls::streams::stream_support::from_spliterator<int>(
      std::move(sp), /*parallel=*/true);
  const CounterTotals before = aggregate_counters();
  auto pa = std::move(stream).with_min_chunk(16).collect(
      pls::powerlist::to_power_array_zip<int>());
  const CounterTotals delta = aggregate_counters() - before;
  ASSERT_EQ(pa.size(), data->size());
  for (std::size_t i = 0; i < data->size(); ++i) {
    EXPECT_EQ(pa[i], (*data)[i]);
  }
  if (kEnabled) {
    EXPECT_EQ(delta.combines, 0u);
    EXPECT_EQ(delta.bytes_moved, 0u);
    EXPECT_EQ(delta.allocations, 1u);
  }
}

TEST(PowerArrayDps, TieIdentityMatchesLegacyPath) {
  auto data =
      std::make_shared<const std::vector<int>>(test_data(1 << 8));
  auto collect_with = [&](bool sized_sink) {
    auto sp = std::make_unique<TieSpliterator<int>>(data);
    auto stream = pls::streams::stream_support::from_spliterator<int>(
        std::move(sp), /*parallel=*/true);
    return std::move(stream)
        .with_min_chunk(16)
        .with_sized_sink(sized_sink)
        .collect(pls::powerlist::to_power_array_tie<int>());
  };
  const auto dps = collect_with(true);
  const auto legacy = collect_with(false);
  EXPECT_EQ(dps, legacy);
  EXPECT_EQ(dps.values(), *data);
}

TEST(PowerArrayDps, MapCollectorAppliesFunctionInPlace) {
  auto data =
      std::make_shared<const std::vector<int>>(test_data(1 << 8));
  auto sp = std::make_unique<ZipSpliterator<int>>(data);
  auto stream = pls::streams::stream_support::from_spliterator<int>(
      std::move(sp), /*parallel=*/true);
  auto pa = std::move(stream).collect(
      pls::powerlist::power_map_collector<int>(
          [](int v) { return v * v; }, DecompositionOp::kZip));
  ASSERT_EQ(pa.size(), data->size());
  for (std::size_t i = 0; i < data->size(); ++i) {
    EXPECT_EQ(pa[i], (*data)[i] * (*data)[i]);
  }
}

// ---- PowerArray mechanics --------------------------------------------

TEST(PowerArrayDps, AdoptTakesBufferVerbatim) {
  auto pa = PowerArray<int>::adopt({1, 2, 3, 4});
  EXPECT_EQ(pa.size(), 4u);
  EXPECT_TRUE(pa.is_power_list());
  EXPECT_EQ(pa.values(), (std::vector<int>{1, 2, 3, 4}));
}

TEST(PowerArrayDps, RepeatedZipAllStaysCorrectWithScratchReuse) {
  // Build 1..16 by three successive zips on the same accumulator, the
  // pattern a combine tree produces — exercises the recycled scratch.
  PowerArray<int> acc{1, 3};
  PowerArray<int> b{2, 4};
  acc.zip_all(b);
  EXPECT_EQ(acc.values(), (std::vector<int>{1, 2, 3, 4}));
  PowerArray<int> c{10, 20, 30, 40};
  acc.zip_all(c);
  EXPECT_EQ(acc.values(),
            (std::vector<int>{1, 10, 2, 20, 3, 30, 4, 40}));
  PowerArray<int> d{5, 6, 7, 8, 9, 11, 12, 13};
  acc.zip_all(d);
  ASSERT_EQ(acc.size(), 16u);
  EXPECT_EQ(acc[0], 1);
  EXPECT_EQ(acc[1], 5);
  EXPECT_EQ(acc[2], 10);
  EXPECT_EQ(acc[15], 13);
}

TEST(PowerArrayDps, WalshHadamardDpsMatchesLegacy) {
  std::vector<double> values{1, 2, 3, 4, 5, 6, 7, 8};
  const auto par =
      pls::powerlist::walsh_hadamard_stream<double>(values, true);
  const auto seq =
      pls::powerlist::walsh_hadamard_stream<double>(values, false);
  EXPECT_EQ(par, seq);
}

}  // namespace
