#include "powerlist/algorithms/karatsuba.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace {

using namespace pls::powerlist;
using pls::forkjoin::ForkJoinPool;

std::vector<double> random_poly(std::size_t n, std::uint64_t seed) {
  pls::Xoshiro256 rng(seed);
  std::vector<double> p(n);
  for (auto& c : p) c = rng.next_double() * 2.0 - 1.0;
  return p;
}

void expect_matches_naive(const std::vector<double>& a,
                          const std::vector<double>& b, std::size_t cutoff,
                          ForkJoinPool* pool = nullptr) {
  const auto fast = karatsuba_multiply(a, b, cutoff, pool);
  const auto naive = convolve_naive(a, b);  // 2n-1 coefficients
  ASSERT_EQ(fast.size(), 2 * a.size());
  for (std::size_t i = 0; i < naive.size(); ++i) {
    EXPECT_NEAR(fast[i], naive[i], 1e-9) << "coeff " << i;
  }
  EXPECT_NEAR(fast.back(), 0.0, 1e-12);  // zero-padded top coefficient
}

TEST(Karatsuba, SingleCoefficient) {
  expect_matches_naive({3.0}, {4.0}, 1);
}

TEST(Karatsuba, SizeTwoKnownCase) {
  // (1 + 2x)(3 + 4x) = 3 + 10x + 8x^2.
  const auto out = karatsuba_multiply<double>({1, 2}, {3, 4}, 1);
  EXPECT_NEAR(out[0], 3, 1e-12);
  EXPECT_NEAR(out[1], 10, 1e-12);
  EXPECT_NEAR(out[2], 8, 1e-12);
  EXPECT_NEAR(out[3], 0, 1e-12);
}

class KaratsubaSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KaratsubaSweep, MatchesNaiveAcrossCutoffs) {
  const auto a = random_poly(GetParam(), GetParam());
  const auto b = random_poly(GetParam(), GetParam() + 1);
  for (std::size_t cutoff : {std::size_t{1}, std::size_t{4}, GetParam()}) {
    expect_matches_naive(a, b, cutoff);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KaratsubaSweep,
                         ::testing::Values(1, 2, 4, 16, 64, 256));

TEST(Karatsuba, ForkJoinMatchesSequential) {
  ForkJoinPool pool(4);
  const auto a = random_poly(512, 7);
  const auto b = random_poly(512, 9);
  const auto seq = karatsuba_multiply(a, b, 16);
  const auto par = karatsuba_multiply(a, b, 16, &pool);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_NEAR(par[i], seq[i], 1e-9);
  }
}

TEST(Karatsuba, AgreesWithFftConvolution) {
  const auto a = random_poly(256, 11);
  const auto b = random_poly(256, 13);
  const auto kara = karatsuba_multiply(a, b, 8);
  const auto fft = convolve_fft(a, b);  // 2n-1 coefficients
  for (std::size_t i = 0; i < fft.size(); ++i) {
    EXPECT_NEAR(kara[i], fft[i], 1e-6) << i;
  }
}

TEST(Karatsuba, RejectsDissimilarOrNonPowerOfTwo) {
  EXPECT_THROW(karatsuba_multiply<double>({1, 2}, {1}, 1),
               pls::precondition_error);
  EXPECT_THROW(karatsuba_multiply<double>({1, 2, 3}, {1, 2, 3}, 1),
               pls::precondition_error);
}

TEST(Karatsuba, IntegerExactness) {
  // With integer coefficients the result is exact (no FFT rounding).
  std::vector<long> a(64), b(64);
  for (std::size_t i = 0; i < 64; ++i) {
    a[i] = static_cast<long>(i % 7) - 3;
    b[i] = static_cast<long>((i * 5) % 11) - 5;
  }
  const auto fast = karatsuba_multiply(a, b, 4);
  std::vector<long> naive(127, 0);
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 64; ++j) naive[i + j] += a[i] * b[j];
  }
  for (std::size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(fast[i], naive[i]) << i;
  }
}

}  // namespace
