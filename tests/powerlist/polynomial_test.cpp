#include "powerlist/algorithms/polynomial.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "forkjoin/pool.hpp"
#include "powerlist/executors.hpp"
#include "support/rng.hpp"

namespace {

using namespace pls::powerlist;
using pls::forkjoin::ForkJoinPool;

std::vector<double> random_coeffs(std::size_t n, std::uint64_t seed) {
  pls::Xoshiro256 rng(seed);
  std::vector<double> c(n);
  for (auto& v : c) v = rng.next_double() * 2.0 - 1.0;
  return c;
}

double naive_ascending(const std::vector<double>& c, double x) {
  double sum = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    sum += c[i] * std::pow(x, static_cast<double>(i));
  }
  return sum;
}

double naive_descending(const std::vector<double>& c, double x) {
  double sum = 0.0;
  const std::size_t n = c.size();
  for (std::size_t i = 0; i < n; ++i) {
    sum += c[i] * std::pow(x, static_cast<double>(n - 1 - i));
  }
  return sum;
}

TEST(Horner, AscendingMatchesNaive) {
  const auto c = random_coeffs(16, 3);
  for (double x : {0.0, 1.0, -1.0, 0.5, 1.3}) {
    EXPECT_NEAR(horner_ascending(view_of(c), x), naive_ascending(c, x),
                1e-9)
        << "x=" << x;
  }
}

TEST(Horner, DescendingMatchesNaive) {
  const auto c = random_coeffs(16, 5);
  for (double x : {0.0, 1.0, -1.0, 0.5, 1.3}) {
    EXPECT_NEAR(horner_descending(view_of(c), x), naive_descending(c, x),
                1e-9)
        << "x=" << x;
  }
}

TEST(Horner, ConventionsAgreeOnReversedCoefficients) {
  const auto c = random_coeffs(32, 7);
  auto reversed = c;
  std::reverse(reversed.begin(), reversed.end());
  EXPECT_NEAR(horner_ascending(view_of(c), 0.9),
              horner_descending(view_of(reversed), 0.9), 1e-9);
}

TEST(PolynomialFunction, SingletonIsCoefficient) {
  const std::vector<double> c{3.5};
  PolynomialFunction<double> vp;
  EXPECT_DOUBLE_EQ(execute_sequential(vp, view_of(c), 2.0), 3.5);
}

TEST(PolynomialFunction, SizeTwo) {
  // c0 + c1 x at x=3: 1 + 2*3 = 7.
  const std::vector<double> c{1.0, 2.0};
  PolynomialFunction<double> vp;
  EXPECT_DOUBLE_EQ(execute_sequential(vp, view_of(c), 3.0), 7.0);
}

TEST(PolynomialFunction, MatchesHornerAcrossSizesAndLeafSizes) {
  PolynomialFunction<double> vp;
  for (std::size_t n : {4u, 16u, 64u, 256u}) {
    const auto c = random_coeffs(n, n);
    const double x = 0.99;
    const double expected = horner_ascending(view_of(c), x);
    for (std::size_t leaf : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                             n}) {
      EXPECT_NEAR(execute_sequential(vp, view_of(c), x, leaf), expected,
                  1e-9 * static_cast<double>(n))
          << "n=" << n << " leaf=" << leaf;
    }
  }
}

TEST(PolynomialFunction, ForkJoinMatchesSequential) {
  ForkJoinPool pool(4);
  PolynomialFunction<double> vp;
  const auto c = random_coeffs(1024, 17);
  const double x = 1.001;
  const double seq = execute_sequential(vp, view_of(c), x, 16);
  const double par = execute_forkjoin(pool, vp, view_of(c), x, 16);
  EXPECT_NEAR(par, seq, 1e-9);
}

TEST(PolynomialFunction, ContextSquaringDepthIsCorrect) {
  // With coefficients = delta at position k, vp(c, x) = x^k: a direct
  // probe that every leaf sees the correctly squared point.
  PolynomialFunction<double> vp;
  const double x = 1.1;
  for (std::size_t k : {0u, 1u, 5u, 12u, 15u}) {
    std::vector<double> c(16, 0.0);
    c[k] = 1.0;
    EXPECT_NEAR(execute_sequential(vp, view_of(c), x, 2),
                std::pow(x, static_cast<double>(k)), 1e-9)
        << "k=" << k;
  }
}

TEST(PolynomialFunction, SimulatedExecutorEvaluatesCorrectly) {
  PolynomialFunction<double> vp;
  const auto c = random_coeffs(512, 23);
  const double x = 0.97;
  pls::simmachine::CostModel m;
  const auto ex = execute_simulated(pls::simmachine::Simulator(m, 8), vp,
                                    view_of(c), x, 8);
  EXPECT_NEAR(ex.result, horner_ascending(view_of(c), x), 1e-9);
  EXPECT_GT(ex.sim.steals, 0u);
}

}  // namespace
