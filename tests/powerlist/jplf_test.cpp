// The JPLF-compatibility layer: Section III's framework shape, exercised
// with a reduce (uniform sub-functions) and the polynomial evaluation
// (sub-functions carrying the squared point — the reason JPLF has
// create_left_function/create_right_function).
#include "powerlist/jplf.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "powerlist/algorithms/polynomial.hpp"
#include "support/rng.hpp"

namespace {

using namespace pls::powerlist;
using namespace pls::powerlist::jplf;
using pls::forkjoin::ForkJoinPool;

/// Sum over tie deconstruction, JPLF shape.
class JplfSum final : public JplfPowerFunction<long, long> {
 public:
  explicit JplfSum(std::size_t threshold = 1) : threshold_(threshold) {}

  long basic_case(const BasePowerList<long>& list) override {
    long acc = 0;
    const auto& v = list.view();
    for (std::size_t i = 0; i < v.length(); ++i) acc += v[i];
    return acc;
  }

  long combine(long l, long r) override { return l + r; }

  std::unique_ptr<JplfPowerFunction<long, long>> create_left_function()
      const override {
    return std::make_unique<JplfSum>(threshold_);
  }
  std::unique_ptr<JplfPowerFunction<long, long>> create_right_function()
      const override {
    return std::make_unique<JplfSum>(threshold_);
  }

  std::size_t basic_threshold() const override { return threshold_; }

 private:
  std::size_t threshold_;
};

/// Equation 4 in JPLF shape: sub-functions carry x^2 (descending phase
/// via function creation, no context parameter).
class JplfVp final : public JplfPowerFunction<double, double> {
 public:
  JplfVp(double x, std::size_t threshold) : x_(x), threshold_(threshold) {}

  double basic_case(const BasePowerList<double>& list) override {
    return horner_ascending(list.view(), x_);
  }

  double combine(double l, double r) override { return l + x_ * r; }

  std::unique_ptr<JplfPowerFunction<double, double>> create_left_function()
      const override {
    return std::make_unique<JplfVp>(x_ * x_, threshold_);
  }
  std::unique_ptr<JplfPowerFunction<double, double>> create_right_function()
      const override {
    return std::make_unique<JplfVp>(x_ * x_, threshold_);
  }

  std::size_t basic_threshold() const override { return threshold_; }

 private:
  double x_;
  std::size_t threshold_;
};

TEST(Jplf, TiePowerListDeconstruction) {
  std::vector<long> data{1, 2, 3, 4};
  TiePowerList<long> list(view_of(data));
  const auto [l, r] = list.deconstruct();
  EXPECT_EQ(l->view().to_vector(), (std::vector<long>{1, 2}));
  EXPECT_EQ(r->view().to_vector(), (std::vector<long>{3, 4}));
}

TEST(Jplf, ZipPowerListDeconstruction) {
  std::vector<long> data{1, 2, 3, 4};
  ZipPowerList<long> list(view_of(data));
  const auto [l, r] = list.deconstruct();
  EXPECT_EQ(l->view().to_vector(), (std::vector<long>{1, 3}));
  EXPECT_EQ(r->view().to_vector(), (std::vector<long>{2, 4}));
}

TEST(Jplf, SumComputeTemplateMethod) {
  std::vector<long> data(256);
  std::iota(data.begin(), data.end(), 1);
  TiePowerList<long> list(view_of(data));
  JplfSum sum;
  EXPECT_EQ(sum.compute(list), 256 * 257 / 2);
}

TEST(Jplf, SumWorksOnZipListsToo) {
  std::vector<long> data(128);
  std::iota(data.begin(), data.end(), 1);
  ZipPowerList<long> list(view_of(data));
  JplfSum sum(4);
  EXPECT_EQ(sum.compute(list), 128 * 129 / 2);
}

TEST(Jplf, BasicThresholdStopsRecursion) {
  std::vector<long> data(64, 1);
  TiePowerList<long> list(view_of(data));
  JplfSum whole(64);  // threshold = whole list: one basic case
  EXPECT_EQ(whole.compute(list), 64);
}

TEST(Jplf, PolynomialMatchesHorner) {
  pls::Xoshiro256 rng(3);
  std::vector<double> coeffs(512);
  for (auto& c : coeffs) c = rng.next_double() - 0.5;
  const double x = 0.98;
  ZipPowerList<double> list(view_of(coeffs));
  for (std::size_t threshold : {1u, 4u, 32u}) {
    JplfVp vp(x, threshold);
    EXPECT_NEAR(vp.compute(list), horner_ascending(view_of(coeffs), x),
                1e-9)
        << "threshold=" << threshold;
  }
}

TEST(Jplf, ParallelComputeMatchesSequential) {
  ForkJoinPool pool(4);
  pls::Xoshiro256 rng(7);
  std::vector<double> coeffs(1024);
  for (auto& c : coeffs) c = rng.next_double() - 0.5;
  const double x = 1.0005;
  ZipPowerList<double> list(view_of(coeffs));
  JplfVp seq(x, 16);
  JplfVp par(x, 16);
  EXPECT_NEAR(par.compute_parallel(pool, list), seq.compute(list), 1e-9);
}

TEST(Jplf, ParallelSumLargeTree) {
  ForkJoinPool pool(4);
  std::vector<long> data(1 << 14);
  std::iota(data.begin(), data.end(), 0);
  TiePowerList<long> list(view_of(data));
  JplfSum sum(64);
  EXPECT_EQ(sum.compute_parallel(pool, list),
            (long{1} << 14) * ((long{1} << 14) - 1) / 2);
}

TEST(Jplf, AgreesWithIdiomaticPowerFunction) {
  // The two framework styles compute identical results on the same input.
  pls::Xoshiro256 rng(11);
  std::vector<double> coeffs(256);
  for (auto& c : coeffs) c = rng.next_double() - 0.5;
  const double x = 0.93;
  PolynomialFunction<double> idiomatic;
  const double a = execute_sequential(idiomatic, view_of(coeffs), x, 8);
  ZipPowerList<double> list(view_of(coeffs));
  JplfVp jplf_style(x, 8);
  EXPECT_NEAR(jplf_style.compute(list), a, 1e-9);
}

}  // namespace
