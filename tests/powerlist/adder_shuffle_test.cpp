// Adder circuits (reference [4] of the paper) and Misra's permutation
// functions (shift, rotate, shuffle).
#include <gtest/gtest.h>

#include <numeric>

#include "powerlist/algorithms/adder.hpp"
#include "powerlist/algorithms/shuffle.hpp"
#include "support/rng.hpp"

namespace {

using namespace pls::powerlist;

// ---- adders -------------------------------------------------------------

TEST(Adder, BitConversionRoundTrip) {
  for (std::uint64_t v : {0ull, 1ull, 37ull, 255ull, 256ull, 65535ull}) {
    EXPECT_EQ(from_bits(to_bits(v, 32)), v);
  }
}

TEST(Adder, RippleCarryKnownCases) {
  // 5 + 3 = 8 in 4 bits.
  const auto r = ripple_carry_add(to_bits(5, 4), to_bits(3, 4));
  EXPECT_EQ(from_bits(r.sum), 8u);
  EXPECT_FALSE(r.carry_out);
  // 15 + 1 = 0 carry 1 in 4 bits.
  const auto o = ripple_carry_add(to_bits(15, 4), to_bits(1, 4));
  EXPECT_EQ(from_bits(o.sum), 0u);
  EXPECT_TRUE(o.carry_out);
}

TEST(Adder, CarryMonoidLaws) {
  using S = CarryStatus;
  const S all[] = {S::kKill, S::kGenerate, S::kPropagate};
  // kPropagate is the identity.
  for (S s : all) {
    EXPECT_EQ(carry_then(S::kPropagate, s) , s == S::kPropagate ? S::kPropagate : s);
    EXPECT_EQ(carry_then(s, S::kPropagate), s);
  }
  // Associativity, exhaustively.
  for (S a : all) {
    for (S b : all) {
      for (S c : all) {
        EXPECT_EQ(carry_then(carry_then(a, b), c),
                  carry_then(a, carry_then(b, c)));
      }
    }
  }
}

class AdderSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(AdderSweep, LookaheadMatchesRippleOnRandomInputs) {
  const unsigned width = GetParam();
  pls::Xoshiro256 rng(width * 1000 + 1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t mask =
        width >= 64 ? ~0ull : (1ull << width) - 1;
    const std::uint64_t a = rng() & mask;
    const std::uint64_t b = rng() & mask;
    const auto ripple = ripple_carry_add(to_bits(a, width), to_bits(b, width));
    const auto look = carry_lookahead_add(to_bits(a, width), to_bits(b, width));
    EXPECT_EQ(look.sum, ripple.sum) << "a=" << a << " b=" << b;
    EXPECT_EQ(look.carry_out, ripple.carry_out);
    if (width < 63) {
      EXPECT_EQ(from_bits(look.sum) +
                    ((look.carry_out ? 1ull : 0ull) << width),
                a + b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

TEST(Adder, RejectsNonBitInputs) {
  EXPECT_THROW(ripple_carry_add({2, 0}, {0, 0}), pls::precondition_error);
  EXPECT_THROW(carry_lookahead_add({0, 3}, {0, 0}), pls::precondition_error);
}

TEST(Adder, RejectsDissimilarWidths) {
  EXPECT_THROW(ripple_carry_add({0, 1}, {1}), pls::precondition_error);
}

// ---- permutations ---------------------------------------------------------

TEST(Shuffle, ShiftRight) {
  const std::vector<int> p{1, 2, 3, 4};
  EXPECT_EQ(shift_right(view_of(p), 0), (std::vector<int>{0, 1, 2, 3}));
}

TEST(Shuffle, RotateRightAndLeftAreInverses) {
  const std::vector<int> p{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(rotate_right(view_of(p)),
            (std::vector<int>{8, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(rotate_left(view_of(p)),
            (std::vector<int>{2, 3, 4, 5, 6, 7, 8, 1}));
  const auto rr = rotate_right(view_of(p));
  EXPECT_EQ(rotate_left(view_of(rr)), p);
}

TEST(Shuffle, RotatePowerListLaw) {
  // rr(p zip q) == rr(q) zip p.
  const std::vector<int> data{0, 1, 2, 3, 4, 5, 6, 7};
  const auto [p, q] = view_of(data).zip();
  const auto lhs = rotate_right(view_of(data));
  const auto rrq = rotate_right(q);
  std::vector<int> rhs;
  for (std::size_t i = 0; i < rrq.size(); ++i) {
    rhs.push_back(rrq[i]);
    rhs.push_back(p[i]);
  }
  EXPECT_EQ(lhs, rhs);
}

TEST(Shuffle, PerfectShuffleDefinition) {
  // shuffle(p | q) == p zip q.
  const std::vector<int> data{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(shuffle(view_of(data)),
            (std::vector<int>{0, 4, 1, 5, 2, 6, 3, 7}));
}

TEST(Shuffle, UnshuffleInvertsShuffle) {
  std::vector<int> data(64);
  std::iota(data.begin(), data.end(), 0);
  const auto shuffled = shuffle(view_of(data));
  EXPECT_EQ(unshuffle(view_of(shuffled)), data);
  const auto unshuffled = unshuffle(view_of(data));
  EXPECT_EQ(shuffle(view_of(unshuffled)), data);
}

TEST(Shuffle, RepeatedShuffleIsIdentityAfterLog2N) {
  // The perfect shuffle on 2^k elements has order k... for the riffle on
  // 2^k cards the order divides the multiplicative order of 2 mod (n-1);
  // for n=8 that order is 3 (2^3 = 8 ≡ 1 mod 7).
  std::vector<int> data{0, 1, 2, 3, 4, 5, 6, 7};
  auto v = data;
  for (int i = 0; i < 3; ++i) v = shuffle(view_of(v));
  EXPECT_EQ(v, data);
}

}  // namespace
