// The PowerFunction skeleton under all three executors: sequential,
// fork-join, and simulated. One simple function (sum via reduce shape) and
// one context-carrying function exercise every hook.
#include "powerlist/executors.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "powerlist/algorithms/map_reduce.hpp"
#include "powerlist/algorithms/polynomial.hpp"

namespace {

using pls::forkjoin::ForkJoinPool;
using pls::powerlist::execute_forkjoin;
using pls::powerlist::execute_sequential;
using pls::powerlist::execute_simulated;
using pls::powerlist::PowerListView;
using pls::powerlist::ReduceFunction;
using pls::simmachine::CostModel;
using pls::simmachine::Simulator;

std::vector<long> iota(std::size_t n) {
  std::vector<long> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

TEST(Executors, SequentialReduce) {
  auto data = iota(64);
  ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  const long r = execute_sequential(sum, pls::powerlist::view_of(
                                             std::as_const(data)));
  EXPECT_EQ(r, 64 * 65 / 2);
}

TEST(Executors, SequentialSingleton) {
  std::vector<long> data{42};
  ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  EXPECT_EQ(execute_sequential(sum,
                               pls::powerlist::view_of(std::as_const(data))),
            42);
}

TEST(Executors, LeafSizeSweepGivesSameResult) {
  auto data = iota(256);
  ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  const auto view = pls::powerlist::view_of(std::as_const(data));
  const long expected = 256 * 257 / 2;
  for (std::size_t leaf : {1u, 2u, 4u, 16u, 64u, 256u, 1024u}) {
    EXPECT_EQ(execute_sequential(sum, view, {}, leaf), expected)
        << "leaf=" << leaf;
  }
}

TEST(Executors, InvalidLeafSizeThrows) {
  auto data = iota(8);
  ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  EXPECT_THROW(execute_sequential(
                   sum, pls::powerlist::view_of(std::as_const(data)), {}, 0),
               pls::precondition_error);
}

TEST(Executors, ForkJoinMatchesSequential) {
  ForkJoinPool pool(4);
  auto data = iota(1024);
  ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  const auto view = pls::powerlist::view_of(std::as_const(data));
  EXPECT_EQ(execute_forkjoin(pool, sum, view, {}, 16),
            execute_sequential(sum, view, {}, 16));
}

TEST(Executors, ForkJoinPolynomialWithContext) {
  ForkJoinPool pool(4);
  // Ascending coefficients: value = sum coeffs[i] * x^i.
  std::vector<double> coeffs(64);
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    coeffs[i] = static_cast<double>(i % 5) - 2.0;
  }
  const double x = 0.97;
  pls::powerlist::PolynomialFunction<double> vp;
  const auto view = pls::powerlist::view_of(std::as_const(coeffs));
  const double seq = execute_sequential(vp, view, x, 4);
  const double par = execute_forkjoin(pool, vp, view, x, 4);
  const double reference = pls::powerlist::horner_ascending(view, x);
  EXPECT_NEAR(seq, reference, 1e-9);
  EXPECT_NEAR(par, reference, 1e-9);
}

TEST(Executors, SimulatedProducesSameResultPlusSchedule) {
  auto data = iota(256);
  ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  const auto view = pls::powerlist::view_of(std::as_const(data));
  CostModel m;
  m.ns_per_op = 2.0;
  Simulator sim(m, 8);
  const auto ex = execute_simulated(sim, sum, view, {}, 4);
  EXPECT_EQ(ex.result, 256 * 257 / 2);
  EXPECT_GT(ex.sim.makespan_ns, 0.0);
  EXPECT_EQ(ex.sim.processors, 8u);
  // 64 leaves of cost 4 ops + 63 forks: pure work = 64*4 + 63*1 ops.
  EXPECT_DOUBLE_EQ(ex.sim.pure_work_ns, (64 * 4 + 63) * 2.0);
}

TEST(Executors, SimulatedSpeedupGrowsWithProcessors) {
  auto data = iota(1u << 14);
  ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  const auto view = pls::powerlist::view_of(std::as_const(data));
  CostModel m;  // default overheads
  double prev_makespan = 0.0;
  for (unsigned p : {1u, 2u, 4u, 8u}) {
    const auto ex = execute_simulated(Simulator(m, p), sum, view, {}, 64);
    if (p > 1) {
      EXPECT_LT(ex.sim.makespan_ns, prev_makespan);
    }
    prev_makespan = ex.sim.makespan_ns;
  }
}

TEST(Executors, InstrumentedCountsMatchTreeShape) {
  auto data = iota(256);
  ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  const auto view = pls::powerlist::view_of(std::as_const(data));
  // leaf 32 over 256: 8 leaves, 7 forks, depth 3.
  const auto ex = pls::powerlist::execute_instrumented(sum, view, {}, 32);
  EXPECT_EQ(ex.result, 256 * 257 / 2);
  EXPECT_EQ(ex.stats.basic_cases, 8u);
  EXPECT_EQ(ex.stats.combines, 7u);
  EXPECT_EQ(ex.stats.descends, 7u);
  EXPECT_EQ(ex.stats.max_depth, 3u);
  EXPECT_EQ(ex.stats.min_leaf_length, 32u);
  EXPECT_EQ(ex.stats.max_leaf_length, 32u);
}

TEST(Executors, InstrumentedSingleLeaf) {
  auto data = iota(64);
  ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  const auto view = pls::powerlist::view_of(std::as_const(data));
  const auto ex = pls::powerlist::execute_instrumented(sum, view, {}, 64);
  EXPECT_EQ(ex.stats.basic_cases, 1u);
  EXPECT_EQ(ex.stats.combines, 0u);
  EXPECT_EQ(ex.stats.max_depth, 0u);
}

TEST(Executors, InstrumentedUniformLeafDepths) {
  // Power-of-two halving always produces uniform leaves — the property
  // the paper's PolynomialValue mechanism depends on.
  auto data = iota(1 << 10);
  ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  const auto view = pls::powerlist::view_of(std::as_const(data));
  for (std::size_t leaf : {3u, 5u, 100u}) {  // non-power-of-two thresholds
    const auto ex = pls::powerlist::execute_instrumented(sum, view, {}, leaf);
    EXPECT_EQ(ex.stats.min_leaf_length, ex.stats.max_leaf_length)
        << "leaf=" << leaf;
  }
}

TEST(Executors, UnifiedReportFromSimulatedRun) {
  // One ExecutionReport now serves both the real and simmachine paths:
  // the simulated run carries the decomposition shape alongside the
  // schedule.
  auto data = iota(256);
  ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  const auto view = pls::powerlist::view_of(std::as_const(data));
  CostModel m;
  m.ns_per_op = 2.0;
  const pls::powerlist::ExecutionReport<long> ex =
      execute_simulated(Simulator(m, 8), sum, view, {}, 4);
  EXPECT_TRUE(ex.simulated);
  EXPECT_EQ(ex.stats.basic_cases, 64u);  // 256 / 4
  EXPECT_EQ(ex.stats.descends, 63u);
  EXPECT_EQ(ex.stats.max_depth, 6u);
  EXPECT_EQ(ex.stats.min_leaf_length, 4u);
}

TEST(Executors, ForkJoinReportedMatchesSequential) {
  ForkJoinPool pool(4);
  auto data = iota(1024);
  ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  const auto view = pls::powerlist::view_of(std::as_const(data));
  const auto report =
      pls::powerlist::execute_forkjoin_reported(pool, sum, view, {}, 16);
  EXPECT_EQ(report.result, execute_sequential(sum, view, {}, 16));
  EXPECT_FALSE(report.simulated);
  // Closed-form shape equals what the instrumented sequential run counts.
  const auto instrumented =
      pls::powerlist::execute_instrumented(sum, view, {}, 16);
  EXPECT_EQ(report.stats.basic_cases, instrumented.stats.basic_cases);
  EXPECT_EQ(report.stats.descends, instrumented.stats.descends);
  EXPECT_EQ(report.stats.combines, instrumented.stats.combines);
  EXPECT_EQ(report.stats.max_depth, instrumented.stats.max_depth);
  EXPECT_EQ(report.stats.min_leaf_length, instrumented.stats.min_leaf_length);
  EXPECT_EQ(report.stats.max_leaf_length, instrumented.stats.max_leaf_length);
  if (pls::observe::kEnabled) {
    // The counter delta sees the run's decomposition: 64 leaves, 63 forks.
    EXPECT_EQ(report.counters.leaf_chunks, 64u);
    EXPECT_EQ(report.counters.forks, 63u);
    EXPECT_EQ(report.counters.elements_accumulated, 1024u);
  }
}

TEST(Executors, ExecutionReportUnifiesInstrumentedAndSimulatedRuns) {
  auto data = iota(64);
  ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  const auto view = pls::powerlist::view_of(std::as_const(data));
  const pls::powerlist::ExecutionReport<long> a =
      pls::powerlist::execute_instrumented(sum, view, {}, 8);
  const pls::powerlist::ExecutionReport<long> b =
      execute_simulated(Simulator(CostModel{}, 2), sum, view, {}, 8);
  EXPECT_EQ(a.result, b.result);
  EXPECT_FALSE(a.simulated);
  EXPECT_TRUE(b.simulated);
  EXPECT_EQ(a.stats.basic_cases, 8u);
  EXPECT_GT(b.sim.makespan_ns, 0.0);
}

TEST(Executors, ZipReduceSameAsTieForCommutativeOp) {
  auto data = iota(128);
  const auto view = pls::powerlist::view_of(std::as_const(data));
  ReduceFunction<long, std::plus<long>> tie_sum{
      std::plus<long>{}, pls::powerlist::DecompositionOp::kTie};
  ReduceFunction<long, std::plus<long>> zip_sum{
      std::plus<long>{}, pls::powerlist::DecompositionOp::kZip};
  EXPECT_EQ(execute_sequential(tie_sum, view, {}, 2),
            execute_sequential(zip_sum, view, {}, 2));
}

}  // namespace
