// PList views, multiway spliterators, and n-way D&C functions.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "plist/functions.hpp"
#include "plist/multiway_spliterator.hpp"
#include "plist/plist_view.hpp"
#include "powerlist/collector_functions.hpp"
#include "support/rng.hpp"

namespace {

using namespace pls::plist;
using pls::forkjoin::ForkJoinPool;

std::vector<int> iota(std::size_t n, int start = 0) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

// ---- views ------------------------------------------------------------

TEST(PListView, PaperExampleTieAndZip) {
  // p.i = [i*3, i*3+1, i*3+2]: 3-way tie and zip of the paper.
  const std::vector<int> tied{0, 1, 2, 3, 4, 5, 6, 7, 8};
  const auto parts = PListView<const int>::over(tied).tie_n(3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].to_vector(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(parts[1].to_vector(), (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(parts[2].to_vector(), (std::vector<int>{6, 7, 8}));

  const std::vector<int> zipped{0, 3, 6, 1, 4, 7, 2, 5, 8};
  const auto zparts = PListView<const int>::over(zipped).zip_n(3);
  EXPECT_EQ(zparts[0].to_vector(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(zparts[1].to_vector(), (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(zparts[2].to_vector(), (std::vector<int>{6, 7, 8}));
}

TEST(PListView, JoinFunctionsInvertSplits) {
  const auto data = iota(12);
  const auto view = PListView<const int>::over(data);
  std::vector<std::vector<int>> tie_parts;
  for (const auto& p : view.tie_n(4)) tie_parts.push_back(p.to_vector());
  EXPECT_EQ(tie_join(tie_parts), data);
  std::vector<std::vector<int>> zip_parts;
  for (const auto& p : view.zip_n(4)) zip_parts.push_back(p.to_vector());
  EXPECT_EQ(zip_join(zip_parts), data);
}

TEST(PListView, NonDivisibleSplitRejected) {
  const auto data = iota(10);
  const auto view = PListView<const int>::over(data);
  EXPECT_THROW(view.tie_n(3), pls::precondition_error);
  EXPECT_TRUE(view.divisible_by(5));
  EXPECT_FALSE(view.divisible_by(3));
}

TEST(PListView, NonPowerOfTwoLengthsAllowed) {
  const auto data = iota(18);  // not a power of two: fine for PLists
  const auto parts = PListView<const int>::over(data).zip_n(3);
  EXPECT_EQ(parts[1].to_vector(), (std::vector<int>{1, 4, 7, 10, 13, 16}));
}

// ---- multiway spliterators ---------------------------------------------

template <typename T>
std::vector<T> drain(pls::streams::Spliterator<T>& sp) {
  std::vector<T> out;
  sp.for_each_remaining([&](const T& v) { out.push_back(v); });
  return out;
}

TEST(MultiwaySpliterator, NTieSplitsIntoSegments) {
  auto data = std::make_shared<const std::vector<int>>(iota(9));
  NTieSpliterator<int> sp(data);
  auto parts = sp.try_split_n(3);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(drain(*parts[0]), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(drain(*parts[1]), (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(drain(sp), (std::vector<int>{6, 7, 8}));
}

TEST(MultiwaySpliterator, NZipSplitsIntoResidues) {
  auto data = std::make_shared<const std::vector<int>>(iota(9));
  NZipSpliterator<int> sp(data);
  auto parts = sp.try_split_n(3);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(drain(*parts[0]), (std::vector<int>{0, 3, 6}));
  EXPECT_EQ(drain(*parts[1]), (std::vector<int>{1, 4, 7}));
  EXPECT_EQ(drain(sp), (std::vector<int>{2, 5, 8}));
}

TEST(MultiwaySpliterator, RefusesNonDivisibleArity) {
  auto data = std::make_shared<const std::vector<int>>(iota(10));
  NTieSpliterator<int> sp(data);
  EXPECT_TRUE(sp.try_split_n(3).empty());
  EXPECT_EQ(sp.estimate_size(), 10u);  // untouched after refusal
}

TEST(MultiwaySpliterator, BinarySplitFallback) {
  auto data = std::make_shared<const std::vector<int>>(iota(8));
  NTieSpliterator<int> sp(data);
  auto prefix = sp.try_split();
  ASSERT_NE(prefix, nullptr);
  EXPECT_EQ(drain(*prefix), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(drain(sp), (std::vector<int>{4, 5, 6, 7}));
}

TEST(MultiwayCollect, TieReconstructionAcrossArities) {
  const auto data = iota(81);  // 3^4: splits 3-ways all the way down
  for (std::size_t arity : {2u, 3u}) {
    auto shared = std::make_shared<const std::vector<int>>(data);
    NTieSpliterator<int> sp(shared);
    const auto out = evaluate_collect_multiway(
        sp, pls::powerlist::to_power_array_tie<int>(), arity, true);
    EXPECT_EQ(out.values(), data) << "arity=" << arity;
  }
}

TEST(MultiwayCollect, SumAcrossArities) {
  const auto data = iota(64, 1);
  auto summing = pls::streams::make_collector<int>(
      [] { return 0L; }, [](long& acc, const int& v) { acc += v; },
      [](long& l, long& r) { l += r; });
  for (std::size_t arity : {2u, 4u, 8u}) {
    auto shared = std::make_shared<const std::vector<int>>(data);
    NZipSpliterator<int> sp(shared);
    EXPECT_EQ(evaluate_collect_multiway(sp, summing, arity, true), 64 * 65 / 2)
        << "arity=" << arity;
  }
}

// ---- PList functions ----------------------------------------------------

TEST(PListFunctions, NWayReduceMatchesSequentialFold) {
  const auto data = iota(81, 1);
  const auto view = PListView<const int>::over(data);
  const long expected = 81 * 82 / 2;
  for (std::size_t ways : {2u, 3u, 9u}) {
    NWayReduce<int, std::plus<int>> sum{std::plus<int>{}, ways};
    EXPECT_EQ(execute_sequential(sum, view), expected) << "ways=" << ways;
  }
}

TEST(PListFunctions, NWayReduceForkJoin) {
  ForkJoinPool pool(4);
  const auto data = iota(243, 1);
  const auto view = PListView<const int>::over(data);
  NWayReduce<int, std::plus<int>> sum{std::plus<int>{}, 3};
  EXPECT_EQ(execute_forkjoin(pool, sum, view, {}, 9), 243 * 244 / 2);
}

TEST(PListFunctions, NWayMapTieAndZipPreserveOrder) {
  const auto data = iota(27);
  const auto view = PListView<const int>::over(data);
  std::vector<int> expected;
  for (int v : data) expected.push_back(v * 10);
  {
    NWayMap<int, int, int (*)(const int&)> m(
        [](const int& v) { return v * 10; }, 3, NWayOp::kTie);
    EXPECT_EQ(execute_sequential(m, view), expected);
  }
  {
    NWayMap<int, int, int (*)(const int&)> m(
        [](const int& v) { return v * 10; }, 3, NWayOp::kZip);
    EXPECT_EQ(execute_sequential(m, view), expected);
  }
}

TEST(PListFunctions, KWayMerge) {
  const std::vector<std::vector<int>> runs{
      {1, 5, 9}, {2, 4, 8}, {0, 6, 7}, {3, 10, 11}};
  EXPECT_EQ(kway_merge(runs),
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}));
}

TEST(PListFunctions, KWayMergeWithEmptyRun) {
  const std::vector<std::vector<int>> runs{{2, 3}, {}, {1}};
  EXPECT_EQ(kway_merge(runs), (std::vector<int>{1, 2, 3}));
}

TEST(PListFunctions, MultiwayMergeSortSorts) {
  pls::Xoshiro256 rng(99);
  std::vector<int> data(3 * 3 * 3 * 3 * 2);
  for (auto& v : data) v = static_cast<int>(rng.next_below(10000));
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  for (std::size_t ways : {2u, 3u}) {
    MultiwayMergeSort<int> sorter(ways);
    EXPECT_EQ(
        execute_sequential(sorter, PListView<const int>::over(data), {}, 2),
        expected)
        << "ways=" << ways;
  }
}

TEST(PListFunctions, MultiwayMergeSortForkJoinMatches) {
  ForkJoinPool pool(4);
  pls::Xoshiro256 rng(7);
  std::vector<int> data(729);
  for (auto& v : data) v = static_cast<int>(rng.next_below(100000));
  MultiwayMergeSort<int> sorter(3);
  const auto view = PListView<const int>::over(data);
  EXPECT_EQ(execute_forkjoin(pool, sorter, view, {}, 27),
            execute_sequential(sorter, view, {}, 27));
}

TEST(PListFunctions, ArityNotDividingLengthFallsToLeaf) {
  // Length 10 with arity 3: the function must still produce the right
  // result by treating the whole list as a basic case.
  const auto data = iota(10, 1);
  NWayReduce<int, std::plus<int>> sum{std::plus<int>{}, 3};
  EXPECT_EQ(execute_sequential(sum, PListView<const int>::over(data)), 55);
}

}  // namespace
