// Destination-passing multiway collect: n-way windows make n-way zip
// reconstruction expressible (the supplier/combiner path cannot express
// it with any pairwise combiner — zip_join(a,b,c) != zip(zip(a,b),c)).
#include "plist/multiway_spliterator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "forkjoin/pool.hpp"
#include "observe/counters.hpp"
#include "streams/sized_sink.hpp"

namespace {

using pls::forkjoin::ForkJoinPool;
using pls::observe::aggregate_counters;
using pls::observe::CounterTotals;
using pls::observe::kEnabled;
using pls::plist::evaluate_collect_multiway;
using pls::plist::NTieSpliterator;
using pls::plist::NZipSpliterator;
using pls::streams::VectorCollector;

std::shared_ptr<const std::vector<int>> iota_shared(std::size_t n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return std::make_shared<const std::vector<int>>(std::move(v));
}

class MultiwayDps : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultiwayDps, NZipReconstructsIdentityAtArity) {
  const std::size_t arity = GetParam();
  auto data = iota_shared(1 << 10);
  NZipSpliterator<int> sp(data);
  pls::streams::ExecutionConfig cfg;
  ForkJoinPool pool(2);
  cfg.pool = &pool;
  cfg.min_chunk = 16;
  const CounterTotals before = aggregate_counters();
  const auto out = evaluate_collect_multiway(sp, VectorCollector<int>{},
                                             arity, /*parallel=*/true, cfg);
  const CounterTotals delta = aggregate_counters() - before;
  EXPECT_EQ(out, *data)
      << "windows encode the interleaving, so zip order survives any arity";
  if (kEnabled) {
    EXPECT_EQ(delta.combines, 0u);
    EXPECT_EQ(delta.bytes_moved, 0u);
    EXPECT_EQ(delta.allocations, 1u);
    EXPECT_GT(delta.splits, 0u);
  }
}

TEST_P(MultiwayDps, NTieReconstructsIdentityAtArity) {
  const std::size_t arity = GetParam();
  auto data = iota_shared(1 << 10);
  NTieSpliterator<int> sp(data);
  pls::streams::ExecutionConfig cfg;
  ForkJoinPool pool(2);
  cfg.pool = &pool;
  cfg.min_chunk = 16;
  const auto out = evaluate_collect_multiway(sp, VectorCollector<int>{},
                                             arity, /*parallel=*/true, cfg);
  EXPECT_EQ(out, *data);
}

INSTANTIATE_TEST_SUITE_P(Arities, MultiwayDps,
                         ::testing::Values(2u, 3u, 4u, 8u));

TEST(MultiwayDps, SequentialPathAlsoUsesSink) {
  auto data = iota_shared(1 << 8);
  NZipSpliterator<int> sp(data);
  const CounterTotals before = aggregate_counters();
  const auto out = evaluate_collect_multiway(sp, VectorCollector<int>{}, 4,
                                             /*parallel=*/false);
  const CounterTotals delta = aggregate_counters() - before;
  EXPECT_EQ(out, *data);
  if (kEnabled) {
    EXPECT_EQ(delta.allocations, 1u);
    EXPECT_EQ(delta.bytes_moved, 0u);
  }
}

TEST(MultiwayDps, LegacyPathStillFoldsForTieSources) {
  // With the sized sink disabled, NTie still reconstructs (pairwise
  // concat folds are fine for tie) — the guardrail that the old path
  // keeps working.
  auto data = iota_shared(1 << 8);
  NTieSpliterator<int> sp(data);
  pls::streams::ExecutionConfig cfg;
  ForkJoinPool pool(2);
  cfg.pool = &pool;
  cfg.min_chunk = 16;
  cfg.sized_sink = false;
  const CounterTotals before = aggregate_counters();
  const auto out = evaluate_collect_multiway(sp, VectorCollector<int>{}, 4,
                                             /*parallel=*/true, cfg);
  const CounterTotals delta = aggregate_counters() - before;
  EXPECT_EQ(out, *data);
  if (kEnabled) {
    EXPECT_GT(delta.combines, 0u);
    EXPECT_GT(delta.bytes_moved, 0u);
  }
}

TEST(MultiwayDps, NonPowerOfTwoFallsBackToFold) {
  // 3 * 2^6 elements: windowed but not a power of two, so the sized-sink
  // admission rejects it and the fold path runs. Tie is fold-safe.
  auto data = iota_shared(192);
  NTieSpliterator<int> sp(data);
  pls::streams::ExecutionConfig cfg;
  ForkJoinPool pool(2);
  cfg.pool = &pool;
  cfg.min_chunk = 16;
  const CounterTotals before = aggregate_counters();
  const auto out = evaluate_collect_multiway(sp, VectorCollector<int>{}, 3,
                                             /*parallel=*/true, cfg);
  const CounterTotals delta = aggregate_counters() - before;
  EXPECT_EQ(out, *data);
  if (kEnabled) {
    EXPECT_GT(delta.combines, 0u) << "non-POWER2 source must take the fold";
  }
}

}  // namespace
