#include "support/stats.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Stats, SingleSample) {
  const auto s = pls::summarize({3.5});
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, KnownValues) {
  const auto s = pls::summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(Stats, MedianOddCount) {
  const auto s = pls::summarize({9.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(s.median, 5.0);
}

TEST(Stats, OrderInsensitive) {
  const auto a = pls::summarize({1.0, 2.0, 3.0, 4.0});
  const auto b = pls::summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.median, b.median);
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
}

TEST(Stats, RelStddevZeroMean) {
  const auto s = pls::summarize({0.0, 0.0});
  EXPECT_DOUBLE_EQ(s.rel_stddev(), 0.0);
}

TEST(Stats, EmptySampleThrows) {
  EXPECT_THROW(pls::summarize({}), pls::precondition_error);
}

}  // namespace
