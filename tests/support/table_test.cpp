#include "support/table.hpp"

#include <gtest/gtest.h>

namespace {

TEST(TextTable, AlignsColumns) {
  pls::TextTable t({"n", "time"});
  t.add_row({"1", "10.5"});
  t.add_row({"1048576", "3.2"});
  const std::string s = t.to_string();
  // Every data line starts with '|' and the header contains both titles.
  EXPECT_NE(s.find("| n "), std::string::npos);
  EXPECT_NE(s.find("| 1048576 |"), std::string::npos);
  // All lines have equal length (alignment invariant).
  std::size_t expected = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, expected);
    pos = next + 1;
  }
}

TEST(TextTable, RowWidthMismatchThrows) {
  pls::TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), pls::precondition_error);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(pls::TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(pls::TextTable::num(2.0, 3), "2.000");
}

}  // namespace
