#include "support/bits.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace {

using pls::ceil_log2;
using pls::exact_log2;
using pls::floor_log2;
using pls::gray_code;
using pls::is_power_of_two;
using pls::next_power_of_two;
using pls::popcount64;
using pls::reverse_bits;

TEST(Bits, PowerOfTwoDetection) {
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_TRUE(is_power_of_two(4));
  EXPECT_FALSE(is_power_of_two(6));
  EXPECT_TRUE(is_power_of_two(std::uint64_t{1} << 63));
  EXPECT_FALSE(is_power_of_two((std::uint64_t{1} << 63) + 1));
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(1025), 10u);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Bits, ExactLog2RoundTripsWithShift) {
  for (unsigned k = 0; k < 40; ++k) {
    EXPECT_EQ(exact_log2(std::uint64_t{1} << k), k);
  }
}

TEST(Bits, NextPowerOfTwo) {
  EXPECT_EQ(next_power_of_two(0), 1u);
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(2), 2u);
  EXPECT_EQ(next_power_of_two(3), 4u);
  EXPECT_EQ(next_power_of_two(4), 4u);
  EXPECT_EQ(next_power_of_two(1000), 1024u);
}

TEST(Bits, ReverseBitsSmall) {
  EXPECT_EQ(reverse_bits(0b000, 3), 0b000u);
  EXPECT_EQ(reverse_bits(0b001, 3), 0b100u);
  EXPECT_EQ(reverse_bits(0b011, 3), 0b110u);
  EXPECT_EQ(reverse_bits(0b101, 3), 0b101u);  // palindrome
}

TEST(Bits, ReverseBitsIsInvolution) {
  for (std::uint64_t v = 0; v < 256; ++v) {
    EXPECT_EQ(reverse_bits(reverse_bits(v, 8), 8), v);
  }
}

TEST(Bits, ReverseBitsPermutesRange) {
  // reverse_bits(., k) must be a bijection on [0, 2^k).
  constexpr unsigned k = 6;
  bool seen[1u << k] = {};
  for (std::uint64_t v = 0; v < (1u << k); ++v) {
    const auto r = reverse_bits(v, k);
    ASSERT_LT(r, 1u << k);
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

TEST(Bits, Popcount) {
  EXPECT_EQ(popcount64(0), 0u);
  EXPECT_EQ(popcount64(1), 1u);
  EXPECT_EQ(popcount64(0b1011), 3u);
  EXPECT_EQ(popcount64(~std::uint64_t{0}), 64u);
}

TEST(Bits, GrayCodeAdjacentDifferByOneBit) {
  for (std::uint64_t n = 0; n < 1024; ++n) {
    EXPECT_EQ(popcount64(gray_code(n) ^ gray_code(n + 1)), 1u);
  }
}

TEST(Bits, GrayCodeIsBijectionOnRange) {
  constexpr std::uint64_t n = 1u << 10;
  std::vector<bool> seen(n, false);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto g = gray_code(i);
    ASSERT_LT(g, n);
    EXPECT_FALSE(seen[g]);
    seen[g] = true;
  }
}

}  // namespace
