#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace {

TEST(SplitMix64, DeterministicForSeed) {
  pls::SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  pls::SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256, DeterministicForSeed) {
  pls::Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  pls::Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleRoughlyUniform) {
  pls::Xoshiro256 rng(99);
  int buckets[10] = {};
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++buckets[static_cast<int>(rng.next_double() * 10.0)];
  }
  for (int b : buckets) {
    EXPECT_GT(b, kSamples / 10 * 0.9);
    EXPECT_LT(b, kSamples / 10 * 1.1);
  }
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  pls::Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Xoshiro256, NextBelowHitsAllResidues) {
  pls::Xoshiro256 rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<pls::Xoshiro256>);
  SUCCEED();
}

}  // namespace
