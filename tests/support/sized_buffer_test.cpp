// SizedBuffer: uninitialized exactly-sized storage for the
// destination-passing collect — construction, adoption into vectors, and
// exception-safe teardown of partially filled buffers.
#include "support/sized_buffer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace {

using pls::SizedBuffer;

TEST(SizedBuffer, TrivialTypeFillAndTake) {
  SizedBuffer<int> buf(8);
  EXPECT_EQ(buf.size(), 8u);
  EXPECT_FALSE(buf.fully_constructed());
  for (std::size_t i = 0; i < 8; ++i) buf.construct(i, static_cast<int>(i));
  EXPECT_TRUE(buf.fully_constructed());
  const std::vector<int> out = std::move(buf).take_vector();
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(buf.size(), 0u);  // emptied by take_vector
}

TEST(SizedBuffer, NonTrivialTypeFillAndTake) {
  SizedBuffer<std::string> buf(4);
  for (std::size_t i = 0; i < 4; ++i) {
    buf.construct(i, std::string(3, static_cast<char>('a' + i)));
  }
  EXPECT_EQ(buf[2], "ccc");
  const std::vector<std::string> out = std::move(buf).take_vector();
  EXPECT_EQ(out, (std::vector<std::string>{"aaa", "bbb", "ccc", "ddd"}));
}

TEST(SizedBuffer, OutOfOrderConstruction) {
  SizedBuffer<std::string> buf(4);
  buf.construct(3, "d");
  buf.construct(1, "b");
  buf.construct(0, "a");
  buf.construct(2, "c");
  EXPECT_EQ(std::move(buf).take_vector(),
            (std::vector<std::string>{"a", "b", "c", "d"}));
}

// Destroying a partially constructed buffer must run destructors for
// exactly the constructed slots — tracked with shared_ptr use counts.
TEST(SizedBuffer, PartialDestructionRunsOnlyConstructedSlots) {
  auto token = std::make_shared<int>(42);
  {
    SizedBuffer<std::shared_ptr<int>> buf(8);
    buf.construct(1, token);
    buf.construct(6, token);
    EXPECT_EQ(token.use_count(), 3);
    // Buffer destroyed here with 6 slots never constructed.
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(SizedBuffer, MoveTransfersOwnership) {
  SizedBuffer<std::string> a(2);
  a.construct(0, "x");
  a.construct(1, "y");
  SizedBuffer<std::string> b(std::move(a));
  EXPECT_EQ(a.size(), 0u);
  EXPECT_TRUE(b.fully_constructed());
  EXPECT_EQ(std::move(b).take_vector(),
            (std::vector<std::string>{"x", "y"}));
}

TEST(SizedBuffer, ConcurrentConstructionOfDistinctSlots) {
  constexpr std::size_t kN = 1 << 12;
  SizedBuffer<std::string> buf(kN);
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&buf, t] {
      for (std::size_t i = t; i < kN; i += kThreads) {
        buf.construct(i, std::to_string(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_TRUE(buf.fully_constructed());
  const auto out = std::move(buf).take_vector();
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i], std::to_string(i));
  }
}

TEST(SizedBuffer, ZeroSized) {
  SizedBuffer<std::string> buf(0);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.fully_constructed());
  EXPECT_TRUE(std::move(buf).take_vector().empty());
}

}  // namespace
