// Kernel-level checks for the portable SIMD chunk kernels
// (support/simd.hpp): the blocked Horner fold, the blocked inclusive
// +-scan, the carry broadcast, and the FFT butterfly pass. Integer kernels
// must match the scalar references bit for bit (modular arithmetic is
// associative); floating-point kernels re-associate, so they are checked
// against the scalar fold within a tight relative bound, and against an
// exactness oracle on inputs where every intermediate is exactly
// representable.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <random>
#include <vector>

#include "support/simd.hpp"

namespace {

namespace simd = pls::simd;

// ---- Horner ----------------------------------------------------------

TEST(SimdHorner, IntegerMatchesScalarBitForBit) {
  std::mt19937_64 rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = rng() % 300;
    std::vector<std::uint64_t> c(n);
    for (auto& v : c) v = rng();
    const std::uint64_t x = rng() | 1;  // odd, exercises full modular ring
    const std::uint64_t acc = rng();
    EXPECT_EQ(simd::horner_chunk(acc, x, c.data(), n),
              simd::horner_chunk_scalar(acc, x, c.data(), n))
        << "n=" << n << " iter=" << iter;
  }
}

TEST(SimdHorner, SmallIntegerExactValues) {
  // 3x^2 + 2x + 1 at x = 10, acc = 0: 321.
  const std::uint64_t c[] = {3, 2, 1};
  EXPECT_EQ(simd::horner_chunk_scalar<std::uint64_t>(0, 10, c, 3), 321u);
  EXPECT_EQ(simd::horner_chunk<std::uint64_t>(0, 10, c, 3), 321u);
  // Incoming accumulator is the high-order part: acc=5 prepends 5x^3.
  EXPECT_EQ(simd::horner_chunk<std::uint64_t>(5, 10, c, 3), 5321u);
}

TEST(SimdHorner, DoubleWithinRelativeBound) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> coeff(-1.0, 1.0);
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t n = 1 + rng() % 4096;
    std::vector<double> c(n);
    for (auto& v : c) v = coeff(rng);
    const double x = 0.9999993;  // the fig4 evaluation point regime
    const double acc = coeff(rng);
    const double blocked = simd::horner_chunk(acc, x, c.data(), n);
    const double scalar = simd::horner_chunk_scalar(acc, x, c.data(), n);
    const double scale = std::max({1.0, std::abs(scalar)});
    EXPECT_NEAR(blocked, scalar, 1e-10 * scale) << "n=" << n;
  }
}

TEST(SimdHorner, DoubleExactWhenRepresentable) {
  // Small integers stored as doubles with x = 2: every intermediate is an
  // exact double, so re-association cannot change the value at all.
  std::mt19937_64 rng(11);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + rng() % 40;
    std::vector<double> c(n);
    for (auto& v : c) v = static_cast<double>(rng() % 3);
    const double blocked = simd::horner_chunk(0.0, 2.0, c.data(), n);
    const double scalar = simd::horner_chunk_scalar(0.0, 2.0, c.data(), n);
    EXPECT_EQ(blocked, scalar) << "n=" << n;
  }
}

TEST(SimdHorner, EmptyAndShortChunks) {
  const double c[] = {1.5, -2.5, 3.5};
  EXPECT_EQ(simd::horner_chunk(4.0, 0.5, c, 0), 4.0);
  for (std::size_t n = 1; n <= 3; ++n) {
    EXPECT_EQ(simd::horner_chunk(4.0, 0.5, c, n),
              simd::horner_chunk_scalar(4.0, 0.5, c, n));
  }
}

// ---- inclusive scan --------------------------------------------------

TEST(SimdScan, IntegerMatchesSerialBitForBit) {
  std::mt19937_64 rng(13);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = rng() % 300;
    std::vector<std::uint64_t> in(n);
    for (auto& v : in) v = rng();
    const std::uint64_t carry_in = rng();

    std::vector<std::uint64_t> expected(n);
    std::uint64_t acc = carry_in;
    for (std::size_t i = 0; i < n; ++i) {
      acc += in[i];
      expected[i] = acc;
    }

    std::vector<std::uint64_t> out(n);
    const std::uint64_t carry_out =
        simd::inclusive_scan_add(in.data(), out.data(), n, carry_in);
    EXPECT_EQ(out, expected) << "n=" << n;
    EXPECT_EQ(carry_out, acc);
  }
}

TEST(SimdScan, InPlaceAliasingAllowed) {
  std::vector<std::int64_t> v(100);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<std::int64_t>(i) - 50;
  std::vector<std::int64_t> expected(v.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    acc += v[i];
    expected[i] = acc;
  }
  simd::inclusive_scan_add(v.data(), v.data(), v.size());
  EXPECT_EQ(v, expected);
}

TEST(SimdScan, DoubleWithinRelativeBound) {
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + rng() % 2048;
    std::vector<double> in(n);
    for (auto& v : in) v = dist(rng);
    std::vector<double> out(n);
    simd::inclusive_scan_add(in.data(), out.data(), n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += in[i];
      EXPECT_NEAR(out[i], acc, 1e-11 * std::max(1.0, std::abs(acc)))
          << "i=" << i << " n=" << n;
    }
  }
}

TEST(SimdScan, AddCarryChunkMatchesLoop) {
  std::mt19937_64 rng(19);
  std::vector<std::uint64_t> v(173);
  for (auto& x : v) x = rng();
  std::vector<std::uint64_t> expected = v;
  const std::uint64_t carry = rng();
  for (auto& x : expected) x = carry + x;
  simd::add_carry_chunk(carry, v.data(), v.size());
  EXPECT_EQ(v, expected);
}

// ---- FFT butterfly ---------------------------------------------------

TEST(SimdButterfly, MatchesComplexArithmetic) {
  using C = std::complex<double>;
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t n = 1 + rng() % 257;
    std::vector<C> p(n), q(n), u(n), top(n), bot(n);
    for (std::size_t j = 0; j < n; ++j) {
      p[j] = {dist(rng), dist(rng)};
      q[j] = {dist(rng), dist(rng)};
      u[j] = {dist(rng), dist(rng)};
    }
    simd::butterfly_chunk(p.data(), q.data(), u.data(), top.data(),
                          bot.data(), n);
    for (std::size_t j = 0; j < n; ++j) {
      const C t(u[j].real() * q[j].real() - u[j].imag() * q[j].imag(),
                u[j].real() * q[j].imag() + u[j].imag() * q[j].real());
      EXPECT_EQ(top[j], p[j] + t) << "j=" << j;
      EXPECT_EQ(bot[j], p[j] - t) << "j=" << j;
    }
  }
}

TEST(SimdButterfly, InPlaceElementwiseAliasing) {
  using C = std::complex<double>;
  std::vector<C> a = {{1, 2}, {3, 4}, {5, 6}, {7, 8}};
  std::vector<C> u = {{1, 0}, {0, 1}};
  const std::vector<C> p = {a[0], a[1]};
  const std::vector<C> q = {a[2], a[3]};
  // top aliases the first half, bot the second: the fft_in_place pattern.
  simd::butterfly_chunk(&a[0], &a[2], u.data(), &a[0], &a[2], 2);
  for (std::size_t j = 0; j < 2; ++j) {
    const C t = u[j] * q[j];
    EXPECT_EQ(a[j], p[j] + t);
    EXPECT_EQ(a[j + 2], p[j] - t);
  }
}

// ---- operator identification -----------------------------------------

TEST(SimdTraits, PlusRecognition) {
  static_assert(simd::is_plus_v<simd::Plus>);
  static_assert(simd::is_plus_v<std::plus<int>>);
  static_assert(simd::is_plus_v<const simd::Plus&>);
  static_assert(!simd::is_plus_v<std::multiplies<int>>);
  auto lambda = [](int a, int b) { return a + b; };
  static_assert(!simd::is_plus_v<decltype(lambda)>);
  EXPECT_EQ(simd::Plus{}(3, 4), 7);
}

TEST(SimdTraits, Eligibility) {
  static_assert(simd::kernel_eligible_v<double>);
  static_assert(simd::kernel_eligible_v<std::int32_t>);
  static_assert(!simd::kernel_eligible_v<std::complex<double>>);
  static_assert(simd::lanes_v<double> >= 1);
  static_assert(simd::lanes_v<std::uint64_t> >= 1);
}

}  // namespace
