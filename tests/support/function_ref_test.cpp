#include "support/function_ref.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

int free_function(int x) { return x * 2; }

TEST(FunctionRef, CallsLambda) {
  int calls = 0;
  auto lambda = [&calls](int v) {
    calls += v;
    return calls;
  };
  pls::function_ref<int(int)> ref = lambda;
  EXPECT_EQ(ref(3), 3);
  EXPECT_EQ(ref(4), 7);
  EXPECT_EQ(calls, 7);
}

TEST(FunctionRef, CallsFreeFunction) {
  pls::function_ref<int(int)> ref = free_function;
  EXPECT_EQ(ref(21), 42);
}

TEST(FunctionRef, MutatesCapturedState) {
  std::string log;
  auto appender = [&log](const std::string& s) { log += s; };
  pls::function_ref<void(const std::string&)> ref = appender;
  ref("a");
  ref("b");
  EXPECT_EQ(log, "ab");
}

TEST(FunctionRef, IsTriviallyCopyable) {
  static_assert(
      std::is_trivially_copyable_v<pls::function_ref<void(int)>>);
  SUCCEED();
}

TEST(FunctionRef, CopyAliasesSameCallable) {
  int count = 0;
  auto inc = [&count] { ++count; };
  pls::function_ref<void()> a = inc;
  pls::function_ref<void()> b = a;
  a();
  b();
  EXPECT_EQ(count, 2);
}

struct Functor {
  int base;
  int operator()(int x) const { return base + x; }
};

TEST(FunctionRef, CallsConstFunctor) {
  const Functor f{10};
  pls::function_ref<int(int)> ref = f;
  EXPECT_EQ(ref(5), 15);
}

}  // namespace
