// Differential pipeline suite: generated map/peek pipelines over
// Array/Range/Generate sources, driven through the sequential fold, the
// fork-join supplier/combiner reduction, and the destination-passing
// collect, asserting bit-identical output against a plain-loop reference.
// A second pass fuzzes fork schedules with DeterministicPool: every
// interleaving of the same pipeline must produce the same bytes. Together
// the two passes cover well over 200 pipeline/schedule combinations.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "forkjoin/pool.hpp"
#include "proptest/deterministic_pool.hpp"
#include "proptest/pipelines.hpp"
#include "proptest/prop.hpp"
#include "streams/collectors.hpp"

namespace {

using namespace pls::proptest;

Config suite_config(int iterations) {
  Config cfg;
  cfg.iterations = iterations;
  return cfg;
}

std::uint64_t chunk_for(const PipelineShape& s, Rand& r) {
  // Mostly tiny chunks (deep task trees); occasionally chunk >= size
  // (parallel path degenerating to one leaf).
  if (r.chance(1, 8)) return s.size + 1;
  return 1 + r.below(8);
}

TEST(PipelineDifferential, AllThreeEvaluationPathsMatchReference) {
  pls::forkjoin::ForkJoinPool pool(2);
  const auto result = check(
      "sequential == fork-join == DPS == reference", suite_config(120),
      [](Rand& r) {
        PipelineShape s = gen_pipeline(r, 9);
        return std::make_pair(s, r.bits());
      },
      [](const std::pair<PipelineShape, std::uint64_t>& c) {
        std::vector<std::pair<PipelineShape, std::uint64_t>> out;
        for (auto& smaller : shrink_pipeline(c.first)) {
          out.emplace_back(std::move(smaller), c.second);
        }
        return out;
      },
      [&](const std::pair<PipelineShape, std::uint64_t>& c) -> PropStatus {
        const PipelineShape& s = c.first;
        Rand chunk_rand(c.second);
        const std::uint64_t chunk = chunk_for(s, chunk_rand);
        const std::vector<std::int64_t> expected = reference_result(s);

        const auto seq = build_stream(s).to_vector();
        if (seq != expected) {
          return PropStatus::fail("sequential path diverged from reference");
        }
        const auto legacy = build_stream(s)
                                .parallel()
                                .via(pool)
                                .with_min_chunk(chunk)
                                .with_sized_sink(false)
                                .to_vector();
        if (legacy != expected) {
          return PropStatus::fail(
              "fork-join supplier/combiner path diverged from reference "
              "(min_chunk=" +
              std::to_string(chunk) + ")");
        }
        const auto dps = build_stream(s)
                             .parallel()
                             .via(pool)
                             .with_min_chunk(chunk)
                             .with_sized_sink(true)
                             .to_vector();
        if (dps != expected) {
          return PropStatus::fail(
              "destination-passing path diverged from reference "
              "(min_chunk=" +
              std::to_string(chunk) + ")");
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

TEST(PipelineDifferential, EveryScheduleProducesIdenticalBytes) {
  // 25 generated pipelines x 10 fork schedules = 250 combinations, each
  // checked against the reference on both collect paths.
  constexpr int kPipelines = 25;
  constexpr std::uint64_t kSchedules = 10;
  const auto result = check(
      "schedule-fuzzed collects match reference", suite_config(kPipelines),
      [](Rand& r) {
        // Bias toward nontrivial sizes so schedules actually fork.
        PipelineShape s = gen_pipeline(r, 8);
        if (s.size < 16) s.size += 16;
        return s;
      },
      [](const PipelineShape& s) { return shrink_pipeline(s); },
      [&](const PipelineShape& s) -> PropStatus {
        const std::vector<std::int64_t> expected = reference_result(s);
        for (std::uint64_t schedule_seed = 0; schedule_seed < kSchedules;
             ++schedule_seed) {
          for (const bool sized_sink : {false, true}) {
            DeterministicPool det(schedule_seed);
            const auto got = build_stream(s)
                                 .parallel()
                                 .via(det.pool())
                                 .with_min_chunk(4)
                                 .with_sized_sink(sized_sink)
                                 .to_vector();
            if (got != expected) {
              return PropStatus::fail(
                  "schedule seed " + std::to_string(schedule_seed) +
                  (sized_sink ? " (DPS path)" : " (legacy path)") +
                  " diverged from reference");
            }
          }
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

TEST(PipelineDifferential, SameScheduleSeedReplaysIdenticalTrace) {
  // The replay contract of the harness itself, on a realistic pipeline:
  // same (pipeline, schedule seed) => identical decision trace and output.
  Rand r(pls::test_seed());
  for (int i = 0; i < 5; ++i) {
    PipelineShape s = gen_pipeline(r, 8);
    if (s.size < 16) s.size += 16;
    const std::uint64_t schedule_seed = r.bits();
    const auto run = [&] {
      DeterministicPool det(schedule_seed);
      auto out = build_stream(s)
                     .parallel()
                     .via(det.pool())
                     .with_min_chunk(4)
                     .to_vector();
      return std::make_pair(std::move(out), det.schedule_trace());
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.first, b.first) << s.debug_string();
    EXPECT_EQ(a.second, b.second) << s.debug_string();
  }
}

TEST(PipelineDifferential, ReductionCollectorsAgreeAcrossPathsAndSchedules) {
  // Non-vector terminal: summing (pure combiner reduction) must agree
  // between sequential and every fuzzed schedule.
  Rand r(pls::test_seed() ^ 0x5011);
  for (int i = 0; i < 8; ++i) {
    PipelineShape s = gen_pipeline(r, 8);
    // The stock summing collector accumulates in signed int64; strip the
    // map ops so every element stays a bounded value_at/range value and
    // the sum of <= 2^8 elements below 2^48 cannot overflow.
    s.ops.clear();
    const auto expected_vec = reference_result(s);
    std::int64_t expected = 0;
    for (std::int64_t v : expected_vec) expected += v;
    for (std::uint64_t schedule_seed = 0; schedule_seed < 4;
         ++schedule_seed) {
      DeterministicPool det(schedule_seed);
      const std::int64_t got =
          build_stream(s)
              .parallel()
              .via(det.pool())
              .with_min_chunk(4)
              .collect(pls::streams::collectors::summing<std::int64_t>());
      EXPECT_EQ(got, expected)
          << s.debug_string() << " schedule " << schedule_seed;
    }
  }
}

}  // namespace
