// Wide-admission differential suite (PR 8): short-circuit match/find
// terminals over pipelines generated from every op the planner admits —
// map variants, peek, filter, limit, take_while, flat_map, distinct,
// sorted. Three properties:
//
//   1. any/all/none_match and find_first agree fused vs legacy vs a
//      reference computed from the op-by-op interpreter.
//   2. Consumption-depth parity: a fused short-circuit terminal pulls
//      exactly as many source elements as the legacy pull loop, observed
//      through a counting peek between the source and the generated ops.
//   3. Routing: match terminals run on the fused element loop whenever
//      fusion is on (fused_leaves > 0) and never when it is off.
//
// Failures replay with PLS_TEST_SEED, like the rest of the proptest
// suites.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "observe/counters.hpp"
#include "proptest/pipelines.hpp"
#include "proptest/prop.hpp"
#include "streams/stream.hpp"

namespace {

using namespace pls::proptest;
namespace streams = pls::streams;

Config suite_config(int iterations) {
  Config cfg;
  cfg.iterations = iterations;
  return cfg;
}

/// Match predicate shared by all four terminals: sparse enough that
/// short-circuiting usually stops mid-source, dense enough to hit.
struct MatchPredFn {
  std::uint64_t param;
  bool operator()(const std::int64_t& v) const {
    return ((static_cast<std::uint64_t>(v) ^ param) % 5) == 0;
  }
};

struct ShapeAndParam {
  PipelineShape shape;
  std::uint64_t param;
};

ShapeAndParam gen_case(Rand& r) {
  return ShapeAndParam{gen_pipeline(r, 9), r.bits()};
}

std::vector<ShapeAndParam> shrink_case(const ShapeAndParam& c) {
  std::vector<ShapeAndParam> out;
  for (auto& smaller : shrink_pipeline(c.shape)) {
    out.push_back(ShapeAndParam{std::move(smaller), c.param});
  }
  if (c.param != 0) out.push_back(ShapeAndParam{c.shape, 0});
  return out;
}

/// All four short-circuit terminals agree across the fused element loop,
/// the legacy pull loops, and the reference interpreter.
TEST(FusionWide, MatchAndFindAgreeFusedLegacyReference) {
  const auto result = check(
      "match/find fused == legacy == reference", suite_config(150), gen_case,
      shrink_case, [](const ShapeAndParam& c) -> PropStatus {
        const MatchPredFn pred{c.param};
        const std::vector<std::int64_t> expected =
            reference_result(c.shape);
        bool ref_any = false, ref_all = true;
        for (const std::int64_t v : expected) {
          if (pred(v)) ref_any = true;
          else ref_all = false;
        }
        const std::optional<std::int64_t> ref_first =
            expected.empty() ? std::nullopt
                             : std::optional<std::int64_t>(expected.front());
        for (const bool parallel : {false, true}) {
          for (const bool fusion : {false, true}) {
            const auto stream_for = [&]() {
              auto s = build_stream(c.shape).with_fusion(fusion);
              if (parallel) s = std::move(s).parallel();
              return s;
            };
            const std::string mode = std::string(fusion ? "fused" : "legacy") +
                                     (parallel ? "+parallel" : "");
            if (stream_for().any_match(pred) != ref_any) {
              return PropStatus::fail("any_match diverged (" + mode + "): " +
                                      c.shape.debug_string());
            }
            if (stream_for().all_match(pred) != ref_all) {
              return PropStatus::fail("all_match diverged (" + mode + "): " +
                                      c.shape.debug_string());
            }
            if (stream_for().none_match(pred) != !ref_any) {
              return PropStatus::fail("none_match diverged (" + mode +
                                      "): " + c.shape.debug_string());
            }
            if (stream_for().find_first() != ref_first) {
              return PropStatus::fail("find_first diverged (" + mode +
                                      "): " + c.shape.debug_string());
            }
          }
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// Consumption-depth parity: fused short-circuit terminals pull exactly
/// as many source elements as the legacy pull loops — the cancellable
/// element-mode driver checks cancellation at the same points the wrapper
/// walk stops pulling.
TEST(FusionWide, ShortCircuitConsumptionDepthMatchesLegacy) {
  const auto result = check(
      "fused match/find source consumption == legacy", suite_config(150),
      gen_case, shrink_case, [](const ShapeAndParam& c) -> PropStatus {
        const MatchPredFn pred{c.param};
        for (const bool use_find : {false, true}) {
          std::uint64_t pulls[2] = {0, 0};
          bool any[2] = {false, false};
          std::optional<std::int64_t> first[2];
          for (const bool fusion : {false, true}) {
            std::uint64_t& n = pulls[fusion ? 1 : 0];
            auto probed = build_source(c.shape)
                              .with_fusion(fusion)
                              .peek([&n](const std::int64_t&) { ++n; });
            auto stream = apply_ops(std::move(probed), c.shape);
            if (use_find) {
              first[fusion ? 1 : 0] = std::move(stream).find_first();
            } else {
              any[fusion ? 1 : 0] = std::move(stream).any_match(pred);
            }
          }
          if (any[1] != any[0] || first[1] != first[0]) {
            return PropStatus::fail(
                std::string(use_find ? "find_first" : "any_match") +
                " result diverged: " + c.shape.debug_string());
          }
          if (pulls[1] != pulls[0]) {
            return PropStatus::fail(
                std::string(use_find ? "find_first" : "any_match") +
                " fused consumed " + std::to_string(pulls[1]) +
                " source elements, legacy consumed " +
                std::to_string(pulls[0]) + ": " + c.shape.debug_string());
          }
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// Routing: every generated shape fuses, so a match terminal must run on
/// the fused element loop exactly when fusion is enabled.
TEST(FusionWide, MatchTerminalsRouteThroughFusedLeaves) {
  if (!pls::observe::kEnabled) {
    GTEST_SKIP() << "observability compiled out";
  }
  const auto result = check(
      "match terminal fused_leaves > 0 == with_fusion", suite_config(80),
      gen_case, shrink_case, [](const ShapeAndParam& c) -> PropStatus {
        const MatchPredFn pred{c.param};
        for (const bool fusion : {false, true}) {
          const auto before = pls::observe::aggregate_counters();
          (void)build_stream(c.shape).with_fusion(fusion).any_match(pred);
          const auto delta = pls::observe::aggregate_counters() - before;
          if (fusion && delta.fused_leaves == 0) {
            return PropStatus::fail("fusible match ran the legacy loop: " +
                                    c.shape.debug_string());
          }
          if (!fusion && delta.fused_leaves != 0) {
            return PropStatus::fail("with_fusion(false) still ran fused: " +
                                    c.shape.debug_string());
          }
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

}  // namespace
