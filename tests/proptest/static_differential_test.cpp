// Static-pipeline differential suite. Static stage stacks are types, so
// shapes cannot be picked at runtime the way the dynamic differential
// suite generates them; instead a canonical family of type-level stacks
// (every single op, ordered pairs, and deeper mixed chains including the
// fig4 4-map shape) is driven with randomized data, chunk sizes and
// execution modes, asserting
//
//   static-fused == static-fallback == dynamic-fused == dynamic-legacy
//
// bit-identically for int64 stacks (and for the double-producing stack,
// whose per-element operations are evaluated in identical order on every
// route). Also here: SIMD-kernel differential properties — the polynomial
// collector's blocked Horner against its exact scalar fold (ULP-bounded),
// and the +-scan kernel against a generic-op scan (integer, bit-exact).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "forkjoin/pool.hpp"
#include "pls.hpp"
#include "proptest/prop.hpp"

namespace {

using namespace pls::proptest;
namespace streams = pls::streams;
using pls::stages::filter;
using pls::stages::map;
using pls::stages::peek;
using streams::Stream;

Config suite_config(int iterations) {
  Config cfg;
  cfg.iterations = iterations;
  return cfg;
}

struct Input {
  std::vector<std::int64_t> data;
  std::uint64_t chunk = 1;
};

Input gen_input(Rand& r) {
  Input in;
  const std::size_t n = static_cast<std::size_t>(r.below(130));
  in.data.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Bounded magnitude: the deepest stack multiplies by 3, so values
    // stay far from int64 overflow (which would be UB, not wraparound).
    in.data.push_back(static_cast<std::int64_t>(r.below(1u << 20)) -
                      (1 << 19));
  }
  in.chunk = r.chance(1, 8) ? in.data.size() + 1 : 1 + r.below(8);
  return in;
}

std::vector<Input> shrink_input(const Input& in) {
  std::vector<Input> out;
  if (in.data.empty()) return out;
  Input half = in;
  half.data.resize(in.data.size() / 2);
  out.push_back(std::move(half));
  Input tail = in;
  tail.data.erase(tail.data.begin());
  out.push_back(std::move(tail));
  return out;
}

Stream<std::int64_t> configured(const std::vector<std::int64_t>& data,
                                bool parallel, bool sized_sink, bool fusion,
                                std::uint64_t chunk,
                                pls::forkjoin::ForkJoinPool& pool) {
  auto s = Stream<std::int64_t>::of(data)
               .with_fusion(fusion)
               .with_sized_sink(sized_sink);
  if (parallel) {
    s = std::move(s).parallel().via(pool).with_min_chunk(chunk);
  }
  return s;
}

/// Drive one canonical stack through every mode x route combination.
/// `make_static` turns a configured Stream into a StaticPipeline (the
/// static route; with fusion off it exercises the documented fallback);
/// `apply_dyn` applies the identical ops through the dynamic Stream API.
template <typename MakeStatic, typename ApplyDyn>
std::optional<std::string> check_stack(const char* label, const Input& in,
                                       pls::forkjoin::ForkJoinPool& pool,
                                       MakeStatic make_static,
                                       ApplyDyn apply_dyn) {
  const auto expected =
      apply_dyn(configured(in.data, false, false, false, in.chunk, pool))
          .to_vector();
  for (const bool parallel : {false, true}) {
    for (const bool sized_sink : {false, true}) {
      if (!parallel && sized_sink) continue;  // same sequential route
      const auto mode = std::string(parallel ? "parallel" : "sequential") +
                        (sized_sink ? "+dps" : "");
      const auto stat =
          make_static(
              configured(in.data, parallel, sized_sink, true, in.chunk, pool))
              .to_vector();
      if (stat != expected) {
        return std::string(label) + " static-fused diverged (" + mode + ")";
      }
      const auto fallback =
          make_static(
              configured(in.data, parallel, sized_sink, false, in.chunk, pool))
              .to_vector();
      if (fallback != expected) {
        return std::string(label) + " static-fallback diverged (" + mode +
               ")";
      }
      const auto dyn =
          apply_dyn(
              configured(in.data, parallel, sized_sink, true, in.chunk, pool))
              .to_vector();
      if (dyn != expected) {
        return std::string(label) + " dynamic-fused diverged (" + mode + ")";
      }
      const auto leg =
          apply_dyn(
              configured(in.data, parallel, sized_sink, false, in.chunk, pool))
              .to_vector();
      if (leg != expected) {
        return std::string(label) + " dynamic-legacy diverged (" + mode + ")";
      }
    }
  }
  return std::nullopt;
}

/// The tentpole property: every canonical static stack agrees with its
/// dynamic twin on every route, in every execution mode, bit for bit.
TEST(StaticDifferential, StaticEqualsDynamicEqualsLegacyInEveryMode) {
  pls::forkjoin::ForkJoinPool pool(2);
  const auto result = check(
      "static == dynamic == legacy x {seq, fj, dps}", suite_config(60),
      gen_input, shrink_input, [&](const Input& in) -> PropStatus {
        std::optional<std::string> err;

        err = check_stack(
            "map", in, pool,
            [](auto s) {
              return std::move(s).stages(
                  map([](std::int64_t v) { return v * 3 - 7; }));
            },
            [](auto s) {
              return std::move(s).map(
                  [](std::int64_t v) { return v * 3 - 7; });
            });
        if (err) return PropStatus::fail(*err);

        err = check_stack(
            "filter", in, pool,
            [](auto s) {
              return std::move(s).stages(
                  filter([](std::int64_t v) { return v % 3 != 1; }));
            },
            [](auto s) {
              return std::move(s).filter(
                  [](std::int64_t v) { return v % 3 != 1; });
            });
        if (err) return PropStatus::fail(*err);

        err = check_stack(
            "map.filter", in, pool,
            [](auto s) {
              return std::move(s).stages(
                  map([](std::int64_t v) { return v + 13; }),
                  filter([](std::int64_t v) { return (v & 3) != 0; }));
            },
            [](auto s) {
              return std::move(s)
                  .map([](std::int64_t v) { return v + 13; })
                  .filter([](std::int64_t v) { return (v & 3) != 0; });
            });
        if (err) return PropStatus::fail(*err);

        err = check_stack(
            "filter.map", in, pool,
            [](auto s) {
              return std::move(s).stages(
                  filter([](std::int64_t v) { return v >= 0; }),
                  map([](std::int64_t v) { return v ^ 0x55; }));
            },
            [](auto s) {
              return std::move(s)
                  .filter([](std::int64_t v) { return v >= 0; })
                  .map([](std::int64_t v) { return v ^ 0x55; });
            });
        if (err) return PropStatus::fail(*err);

        // The fig4 shape: four stacked maps.
        err = check_stack(
            "map4", in, pool,
            [](auto s) {
              return std::move(s).stages(
                  map([](std::int64_t v) { return v * 3; }),
                  map([](std::int64_t v) { return v + 11; }),
                  map([](std::int64_t v) { return v ^ 0x2a; }),
                  map([](std::int64_t v) { return v - 9; }));
            },
            [](auto s) {
              return std::move(s)
                  .map([](std::int64_t v) { return v * 3; })
                  .map([](std::int64_t v) { return v + 11; })
                  .map([](std::int64_t v) { return v ^ 0x2a; })
                  .map([](std::int64_t v) { return v - 9; });
            });
        if (err) return PropStatus::fail(*err);

        err = check_stack(
            "map.peek.filter.map", in, pool,
            [](auto s) {
              return std::move(s).stages(
                  map([](std::int64_t v) { return v - 1; }),
                  peek([](const std::int64_t&) {}),
                  filter([](std::int64_t v) { return v % 5 != 2; }),
                  map([](std::int64_t v) { return v * 2 + 1; }));
            },
            [](auto s) {
              return std::move(s)
                  .map([](std::int64_t v) { return v - 1; })
                  .peek([](const std::int64_t&) {})
                  .filter([](std::int64_t v) { return v % 5 != 2; })
                  .map([](std::int64_t v) { return v * 2 + 1; });
            });
        if (err) return PropStatus::fail(*err);

        // Type-changing chain: int64 -> double. Per-element operations are
        // identical in order on every route, so doubles compare exactly.
        err = check_stack(
            "map->double", in, pool,
            [](auto s) {
              return std::move(s).stages(
                  map([](std::int64_t v) { return v * 2 + 1; }),
                  map([](std::int64_t v) {
                    return static_cast<double>(v) * 0.5;
                  }));
            },
            [](auto s) {
              return std::move(s)
                  .map([](std::int64_t v) { return v * 2 + 1; })
                  .map([](std::int64_t v) {
                    return static_cast<double>(v) * 0.5;
                  });
            });
        if (err) return PropStatus::fail(*err);

        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// Observer parity: a peek inside the static stack sees exactly the same
/// elements (count and sum) as the dynamic peek, sequentially.
TEST(StaticDifferential, PeekObservationParity) {
  pls::forkjoin::ForkJoinPool pool(2);
  const auto result = check(
      "static peek observes == dynamic peek observes", suite_config(60),
      gen_input, shrink_input, [&](const Input& in) -> PropStatus {
        std::int64_t static_count = 0, static_sum = 0;
        std::int64_t dyn_count = 0, dyn_sum = 0;
        (void)configured(in.data, false, false, true, in.chunk, pool)
            .stages(map([](std::int64_t v) { return v + 2; }),
                    peek([&](const std::int64_t& v) {
                      ++static_count;
                      static_sum += v;
                    }),
                    filter([](std::int64_t v) { return v % 2 == 0; }))
            .to_vector();
        (void)configured(in.data, false, false, true, in.chunk, pool)
            .map([](std::int64_t v) { return v + 2; })
            .peek([&](const std::int64_t& v) {
              ++dyn_count;
              dyn_sum += v;
            })
            .filter([](std::int64_t v) { return v % 2 == 0; })
            .to_vector();
        if (static_count != dyn_count || static_sum != dyn_sum) {
          return PropStatus::fail(
              "static peek saw " + std::to_string(static_count) +
              " elements, dynamic saw " + std::to_string(dyn_count));
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// Terminals beyond to_vector: count and reduce agree between the static
/// and dynamic routes in both execution modes.
TEST(StaticDifferential, CountAndReduceAgree) {
  pls::forkjoin::ForkJoinPool pool(2);
  const auto result = check(
      "static count/reduce == dynamic count/reduce", suite_config(60),
      gen_input, shrink_input, [&](const Input& in) -> PropStatus {
        for (const bool parallel : {false, true}) {
          const auto static_count =
              configured(in.data, parallel, false, true, in.chunk, pool)
                  .stages(filter([](std::int64_t v) { return v % 7 != 3; }))
                  .count();
          const auto dyn_count =
              configured(in.data, parallel, false, true, in.chunk, pool)
                  .filter([](std::int64_t v) { return v % 7 != 3; })
                  .count();
          if (static_count != dyn_count) {
            return PropStatus::fail("count diverged");
          }
          const auto xor_op = [](std::int64_t a, std::int64_t b) {
            return a ^ b;
          };
          const auto static_xor =
              configured(in.data, parallel, false, true, in.chunk, pool)
                  .stages(map([](std::int64_t v) { return v * 5 + 1; }))
                  .reduce(std::int64_t{0}, xor_op);
          const auto dyn_xor =
              configured(in.data, parallel, false, true, in.chunk, pool)
                  .map([](std::int64_t v) { return v * 5 + 1; })
                  .reduce(std::int64_t{0}, xor_op);
          if (static_xor != dyn_xor) {
            return PropStatus::fail("xor-reduce diverged");
          }
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

// ---- SIMD kernel differentials ---------------------------------------

/// The polynomial collector's blocked Horner kernel against its exact
/// scalar fold, through the full stream evaluation (sequential and
/// parallel): ULP-bounded relative divergence.
TEST(StaticDifferential, PolynomialSimdKernelUlpBounded) {
  pls::forkjoin::ForkJoinPool pool(2);
  const auto result = check(
      "horner simd stream == scalar stream (ULP-bounded)", suite_config(40),
      [](Rand& r) {
        std::size_t log2n = 2 + r.below(9);  // 4 .. 2048 coefficients
        std::vector<double> coeffs(std::size_t{1} << log2n);
        for (auto& c : coeffs) {
          c = static_cast<double>(static_cast<std::int64_t>(r.below(2000)) -
                                  1000) /
              1000.0;
        }
        return coeffs;
      },
      [](const std::vector<double>& c) {
        std::vector<std::vector<double>> out;
        if (c.size() > 4) out.push_back({c.begin(), c.begin() + c.size() / 2});
        return out;
      },
      [&](const std::vector<double>& coeffs) -> PropStatus {
        const double x = 0.9999993;
        auto shared =
            std::make_shared<const std::vector<double>>(coeffs);
        streams::ExecutionConfig cfg;
        cfg.pool = &pool;
        for (const bool parallel : {false, true}) {
          const double simd = pls::powerlist::evaluate_polynomial_stream(
              shared, x, parallel, cfg, /*simd_kernels=*/true);
          const double scalar = pls::powerlist::evaluate_polynomial_stream(
              shared, x, parallel, cfg, /*simd_kernels=*/false);
          const double tol =
              1e-9 * std::max(1.0, std::abs(scalar)) *
              static_cast<double>(coeffs.size());
          if (std::abs(simd - scalar) > tol) {
            return PropStatus::fail(
                "simd=" + std::to_string(simd) +
                " scalar=" + std::to_string(scalar) +
                " n=" + std::to_string(coeffs.size()));
          }
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// scan_sequential's +-kernel route against the generic-op route
/// (spelled with a lambda the kernel dispatch cannot recognise):
/// bit-identical on integers.
TEST(StaticDifferential, ScanKernelMatchesGenericOp) {
  const auto result = check(
      "scan kernel == generic scan (int64)", suite_config(80),
      [](Rand& r) {
        // PowerLists are power-of-two length by definition.
        std::vector<std::int64_t> v(std::size_t{1} << r.below(9));
        for (auto& x : v) {
          x = static_cast<std::int64_t>(r.below(1u << 30)) - (1 << 29);
        }
        return v;
      },
      [](const std::vector<std::int64_t>& v) {
        std::vector<std::vector<std::int64_t>> out;
        if (v.size() > 1) out.push_back({v.begin(), v.begin() + v.size() / 2});
        return out;
      },
      [](const std::vector<std::int64_t>& v) -> PropStatus {
        const auto view =
            pls::powerlist::PowerListView<const std::int64_t>::over(v);
        const auto kernel =
            pls::powerlist::scan_sequential(view, pls::simd::Plus{});
        const auto generic = pls::powerlist::scan_sequential(
            view, [](std::int64_t a, std::int64_t b) { return a + b; });
        if (kernel != generic) {
          return PropStatus::fail("kernel scan diverged from generic scan");
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

}  // namespace
