// Planner ≡ legacy predicates (PR 7): the ExecutionPlan verdicts recorded
// by the unified evaluate() entry must coincide with the scattered
// predicates they replaced — expects_fusion_admission and
// expects_dps_admission over generated pipelines — and planning must be
// deterministic (same shape, same plan). Also exercises PlanCache replay:
// an installed profile must be consumed by the next auto-grain plan for
// the same shape key, and never coarsen the grain past the default.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "forkjoin/pool.hpp"
#include "proptest/pipelines.hpp"
#include "proptest/prop.hpp"
#include "streams/parallel_eval.hpp"
#include "streams/stream.hpp"

namespace {

using namespace pls::proptest;
namespace streams = pls::streams;

Config suite_config(int iterations) {
  Config cfg;
  cfg.iterations = iterations;
  return cfg;
}

/// Run the shape through the unified terminal (to_vector == collect with
/// a sized-sink VectorCollector) and return the recorded plan.
streams::ExecutionPlan plan_of(const PipelineShape& s,
                               const streams::ExecutionConfig& cfg = {},
                               bool parallel = false) {
  if (parallel) {
    auto out = build_stream(s).with_config(cfg).parallel().to_vector();
    (void)out;
  } else {
    auto out = build_stream(s).with_config(cfg).to_vector();
    (void)out;
  }
  return streams::last_plan();
}

/// The planner's fusion verdict matches the legacy admission predicate
/// for every generated shape.
TEST(PlanEquivalence, FusionVerdictMatchesLegacyPredicate) {
  const auto result = check(
      "plan.fused == expects_fusion_admission", suite_config(150),
      [](Rand& r) { return gen_pipeline(r, 10); },
      [](const PipelineShape& s) { return shrink_pipeline(s); },
      [](const PipelineShape& s) -> PropStatus {
        const auto plan = plan_of(s);
        if (plan.fused != expects_fusion_admission(s)) {
          return PropStatus::fail(
              plan.fused ? "planner fused a shape the legacy gate refused"
                         : "planner refused a shape the legacy gate fused");
        }
        if (plan.fused && plan.fusion_reason != streams::PlanReason::kAdmitted) {
          return PropStatus::fail("fused plan carries a refusal reason");
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// The planner's DPS verdict matches the legacy admission predicate, and
/// an admitted plan names the window it will write.
TEST(PlanEquivalence, DpsVerdictMatchesLegacyPredicate) {
  const auto result = check(
      "plan.dps == expects_dps_admission", suite_config(150),
      [](Rand& r) { return gen_pipeline(r, 10); },
      [](const PipelineShape& s) { return shrink_pipeline(s); },
      [](const PipelineShape& s) -> PropStatus {
        const auto plan = plan_of(s);
        if (plan.dps != expects_dps_admission(s)) {
          return PropStatus::fail(
              plan.dps ? "planner admitted a shape the legacy DPS gate "
                         "refused: " +
                             s.debug_string()
                       : "planner refused a shape the legacy DPS gate "
                         "admitted: " +
                             s.debug_string());
        }
        if (plan.dps) {
          // sorted restarts fusion on its buffer, so the admitted window
          // counts the buffer, not the original source.
          std::uint64_t expected_count = s.size;
          const std::size_t start = fused_chain_start(s);
          if (start != 0) {
            PipelineShape prefix = s;
            prefix.ops.assign(
                s.ops.begin(),
                s.ops.begin() + static_cast<std::ptrdiff_t>(start));
            expected_count = reference_result(prefix).size();
          }
          if (!plan.window.has_value() ||
              plan.window->count != expected_count) {
            return PropStatus::fail("admitted plan lacks its window: " +
                                    s.debug_string());
          }
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// Same shape, same plan — byte-identical verdicts, reasons, routing and
/// explain() text across repeated planning.
TEST(PlanEquivalence, PlanningIsDeterministic) {
  const auto result = check(
      "same shape => same plan", suite_config(100),
      [](Rand& r) { return gen_pipeline(r, 10); },
      [](const PipelineShape& s) { return shrink_pipeline(s); },
      [](const PipelineShape& s) -> PropStatus {
        const auto a = plan_of(s);
        const auto b = plan_of(s);
        if (a.fused != b.fused || a.dps != b.dps ||
            a.fusion_reason != b.fusion_reason ||
            a.dps_reason != b.dps_reason || a.grain != b.grain ||
            a.drive != b.drive || a.kernel != b.kernel ||
            a.cache_key != b.cache_key || a.explain() != b.explain()) {
          return PropStatus::fail("replanning changed the plan: " +
                                  s.debug_string());
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// PlanCache replay: installing a profile for a plan's shape key makes
/// the next auto-grain plan consume it, tuned no coarser than default.
TEST(PlanEquivalence, PlanCacheReplayTunesGrain) {
  pls::forkjoin::ForkJoinPool pool(2);
  const auto result = check(
      "installed profile => auto-tuned grain", suite_config(40),
      [](Rand& r) {
        PipelineShape s = gen_pipeline(r, 8);
        s.size = gen_pow2_size(r, 4, 10);  // big enough to go parallel
        return s;
      },
      [&pool](const PipelineShape& s) -> PropStatus {
        streams::PlanCache::global().clear();
        auto cfg = streams::ExecutionConfig{}.with_pool(pool).with_auto_grain(
            true);
        const auto before = plan_of(s, cfg, /*parallel=*/true);
        if (before.grain_source == streams::GrainSource::kAutoTuned) {
          return PropStatus::fail("tuned grain without any profile");
        }
        streams::PlanProfile prof;
        prof.samples = 1;
        prof.per_element_ns = 1e3;
        prof.tuned_grain = streams::PlanCache::tuned_grain_for(
            before.source_size, before.parallelism, prof.per_element_ns);
        streams::PlanCache::global().put(before.cache_key, prof);
        const auto after = plan_of(s, cfg, /*parallel=*/true);
        streams::PlanCache::global().clear();
        if (after.grain_source != streams::GrainSource::kAutoTuned) {
          return PropStatus::fail("profile not consumed on replay: " +
                                  s.debug_string());
        }
        if (after.grain > streams::default_grain(after.source_size,
                                                 after.parallelism)) {
          return PropStatus::fail("auto-grain coarser than the default");
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

}  // namespace
