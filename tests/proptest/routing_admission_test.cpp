// Admission boundary of the destination-passing collect (PR 2): the
// planner predicate plan_dps_window must admit exactly the
// windowed, exactly-sized, power-of-two sources — and both routes must
// produce identical results, so a misrouted pipeline is a performance bug,
// never a correctness bug.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "forkjoin/pool.hpp"
#include "proptest/pipelines.hpp"
#include "proptest/prop.hpp"
#include "streams/parallel_eval.hpp"
#include "streams/spliterators.hpp"
#include "streams/stream.hpp"

namespace {

using namespace pls::proptest;
namespace streams = pls::streams;

Config suite_config(int iterations) {
  Config cfg;
  cfg.iterations = iterations;
  return cfg;
}

/// Routing matches the documented predicate. All generated sources
/// (Array/Range/Generate) are windowed and SIZED|SUBSIZED; map/peek
/// delegate windows 1:1 while filter/limit/take_while wrappers drop the
/// window, so admission must reduce to "power-of-two count and an
/// all-1:1 chain" — expects_dps_admission.
TEST(RoutingAdmission, WindowPresenceMatchesPowerOfTwoPredicate) {
  const auto result = check(
      "plan_dps_window present == power-of-two size", suite_config(150),
      [](Rand& r) { return gen_pipeline(r, 10); },
      [](const PipelineShape& s) { return shrink_pipeline(s); },
      [](const PipelineShape& s) -> PropStatus {
        const auto stream = build_stream(s);
        const bool admitted =
            streams::plan_dps_window(stream.spliterator())
                .has_value();
        if (admitted != expects_dps_admission(s)) {
          return PropStatus::fail(
              admitted
                  ? "non-power-of-two pipeline admitted to the DPS path"
                  : "power-of-two windowed pipeline rejected from the DPS "
                    "path");
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// Wrappers that lose exact sizing or the window (filter, slice,
/// flat_map, concat) must always route to the legacy collect, even over a
/// power-of-two source.
TEST(RoutingAdmission, SizeObscuringWrappersAreNeverAdmitted) {
  const auto result = check(
      "filter/slice/flat_map/concat are never admitted", suite_config(60),
      [](Rand& r) {
        PipelineShape s = gen_pipeline(r, 8);
        s.size = gen_pow2_size(r, 1, 8);  // admissible before wrapping
        return std::make_pair(s, r.below(4));
      },
      [](const std::pair<PipelineShape, std::uint64_t>& c) -> PropStatus {
        const PipelineShape& s = c.first;
        const auto wrapped = [&]() -> streams::Stream<std::int64_t> {
          switch (c.second) {
            case 0:
              return build_stream(s).filter(
                  [](const std::int64_t&) { return true; });
            case 1:
              return build_stream(s).limit(s.size / 2 + 1);
            case 2:
              return build_stream(s).flat_map([](const std::int64_t& v) {
                return std::vector<std::int64_t>{v};
              });
            default:
              return streams::Stream<std::int64_t>::concat(
                  build_stream(s), build_stream(s));
          }
        }();
        if (streams::plan_dps_window(wrapped.spliterator())
                .has_value()) {
          return PropStatus::fail(
              "size-obscuring wrapper kept DPS admission (variant " +
              std::to_string(c.second) + ")");
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// Routing is invisible to results: forcing the legacy path and allowing
/// the DPS path must collect identical vectors for every generated
/// pipeline, admitted or not.
TEST(RoutingAdmission, BothRoutesCollectIdenticalResults) {
  pls::forkjoin::ForkJoinPool pool(2);
  const auto result = check(
      "with_sized_sink(true) == with_sized_sink(false)", suite_config(80),
      [](Rand& r) { return gen_pipeline(r, 9); },
      [](const PipelineShape& s) { return shrink_pipeline(s); },
      [&](const PipelineShape& s) -> PropStatus {
        const auto expected = reference_result(s);
        for (const bool parallel : {false, true}) {
          for (const bool sized_sink : {false, true}) {
            auto stream = build_stream(s).with_sized_sink(sized_sink);
            if (parallel) {
              stream =
                  std::move(stream).parallel().via(pool).with_min_chunk(4);
            }
            const auto got = std::move(stream).to_vector();
            if (got != expected) {
              return PropStatus::fail(
                  std::string(parallel ? "parallel" : "sequential") +
                  (sized_sink ? " DPS-allowed" : " legacy-forced") +
                  " route diverged from reference");
            }
          }
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// Boundary spot checks around powers of two: n-1 / n / n+1.
TEST(RoutingAdmission, ExactBoundaryAroundPowersOfTwo) {
  for (const std::uint64_t pow2 : {2ull, 8ull, 64ull, 1024ull}) {
    for (const std::uint64_t n : {pow2 - 1, pow2, pow2 + 1}) {
      PipelineShape s;
      s.source = SourceKind::kRange;
      s.size = n;
      s.data_seed = 1234;
      const auto stream = build_stream(s);
      EXPECT_EQ(
          streams::plan_dps_window(stream.spliterator())
              .has_value(),
          pls::is_power_of_two(n))
          << "n=" << n;
    }
  }
}

}  // namespace
