// Property-based laws of the observe histogram layer (docs/observability.md):
// merge is associative/commutative/count-conserving, bucketing is monotone
// and consistent with the bucket bounds, and the log-bucket quantile
// estimate is within a factor of two of the true quantile — the accuracy
// contract bench JSON consumers (regress.py) rely on.
//
// The laws are phrased over HistogramSnapshot, which is a real struct in
// both build modes; the recording path (Histogram::record) is additionally
// checked against manual bucketing when PLS_OBSERVE is on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "observe/histogram.hpp"
#include "proptest/gen.hpp"
#include "proptest/prop.hpp"

namespace {

using namespace pls::proptest;
namespace obs = pls::observe;

Config cfg(std::uint64_t seed, int iterations = 200) {
  Config c;
  c.seed = seed;
  c.iterations = iterations;
  return c;
}

std::vector<std::uint64_t> gen_sample(Rand& r, std::uint64_t lo,
                                      std::uint64_t hi) {
  const std::size_t n = 1 + r.below(64);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = lo + r.below(hi - lo);
  return v;
}

obs::HistogramSnapshot snapshot_of(const std::vector<std::uint64_t>& vals) {
  obs::HistogramSnapshot s;
  for (std::uint64_t v : vals) {
    ++s.counts[obs::histogram_bucket(v)];
    ++s.total;
    s.sum += v;
    if (v > s.max_value) s.max_value = v;
  }
  return s;
}

TEST(HistogramLaws, MergeConservesCountsSumAndMax) {
  const auto result = check(
      "snap(A) + snap(B) == snap(A ++ B)", cfg(101),
      [](Rand& r) {
        return std::pair{gen_sample(r, 0, 1u << 20),
                         gen_sample(r, 0, 1u << 20)};
      },
      [](const auto& ab) {
        const auto& [a, b] = ab;
        std::vector<std::uint64_t> both = a;
        both.insert(both.end(), b.begin(), b.end());
        return snapshot_of(a) + snapshot_of(b) == snapshot_of(both);
      });
  EXPECT_TRUE(result.ok) << result.report;
}

TEST(HistogramLaws, MergeIsAssociativeAndCommutative) {
  const auto result = check(
      "(a+b)+c == a+(b+c) and a+b == b+a", cfg(102),
      [](Rand& r) {
        return std::array{snapshot_of(gen_sample(r, 0, 1ull << 40)),
                          snapshot_of(gen_sample(r, 0, 1ull << 40)),
                          snapshot_of(gen_sample(r, 0, 1ull << 40))};
      },
      [](const auto& abc) {
        const auto& [a, b, c] = abc;
        return (a + b) + c == a + (b + c) && a + b == b + a;
      });
  EXPECT_TRUE(result.ok) << result.report;
}

TEST(HistogramLaws, BucketingIsMonotoneAndWithinBounds) {
  const auto result = check(
      "bucket(v) monotone, v in [lower(b), upper(b))", cfg(103),
      [](Rand& r) {
        return std::pair{r.below(1ull << 50), r.below(1ull << 50)};
      },
      [](const auto& vw) {
        const auto [v, w] = vw;
        const std::size_t bv = obs::histogram_bucket(v);
        const std::size_t bw = obs::histogram_bucket(w);
        if ((v <= w) != (bv <= bw) && bv != bw) return false;  // monotone
        return static_cast<double>(v) >= obs::bucket_lower_bound(bv) &&
               static_cast<double>(v) < obs::bucket_upper_bound(bv);
      });
  EXPECT_TRUE(result.ok) << result.report;
}

TEST(HistogramLaws, QuantileWithinFactorTwoOfTrueQuantile) {
  // Values >= 2 keep us out of the degenerate 0/1 buckets whose lower
  // bound is 0; there the log-bucket estimate has no relative-error bound
  // (documented in histogram.hpp).
  const auto result = check(
      "q-estimate within 2x of the true order statistic", cfg(104),
      [](Rand& r) {
        return std::pair{gen_sample(r, 2, 1ull << 32),
                         0.05 + 0.01 * static_cast<double>(r.below(91))};
      },
      [](const auto& sample_q) {
        auto [vals, q] = sample_q;
        std::sort(vals.begin(), vals.end());
        const double pos = q * static_cast<double>(vals.size());
        std::size_t idx = static_cast<std::size_t>(pos);
        if (idx >= vals.size()) idx = vals.size() - 1;
        const double truth = static_cast<double>(vals[idx]);
        const double est = snapshot_of(vals).quantile(q);
        return est >= truth / 2.0 && est <= truth * 2.0;
      });
  EXPECT_TRUE(result.ok) << result.report;
}

TEST(HistogramLaws, MeanIsExactAndMaxIsPreserved) {
  const auto result = check(
      "mean == sum/total exactly; max(scale) scales", cfg(105),
      [](Rand& r) { return gen_sample(r, 0, 1u << 24); },
      [](const std::vector<std::uint64_t>& vals) {
        const auto s = snapshot_of(vals);
        std::uint64_t sum = 0, mx = 0;
        for (auto v : vals) {
          sum += v;
          mx = std::max(mx, v);
        }
        const double want =
            static_cast<double>(sum) / static_cast<double>(vals.size());
        return s.mean() == want &&
               s.max(2.0) == 2.0 * static_cast<double>(mx);
      });
  EXPECT_TRUE(result.ok) << result.report;
}

TEST(HistogramLaws, RecordingPathMatchesManualBucketing) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "PLS_OBSERVE=0: no recording path to check";
  } else {
    const auto result = check(
        "Histogram::record agrees with snapshot_of", cfg(106, 50),
        [](Rand& r) { return gen_sample(r, 0, 1u << 30); },
        [](const std::vector<std::uint64_t>& vals) {
          obs::Histogram h;
          for (auto v : vals) h.record(v);
          return h.snapshot() == snapshot_of(vals);
        });
    EXPECT_TRUE(result.ok) << result.report;
  }
}

}  // namespace
