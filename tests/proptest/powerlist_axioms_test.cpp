// PowerList axiom suite (Misra 1994, Section II of the paper), checked
// over generated power-of-two inputs: the tie/zip duality axiom, the
// inverse laws (deconstruct-then-reconstruct is the identity), the view
// index laws, and coverage of the leaves under arbitrary generated
// tie/zip decomposition trees.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "powerlist/power_array.hpp"
#include "powerlist/view.hpp"
#include "proptest/gen.hpp"
#include "proptest/prop.hpp"

namespace {

using namespace pls::proptest;
using pls::powerlist::DecompositionOp;
using pls::powerlist::PowerArray;
using pls::powerlist::PowerListView;

struct Case {
  std::vector<std::int64_t> data;
  std::uint64_t tree_seed;

  std::string debug_string() const {
    return "data=" + describe(data) +
           " tree_seed=" + std::to_string(tree_seed);
  }
};

Config suite_config() {
  Config cfg;
  cfg.iterations = 80;
  return cfg;
}

Case gen_case(Rand& r, unsigned min_log2, unsigned max_log2) {
  Case c;
  const std::uint64_t n = gen_pow2_size(r, min_log2, max_log2);
  c.data = gen_values(r, n, -100000, 100000);
  c.tree_seed = r.bits();
  return c;
}

/// Keep only power-of-two shrink candidates: the axioms are stated over
/// PowerLists, and the view constructor checks the length.
std::vector<Case> shrink_case(const Case& c) {
  std::vector<Case> out;
  for (auto& smaller : shrink_vector(c.data)) {
    if (!smaller.empty() && pls::is_power_of_two(smaller.size())) {
      out.push_back(Case{std::move(smaller), c.tree_seed});
    }
  }
  return out;
}

PowerArray<std::int64_t> make_power(const std::vector<std::int64_t>& data) {
  return PowerArray<std::int64_t>(data);
}

/// The duality axiom: (p|q) ⋈ (r|s) = (p⋈r) | (q⋈s), for similar
/// p, q, r, s. Built from two generated vectors a = p|q and b = r|s.
TEST(PowerListAxioms, TieZipDuality) {
  const auto result = check(
      "(p|q) zip (r|s) == (p zip r) | (q zip s)", suite_config(),
      [](Rand& r) {
        Case c = gen_case(r, 1, 9);
        // Second vector of the same length, drawn from the tree seed.
        return std::make_pair(c, gen_values(r, c.data.size(), -100000,
                                            100000));
      },
      [](const std::pair<Case, std::vector<std::int64_t>>& cs)
          -> PropStatus {
        const auto& a = cs.first.data;
        const auto& b = cs.second;
        const std::size_t half = a.size() / 2;
        const std::vector<std::int64_t> p(a.begin(), a.begin() + half);
        const std::vector<std::int64_t> q(a.begin() + half, a.end());
        const std::vector<std::int64_t> r_(b.begin(), b.begin() + half);
        const std::vector<std::int64_t> s(b.begin() + half, b.end());

        // Left side: (p|q) ⋈ (r|s).
        auto left = make_power(a);
        auto right = make_power(b);
        left.zip_all(right);

        // Right side: (p⋈r) | (q⋈s).
        auto pr = make_power(p);
        auto r_arr = make_power(r_);
        pr.zip_all(r_arr);
        auto qs = make_power(q);
        auto s_arr = make_power(s);
        qs.zip_all(s_arr);
        pr.tie_all(qs);

        if (!(left == pr)) {
          return PropStatus::fail("duality axiom violated");
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// tie then tie_all, and zip then zip_all, reconstruct the original.
TEST(PowerListAxioms, DeconstructReconstructIsIdentity) {
  const auto result = check(
      "split(op) then recombine(op) == id", suite_config(),
      [](Rand& r) { return gen_case(r, 1, 10); },
      [](const Case& c) { return shrink_case(c); },
      [](const Case& c) -> PropStatus {
        for (DecompositionOp op : {DecompositionOp::kTie,
                                   DecompositionOp::kZip}) {
          const auto view = pls::powerlist::view_of(c.data);
          const auto [lo, hi] = view.split(op);
          auto left = PowerArray<std::int64_t>(lo.to_vector());
          auto right = PowerArray<std::int64_t>(hi.to_vector());
          if (op == DecompositionOp::kTie) {
            left.tie_all(right);
          } else {
            left.zip_all(right);
          }
          if (left.values() != c.data) {
            return PropStatus::fail(
                op == DecompositionOp::kTie
                    ? "tie deconstruct/reconstruct not identity"
                    : "zip deconstruct/reconstruct not identity");
          }
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// View index laws: tie()'s halves index as p[i], q[i] = full[i], full[h+i];
/// zip()'s halves index as full[2i], full[2i+1] — at every level of a
/// generated decomposition tree, over both operators.
TEST(PowerListAxioms, ViewIndexLawsHoldThroughGeneratedTrees) {
  const auto result = check(
      "view index laws through random tie/zip trees", suite_config(),
      [](Rand& r) { return gen_case(r, 0, 10); },
      [](const Case& c) { return shrink_case(c); },
      [](const Case& c) -> PropStatus {
        struct Walker {
          Rand r;
          std::string error;

          void walk(const PowerListView<const std::int64_t>& v) {
            if (!error.empty() || v.is_singleton()) return;
            const DecompositionOp op =
                r.coin() ? DecompositionOp::kTie : DecompositionOp::kZip;
            const auto [lo, hi] = v.split(op);
            if (lo.length() != v.length() / 2 ||
                hi.length() != v.length() / 2) {
              error = "split halves are not half the length";
              return;
            }
            for (std::size_t i = 0; i < lo.length(); ++i) {
              if (op == DecompositionOp::kTie) {
                if (lo[i] != v[i] || hi[i] != v[lo.length() + i]) {
                  error = "tie index law violated";
                  return;
                }
              } else {
                if (lo[i] != v[2 * i] || hi[i] != v[2 * i + 1]) {
                  error = "zip index law violated";
                  return;
                }
              }
            }
            walk(lo);
            walk(hi);
          }
        };
        Walker w{Rand(c.tree_seed), {}};
        w.walk(pls::powerlist::view_of(c.data));
        if (!w.error.empty()) return PropStatus::fail(w.error);
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// Every generated tie/zip tree's singleton leaves, collected left to
/// right, form a permutation of the list — and for an all-tie tree, the
/// identity; for an all-zip tree, the bit-reversal permutation. Coverage
/// means no element is lost or duplicated by any decomposition sequence.
TEST(PowerListAxioms, LeavesOfAnyTreeCoverExactlyTheList) {
  const auto result = check(
      "leaves of a random tie/zip tree are a permutation", suite_config(),
      [](Rand& r) { return gen_case(r, 0, 10); },
      [](const Case& c) { return shrink_case(c); },
      [](const Case& c) -> PropStatus {
        struct Collector {
          Rand r;
          std::vector<std::int64_t> leaves;

          void walk(const PowerListView<const std::int64_t>& v) {
            if (v.is_singleton()) {
              leaves.push_back(v[0]);
              return;
            }
            const auto [lo, hi] =
                v.split(r.coin() ? DecompositionOp::kTie
                                 : DecompositionOp::kZip);
            walk(lo);
            walk(hi);
          }
        };
        Collector collector{Rand(c.tree_seed), {}};
        collector.walk(pls::powerlist::view_of(c.data));

        auto sorted_leaves = collector.leaves;
        auto sorted_data = c.data;
        std::sort(sorted_leaves.begin(), sorted_leaves.end());
        std::sort(sorted_data.begin(), sorted_data.end());
        if (sorted_leaves != sorted_data) {
          return PropStatus::fail(
              "leaf multiset differs from the list multiset");
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// Singleton law: a length-1 PowerList cannot be deconstructed, and
/// tie/zip of two singletons agree: [x] | [y] = [x] ⋈ [y] = [x, y].
TEST(PowerListAxioms, SingletonTieEqualsSingletonZip) {
  const auto result = check(
      "[x]|[y] == [x] zip [y]", suite_config(),
      [](Rand& r) {
        return std::make_pair(r.in_range(-100000, 100000),
                              r.in_range(-100000, 100000));
      },
      [](const std::pair<std::int64_t, std::int64_t>& xy) -> PropStatus {
        PowerArray<std::int64_t> tie_left{xy.first};
        PowerArray<std::int64_t> tie_right{xy.second};
        tie_left.tie_all(tie_right);

        PowerArray<std::int64_t> zip_left{xy.first};
        PowerArray<std::int64_t> zip_right{xy.second};
        zip_left.zip_all(zip_right);

        if (!(tie_left == zip_left)) {
          return PropStatus::fail("tie and zip disagree on singletons");
        }
        if (tie_left.values() !=
            std::vector<std::int64_t>{xy.first, xy.second}) {
          return PropStatus::fail("singleton combination lost an element");
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

}  // namespace
