// Meta-tests of the proptest framework itself: seeded determinism, greedy
// shrinking to a minimal counterexample, and failure-report contents —
// the replay guarantees every law suite relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "proptest/gen.hpp"
#include "proptest/prop.hpp"

namespace {

using namespace pls::proptest;

Config fixed_seed_config(std::uint64_t seed, int iterations = 100) {
  Config cfg;
  cfg.seed = seed;
  cfg.iterations = iterations;
  return cfg;
}

TEST(Framework, PassingPropertyRunsAllIterations) {
  const auto result = check(
      "tautology", fixed_seed_config(1), [](Rand& r) { return r.below(100); },
      [](std::uint64_t v) { return v < 100; });
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.iterations_run, 100);
  EXPECT_EQ(result.failing_iteration, -1);
  EXPECT_FALSE(result.counterexample.has_value());
}

TEST(Framework, IntegerShrinkFindsMinimalCounterexample) {
  // Property "v < 42" fails for any v >= 42; greedy shrinking over the
  // integer candidates must land on exactly 42 whatever value failed
  // first.
  const auto result = check(
      "v < 42", fixed_seed_config(7),
      [](Rand& r) { return r.below(100000); },
      [](std::uint64_t v) { return shrink_integer(v); },
      [](std::uint64_t v) { return v < 42; });
  ASSERT_FALSE(result.ok);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_EQ(*result.counterexample, 42u);
}

TEST(Framework, VectorShrinkReachesSmallWitness) {
  // Fails iff the vector contains an element >= 1000. The minimal
  // witness reachable by shrink_vector is a single offending element —
  // possibly zeroed partway toward the minimum, but never longer.
  const auto result = check(
      "all elements < 1000", fixed_seed_config(11),
      [](Rand& r) {
        return gen_values(r, 4 + r.below(60), 0, 5000);
      },
      [](const std::vector<std::int64_t>& v) { return shrink_vector(v); },
      [](const std::vector<std::int64_t>& v) {
        for (std::int64_t e : v) {
          if (e >= 1000) return false;
        }
        return true;
      });
  ASSERT_FALSE(result.ok);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_EQ(result.counterexample->size(), 1u);
  EXPECT_GE((*result.counterexample)[0], 1000);
}

TEST(Framework, SameSeedReproducesIdenticalShrunkCounterexample) {
  const auto run = [](std::uint64_t seed) {
    return check(
        "no element divisible by 97", fixed_seed_config(seed),
        [](Rand& r) { return gen_values(r, 1 + r.below(40), 0, 100000); },
        [](const std::vector<std::int64_t>& v) { return shrink_vector(v); },
        [](const std::vector<std::int64_t>& v) {
          for (std::int64_t e : v) {
            if (e != 0 && e % 97 == 0) return false;
          }
          return true;
        });
  };
  const auto first = run(0xFEEDu);
  const auto second = run(0xFEEDu);
  ASSERT_FALSE(first.ok);
  ASSERT_FALSE(second.ok);
  EXPECT_EQ(first.failing_iteration, second.failing_iteration);
  EXPECT_EQ(first.shrink_steps, second.shrink_steps);
  EXPECT_EQ(*first.counterexample, *second.counterexample);
  EXPECT_EQ(first.report, second.report);
}

TEST(Framework, DifferentSeedsExploreDifferentValues) {
  const auto draw = [](std::uint64_t seed) {
    std::vector<std::uint64_t> values;
    const auto result = check(
        "collect", fixed_seed_config(seed, 20),
        [](Rand& r) { return r.bits(); },
        [&](std::uint64_t v) {
          values.push_back(v);
          return true;
        });
    EXPECT_TRUE(result.ok);
    return values;
  };
  EXPECT_NE(draw(1), draw(2));
}

TEST(Framework, FailureReportCarriesReplaySeedAndCounterexample) {
  const auto result = check(
      "always fails", fixed_seed_config(0xABCDEF),
      [](Rand& r) { return r.below(10); },
      [](std::uint64_t) { return PropStatus::fail("intentional"); });
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.report.find("PLS_TEST_SEED=0xabcdef"), std::string::npos)
      << result.report;
  EXPECT_NE(result.report.find("intentional"), std::string::npos);
  EXPECT_NE(result.report.find("FALSIFIED"), std::string::npos);
  EXPECT_EQ(result.seed, 0xABCDEFu);
}

TEST(Framework, ThrowingPropertyCountsAsFailureWithMessage) {
  const auto result = check(
      "throws", fixed_seed_config(3), [](Rand& r) { return r.below(10); },
      [](std::uint64_t) -> bool { throw std::runtime_error("boom"); });
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.message.find("boom"), std::string::npos);
}

TEST(Framework, DefaultSeedComesFromProcessWideTestSeed) {
  Config cfg;
  EXPECT_EQ(cfg.seed, pls::test_seed());
}

TEST(Framework, RandInRangeIsInclusiveAndCoversBounds) {
  Rand r(99);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = r.in_range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Framework, DescribeRendersScalarsVectorsAndShapes) {
  EXPECT_EQ(describe(42), "42");
  EXPECT_EQ(describe(std::vector<int>{1, 2, 3}), "[1, 2, 3] (3 elements)");
  EXPECT_EQ(describe(std::make_pair(1, 2)), "(1, 2)");
}

}  // namespace
