// Spliterator contract law suite: every spliterator type in
// src/streams/spliterators.hpp (Array, Range, Generate, Concat) and
// src/powerlist/spliterators.hpp (SpliteratorPower2, Tie, Zip) — plus the
// map/peek/filter pipeline wrappers — checked against the generic
// contract checker over generated sizes, values, and split decisions.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "powerlist/spliterators.hpp"
#include "proptest/gen.hpp"
#include "proptest/laws.hpp"
#include "proptest/prop.hpp"
#include "streams/pipeline_spliterators.hpp"
#include "streams/spliterators.hpp"

namespace {

using namespace pls::proptest;
namespace streams = pls::streams;
namespace powerlist = pls::powerlist;

using SpInt = std::unique_ptr<streams::Spliterator<std::int64_t>>;
using Shared = std::shared_ptr<const std::vector<std::int64_t>>;

Config suite_config() {
  Config cfg;
  cfg.iterations = 60;
  return cfg;
}

/// A generated backing vector plus the Rand stream for split decisions.
struct Case {
  std::vector<std::int64_t> data;
  std::uint64_t split_seed;

  std::string debug_string() const {
    return "data=" + describe(data) +
           " split_seed=" + std::to_string(split_seed);
  }
};

Case gen_case(Rand& r, std::uint64_t max_size, bool pow2_only) {
  Case c;
  const std::uint64_t n = pow2_only
                              ? gen_pow2_size(r, 0, 8)
                              : gen_size(r, 0, max_size);
  c.data = gen_values(r, n, -1000, 1000);
  c.split_seed = r.bits();
  return c;
}

std::vector<Case> shrink_case(const Case& c) {
  std::vector<Case> out;
  for (auto& smaller : shrink_vector(c.data)) {
    out.push_back(Case{std::move(smaller), c.split_seed});
  }
  return out;
}

/// Run the law checker for a factory family over generated cases.
template <typename MakeFactory>
void run_suite(const char* name, bool pow2_only, MakeFactory make_factory,
               SplitOrder order = SplitOrder::kPrefix) {
  const auto result = check(
      name, suite_config(),
      [&](Rand& r) { return gen_case(r, 200, pow2_only); },
      [](const Case& c) { return shrink_case(c); },
      [&](const Case& c) {
        Rand split_rand(c.split_seed);
        auto factory = make_factory(c);
        return check_spliterator_laws<std::int64_t>(factory, split_rand,
                                                    order);
      });
  PLS_EXPECT_PROP(result);
}

TEST(SpliteratorLaws, Array) {
  run_suite("ArraySpliterator laws", false, [](const Case& c) {
    auto shared = std::make_shared<const std::vector<std::int64_t>>(c.data);
    return [shared]() -> SpInt {
      return std::make_unique<streams::ArraySpliterator<std::int64_t>>(
          shared);
    };
  });
}

TEST(SpliteratorLaws, Range) {
  run_suite("RangeSpliterator laws", false, [](const Case& c) {
    // Reinterpret the case as a range: begin from the split seed
    // (including negatives), length from the data.
    const std::int64_t begin =
        static_cast<std::int64_t>(c.split_seed % 4001) - 2000;
    const std::int64_t end = begin + static_cast<std::int64_t>(c.data.size());
    return [begin, end]() -> SpInt {
      return std::make_unique<streams::RangeSpliterator<std::int64_t>>(begin,
                                                                       end);
    };
  });
}

TEST(SpliteratorLaws, Generate) {
  struct Fn {
    std::uint64_t seed;
    std::int64_t operator()(std::uint64_t i) const {
      return value_at(seed, i);
    }
  };
  run_suite("GenerateSpliterator laws", false, [](const Case& c) {
    auto fn = std::make_shared<const Fn>(Fn{c.split_seed});
    const std::uint64_t n = c.data.size();
    return [fn, n]() -> SpInt {
      return std::make_unique<
          streams::GenerateSpliterator<std::int64_t, Fn>>(fn, 0, n);
    };
  });
}

TEST(SpliteratorLaws, Concat) {
  run_suite("ConcatSpliterator laws", false, [](const Case& c) {
    auto shared = std::make_shared<const std::vector<std::int64_t>>(c.data);
    const std::size_t mid = c.data.size() / 3;
    return [shared, mid]() -> SpInt {
      auto first = std::make_unique<streams::ArraySpliterator<std::int64_t>>(
          shared, 0, mid);
      auto second = std::make_unique<streams::ArraySpliterator<std::int64_t>>(
          shared, mid, shared->size());
      return std::make_unique<streams::ConcatSpliterator<std::int64_t>>(
          std::move(first), std::move(second));
    };
  });
}

TEST(SpliteratorLaws, SpliteratorPower2Strided) {
  run_suite("SpliteratorPower2 (strided) laws", true, [](const Case& c) {
    // View the data at a stride that still fits: every other element.
    auto shared = std::make_shared<const std::vector<std::int64_t>>(c.data);
    const std::size_t count = c.data.size() / 2;
    return [shared, count]() -> SpInt {
      return std::make_unique<powerlist::TieSpliterator<std::int64_t>>(
          shared, 0, 2, count);
    };
  });
}

TEST(SpliteratorLaws, Tie) {
  run_suite("TieSpliterator laws", true, [](const Case& c) {
    auto shared = std::make_shared<const std::vector<std::int64_t>>(c.data);
    return [shared]() -> SpInt {
      return std::make_unique<powerlist::TieSpliterator<std::int64_t>>(
          shared);
    };
  });
}

TEST(SpliteratorLaws, Zip) {
  // Zip splits partition by parity, so leaf concatenation is a bit-reversal
  // permutation of encounter order; order is carried by the output windows
  // (the placement law), not by prefix concatenation.
  run_suite(
      "ZipSpliterator laws", true,
      [](const Case& c) {
        auto shared =
            std::make_shared<const std::vector<std::int64_t>>(c.data);
        return [shared]() -> SpInt {
          return std::make_unique<powerlist::ZipSpliterator<std::int64_t>>(
              shared);
        };
      },
      SplitOrder::kInterleaved);
}

TEST(SpliteratorLaws, MapWrapper) {
  struct Twice {
    std::int64_t operator()(const std::int64_t& v) const {
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(v) * 2);
    }
  };
  run_suite("MapSpliterator laws", false, [](const Case& c) {
    auto shared = std::make_shared<const std::vector<std::int64_t>>(c.data);
    auto fn = std::make_shared<const Twice>();
    return [shared, fn]() -> SpInt {
      auto upstream =
          std::make_unique<streams::ArraySpliterator<std::int64_t>>(shared);
      return std::make_unique<
          streams::MapSpliterator<std::int64_t, std::int64_t, Twice>>(
          std::move(upstream), fn);
    };
  });
}

TEST(SpliteratorLaws, FilterWrapper) {
  struct Odd {
    bool operator()(const std::int64_t& v) const { return (v & 1) != 0; }
  };
  run_suite("FilterSpliterator laws", false, [](const Case& c) {
    auto shared = std::make_shared<const std::vector<std::int64_t>>(c.data);
    auto pred = std::make_shared<const Odd>();
    return [shared, pred]() -> SpInt {
      auto upstream =
          std::make_unique<streams::ArraySpliterator<std::int64_t>>(shared);
      return std::make_unique<streams::FilterSpliterator<std::int64_t, Odd>>(
          std::move(upstream), pred);
    };
  });
}

TEST(SpliteratorLaws, PeekWrapper) {
  struct Noop {
    void operator()(const std::int64_t&) const {}
  };
  run_suite("PeekSpliterator laws", false, [](const Case& c) {
    auto shared = std::make_shared<const std::vector<std::int64_t>>(c.data);
    auto fn = std::make_shared<const Noop>();
    return [shared, fn]() -> SpInt {
      auto upstream =
          std::make_unique<streams::ArraySpliterator<std::int64_t>>(shared);
      return std::make_unique<streams::PeekSpliterator<std::int64_t, Noop>>(
          std::move(upstream), fn);
    };
  });
}

}  // namespace
