// Simulator determinism (satellite 4): the same DAG simulated on the same
// core count must yield an identical timeline — every SimResult field —
// across repeated runs, for generated random task trees, core counts, and
// cost models. Also: the sequential invariants (P=1 makespan equals work)
// stay exact on generated DAGs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "proptest/prop.hpp"
#include "simmachine/costmodel.hpp"
#include "simmachine/scheduler.hpp"
#include "simmachine/trace.hpp"

namespace {

using namespace pls::proptest;
using pls::simmachine::CostModel;
using pls::simmachine::SimResult;
using pls::simmachine::Simulator;
using pls::simmachine::TaskTrace;

struct Case {
  std::uint64_t dag_seed = 0;
  unsigned processors = 1;

  std::string debug_string() const {
    return "dag_seed=" + std::to_string(dag_seed) +
           " processors=" + std::to_string(processors);
  }
};

/// Build a random series-parallel DAG: recursive forks with seeded
/// branching depth and op counts, mixing balanced and skewed shapes.
TaskTrace::NodeId grow(TaskTrace& trace, Rand& r, unsigned depth) {
  const bool leaf = depth == 0 || r.chance(1, 3);
  if (leaf) {
    return trace.add_leaf(static_cast<double>(r.below(2000)));
  }
  // Skew: one subtree may be much deeper than the other.
  const unsigned left_depth = depth - 1;
  const unsigned right_depth = r.coin() ? depth - 1 : depth / 2;
  const auto left = grow(trace, r, left_depth);
  const auto right = grow(trace, r, right_depth);
  return trace.add_fork(static_cast<double>(r.below(300)),
                        static_cast<double>(r.below(300)), left, right);
}

TaskTrace make_trace(std::uint64_t seed) {
  TaskTrace trace;
  Rand r(seed);
  const unsigned depth = 1 + static_cast<unsigned>(r.below(7));
  trace.set_root(grow(trace, r, depth));
  return trace;
}

CostModel model_for(std::uint64_t seed) {
  Rand r(seed ^ 0xC057);
  CostModel m;
  m.ns_per_op = 0.5 + 0.01 * static_cast<double>(r.below(300));
  m.spawn_overhead_ns = static_cast<double>(r.below(400));
  m.steal_overhead_ns = static_cast<double>(r.below(900));
  m.join_overhead_ns = static_cast<double>(r.below(200));
  return m;
}

bool identical(const SimResult& a, const SimResult& b) {
  return a.processors == b.processors && a.makespan_ns == b.makespan_ns &&
         a.work_ns == b.work_ns && a.pure_work_ns == b.pure_work_ns &&
         a.span_ns == b.span_ns && a.steals == b.steals &&
         a.segments == b.segments;
}

Case gen_case(Rand& r) {
  Case c;
  c.dag_seed = r.bits();
  const unsigned cores[] = {1, 2, 4, 8};
  c.processors = cores[r.below(4)];
  return c;
}

TEST(SimmachineDeterminism, SameDagSameCoresIdenticalTimeline) {
  const auto result = check(
      "two runs of the same (DAG, P) give identical SimResults",
      Config{}, gen_case, [](const Case& c) -> PropStatus {
        const TaskTrace trace = make_trace(c.dag_seed);
        const Simulator sim(model_for(c.dag_seed), c.processors);
        const SimResult first = sim.run(trace);
        const SimResult second = sim.run(trace);
        if (!identical(first, second)) {
          return PropStatus::fail("simulated timelines diverged");
        }
        // A freshly constructed but identically parameterised simulator
        // must agree too — determinism is a function of (model, P, trace),
        // not of simulator instance state.
        const SimResult third =
            Simulator(model_for(c.dag_seed), c.processors).run(trace);
        if (!identical(first, third)) {
          return PropStatus::fail(
              "a fresh identically-configured simulator diverged");
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

TEST(SimmachineDeterminism, SingleCoreMakespanEqualsWork) {
  const auto result = check(
      "P=1: makespan == work, no steals", Config{},
      [](Rand& r) { return r.bits(); },
      [](std::uint64_t dag_seed) -> PropStatus {
        const TaskTrace trace = make_trace(dag_seed);
        const SimResult res = Simulator(model_for(dag_seed), 1).run(trace);
        if (res.steals != 0) {
          return PropStatus::fail("single-core run recorded steals");
        }
        if (std::abs(res.makespan_ns - res.work_ns) > 1e-6) {
          return PropStatus::fail(
              "single-core makespan differs from total work");
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

TEST(SimmachineDeterminism, MakespanBoundedByWorkAndSpan) {
  // Brent-style sanity on generated DAGs. work_ns counts only busy segment
  // time, so the wall clock can legitimately exceed it when workers sit
  // idle behind a join — but at every instant some worker is either
  // executing a segment or inside a steal window, so steal overhead is the
  // only slack. Lower bounds: the critical path, and work/P (P cores
  // cannot retire more than P * makespan of busy time).
  const auto result = check(
      "span <= makespan, work/P <= makespan <= work + steal windows",
      Config{}, gen_case, [](const Case& c) -> PropStatus {
        const TaskTrace trace = make_trace(c.dag_seed);
        const CostModel model = model_for(c.dag_seed);
        const SimResult res = Simulator(model, c.processors).run(trace);
        if (res.span_ns > res.makespan_ns + 1e-6) {
          return PropStatus::fail("makespan beat the critical path");
        }
        if (res.work_ns / c.processors > res.makespan_ns + 1e-6) {
          return PropStatus::fail(
              "makespan beat work/P: more busy time than the cores allow");
        }
        const double steal_slack =
            static_cast<double>(res.steals) * model.steal_overhead_ns;
        if (res.makespan_ns > res.work_ns + steal_slack + 1e-6) {
          return PropStatus::fail(
              "makespan exceeds busy time plus steal windows");
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

}  // namespace
