// Fusion differential suite: generated pipelines over every op the
// planner admits — map variants, peek, filter, limit, take_while,
// flat_map, distinct, sorted — over Array/Range/Generate sources must
// collect bit-identical vectors with fusion on and off, across the
// sequential fold, the fork-join supplier/combiner reduction, and the
// destination-passing collect — including identical short-circuit
// consumption depth, observed through a counting peek injected below the
// cancelling stages. The tentpole property drives each generated shape
// through 6 mode combinations over >= 200 iterations (1200+ pipeline x
// mode combinations), plus a routing property asserting the fusion
// admission gate mirrors expects_fusion_admission.
// (Match/find terminals and their consumption-depth parity live in
// fusion_wide_test.cpp.)
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "forkjoin/pool.hpp"
#include "observe/counters.hpp"
#include "proptest/pipelines.hpp"
#include "proptest/prop.hpp"
#include "streams/fusion.hpp"
#include "streams/stream.hpp"

namespace {

using namespace pls::proptest;
namespace streams = pls::streams;

Config suite_config(int iterations) {
  Config cfg;
  cfg.iterations = iterations;
  return cfg;
}

std::uint64_t chunk_for(const PipelineShape& s, Rand& r) {
  if (r.chance(1, 8)) return s.size + 1;
  return 1 + r.below(8);
}

/// The tentpole property: with_fusion(true) == with_fusion(false), bit
/// for bit, in every execution mode.
TEST(FusionDifferential, FusedEqualsLegacyInEveryMode) {
  pls::forkjoin::ForkJoinPool pool(2);
  const auto result = check(
      "with_fusion(true) == with_fusion(false) x {seq, fj, dps}",
      suite_config(200),
      [](Rand& r) {
        PipelineShape s = gen_pipeline(r, 9);
        return std::make_pair(s, r.bits());
      },
      [](const std::pair<PipelineShape, std::uint64_t>& c) {
        std::vector<std::pair<PipelineShape, std::uint64_t>> out;
        for (auto& smaller : shrink_pipeline(c.first)) {
          out.emplace_back(std::move(smaller), c.second);
        }
        return out;
      },
      [&](const std::pair<PipelineShape, std::uint64_t>& c) -> PropStatus {
        const PipelineShape& s = c.first;
        Rand chunk_rand(c.second);
        const std::uint64_t chunk = chunk_for(s, chunk_rand);
        const std::vector<std::int64_t> expected = reference_result(s);
        for (const bool parallel : {false, true}) {
          for (const bool sized_sink : {false, true}) {
            if (!parallel && sized_sink) continue;  // same sequential route
            std::vector<std::int64_t> got[2];
            for (const bool fusion : {false, true}) {
              auto stream = build_stream(s)
                                .with_fusion(fusion)
                                .with_sized_sink(sized_sink);
              if (parallel) {
                stream = std::move(stream).parallel().via(pool).with_min_chunk(
                    chunk);
              }
              got[fusion ? 1 : 0] = std::move(stream).to_vector();
            }
            if (got[1] != expected || got[0] != expected) {
              return PropStatus::fail(
                  std::string(parallel ? "parallel" : "sequential") +
                  (sized_sink ? "+dps" : "") +
                  (got[1] != expected ? " fused" : " legacy") +
                  " route diverged from reference (min_chunk=" +
                  std::to_string(chunk) + ")");
            }
          }
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// Short-circuit parity: a counting peek placed *before* the generated
/// ops sees every element the evaluator pulls out of the source. For
/// cancelling chains (limit/take_while) the fused cancellable driver must
/// pull exactly as many as the legacy wrapper walk.
TEST(FusionDifferential, CancellationConsumptionDepthMatchesLegacy) {
  const auto result = check(
      "fused source consumption == legacy source consumption",
      suite_config(200), [](Rand& r) { return gen_pipeline(r, 9); },
      [](const PipelineShape& s) { return shrink_pipeline(s); },
      [](const PipelineShape& s) -> PropStatus {
        std::uint64_t pulls[2] = {0, 0};
        std::vector<std::int64_t> got[2];
        for (const bool fusion : {false, true}) {
          std::uint64_t& n = pulls[fusion ? 1 : 0];
          auto probed = build_source(s).with_fusion(fusion).peek(
              [&n](const std::int64_t&) { ++n; });
          got[fusion ? 1 : 0] =
              apply_ops(std::move(probed), s).to_vector();
        }
        if (got[1] != got[0]) {
          return PropStatus::fail("fused result diverged from legacy");
        }
        if (pulls[1] != pulls[0]) {
          return PropStatus::fail(
              "fused pipeline consumed " + std::to_string(pulls[1]) +
              " source elements, legacy consumed " +
              std::to_string(pulls[0]));
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// Routing property (mirrors the DPS admission property): every generated
/// shape is built from fusable ops over windowed sized sources, so the
/// fuse step must admit exactly expects_fusion_admission — observable
/// through the fused_leaves counter.
TEST(FusionDifferential, FusionAdmissionMatchesPredicate) {
  if (!pls::observe::kEnabled) {
    GTEST_SKIP() << "observability compiled out";
  }
  const auto result = check(
      "fused_leaves > 0 == expects_fusion_admission", suite_config(100),
      [](Rand& r) { return gen_pipeline(r, 8); },
      [](const PipelineShape& s) { return shrink_pipeline(s); },
      [](const PipelineShape& s) -> PropStatus {
        const auto before = pls::observe::aggregate_counters();
        (void)build_stream(s).with_fusion(true).to_vector();
        const auto delta = pls::observe::aggregate_counters() - before;
        const bool fused = delta.fused_leaves > 0;
        if (fused != expects_fusion_admission(s)) {
          return PropStatus::fail(
              fused ? "non-fusible pipeline ran fused"
                    : "fusible pipeline fell back to the wrapper walk");
        }
        const auto before_off = pls::observe::aggregate_counters();
        (void)build_stream(s).with_fusion(false).to_vector();
        const auto delta_off =
            pls::observe::aggregate_counters() - before_off;
        if (delta_off.fused_leaves != 0) {
          return PropStatus::fail("with_fusion(false) still ran fused");
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// Counter parity: fused leaves must feed elements_accumulated the same
/// totals legacy leaves do (transform_count mirrors the wrappers' sizing),
/// so observability reports stay comparable across routes. Shapes where a
/// sorted stage sits below a size-obscuring op (filter/take_while/
/// flat_map/distinct) are skipped: sorted's buffer recovers the exact
/// count, so the fused restart reports it while the legacy wrapper walk
/// already lost sizing upstream — a deliberate sizing improvement, not a
/// parity bug.
bool sorted_recovers_obscured_size(const PipelineShape& s) {
  bool sized = true;
  for (const PipelineOp& op : s.ops) {
    switch (op.kind) {
      case OpKind::kFilter:
      case OpKind::kTakeWhile:
      case OpKind::kFlatMap:
      case OpKind::kDistinct:
        sized = false;
        break;
      case OpKind::kSorted:
        if (!sized) return true;
        sized = true;
        break;
      default:
        break;  // map variants, peek, limit keep sizing as-is
    }
  }
  return false;
}

TEST(FusionDifferential, FusedLeafElementTotalsMatchLegacy) {
  if (!pls::observe::kEnabled) {
    GTEST_SKIP() << "observability compiled out";
  }
  const auto result = check(
      "fused elements_accumulated == legacy elements_accumulated",
      suite_config(80), [](Rand& r) { return gen_pipeline(r, 8); },
      [](const PipelineShape& s) { return shrink_pipeline(s); },
      [](const PipelineShape& s) -> PropStatus {
        if (sorted_recovers_obscured_size(s)) return PropStatus::pass();
        std::uint64_t elements[2] = {0, 0};
        for (const bool fusion : {false, true}) {
          const auto before = pls::observe::aggregate_counters();
          (void)build_stream(s).with_fusion(fusion).to_vector();
          const auto delta = pls::observe::aggregate_counters() - before;
          elements[fusion ? 1 : 0] = delta.elements_accumulated;
        }
        if (elements[1] != elements[0]) {
          return PropStatus::fail(
              "fused leaf reported " + std::to_string(elements[1]) +
              " elements, legacy reported " + std::to_string(elements[0]));
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

/// Terminal coverage beyond to_vector: count and reduce agree fused vs
/// legacy for every generated shape.
TEST(FusionDifferential, CountAndReduceAgreeFusedVsLegacy) {
  const auto result = check(
      "count/reduce fused == legacy", suite_config(100),
      [](Rand& r) { return gen_pipeline(r, 9); },
      [](const PipelineShape& s) { return shrink_pipeline(s); },
      [](const PipelineShape& s) -> PropStatus {
        const auto count_for = [&](bool fusion) {
          return build_stream(s).with_fusion(fusion).count();
        };
        if (count_for(true) != count_for(false)) {
          return PropStatus::fail("count diverged fused vs legacy");
        }
        const auto xor_for = [&](bool fusion) {
          return build_stream(s).with_fusion(fusion).reduce(
              std::int64_t{0}, [](std::int64_t a, std::int64_t b) {
                return a ^ b;
              });
        };
        if (xor_for(true) != xor_for(false)) {
          return PropStatus::fail("xor-reduce diverged fused vs legacy");
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

}  // namespace
