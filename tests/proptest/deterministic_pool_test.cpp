// DeterministicPool: same seed => identical schedule and results; a seed
// sweep explores distinct interleavings; serialized execution stays
// correct (results, exceptions) under every schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "proptest/deterministic_pool.hpp"
#include "proptest/prop.hpp"
#include "streams/spliterators.hpp"
#include "streams/stream.hpp"

namespace {

using pls::proptest::DeterministicPool;
using pls::proptest::Rand;

// Fixed-shape recursive sum: 2^depth leaves, so every schedule makes the
// same number of fork decisions and correctness is schedule-independent.
long tree_sum(pls::forkjoin::ForkJoinPool& pool, long lo, long hi) {
  if (hi - lo <= 4) {
    long s = 0;
    for (long i = lo; i < hi; ++i) s += i;
    return s;
  }
  const long mid = lo + (hi - lo) / 2;
  long left = 0, right = 0;
  pool.invoke_two([&] { left = tree_sum(pool, lo, mid); },
                  [&] { right = tree_sum(pool, mid, hi); });
  return left + right;
}

TEST(DeterministicPool, ComputesCorrectResultUnderAnySeed) {
  const long n = 1000;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    DeterministicPool det(seed);
    const long got = det.run([&] { return tree_sum(det.pool(), 0, n); });
    EXPECT_EQ(got, n * (n - 1) / 2) << "seed " << seed;
    EXPECT_FALSE(det.schedule_trace().empty());
  }
}

TEST(DeterministicPool, SameSeedReplaysIdenticalScheduleAndResult) {
  const auto run = [](std::uint64_t seed) {
    DeterministicPool det(seed);
    const long sum = det.run([&] { return tree_sum(det.pool(), 0, 512); });
    return std::make_pair(sum, det.schedule_trace());
  };
  const auto a = run(0xC0FFEE);
  const auto b = run(0xC0FFEE);
  EXPECT_EQ(a.first, b.first);
  ASSERT_FALSE(a.second.empty());
  EXPECT_EQ(a.second, b.second);
}

TEST(DeterministicPool, SeedSweepExploresDistinctSchedules) {
  std::set<std::vector<bool>> schedules;
  constexpr int kSeeds = 32;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    DeterministicPool det(seed);
    det.run([&] { return tree_sum(det.pool(), 0, 512); });
    schedules.insert(det.schedule_trace());
  }
  // 2^decisions possible interleavings; 32 seeds over dozens of decisions
  // should essentially never collide.
  EXPECT_GE(schedules.size(), kSeeds - 2);
}

TEST(DeterministicPool, ScheduleLengthMatchesForkCount) {
  // tree_sum over [0, 64) with leaf size 4 forks a complete binary tree:
  // 16 leaves => 15 internal forks.
  DeterministicPool det(5);
  det.run([&] { return tree_sum(det.pool(), 0, 64); });
  EXPECT_EQ(det.schedule_trace().size(), 15u);
}

TEST(DeterministicPool, LeftExceptionWinsUnderBothOrders) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    DeterministicPool det(seed);
    try {
      det.run([&] {
        det.pool().invoke_two([] { throw std::runtime_error("left"); },
                              [] { throw std::runtime_error("right"); });
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "left");
    }
  }
}

TEST(DeterministicPool, StreamCollectIsScheduleInvariant) {
  // The same parallel collect must produce identical output under every
  // interleaving — the core differential guarantee schedule fuzzing
  // checks for generated pipelines in pipeline_differential_test.cpp.
  std::vector<std::int64_t> expected;
  for (std::int64_t i = 0; i < 256; ++i) expected.push_back(i * 3);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    DeterministicPool det(seed);
    auto result = pls::streams::Stream<std::int64_t>::range(0, 256)
                      .map([](const std::int64_t& v) { return v * 3; })
                      .parallel()
                      .via(det.pool())
                      .with_min_chunk(8)
                      .to_vector();
    EXPECT_EQ(result, expected) << "seed " << seed;
  }
}

TEST(DeterministicPool, HookInstallAndClearRestoresConcurrentMode) {
  pls::forkjoin::ForkJoinPool pool(2);
  pls::proptest::SeededSchedule schedule(9);
  pool.set_schedule_hook(&schedule);
  EXPECT_EQ(pool.run([&] { return tree_sum(pool, 0, 64); }), 64 * 63 / 2);
  const std::size_t decisions = schedule.decisions();
  EXPECT_EQ(decisions, 15u);
  pool.set_schedule_hook(nullptr);
  EXPECT_EQ(pool.schedule_hook(), nullptr);
  EXPECT_EQ(pool.run([&] { return tree_sum(pool, 0, 64); }), 64 * 63 / 2);
  // Concurrent mode no longer consults the hook.
  EXPECT_EQ(schedule.decisions(), decisions);
}

}  // namespace
