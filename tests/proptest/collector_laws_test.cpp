// Collector law suite: associativity, identity, and sized-sink/fold
// equivalence for the stock stream collectors and the PowerList map
// collectors, over generated inputs and partition shapes — plus a
// meta-check that the law checker actually rejects a broken combiner.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "powerlist/collector_functions.hpp"
#include "support/bits.hpp"
#include "proptest/gen.hpp"
#include "proptest/laws.hpp"
#include "proptest/prop.hpp"
#include "streams/collectors.hpp"

namespace {

using namespace pls::proptest;
namespace streams = pls::streams;
namespace powerlist = pls::powerlist;

struct Case {
  std::vector<std::int64_t> data;
  std::uint64_t partition_seed;

  std::string debug_string() const {
    return "data=" + describe(data) +
           " partition_seed=" + std::to_string(partition_seed);
  }
};

Config suite_config() {
  Config cfg;
  cfg.iterations = 80;
  return cfg;
}

Case gen_case(Rand& r, bool pow2_only) {
  Case c;
  const std::uint64_t n =
      pow2_only ? gen_pow2_size(r, 0, 7) : gen_size(r, 0, 120);
  c.data = gen_values(r, n, -10000, 10000);
  c.partition_seed = r.bits();
  return c;
}

std::vector<Case> shrink_case(const Case& c) {
  std::vector<Case> out;
  for (auto& smaller : shrink_vector(c.data)) {
    out.push_back(Case{std::move(smaller), c.partition_seed});
  }
  return out;
}

template <typename C>
void run_int_suite(const char* name, const C& collector, bool pow2_only) {
  const auto result = check(
      name, suite_config(),
      [&](Rand& r) { return gen_case(r, pow2_only); },
      [](const Case& c) { return shrink_case(c); },
      [&](const Case& c) {
        Rand partition_rand(c.partition_seed);
        return check_collector_laws(collector, c.data, partition_rand);
      });
  PLS_EXPECT_PROP(result);
}

TEST(CollectorLaws, VectorCollector) {
  run_int_suite("VectorCollector laws",
                streams::VectorCollector<std::int64_t>{}, false);
}

TEST(CollectorLaws, ToSet) {
  run_int_suite("to_set laws", streams::collectors::to_set<std::int64_t>(),
                false);
}

TEST(CollectorLaws, Counting) {
  run_int_suite("counting laws",
                streams::collectors::counting<std::int64_t>(), false);
}

TEST(CollectorLaws, Summing) {
  run_int_suite("summing laws", streams::collectors::summing<std::int64_t>(),
                false);
}

TEST(CollectorLaws, PowerArrayTie) {
  run_int_suite("to_power_array_tie laws",
                powerlist::to_power_array_tie<std::int64_t>(), false);
}

TEST(CollectorLaws, Joining) {
  const auto joining = streams::collectors::joining("|");
  const auto result = check(
      "joining laws", suite_config(),
      [](Rand& r) {
        const std::uint64_t n = gen_size(r, 0, 40);
        std::vector<std::string> words;
        for (std::uint64_t i = 0; i < n; ++i) {
          words.push_back("w" + std::to_string(r.below(100)));
        }
        return std::make_pair(words, r.bits());
      },
      [&](const std::pair<std::vector<std::string>, std::uint64_t>& c) {
        Rand partition_rand(c.second);
        return check_collector_laws(joining, c.first, partition_rand);
      });
  PLS_EXPECT_PROP(result);
}

// The zip-recombining PowerList collector: its combiner demands similar
// (equal-length) halves, so the arbitrary-partition law does not apply.
// What must hold: the sized-sink protocol (position-addressed writes in
// any order) equals the sequential fold under *balanced* recombination —
// i.e. on a power-of-two source split evenly all the way down.
TEST(CollectorLaws, PowerArrayZipSizedSinkMatchesBalancedFold) {
  const auto zip = powerlist::to_power_array_zip<std::int64_t>();
  const auto result = check(
      "zip collector: sized sink == balanced zip fold", suite_config(),
      [](Rand& r) { return gen_case(r, true); },
      [](const Case& c) { return shrink_case(c); },
      [&](const Case& c) -> PropStatus {
        // Balanced zip fold: recursively zip-deconstruct index space, fold
        // leaves, zip_all upward — what the evaluator does on a
        // ZipSpliterator source with the legacy path.
        struct Builder {
          const powerlist::PowerMapCollector<std::int64_t, std::int64_t,
                                             powerlist::detail::IdentityFn>&
              c;
          const std::vector<std::int64_t>& data;
          powerlist::PowerArray<std::int64_t> build(std::size_t start,
                                                    std::size_t stride,
                                                    std::size_t count) {
            if (count == 1) {
              auto acc = c.supply();
              c.accumulate(acc, data[start]);
              return acc;
            }
            auto evens = build(start, stride * 2, count / 2);
            auto odds = build(start + stride, stride * 2, count / 2);
            c.combine(evens, odds);
            return evens;
          }
        };
        // Shrinking may propose non-power-of-two sizes; the balanced fold
        // is only defined on powers of two, so skip those candidates.
        if (c.data.empty() || !pls::is_power_of_two(c.data.size())) {
          return PropStatus::pass();
        }
        Builder builder{zip, c.data};
        auto folded = builder.build(0, 1, c.data.size());

        auto sink = zip.supply_sized(c.data.size());
        Rand order_rand(c.partition_seed);
        std::vector<std::size_t> order(c.data.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        for (std::size_t i = order.size(); i > 1; --i) {
          std::swap(order[i - 1],
                    order[static_cast<std::size_t>(order_rand.below(i))]);
        }
        for (std::size_t pos : order) {
          zip.accumulate_at(sink, pos, c.data[pos]);
        }
        auto direct = zip.finish_sized(std::move(sink));
        if (!(direct == folded)) {
          return PropStatus::fail(
              "sized-sink result differs from balanced zip fold");
        }
        return PropStatus::pass();
      });
  PLS_EXPECT_PROP(result);
}

// Meta-check: a deliberately non-associative combiner must be falsified.
TEST(CollectorLaws, CheckerRejectsBrokenCombiner) {
  const auto broken = streams::make_collector<std::int64_t>(
      [] { return std::int64_t{0}; },
      [](std::int64_t& acc, const std::int64_t& v) {
        acc = static_cast<std::int64_t>(static_cast<std::uint64_t>(acc) +
                                        static_cast<std::uint64_t>(v));
      },
      // Subtraction: not associative, and supply() is not an identity on
      // the left.
      [](std::int64_t& left, std::int64_t& right) {
        left = static_cast<std::int64_t>(static_cast<std::uint64_t>(left) -
                                         static_cast<std::uint64_t>(right));
      });
  Config cfg = suite_config();
  cfg.iterations = 200;
  const auto result = check(
      "broken combiner is caught", cfg,
      [](Rand& r) { return gen_case(r, false); },
      [&](const Case& c) {
        Rand partition_rand(c.partition_seed);
        return check_collector_laws(broken, c.data, partition_rand);
      });
  EXPECT_FALSE(result.ok)
      << "the law checker failed to reject a non-associative combiner";
}

}  // namespace
