// Failure injection: exceptions thrown at every phase of parallel
// execution must propagate cleanly and leave the pool reusable.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "forkjoin/parallel.hpp"
#include "forkjoin/pool.hpp"
#include "powerlist/algorithms/map_reduce.hpp"
#include "powerlist/executors.hpp"
#include "streams/stream.hpp"

namespace {

using pls::forkjoin::ForkJoinPool;
using pls::streams::Stream;

struct Boom : std::runtime_error {
  Boom() : std::runtime_error("boom") {}
};

TEST(Failure, PoolSurvivesRepeatedExceptions) {
  ForkJoinPool pool(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_THROW(pool.run([]() -> int { throw Boom{}; }), Boom);
    // The pool must still do useful work right after.
    EXPECT_EQ(pool.run([] { return 21 * 2; }), 42);
  }
}

TEST(Failure, NestedForkExceptionUnwindsAllJoins) {
  ForkJoinPool pool(4);
  std::atomic<int> leaves{0};
  auto recurse = [&](auto&& self, int depth) -> void {
    if (depth == 0) {
      if (leaves.fetch_add(1) == 37) throw Boom{};
      return;
    }
    pool.invoke_two([&] { self(self, depth - 1); },
                    [&] { self(self, depth - 1); });
  };
  EXPECT_THROW(pool.run([&] { recurse(recurse, 7); }), Boom);
  // All joins completed before the rethrow: the pool is healthy.
  EXPECT_EQ(pool.run([] { return 1; }), 1);
}

TEST(Failure, ParallelForPropagates) {
  ForkJoinPool pool(4);
  EXPECT_THROW(pls::forkjoin::parallel_for(pool, 0, 10000, 16,
                                           [](int i) {
                                             if (i == 7777) throw Boom{};
                                           }),
               Boom);
}

TEST(Failure, ParallelReducePropagatesFromLeaf) {
  ForkJoinPool pool(4);
  EXPECT_THROW(
      pls::forkjoin::parallel_reduce(
          pool, 0, 4096, 64, 0,
          [](int lo, int) -> int {
            if (lo >= 2048) throw Boom{};
            return lo;
          },
          [](int a, int b) { return a + b; }),
      Boom);
}

TEST(Failure, ParallelReducePropagatesFromCombine) {
  ForkJoinPool pool(4);
  EXPECT_THROW(pls::forkjoin::parallel_reduce(
                   pool, 0, 4096, 64, 0,
                   [](int lo, int hi) { return hi - lo; },
                   [](int, int) -> int { throw Boom{}; }),
               Boom);
}

TEST(Failure, StreamMapExceptionInParallelCollect) {
  ForkJoinPool pool(4);
  EXPECT_THROW(Stream<int>::range(0, 100000)
                   .parallel()
                   .via(pool)
                   .map([](int v) {
                     if (v == 54321) throw Boom{};
                     return v;
                   })
                   .to_vector(),
               Boom);
  // Pool healthy afterwards.
  EXPECT_EQ(pool.run([] { return 5; }), 5);
}

TEST(Failure, CollectorAccumulatorException) {
  auto c = pls::streams::make_collector<int>(
      [] { return 0L; },
      [](long& acc, const int& v) {
        if (v == 600) throw Boom{};
        acc += v;
      },
      [](long& l, long& r) { l += r; });
  EXPECT_THROW(Stream<int>::range(0, 1000).parallel().collect(c), Boom);
}

TEST(Failure, CollectorCombinerException) {
  auto c = pls::streams::make_collector<int>(
      [] { return 0L; }, [](long& acc, const int& v) { acc += v; },
      [](long&, long&) -> void { throw Boom{}; });
  EXPECT_THROW(Stream<int>::range(0, 1000)
                   .parallel()
                   .with_min_chunk(10)
                   .collect(c),
               Boom);
}

TEST(Failure, PowerFunctionBasicCaseException) {
  ForkJoinPool pool(4);
  struct Thrower final : pls::powerlist::PowerFunction<int, int> {
    int basic_case(pls::powerlist::PowerListView<const int> leaf,
                   const pls::powerlist::NoContext&) const override {
      if (leaf[0] > 100) throw Boom{};
      return leaf[0];
    }
    int combine(int&& l, int&& r, const pls::powerlist::NoContext&,
                std::size_t) const override {
      return l + r;
    }
  } f;
  std::vector<int> data(256);
  std::iota(data.begin(), data.end(), 0);
  EXPECT_THROW(
      pls::powerlist::execute_forkjoin(pool, f, pls::powerlist::view_of(data),
                                       {}, 4),
      Boom);
  EXPECT_EQ(pool.run([] { return 3; }), 3);
}

TEST(Failure, SequentialStreamExceptionLeavesNoThreads) {
  // No pool involved in sequential mode: the exception surfaces directly.
  EXPECT_THROW(Stream<int>::range(0, 10)
                   .map([](int v) {
                     if (v == 5) throw Boom{};
                     return v;
                   })
                   .to_vector(),
               Boom);
}

TEST(Failure, BothSidesThrowLeftWins) {
  ForkJoinPool pool(2);
  struct Left : std::runtime_error {
    Left() : std::runtime_error("left") {}
  };
  struct Right : std::runtime_error {
    Right() : std::runtime_error("right") {}
  };
  EXPECT_THROW(pool.run([&] {
    pool.invoke_two([]() { throw Left{}; }, []() { throw Right{}; });
  }),
               Left);
}

}  // namespace
