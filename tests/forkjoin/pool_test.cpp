#include "forkjoin/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using pls::forkjoin::ForkJoinPool;

TEST(Pool, ConstructDestructVariousSizes) {
  for (unsigned p : {1u, 2u, 4u, 8u}) {
    ForkJoinPool pool(p);
    EXPECT_EQ(pool.parallelism(), p);
  }
}

TEST(Pool, ZeroParallelismRejected) {
  EXPECT_THROW(ForkJoinPool pool(0), pls::precondition_error);
}

TEST(Pool, RunReturnsValue) {
  ForkJoinPool pool(2);
  EXPECT_EQ(pool.run([] { return 42; }), 42);
}

TEST(Pool, RunVoidCompletes) {
  ForkJoinPool pool(2);
  int x = 0;
  pool.run([&] { x = 7; });
  EXPECT_EQ(x, 7);
}

TEST(Pool, RunExecutesOnWorkerThread) {
  ForkJoinPool pool(2);
  EXPECT_FALSE(ForkJoinPool::in_worker());
  const bool on_worker = pool.run([] { return ForkJoinPool::in_worker(); });
  EXPECT_TRUE(on_worker);
}

TEST(Pool, RunPropagatesExceptions) {
  ForkJoinPool pool(2);
  EXPECT_THROW(pool.run([]() -> int { throw std::runtime_error("boom"); }),
               std::runtime_error);
}

TEST(Pool, InvokeTwoRunsBothOutsidePool) {
  ForkJoinPool pool(2);
  // Called from a non-worker thread: sequential fallback still runs both.
  int a = 0, b = 0;
  pool.invoke_two([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Pool, InvokeTwoRunsBothInsidePool) {
  ForkJoinPool pool(4);
  int a = 0, b = 0;
  pool.run([&] { pool.invoke_two([&] { a = 1; }, [&] { b = 2; }); });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Pool, InvokeTwoPropagatesLeftException) {
  ForkJoinPool pool(2);
  EXPECT_THROW(pool.run([&] {
    pool.invoke_two([]() { throw std::runtime_error("left"); }, [] {});
  }),
               std::runtime_error);
}

TEST(Pool, InvokeTwoPropagatesRightException) {
  ForkJoinPool pool(2);
  EXPECT_THROW(pool.run([&] {
    pool.invoke_two([] {}, []() { throw std::runtime_error("right"); });
  }),
               std::runtime_error);
}

// Recursive fibonacci: the classic fork-join stress; validates nested
// invoke_two to significant depth with many concurrent tasks.
int fib(ForkJoinPool& pool, int n) {
  if (n < 2) return n;
  int left = 0, right = 0;
  pool.invoke_two([&] { left = fib(pool, n - 1); },
                  [&] { right = fib(pool, n - 2); });
  return left + right;
}

TEST(Pool, RecursiveForkJoinComputesFibonacci) {
  ForkJoinPool pool(4);
  const int result = pool.run([&] { return fib(pool, 20); });
  EXPECT_EQ(result, 6765);
}

TEST(Pool, DeepRecursionParallelSum) {
  // Sum 1..2^16 via binary splitting with leaf size 1.
  ForkJoinPool pool(4);
  struct Summer {
    ForkJoinPool& pool;
    long sum(long lo, long hi) {  // [lo, hi)
      if (hi - lo == 1) return lo;
      const long mid = lo + (hi - lo) / 2;
      long a = 0, b = 0;
      pool.invoke_two([&] { a = sum(lo, mid); }, [&] { b = sum(mid, hi); });
      return a + b;
    }
  } summer{pool};
  const long n = 1 << 16;
  const long total = pool.run([&] { return summer.sum(0, n); });
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(Pool, ManySequentialRunCalls) {
  ForkJoinPool pool(2);
  long acc = 0;
  for (int i = 0; i < 500; ++i) {
    acc += pool.run([i] { return i; });
  }
  EXPECT_EQ(acc, 499L * 500 / 2);
}

TEST(Pool, WorkIsActuallyDistributed) {
  // With more than one worker and blocking leaves, at least one steal must
  // occur (tasks start on the submitting worker's deque; the sleep forces
  // the OS to schedule other workers even on a single-CPU host).
  ForkJoinPool pool(4);
  std::atomic<long> count{0};
  pool.run([&] {
    struct Rec {
      ForkJoinPool& pool;
      std::atomic<long>& count;
      void go(int depth) {
        if (depth == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          count.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        pool.invoke_two([&] { go(depth - 1); }, [&] { go(depth - 1); });
      }
    } rec{pool, count};
    rec.go(6);
  });
  EXPECT_EQ(count.load(), 1L << 6);
  EXPECT_GT(pool.steal_count(), 0u);
}

TEST(Pool, SingleWorkerPoolStillCorrect) {
  ForkJoinPool pool(1);
  const int result = pool.run([&] { return fib(pool, 15); });
  EXPECT_EQ(result, 610);
  EXPECT_EQ(pool.steal_count(), 0u);
}

TEST(Pool, CommonPoolIsSingleton) {
  ForkJoinPool& a = ForkJoinPool::common();
  ForkJoinPool& b = ForkJoinPool::common();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.parallelism(), 1u);
}

TEST(Pool, NestedRunFromWorkerExecutesInline) {
  ForkJoinPool pool(2);
  const int v = pool.run([&] { return pool.run([] { return 9; }); });
  EXPECT_EQ(v, 9);
}

}  // namespace
