// Stress tests: irregular task trees, concurrent external submitters,
// and pool lifecycle churn — the failure modes a work-stealing runtime
// actually faces.
//
// Every potentially-blocking step runs under a deadline: a wedged pool
// dumps its counters (steals, failures, per-worker execution breakdown)
// and aborts instead of hanging CI with a bare join. The deadlines are
// generous — minutes, not the expected milliseconds — so they only fire
// on a genuine deadlock or livelock.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "forkjoin/pool.hpp"
#include "observe/counters.hpp"
#include "support/rng.hpp"

namespace {

using pls::forkjoin::ForkJoinPool;

constexpr std::chrono::seconds kDeadline{120};

/// Print everything the pool knows about itself: the post-mortem for a
/// deadline overrun, in place of a silent hang. `pool` may be null when
/// the pool itself lives inside the timed closure (lifecycle tests).
void dump_pool_diagnostics(const ForkJoinPool* pool, const char* where) {
  std::fprintf(stderr, "[stress] deadline exceeded in %s\n", where);
  if (pool == nullptr) {
    std::fprintf(stderr,
                 "[stress]   (pool owned by the timed closure; "
                 "no counters reachable)\n");
    std::fflush(stderr);
    return;
  }
  std::fprintf(stderr,
               "[stress]   parallelism=%u steals=%llu steal_failures=%llu\n",
               pool->parallelism(),
               static_cast<unsigned long long>(pool->steal_count()),
               static_cast<unsigned long long>(pool->steal_failure_count()));
  if (pls::observe::kEnabled) {
    const auto workers = pool->per_worker_counters();
    for (std::size_t i = 0; i < workers.size(); ++i) {
      const auto& w = workers[i];
      std::fprintf(
          stderr,
          "[stress]   worker %zu: tasks=%llu forks=%llu steals=%llu "
          "steal_failures=%llu\n",
          i, static_cast<unsigned long long>(w.tasks_executed),
          static_cast<unsigned long long>(w.forks),
          static_cast<unsigned long long>(w.steals),
          static_cast<unsigned long long>(w.steal_failures));
    }
  } else {
    std::fprintf(stderr,
                 "[stress]   (per-worker counters compiled out)\n");
  }
  std::fflush(stderr);
}

/// Run `fn` off-thread and wait at most kDeadline. On timeout the pool is
/// presumed wedged: dump diagnostics and abort — the stuck helper thread
/// would block a clean test-process exit anyway, and an abort with a
/// post-mortem beats a CI timeout with no output.
template <typename Fn>
auto with_deadline(const ForkJoinPool* pool, const char* where, Fn fn)
    -> decltype(fn()) {
  auto task = std::async(std::launch::async, std::move(fn));
  if (task.wait_for(kDeadline) == std::future_status::timeout) {
    dump_pool_diagnostics(pool, where);
    std::abort();
  }
  return task.get();
}

// Irregular recursion: split points chosen pseudo-randomly per node, so
// the tree is deeply unbalanced — the worst case for naive scheduling.
long irregular_sum(ForkJoinPool& pool, std::uint64_t seed, long lo,
                   long hi) {
  if (hi - lo <= 8) {
    long s = 0;
    for (long i = lo; i < hi; ++i) s += i;
    return s;
  }
  pls::SplitMix64 rng(seed ^ static_cast<std::uint64_t>(lo * 31 + hi));
  // Split anywhere in the middle 80% of the range.
  const long span = hi - lo;
  const long offset =
      span / 10 + static_cast<long>(rng.next() % std::max<long>(
                                                     1, span * 8 / 10));
  const long mid = lo + std::max<long>(1, std::min(span - 1, offset));
  long left = 0, right = 0;
  pool.invoke_two(
      [&] { left = irregular_sum(pool, seed * 3, lo, mid); },
      [&] { right = irregular_sum(pool, seed * 5, mid, hi); });
  return left + right;
}

TEST(Stress, IrregularTreeSumsCorrectly) {
  ForkJoinPool pool(4);
  const long n = 200000;
  const long got = with_deadline(&pool, "IrregularTreeSumsCorrectly", [&] {
    return pool.run([&] { return irregular_sum(pool, 42, 0, n); });
  });
  EXPECT_EQ(got, n * (n - 1) / 2);
}

TEST(Stress, ManyExternalSubmitters) {
  // 6 OS threads hammer the same 3-worker pool concurrently.
  ForkJoinPool pool(3);
  constexpr int kThreads = 6;
  constexpr int kJobsPerThread = 40;
  std::atomic<long> total{0};
  const long got = with_deadline(&pool, "ManyExternalSubmitters", [&] {
    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        for (int j = 0; j < kJobsPerThread; ++j) {
          const long v = pool.run([&, t, j] {
            // The two branches run concurrently: each needs its own
            // accumulator; invoke_two's join publishes both for the sum.
            long acc_left = 0, acc_right = 0;
            pool.invoke_two(
                [&] {
                  for (int i = 0; i < 100; ++i) acc_left += t;
                },
                [&] {
                  for (int i = 0; i < 100; ++i) acc_right += j;
                });
            return acc_left + acc_right;
          });
          total.fetch_add(v, std::memory_order_relaxed);
        }
      });
    }
    for (auto& s : submitters) s.join();
    return total.load();
  });
  long expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int j = 0; j < kJobsPerThread; ++j) expected += 100 * (t + j);
  }
  EXPECT_EQ(got, expected);
}

TEST(Stress, PoolChurn) {
  // Construct/destroy pools rapidly with real work in between: checks
  // clean shutdown with no leaked or wedged workers. The deadline covers
  // construction and destruction too — a worker that never parks would
  // wedge the destructor, not run().
  for (int round = 0; round < 25; ++round) {
    const int v =
        with_deadline(nullptr, "PoolChurn", [&] {
          ForkJoinPool pool(1 + round % 4);
          return pool.run([&] {
            int a = 0, b = 0;
            pool.invoke_two([&] { a = round; }, [&] { b = round * 2; });
            return a + b;
          });
        });
    EXPECT_EQ(v, round * 3);
  }
}

TEST(Stress, DeepNarrowRecursion) {
  // A right-leaning chain: the left closure returns immediately, the
  // right recurses. Exercises join-helping along a long spine; depth is
  // kept within default thread-stack budgets (the recursion is linear).
  ForkJoinPool pool(2);
  struct Chain {
    ForkJoinPool& pool;
    long walk(long remaining) {
      if (remaining == 0) return 0;
      long tail = 0;
      pool.invoke_two([] {}, [&] { tail = walk(remaining - 1); });
      return tail + 1;
    }
  } chain{pool};
  const long depth = 4000;
  const long got = with_deadline(&pool, "DeepNarrowRecursion", [&] {
    return pool.run([&] { return chain.walk(depth); });
  });
  EXPECT_EQ(got, depth);
}

TEST(Stress, CounterAggregationUnderStress) {
  // Per-worker counter blocks stay consistent while an irregular tree and
  // external submitters churn the pool: every fork is matched by a task
  // execution, and the per-worker breakdown sums to the aggregate.
  if (!pls::observe::kEnabled) GTEST_SKIP() << "observability compiled out";
  ForkJoinPool pool(4);
  const auto before = pool.counter_totals();
  const long n = 100000;
  const long got =
      with_deadline(&pool, "CounterAggregationUnderStress", [&] {
        return pool.run([&] { return irregular_sum(pool, 7, 0, n); });
      });
  EXPECT_EQ(got, n * (n - 1) / 2);
  const auto delta = pool.counter_totals() - before;
  EXPECT_GT(delta.forks, 0u);
  // Each fork pushes exactly one deque task; each is executed exactly once
  // (locally popped, stolen, or join-helped). The +1 is the submitted root.
  EXPECT_EQ(delta.tasks_executed, delta.forks + 1);
  // Steal bookkeeping stays consistent with the pool-level atomics.
  EXPECT_EQ(delta.steals + before.steals, pool.steal_count());
  EXPECT_EQ(delta.steal_failures + before.steal_failures,
            pool.steal_failure_count());
  // Per-worker breakdown re-sums to the aggregate.
  pls::observe::CounterTotals resummed;
  for (const auto& w : pool.per_worker_counters()) resummed += w;
  EXPECT_EQ(resummed.tasks_executed, pool.counter_totals().tasks_executed);
  EXPECT_EQ(resummed.steals, pool.counter_totals().steals);
  EXPECT_EQ(resummed.forks, pool.counter_totals().forks);
}

TEST(Stress, RepeatedLargeParallelRuns) {
  ForkJoinPool pool(4);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> leaves{0};
    with_deadline(&pool, "RepeatedLargeParallelRuns", [&] {
      pool.run([&] {
        struct Rec {
          ForkJoinPool& pool;
          std::atomic<int>& leaves;
          void go(int depth) {
            if (depth == 0) {
              leaves.fetch_add(1, std::memory_order_relaxed);
              return;
            }
            pool.invoke_two([&] { go(depth - 1); }, [&] { go(depth - 1); });
          }
        } rec{pool, leaves};
        rec.go(10);
      });
    });
    EXPECT_EQ(leaves.load(), 1024);
  }
}

}  // namespace
