#include "forkjoin/deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "forkjoin/task.hpp"

namespace {

using pls::forkjoin::ChildTask;
using pls::forkjoin::RawTask;
using pls::forkjoin::WorkStealingDeque;

// A trivial task used as an opaque pointer payload.
struct NopBody {
  void operator()() const {}
};

std::vector<std::unique_ptr<ChildTask<NopBody>>> make_tasks(std::size_t n,
                                                            NopBody& body) {
  std::vector<std::unique_ptr<ChildTask<NopBody>>> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back(std::make_unique<ChildTask<NopBody>>(body));
  }
  return tasks;
}

TEST(Deque, PopFromEmptyIsNull) {
  WorkStealingDeque d;
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_TRUE(d.empty());
}

TEST(Deque, StealFromEmptyIsNull) {
  WorkStealingDeque d;
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(Deque, PushPopIsLifo) {
  WorkStealingDeque d;
  NopBody body;
  auto tasks = make_tasks(3, body);
  for (auto& t : tasks) d.push(t.get());
  EXPECT_EQ(d.pop(), tasks[2].get());
  EXPECT_EQ(d.pop(), tasks[1].get());
  EXPECT_EQ(d.pop(), tasks[0].get());
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(Deque, StealIsFifo) {
  WorkStealingDeque d;
  NopBody body;
  auto tasks = make_tasks(3, body);
  for (auto& t : tasks) d.push(t.get());
  EXPECT_EQ(d.steal(), tasks[0].get());
  EXPECT_EQ(d.steal(), tasks[1].get());
  EXPECT_EQ(d.steal(), tasks[2].get());
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(Deque, MixedPopAndStealMeetInTheMiddle) {
  WorkStealingDeque d;
  NopBody body;
  auto tasks = make_tasks(4, body);
  for (auto& t : tasks) d.push(t.get());
  EXPECT_EQ(d.steal(), tasks[0].get());  // oldest
  EXPECT_EQ(d.pop(), tasks[3].get());    // newest
  EXPECT_EQ(d.steal(), tasks[1].get());
  EXPECT_EQ(d.pop(), tasks[2].get());
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(Deque, SizeTracksContents) {
  WorkStealingDeque d;
  NopBody body;
  auto tasks = make_tasks(5, body);
  for (auto& t : tasks) d.push(t.get());
  EXPECT_EQ(d.size(), 5u);
  d.pop();
  EXPECT_EQ(d.size(), 4u);
  d.steal();
  EXPECT_EQ(d.size(), 3u);
}

TEST(Deque, GrowsPastInitialCapacity) {
  WorkStealingDeque d(2);  // capacity 4
  NopBody body;
  auto tasks = make_tasks(100, body);
  for (auto& t : tasks) d.push(t.get());
  EXPECT_EQ(d.size(), 100u);
  // LIFO order must survive growth.
  for (int i = 99; i >= 0; --i) {
    EXPECT_EQ(d.pop(), tasks[static_cast<std::size_t>(i)].get());
  }
}

TEST(Deque, ReusableAfterDraining) {
  WorkStealingDeque d;
  NopBody body;
  auto tasks = make_tasks(8, body);
  for (int round = 0; round < 3; ++round) {
    for (auto& t : tasks) d.push(t.get());
    std::size_t got = 0;
    while (d.pop() != nullptr) ++got;
    EXPECT_EQ(got, tasks.size());
  }
}

// Concurrency: one owner pushing/popping, several thieves stealing.
// Every task must be obtained exactly once across all parties.
TEST(Deque, ConcurrentOwnerAndThievesPartitionTasks) {
  constexpr std::size_t kTasks = 50000;
  constexpr int kThieves = 3;
  WorkStealingDeque d(3);  // small initial capacity: exercise growth too
  NopBody body;
  auto tasks = make_tasks(kTasks, body);

  std::unordered_map<RawTask*, std::size_t> index;
  index.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) index.emplace(tasks[i].get(), i);

  std::atomic<std::size_t> stolen{0};
  std::atomic<bool> owner_done{false};
  std::vector<std::atomic<int>> seen(kTasks);
  for (auto& s : seen) s.store(0);

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      while (!owner_done.load(std::memory_order_acquire) || !d.empty()) {
        if (RawTask* t = d.steal()) {
          stolen.fetch_add(1, std::memory_order_relaxed);
          seen[index.at(t)].fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Owner: push all, interleaving occasional pops.
  std::size_t popped = 0;
  for (std::size_t i = 0; i < kTasks; ++i) {
    d.push(tasks[i].get());
    if (i % 7 == 0) {
      if (RawTask* t = d.pop()) {
        ++popped;
        seen[index.at(t)].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  while (RawTask* t = d.pop()) {
    ++popped;
    seen[index.at(t)].fetch_add(1, std::memory_order_relaxed);
  }
  owner_done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(popped + stolen.load(), kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "task " << i;
  }
}

}  // namespace
