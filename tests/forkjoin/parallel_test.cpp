#include "forkjoin/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace {

using pls::forkjoin::ForkJoinPool;
using pls::forkjoin::parallel_for;
using pls::forkjoin::parallel_invoke;
using pls::forkjoin::parallel_reduce;

TEST(ParallelInvoke, RunsAllClosures) {
  ForkJoinPool pool(4);
  std::atomic<int> mask{0};
  parallel_invoke(
      pool, [&] { mask.fetch_or(1); }, [&] { mask.fetch_or(2); },
      [&] { mask.fetch_or(4); }, [&] { mask.fetch_or(8); },
      [&] { mask.fetch_or(16); });
  EXPECT_EQ(mask.load(), 31);
}

TEST(ParallelInvoke, SingleClosure) {
  ForkJoinPool pool(2);
  int x = 0;
  parallel_invoke(pool, [&] { x = 5; });
  EXPECT_EQ(x, 5);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ForkJoinPool pool(4);
  constexpr std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  parallel_for(pool, std::size_t{0}, n, std::size_t{64},
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ForkJoinPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, 1, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, GrainLargerThanRangeRunsSequentially) {
  ForkJoinPool pool(2);
  std::vector<int> order;
  // grain >= n means a single sequential leaf: order is deterministic.
  parallel_for(pool, 0, 8, 100, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ParallelFor, InvalidGrainThrows) {
  ForkJoinPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 10, 0, [](int) {}),
               pls::precondition_error);
}

TEST(ParallelReduce, SumsRange) {
  ForkJoinPool pool(4);
  const long n = 100000;
  const long sum = parallel_reduce(
      pool, 0L, n, 128L, 0L,
      [](long lo, long hi) {
        long s = 0;
        for (long i = lo; i < hi; ++i) s += i;
        return s;
      },
      [](long a, long b) { return a + b; });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ParallelReduce, EmptyRangeGivesIdentity) {
  ForkJoinPool pool(2);
  const int v = parallel_reduce(
      pool, 3, 3, 1, -1, [](int, int) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(v, -1);
}

TEST(ParallelReduce, NonCommutativeCombinePreservesOrder) {
  // String concatenation is associative but not commutative; the reduction
  // must still produce the in-order result.
  ForkJoinPool pool(4);
  const int n = 200;
  const std::string joined = parallel_reduce(
      pool, 0, n, 8, std::string{},
      [](int lo, int hi) {
        std::string s;
        for (int i = lo; i < hi; ++i) s += static_cast<char>('a' + i % 26);
        return s;
      },
      [](std::string a, std::string b) { return a + b; });
  std::string expected;
  for (int i = 0; i < n; ++i) expected += static_cast<char>('a' + i % 26);
  EXPECT_EQ(joined, expected);
}

TEST(ParallelReduce, MaxReduction) {
  ForkJoinPool pool(4);
  std::vector<int> data(5000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<int>((i * 2654435761u) % 100000);
  }
  const int expected = *std::max_element(data.begin(), data.end());
  const int got = parallel_reduce(
      pool, std::size_t{0}, data.size(), std::size_t{64},
      std::numeric_limits<int>::min(),
      [&](std::size_t lo, std::size_t hi) {
        int m = std::numeric_limits<int>::min();
        for (std::size_t i = lo; i < hi; ++i) m = std::max(m, data[i]);
        return m;
      },
      [](int a, int b) { return std::max(a, b); });
  EXPECT_EQ(got, expected);
}

}  // namespace
