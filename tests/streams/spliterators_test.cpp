#include "streams/spliterators.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

namespace {

using pls::streams::ArraySpliterator;
using pls::streams::GenerateSpliterator;
using pls::streams::RangeSpliterator;
using pls::streams::Spliterator;

std::shared_ptr<const std::vector<int>> shared_iota(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return std::make_shared<const std::vector<int>>(std::move(v));
}

template <typename T>
std::vector<T> drain(Spliterator<T>& sp) {
  std::vector<T> out;
  sp.for_each_remaining([&](const T& v) { out.push_back(v); });
  return out;
}

TEST(ArraySpliterator, TraversesInOrder) {
  ArraySpliterator<int> sp(shared_iota(5));
  EXPECT_EQ(drain(sp), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ArraySpliterator, TryAdvanceConsumesOneAtATime) {
  ArraySpliterator<int> sp(shared_iota(3));
  std::vector<int> seen;
  EXPECT_TRUE(sp.try_advance([&](const int& v) { seen.push_back(v); }));
  EXPECT_TRUE(sp.try_advance([&](const int& v) { seen.push_back(v); }));
  EXPECT_TRUE(sp.try_advance([&](const int& v) { seen.push_back(v); }));
  EXPECT_FALSE(sp.try_advance([&](const int& v) { seen.push_back(v); }));
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
}

TEST(ArraySpliterator, SplitReturnsPrefix) {
  ArraySpliterator<int> sp(shared_iota(8));
  auto prefix = sp.try_split();
  ASSERT_NE(prefix, nullptr);
  EXPECT_EQ(drain(*prefix), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(drain(sp), (std::vector<int>{4, 5, 6, 7}));
}

TEST(ArraySpliterator, SplitSizesAreExact) {
  ArraySpliterator<int> sp(shared_iota(10));
  EXPECT_EQ(sp.estimate_size(), 10u);
  auto prefix = sp.try_split();
  EXPECT_EQ(prefix->estimate_size(), 5u);
  EXPECT_EQ(sp.estimate_size(), 5u);
}

TEST(ArraySpliterator, OddSplitKeepsAllElements) {
  ArraySpliterator<int> sp(shared_iota(7));
  auto prefix = sp.try_split();
  auto left = drain(*prefix);
  auto right = drain(sp);
  left.insert(left.end(), right.begin(), right.end());
  EXPECT_EQ(left, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(ArraySpliterator, SingletonDoesNotSplit) {
  ArraySpliterator<int> sp(shared_iota(1));
  EXPECT_EQ(sp.try_split(), nullptr);
}

TEST(ArraySpliterator, RecursiveSplitToSingletons) {
  constexpr int n = 16;
  std::vector<std::unique_ptr<Spliterator<int>>> parts;
  parts.push_back(std::make_unique<ArraySpliterator<int>>(shared_iota(n)));
  for (std::size_t i = 0; i < parts.size();) {
    if (auto p = parts[i]->try_split()) {
      parts.push_back(std::move(p));
    } else {
      ++i;
    }
  }
  std::vector<int> all;
  for (auto& p : parts) {
    for (int v : drain(*p)) all.push_back(v);
  }
  std::sort(all.begin(), all.end());
  std::vector<int> expect(n);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(all, expect);
}

TEST(ArraySpliterator, HasSizedOrderedCharacteristics) {
  ArraySpliterator<int> sp(shared_iota(4));
  EXPECT_TRUE(sp.has(pls::streams::kSized));
  EXPECT_TRUE(sp.has(pls::streams::kOrdered));
  EXPECT_TRUE(sp.has(pls::streams::kSubsized));
  EXPECT_FALSE(sp.has(pls::streams::kPower2));
}

TEST(ArraySpliterator, WindowOutOfRangeThrows) {
  auto data = shared_iota(4);
  EXPECT_THROW(ArraySpliterator<int>(data, 2, 9), pls::precondition_error);
}

TEST(RangeSpliterator, ProducesRange) {
  RangeSpliterator<long> sp(3, 9);
  EXPECT_EQ(drain(sp), (std::vector<long>{3, 4, 5, 6, 7, 8}));
}

TEST(RangeSpliterator, EmptyRange) {
  RangeSpliterator<int> sp(5, 5);
  EXPECT_EQ(sp.estimate_size(), 0u);
  EXPECT_FALSE(sp.try_advance([](const int&) {}));
}

TEST(RangeSpliterator, SplitCoversRange) {
  RangeSpliterator<int> sp(0, 100);
  auto prefix = sp.try_split();
  auto left = drain(*prefix);
  auto right = drain(sp);
  EXPECT_EQ(left.size() + right.size(), 100u);
  EXPECT_EQ(left.front(), 0);
  EXPECT_EQ(right.back(), 99);
  EXPECT_EQ(left.back() + 1, right.front());
}

TEST(RangeSpliterator, SortedDistinctCharacteristics) {
  RangeSpliterator<int> sp(0, 4);
  EXPECT_TRUE(sp.has(pls::streams::kSorted));
  EXPECT_TRUE(sp.has(pls::streams::kDistinct));
}

TEST(GenerateSpliterator, AppliesGenerator) {
  auto fn = std::make_shared<const std::function<int(std::uint64_t)>>(
      [](std::uint64_t i) { return static_cast<int>(i * i); });
  GenerateSpliterator<int, std::function<int(std::uint64_t)>> sp(fn, 0, 5);
  EXPECT_EQ(drain(sp), (std::vector<int>{0, 1, 4, 9, 16}));
}

TEST(GenerateSpliterator, SplitSharesGenerator) {
  auto fn = std::make_shared<const std::function<int(std::uint64_t)>>(
      [](std::uint64_t i) { return static_cast<int>(2 * i); });
  GenerateSpliterator<int, std::function<int(std::uint64_t)>> sp(fn, 0, 8);
  auto prefix = sp.try_split();
  EXPECT_EQ(drain(*prefix), (std::vector<int>{0, 2, 4, 6}));
  EXPECT_EQ(drain(sp), (std::vector<int>{8, 10, 12, 14}));
}

}  // namespace
