// The POWER2 characteristic through the pipeline: the paper's admission
// check ("verify that we work with a stream on which we may apply
// PowerList functions") must survive size-preserving operations and be
// dropped by size-changing ones.
#include <gtest/gtest.h>

#include <numeric>

#include "powerlist/collector_functions.hpp"
#include "powerlist/spliterators.hpp"
#include "streams/stream.hpp"

namespace {

using pls::powerlist::TieSpliterator;
using pls::powerlist::ZipSpliterator;
using pls::streams::kPower2;
using pls::streams::Stream;
namespace stream_support = pls::streams::stream_support;

std::shared_ptr<const std::vector<double>> shared_n(std::size_t n) {
  std::vector<double> v(n);
  std::iota(v.begin(), v.end(), 0.0);
  return std::make_shared<const std::vector<double>>(std::move(v));
}

Stream<double> power2_stream(std::size_t n, bool parallel = true) {
  return stream_support::from_spliterator<double>(
      std::make_unique<ZipSpliterator<double>>(shared_n(n)), parallel);
}

TEST(Power2Pipeline, SourceHasIt) {
  EXPECT_TRUE(pls::streams::has_characteristics(
      power2_stream(64).characteristics(), kPower2));
  EXPECT_FALSE(pls::streams::has_characteristics(
      stream_support::from_spliterator<double>(
          std::make_unique<ZipSpliterator<double>>(shared_n(48)), true)
          .characteristics(),
      kPower2));
}

TEST(Power2Pipeline, MapPreservesIt) {
  auto s = power2_stream(32).map([](double d) { return d * 2.0; });
  EXPECT_TRUE(pls::streams::has_characteristics(s.characteristics(),
                                                kPower2));
}

TEST(Power2Pipeline, PeekPreservesIt) {
  auto s = power2_stream(32).peek([](const double&) {});
  EXPECT_TRUE(pls::streams::has_characteristics(s.characteristics(),
                                                kPower2));
}

TEST(Power2Pipeline, FilterDropsIt) {
  auto s = power2_stream(32).filter([](double) { return true; });
  EXPECT_FALSE(pls::streams::has_characteristics(s.characteristics(),
                                                 kPower2));
}

TEST(Power2Pipeline, LimitDropsIt) {
  auto s = power2_stream(32).limit(16);
  EXPECT_FALSE(pls::streams::has_characteristics(s.characteristics(),
                                                 kPower2));
}

TEST(Power2Pipeline, MapThenPowerCollectorStillReconstructs) {
  // A mapped power-of-two stream is still PowerList-collectable: the
  // mapping spliterator splits like its zip source, so zip_all
  // recombination reproduces the mapped sequence in order.
  const std::size_t n = 64;
  auto out = power2_stream(n)
                 .with_min_chunk(2)
                 .map([](double d) { return d + 100.0; })
                 .collect(pls::powerlist::to_power_array_zip<double>());
  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) + 100.0);
  }
}

TEST(Power2Pipeline, TieSourceMapCollect) {
  const std::size_t n = 128;
  auto s = stream_support::from_spliterator<double>(
      std::make_unique<TieSpliterator<double>>(shared_n(n)), true);
  auto out = std::move(s)
                 .with_min_chunk(8)
                 .map([](double d) { return -d; })
                 .collect(pls::powerlist::to_power_array_tie<double>());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(out[i], -static_cast<double>(i));
  }
}

TEST(Power2Pipeline, ZipSourceThroughReduceMatchesTieSource) {
  const std::size_t n = 4096;
  auto zip_sum = power2_stream(n).reduce(
      0.0, [](double a, double b) { return a + b; });
  auto tie_sum = stream_support::from_spliterator<double>(
                     std::make_unique<TieSpliterator<double>>(shared_n(n)),
                     true)
                     .reduce(0.0, [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(zip_sum, tie_sum);
}

TEST(Power2Pipeline, SplitHalvesKeepPower2ThroughMap) {
  auto data = shared_n(16);
  auto base = std::make_unique<ZipSpliterator<double>>(data);
  auto fn = std::make_shared<const std::function<double(const double&)>>(
      [](const double& d) { return d; });
  pls::streams::MapSpliterator<double, double,
                               std::function<double(const double&)>>
      mapped(std::move(base), fn);
  auto prefix = mapped.try_split();
  ASSERT_NE(prefix, nullptr);
  EXPECT_TRUE(prefix->has(kPower2));
  EXPECT_TRUE(mapped.has(kPower2));
}

}  // namespace
