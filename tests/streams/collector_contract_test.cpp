// Collector-contract property harness.
//
// The Collector contract (identical to Java's) demands that for ANY way
// of partitioning the input into consecutive chunks, accumulating each
// chunk into a fresh container and folding the containers left-to-right
// with the combiner yields the same result as one sequential
// accumulation. This harness checks that invariance over randomised
// partitions for every collector in the library — the property that
// makes parallel collect correct.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "streams/collectors.hpp"
#include "support/rng.hpp"

namespace {

namespace collectors = pls::streams::collectors;

/// Evaluate `collector` over `data` split into chunks at `cuts`
/// (ascending positions), folding containers pairwise left-to-right.
template <typename C, typename T>
auto collect_partitioned(const C& collector, const std::vector<T>& data,
                         const std::vector<std::size_t>& cuts) {
  using A = typename C::accumulation_type;
  std::vector<A> containers;
  std::size_t begin = 0;
  auto flush = [&](std::size_t end) {
    A acc = collector.supply();
    for (std::size_t i = begin; i < end; ++i) {
      collector.accumulate(acc, data[i]);
    }
    containers.push_back(std::move(acc));
    begin = end;
  };
  for (std::size_t cut : cuts) flush(cut);
  flush(data.size());
  A result = std::move(containers.front());
  for (std::size_t k = 1; k < containers.size(); ++k) {
    collector.combine(result, containers[k]);
  }
  return collector.finish(std::move(result));
}

/// Reference: one container, straight accumulation.
template <typename C, typename T>
auto collect_sequential(const C& collector, const std::vector<T>& data) {
  auto acc = collector.supply();
  for (const T& v : data) collector.accumulate(acc, v);
  return collector.finish(std::move(acc));
}

/// Random ascending cut positions within [1, n-1].
std::vector<std::size_t> random_cuts(std::size_t n, std::size_t how_many,
                                     pls::Xoshiro256& rng) {
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < how_many; ++i) {
    cuts.push_back(1 + rng.next_below(n - 1));
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return cuts;
}

template <typename C, typename T>
void check_contract(const C& collector, const std::vector<T>& data,
                    std::uint64_t seed) {
  const auto reference = collect_sequential(collector, data);
  pls::Xoshiro256 rng(seed);
  for (int trial = 0; trial < 20; ++trial) {
    const auto cuts =
        random_cuts(data.size(), 1 + rng.next_below(7), rng);
    EXPECT_EQ(collect_partitioned(collector, data, cuts), reference)
        << "trial " << trial;
  }
}

std::vector<int> int_data(std::size_t n) {
  pls::Xoshiro256 rng(n);
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng.next_below(100));
  return v;
}

TEST(CollectorContract, ToVector) {
  check_contract(collectors::to_vector<int>(), int_data(137), 1);
}

TEST(CollectorContract, ToSet) {
  check_contract(collectors::to_set<int>(), int_data(137), 2);
}

TEST(CollectorContract, Counting) {
  check_contract(collectors::counting<int>(), int_data(200), 3);
}

TEST(CollectorContract, Summing) {
  check_contract(collectors::summing<int>(), int_data(200), 4);
}

TEST(CollectorContract, Joining) {
  std::vector<std::string> words;
  for (int i = 0; i < 90; ++i) words.push_back("w" + std::to_string(i));
  check_contract(collectors::joining(","), words, 5);
}

TEST(CollectorContract, MinMax) {
  check_contract(collectors::min_by<int>(), int_data(150), 6);
  check_contract(collectors::max_by<int>(), int_data(150), 7);
}

TEST(CollectorContract, GroupingBy) {
  check_contract(
      collectors::grouping_by<int>([](int v) { return v % 7; }),
      int_data(160), 8);
}

TEST(CollectorContract, PartitioningBy) {
  check_contract(
      collectors::partitioning_by<int>([](int v) { return v % 2 == 0; }),
      int_data(160), 9);
}

TEST(CollectorContract, AveragingViaNear) {
  // Averaging returns double: compare with tolerance instead of EXPECT_EQ.
  const auto data = int_data(123);
  const auto c = collectors::averaging<int>([](int v) { return v; });
  const double reference = collect_sequential(c, data);
  pls::Xoshiro256 rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    const auto cuts = random_cuts(data.size(), 1 + rng.next_below(7), rng);
    EXPECT_NEAR(collect_partitioned(c, data, cuts), reference, 1e-9);
  }
}

TEST(CollectorContract, SummarizingFields) {
  const auto data = int_data(140);
  const auto c = collectors::summarizing<int>([](int v) { return v; });
  const auto reference = collect_sequential(c, data);
  pls::Xoshiro256 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const auto cuts = random_cuts(data.size(), 1 + rng.next_below(5), rng);
    const auto got = collect_partitioned(c, data, cuts);
    EXPECT_EQ(got.count, reference.count);
    EXPECT_DOUBLE_EQ(got.sum, reference.sum);
    EXPECT_EQ(got.min, reference.min);
    EXPECT_EQ(got.max, reference.max);
  }
}

}  // namespace
