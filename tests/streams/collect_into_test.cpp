// Destination-passing collect: admission, correctness against the
// supplier/combiner path, and the zero-copy guarantees the path exists
// for (no combine-phase movement, exactly one result-buffer allocation).
#include "streams/parallel_eval.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "streams/pipeline_spliterators.hpp"

#include "observe/counters.hpp"
#include "streams/collectors.hpp"
#include "streams/sized_sink.hpp"
#include "streams/spliterators.hpp"
#include "streams/stream.hpp"

namespace {

using pls::observe::aggregate_counters;
using pls::observe::CounterTotals;
using pls::observe::kEnabled;
using pls::streams::ArraySpliterator;
using pls::streams::FilterSpliterator;
using pls::streams::OutputWindow;
using pls::streams::SizedSinkCollector;
using pls::streams::Stream;
using pls::streams::VectorCollector;

std::vector<int> test_data(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = static_cast<int>((i * 2654435761u) % 1000);
  }
  return v;
}

// ---- admission ------------------------------------------------------

static_assert(SizedSinkCollector<VectorCollector<int>, int>,
              "VectorCollector must satisfy the sized-sink protocol");

TEST(SizedSinkAdmission, PowerOfTwoArrayQualifies) {
  auto data = std::make_shared<const std::vector<int>>(test_data(8));
  ArraySpliterator<int> sp(data);
  const auto w = pls::streams::plan_dps_window(sp);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->start, 0u);
  EXPECT_EQ(w->incr, 1u);
  EXPECT_EQ(w->count, 8u);
}

TEST(SizedSinkAdmission, NonPowerOfTwoFallsBack) {
  auto data = std::make_shared<const std::vector<int>>(test_data(6));
  ArraySpliterator<int> sp(data);
  EXPECT_FALSE(pls::streams::plan_dps_window(sp).has_value());
}

TEST(SizedSinkAdmission, UnsizedSourceFallsBack) {
  auto data = std::make_shared<const std::vector<int>>(test_data(8));
  auto pred = std::make_shared<const std::function<bool(const int&)>>(
      [](const int&) { return true; });
  FilterSpliterator<int, std::function<bool(const int&)>> sp(
      std::make_unique<ArraySpliterator<int>>(data), pred);
  EXPECT_FALSE(sp.has(pls::streams::kSized));
  EXPECT_FALSE(pls::streams::plan_dps_window(sp).has_value());
}

// ---- the zero-copy guarantee ----------------------------------------

TEST(CollectInto, ParallelPower2MovesNothingAllocatesOnce) {
  const auto data = test_data(1 << 10);
  const CounterTotals before = aggregate_counters();
  const auto out =
      Stream<int>::of(data).parallel().with_min_chunk(64).to_vector();
  const CounterTotals delta = aggregate_counters() - before;
  EXPECT_EQ(out, data);
  if (kEnabled) {
    EXPECT_EQ(delta.combines, 0u) << "DPS collect must not combine";
    EXPECT_EQ(delta.bytes_moved, 0u) << "DPS collect must not move elements";
    EXPECT_EQ(delta.allocations, 1u)
        << "DPS collect must allocate the result exactly once";
    EXPECT_GT(delta.splits, 0u) << "the run should actually have split";
  }
}

TEST(CollectInto, SequentialPower2AlsoTakesSizedSink) {
  const auto data = test_data(1 << 8);
  const CounterTotals before = aggregate_counters();
  const auto out = Stream<int>::of(data).to_vector();
  const CounterTotals delta = aggregate_counters() - before;
  EXPECT_EQ(out, data);
  if (kEnabled) {
    EXPECT_EQ(delta.combines, 0u);
    EXPECT_EQ(delta.bytes_moved, 0u);
    EXPECT_EQ(delta.allocations, 1u);
  }
}

TEST(CollectInto, ForcedLegacyPathMovesElements) {
  const auto data = test_data(1 << 10);
  const CounterTotals before = aggregate_counters();
  const auto out = Stream<int>::of(data)
                       .parallel()
                       .with_min_chunk(64)
                       .with_sized_sink(false)
                       .to_vector();
  const CounterTotals delta = aggregate_counters() - before;
  EXPECT_EQ(out, data);
  if (kEnabled) {
    EXPECT_GT(delta.combines, 0u)
        << "with the sized sink disabled the combiner must run";
    EXPECT_GT(delta.bytes_moved, 0u);
    EXPECT_GT(delta.allocations, 1u) << "one container per leaf chunk";
  }
}

// ---- equivalence of the two paths -----------------------------------

class PathEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PathEquivalence, SizedSinkMatchesSupplierCombiner) {
  const auto data = test_data(GetParam());
  const auto dps =
      Stream<int>::of(data).parallel().with_min_chunk(8).to_vector();
  const auto legacy = Stream<int>::of(data)
                          .parallel()
                          .with_min_chunk(8)
                          .with_sized_sink(false)
                          .to_vector();
  EXPECT_EQ(dps, legacy);
  EXPECT_EQ(dps, data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PathEquivalence,
                         ::testing::Values(0, 1, 2, 3, 6, 7, 8, 63, 64, 100,
                                           255, 256, 1000, 1024));

// ---- pipelines and window delegation --------------------------------

TEST(CollectInto, MapPipelineDelegatesWindow) {
  const auto data = test_data(1 << 9);
  const CounterTotals before = aggregate_counters();
  const auto out = Stream<int>::of(data)
                       .parallel()
                       .with_min_chunk(32)
                       .map([](int v) { return v * 3 + 1; })
                       .to_vector();
  const CounterTotals delta = aggregate_counters() - before;
  ASSERT_EQ(out.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(out[i], data[i] * 3 + 1);
  }
  if (kEnabled) {
    EXPECT_EQ(delta.combines, 0u)
        << "map is 1:1, so the window passes through and DPS still applies";
    EXPECT_EQ(delta.allocations, 1u);
  }
}

TEST(CollectInto, FilterPipelineFallsBackCorrectly) {
  const auto data = test_data(1 << 9);
  const auto out = Stream<int>::of(data)
                       .parallel()
                       .with_min_chunk(32)
                       .filter([](int v) { return v % 2 == 0; })
                       .to_vector();
  std::vector<int> expected;
  for (int v : data) {
    if (v % 2 == 0) expected.push_back(v);
  }
  EXPECT_EQ(out, expected);
}

TEST(CollectInto, RangeAndGenerateSourcesQualify) {
  const auto ranged = Stream<std::uint64_t>::range(0, 1 << 8)
                          .parallel()
                          .to_vector();
  ASSERT_EQ(ranged.size(), 256u);
  for (std::uint64_t i = 0; i < 256; ++i) EXPECT_EQ(ranged[i], i);

  const CounterTotals before = aggregate_counters();
  const auto generated =
      Stream<std::uint64_t>::generate([](std::uint64_t i) { return i * i; },
                                      1 << 8)
          .parallel()
          .with_min_chunk(16)
          .to_vector();
  const CounterTotals delta = aggregate_counters() - before;
  for (std::uint64_t i = 0; i < 256; ++i) EXPECT_EQ(generated[i], i * i);
  if (kEnabled) EXPECT_EQ(delta.combines, 0u);
}

// ---- non-default-constructible elements (SizedBuffer representation) --

struct NoDefault {
  explicit NoDefault(int x) : value(x) {}
  int value;
  friend bool operator==(const NoDefault& a, const NoDefault& b) {
    return a.value == b.value;
  }
};

TEST(CollectInto, NonDefaultConstructibleUsesBufferedSink) {
  static_assert(!std::is_default_constructible_v<NoDefault>);
  static_assert(SizedSinkCollector<VectorCollector<NoDefault>, NoDefault>);
  std::vector<NoDefault> data;
  for (int i = 0; i < (1 << 8); ++i) data.push_back(NoDefault(i));
  const CounterTotals before = aggregate_counters();
  const auto out =
      Stream<NoDefault>::of(data).parallel().with_min_chunk(16).to_vector();
  const CounterTotals delta = aggregate_counters() - before;
  EXPECT_EQ(out, data);
  if (kEnabled) {
    EXPECT_EQ(delta.combines, 0u);
    EXPECT_EQ(delta.bytes_moved, 0u)
        << "bytes_moved counts combine movement, not the final fill";
    EXPECT_EQ(delta.allocations, 2u)
        << "buffered sink: the SizedBuffer plus the result vector";
  }
}

// ---- direct evaluate_collect_into -----------------------------------

TEST(CollectInto, ExplicitRootWindowOnSubWindowSource) {
  // A spliterator over the middle of a larger array reports a window with
  // nonzero start; the evaluator must rebase it to fill the result from 0.
  auto storage = std::make_shared<const std::vector<int>>(test_data(64));
  ArraySpliterator<int> sp(storage, 16, 48);  // 32 elements, start 16
  const auto root = pls::streams::plan_dps_window(sp);
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(root->start, 16u);
  auto out = pls::streams::evaluate_collect_into(
      sp, VectorCollector<int>{}, *root, /*parallel=*/true);
  ASSERT_EQ(out.size(), 32u);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(out[i], (*storage)[16 + i]);
  }
}

}  // namespace
