#include "streams/collectors.hpp"

#include <gtest/gtest.h>

#include "streams/stream.hpp"

namespace {

using pls::streams::Stream;
namespace collectors = pls::streams::collectors;

TEST(Collectors, ToVector) {
  auto out = Stream<int>::range(0, 5).collect(collectors::to_vector<int>());
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Collectors, ToSetDeduplicates) {
  auto out =
      Stream<int>::of({2, 1, 2, 3, 1}).collect(collectors::to_set<int>());
  EXPECT_EQ(out, (std::set<int>{1, 2, 3}));
}

TEST(Collectors, Counting) {
  EXPECT_EQ(Stream<int>::range(0, 42).collect(collectors::counting<int>()),
            42u);
  EXPECT_EQ(Stream<int>::range(0, 0).collect(collectors::counting<int>()),
            0u);
}

TEST(Collectors, SummingValues) {
  EXPECT_EQ(Stream<int>::range(1, 11).collect(collectors::summing<int>()),
            55);
}

TEST(Collectors, SummingMapped) {
  const auto total = Stream<std::string>::of({"a", "bb", "ccc"})
                         .collect(collectors::summing<std::string, long>(
                             [](const std::string& s) {
                               return static_cast<long>(s.size());
                             }));
  EXPECT_EQ(total, 6);
}

TEST(Collectors, Averaging) {
  const double avg = Stream<int>::of({2, 4, 6}).collect(
      collectors::averaging<int>([](int v) { return v; }));
  EXPECT_DOUBLE_EQ(avg, 4.0);
}

TEST(Collectors, AveragingEmptyIsZero) {
  const double avg = Stream<int>::range(0, 0).collect(
      collectors::averaging<int>([](int v) { return v; }));
  EXPECT_DOUBLE_EQ(avg, 0.0);
}

TEST(Collectors, JoiningSequential) {
  const auto s = Stream<std::string>::of({"x", "y", "z"})
                     .collect(collectors::joining(", "));
  EXPECT_EQ(s, "x, y, z");
}

TEST(Collectors, JoiningWithPrefixSuffix) {
  const auto s = Stream<std::string>::of({"a", "b"})
                     .collect(collectors::joining("-", "[", "]"));
  EXPECT_EQ(s, "[a-b]");
}

TEST(Collectors, JoiningEmptyStream) {
  const auto s = Stream<std::string>::of({}).collect(
      collectors::joining(",", "<", ">"));
  EXPECT_EQ(s, "<>");
}

TEST(Collectors, JoiningParallelMatchesSequential) {
  std::vector<std::string> words;
  for (int i = 0; i < 64; ++i) words.push_back("w" + std::to_string(i));
  const auto seq = Stream<std::string>::of(words).collect(
      collectors::joining(", "));
  const auto par = Stream<std::string>::of(words).parallel().collect(
      collectors::joining(", "));
  EXPECT_EQ(par, seq);
}

TEST(Collectors, MinByMaxBy) {
  auto min = Stream<int>::of({5, 2, 8}).collect(collectors::min_by<int>());
  auto max = Stream<int>::of({5, 2, 8}).collect(collectors::max_by<int>());
  ASSERT_TRUE(min.has_value());
  ASSERT_TRUE(max.has_value());
  EXPECT_EQ(*min, 2);
  EXPECT_EQ(*max, 8);
}

TEST(Collectors, MinByEmptyIsNullopt) {
  auto min = Stream<int>::range(0, 0).collect(collectors::min_by<int>());
  EXPECT_FALSE(min.has_value());
}

TEST(Collectors, GroupingBy) {
  auto groups = Stream<int>::range(0, 10).collect(
      collectors::grouping_by<int>([](int v) { return v % 3; }));
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<int>{0, 3, 6, 9}));
  EXPECT_EQ(groups[1], (std::vector<int>{1, 4, 7}));
  EXPECT_EQ(groups[2], (std::vector<int>{2, 5, 8}));
}

TEST(Collectors, GroupingByParallelPreservesGroupOrder) {
  auto seq = Stream<int>::range(0, 200).collect(
      collectors::grouping_by<int>([](int v) { return v % 5; }));
  auto par = Stream<int>::range(0, 200).parallel().collect(
      collectors::grouping_by<int>([](int v) { return v % 5; }));
  EXPECT_EQ(seq, par);
}

TEST(Collectors, PartitioningBy) {
  auto [evens, odds] = Stream<int>::range(0, 6).collect(
      collectors::partitioning_by<int>([](int v) { return v % 2 == 0; }));
  EXPECT_EQ(evens, (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(odds, (std::vector<int>{1, 3, 5}));
}

}  // namespace
