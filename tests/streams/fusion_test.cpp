// Push-mode pipeline fusion (docs/execution.md, "Pipeline fusion"):
// terminal evaluation strips fusable wrapper chains into a FusedPipeline
// and drives one sink chain per leaf. These tests pin the contract:
// results are bit-identical to the wrapper walk, short-circuit chains
// consume exactly as deep into the source as the wrappers did, the
// admission gate routes non-fusible shapes back to the wrappers, and the
// fused_leaves counter records which route every leaf took.
#include "streams/fusion.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "forkjoin/pool.hpp"
#include "observe/counters.hpp"
#include "streams/sink.hpp"
#include "streams/stream.hpp"

namespace {

using pls::observe::CounterTotals;
using pls::streams::Stream;

std::vector<long> iota(std::size_t n) {
  std::vector<long> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

CounterTotals counters_now() { return pls::observe::aggregate_counters(); }

// ---- result equivalence ----------------------------------------------

TEST(Fusion, MapChainMatchesLegacyOnArraySource) {
  const auto data = iota(1000);  // non-power-of-two: supplier/combiner path
  const auto run = [&](bool fusion) {
    return Stream<long>::of(data)
        .with_fusion(fusion)
        .map([](long v) { return v * 3; })
        .map([](long v) { return v - 7; })
        .map([](long v) { return v ^ 0x55; })
        .to_vector();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Fusion, MapFilterPeekChainMatchesLegacy) {
  std::atomic<std::uint64_t> seen_fused{0};
  std::atomic<std::uint64_t> seen_legacy{0};
  const auto run = [&](bool fusion, std::atomic<std::uint64_t>& seen) {
    return Stream<long>::range(0, 777)
        .with_fusion(fusion)
        .map([](long v) { return v * 2 + 1; })
        .filter([](long v) { return v % 3 != 0; })
        .peek([&seen](const long&) {
          seen.fetch_add(1, std::memory_order_relaxed);
        })
        .to_vector();
  };
  EXPECT_EQ(run(true, seen_fused), run(false, seen_legacy));
  EXPECT_EQ(seen_fused.load(), seen_legacy.load());
}

TEST(Fusion, TypeChangingMapChainMatchesLegacy) {
  const auto run = [&](bool fusion) {
    return Stream<long>::generate([](std::uint64_t i) { return long(i); },
                                  300)
        .with_fusion(fusion)
        .map([](long v) { return double(v) * 0.5; })
        .map([](double v) { return std::to_string(v); })
        .to_vector();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Fusion, ParallelTerminalsMatchLegacyAcrossChunkSizes) {
  pls::forkjoin::ForkJoinPool pool(3);
  const auto data = iota(1 << 10);
  for (const std::uint64_t chunk : {1ull, 7ull, 64ull, 2000ull}) {
    const auto run = [&](bool fusion) {
      return Stream<long>::of(data)
          .parallel()
          .via(pool)
          .with_min_chunk(chunk)
          .with_fusion(fusion)
          .map([](long v) { return v * v; })
          .filter([](long v) { return (v & 3) != 0; })
          .to_vector();
    };
    EXPECT_EQ(run(true), run(false)) << "min_chunk=" << chunk;
  }
}

TEST(Fusion, ReduceForEachCountAndSumMatchLegacy) {
  pls::forkjoin::ForkJoinPool pool(2);
  const auto data = iota(513);
  const auto base = [&](bool fusion) {
    return Stream<long>::of(data).with_fusion(fusion).map(
        [](long v) { return v ^ (v << 3); });
  };
  EXPECT_EQ(base(true).reduce([](long a, long b) { return a ^ b; }),
            base(false).reduce([](long a, long b) { return a ^ b; }));
  EXPECT_EQ(base(true).count(), base(false).count());
  EXPECT_EQ(std::move(base(true).parallel().via(pool)).sum(),
            std::move(base(false).parallel().via(pool)).sum());
  std::atomic<long> acc_fused{0};
  base(true).parallel().via(pool).for_each([&](const long& v) {
    acc_fused.fetch_add(v, std::memory_order_relaxed);
  });
  std::atomic<long> acc_legacy{0};
  base(false).parallel().via(pool).for_each([&](const long& v) {
    acc_legacy.fetch_add(v, std::memory_order_relaxed);
  });
  EXPECT_EQ(acc_fused.load(), acc_legacy.load());
}

TEST(Fusion, EmptyAndSingletonSources) {
  for (const long n : {0L, 1L}) {
    const auto run = [&](bool fusion) {
      return Stream<long>::range(0, n)
          .with_fusion(fusion)
          .map([](long v) { return v + 1; })
          .to_vector();
    };
    EXPECT_EQ(run(true), run(false)) << "n=" << n;
  }
}

// ---- short-circuit semantics -----------------------------------------

TEST(Fusion, LimitConsumesExactlyAsDeepAsLegacy) {
  // A counting peek below the slice observes source consumption depth:
  // the fused cancellable driver must pull exactly as many elements out
  // of the source as the wrapper chain did.
  const auto consumed = [&](bool fusion) {
    std::uint64_t pulls = 0;
    auto out = Stream<long>::range(0, 10000)
                   .with_fusion(fusion)
                   .peek([&pulls](const long&) { ++pulls; })
                   .limit(37)
                   .to_vector();
    EXPECT_EQ(out.size(), 37u);
    return pulls;
  };
  EXPECT_EQ(consumed(true), consumed(false));
}

TEST(Fusion, SkipThenLimitMatchesLegacy) {
  const auto run = [&](bool fusion) {
    return Stream<long>::range(0, 500)
        .with_fusion(fusion)
        .skip(100)
        .limit(50)
        .map([](long v) { return v * 11; })
        .to_vector();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Fusion, TakeWhileStopsAtFirstFailureLikeLegacy) {
  const auto consumed = [&](bool fusion) {
    std::uint64_t pulls = 0;
    auto out = Stream<long>::range(0, 10000)
                   .with_fusion(fusion)
                   .peek([&pulls](const long&) { ++pulls; })
                   .take_while([](long v) { return v < 123; })
                   .to_vector();
    EXPECT_EQ(out.size(), 123u);
    return pulls;
  };
  // take_while consumes through the first failing element (124 pulls).
  EXPECT_EQ(consumed(true), consumed(false));
}

TEST(Fusion, CancellingChainsRefuseToSplitInParallelMode) {
  // limit in a parallel pipeline: the fused chain must stay a single
  // leaf (as the SliceSpliterator wrapper does) and still be exact.
  pls::forkjoin::ForkJoinPool pool(4);
  const auto run = [&](bool fusion) {
    return Stream<long>::range(0, 1 << 12)
        .parallel()
        .via(pool)
        .with_min_chunk(8)
        .with_fusion(fusion)
        .map([](long v) { return v + 1; })
        .limit(100)
        .to_vector();
  };
  EXPECT_EQ(run(true), run(false));
}

// ---- admission and routing -------------------------------------------

TEST(Fusion, FusedLeavesCounterRecordsRouting) {
  if (!pls::observe::kEnabled) GTEST_SKIP() << "observability compiled out";
  const auto data = iota(256);
  {
    const CounterTotals before = counters_now();
    (void)Stream<long>::of(data)
        .with_fusion(true)
        .with_sized_sink(false)
        .map([](long v) { return v * 2; })
        .to_vector();
    const CounterTotals delta = counters_now() - before;
    EXPECT_EQ(delta.fused_leaves, 1u);
    EXPECT_EQ(delta.leaf_chunks, 1u);
    EXPECT_EQ(delta.elements_accumulated, 256u);
  }
  {
    const CounterTotals before = counters_now();
    (void)Stream<long>::of(data)
        .with_fusion(false)
        .with_sized_sink(false)
        .map([](long v) { return v * 2; })
        .to_vector();
    const CounterTotals delta = counters_now() - before;
    EXPECT_EQ(delta.fused_leaves, 0u);
    EXPECT_EQ(delta.leaf_chunks, 1u);
    EXPECT_EQ(delta.elements_accumulated, 256u);
  }
}

TEST(Fusion, ParallelFusedLeafCountMatchesLeafChunks) {
  if (!pls::observe::kEnabled) GTEST_SKIP() << "observability compiled out";
  pls::forkjoin::ForkJoinPool pool(2);
  const CounterTotals before = counters_now();
  (void)Stream<long>::of(iota(1 << 10))
      .parallel()
      .via(pool)
      .with_min_chunk(64)
      .with_fusion(true)
      .map([](long v) { return v + 3; })
      .to_vector();
  const CounterTotals delta = counters_now() - before;
  EXPECT_GT(delta.leaf_chunks, 1u);
  EXPECT_EQ(delta.fused_leaves, delta.leaf_chunks);
  EXPECT_EQ(delta.elements_accumulated, 1u << 10);
}

TEST(Fusion, ConcatBottomedChainFallsBackToWrappers) {
  const auto run = [&](bool fusion) {
    return Stream<long>::concat(Stream<long>::range(0, 100),
                                Stream<long>::range(200, 300))
        .with_fusion(fusion)
        .map([](long v) { return v * 5; })
        .to_vector();
  };
  const auto fused = run(true);
  EXPECT_EQ(fused, run(false));
  if (pls::observe::kEnabled) {
    const CounterTotals before = counters_now();
    (void)run(true);
    const CounterTotals delta = counters_now() - before;
    EXPECT_EQ(delta.fused_leaves, 0u);  // concat names no window
  }
}

TEST(Fusion, UnsizedIterateTailFallsBackToWrappers) {
  const auto run = [&](bool fusion) {
    return Stream<long>::iterate(1L, [](long v) { return v * 2; })
        .with_fusion(fusion)
        .map([](long v) { return v + 1; })
        .limit(20)
        .to_vector();
  };
  const auto fused = run(true);
  EXPECT_EQ(fused, run(false));
  EXPECT_EQ(fused.size(), 20u);
}

TEST(Fusion, FlatMapChainFusesAsMultiAcceptStage) {
  const auto run = [&](bool fusion) {
    return Stream<long>::range(0, 64)
        .with_fusion(fusion)
        .flat_map([](const long& v) {
          return std::vector<long>{v, v + 1};
        })
        .map([](long v) { return v * 7; })
        .to_vector();
  };
  const auto fused = run(true);
  EXPECT_EQ(fused, run(false));
  if (pls::observe::kEnabled) {
    const CounterTotals before = counters_now();
    (void)run(true);
    const CounterTotals delta = counters_now() - before;
    EXPECT_GT(delta.fused_leaves, 0u);  // flat_map is a fusable fan-out
  }
}

// ---- fused destination-passing collect -------------------------------

TEST(Fusion, FusedDpsCollectMatchesAllOtherRoutes) {
  pls::forkjoin::ForkJoinPool pool(3);
  const auto data = iota(1 << 11);  // power of two: DPS-admissible
  std::vector<std::vector<long>> results;
  for (const bool fusion : {false, true}) {
    for (const bool sized_sink : {false, true}) {
      results.push_back(Stream<long>::of(data)
                            .parallel()
                            .via(pool)
                            .with_min_chunk(32)
                            .with_fusion(fusion)
                            .with_sized_sink(sized_sink)
                            .map([](long v) { return v * 13 + 1; })
                            .to_vector());
    }
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "route " << i;
  }
}

TEST(Fusion, FusedDpsLeavesAreCountedFused) {
  if (!pls::observe::kEnabled) GTEST_SKIP() << "observability compiled out";
  pls::forkjoin::ForkJoinPool pool(2);
  const CounterTotals before = counters_now();
  (void)Stream<long>::of(iota(1 << 10))
      .parallel()
      .via(pool)
      .with_min_chunk(64)
      .with_fusion(true)
      .with_sized_sink(true)
      .map([](long v) { return v + 1; })
      .to_vector();
  const CounterTotals delta = counters_now() - before;
  EXPECT_GT(delta.fused_leaves, 1u);
  EXPECT_EQ(delta.fused_leaves, delta.leaf_chunks);
}

// ---- chunked vs element transport ------------------------------------

TEST(Fusion, ChunkedAndCancellableDriversAgree) {
  // The same logical chain, once bulk (no cancelling stage) and once
  // element-mode (with a never-failing take_while forcing cancellable
  // transport), must produce identical output.
  const auto bulk = Stream<long>::range(0, 4096)
                        .map([](long v) { return v * 3 + 1; })
                        .filter([](long v) { return v % 5 != 0; })
                        .to_vector();
  const auto element = Stream<long>::range(0, 4096)
                           .take_while([](long) { return true; })
                           .map([](long v) { return v * 3 + 1; })
                           .filter([](long v) { return v % 5 != 0; })
                           .to_vector();
  EXPECT_EQ(bulk, element);
}

TEST(Fusion, LargeArrayChunksSpanMultipleFusionBuffers) {
  // > kFusionChunk elements through a Generate source exercises the
  // buffered transport's flush-and-refill path.
  const std::uint64_t n = pls::streams::kFusionChunk * 3 + 17;
  const auto run = [&](bool fusion) {
    return Stream<std::uint64_t>::generate(
               [](std::uint64_t i) { return i * i; }, n)
        .with_fusion(fusion)
        .map([](std::uint64_t v) { return v ^ 0xdeadbeef; })
        .to_vector();
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
