// Parallel/sequential equivalence: the central correctness property of the
// streams engine. Parameterised sweeps run every terminal op in both modes
// over many sizes (including non-powers of two and the empty stream) and
// demand identical results.
#include "streams/parallel_eval.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>

#include "streams/collectors.hpp"
#include "streams/stream.hpp"

namespace {

using pls::forkjoin::ForkJoinPool;
using pls::streams::Stream;
namespace collectors = pls::streams::collectors;

class ParallelEquivalence : public ::testing::TestWithParam<int> {};

std::vector<int> test_data(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = (i * 2654435761u) % 1000;
  }
  return v;
}

TEST_P(ParallelEquivalence, ToVectorPreservesEncounterOrder) {
  const auto data = test_data(GetParam());
  const auto seq = Stream<int>::of(data).to_vector();
  const auto par = Stream<int>::of(data).parallel().to_vector();
  EXPECT_EQ(par, seq);
  EXPECT_EQ(seq, data);
}

TEST_P(ParallelEquivalence, ReduceSum) {
  const auto data = test_data(GetParam());
  const auto seq =
      Stream<int>::of(data).reduce(0, [](int a, int b) { return a + b; });
  const auto par = Stream<int>::of(data).parallel().reduce(
      0, [](int a, int b) { return a + b; });
  EXPECT_EQ(par, seq);
}

TEST_P(ParallelEquivalence, NonCommutativeCollect) {
  // String concatenation detects any order violation.
  const auto data = test_data(GetParam());
  auto to_string_stream = [&](bool parallel) {
    auto s = Stream<int>::of(data).map(
        [](int v) { return std::to_string(v) + ";"; });
    if (parallel) s = std::move(s).parallel();
    return std::move(s).collect(collectors::joining(""));
  };
  EXPECT_EQ(to_string_stream(true), to_string_stream(false));
}

TEST_P(ParallelEquivalence, CountWithFilter) {
  const auto data = test_data(GetParam());
  const auto seq = Stream<int>::of(data)
                       .filter([](int v) { return v % 3 == 0; })
                       .count();
  const auto par = Stream<int>::of(data)
                       .parallel()
                       .filter([](int v) { return v % 3 == 0; })
                       .count();
  EXPECT_EQ(par, seq);
}

TEST_P(ParallelEquivalence, MinMax) {
  const auto data = test_data(GetParam());
  EXPECT_EQ(Stream<int>::of(data).parallel().min(),
            Stream<int>::of(data).min());
  EXPECT_EQ(Stream<int>::of(data).parallel().max(),
            Stream<int>::of(data).max());
}

TEST_P(ParallelEquivalence, ForEachVisitsEachElementOnce) {
  const int n = GetParam();
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  for (auto& h : hits) h.store(0);
  Stream<int>::range(0, n).parallel().for_each(
      [&](int v) { hits[static_cast<std::size_t>(v)].fetch_add(1); });
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelEquivalence,
                         ::testing::Values(0, 1, 2, 3, 7, 8, 64, 100, 1024,
                                           4096, 10000));

TEST(ParallelEval, ExplicitPoolIsUsed) {
  ForkJoinPool pool(3);
  const auto sum = Stream<long>::range(0, 100000)
                       .parallel()
                       .via(pool)
                       .reduce(0L, [](long a, long b) { return a + b; });
  EXPECT_EQ(sum, 100000L * 99999 / 2);
}

TEST(ParallelEval, MinChunkControlsSplitDepth) {
  // With min_chunk >= size there is exactly one leaf: results still match.
  const auto out = Stream<int>::range(0, 1000)
                       .parallel()
                       .with_min_chunk(100000)
                       .to_vector();
  EXPECT_EQ(out.size(), 1000u);
  EXPECT_EQ(out.front(), 0);
  EXPECT_EQ(out.back(), 999);
}

TEST(ParallelEval, TinyMinChunkStillCorrect) {
  const auto out = Stream<int>::range(0, 513)
                       .parallel()
                       .with_min_chunk(1)
                       .to_vector();
  std::vector<int> expect(513);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(out, expect);
}

TEST(ParallelEval, SupplierCalledPerLeafChunk) {
  // Track how many containers are created in a parallel collect with a
  // known chunk target: 16 elements, chunks of <=4 -> at least 4 leaves.
  std::atomic<int> suppliers{0};
  auto c = pls::streams::make_collector<int>(
      [&suppliers] {
        suppliers.fetch_add(1);
        return std::vector<int>{};
      },
      [](std::vector<int>& acc, const int& v) { acc.push_back(v); },
      [](std::vector<int>& l, std::vector<int>& r) {
        l.insert(l.end(), r.begin(), r.end());
      });
  const auto out = Stream<int>::range(0, 16)
                       .parallel()
                       .with_min_chunk(4)
                       .collect(c);
  EXPECT_EQ(out.size(), 16u);
  EXPECT_GE(suppliers.load(), 4);
}

TEST(ParallelEval, SequentialCollectCallsSupplierOnce) {
  std::atomic<int> suppliers{0};
  auto c = pls::streams::make_collector<int>(
      [&suppliers] {
        suppliers.fetch_add(1);
        return 0L;
      },
      [](long& acc, const int& v) { acc += v; },
      [](long& l, long& r) { l += r; });
  const long sum = Stream<int>::range(0, 100).collect(c);
  EXPECT_EQ(sum, 4950);
  EXPECT_EQ(suppliers.load(), 1);
}

TEST(ParallelEval, ParallelPipelineWithMapAndFilter) {
  const auto seq = Stream<int>::range(0, 20000)
                       .map([](int v) { return v * 3; })
                       .filter([](int v) { return v % 2 == 0; })
                       .sum();
  const auto par = Stream<int>::range(0, 20000)
                       .parallel()
                       .map([](int v) { return v * 3; })
                       .filter([](int v) { return v % 2 == 0; })
                       .sum();
  EXPECT_EQ(par, seq);
}

}  // namespace
