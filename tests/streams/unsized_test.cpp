#include "streams/unsized.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "streams/stream.hpp"

namespace {

using pls::streams::Stream;

TEST(Iterate, ProducesIteratedSequence) {
  const auto powers = Stream<long>::iterate(1L, [](long v) { return v * 2; })
                          .limit(10)
                          .to_vector();
  EXPECT_EQ(powers,
            (std::vector<long>{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}));
}

TEST(Iterate, WithPipelineOps) {
  const auto collatz_from_27 =
      Stream<long>::iterate(27L,
                            [](long v) { return v % 2 == 0 ? v / 2 : 3 * v + 1; })
          .limit(112)
          .to_vector();
  EXPECT_EQ(collatz_from_27.front(), 27);
  EXPECT_EQ(collatz_from_27.back(), 1);  // classic: 27 reaches 1 in 111 steps
}

TEST(Iterate, FilterOnInfiniteStreamWithLimitFirst) {
  const auto evens = Stream<long>::iterate(0L, [](long v) { return v + 1; })
                         .limit(100)
                         .filter([](long v) { return v % 2 == 0; })
                         .count();
  EXPECT_EQ(evens, 50u);
}

TEST(UnsizedSpliterator, BatchSplittingCoversEverything) {
  // Pull 5000 elements through an unsized source and parallel-collect:
  // batches must partition the sequence in order.
  long counter = 0;
  struct Pull {
    long* counter;
    std::optional<long> operator()() {
      if (*counter >= 5000) return std::nullopt;
      return (*counter)++;
    }
  };
  auto pull = std::make_shared<Pull>(Pull{&counter});
  auto sp = std::make_unique<pls::streams::UnsizedSpliterator<long, Pull>>(
      std::move(pull));
  auto out = pls::streams::stream_support::from_spliterator<long>(
                 std::move(sp), true)
                 .to_vector();
  std::vector<long> expect(5000);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(out, expect);
}

TEST(UnsizedSpliterator, SequentialTraversalWorksWithoutSplitting) {
  int remaining = 3;
  struct Pull {
    int* remaining;
    std::optional<int> operator()() {
      if (*remaining == 0) return std::nullopt;
      return 10 - (*remaining)--;
    }
  };
  auto pull = std::make_shared<Pull>(Pull{&remaining});
  pls::streams::UnsizedSpliterator<int, Pull> sp(std::move(pull));
  std::vector<int> seen;
  sp.for_each_remaining([&](const int& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{7, 8, 9}));
  EXPECT_EQ(sp.estimate_size(), 0u);
}

TEST(UnsizedSpliterator, EstimateIsUnboundedUntilExhausted) {
  auto pull = std::make_shared<std::function<std::optional<int>()>>(
      []() -> std::optional<int> { return std::nullopt; });
  pls::streams::UnsizedSpliterator<int, std::function<std::optional<int>()>>
      sp(std::move(pull));
  EXPECT_EQ(sp.estimate_size(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(sp.try_advance([](const int&) {}));
  EXPECT_EQ(sp.estimate_size(), 0u);
}

}  // namespace
