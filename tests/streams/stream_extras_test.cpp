// Tests for the stream library extensions: concat, summarizing, teeing,
// mapping adapter.
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "streams/collectors.hpp"
#include "streams/stream.hpp"

namespace {

using pls::streams::Stream;
namespace collectors = pls::streams::collectors;

TEST(Concat, SequentialOrder) {
  auto out = Stream<int>::concat(Stream<int>::range(0, 3),
                                 Stream<int>::range(10, 13))
                 .to_vector();
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 10, 11, 12}));
}

TEST(Concat, ParallelPreservesEncounterOrder) {
  auto out = Stream<int>::concat(Stream<int>::range(0, 500).parallel(),
                                 Stream<int>::range(500, 1000))
                 .to_vector();
  std::vector<int> expect(1000);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(out, expect);
}

TEST(Concat, EmptyParts) {
  auto left_empty = Stream<int>::concat(Stream<int>::range(0, 0),
                                        Stream<int>::range(5, 8))
                        .to_vector();
  EXPECT_EQ(left_empty, (std::vector<int>{5, 6, 7}));
  auto right_empty = Stream<int>::concat(Stream<int>::range(5, 8),
                                         Stream<int>::range(0, 0))
                         .to_vector();
  EXPECT_EQ(right_empty, (std::vector<int>{5, 6, 7}));
}

TEST(Concat, CountAndPipelineOps) {
  const auto n = Stream<int>::concat(Stream<int>::range(0, 100),
                                     Stream<int>::range(0, 100))
                     .filter([](int v) { return v % 2 == 0; })
                     .count();
  EXPECT_EQ(n, 100u);
}

TEST(Concat, NestedConcat) {
  auto abc = Stream<int>::concat(
      Stream<int>::concat(Stream<int>::of({1}), Stream<int>::of({2})),
      Stream<int>::of({3}));
  EXPECT_EQ(std::move(abc).to_vector(), (std::vector<int>{1, 2, 3}));
}

TEST(Summarizing, BasicStatistics) {
  const auto s = Stream<int>::of({4, 1, 7, 2}).collect(
      collectors::summarizing<int>([](int v) { return v; }));
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 14.0);
  EXPECT_DOUBLE_EQ(*s.min, 1.0);
  EXPECT_DOUBLE_EQ(*s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(Summarizing, EmptyStream) {
  const auto s = Stream<int>::range(0, 0).collect(
      collectors::summarizing<int>([](int v) { return v; }));
  EXPECT_EQ(s.count, 0u);
  EXPECT_FALSE(s.min.has_value());
  EXPECT_FALSE(s.max.has_value());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Summarizing, ParallelMatchesSequential) {
  auto seq = Stream<int>::range(0, 10000).collect(
      collectors::summarizing<int>([](int v) { return v % 97; }));
  auto par = Stream<int>::range(0, 10000).parallel().collect(
      collectors::summarizing<int>([](int v) { return v % 97; }));
  EXPECT_EQ(par.count, seq.count);
  EXPECT_DOUBLE_EQ(par.sum, seq.sum);
  EXPECT_EQ(par.min, seq.min);
  EXPECT_EQ(par.max, seq.max);
}

TEST(Teeing, CombinesTwoCollectors) {
  const auto avg = Stream<int>::range(1, 101).collect(collectors::teeing<int>(
      collectors::summing<int>(), collectors::counting<int>(),
      [](int total, std::uint64_t count) {
        return static_cast<double>(total) / static_cast<double>(count);
      }));
  EXPECT_DOUBLE_EQ(avg, 50.5);
}

TEST(Teeing, ParallelMatchesSequential) {
  auto run = [](bool parallel) {
    auto s = Stream<int>::range(0, 5000);
    if (parallel) s = std::move(s).parallel();
    return std::move(s).collect(collectors::teeing<int>(
        collectors::min_by<int>(), collectors::max_by<int>(),
        [](std::optional<int> lo, std::optional<int> hi) {
          return std::pair{*lo, *hi};
        }));
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Mapping, AdaptsDownstreamCollector) {
  const auto lengths = Stream<std::string>::of({"a", "bb", "ccc"})
                           .collect(collectors::mapping<std::string>(
                               [](const std::string& s) {
                                 return static_cast<int>(s.size());
                               },
                               collectors::to_vector<int>()));
  EXPECT_EQ(lengths, (std::vector<int>{1, 2, 3}));
}

TEST(TakeWhile, StopsAtFirstFailure) {
  const auto out = Stream<int>::of({1, 2, 3, 10, 4, 5})
                       .take_while([](int v) { return v < 5; })
                       .to_vector();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(TakeWhile, AllPass) {
  const auto out = Stream<int>::range(0, 5)
                       .take_while([](int v) { return v < 100; })
                       .to_vector();
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TakeWhile, NonePass) {
  const auto out = Stream<int>::range(5, 10)
                       .take_while([](int v) { return v < 5; })
                       .to_vector();
  EXPECT_TRUE(out.empty());
}

TEST(TakeWhile, OnInfiniteIterate) {
  const auto out = Stream<long>::iterate(1L, [](long v) { return v * 3; })
                       .take_while([](long v) { return v < 100; })
                       .to_vector();
  EXPECT_EQ(out, (std::vector<long>{1, 3, 9, 27, 81}));
}

TEST(DropWhile, DropsFailingPrefixOnly) {
  const auto out = Stream<int>::of({1, 2, 3, 10, 4, 5})
                       .drop_while([](int v) { return v < 5; })
                       .to_vector();
  // Drops 1,2,3; keeps 10 and EVERYTHING after (4 < 5 but prefix ended).
  EXPECT_EQ(out, (std::vector<int>{10, 4, 5}));
}

TEST(DropWhile, NoneDropped) {
  const auto out = Stream<int>::range(5, 8)
                       .drop_while([](int v) { return v < 5; })
                       .to_vector();
  EXPECT_EQ(out, (std::vector<int>{5, 6, 7}));
}

TEST(DropWhile, AllDropped) {
  const auto out = Stream<int>::range(0, 5)
                       .drop_while([](int) { return true; })
                       .to_vector();
  EXPECT_TRUE(out.empty());
}

TEST(TakeDropWhile, Complementary) {
  const std::vector<int> data{2, 4, 6, 7, 8, 9};
  auto pred = [](int v) { return v % 2 == 0; };
  auto taken = Stream<int>::of(data).take_while(pred).to_vector();
  auto dropped = Stream<int>::of(data).drop_while(pred).to_vector();
  taken.insert(taken.end(), dropped.begin(), dropped.end());
  EXPECT_EQ(taken, data);
}

TEST(Mapping, ComposesWithGrouping) {
  const auto joined = Stream<int>::range(0, 10).collect(
      collectors::mapping<int>(
          [](int v) { return std::to_string(v); },
          collectors::joining("+")));
  EXPECT_EQ(joined, "0+1+2+3+4+5+6+7+8+9");
}

}  // namespace
