#include "streams/stream.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using pls::streams::Stream;

TEST(StreamOps, MapTransforms) {
  const auto out = Stream<int>::of({1, 2, 3})
                       .map([](int v) { return v * 10; })
                       .to_vector();
  EXPECT_EQ(out, (std::vector<int>{10, 20, 30}));
}

TEST(StreamOps, MapChangesElementType) {
  const auto out = Stream<int>::of({1, 22, 333})
                       .map([](int v) { return std::to_string(v); })
                       .to_vector();
  EXPECT_EQ(out, (std::vector<std::string>{"1", "22", "333"}));
}

TEST(StreamOps, FilterKeepsMatching) {
  const auto out = Stream<int>::range(0, 10)
                       .filter([](int v) { return v % 3 == 0; })
                       .to_vector();
  EXPECT_EQ(out, (std::vector<int>{0, 3, 6, 9}));
}

TEST(StreamOps, MapFilterChain) {
  const auto out = Stream<int>::range(0, 20)
                       .map([](int v) { return v * v; })
                       .filter([](int v) { return v % 2 == 0; })
                       .map([](int v) { return v + 1; })
                       .to_vector();
  std::vector<int> expect;
  for (int v = 0; v < 20; ++v) {
    const int sq = v * v;
    if (sq % 2 == 0) expect.push_back(sq + 1);
  }
  EXPECT_EQ(out, expect);
}

TEST(StreamOps, PeekObservesWithoutChanging) {
  std::vector<int> observed;
  const auto out = Stream<int>::of({4, 5, 6})
                       .peek([&](int v) { observed.push_back(v); })
                       .to_vector();
  EXPECT_EQ(out, (std::vector<int>{4, 5, 6}));
  EXPECT_EQ(observed, (std::vector<int>{4, 5, 6}));
}

TEST(StreamOps, FlatMapConcatenates) {
  const auto out = Stream<int>::of({1, 2, 3})
                       .flat_map([](int v) {
                         return std::vector<int>(static_cast<std::size_t>(v),
                                                 v);
                       })
                       .to_vector();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 2, 3, 3, 3}));
}

TEST(StreamOps, FlatMapWithEmptyResults) {
  const auto out = Stream<int>::range(0, 6)
                       .flat_map([](int v) {
                         return v % 2 == 0 ? std::vector<int>{v}
                                           : std::vector<int>{};
                       })
                       .to_vector();
  EXPECT_EQ(out, (std::vector<int>{0, 2, 4}));
}

TEST(StreamOps, LimitTruncates) {
  const auto out = Stream<int>::range(0, 1000).limit(4).to_vector();
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
}

TEST(StreamOps, LimitLargerThanStream) {
  const auto out = Stream<int>::range(0, 3).limit(100).to_vector();
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
}

TEST(StreamOps, SkipDrops) {
  const auto out = Stream<int>::range(0, 6).skip(4).to_vector();
  EXPECT_EQ(out, (std::vector<int>{4, 5}));
}

TEST(StreamOps, SkipThenLimit) {
  const auto out = Stream<int>::range(0, 100).skip(10).limit(3).to_vector();
  EXPECT_EQ(out, (std::vector<int>{10, 11, 12}));
}

TEST(StreamOps, SortedOrders) {
  const auto out = Stream<int>::of({5, 1, 4, 2, 3}).sorted().to_vector();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(StreamOps, SortedWithComparator) {
  const auto out = Stream<int>::of({5, 1, 4})
                       .sorted(std::greater<int>{})
                       .to_vector();
  EXPECT_EQ(out, (std::vector<int>{5, 4, 1}));
}

TEST(StreamOps, DistinctKeepsFirstOccurrence) {
  const auto out = Stream<int>::of({3, 1, 3, 2, 1, 3}).distinct().to_vector();
  EXPECT_EQ(out, (std::vector<int>{3, 1, 2}));
}

TEST(StreamOps, CountAfterFilter) {
  const auto n = Stream<int>::range(0, 100)
                     .filter([](int v) { return v % 7 == 0; })
                     .count();
  EXPECT_EQ(n, 15u);  // 0,7,...,98
}

TEST(StreamOps, ReduceSum) {
  const auto sum =
      Stream<int>::range(1, 101).reduce([](int a, int b) { return a + b; });
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(*sum, 5050);
}

TEST(StreamOps, ReduceEmptyIsNullopt) {
  const auto r =
      Stream<int>::range(0, 0).reduce([](int a, int b) { return a + b; });
  EXPECT_FALSE(r.has_value());
}

TEST(StreamOps, ReduceWithIdentityOnEmpty) {
  const int r = Stream<int>::range(0, 0).reduce(
      -7, [](int a, int b) { return a + b; });
  EXPECT_EQ(r, -7);
}

TEST(StreamOps, SumMinMax) {
  EXPECT_EQ(Stream<int>::of({3, 9, 1}).sum(), 13);
  EXPECT_EQ(*Stream<int>::of({3, 9, 1}).min(), 1);
  EXPECT_EQ(*Stream<int>::of({3, 9, 1}).max(), 9);
  EXPECT_FALSE(Stream<int>::range(0, 0).min().has_value());
}

TEST(StreamOps, ForEachVisitsAll) {
  int sum = 0;
  Stream<int>::range(0, 10).for_each([&](int v) { sum += v; });
  EXPECT_EQ(sum, 45);
}

TEST(StreamOps, Matchers) {
  EXPECT_TRUE(
      Stream<int>::range(0, 10).any_match([](int v) { return v == 7; }));
  EXPECT_FALSE(
      Stream<int>::range(0, 10).any_match([](int v) { return v == 42; }));
  EXPECT_TRUE(
      Stream<int>::range(0, 10).all_match([](int v) { return v < 10; }));
  EXPECT_FALSE(
      Stream<int>::range(0, 10).all_match([](int v) { return v < 9; }));
  EXPECT_TRUE(
      Stream<int>::range(0, 10).none_match([](int v) { return v > 20; }));
}

TEST(StreamOps, AnyMatchShortCircuits) {
  int inspected = 0;
  const bool found = Stream<int>::range(0, 1000000)
                         .peek([&](int) { ++inspected; })
                         .any_match([](int v) { return v == 3; });
  EXPECT_TRUE(found);
  EXPECT_EQ(inspected, 4);
}

TEST(StreamOps, FindFirst) {
  const auto v = Stream<int>::range(5, 100).find_first();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
  EXPECT_FALSE(Stream<int>::range(0, 0).find_first().has_value());
}

TEST(StreamOps, GenerateFactory) {
  const auto out =
      Stream<double>::generate(
          [](std::uint64_t i) { return static_cast<double>(i) / 2.0; }, 4)
          .to_vector();
  EXPECT_EQ(out, (std::vector<double>{0.0, 0.5, 1.0, 1.5}));
}

TEST(StreamOps, ThreeArgCollectJoinsWords) {
  // The paper's word-concatenation example (sequential: no combiner runs).
  const auto words =
      Stream<std::string>::of({"alpha", "beta", "gamma"});
  (void)words;
  const auto joined =
      Stream<std::string>::of({"alpha", "beta", "gamma"})
          .collect([] { return std::string{}; },
                   [](std::string& acc, const std::string& w) {
                     if (!acc.empty()) acc += ", ";
                     acc += w;
                   },
                   [](std::string& left, std::string& right) {
                     if (!left.empty() && !right.empty()) left += ", ";
                     left += right;
                   });
  EXPECT_EQ(joined, "alpha, beta, gamma");
}

TEST(StreamOps, CharacteristicsExposedThroughPipeline) {
  const auto s = Stream<int>::range(0, 8);
  EXPECT_TRUE(pls::streams::has_characteristics(s.characteristics(),
                                                pls::streams::kSized));
  const auto filtered =
      Stream<int>::range(0, 8).filter([](int) { return true; });
  EXPECT_FALSE(pls::streams::has_characteristics(filtered.characteristics(),
                                                 pls::streams::kSized));
}

}  // namespace
