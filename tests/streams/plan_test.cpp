// The execution planner (streams/plan.hpp): admission verdicts with
// reasons, grain resolution (explicit / default / auto-tuned), the
// PlanCache policy maths, plan recording, and the explain() dump. These
// are the single-home predicates every entry point routes through, so
// the cases here pin the whole decision table.
#include "streams/plan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "forkjoin/pool.hpp"
#include "streams/collectors.hpp"
#include "streams/parallel_eval.hpp"
#include "streams/spliterators.hpp"
#include "streams/stream.hpp"

namespace {

namespace streams = pls::streams;
using streams::ArraySpliterator;
using streams::DriveMode;
using streams::ExecutionConfig;
using streams::ExecutionPlan;
using streams::GrainSource;
using streams::PlanCache;
using streams::PlanOrigin;
using streams::PlanProfile;
using streams::PlanReason;
using streams::TerminalKind;

std::shared_ptr<const std::vector<int>> ints(std::size_t n) {
  std::vector<int> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<int>(i);
  return std::make_shared<const std::vector<int>>(std::move(v));
}

std::unique_ptr<streams::Spliterator<int>> array_source(std::size_t n) {
  return std::make_unique<ArraySpliterator<int>>(ints(n));
}

// ---- DPS admission (plan_dps_window) --------------------------------

TEST(PlanDpsWindow, AdmitsPowerOfTwoWindowedSource) {
  ArraySpliterator<int> sp(ints(16));
  const auto w = streams::plan_dps_window(sp);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->count, 16u);
}

TEST(PlanDpsWindow, RejectsNonPowerOfTwo) {
  ArraySpliterator<int> sp(ints(12));
  EXPECT_FALSE(streams::plan_dps_window(sp).has_value());
}

// ---- plan_pipeline verdicts -----------------------------------------

TEST(PlanPipeline, FusedDpsCollectPlan) {
  auto sp = array_source(64);
  const ExecutionConfig cfg;
  auto planned = streams::plan_pipeline<int>(
      sp, TerminalKind::kCollect, /*collector_sized=*/true,
      /*chunk_collector=*/false, /*parallel=*/false, cfg);
  ASSERT_NE(planned.fused, nullptr);
  const ExecutionPlan& p = planned.plan;
  EXPECT_TRUE(p.fused);
  EXPECT_EQ(p.fusion_reason, PlanReason::kAdmitted);
  EXPECT_TRUE(p.dps);
  EXPECT_EQ(p.dps_reason, PlanReason::kAdmitted);
  ASSERT_TRUE(p.window.has_value());
  EXPECT_EQ(p.window->count, 64u);
  EXPECT_EQ(p.drive, DriveMode::kSequential);
  EXPECT_EQ(p.grain_source, GrainSource::kNone);
}

TEST(PlanPipeline, FusionOffGivesLegacyPlanWithReason) {
  auto sp = array_source(64);
  const auto cfg = ExecutionConfig{}.with_fusion(false);
  auto planned = streams::plan_pipeline<int>(
      sp, TerminalKind::kCollect, true, false, false, cfg);
  EXPECT_EQ(planned.fused, nullptr);
  EXPECT_NE(sp, nullptr);  // source untouched on refusal
  EXPECT_FALSE(planned.plan.fused);
  EXPECT_EQ(planned.plan.fusion_reason, PlanReason::kDisabledByConfig);
  EXPECT_TRUE(planned.plan.dps);  // DPS still admits through the wrapper
}

TEST(PlanPipeline, NonCollectTerminalNeverDps) {
  auto sp = array_source(64);
  const ExecutionConfig cfg;
  auto planned = streams::plan_pipeline<int>(
      sp, TerminalKind::kCount, false, false, false, cfg);
  EXPECT_FALSE(planned.plan.dps);
  EXPECT_EQ(planned.plan.dps_reason, PlanReason::kTerminalNotCollect);
}

TEST(PlanPipeline, SizedSinkOffIsDisabledByConfig) {
  auto sp = array_source(64);
  const auto cfg = ExecutionConfig{}.with_sized_sink(false);
  auto planned = streams::plan_pipeline<int>(
      sp, TerminalKind::kCollect, true, false, false, cfg);
  EXPECT_FALSE(planned.plan.dps);
  EXPECT_EQ(planned.plan.dps_reason, PlanReason::kDisabledByConfig);
}

TEST(PlanPipeline, NonPowerOfTwoRefusesDpsWithReason) {
  auto sp = array_source(48);
  const ExecutionConfig cfg;
  auto planned = streams::plan_pipeline<int>(
      sp, TerminalKind::kCollect, true, false, false, cfg);
  EXPECT_FALSE(planned.plan.dps);
  EXPECT_EQ(planned.plan.dps_reason, PlanReason::kNotPowerOfTwo);
}

// ---- grain resolution ------------------------------------------------

TEST(PlanGrain, ExplicitMinChunkWins) {
  pls::forkjoin::ForkJoinPool pool(2);
  auto sp = array_source(1024);
  const auto cfg = ExecutionConfig{}.with_pool(pool).with_min_chunk(17);
  auto planned = streams::plan_pipeline<int>(
      sp, TerminalKind::kCollect, true, false, /*parallel=*/true, cfg);
  EXPECT_EQ(planned.plan.grain, 17u);
  EXPECT_EQ(planned.plan.grain_source, GrainSource::kExplicit);
}

TEST(PlanGrain, DefaultIsJavaQuarterRule) {
  pls::forkjoin::ForkJoinPool pool(2);
  auto sp = array_source(1024);
  const auto cfg = ExecutionConfig{}.with_pool(pool);
  auto planned = streams::plan_pipeline<int>(
      sp, TerminalKind::kCollect, true, false, true, cfg);
  EXPECT_EQ(planned.plan.grain, streams::default_grain(1024, 2));
  EXPECT_EQ(planned.plan.grain_source, GrainSource::kDefault);
}

TEST(PlanGrain, AutoGrainConsumesCacheAndNeverCoarsens) {
  pls::forkjoin::ForkJoinPool pool(2);
  PlanCache::global().clear();
  const auto cfg =
      ExecutionConfig{}.with_pool(pool).with_auto_grain(true);

  // Without a profile: identical to the default plan.
  {
    auto sp = array_source(1024);
    auto planned = streams::plan_pipeline<int>(
        sp, TerminalKind::kCollect, true, false, true, cfg);
    EXPECT_EQ(planned.plan.grain_source, GrainSource::kDefault);
  }

  // With a profile installed for the shape key: tuned, and never coarser
  // than the default.
  std::uint64_t key = 0;
  {
    auto sp = array_source(1024);
    auto planned = streams::plan_pipeline<int>(
        sp, TerminalKind::kCollect, true, false, true, cfg);
    key = planned.plan.cache_key;
  }
  PlanProfile prof;
  prof.samples = 1;
  prof.per_element_ns = 1e4;  // expensive elements => tiny tuned grain
  prof.tuned_grain =
      PlanCache::tuned_grain_for(1024, 2, prof.per_element_ns);
  PlanCache::global().put(key, prof);
  {
    auto sp = array_source(1024);
    auto planned = streams::plan_pipeline<int>(
        sp, TerminalKind::kCollect, true, false, true, cfg);
    EXPECT_EQ(planned.plan.grain_source, GrainSource::kAutoTuned);
    EXPECT_EQ(planned.plan.grain, prof.tuned_grain);
    EXPECT_LE(planned.plan.grain, streams::default_grain(1024, 2));
  }
  PlanCache::global().clear();
}

TEST(PlanCachePolicy, TunedGrainBounds) {
  // Cheap elements: the budget dominates the default => default wins.
  EXPECT_EQ(PlanCache::tuned_grain_for(1 << 20, 4, 0.5),
            streams::default_grain(1 << 20, 4));
  // No measurement: default.
  EXPECT_EQ(PlanCache::tuned_grain_for(1 << 20, 4, 0.0),
            streams::default_grain(1 << 20, 4));
  // Expensive elements: budget / cost, floored at 1.
  EXPECT_EQ(PlanCache::tuned_grain_for(1 << 20, 4, 2e5), 1u);
  const std::uint64_t tuned = PlanCache::tuned_grain_for(1 << 20, 4, 100.0);
  EXPECT_EQ(tuned, static_cast<std::uint64_t>(
                       streams::kAutoGrainTargetLeafNs / 100.0));
  EXPECT_LE(tuned, streams::default_grain(1 << 20, 4));
}

TEST(PlanCachePolicy, PutLookupClear) {
  PlanCache cache;
  EXPECT_FALSE(cache.lookup(42).has_value());
  PlanProfile p;
  p.tuned_grain = 128;
  cache.put(42, p);
  ASSERT_TRUE(cache.lookup(42).has_value());
  EXPECT_EQ(*cache.lookup(42), 128u);
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_FALSE(cache.lookup(42).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

// ---- determinism and the shape key ----------------------------------

TEST(PlanDeterminism, SameShapeSamePlan) {
  pls::forkjoin::ForkJoinPool pool(2);
  const auto cfg = ExecutionConfig{}.with_pool(pool);
  auto a_sp = array_source(256);
  auto b_sp = array_source(256);
  auto a = streams::plan_pipeline<int>(a_sp, TerminalKind::kCollect, true,
                                       false, true, cfg);
  auto b = streams::plan_pipeline<int>(b_sp, TerminalKind::kCollect, true,
                                       false, true, cfg);
  EXPECT_EQ(a.plan.cache_key, b.plan.cache_key);
  EXPECT_EQ(a.plan.fused, b.plan.fused);
  EXPECT_EQ(a.plan.dps, b.plan.dps);
  EXPECT_EQ(a.plan.grain, b.plan.grain);
  EXPECT_EQ(a.plan.explain(), b.plan.explain());
}

TEST(PlanCacheKey, DistinguishesShapes) {
  const auto k = [](TerminalKind kind, std::uint64_t n, unsigned p,
                    std::uint32_t stages) {
    return streams::plan_cache_key(kind, n, p, stages, true, false);
  };
  EXPECT_NE(k(TerminalKind::kCollect, 64, 4, 0),
            k(TerminalKind::kReduce, 64, 4, 0));
  EXPECT_NE(k(TerminalKind::kCollect, 64, 4, 0),
            k(TerminalKind::kCollect, 128, 4, 0));
  EXPECT_NE(k(TerminalKind::kCollect, 64, 4, 0),
            k(TerminalKind::kCollect, 64, 8, 0));
  EXPECT_NE(k(TerminalKind::kCollect, 64, 4, 0),
            k(TerminalKind::kCollect, 64, 4, 2));
}

// ---- widened admission: flat_map / distinct / sorted / match ---------

TEST(PlanWideAdmission, FlatMapFusesButRefusesDps) {
  auto out = streams::Stream<int>::range(0, 64)
                 .flat_map([](const int& v) {
                   return std::vector<int>{v, v + 1};
                 })
                 .to_vector();
  EXPECT_EQ(out.size(), 128u);
  const ExecutionPlan& p = streams::last_plan();
  EXPECT_TRUE(p.fused);
  EXPECT_FALSE(p.one_to_one);
  EXPECT_FALSE(p.stateful);
  EXPECT_FALSE(p.dps);
  EXPECT_EQ(p.dps_reason, PlanReason::kChainNotOneToOne);
}

TEST(PlanWideAdmission, DistinctChainIsStatefulSingleLeaf) {
  pls::forkjoin::ForkJoinPool pool(2);
  auto out = streams::Stream<int>::range(0, 256)
                 .map([](int v) { return v / 2; })
                 .distinct()
                 .parallel()
                 .via(pool)
                 .to_vector();
  EXPECT_EQ(out.size(), 128u);
  const ExecutionPlan& p = streams::last_plan();
  EXPECT_TRUE(p.fused);
  EXPECT_TRUE(p.stateful);
  EXPECT_FALSE(p.cancels);
  EXPECT_EQ(p.dps_reason, PlanReason::kChainStateful);
  EXPECT_EQ(p.drive, DriveMode::kStatefulLoop);
}

TEST(PlanWideAdmission, SortedResumesFusionDownstreamOfBuffer) {
  // 12-element range, filter keeps 8 (a power of two): the sorted buffer
  // recovers exact sizing, fusion restarts on it, and only the downstream
  // map lives in the fused chain — so DPS admits with the buffer's count.
  auto out = streams::Stream<int>::range(0, 12)
                 .filter([](const int& v) { return v % 3 != 0; })
                 .sorted()
                 .map([](int v) { return v + 1; })
                 .to_vector();
  EXPECT_EQ(out.size(), 8u);
  const ExecutionPlan& p = streams::last_plan();
  EXPECT_TRUE(p.fused);
  EXPECT_EQ(p.stages, 1u);  // just the map; filter ran upstream of the buffer
  EXPECT_EQ(p.source_size, 8u);
  EXPECT_TRUE(p.dps);
  ASSERT_TRUE(p.window.has_value());
  EXPECT_EQ(p.window->count, 8u);
}

TEST(PlanWideAdmission, MatchTerminalsRunFusedElementLoop) {
  pls::forkjoin::ForkJoinPool pool(2);
  const bool found = streams::Stream<int>::range(0, 64)
                         .map([](int v) { return v * 2; })
                         .any_match([](const int& v) { return v > 50; });
  EXPECT_TRUE(found);
  {
    const ExecutionPlan& p = streams::last_plan();
    EXPECT_EQ(p.terminal, TerminalKind::kAnyMatch);
    EXPECT_TRUE(p.fused);
    EXPECT_EQ(p.drive, DriveMode::kElementLoop);
    EXPECT_FALSE(p.dps);
    EXPECT_EQ(p.dps_reason, PlanReason::kTerminalNotCollect);
  }
  // Parallel short-circuit terminals stay on the encounter-order element
  // loop: promptness beats splitting for find-like terminals.
  const bool all = streams::Stream<int>::range(0, 4096)
                       .parallel()
                       .via(pool)
                       .all_match([](const int& v) { return v >= 0; });
  EXPECT_TRUE(all);
  {
    const ExecutionPlan& p = streams::last_plan();
    EXPECT_EQ(p.terminal, TerminalKind::kAllMatch);
    EXPECT_TRUE(p.parallel);
    EXPECT_EQ(p.drive, DriveMode::kElementLoop);
  }
}

TEST(PlanCacheKey, DistinguishesStatefulChains) {
  EXPECT_NE(streams::plan_cache_key(TerminalKind::kCollect, 64, 4, 1, true,
                                    false, false),
            streams::plan_cache_key(TerminalKind::kCollect, 64, 4, 1, true,
                                    false, true));
}

// ---- recording and explain() ----------------------------------------

TEST(PlanRecording, TerminalsRecordLastPlan) {
  auto data = ints(32);
  auto out = streams::stream_support::from_spliterator<int>(
                 std::make_unique<ArraySpliterator<int>>(data), false)
                 .to_vector();
  EXPECT_EQ(out.size(), 32u);
  const ExecutionPlan& p = streams::last_plan();
  EXPECT_EQ(p.terminal, TerminalKind::kCollect);
  EXPECT_EQ(p.origin, PlanOrigin::kDynamic);
  EXPECT_TRUE(p.fused);
  EXPECT_EQ(p.source_size, 32u);
}

TEST(PlanExplain, NamesTheDecisions) {
  auto sp = array_source(64);
  const ExecutionConfig cfg;
  auto planned = streams::plan_pipeline<int>(
      sp, TerminalKind::kCollect, true, false, false, cfg);
  const std::string text = planned.plan.explain();
  EXPECT_NE(text.find("plan: collect"), std::string::npos);
  EXPECT_NE(text.find("source : 64 elements"), std::string::npos);
  EXPECT_NE(text.find("fusion : admitted"), std::string::npos);
  EXPECT_NE(text.find("dps"), std::string::npos);
}

TEST(PlanExplain, NamesStatefulChainsAndShortCircuitTerminals) {
  (void)streams::Stream<int>::range(0, 32).distinct().to_vector();
  {
    const std::string text = streams::last_plan().explain();
    EXPECT_NE(text.find("stateful"), std::string::npos);
    EXPECT_NE(text.find("chain has a stateful stage"), std::string::npos);
  }
  (void)streams::Stream<int>::range(0, 32).find_first();
  {
    const std::string text = streams::last_plan().explain();
    EXPECT_NE(text.find("plan: find_first"), std::string::npos);
    EXPECT_NE(text.find("element loop"), std::string::npos);
  }
}

}  // namespace
