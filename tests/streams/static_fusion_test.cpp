// Unit tests for the typed static-pipeline API (streams/static_fusion.hpp):
// pipe()/over(), Stream::stages(), execution-config round-tripping, every
// terminal, the dynamic fallback when the source refuses fusion, and
// admission observability.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <optional>
#include <vector>

#include "forkjoin/pool.hpp"
#include "observe/counters.hpp"
#include "pls.hpp"

namespace {

namespace streams = pls::streams;
using pls::stages::filter;
using pls::stages::map;
using pls::stages::peek;
using streams::Stream;

std::vector<std::int64_t> iota(std::int64_t n) {
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), std::int64_t{0});
  return v;
}

TEST(StaticPipeline, PipeOverVectorToVector) {
  auto out = pls::pipe(map([](std::int64_t v) { return v * 2; }),
                       filter([](std::int64_t v) { return v % 3 == 0; }))
                 .over(iota(100))
                 .to_vector();
  std::vector<std::int64_t> expected;
  for (std::int64_t v = 0; v < 100; ++v) {
    if ((v * 2) % 3 == 0) expected.push_back(v * 2);
  }
  EXPECT_EQ(out, expected);
}

TEST(StaticPipeline, TypeChangingChain) {
  auto out = pls::pipe(map([](std::int64_t v) { return v + 1; }),
                       map([](std::int64_t v) {
                         return static_cast<double>(v) * 0.5;
                       }))
                 .over(iota(8))
                 .to_vector();
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], (static_cast<double>(i) + 1.0) * 0.5);
  }
  static_assert(
      std::is_same_v<decltype(out), std::vector<double>>,
      "chain output type is computed at compile time");
}

TEST(StaticPipeline, StreamStagesAdoptsSourceAndSettings) {
  pls::forkjoin::ForkJoinPool pool(2);
  auto out = Stream<std::int64_t>::of(iota(64))
                 .parallel()
                 .via(pool)
                 .with_min_chunk(8)
                 .stages(map([](std::int64_t v) { return v * v; }))
                 .to_vector();
  ASSERT_EQ(out.size(), 64u);
  for (std::int64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(out[static_cast<std::size_t>(v)], v * v);
  }
}

TEST(StaticPipeline, DynamicOpsUpstreamOfStaticStack) {
  // Ops applied to the Stream before stages() run as dynamic wrapper
  // stages below the static stack; results compose.
  auto out = Stream<std::int64_t>::of(iota(20))
                 .map([](std::int64_t v) { return v + 100; })
                 .stages(filter([](std::int64_t v) { return v % 2 == 0; }))
                 .to_vector();
  std::vector<std::int64_t> expected;
  for (std::int64_t v = 0; v < 20; ++v) {
    if ((v + 100) % 2 == 0) expected.push_back(v + 100);
  }
  EXPECT_EQ(out, expected);
}

TEST(StaticPipeline, StagesExtension) {
  auto out = pls::pipe(map([](std::int64_t v) { return v + 1; }))
                 .over(iota(10))
                 .stages(map([](std::int64_t v) { return v * 3; }))
                 .to_vector();
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], (static_cast<std::int64_t>(i) + 1) * 3);
  }
}

TEST(StaticPipeline, Terminals) {
  const auto make = [] {
    return pls::pipe(map([](std::int64_t v) { return v * 2; }))
        .over(iota(10));
  };

  EXPECT_EQ(make().count(), 10u);

  auto sum = make().reduce(std::int64_t{0},
                           [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(sum, 90);

  auto opt = make().reduce(
      [](std::int64_t a, std::int64_t b) { return a < b ? b : a; });
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(*opt, 18);

  std::int64_t seen = 0;
  make().for_each([&](const std::int64_t& v) { seen += v; });
  EXPECT_EQ(seen, 90);

  auto collected = make().collect(streams::collectors::summing<std::int64_t>());
  EXPECT_EQ(collected, 90);
}

TEST(StaticPipeline, EmptySource) {
  auto p = pls::pipe(map([](std::int64_t v) { return v * 2; }),
                     filter([](std::int64_t v) { return v > 0; }));
  EXPECT_TRUE(p.over(std::vector<std::int64_t>{}).to_vector().empty());
  EXPECT_EQ(p.over(std::vector<std::int64_t>{}).count(), 0u);
  EXPECT_FALSE(p.over(std::vector<std::int64_t>{})
                   .reduce([](std::int64_t a, std::int64_t b) { return a + b; })
                   .has_value());
}

TEST(StaticPipeline, PeekObservesEveryElement) {
  std::int64_t observed = 0;
  auto out = pls::pipe(peek([&](const std::int64_t&) { ++observed; }),
                       map([](std::int64_t v) { return v - 1; }))
                 .over(iota(33))
                 .to_vector();
  EXPECT_EQ(observed, 33);
  EXPECT_EQ(out.size(), 33u);
  EXPECT_EQ(out.front(), -1);
}

TEST(StaticPipeline, FusionOffFallsBackWithIdenticalResults) {
  const auto build = [](bool fusion) {
    return pls::pipe(map([](std::int64_t v) { return v * 7 + 1; }),
                     filter([](std::int64_t v) { return v % 5 != 0; }))
        .over(iota(200))
        .with_fusion(fusion)
        .to_vector();
  };
  EXPECT_EQ(build(true), build(false));
}

TEST(StaticPipeline, NonAdmissibleSourceFallsBack) {
  // iterate() is unsized at the tail: fusion refuses it, the static
  // pipeline dissolves into dynamic wrappers, results stay correct.
  auto out = Stream<std::int64_t>::iterate(
                 1, [](std::int64_t v) { return v * 2; })
                 .limit(10)
                 .stages(map([](std::int64_t v) { return v + 1; }))
                 .to_vector();
  std::vector<std::int64_t> expected;
  std::int64_t v = 1;
  for (int i = 0; i < 10; ++i, v *= 2) expected.push_back(v + 1);
  EXPECT_EQ(out, expected);
}

TEST(StaticPipeline, StaticChainRunsFusedOnAdmissibleSource) {
  if (!pls::observe::kEnabled) {
    GTEST_SKIP() << "observability compiled out";
  }
  const auto before = pls::observe::aggregate_counters();
  (void)pls::pipe(map([](std::int64_t v) { return v * 2; }))
      .over(iota(128))
      .to_vector();
  const auto delta = pls::observe::aggregate_counters() - before;
  EXPECT_GT(delta.fused_leaves, 0u) << "static chain fell back to wrappers";
}

TEST(StaticPipeline, SessionConfigRoundTrip) {
  pls::session s(pls::config{.parallelism = 2, .grain = 16});
  auto cfg = s.stream_config();
  auto pipeline = pls::pipe(map([](std::int64_t v) { return v + 3; }))
                      .over(iota(50))
                      .parallel(cfg);
  EXPECT_TRUE(pipeline.is_parallel());
  EXPECT_EQ(pipeline.config().min_chunk, 16u);
  EXPECT_EQ(pipeline.config().pool, &s.pool());
  auto out = std::move(pipeline).to_vector();
  ASSERT_EQ(out.size(), 50u);
  for (std::int64_t v = 0; v < 50; ++v) {
    EXPECT_EQ(out[static_cast<std::size_t>(v)], v + 3);
  }
}

TEST(StaticPipeline, ToStreamDissolvesExplicitly) {
  auto out = pls::pipe(map([](std::int64_t v) { return v * 2; }),
                       filter([](std::int64_t v) { return v > 10; }))
                 .over(iota(10))
                 .to_stream()
                 .to_vector();
  EXPECT_EQ(out, (std::vector<std::int64_t>{12, 14, 16, 18}));
}

TEST(StaticPipeline, OverRangeAndShared) {
  auto shared = std::make_shared<const std::vector<std::int64_t>>(iota(16));
  auto a = pls::pipe(map([](std::int64_t v) { return v + 1; }))
               .over_shared(shared)
               .to_vector();
  auto b = pls::pipe(map([](std::int64_t v) { return v + 1; }))
               .over_range<std::int64_t>(0, 16)
               .to_vector();
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 16u);
  EXPECT_EQ(a.front(), 1);
  EXPECT_EQ(a.back(), 16);
}

// ---- unified evaluate() dispatch (the deprecation satellite) ----------

TEST(UnifiedEvaluate, TerminalDescriptorsMatchStreamTerminals) {
  const auto data = iota(40);
  {
    std::unique_ptr<streams::Spliterator<std::int64_t>> sp =
        std::make_unique<streams::ArraySpliterator<std::int64_t>>(
            std::make_shared<const std::vector<std::int64_t>>(data));
    auto op = [](std::int64_t a, std::int64_t b) { return a + b; };
    auto r = streams::evaluate(sp, streams::terminals::reduce(op), false);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, 780);
  }
  {
    std::unique_ptr<streams::Spliterator<std::int64_t>> sp =
        std::make_unique<streams::ArraySpliterator<std::int64_t>>(
            std::make_shared<const std::vector<std::int64_t>>(data));
    EXPECT_EQ(streams::evaluate(sp, streams::terminals::count(), false), 40u);
  }
  {
    std::unique_ptr<streams::Spliterator<std::int64_t>> sp =
        std::make_unique<streams::ArraySpliterator<std::int64_t>>(
            std::make_shared<const std::vector<std::int64_t>>(data));
    std::int64_t sum = 0;
    streams::evaluate(
        sp,
        streams::terminals::for_each([&](const std::int64_t& v) { sum += v; }),
        false);
    EXPECT_EQ(sum, 780);
  }
}

TEST(UnifiedEvaluate, DeprecatedAliasesStillWork) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  std::unique_ptr<streams::Spliterator<std::int64_t>> sp =
      std::make_unique<streams::ArraySpliterator<std::int64_t>>(
          std::make_shared<const std::vector<std::int64_t>>(iota(10)));
  EXPECT_EQ(streams::evaluate(sp, streams::terminals::count(), false), 10u);
#pragma GCC diagnostic pop
}

}  // namespace
