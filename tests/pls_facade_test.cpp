// The pls:: facade: config -> session -> pools/executors/observability,
// and pls::run as the single entry point.
#include "pls.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace {

std::vector<long> iota(std::size_t n) {
  std::vector<long> v(n);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

TEST(Facade, RunWithoutSessionExecutesOnPool) {
  const long v = pls::run({}, [] { return 41L + 1L; });
  EXPECT_EQ(v, 42L);
}

TEST(Facade, SessionPoolHonoursParallelism) {
  pls::config cfg;
  cfg.parallelism = 3;
  pls::run(cfg, [&](pls::session& s) {
    EXPECT_EQ(s.pool().parallelism(), 3u);
    return 0;
  });
}

TEST(Facade, DefaultConfigBorrowsCommonPool) {
  pls::run({}, [](pls::session& s) {
    EXPECT_EQ(&s.pool(), &pls::forkjoin::ForkJoinPool::common());
    return 0;
  });
}

TEST(Facade, StreamConfigCarriesPoolAndGrain) {
  pls::config cfg;
  cfg.parallelism = 2;
  cfg.grain = 64;
  pls::run(cfg, [&](pls::session& s) {
    const auto ec = s.stream_config();
    EXPECT_EQ(ec.pool, &s.pool());
    EXPECT_EQ(ec.min_chunk, 64u);
    return 0;
  });
}

TEST(Facade, StreamConfigRoundTripsAllStreamOptionsLosslessly) {
  // Every stream-relevant session option must survive into the
  // ExecutionConfig — a config knob that silently drops out here is a
  // routing bug (the DPS/fusion toggles would be ignored).
  for (const bool sized_sink : {false, true}) {
    for (const bool fusion : {false, true}) {
      pls::config cfg;
      cfg.parallelism = 2;
      cfg.grain = 32;
      cfg.sized_sink = sized_sink;
      cfg.fusion = fusion;
      pls::run(cfg, [&](pls::session& s) {
        const auto ec = s.stream_config();
        EXPECT_EQ(ec.pool, &s.pool());
        EXPECT_EQ(ec.min_chunk, 32u);
        EXPECT_EQ(ec.sized_sink, sized_sink);
        EXPECT_EQ(ec.fusion, fusion);
        return 0;
      });
    }
  }
}

TEST(Facade, SharedBuilderChainsOnExecutionConfig) {
  pls::forkjoin::ForkJoinPool pool(2);
  const auto ec = pls::streams::ExecutionConfig{}
                      .with_pool(pool)
                      .with_min_chunk(7)
                      .with_sized_sink(false)
                      .with_fusion(false);
  EXPECT_EQ(ec.pool, &pool);
  EXPECT_EQ(ec.min_chunk, 7u);
  EXPECT_FALSE(ec.sized_sink);
  EXPECT_FALSE(ec.fusion);
}

TEST(Facade, StreamPipelineThroughSession) {
  pls::config cfg;
  cfg.parallelism = 4;
  cfg.grain = 128;
  const long total = pls::run(cfg, [&](pls::session& s) {
    auto data = std::make_shared<const std::vector<long>>(iota(1 << 12));
    return pls::streams::Stream<long>::of_shared(data)
        .parallel(s.stream_config())
        .map([](long v) { return v * 2; })
        .reduce(0L, [](long a, long b) { return a + b; });
  });
  const long n = 1 << 12;
  EXPECT_EQ(total, n * (n + 1));
}

TEST(Facade, SkeletonExecutionThroughSession) {
  auto data = iota(1 << 10);
  pls::powerlist::ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  const auto view = pls::powerlist::view_of(std::as_const(data));
  pls::config cfg;
  cfg.parallelism = 4;
  cfg.grain = 16;
  const long expected = (1L << 10) * ((1L << 10) + 1) / 2;
  const long got = pls::run(
      cfg, [&](pls::session& s) { return s.execute(sum, view); });
  EXPECT_EQ(got, expected);
}

TEST(Facade, ReportedExecutionFillsShapeAndCounters) {
  auto data = iota(1 << 10);
  pls::powerlist::ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  const auto view = pls::powerlist::view_of(std::as_const(data));
  pls::config cfg;
  cfg.parallelism = 2;
  cfg.grain = 64;
  pls::run(cfg, [&](pls::session& s) {
    const auto report = s.execute_reported(sum, view);
    EXPECT_EQ(report.result, (1L << 10) * ((1L << 10) + 1) / 2);
    EXPECT_EQ(report.stats.basic_cases, 16u);  // 1024/64
    EXPECT_EQ(report.stats.max_depth, 4u);
    EXPECT_FALSE(report.simulated);
    if (pls::observe::kEnabled) {
      EXPECT_EQ(report.counters.splits, 15u);
      EXPECT_EQ(report.counters.combines, 15u);
      EXPECT_EQ(report.counters.leaf_chunks, 16u);
      EXPECT_EQ(report.counters.elements_accumulated, 1u << 10);
    }
    return 0;
  });
}

TEST(Facade, SessionCountersDeltaAfterWork) {
  if (!pls::observe::kEnabled) GTEST_SKIP() << "observability compiled out";
  auto data = iota(1 << 10);
  pls::powerlist::ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  const auto view = pls::powerlist::view_of(std::as_const(data));
  pls::config cfg;
  cfg.parallelism = 2;
  cfg.grain = 32;
  pls::run(cfg, [&](pls::session& s) {
    (void)s.execute(sum, view);
    const auto delta = s.counters();
    EXPECT_GT(delta.tasks_executed, 0u);
    EXPECT_EQ(delta.leaf_chunks, 32u);
    return 0;
  });
}

TEST(Facade, ObserveSessionProducesTrace) {
  if (!pls::observe::kEnabled) GTEST_SKIP() << "observability compiled out";
  pls::observe::TraceRecorder::global().clear();
  auto data = iota(1 << 8);
  pls::powerlist::ReduceFunction<long, std::plus<long>> sum{std::plus<long>{}};
  const auto view = pls::powerlist::view_of(std::as_const(data));
  pls::config cfg;
  cfg.parallelism = 2;
  cfg.grain = 16;
  cfg.observe = true;
  const std::string json = pls::run(cfg, [&](pls::session& s) {
    (void)s.execute(sum, view);
    return s.trace_json();
  });
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"combine\""), std::string::npos);
  // The session turned tracing on for its scope only.
  EXPECT_FALSE(pls::observe::TraceRecorder::global().enabled());
  pls::observe::TraceRecorder::global().clear();
}

}  // namespace
