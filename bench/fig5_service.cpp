// FIG5 — the streaming-service layer under load (src/service/,
// docs/service.md): a sessions × micro-batch-size sweep over the
// ServiceDriver on the default (common) ForkJoinPool.
//
// Each row is one session count S (a power of two; the acceptance sweep
// reaches S = 1024 concurrent sessions). For every micro-batch cap B in
// the sweep the harness, per repetition:
//   1. opens S sessions from one SessionSpec (map stage, tumbling window
//      of 32, summing collector — the fused chain is planned once per
//      session and reused per batch);
//   2. offers kElemsPerSession elements to every session, round-robin in
//      chunks, pumping the driver as it goes so drains overlap ingest;
//   3. drain_all() as the quiescence barrier, wall-clocks the whole run.
// Reported per (S, B): drain wall time (drain_b<B>_* stats fields),
// sustained throughput in million elements/second, and the per-batch
// service-time histogram merged across all S sessions (p50/p99 ns, from
// the same per-session histograms the driver exports as metrics).
//
// Row keys: log2_n = log2(S), n = S — unique per row, so
// bench/regress.py matches rows across runs by session count.
//
// Sizes flag: --sizes 2^A..2^B sweeps S = 2^A .. 2^B. When the range is
// left at the harness default (an element-count range meant for the
// figure benches, 2^20+), the sweep falls back to S = 1,4,...,1024.
//
// Shape to expect: wall time grows ~linearly with S at fixed total
// offered work per session; larger micro-batches amortise per-drive
// overhead, so batch 256 sits below batch 64 in per-element cost while
// its per-batch latency quantiles sit higher (more elements per drive).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "observe/histogram.hpp"
#include "pls.hpp"
#include "support/table.hpp"

namespace {

constexpr std::size_t kWindow = 32;
constexpr std::size_t kElemsPerSession = 4096;
constexpr std::size_t kOfferChunk = 64;
constexpr std::size_t kBatchSweep[] = {64, 256};
constexpr std::size_t kMaxSessionsLog2 = 10;  // 1024: the acceptance point

struct ServiceRunResult {
  double wall_ms = 0.0;
  pls::observe::HistogramSnapshot latency;  ///< per-batch, all sessions
  std::uint64_t batches = 0;
  std::uint64_t windows = 0;
};

ServiceRunResult run_service(std::size_t sessions, std::size_t max_batch,
                             const std::vector<double>& input) {
  namespace service = pls::service;
  namespace streams = pls::streams;

  const auto spec =
      service::pipeline(pls::stages::map([](double v) { return v * 1.5 + 0.25; }))
          .window(kWindow)
          .batch(max_batch)
          .configure(streams::ExecutionConfig{}.with_queue_capacity(
              2 * kElemsPerSession))
          .collect(streams::collectors::summing<double>());

  service::ServiceDriver driver;  // default pool
  using SessionPtr = decltype(spec.open<double>(driver));
  std::vector<SessionPtr> conns;
  conns.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    conns.push_back(spec.open<double>(driver));
  }

  ServiceRunResult out;
  pls::Stopwatch sw;
  // Round-robin ingest in chunks, pumping so drains overlap offers.
  for (std::size_t off = 0; off < kElemsPerSession; off += kOfferChunk) {
    const std::size_t n =
        std::min(kOfferChunk, kElemsPerSession - off);
    for (auto& c : conns) c->offer_all(input.data() + off, n);
    driver.pump();
  }
  driver.drain_all();
  out.wall_ms = sw.elapsed_ms();

  double checksum = 0.0;
  for (auto& c : conns) {
    out.latency += c->latency();
    out.batches += c->batches_run();
    const auto windows = c->take_results();
    out.windows += windows.size();
    for (const double w : windows) checksum += w;
  }
  pls::bench::keep(checksum);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (!pls::bench::parse_args(argc, argv)) return 1;
  const int reps = pls::bench::repetitions();

  // Session sweep: --sizes names session-count exponents directly; the
  // harness default range (element counts, >= 2^13) means "not set".
  unsigned lg_lo = pls::bench::min_log2();
  unsigned lg_hi = pls::bench::max_log2();
  unsigned lg_step = 1;
  if (lg_hi > kMaxSessionsLog2 + 2) {
    lg_lo = 0;
    lg_hi = kMaxSessionsLog2;
    lg_step = 2;  // 1, 4, 16, 64, 256, 1024
  }

  std::vector<double> input(kElemsPerSession);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<double>(i % 97) * 0.125 - 3.0;
  }

  pls::TextTable table({"log2(S)", "sessions", "batch", "wall_ms", "rsd",
                        "Melem/s", "batches", "lat_p50_us", "lat_p99_us"});
  std::vector<std::string> json_rows;

  for (unsigned lg = lg_lo; lg <= lg_hi; lg += lg_step) {
    const std::size_t sessions = std::size_t{1} << lg;
    pls::bench::JsonObject row;
    row.field("log2_n", lg).field("n", static_cast<std::uint64_t>(sessions))
        .field("sessions", static_cast<std::uint64_t>(sessions))
        .field("elems_per_session",
               static_cast<std::uint64_t>(kElemsPerSession));

    for (const std::size_t batch : kBatchSweep) {
      ServiceRunResult last;
      const auto stats = pls::bench::time_ms(
          [&] { last = run_service(sessions, batch, input); }, reps);

      const double total_elems =
          static_cast<double>(sessions * kElemsPerSession);
      const double meps = total_elems / (stats.median * 1e3);  // Melem/s
      const double ns = pls::observe::kEnabled ? pls::observe::ns_per_tick()
                                               : 1.0;
      const double p50_ns = last.latency.quantile(0.5, ns);
      const double p99_ns = last.latency.quantile(0.99, ns);

      table.add_row({std::to_string(lg), std::to_string(sessions),
                     std::to_string(batch),
                     pls::TextTable::num(stats.median),
                     pls::TextTable::num(stats.rel_stddev(), 3),
                     pls::TextTable::num(meps),
                     std::to_string(last.batches),
                     pls::TextTable::num(p50_ns / 1e3),
                     pls::TextTable::num(p99_ns / 1e3)});

      const std::string prefix = "drain_b" + std::to_string(batch) + "_";
      pls::bench::stats_fields(row, prefix, stats);
      row.field(prefix + "melem_per_s", meps)
          .field(prefix + "batches", last.batches)
          .field(prefix + "windows", last.windows)
          .field(prefix + "lat_p50_ns", p50_ns)
          .field(prefix + "lat_p99_ns", p99_ns)
          .field(prefix + "lat_count", last.latency.total);
    }
    json_rows.push_back(row.str());
  }

  table.print();

  pls::bench::JsonObject doc;
  doc.field("schema", pls::bench::kBenchSchemaVersion)
      .field("bench", "fig5_service")
      .field("window", static_cast<std::uint64_t>(kWindow))
      .field("elems_per_session",
             static_cast<std::uint64_t>(kElemsPerSession))
      .field("repetitions", static_cast<unsigned>(reps))
      .field("observe", pls::observe::kEnabled ? 1u : 0u)
      .raw("rows", pls::bench::Json::arr(json_rows));
  const std::string json_path = pls::bench::bench_json_path("fig5_service");
  pls::bench::write_json_file(json_path, doc.str());
  std::printf("\nper-run metrics: %s\n", json_path.c_str());
  std::printf(
      "\nexpected shape: wall time ~linear in session count; larger\n"
      "micro-batches cost less per element but more per batch (higher\n"
      "latency quantiles); the 1024-session row is the acceptance point.\n");
  return 0;
}
