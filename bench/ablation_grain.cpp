// ABL-GRAIN — ablation of the split-stop threshold.
//
// Section V: "The basic cases should be treated carefully since we don't
// have control over the level at which parallel decomposition stops."
// This bench shows exactly what that control is worth: the polynomial
// evaluation's task tree simulated on P cores while the leaf size sweeps
// 2^4 .. 2^18 for a fixed n = 2^22.
// Expected shape: a U-curve — tiny leaves drown in spawn/steal overhead,
// huge leaves starve the processors (fewer chunks than cores); the flat
// valley around n/(4P) is why Java's AbstractTask picks that default.
#include <cstdio>
#include <string>

#include "bench/common.hpp"
#include "powerlist/algorithms/polynomial.hpp"
#include "powerlist/executors.hpp"
#include "simmachine/scheduler.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  if (!pls::bench::parse_args(argc, argv)) return 2;
  const unsigned cores = pls::bench::simulated_cores();
  const std::size_t n = std::size_t{1} << 22;

  pls::Xoshiro256 rng(7);
  std::vector<double> coeffs(n);
  for (auto& c : coeffs) c = rng.next_double() - 0.5;

  std::printf("ABL-GRAIN: leaf-size ablation, polynomial evaluation, "
              "n=2^22, P=%u simulated cores\n\n", cores);

  pls::powerlist::PolynomialFunction<double> vp;
  pls::simmachine::CostModel model;  // default overheads, 1 ns/op
  pls::simmachine::Simulator sim(model, cores);

  pls::TextTable table({"leaf_size", "chunks", "sim_ms", "speedup",
                        "utilization", "steals"});

  double t1 = 0.0;
  {
    // Sequential reference: one leaf covering everything.
    const auto ex = pls::powerlist::execute_simulated(
        pls::simmachine::Simulator(model, 1), vp,
        pls::powerlist::view_of(coeffs), 0.999999, n);
    t1 = ex.sim.makespan_ns;
  }

  for (unsigned lg : {4u, 6u, 8u, 10u, 12u, 14u, 16u, 18u, 19u, 20u, 21u,
                      22u}) {
    const std::size_t leaf = std::size_t{1} << lg;
    const auto ex = pls::powerlist::execute_simulated(
        sim, vp, pls::powerlist::view_of(coeffs), 0.999999, leaf);
    pls::bench::keep(ex.result);
    table.add_row({std::to_string(leaf), std::to_string(n / leaf),
                   pls::TextTable::num(ex.sim.makespan_ns / 1e6),
                   pls::TextTable::num(t1 / ex.sim.makespan_ns, 2),
                   pls::TextTable::num(ex.sim.utilization(), 3),
                   std::to_string(ex.sim.steals)});
  }

  table.print();
  const std::size_t java_default = n / (4ull * cores);
  std::printf("\nJava-style default target for this configuration: "
              "n/(4P) = %zu.\nexpected shape: U-curve with its valley "
              "around that default.\n", java_default);
  return 0;
}
