// SEC2-FFT — Section II/V: the FFT as the motivating two-operator
// PowerList function, with the leaf (basic-case) specialisation.
//
// Wall-clock series (google-benchmark):
//   powerlist FFT, sequential executor, leaf sizes 1 and 16
//     (the leaf-16 variant shows the cost of direct-DFT leaves, the
//      "sequential computation on sublists" of Section V);
//   iterative in-place radix-2 FFT (the conventional optimised baseline);
//   naive DFT (small sizes only, the O(n^2) anchor).
// Followed by a simulated-speedup series for the PowerList FFT task tree.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "powerlist/algorithms/fft.hpp"
#include "powerlist/executors.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pls::powerlist;

std::vector<Complex> signal(std::size_t n) {
  pls::Xoshiro256 rng(n);
  std::vector<Complex> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.emplace_back(rng.next_double() - 0.5, rng.next_double() - 0.5);
  }
  return v;
}

void BM_PowerlistFftLeaf1(benchmark::State& state) {
  const auto x = signal(static_cast<std::size_t>(state.range(0)));
  FftFunction fft;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        execute_sequential(fft, view_of(x), {}, 1).size());
  }
}

void BM_PowerlistFftLeaf16(benchmark::State& state) {
  const auto x = signal(static_cast<std::size_t>(state.range(0)));
  FftFunction fft;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        execute_sequential(fft, view_of(x), {}, 16).size());
  }
}

void BM_IterativeFft(benchmark::State& state) {
  const auto x = signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto copy = x;
    fft_in_place(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}

void BM_NaiveDft(benchmark::State& state) {
  const auto x = signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dft(view_of(x)).size());
  }
}

void report_simulated_speedups() {
  std::printf("\nSimulated parallel speedups of the PowerList FFT task "
              "tree (leaf size 16):\n");
  pls::TextTable table({"n", "P=1", "P=2", "P=4", "P=8", "P=16"});
  FftFunction fft;
  for (unsigned lg : {12u, 14u, 16u}) {
    const auto x = signal(std::size_t{1} << lg);
    std::vector<std::string> row{std::to_string(x.size())};
    double t1 = 0.0;
    for (unsigned p : {1u, 2u, 4u, 8u, 16u}) {
      pls::simmachine::Simulator sim(pls::simmachine::CostModel{}, p);
      const auto ex = execute_simulated(sim, fft, view_of(x), {}, 16);
      if (p == 1) t1 = ex.sim.makespan_ns;
      row.push_back(pls::TextTable::num(t1 / ex.sim.makespan_ns, 2));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("expected shape: near-linear until the O(n) top-level "
              "combines bound the span.\n");
}

}  // namespace

BENCHMARK(BM_PowerlistFftLeaf1)->RangeMultiplier(4)->Range(1 << 8, 1 << 14)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_PowerlistFftLeaf16)->RangeMultiplier(4)->Range(1 << 8, 1 << 14)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_IterativeFft)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_NaiveDft)->RangeMultiplier(4)->Range(1 << 6, 1 << 10)->UseRealTime()->MinTime(0.05);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_simulated_speedups();
  return 0;
}
