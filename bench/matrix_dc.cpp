// EXT-MATRIX — the related-work direction ([3] Anand & Shyamasundar:
// PowerLists scheduling partitioned matrices): quadrant D&C kernels on
// the shared-memory substrate — wall-clock vs the naive kernels, plus
// simulated-multicore speedups of the quadrant multiplication tree.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "powerlist/algorithms/matrix.hpp"
#include "simmachine/scaling.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pls::powerlist;

Matrix random_matrix(std::size_t n, std::uint64_t seed) {
  pls::Xoshiro256 rng(seed);
  Matrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m.at(i, j) = rng.next_double() - 0.5;
    }
  }
  return m;
}

void BM_MatmulNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, 1), b = random_matrix(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_naive(a, b).order());
  }
}

void BM_MatmulDc(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, 1), b = random_matrix(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_dc(a, b, 32).order());
  }
}

void BM_TransposeDc(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transpose_dc(a, 32).order());
  }
}

void BM_MatvecDc(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, 5);
  std::vector<double> x(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matvec_dc(a, x, 64).size());
  }
}

/// Simulated speedup of the quadrant multiplication: the task tree has
/// 8 children per node (two sequenced rounds of 4 parallel tasks), which
/// the binary trace hosts as round = fork-chain of 4.
pls::simmachine::TaskTrace::NodeId build_matmul_tree(
    pls::simmachine::TaskTrace& trace, std::size_t n, std::size_t leaf) {
  if (n <= leaf) {
    return trace.add_leaf(2.0 * static_cast<double>(n) *
                          static_cast<double>(n) * static_cast<double>(n));
  }
  const auto round = [&] {
    pls::simmachine::TaskTrace::NodeId acc =
        build_matmul_tree(trace, n / 2, leaf);
    for (int k = 1; k < 4; ++k) {
      acc = trace.add_fork(0.0, 0.0, acc,
                           build_matmul_tree(trace, n / 2, leaf));
    }
    return acc;
  };
  const auto r0 = round();
  const auto r1 = round();
  // Sequenced rounds: model as a fork whose "combine" carries round 2's
  // span... the simulator has no series composition, so chain via a fork
  // with zero-cost parent — conservative (allows overlap) but close: the
  // disjoint-destination structure does allow overlapping rounds of
  // *different* subtrees.
  return trace.add_fork(0.0, 0.0, r0, r1);
}

void report_simulated_speedups() {
  std::printf("\nSimulated speedups of quadrant matmul (leaf 32):\n");
  pls::TextTable table({"order", "P=2", "P=4", "P=8", "P=16"});
  for (std::size_t n : {128u, 256u, 512u}) {
    pls::simmachine::TaskTrace trace;
    trace.set_root(build_matmul_tree(trace, n, 32));
    const auto curve = pls::simmachine::scaling_curve(
        trace, pls::simmachine::CostModel{}, {2, 4, 8, 16});
    std::vector<std::string> row{std::to_string(n)};
    for (const auto& p : curve.points) {
      row.push_back(pls::TextTable::num(p.speedup, 2));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("expected shape: near-linear (abundant uniform leaves,\n"
              "O(1) joins) — the matmul tree is embarrassingly wide.\n");
}

}  // namespace

BENCHMARK(BM_MatmulNaive)->RangeMultiplier(2)->Range(64, 256)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_MatmulDc)->RangeMultiplier(2)->Range(64, 512)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_TransposeDc)->RangeMultiplier(4)->Range(64, 1024)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_MatvecDc)->RangeMultiplier(4)->Range(64, 1024)->UseRealTime()->MinTime(0.05);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_simulated_speedups();
  return 0;
}
