// SEC5-A — Section V of the paper: "Definitions of the existing stream
// functions - as map or reduce - based on a ZipSpliterator could make
// sense in some performance tests where different memory access patterns
// for the elements could give some differences; depending on the system
// (caches, etc.) linear or cyclic data distributions could lead to better
// performance."
//
// This bench quantifies that claim: map and reduce over the same data
// through a TieSpliterator (linear access within chunks) versus a
// ZipSpliterator (strided access, stride = number of chunks), across
// sizes that move the working set through the cache hierarchy. Expected
// shape: tie and zip are comparable while the data fits in cache; once it
// spills, the zip (strided) traversal pays for its cache-line waste.
#include <benchmark/benchmark.h>

#include <memory>
#include <numeric>
#include <vector>

#include "powerlist/collector_functions.hpp"
#include "powerlist/spliterators.hpp"
#include "streams/stream.hpp"

namespace {

using pls::powerlist::TieSpliterator;
using pls::powerlist::ZipSpliterator;
namespace stream_support = pls::streams::stream_support;

std::shared_ptr<const std::vector<double>> payload(std::size_t n) {
  std::vector<double> v(n);
  std::iota(v.begin(), v.end(), 0.0);
  return std::make_shared<const std::vector<double>>(std::move(v));
}

template <typename Sp>
void reduce_via(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = payload(n);
  for (auto _ : state) {
    auto sp = std::make_unique<Sp>(data);
    auto stream =
        stream_support::from_spliterator<double>(std::move(sp), true);
    const double sum = std::move(stream).with_min_chunk(n / 64).reduce(
        0.0, [](double a, double b) { return a + b; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_ReduceTie(benchmark::State& state) {
  reduce_via<TieSpliterator<double>>(state);
}
void BM_ReduceZip(benchmark::State& state) {
  reduce_via<ZipSpliterator<double>>(state);
}

template <typename Sp>
void map_via(benchmark::State& state, pls::powerlist::DecompositionOp op) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = payload(n);
  for (auto _ : state) {
    auto sp = std::make_unique<Sp>(data);
    auto stream =
        stream_support::from_spliterator<double>(std::move(sp), true);
    const auto out =
        std::move(stream)
            .with_min_chunk(n / 64)
            .collect(pls::powerlist::power_map_collector<double>(
                [](const double& d) { return d * 1.0001 + 1.0; }, op));
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_MapTie(benchmark::State& state) {
  map_via<TieSpliterator<double>>(state,
                                  pls::powerlist::DecompositionOp::kTie);
}
void BM_MapZip(benchmark::State& state) {
  map_via<ZipSpliterator<double>>(state,
                                  pls::powerlist::DecompositionOp::kZip);
}

// Raw traversal of the split sublists, isolating the access pattern from
// collection overhead: linear halves vs strided residue sequences.
void BM_TraverseTieChunks(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = payload(n);
  for (auto _ : state) {
    double sum = 0.0;
    TieSpliterator<double> sp(data);
    std::vector<std::unique_ptr<pls::streams::Spliterator<double>>> parts;
    // Six self-splits: 7 chunks, the last with stride 64 for zip.
    for (int i = 0; i < 6; ++i) parts.push_back(sp.try_split());
    for (auto& p : parts) {
      p->for_each_remaining([&](const double& d) { sum += d; });
    }
    sp.for_each_remaining([&](const double& d) { sum += d; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_TraverseZipChunks(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = payload(n);
  for (auto _ : state) {
    double sum = 0.0;
    ZipSpliterator<double> sp(data);
    std::vector<std::unique_ptr<pls::streams::Spliterator<double>>> parts;
    for (int i = 0; i < 6; ++i) parts.push_back(sp.try_split());
    // After six zip self-splits the kept suffix walks stride 64.
    for (auto& p : parts) {
      p->for_each_remaining([&](const double& d) { sum += d; });
    }
    sp.for_each_remaining([&](const double& d) { sum += d; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

}  // namespace

BENCHMARK(BM_ReduceTie)->RangeMultiplier(4)->Range(1 << 14, 1 << 22)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_ReduceZip)->RangeMultiplier(4)->Range(1 << 14, 1 << 22)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_MapTie)->RangeMultiplier(4)->Range(1 << 14, 1 << 20)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_MapZip)->RangeMultiplier(4)->Range(1 << 14, 1 << 20)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_TraverseTieChunks)->RangeMultiplier(4)->Range(1 << 14, 1 << 22)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_TraverseZipChunks)->RangeMultiplier(4)->Range(1 << 14, 1 << 22)->UseRealTime()->MinTime(0.05);

BENCHMARK_MAIN();
