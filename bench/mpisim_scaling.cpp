// EXT-MPI — Section III's scalability claim: "The MPI executors
// facilitate a much larger scalability and so better performance."
//
// Reproduced over the message-passing simulation: the polynomial
// evaluation and a reduce distributed over 2..64 simulated ranks, under
// three network models (fast / default / slow), reporting simulated
// completion time, speedup over one rank, and the communication share.
// Expected shape: near-linear speedup while local compute dominates,
// flattening as the log2(P) hypercube rounds' latency grows relative to
// the shrinking local work — earlier on the slow network.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "mpisim/power_executor.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pls::mpisim;

std::vector<double> coefficients(std::size_t n) {
  pls::Xoshiro256 rng(2026);
  std::vector<double> c(n);
  for (auto& v : c) v = rng.next_double() - 0.5;
  return c;
}

void run_series(const char* label, const NetworkModel& net, std::size_t n,
                double ns_per_op) {
  const auto coeffs = coefficients(n);
  std::printf("\n[%s] alpha=%.0fns beta=%.2fns/B, n=%zu, ns/op=%.1f\n",
              label, net.alpha_ns, net.beta_ns_per_byte, n, ns_per_op);
  pls::TextTable table({"ranks", "sim_ms", "speedup", "comm_share",
                        "msgs/rank"});
  double t1 = 0.0;
  for (int p : {1, 2, 4, 8, 16, 32, 64}) {
    World world(p, net);
    double comm_total = 0.0;
    double clock_total = 0.0;
    std::uint64_t msgs = 0;
    const auto stats = world.run([&](Comm& comm) {
      pls::bench::keep(mpi_polynomial_eval(comm, coeffs, 0.99999, ns_per_op));
    });
    for (const auto& s : stats) {
      comm_total += s.comm_ns;
      clock_total += s.clock_ns;
      msgs += s.messages;
    }
    const double t = world.simulated_time_ns();
    if (p == 1) t1 = t;
    table.add_row({std::to_string(p), pls::TextTable::num(t / 1e6),
                   pls::TextTable::num(t1 / t, 2),
                   pls::TextTable::num(
                       clock_total > 0 ? comm_total / clock_total : 0.0, 3),
                   std::to_string(msgs / static_cast<std::uint64_t>(p))});
  }
  table.print();
}

void run_reduce_series(std::size_t n) {
  const auto coeffs = coefficients(n);
  std::printf("\n[reduce, default network] n=%zu, block vs cyclic "
              "distribution\n", n);
  pls::TextTable table({"ranks", "block_sim_ms", "cyclic_sim_ms"});
  for (int p : {1, 2, 4, 8, 16, 32}) {
    double times[2] = {0.0, 0.0};
    int idx = 0;
    for (auto dist : {Distribution::kBlock, Distribution::kCyclic}) {
      World world(p);
      world.run([&](Comm& comm) {
        pls::bench::keep(mpi_reduce(comm, coeffs, std::plus<double>{}, dist,
                                    /*ns_per_op=*/1.0));
      });
      times[idx++] = world.simulated_time_ns();
    }
    table.add_row({std::to_string(p), pls::TextTable::num(times[0] / 1e6),
                   pls::TextTable::num(times[1] / 1e6)});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  if (!pls::bench::parse_args(argc, argv)) return 2;
  std::printf("EXT-MPI: JPLF-style MPI executor scaling over the "
              "message-passing simulation\n");

  const std::size_t n = std::size_t{1} << 22;

  NetworkModel fast;  // tightly-coupled cluster
  fast.alpha_ns = 500.0;
  fast.beta_ns_per_byte = 0.1;
  NetworkModel slow;  // commodity ethernet
  slow.alpha_ns = 20000.0;
  slow.beta_ns_per_byte = 8.0;

  run_series("fast network", fast, n, 1.0);
  run_series("default network", NetworkModel{}, n, 1.0);
  run_series("slow network", slow, n, 1.0);
  run_reduce_series(n);

  std::printf(
      "\npaper reference (Section III): MPI executors scale beyond the\n"
      "single-node thread pool; the trend holds while per-rank work\n"
      "dominates the log2(P) combine rounds.\n");
  return 0;
}
