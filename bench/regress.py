#!/usr/bin/env python3
"""Continuous-benchmark regression gate over the schema-2 bench JSON.

The bench binaries (fig3_speedup, fig4_times, ...) emit BENCH_<name>.json
documents: {"schema": 2, "bench": ..., "rows": [{"log2_n": ..,
"seq_p50_ms": .., "par_wall_p50_ms": .., ...}]}. This script compares a
fresh run against a committed baseline and fails when any p50 series
regressed beyond a threshold.

Usage:
  regress.py summary CURRENT.json
      Print the p50 series of a result file.

  regress.py --compare BASELINE.json CURRENT.json \
      [--warn-pct 5] [--fail-pct 10] [--metrics seq_p50_ms,par_wall_p50_ms]
      Compare row-by-row (matched on log2_n). Deltas above --warn-pct are
      reported as warnings; any delta above --fail-pct makes the exit
      status non-zero. CI runs with --warn-pct 10 --fail-pct 25 so shared
      -runner noise warns early but only large regressions break the build.

  regress.py --self-test
      Exercise the compare logic on synthetic data (a 12% p50 regression
      must fail at the default 10% gate, an unchanged run must pass).
      Registered as a tier-1 ctest so the gate itself is gated.

Exit codes: 0 ok (warnings allowed), 1 regression above --fail-pct,
2 usage / malformed input.
"""

import argparse
import json
import sys

SCHEMA_SUPPORTED = (1, 2)

# Series compared by default: every "*_p50_ms" key found in both files.
# --metrics restricts this to an explicit comma-separated list.
P50_SUFFIX = "_p50_ms"


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"regress: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    schema = doc.get("schema")
    if schema not in SCHEMA_SUPPORTED:
        print(f"regress: {path}: unsupported schema {schema!r} "
              f"(supported: {SCHEMA_SUPPORTED})", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc.get("rows"), list):
        print(f"regress: {path}: missing rows[]", file=sys.stderr)
        sys.exit(2)
    return doc


def row_key(row):
    return row.get("log2_n", row.get("n"))


def p50_metrics(row):
    return sorted(k for k, v in row.items()
                  if k.endswith(P50_SUFFIX) and isinstance(v, (int, float)))


def compare_docs(baseline, current, warn_pct, fail_pct, metrics=None,
                 out=sys.stdout):
    """Compare two loaded documents. Returns (n_warn, n_fail)."""
    base_rows = {row_key(r): r for r in baseline["rows"]}
    n_warn = n_fail = 0
    header_shown = False
    for row in current["rows"]:
        key = row_key(row)
        base = base_rows.get(key)
        if base is None:
            print(f"  [new] row log2_n={key} has no baseline; skipped",
                  file=out)
            continue
        keys = metrics or [m for m in p50_metrics(row) if m in base]
        for m in keys:
            if m not in base or m not in row:
                continue
            # metrics_* keys are continuous-telemetry series (sampler
            # timestamps, pool utilization): they describe the run
            # environment, not the benchmarked figure, and are never
            # gated — even when named by --metrics.
            if m.startswith("metrics_"):
                continue
            # Schema-2 rows carry non-numeric plan_* fields (plan_drive,
            # plan_fusion_reason, ...); comparison only makes sense for
            # numbers, so skip anything else even when named by --metrics.
            if not all(isinstance(v, (int, float)) and
                       not isinstance(v, bool)
                       for v in (base[m], row[m])):
                continue
            b, c = float(base[m]), float(row[m])
            if b <= 0.0:
                continue
            delta_pct = 100.0 * (c - b) / b
            status = "ok"
            if delta_pct > fail_pct:
                status = "FAIL"
                n_fail += 1
            elif delta_pct > warn_pct:
                status = "warn"
                n_warn += 1
            if not header_shown:
                print(f"  {'log2_n':>7} {'metric':<24} {'base':>10} "
                      f"{'current':>10} {'delta':>8}", file=out)
                header_shown = True
            print(f"  {key!s:>7} {m:<24} {b:>10.4f} {c:>10.4f} "
                  f"{delta_pct:>+7.1f}% {status if status != 'ok' else ''}",
                  file=out)
    return n_warn, n_fail


def cmd_compare(args):
    baseline = load(args.baseline)
    current = load(args.current)
    metrics = args.metrics.split(",") if args.metrics else None
    print(f"regress: {args.current} vs baseline {args.baseline} "
          f"(warn >{args.warn_pct}%, fail >{args.fail_pct}%)")
    n_warn, n_fail = compare_docs(baseline, current, args.warn_pct,
                                  args.fail_pct, metrics)
    if n_fail:
        print(f"regress: FAIL — {n_fail} series regressed more than "
              f"{args.fail_pct}%")
        return 1
    if n_warn:
        print(f"regress: ok with {n_warn} warning(s) above {args.warn_pct}%")
    else:
        print("regress: ok — no regressions above thresholds")
    return 0


def cmd_summary(args):
    doc = load(args.current)
    print(f"bench={doc.get('bench')} schema={doc.get('schema')} "
          f"cores={doc.get('cores')} repetitions={doc.get('repetitions')}")
    for row in doc["rows"]:
        parts = [f"log2_n={row_key(row)}"]
        parts += [f"{m}={row[m]:.4f}" for m in p50_metrics(row)]
        print("  " + "  ".join(parts))
    return 0


def synthetic_doc(p50_scale):
    rows = []
    for lg, base in ((18, 1.00), (19, 2.00)):
        rows.append({
            "log2_n": lg,
            "seq_p50_ms": base * p50_scale,
            "par_wall_p50_ms": 0.5 * base * p50_scale,
        })
    return {"schema": 2, "bench": "selftest", "rows": rows}


def cmd_self_test(_args):
    base = synthetic_doc(1.0)
    import io

    # A 12% p50 regression must trip the default 10% gate.
    _, n_fail = compare_docs(base, synthetic_doc(1.12), warn_pct=5,
                             fail_pct=10, out=io.StringIO())
    if n_fail == 0:
        print("self-test FAIL: 12% regression not detected at fail-pct=10")
        return 1

    # An unchanged run must pass cleanly.
    n_warn, n_fail = compare_docs(base, synthetic_doc(1.0), warn_pct=5,
                                  fail_pct=10, out=io.StringIO())
    if n_warn or n_fail:
        print("self-test FAIL: unchanged run reported a regression")
        return 1

    # An improvement must pass, and a 7% slip warns without failing.
    n_warn, n_fail = compare_docs(base, synthetic_doc(0.9), warn_pct=5,
                                  fail_pct=10, out=io.StringIO())
    if n_warn or n_fail:
        print("self-test FAIL: improvement reported as a regression")
        return 1
    n_warn, n_fail = compare_docs(base, synthetic_doc(1.07), warn_pct=5,
                                  fail_pct=10, out=io.StringIO())
    if n_fail or n_warn == 0:
        print("self-test FAIL: 7% slip should warn (not fail) at 5/10")
        return 1

    print("self-test ok: gate fails >10%, warns >5%, passes otherwise")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--compare", action="store_true",
                    help="compare CURRENT against BASELINE")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in gate self-test")
    ap.add_argument("--warn-pct", type=float, default=5.0,
                    help="warn when a p50 series slows by more than this %%")
    ap.add_argument("--fail-pct", type=float, default=10.0,
                    help="fail when a p50 series slows by more than this %%")
    ap.add_argument("--metrics", default=None,
                    help="comma-separated metric keys (default: all *_p50_ms)")
    ap.add_argument("files", nargs="*",
                    help="summary: CURRENT.json; --compare: BASELINE.json "
                         "CURRENT.json (or positional 'summary' CURRENT.json)")
    args = ap.parse_args(argv)

    if args.self_test:
        return cmd_self_test(args)
    if args.compare:
        if len(args.files) != 2:
            ap.error("--compare needs BASELINE.json and CURRENT.json")
        args.baseline, args.current = args.files
        return cmd_compare(args)
    files = args.files
    if files and files[0] == "summary":
        files = files[1:]
    if len(files) != 1:
        ap.error("summary mode needs exactly one CURRENT.json")
    args.current = files[0]
    return cmd_summary(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
