// ABL-TUPLE — the function transformation of the paper's reference [22]
// (Niculescu & Loulergue, HLPP 2018), which Section II invokes: "there
// are many cases when function transformations could be applied — such as
// tupling — in order to eliminate these additional computations" at the
// descending phase.
//
// Compared here on the polynomial workload:
//   eq4       — zip decomposition, context squared on the way down
//               (strided leaf traversal);
//   tupled    — tie decomposition, (value, x^len) pairs built bottom-up
//               (linear leaf traversal, no descending work).
// Wall-clock sequential times plus simulated-multicore speedups of both
// task trees. Expected shape: same asymptotics, but the tupled form wins
// the constant factor on native arrays — it eliminates the descending
// phase AND switches the memory pattern from strided to linear.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "powerlist/algorithms/polynomial.hpp"
#include "powerlist/executors.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  if (!pls::bench::parse_args(argc, argv)) return 2;
  const int reps = pls::bench::repetitions();
  const unsigned cores = pls::bench::simulated_cores();

  std::printf("ABL-TUPLE: equation-4 (zip + descend) vs tupled (tie, no "
              "descend) polynomial evaluation\n\n");

  pls::powerlist::PolynomialFunction<double> eq4;
  pls::powerlist::TupledPolynomialFunction<double> tupled;
  pls::simmachine::CostModel model;

  pls::TextTable table({"log2(n)", "eq4_seq_ms", "tupled_seq_ms",
                        "tupled_gain", "eq4_sim_speedup",
                        "tupled_sim_speedup"});

  for (unsigned lg : {18u, 20u, 22u}) {
    const std::size_t n = std::size_t{1} << lg;
    pls::Xoshiro256 rng(lg);
    std::vector<double> coeffs(n);
    for (auto& c : coeffs) c = rng.next_double() - 0.5;
    const double x = 0.9999991;
    const std::size_t leaf = n / (4 * cores);

    const auto view = pls::powerlist::view_of(coeffs);
    const auto eq4_seq = pls::bench::time_ms(
        [&] {
          pls::bench::keep(
              pls::powerlist::execute_sequential(eq4, view, x, leaf));
        },
        reps);
    const auto tupled_seq = pls::bench::time_ms(
        [&] {
          pls::bench::keep(
              pls::powerlist::execute_sequential(tupled, view, x, leaf)
                  .value);
        },
        reps);

    const auto eq4_sim = pls::powerlist::execute_simulated(
        pls::simmachine::Simulator(model, cores), eq4, view, x, leaf);
    const auto eq4_sim1 = pls::powerlist::execute_simulated(
        pls::simmachine::Simulator(model, 1), eq4, view, x, leaf);
    const auto tup_sim = pls::powerlist::execute_simulated(
        pls::simmachine::Simulator(model, cores), tupled, view, x, leaf);
    const auto tup_sim1 = pls::powerlist::execute_simulated(
        pls::simmachine::Simulator(model, 1), tupled, view, x, leaf);

    table.add_row(
        {std::to_string(lg), pls::TextTable::num(eq4_seq.mean),
         pls::TextTable::num(tupled_seq.mean),
         pls::TextTable::num(eq4_seq.mean / tupled_seq.mean, 2),
         pls::TextTable::num(
             eq4_sim1.sim.makespan_ns / eq4_sim.sim.makespan_ns, 2),
         pls::TextTable::num(
             tup_sim1.sim.makespan_ns / tup_sim.sim.makespan_ns, 2)});
  }

  table.print();
  std::printf("\nexpected shape: tupled_gain > 1 (linear traversal, no\n"
              "descending phase); simulated speedups comparable (both\n"
              "trees are balanced with O(1) combines).\n");
  return 0;
}
