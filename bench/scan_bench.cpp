// SEC2-SCAN — prefix sums, one of the PowerList-expressible functions
// Section III enumerates. Wall-clock of the three constructions
// (sequential, Sklansky tie, Ladner-Fischer zip) plus simulated
// multicore speedups of the Sklansky task tree (whose O(n)-work combines
// cap its scalability — the contrast with map/reduce trees).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <numeric>
#include <vector>

#include "powerlist/algorithms/scan.hpp"
#include "powerlist/executors.hpp"
#include "simmachine/scaling.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pls::powerlist;

std::vector<long> payload(std::size_t n) {
  pls::Xoshiro256 rng(n * 7 + 3);
  std::vector<long> v(n);
  for (auto& x : v) x = static_cast<long>(rng.next_below(1000));
  return v;
}

void BM_ScanSequential(benchmark::State& state) {
  const auto data = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scan_sequential(view_of(data), std::plus<long>{}).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ScanSklansky(benchmark::State& state) {
  const auto data = payload(static_cast<std::size_t>(state.range(0)));
  SklanskyScanFunction<long, std::plus<long>> f{std::plus<long>{}};
  const std::size_t leaf = data.size() / 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        execute_sequential(f, view_of(data), {}, std::max<std::size_t>(
                                                     1, leaf))
            .size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ScanLadnerFischer(benchmark::State& state) {
  const auto data = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scan_ladner_fischer(view_of(data), std::plus<long>{}).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void report_simulated_speedups() {
  std::printf("\nSimulated speedups of the Sklansky scan tree "
              "(128 leaves; combine updates half the node):\n");
  pls::TextTable table({"n", "P=2", "P=4", "P=8", "P=16"});
  for (unsigned lg : {14u, 16u, 18u}) {
    // The Sklansky tree: leaves scan sequentially (len ops), combines
    // update the right half and merge (len ops at a node of len).
    const auto trace = pls::simmachine::TaskTrace::balanced(
        7, std::size_t{1} << lg,
        [](std::size_t len) { return static_cast<double>(len); },
        [](std::size_t) { return 0.0; },
        [](std::size_t len) { return static_cast<double>(len); });
    const auto curve = pls::simmachine::scaling_curve(
        trace, pls::simmachine::CostModel{}, {2, 4, 8, 16});
    std::vector<std::string> row{std::to_string(std::size_t{1} << lg)};
    for (const auto& p : curve.points) {
      row.push_back(pls::TextTable::num(p.speedup, 2));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("expected shape: speedups cap well below P — the combine\n"
              "phase touches O(n) elements per level (Sklansky does\n"
              "O(n log n) total work), so the span stays Omega(n).\n");
}

}  // namespace

BENCHMARK(BM_ScanSequential)->RangeMultiplier(4)->Range(1 << 14, 1 << 20)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_ScanSklansky)->RangeMultiplier(4)->Range(1 << 14, 1 << 20)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_ScanLadnerFischer)->RangeMultiplier(4)->Range(1 << 14, 1 << 20)->UseRealTime()->MinTime(0.05);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_simulated_speedups();
  return 0;
}
