// EXT-PLIST — the multiway extension the paper proposes in Section V:
// trySplit returning a set of spliterators, enabling PList (n-way)
// divide-and-conquer inside the stream machinery.
//
// Two series:
//   wall-clock (google-benchmark): n-way reduce through the multiway
//     collect evaluator for arities 2/3/4/8 — the arity changes tree
//     depth and combine count, not total work, so times should be close,
//     with deep binary trees paying slightly more combine overhead;
//   simulated: PList mergesort arity sweep under the fork-join cost
//     model, showing how higher arity shortens the tree but grows each
//     combine (k-way merge), the classic multiway trade-off.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "plist/functions.hpp"
#include "plist/multiway_spliterator.hpp"
#include "simmachine/scheduler.hpp"
#include "streams/collector.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pls::plist;

std::shared_ptr<const std::vector<double>> payload(std::size_t n) {
  pls::Xoshiro256 rng(n + 5);
  std::vector<double> v(n);
  for (auto& d : v) d = rng.next_double();
  return std::make_shared<const std::vector<double>>(std::move(v));
}

void multiway_reduce(benchmark::State& state, std::size_t arity) {
  // 8^7 divides by 2, 4 and 8; 3-way uses 3^13-sized payload instead.
  const std::size_t n =
      arity == 3 ? 1594323 /* 3^13 */ : (std::size_t{1} << 21);
  const auto data = payload(n);
  auto summing = pls::streams::make_collector<double>(
      [] { return 0.0; }, [](double& acc, const double& v) { acc += v; },
      [](double& l, double& r) { l += r; });
  for (auto _ : state) {
    NTieSpliterator<double> sp(data);
    benchmark::DoNotOptimize(
        evaluate_collect_multiway(sp, summing, arity, true));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_MultiwayReduceArity2(benchmark::State& s) { multiway_reduce(s, 2); }
void BM_MultiwayReduceArity3(benchmark::State& s) { multiway_reduce(s, 3); }
void BM_MultiwayReduceArity4(benchmark::State& s) { multiway_reduce(s, 4); }
void BM_MultiwayReduceArity8(benchmark::State& s) { multiway_reduce(s, 8); }

// Simulated arity trade-off for mergesort: model the n-ary tree directly
// (the binary simulator hosts n-ary forks as left-leaning fork chains,
// which is also how the fork-join executor actually runs them).
pls::simmachine::TaskTrace::NodeId build_nary(
    pls::simmachine::TaskTrace& trace, std::size_t len, std::size_t arity,
    std::size_t leaf) {
  if (len <= leaf || len % arity != 0) {
    const double c = static_cast<double>(len) *
                     (1.0 + pls::floor_log2(std::max<std::size_t>(len, 2)));
    return trace.add_leaf(c);
  }
  std::vector<pls::simmachine::TaskTrace::NodeId> kids;
  for (std::size_t k = 0; k < arity; ++k) {
    kids.push_back(build_nary(trace, len / arity, arity, leaf));
  }
  // Left-leaning chain of binary forks; the k-way merge cost
  // n*log2(arity) attaches to the outermost combine.
  pls::simmachine::TaskTrace::NodeId acc = kids[0];
  for (std::size_t k = 1; k < arity; ++k) {
    const bool outer = (k + 1 == arity);
    const double merge_cost =
        outer ? static_cast<double>(len) *
                    (1.0 + pls::floor_log2(arity))
              : 0.0;
    acc = trace.add_fork(0.0, merge_cost, acc, kids[k]);
  }
  return acc;
}

void report_simulated_arity_tradeoff() {
  std::printf("\nSimulated mergesort arity trade-off (n=6^6*large, P=8):\n");
  pls::TextTable table({"arity", "sim_ms", "speedup_vs_seq", "utilization"});
  const std::size_t n = 46656ull * 16;  // 6^6 * 16: divides by 2,3,4,6,8...
  pls::simmachine::CostModel model;
  for (std::size_t arity : {2u, 3u, 4u, 6u, 8u}) {
    pls::simmachine::TaskTrace trace;
    trace.set_root(build_nary(trace, n, arity, 512));
    const auto seq = pls::simmachine::Simulator(model, 1).run(trace);
    const auto par = pls::simmachine::Simulator(model, 8).run(trace);
    table.add_row({std::to_string(arity),
                   pls::TextTable::num(par.makespan_ns / 1e6),
                   pls::TextTable::num(seq.makespan_ns / par.makespan_ns, 2),
                   pls::TextTable::num(par.utilization(), 3)});
  }
  table.print();
  std::printf("expected shape: moderate arities win — deeper binary trees\n"
              "spawn more tasks, very wide nodes serialise in the k-way\n"
              "merge at the root.\n");
}

}  // namespace

BENCHMARK(BM_MultiwayReduceArity2)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_MultiwayReduceArity3)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_MultiwayReduceArity4)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_MultiwayReduceArity8)->UseRealTime()->MinTime(0.05);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_simulated_arity_tradeoff();
  return 0;
}
