// Shared plumbing for the figure-reproduction harnesses.
//
// Environment knobs (all optional):
//   PLS_BENCH_REPS      repetitions per configuration (default 3; the
//                       paper used 5 — set PLS_BENCH_REPS=5 to match)
//   PLS_BENCH_MAX_LOG2  cap on the largest problem size (default 26, the
//                       paper's maximum; lower it for quick runs)
//   PLS_BENCH_CORES     simulated processor count (default 8, the paper's
//                       machine)
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/stats.hpp"
#include "support/stopwatch.hpp"

namespace pls::bench {

inline long env_long(const char* name, long fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::strtol(v, nullptr, 10);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

inline int repetitions() {
  return static_cast<int>(env_long("PLS_BENCH_REPS", 3));
}

inline unsigned max_log2() {
  return static_cast<unsigned>(env_long("PLS_BENCH_MAX_LOG2", 26));
}

inline unsigned simulated_cores() {
  return static_cast<unsigned>(env_long("PLS_BENCH_CORES", 8));
}

/// Run `fn` `reps` times; returns wall-clock stats in milliseconds.
template <typename Fn>
SampleStats time_ms(Fn&& fn, int reps) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    samples.push_back(sw.elapsed_ms());
  }
  return summarize(std::move(samples));
}

/// A value sink preventing dead-code elimination of benchmark results.
inline void keep(double v) {
  static volatile double sink = 0.0;
  sink = sink + v;
}

}  // namespace pls::bench
