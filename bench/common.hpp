// Shared plumbing for the figure-reproduction harnesses.
//
// Environment knobs (all optional):
//   PLS_BENCH_REPS      repetitions per configuration (default 3; the
//                       paper used 5 — set PLS_BENCH_REPS=5 to match)
//   PLS_BENCH_MAX_LOG2  cap on the largest problem size (default 26, the
//                       paper's maximum; lower it for quick runs)
//   PLS_BENCH_CORES     simulated processor count (default 8, the paper's
//                       machine)
//   PLS_BENCH_JSON_DIR  directory for the per-run metric files
//                       (BENCH_<name>.json, default: current directory)
#pragma once

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "observe/counters.hpp"
#include "support/stats.hpp"
#include "support/stopwatch.hpp"

namespace pls::bench {

inline long env_long(const char* name, long fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::strtol(v, nullptr, 10);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

inline int repetitions() {
  return static_cast<int>(env_long("PLS_BENCH_REPS", 3));
}

inline unsigned max_log2() {
  return static_cast<unsigned>(env_long("PLS_BENCH_MAX_LOG2", 26));
}

inline unsigned simulated_cores() {
  return static_cast<unsigned>(env_long("PLS_BENCH_CORES", 8));
}

/// Run `fn` `reps` times; returns wall-clock stats in milliseconds.
template <typename Fn>
SampleStats time_ms(Fn&& fn, int reps) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    samples.push_back(sw.elapsed_ms());
  }
  return summarize(std::move(samples));
}

/// A value sink preventing dead-code elimination of benchmark results.
inline void keep(double v) {
  static volatile double sink = 0.0;
  sink = sink + v;
}

// ---------------------------------------------------------------------------
// Per-run metric files.
//
// Every figure harness emits, next to its human-readable table, a machine-
// readable BENCH_<name>.json: one object with a "rows" array whose entries
// carry the table columns plus the observability metrics (per-worker steal
// counts, split-tree shape, counter totals). The encoder below is the
// minimal JSON subset the benches need — objects, arrays, numbers, strings.

/// Scalar encoders.
struct Json {
  static std::string num(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
  }
  static std::string num(std::uint64_t v) { return std::to_string(v); }
  static std::string num(long v) { return std::to_string(v); }
  static std::string num(unsigned v) { return std::to_string(v); }

  static std::string str(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  /// Array of already-encoded values.
  static std::string arr(const std::vector<std::string>& encoded) {
    std::string out = "[";
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      if (i != 0) out += ',';
      out += encoded[i];
    }
    out += ']';
    return out;
  }

  template <typename T>
  static std::string num_arr(const std::vector<T>& xs) {
    std::vector<std::string> encoded;
    encoded.reserve(xs.size());
    for (const T& x : xs) encoded.push_back(num(x));
    return arr(encoded);
  }
};

/// Order-preserving JSON object builder.
class JsonObject {
 public:
  JsonObject& field(const std::string& key, double v) {
    return raw(key, Json::num(v));
  }
  JsonObject& field(const std::string& key, std::uint64_t v) {
    return raw(key, Json::num(v));
  }
  JsonObject& field(const std::string& key, long v) {
    return raw(key, Json::num(v));
  }
  JsonObject& field(const std::string& key, unsigned v) {
    return raw(key, Json::num(v));
  }
  JsonObject& field(const std::string& key, const std::string& v) {
    return raw(key, Json::str(v));
  }
  JsonObject& field(const std::string& key, const char* v) {
    return raw(key, Json::str(v));
  }

  /// Insert an already-encoded JSON value (array, nested object, ...).
  JsonObject& raw(const std::string& key, std::string encoded) {
    if (!body_.empty()) body_ += ',';
    body_ += Json::str(key);
    body_ += ':';
    body_ += std::move(encoded);
    return *this;
  }

  std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

/// Append one run's counter totals to a row under `<prefix>` names. The
/// full schema (docs/observability.md) including the data-movement pair —
/// `bytes_moved` / `allocations` — so every bench that records a counter
/// delta reports the movement cost of its collect path, not just the
/// scheduling shape. With PLS_OBSERVE=0 the fields are emitted as zeros.
inline void counter_fields(JsonObject& row, const std::string& prefix,
                           const observe::CounterTotals& t) {
  row.field(prefix + "tasks_executed", t.tasks_executed)
      .field(prefix + "steals", t.steals)
      .field(prefix + "steal_failures", t.steal_failures)
      .field(prefix + "forks", t.forks)
      .field(prefix + "splits", t.splits)
      .field(prefix + "max_split_depth", t.max_split_depth)
      .field(prefix + "elements_accumulated", t.elements_accumulated)
      .field(prefix + "leaf_chunks", t.leaf_chunks)
      .field(prefix + "combines", t.combines)
      .field(prefix + "bytes_moved", t.bytes_moved)
      .field(prefix + "allocations", t.allocations);
}

/// Destination for BENCH_<name>.json (honours PLS_BENCH_JSON_DIR).
inline std::string bench_json_path(const std::string& bench_name) {
  std::string dir = ".";
  if (const char* v = std::getenv("PLS_BENCH_JSON_DIR")) dir = v;
  return dir + "/BENCH_" + bench_name + ".json";
}

/// Write `json` to `path`; reports (but does not throw) on failure so a
/// read-only working directory never kills a bench run.
inline void write_json_file(const std::string& path,
                            const std::string& json) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << json << '\n';
}

}  // namespace pls::bench
