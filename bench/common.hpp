// Shared plumbing for the figure-reproduction harnesses.
//
// Environment knobs (all optional):
//   PLS_BENCH_REPS      repetitions per configuration (default 3; the
//                       paper used 5 — set PLS_BENCH_REPS=5 to match)
//   PLS_BENCH_MIN_LOG2  smallest problem size exponent (default 20)
//   PLS_BENCH_MAX_LOG2  cap on the largest problem size (default 26, the
//                       paper's maximum; lower it for quick runs)
//   PLS_BENCH_CORES     simulated processor count (default 8, the paper's
//                       machine)
//   PLS_BENCH_JSON_DIR  directory for the per-run metric files
//                       (BENCH_<name>.json, default: current directory)
//
// Command-line flags (parse_args; they override the environment):
//   --json <path>       write the metric file to <path> instead of
//                       PLS_BENCH_JSON_DIR/BENCH_<name>.json
//   --runs <N>          repetitions per configuration
//   --sizes 2^A..2^B    problem-size range (also accepts plain "A..B")
//   --cores <N>         simulated processor count
//
// The JSON files are schema-versioned (kBenchSchemaVersion): schema 2
// adds per-run sample arrays, p50/p90, latency-histogram summaries and
// measured critical-path stats — the format bench/regress.py consumes
// (docs/benchmarking.md documents every field).
#pragma once

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "observe/config.hpp"
#include "observe/counters.hpp"
#include "observe/critical_path.hpp"
#include "observe/histogram.hpp"
#include "observe/metrics.hpp"
#include "streams/plan.hpp"
#include "support/stats.hpp"
#include "support/stopwatch.hpp"

namespace pls::bench {

/// Version of the BENCH_*.json format (bumped when fields change shape).
inline constexpr unsigned kBenchSchemaVersion = 2;

/// Flag overrides; zero/empty means "not set, fall back to environment".
struct BenchOptions {
  std::string json_path;
  int runs = 0;
  unsigned min_lg = 0;
  unsigned max_lg = 0;
  unsigned cores = 0;
};

inline BenchOptions& options() {
  static BenchOptions o;
  return o;
}

/// Parse "2^A..2^B" (or "A..B") into [min_lg, max_lg]; false on junk.
inline bool parse_sizes(const char* spec, unsigned& min_lg,
                        unsigned& max_lg) {
  const char* p = spec;
  auto read_exp = [&](unsigned& out) {
    if (std::strncmp(p, "2^", 2) == 0) p += 2;
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p || v < 1 || v > 62) return false;
    out = static_cast<unsigned>(v);
    p = end;
    return true;
  };
  unsigned lo = 0, hi = 0;
  if (!read_exp(lo)) return false;
  if (std::strncmp(p, "..", 2) != 0) return false;
  p += 2;
  if (!read_exp(hi)) return false;
  if (*p != '\0' || lo > hi) return false;
  min_lg = lo;
  max_lg = hi;
  return true;
}

/// Unified flag protocol for the figure harnesses. Returns false (after
/// printing usage) on an unknown or malformed flag — callers exit non-zero.
inline bool parse_args(int argc, char** argv) {
  BenchOptions& o = options();
  bool ok = true;
  for (int i = 1; i < argc && ok; ++i) {
    const std::string a = argv[i];
    const char* v = (i + 1 < argc) ? argv[i + 1] : nullptr;
    if (a == "--json" && v != nullptr) {
      o.json_path = v;
      ++i;
    } else if (a == "--runs" && v != nullptr) {
      const long n = std::strtol(v, nullptr, 10);
      ok = n >= 1;
      o.runs = static_cast<int>(n);
      ++i;
    } else if (a == "--sizes" && v != nullptr) {
      ok = parse_sizes(v, o.min_lg, o.max_lg);
      ++i;
    } else if (a == "--cores" && v != nullptr) {
      const long n = std::strtol(v, nullptr, 10);
      ok = n >= 1;
      o.cores = static_cast<unsigned>(n);
      ++i;
    } else {
      ok = false;
    }
  }
  if (!ok) {
    std::fprintf(stderr,
                 "usage: %s [--json out.json] [--runs N] "
                 "[--sizes 2^A..2^B] [--cores N]\n",
                 argv[0]);
  }
  return ok;
}

inline long env_long(const char* name, long fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::strtol(v, nullptr, 10);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

inline int repetitions() {
  if (options().runs > 0) return options().runs;
  return static_cast<int>(env_long("PLS_BENCH_REPS", 3));
}

inline unsigned min_log2() {
  if (options().min_lg > 0) return options().min_lg;
  return static_cast<unsigned>(env_long("PLS_BENCH_MIN_LOG2", 20));
}

inline unsigned max_log2() {
  if (options().max_lg > 0) return options().max_lg;
  return static_cast<unsigned>(env_long("PLS_BENCH_MAX_LOG2", 26));
}

inline unsigned simulated_cores() {
  if (options().cores > 0) return options().cores;
  return static_cast<unsigned>(env_long("PLS_BENCH_CORES", 8));
}

/// Run `fn` `reps` times; returns wall-clock stats in milliseconds.
template <typename Fn>
SampleStats time_ms(Fn&& fn, int reps) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    samples.push_back(sw.elapsed_ms());
  }
  return summarize(std::move(samples));
}

/// A value sink preventing dead-code elimination of benchmark results.
inline void keep(double v) {
  static volatile double sink = 0.0;
  sink = sink + v;
}

// ---------------------------------------------------------------------------
// Per-run metric files.
//
// Every figure harness emits, next to its human-readable table, a machine-
// readable BENCH_<name>.json: one object with a "rows" array whose entries
// carry the table columns plus the observability metrics (per-worker steal
// counts, split-tree shape, counter totals). The encoder below is the
// minimal JSON subset the benches need — objects, arrays, numbers, strings.

/// Scalar encoders.
struct Json {
  static std::string num(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
  }
  static std::string num(std::uint64_t v) { return std::to_string(v); }
  static std::string num(long v) { return std::to_string(v); }
  static std::string num(unsigned v) { return std::to_string(v); }

  static std::string str(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  /// Array of already-encoded values.
  static std::string arr(const std::vector<std::string>& encoded) {
    std::string out = "[";
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      if (i != 0) out += ',';
      out += encoded[i];
    }
    out += ']';
    return out;
  }

  template <typename T>
  static std::string num_arr(const std::vector<T>& xs) {
    std::vector<std::string> encoded;
    encoded.reserve(xs.size());
    for (const T& x : xs) encoded.push_back(num(x));
    return arr(encoded);
  }
};

/// Order-preserving JSON object builder.
class JsonObject {
 public:
  JsonObject& field(const std::string& key, double v) {
    return raw(key, Json::num(v));
  }
  JsonObject& field(const std::string& key, std::uint64_t v) {
    return raw(key, Json::num(v));
  }
  JsonObject& field(const std::string& key, long v) {
    return raw(key, Json::num(v));
  }
  JsonObject& field(const std::string& key, unsigned v) {
    return raw(key, Json::num(v));
  }
  JsonObject& field(const std::string& key, const std::string& v) {
    return raw(key, Json::str(v));
  }
  JsonObject& field(const std::string& key, const char* v) {
    return raw(key, Json::str(v));
  }

  /// Insert an already-encoded JSON value (array, nested object, ...).
  JsonObject& raw(const std::string& key, std::string encoded) {
    if (!body_.empty()) body_ += ',';
    body_ += Json::str(key);
    body_ += ':';
    body_ += std::move(encoded);
    return *this;
  }

  std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

/// Append one run's counter totals to a row under `<prefix>` names. The
/// field set comes from the canonical table (observe::kCounterFields, the
/// same one the Prometheus exposition walks) so the bench schema and the
/// exporter can never drift apart. With PLS_OBSERVE=0 the fields are
/// emitted as zeros.
inline void counter_fields(JsonObject& row, const std::string& prefix,
                           const observe::CounterTotals& t) {
  for (const observe::CounterField& f : observe::kCounterFields) {
    row.field(prefix + f.name, t.*f.member);
  }
}

/// Append one run's ExecutionPlan to a row under `<prefix>` names —
/// schema-2 `plan_*` fields. Verdicts are 0/1 ints; names (terminal,
/// origin, reasons, drive, grain source, kernel) are strings, which
/// regress.py skips when comparing numerics.
inline void plan_fields(JsonObject& row, const std::string& prefix,
                        const streams::ExecutionPlan& p) {
  row.field(prefix + "terminal", streams::terminal_name(p.terminal))
      .field(prefix + "origin", streams::origin_name(p.origin))
      .field(prefix + "fused", static_cast<std::uint64_t>(p.fused ? 1 : 0))
      .field(prefix + "fusion_reason", streams::reason_name(p.fusion_reason))
      .field(prefix + "dps", static_cast<std::uint64_t>(p.dps ? 1 : 0))
      .field(prefix + "dps_reason", streams::reason_name(p.dps_reason))
      .field(prefix + "drive", streams::drive_name(p.drive))
      .field(prefix + "grain", p.grain)
      .field(prefix + "grain_source",
             streams::grain_source_name(p.grain_source))
      .field(prefix + "auto_grain",
             static_cast<std::uint64_t>(
                 p.grain_source == streams::GrainSource::kAutoTuned ? 1 : 0))
      .field(prefix + "kernel", streams::kernel_name(p.kernel))
      .field(prefix + "stages", static_cast<std::uint64_t>(p.stages))
      .field(prefix + "parallelism",
             static_cast<std::uint64_t>(p.parallelism));
}

/// Append one timing series' summary under `<prefix>` names: mean, p50,
/// p90, min/max, relative stddev and the raw per-run samples — schema-2
/// rows carry the full sample so regress.py can recompute any quantile.
inline void stats_fields(JsonObject& row, const std::string& prefix,
                         const SampleStats& s) {
  row.field(prefix + "ms", s.mean)
      .field(prefix + "p50_ms", s.median)
      .field(prefix + "p90_ms", s.p90)
      .field(prefix + "min_ms", s.min)
      .field(prefix + "max_ms", s.max)
      .field(prefix + "rsd", s.rel_stddev())
      .raw(prefix + "runs_ms", Json::num_arr(s.samples));
}

/// One latency histogram as a nested JSON object: count + p50/p90/mean/max
/// (nanoseconds for time metrics, raw units otherwise).
inline std::string histogram_json(const observe::HistogramSnapshot& h,
                                  double scale) {
  JsonObject o;
  o.field("count", h.total)
      .field("p50", h.quantile(0.5, scale))
      .field("p90", h.quantile(0.9, scale))
      .field("mean", h.mean(scale))
      .field("max", h.max(scale));
  return o.str();
}

/// Append every metric's histogram summary under `<prefix><metric>`.
/// Tick-recorded metrics are converted to nanoseconds; queue depth stays
/// in tasks. Empty (all-zero) objects with PLS_OBSERVE=0.
inline void histogram_fields(JsonObject& row, const std::string& prefix,
                             const observe::HistogramSetSnapshot& h) {
  const double ns = observe::kEnabled ? observe::ns_per_tick() : 1.0;
  for (std::size_t i = 0; i < observe::kMetricCount; ++i) {
    const auto m = static_cast<observe::Metric>(i);
    const double scale = observe::metric_is_time(m) ? ns : 1.0;
    row.raw(prefix + observe::metric_name(m),
            histogram_json(h.metric[i], scale));
  }
}

/// Append measured critical-path stats under `<prefix>` names: work T1,
/// span T∞, parallelism, per-phase attribution and tree shape. All zeros
/// when the run was not profiled (or PLS_OBSERVE=0).
inline void cp_fields(JsonObject& row, const std::string& prefix,
                      const observe::CriticalPathStats& cp) {
  row.field(prefix + "work_ms", cp.work_ns / 1e6)
      .field(prefix + "span_ms", cp.span_ns / 1e6)
      .field(prefix + "parallelism", cp.parallelism())
      .field(prefix + "split_ms", cp.phases.split_ns / 1e6)
      .field(prefix + "accumulate_ms", cp.phases.accumulate_ns / 1e6)
      .field(prefix + "combine_ms", cp.phases.combine_ns / 1e6)
      .field(prefix + "nodes", static_cast<std::uint64_t>(cp.nodes))
      .field(prefix + "leaves", static_cast<std::uint64_t>(cp.leaves))
      .field(prefix + "max_depth", cp.max_depth);
}

/// Append the continuous-telemetry series gathered by a MetricsSession
/// under doc-level `metrics_*` keys: sample count, sample timestamps, and
/// the per-sample pool utilization / starvation-ratio means (averaged over
/// pools when several were alive). regress.py skips `metrics_*` keys —
/// they describe the run environment, not the measured figure — so these
/// ride along without widening the regression gate. No-op rows (count 0,
/// empty arrays) with PLS_OBSERVE=0 or when no sampler ran.
inline void metrics_fields(JsonObject& doc,
                           const std::vector<observe::MetricsSample>& samples) {
  std::vector<double> t_ms, utilization, starvation;
  t_ms.reserve(samples.size());
  for (const observe::MetricsSample& s : samples) {
    t_ms.push_back(s.t_ms);
    double util_sum = 0.0, starve_sum = 0.0;
    std::size_t util_n = 0, starve_n = 0;
    for (const observe::MetricRow& row : s.rows) {
      if (row.name == "pls_pool_utilization") {
        util_sum += row.value;
        ++util_n;
      } else if (row.name == "pls_pool_starvation_ratio") {
        starve_sum += row.value;
        ++starve_n;
      }
    }
    utilization.push_back(util_n != 0 ? util_sum / static_cast<double>(util_n)
                                      : 0.0);
    starvation.push_back(
        starve_n != 0 ? starve_sum / static_cast<double>(starve_n) : 0.0);
  }
  doc.field("metrics_samples", static_cast<std::uint64_t>(samples.size()))
      .raw("metrics_t_ms", Json::num_arr(t_ms))
      .raw("metrics_utilization", Json::num_arr(utilization))
      .raw("metrics_starvation_ratio", Json::num_arr(starvation));
}

/// Destination for BENCH_<name>.json: the --json flag when given,
/// otherwise PLS_BENCH_JSON_DIR/BENCH_<name>.json.
inline std::string bench_json_path(const std::string& bench_name) {
  if (!options().json_path.empty()) return options().json_path;
  std::string dir = ".";
  if (const char* v = std::getenv("PLS_BENCH_JSON_DIR")) dir = v;
  return dir + "/BENCH_" + bench_name + ".json";
}

/// Write `json` to `path`; reports (but does not throw) on failure so a
/// read-only working directory never kills a bench run.
inline void write_json_file(const std::string& path,
                            const std::string& json) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << json << '\n';
}

}  // namespace pls::bench
