// FIG4 — reproduces Figure 4 of the paper: average execution times (ms)
// of the sequential and parallel polynomial evaluation for degrees
// 2^20 .. 2^26 (5-run averages in the paper; PLS_BENCH_REPS here).
//
// Series reported:
//   seq_ms       sequential stream evaluation, wall clock (real);
//   par_sim_ms   parallel evaluation on P simulated cores (the host is
//                single-CPU; see DESIGN.md substitutions);
//   par_wall_ms  parallel evaluation wall clock on this host (P threads
//                over 1 cpu — included for honesty, expect ~= seq_ms);
//   map_chain_*  a 4-stage map pipeline over the same coefficients,
//                sequential, run fused (push-mode sink chain, the
//                default), legacy (with_fusion(false), the pull-based
//                wrapper walk), and static (the same four maps composed
//                at compile time via Stream::stages(), one inlined loop
//                per chunk) — the trio the perf-smoke gate watches
//                (docs/execution.md, "pipeline fusion" and "static
//                fusion & SIMD chunk kernels");
//   flat_map_*   a fan-out-4 flat_map feeding two map stages and a sum,
//                fused (multi-accept FlatMapSink batching expansions into
//                the chunk protocol) vs legacy (the buffering wrapper
//                walk, one virtual try_advance per produced element) —
//                the expansion allocation is identical on both routes,
//                so the delta is pure transport;
//   horner_*     the Horner chunk kernel itself over the coefficient
//                array, blocked/SIMD vs scalar — isolates the kernel
//                speedup from stream transport.
//
// Compiled with -DPLS_BENCH_NOVEC (the fig4_times_novec target, built
// with auto-vectorization disabled) the same workloads emit
// BENCH_fig4_novec.json — the ablation that shows how much of the static
// and kernel wins come from vectorized chunk loops.
// Shape to match: both series grow linearly in n (the algorithm is O(n)),
// with the parallel one lower by roughly the core count; the paper's
// sequential series has a one-off dip at 2^24 (JVM artifact, not
// modelled).
// Besides the table, the run emits schema-versioned BENCH_fig4.json with
// p50/p90 per series and the measured critical path of one profiled
// parallel run per size (--json/--runs/--sizes/--cores, see common.hpp).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "forkjoin/pool.hpp"
#include "observe/critical_path.hpp"
#include "observe/export.hpp"
#include "observe/histogram.hpp"
#include "observe/sampler.hpp"
#include "powerlist/collector_functions.hpp"
#include "streams/static_fusion.hpp"
#include "streams/stream.hpp"
#include "support/simd.hpp"
#include "simmachine/costmodel.hpp"
#include "simmachine/scheduler.hpp"
#include "simmachine/trace.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace {

using pls::simmachine::CostModel;
using pls::simmachine::Simulator;
using pls::simmachine::TaskTrace;

std::shared_ptr<const std::vector<double>> make_coefficients(std::size_t n) {
  pls::Xoshiro256 rng(n * 2 + 1);
  std::vector<double> c(n);
  for (auto& v : c) v = rng.next_double() - 0.5;
  return std::make_shared<const std::vector<double>>(std::move(c));
}

// The fusion workload: four map stages over the shared coefficient
// array, reduced to a sum. Per element the legacy walk pays one virtual
// try_advance per wrapper; the fused chain pays one accept_chunk per
// stage per batch with the per-element loops inlined — the delta is
// exactly the transport cost the sink engine removes.
double run_map_chain(const std::shared_ptr<const std::vector<double>>& coeffs,
                     bool fusion) {
  return pls::streams::Stream<double>::of_shared(coeffs)
      .with_fusion(fusion)
      .map([](const double& v) { return v * 1.0000001; })
      .map([](const double& v) { return v + 0.25; })
      .map([](const double& v) { return v * v; })
      .map([](const double& v) { return v - 0.125; })
      .reduce(0.0, [](double a, double b) { return a + b; });
}

// The same four maps as a compile-time composed stage stack: the chain
// collapses into one StaticChainStage whose per-chunk loop inlines all
// four lambdas — no per-stage accept_chunk hop, and the loop body is a
// pure independent-iteration map the vectorizer handles.
double run_map_chain_static(
    const std::shared_ptr<const std::vector<double>>& coeffs) {
  namespace st = pls::streams::stages;
  return pls::streams::Stream<double>::of_shared(coeffs)
      .stages(st::map([](double v) { return v * 1.0000001; }),
              st::map([](double v) { return v + 0.25; }),
              st::map([](double v) { return v * v; }),
              st::map([](double v) { return v - 0.125; }))
      .reduce(0.0, [](double a, double b) { return a + b; });
}

// The widened-fusion workload: a fan-out-8 flat_map into three map
// stages, reduced to a sum. Each input element allocates the same
// 8-element expansion on both routes; legacy then pays one virtual
// try_advance per produced element through four wrappers, while the
// fused chain batches whole expansions into accept_chunk — the wider the
// fan, the more transported elements each (shared) allocation amortises.
double run_flat_map_chain(
    const std::shared_ptr<const std::vector<double>>& coeffs, bool fusion) {
  return pls::streams::Stream<double>::of_shared(coeffs)
      .with_fusion(fusion)
      .flat_map([](const double& v) {
        return std::vector<double>{v,          v * 0.5,   v + 0.25,
                                   v * v,      v - 0.125, v * 2.0,
                                   v + 1.0,    v * -0.75};
      })
      .map([](const double& v) { return v * 1.0000001; })
      .map([](const double& v) { return v + 0.0625; })
      .map([](const double& v) { return v * 0.9999999; })
      .map([](const double& v) { return v - 0.125; })
      .reduce(0.0, [](double a, double b) { return a + b; });
}

TaskTrace build_collect_trace(std::size_t n, unsigned cores) {
  const std::size_t target = std::max<std::size_t>(1, n / (4ull * cores));
  unsigned levels = 0;
  std::size_t chunk = n;
  while (chunk > target && chunk % 2 == 0) {
    chunk /= 2;
    ++levels;
  }
  return TaskTrace::balanced(
      levels, n,
      [](std::size_t len) { return 2.0 * static_cast<double>(len); },
      [](std::size_t) { return 4.0; }, [](std::size_t) { return 8.0; });
}

}  // namespace

int main(int argc, char** argv) {
  if (!pls::bench::parse_args(argc, argv)) return 2;
  const int reps = pls::bench::repetitions();
  const unsigned cores = pls::bench::simulated_cores();
  const unsigned min_log2 = pls::bench::min_log2();
  const unsigned max_log2 = pls::bench::max_log2();
  const double x = 0.9999993;

  std::printf("FIG4: execution times (ms) for sequential and parallel "
              "polynomial evaluation\n");
#ifdef PLS_BENCH_NOVEC
  std::printf("(novec ablation build: auto-vectorization disabled)\n");
#endif
  std::printf("simulated cores = %u, repetitions = %d\n\n", cores, reps);

  // Background sampler + run registry for the whole bench (same contract
  // as fig3: PLS_METRICS_INTERVAL_MS cadence, JSONL to PLS_METRICS_PATH on
  // teardown, doc-level metrics_* series below; no-op with PLS_OBSERVE=0).
  pls::observe::MetricsSession metrics_session(
      pls::observe::metrics_interval_env(25));

  pls::forkjoin::ForkJoinPool pool(cores);
  pls::forkjoin::ForkJoinPool one_worker(1);
  pls::TextTable table({"log2(n)", "n", "seq_ms", "seq_rsd", "par1_ms",
                        "par_sim_ms", "par_wall_ms", "par_wall_rsd",
                        "mc_fused_ms", "mc_legacy_ms", "mc_static_ms",
                        "fm_fused_ms", "fm_legacy_ms",
                        "horner_simd", "horner_scal"});

  std::vector<std::string> json_rows;

  for (unsigned lg = min_log2; lg <= max_log2; ++lg) {
    const std::size_t n = std::size_t{1} << lg;
    const auto coeffs = make_coefficients(n);

    const auto seq = pls::bench::time_ms(
        [&] {
          pls::bench::keep(
              pls::powerlist::evaluate_polynomial_stream(coeffs, x, false));
        },
        reps);

    pls::streams::ExecutionConfig cfg;
    cfg.pool = &pool;
    const auto par_wall = pls::bench::time_ms(
        [&] {
          pls::bench::keep(
              pls::powerlist::evaluate_polynomial_stream(coeffs, x, true,
                                                         cfg));
        },
        reps);

    // One-worker parallel path: the calibration source (see fig3).
    pls::streams::ExecutionConfig cfg1;
    cfg1.pool = &one_worker;
    cfg1.min_chunk = std::max<std::uint64_t>(1, n / (4ull * cores));
    const auto par1 = pls::bench::time_ms(
        [&] {
          pls::bench::keep(
              pls::powerlist::evaluate_polynomial_stream(coeffs, x, true,
                                                         cfg1));
        },
        reps);

    const auto mc_fused = pls::bench::time_ms(
        [&] { pls::bench::keep(run_map_chain(coeffs, true)); }, reps);
    const auto mc_legacy = pls::bench::time_ms(
        [&] { pls::bench::keep(run_map_chain(coeffs, false)); }, reps);
    const auto mc_static = pls::bench::time_ms(
        [&] { pls::bench::keep(run_map_chain_static(coeffs)); }, reps);
    const auto fm_fused = pls::bench::time_ms(
        [&] { pls::bench::keep(run_flat_map_chain(coeffs, true)); }, reps);
    const auto fm_legacy = pls::bench::time_ms(
        [&] { pls::bench::keep(run_flat_map_chain(coeffs, false)); }, reps);

    // Kernel-level Horner: blocked/SIMD vs scalar over the raw array, no
    // stream transport — the pair behind the simd_kernels toggle of
    // PolynomialValueCollector.
    const auto h_simd = pls::bench::time_ms(
        [&] {
          pls::bench::keep(pls::simd::horner_chunk(0.0, x, coeffs->data(), n));
        },
        reps);
    const auto h_scalar = pls::bench::time_ms(
        [&] {
          pls::bench::keep(
              pls::simd::horner_chunk_scalar(0.0, x, coeffs->data(), n));
        },
        reps);

    const CostModel model = CostModel::calibrated(
        par1.mean * 1e6, 2.0 * static_cast<double>(n));
    const auto sim =
        Simulator(model, cores).run(build_collect_trace(n, cores));

    // One profiled parallel run per size for the measured critical path
    // and latency histograms (no-op with PLS_OBSERVE=0).
    pls::observe::HistogramRegistry::global().reset();
    auto& cp_recorder = pls::observe::CriticalPathRecorder::global();
    cp_recorder.clear();
    cp_recorder.enable();
    pls::Stopwatch prof_sw;
    pls::bench::keep(
        pls::powerlist::evaluate_polynomial_stream(coeffs, x, true, cfg));
    const double prof_wall_ms = prof_sw.elapsed_ms();
    cp_recorder.disable();
    const auto cp = cp_recorder.analyze();
    const auto hist = pls::observe::aggregate_histograms();
    cp_recorder.clear();

    table.add_row({std::to_string(lg), std::to_string(n),
                   pls::TextTable::num(seq.mean),
                   pls::TextTable::num(seq.rel_stddev(), 3),
                   pls::TextTable::num(par1.mean),
                   pls::TextTable::num(sim.makespan_ns / 1e6),
                   pls::TextTable::num(par_wall.mean),
                   pls::TextTable::num(par_wall.rel_stddev(), 3),
                   pls::TextTable::num(mc_fused.mean),
                   pls::TextTable::num(mc_legacy.mean),
                   pls::TextTable::num(mc_static.mean),
                   pls::TextTable::num(fm_fused.mean),
                   pls::TextTable::num(fm_legacy.mean),
                   pls::TextTable::num(h_simd.mean),
                   pls::TextTable::num(h_scalar.mean)});

    pls::bench::JsonObject row;
    row.field("log2_n", lg).field("n", n);
    pls::bench::stats_fields(row, "seq_", seq);
    pls::bench::stats_fields(row, "par1_", par1);
    pls::bench::stats_fields(row, "par_wall_", par_wall);
    pls::bench::stats_fields(row, "map_chain_fused_", mc_fused);
    pls::bench::stats_fields(row, "map_chain_legacy_", mc_legacy);
    pls::bench::stats_fields(row, "map_chain_static_", mc_static);
    pls::bench::stats_fields(row, "flat_map_fused_", fm_fused);
    pls::bench::stats_fields(row, "flat_map_legacy_", fm_legacy);
    pls::bench::stats_fields(row, "horner_simd_", h_simd);
    pls::bench::stats_fields(row, "horner_scalar_", h_scalar);
    row.field("par_sim_ms", sim.makespan_ns / 1e6)
        .field("sim_work_ms", sim.work_ns / 1e6)
        .field("sim_span_ms", sim.span_ns / 1e6)
        .field("sim_brent_ms", sim.brent_bound_ns() / 1e6);
    pls::bench::cp_fields(row, "cp_", cp);
    row.field("cp_wall_ms", prof_wall_ms);
    pls::bench::histogram_fields(row, "hist_", hist);
    json_rows.push_back(row.str());
  }

  table.print();

  // The no-vectorization ablation build writes its own JSON so a normal
  // run is never compared against (or clobbered by) the ablation.
#ifdef PLS_BENCH_NOVEC
  const char* bench_name = "fig4_novec";
#else
  const char* bench_name = "fig4";
#endif
  pls::bench::JsonObject doc;
  doc.field("schema", pls::bench::kBenchSchemaVersion)
      .field("bench", bench_name)
      .field("cores", cores)
      .field("repetitions", static_cast<unsigned>(reps))
      .field("observe", pls::observe::kEnabled ? 1u : 0u)
      .raw("rows", pls::bench::Json::arr(json_rows));
  pls::bench::metrics_fields(
      doc, pls::observe::MetricsSampler::global().ring().samples());
  const std::string json_path = pls::bench::bench_json_path(bench_name);
  pls::bench::write_json_file(json_path, doc.str());
  std::printf("\nper-run metrics: %s\n", json_path.c_str());
  std::printf(
      "\npaper reference (Fig 4): both series grow ~linearly with n;\n"
      "parallel below sequential by roughly the core count; sequential\n"
      "dips once at 2^24 (JVM artifact, not modelled).\n");
  return 0;
}
