// SEC3-A — Section III's comparison claim: "for applications based on
// simple concatenation, the performance results are similar" between Java
// parallel streams and the JPLF skeleton framework, with the framework
// adding value only for functions needing zip or descending-phase work.
//
// Five implementations of the same map-then-reduce workload
// (sum of f(v) over n doubles):
//   raw loop / Stream sequential / Stream parallel /
//   PowerFunction sequential / PowerFunction fork-join.
// Expected shape: the three sequential variants within a small constant
// of each other (abstraction cost only); the two parallel variants
// likewise comparable with each other.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "forkjoin/pool.hpp"
#include "powerlist/algorithms/map_reduce.hpp"
#include "powerlist/executors.hpp"
#include "streams/stream.hpp"
#include "support/rng.hpp"

namespace {

using pls::forkjoin::ForkJoinPool;
using pls::streams::Stream;

double transform(double v) { return v * 1.0000001 + 0.5; }

std::vector<double> payload(std::size_t n) {
  pls::Xoshiro256 rng(n);
  std::vector<double> v(n);
  for (auto& d : v) d = rng.next_double();
  return v;
}

ForkJoinPool& bench_pool() {
  static ForkJoinPool pool(8);
  return pool;
}

void BM_RawLoop(benchmark::State& state) {
  const auto data = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    double sum = 0.0;
    for (double v : data) sum += transform(v);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_StreamSequential(benchmark::State& state) {
  const auto data = payload(static_cast<std::size_t>(state.range(0)));
  auto shared = std::make_shared<const std::vector<double>>(data);
  for (auto _ : state) {
    const double sum = Stream<double>::of_shared(shared)
                           .map(&transform)
                           .reduce(0.0, [](double a, double b) { return a + b; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_StreamParallel(benchmark::State& state) {
  const auto data = payload(static_cast<std::size_t>(state.range(0)));
  auto shared = std::make_shared<const std::vector<double>>(data);
  for (auto _ : state) {
    const double sum = Stream<double>::of_shared(shared)
                           .parallel()
                           .via(bench_pool())
                           .map(&transform)
                           .reduce(0.0, [](double a, double b) { return a + b; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// The JPLF-style skeleton path: a ReduceFunction whose leaf folds
// transform(v) directly (map fused into the basic case).
class MapSumFunction final
    : public pls::powerlist::PowerFunction<double, double> {
 public:
  double basic_case(pls::powerlist::PowerListView<const double> leaf,
                    const pls::powerlist::NoContext&) const override {
    double acc = 0.0;
    for (std::size_t i = 0; i < leaf.length(); ++i) acc += transform(leaf[i]);
    return acc;
  }
  double combine(double&& l, double&& r, const pls::powerlist::NoContext&,
                 std::size_t) const override {
    return l + r;
  }
};

void BM_SkeletonSequential(benchmark::State& state) {
  const auto data = payload(static_cast<std::size_t>(state.range(0)));
  const auto view = pls::powerlist::view_of(data);
  MapSumFunction f;
  const std::size_t leaf = data.size() / 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pls::powerlist::execute_sequential(f, view, {}, leaf));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SkeletonForkJoin(benchmark::State& state) {
  const auto data = payload(static_cast<std::size_t>(state.range(0)));
  const auto view = pls::powerlist::view_of(data);
  MapSumFunction f;
  const std::size_t leaf = data.size() / 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pls::powerlist::execute_forkjoin(bench_pool(), f, view, {}, leaf));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(BM_RawLoop)->RangeMultiplier(8)->Range(1 << 14, 1 << 20)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_StreamSequential)->RangeMultiplier(8)->Range(1 << 14, 1 << 20)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_StreamParallel)->RangeMultiplier(8)->Range(1 << 14, 1 << 20)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_SkeletonSequential)->RangeMultiplier(8)->Range(1 << 14, 1 << 20)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_SkeletonForkJoin)->RangeMultiplier(8)->Range(1 << 14, 1 << 20)->UseRealTime()->MinTime(0.05);

BENCHMARK_MAIN();
