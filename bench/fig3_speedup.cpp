// FIG3 — reproduces Figure 3 of the paper: speedup of the parallel
// stream-based polynomial evaluation over the sequential one, for
// coefficient lists of length 2^20 .. 2^26.
//
// Host substitution (DESIGN.md): this machine is pinned to ONE cpu, so the
// parallel series cannot be wall-clocked. The bench therefore reports:
//   speedup_meas — sequential wall time over the simulated-P-core makespan
//                  with the cost model calibrated from a real run of the
//                  *parallel code path on a one-worker pool*. This charges
//                  the parallel path its measured per-element cost — which
//                  on this C++ build is dominated by the ZipSpliterator's
//                  strided memory traversal (a cost Java's boxed Doubles
//                  mask, since boxed sequential access is just as
//                  cache-hostile as strided; see EXPERIMENTS.md);
//   speedup_unif — same schedule, cost model calibrated from the
//                  sequential run (uniform per-element cost, the paper's
//                  implicit assumption): this is the series to compare
//                  against Figure 3's 5.5-7.9 band;
//   speedup_wall — the honest wall-clock ratio with a P-thread pool on
//                  this host (expected <1 here: P threads time-share one
//                  cpu; meaningful on a real multicore).
// The paper's shape to compare against: speedup near the core count for
// all sizes, with a dropout at 2^24 the authors attribute to a JVM
// sequential-optimisation artifact (a managed-runtime effect we do not
// model; see EXPERIMENTS.md).
// The run also times a materialising collect of the coefficients on the
// same pool both ways — destination-passing (collect_dps_ms) vs
// supplier/combiner (collect_sc_ms) — with per-run bytes_moved /
// allocations deltas for each path (see docs/execution.md).
// Besides the table, the run emits BENCH_fig3.json (per-size rows with
// counter totals, per-worker steal counts and the split-tree shape) and,
// for the smallest size, a chrome://tracing timeline (fig3_trace.json)
// containing both the real parallel run (pid 0) and the simulated
// schedule (pid 1). Set PLS_BENCH_JSON_DIR to redirect both files.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "forkjoin/pool.hpp"
#include "observe/counters.hpp"
#include "observe/critical_path.hpp"
#include "observe/flamegraph.hpp"
#include "observe/export.hpp"
#include "observe/histogram.hpp"
#include "observe/sampler.hpp"
#include "observe/trace.hpp"
#include "powerlist/collector_functions.hpp"
#include "streams/stream.hpp"
#include "simmachine/costmodel.hpp"
#include "simmachine/scheduler.hpp"
#include "simmachine/trace.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace {

using pls::simmachine::CostModel;
using pls::simmachine::Simulator;
using pls::simmachine::TaskTrace;

std::shared_ptr<const std::vector<double>> make_coefficients(std::size_t n) {
  pls::Xoshiro256 rng(n);
  std::vector<double> c(n);
  for (auto& v : c) v = rng.next_double() * 2.0 - 1.0;
  return std::make_shared<const std::vector<double>>(std::move(c));
}

/// The collect task tree of the parallel evaluation: uniform binary
/// splitting until chunks reach the Java-style target n / (4P); leaf cost
/// is one multiply-add per coefficient, descend/combine costs one pow +
/// bookkeeping.
TaskTrace build_collect_trace(std::size_t n, unsigned cores) {
  const std::size_t target = std::max<std::size_t>(1, n / (4ull * cores));
  unsigned levels = 0;
  std::size_t chunk = n;
  while (chunk > target && chunk % 2 == 0) {
    chunk /= 2;
    ++levels;
  }
  return TaskTrace::balanced(
      levels, n,
      [](std::size_t len) { return 2.0 * static_cast<double>(len); },
      [](std::size_t) { return 4.0; },   // trySplit: exponent update + max
      [](std::size_t) { return 8.0; });  // combiner: pow + multiply-add
}

}  // namespace

int main(int argc, char** argv) {
  if (!pls::bench::parse_args(argc, argv)) return 2;
  const int reps = pls::bench::repetitions();
  const unsigned cores = pls::bench::simulated_cores();
  const unsigned min_log2 = pls::bench::min_log2();
  const unsigned max_log2 = pls::bench::max_log2();
  const double x = 0.9999991;  // |x|<1 keeps 2^26-degree values finite

  std::printf("FIG3: speedup of parallel polynomial evaluation "
              "(paper: 8 cores, 5-run averages)\n");
  std::printf("simulated cores = %u, repetitions = %d\n\n", cores, reps);

  // Continuous telemetry for the whole bench: a background sampler at the
  // PLS_METRICS_INTERVAL_MS cadence (default 25 ms here) records pool
  // utilization/starvation series, and every timed terminal leaves a run
  // record. Teardown at end of main flushes both to PLS_METRICS_PATH (when
  // set) as JSONL; the sampled series also land in the bench JSON under
  // doc-level metrics_* keys. All of it no-ops with PLS_OBSERVE=0.
  pls::observe::MetricsSession metrics_session(
      pls::observe::metrics_interval_env(25));

  pls::forkjoin::ForkJoinPool pool(cores);
  pls::forkjoin::ForkJoinPool one_worker(1);
  pls::TextTable table({"log2(n)", "n", "seq_ms", "par1_ms", "sim_meas_ms",
                        "speedup_meas", "speedup_unif", "par_wall_ms",
                        "speedup_wall", "steals", "steal_fails",
                        "collect_dps_ms", "collect_sc_ms"});

  std::vector<std::string> json_rows;
  bool trace_written = false;

  for (unsigned lg = min_log2; lg <= max_log2; ++lg) {
    const std::size_t n = std::size_t{1} << lg;
    const auto coeffs = make_coefficients(n);

    // Sequential baseline: the collector evaluated without parallelism
    // (one container, one Horner sweep) — the paper's "simple stream
    // based computation".
    const auto seq = pls::bench::time_ms(
        [&] {
          pls::bench::keep(
              pls::powerlist::evaluate_polynomial_stream(coeffs, x, false));
        },
        reps);

    // Parallel, wall clock, P OS threads (honest number for this host).
    // The pool's counter delta over these runs gives the steal rate and
    // decomposition shape for the JSON report; the snapshot-diff API
    // (CounterSnapshot::operator-) pairs up the per-worker rows for us.
    pls::streams::ExecutionConfig cfg;
    cfg.pool = &pool;

    // When auto-grain is requested (PLS_AUTO_GRAIN=1), prime the PlanCache
    // with one profiled run so the timed runs below execute with the tuned
    // grain — the planner only re-plans from measurements it has seen.
    if (pls::streams::auto_grain_enabled(cfg)) {
      auto& primer = pls::observe::CriticalPathRecorder::global();
      primer.clear();
      primer.enable();
      pls::bench::keep(
          pls::powerlist::evaluate_polynomial_stream(coeffs, x, true, cfg));
      primer.disable();
      primer.clear();
    }

    const auto snap_before = pool.counter_snapshot();
    const auto par_wall = pls::bench::time_ms(
        [&] {
          pls::bench::keep(
              pls::powerlist::evaluate_polynomial_stream(coeffs, x, true,
                                                         cfg));
        },
        reps);
    const auto par_plan = pls::streams::last_plan();
    const auto snap_delta = pool.counter_snapshot() - snap_before;
    const auto& counters = snap_delta.total;
    std::vector<std::uint64_t> worker_steals;
    for (const auto& w : snap_delta.per_worker) {
      worker_steals.push_back(w.totals.steals);
    }

    // One profiled parallel run: the critical-path recorder mirrors the
    // split tree (work T1, span T∞, phase attribution), and the latency
    // histograms are reset first so their quantiles describe this size
    // only. Both are no-ops with PLS_OBSERVE=0.
    pls::observe::HistogramRegistry::global().reset();
    auto& cp_recorder = pls::observe::CriticalPathRecorder::global();
    cp_recorder.clear();
    cp_recorder.enable();
    pls::Stopwatch prof_sw;
    pls::bench::keep(
        pls::powerlist::evaluate_polynomial_stream(coeffs, x, true, cfg));
    const double prof_wall_ms = prof_sw.elapsed_ms();
    cp_recorder.disable();
    const auto cp = cp_recorder.analyze();
    const auto hist = pls::observe::aggregate_histograms();
    cp_recorder.clear();

    // The parallel code path on ONE worker: same splitting, same leaf
    // machinery, no physical parallelism — wall-clockable on this host
    // and the honest calibration source for the simulator.
    pls::streams::ExecutionConfig cfg1;
    cfg1.pool = &one_worker;
    cfg1.min_chunk = std::max<std::uint64_t>(1, n / (4ull * cores));
    const auto par1 = pls::bench::time_ms(
        [&] {
          pls::bench::keep(
              pls::powerlist::evaluate_polynomial_stream(coeffs, x, true,
                                                         cfg1));
        },
        reps);

    // Materialising collect over the same coefficients on the same pool:
    // destination-passing (leaves write the final buffer, no combine)
    // versus the classic supplier/combiner path (per-leaf containers
    // folded pairwise). The counter delta of one instrumented run shows
    // the movement cost each path pays — bytes_moved is O(n log n) for
    // supplier/combiner and zero for destination-passing.
    auto measure_collect = [&](bool sized_sink) {
      pls::streams::ExecutionConfig ccfg = cfg;
      ccfg.sized_sink = sized_sink;
      auto run_once = [&] {
        auto sp = std::make_unique<pls::streams::ArraySpliterator<double>>(
            coeffs);
        auto stream = pls::streams::stream_support::from_spliterator<double>(
            std::move(sp), /*parallel=*/true);
        const auto out = std::move(stream).parallel(ccfg).to_vector();
        pls::bench::keep(out.empty() ? 0.0 : out.back());
      };
      const auto stats = pls::bench::time_ms(run_once, reps);
      const auto before = pls::observe::counter_snapshot();
      run_once();
      const auto delta = pls::observe::counter_snapshot() - before;
      return std::make_pair(stats, delta.total);
    };
    const auto [collect_dps, dps_counters] = measure_collect(true);
    const auto [collect_sc, sc_counters] = measure_collect(false);

    // Simulated P cores under the two calibrations.
    const TaskTrace trace = build_collect_trace(n, cores);
    const auto sim_meas =
        Simulator(CostModel::calibrated(par1.mean * 1e6,
                                        2.0 * static_cast<double>(n)),
                  cores)
            .run(trace);
    const auto sim_unif =
        Simulator(CostModel::calibrated(seq.mean * 1e6,
                                        2.0 * static_cast<double>(n)),
                  cores)
            .run(trace);

    // For the first size, print the measured critical path next to the
    // simulated prediction — the Brent-bound comparison the profiler
    // exists for (docs/benchmarking.md explains the expected gap).
    if (lg == min_log2 && pls::observe::kEnabled && !cp.empty()) {
      std::printf(
          "critical path (2^%u): work T1 = %.2f ms, span Tinf = %.3f ms, "
          "parallelism = %.1f\n"
          "simulated:           work    = %.2f ms, span      = %.3f ms, "
          "Brent T%u <= %.2f ms\n%s\n",
          lg, cp.work_ns / 1e6, cp.span_ns / 1e6, cp.parallelism(),
          sim_meas.work_ns / 1e6, sim_meas.span_ns / 1e6, cores,
          sim_meas.brent_bound_ns() / 1e6,
          cp.phase_table(prof_wall_ms * 1e6, pool.parallelism()).c_str());
    }

    // For the smallest size, capture one real parallel run and one
    // simulated schedule into a shared chrome://tracing timeline: the
    // real run appears as pid 0, the simulated machine as pid 1. The
    // TraceSession guard writes the file on scope exit — early exits and
    // exceptions included (PLS_TRACE_PATH would override the path).
    if (!trace_written && pls::observe::kEnabled) {
      std::string dir = ".";
      if (const char* v = std::getenv("PLS_BENCH_JSON_DIR")) dir = v;
      const std::string trace_path = dir + "/fig3_trace.json";
      {
        pls::observe::TraceSession session(trace_path);
        pls::bench::keep(
            pls::powerlist::evaluate_polynomial_stream(coeffs, x, true, cfg));
        (void)Simulator(CostModel::calibrated(par1.mean * 1e6,
                                              2.0 * static_cast<double>(n)),
                        cores)
            .run(trace);
      }
      pls::observe::TraceRecorder::global().clear();
      std::printf("chrome trace (2^%u, real pid 0 + simulated pid 1): %s\n\n",
                  lg, trace_path.c_str());
      trace_written = true;
    }

    table.add_row({std::to_string(lg), std::to_string(n),
                   pls::TextTable::num(seq.mean),
                   pls::TextTable::num(par1.mean),
                   pls::TextTable::num(sim_meas.makespan_ns / 1e6),
                   pls::TextTable::num(
                       seq.mean / (sim_meas.makespan_ns / 1e6), 2),
                   pls::TextTable::num(
                       seq.mean / (sim_unif.makespan_ns / 1e6), 2),
                   pls::TextTable::num(par_wall.mean),
                   pls::TextTable::num(seq.mean / par_wall.mean, 2),
                   std::to_string(counters.steals),
                   std::to_string(counters.steal_failures),
                   pls::TextTable::num(collect_dps.mean),
                   pls::TextTable::num(collect_sc.mean)});

    // Machine-readable row: timing columns, counter totals, per-worker
    // steal counts, and the split-tree shape of the parallel run.
    const std::size_t target = std::max<std::size_t>(1, n / (4ull * cores));
    unsigned levels = 0;
    std::size_t leaf = n;
    while (leaf > target && leaf % 2 == 0) {
      leaf /= 2;
      ++levels;
    }
    pls::bench::JsonObject row;
    row.field("log2_n", lg).field("n", n);
    pls::bench::stats_fields(row, "seq_", seq);
    pls::bench::stats_fields(row, "par1_", par1);
    pls::bench::stats_fields(row, "par_wall_", par_wall);
    row.field("sim_meas_ms", sim_meas.makespan_ns / 1e6)
        .field("speedup_meas", seq.mean / (sim_meas.makespan_ns / 1e6))
        .field("speedup_unif", seq.mean / (sim_unif.makespan_ns / 1e6))
        .field("speedup_wall", seq.mean / par_wall.mean)
        .field("tasks_executed", counters.tasks_executed)
        .field("steals", counters.steals)
        .field("steal_failures", counters.steal_failures)
        .field("steal_rate",
               counters.tasks_executed == 0
                   ? 0.0
                   : static_cast<double>(counters.steals) /
                         static_cast<double>(counters.tasks_executed))
        .raw("per_worker_steals", pls::bench::Json::num_arr(worker_steals))
        .field("splits", counters.splits)
        .field("combines", counters.combines)
        .field("max_split_depth", counters.max_split_depth)
        .field("leaf_chunks", counters.leaf_chunks)
        .field("elements_accumulated", counters.elements_accumulated)
        .field("bytes_moved", counters.bytes_moved)
        .field("allocations", counters.allocations)
        .field("split_levels", levels)
        .field("split_leaves", std::size_t{1} << levels)
        .field("split_leaf_size", leaf)
        .field("sim_steals", sim_meas.steals)
        .field("collect_speedup_dps", collect_sc.mean / collect_dps.mean);
    pls::bench::stats_fields(row, "collect_dps_", collect_dps);
    pls::bench::stats_fields(row, "collect_sc_", collect_sc);
    // Per-run counter deltas for the two materialising-collect paths
    // (one instrumented run each): the sized-sink path must show
    // collect_dps_bytes_moved == 0 and collect_dps_allocations == 1.
    pls::bench::counter_fields(row, "collect_dps_", dps_counters);
    pls::bench::counter_fields(row, "collect_sc_", sc_counters);
    // Measured critical path of the profiled run, its wall time, the
    // simulated prediction it is compared against, and the latency
    // histograms of that run (schema 2).
    pls::bench::cp_fields(row, "cp_", cp);
    row.field("cp_wall_ms", prof_wall_ms)
        .field("cp_elements", cp.elements)
        .field("sim_work_ms", sim_meas.work_ns / 1e6)
        .field("sim_span_ms", sim_meas.span_ns / 1e6)
        .field("sim_brent_ms", sim_meas.brent_bound_ns() / 1e6);
    pls::bench::histogram_fields(row, "hist_", hist);
    // The plan behind the timed parallel runs (schema 2, plan_* fields):
    // what the planner decided and why, incl. the tuned grain when
    // auto-grain was primed above.
    pls::bench::plan_fields(row, "plan_", par_plan);
    json_rows.push_back(row.str());
  }

  table.print();

  pls::bench::JsonObject doc;
  doc.field("schema", pls::bench::kBenchSchemaVersion)
      .field("bench", "fig3")
      .field("cores", cores)
      .field("repetitions", static_cast<unsigned>(reps))
      .field("observe", pls::observe::kEnabled ? 1u : 0u)
      .raw("rows", pls::bench::Json::arr(json_rows));
  pls::bench::metrics_fields(
      doc, pls::observe::MetricsSampler::global().ring().samples());
  const std::string json_path = pls::bench::bench_json_path("fig3");
  pls::bench::write_json_file(json_path, doc.str());
  std::printf("\nper-run metrics: %s\n", json_path.c_str());
  std::printf(
      "\npaper reference (Fig 3, 8 cores): speedups ~5.5-7.9 across\n"
      "2^20..2^26 with a dip at 2^24 caused by a JVM sequential-side\n"
      "optimisation (not modelled here). Compare speedup_unif against\n"
      "that band; speedup_meas additionally charges the zip splitting's\n"
      "strided-traversal cost, which C++ primitive arrays expose but\n"
      "Java's boxed element storage hides (see EXPERIMENTS.md).\n");
  return 0;
}
