// FIG3 — reproduces Figure 3 of the paper: speedup of the parallel
// stream-based polynomial evaluation over the sequential one, for
// coefficient lists of length 2^20 .. 2^26.
//
// Host substitution (DESIGN.md): this machine is pinned to ONE cpu, so the
// parallel series cannot be wall-clocked. The bench therefore reports:
//   speedup_meas — sequential wall time over the simulated-P-core makespan
//                  with the cost model calibrated from a real run of the
//                  *parallel code path on a one-worker pool*. This charges
//                  the parallel path its measured per-element cost — which
//                  on this C++ build is dominated by the ZipSpliterator's
//                  strided memory traversal (a cost Java's boxed Doubles
//                  mask, since boxed sequential access is just as
//                  cache-hostile as strided; see EXPERIMENTS.md);
//   speedup_unif — same schedule, cost model calibrated from the
//                  sequential run (uniform per-element cost, the paper's
//                  implicit assumption): this is the series to compare
//                  against Figure 3's 5.5-7.9 band;
//   speedup_wall — the honest wall-clock ratio with a P-thread pool on
//                  this host (expected <1 here: P threads time-share one
//                  cpu; meaningful on a real multicore).
// The paper's shape to compare against: speedup near the core count for
// all sizes, with a dropout at 2^24 the authors attribute to a JVM
// sequential-optimisation artifact (a managed-runtime effect we do not
// model; see EXPERIMENTS.md).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "forkjoin/pool.hpp"
#include "powerlist/collector_functions.hpp"
#include "simmachine/costmodel.hpp"
#include "simmachine/scheduler.hpp"
#include "simmachine/trace.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using pls::simmachine::CostModel;
using pls::simmachine::Simulator;
using pls::simmachine::TaskTrace;

std::shared_ptr<const std::vector<double>> make_coefficients(std::size_t n) {
  pls::Xoshiro256 rng(n);
  std::vector<double> c(n);
  for (auto& v : c) v = rng.next_double() * 2.0 - 1.0;
  return std::make_shared<const std::vector<double>>(std::move(c));
}

/// The collect task tree of the parallel evaluation: uniform binary
/// splitting until chunks reach the Java-style target n / (4P); leaf cost
/// is one multiply-add per coefficient, descend/combine costs one pow +
/// bookkeeping.
TaskTrace build_collect_trace(std::size_t n, unsigned cores) {
  const std::size_t target = std::max<std::size_t>(1, n / (4ull * cores));
  unsigned levels = 0;
  std::size_t chunk = n;
  while (chunk > target && chunk % 2 == 0) {
    chunk /= 2;
    ++levels;
  }
  return TaskTrace::balanced(
      levels, n,
      [](std::size_t len) { return 2.0 * static_cast<double>(len); },
      [](std::size_t) { return 4.0; },   // trySplit: exponent update + max
      [](std::size_t) { return 8.0; });  // combiner: pow + multiply-add
}

}  // namespace

int main() {
  const int reps = pls::bench::repetitions();
  const unsigned cores = pls::bench::simulated_cores();
  const unsigned max_log2 = pls::bench::max_log2();
  const double x = 0.9999991;  // |x|<1 keeps 2^26-degree values finite

  std::printf("FIG3: speedup of parallel polynomial evaluation "
              "(paper: 8 cores, 5-run averages)\n");
  std::printf("simulated cores = %u, repetitions = %d\n\n", cores, reps);

  pls::forkjoin::ForkJoinPool pool(cores);
  pls::forkjoin::ForkJoinPool one_worker(1);
  pls::TextTable table({"log2(n)", "n", "seq_ms", "par1_ms", "sim_meas_ms",
                        "speedup_meas", "speedup_unif", "par_wall_ms",
                        "speedup_wall"});

  for (unsigned lg = 20; lg <= max_log2; ++lg) {
    const std::size_t n = std::size_t{1} << lg;
    const auto coeffs = make_coefficients(n);

    // Sequential baseline: the collector evaluated without parallelism
    // (one container, one Horner sweep) — the paper's "simple stream
    // based computation".
    const auto seq = pls::bench::time_ms(
        [&] {
          pls::bench::keep(
              pls::powerlist::evaluate_polynomial_stream(coeffs, x, false));
        },
        reps);

    // Parallel, wall clock, P OS threads (honest number for this host).
    pls::streams::ExecutionConfig cfg;
    cfg.pool = &pool;
    const auto par_wall = pls::bench::time_ms(
        [&] {
          pls::bench::keep(
              pls::powerlist::evaluate_polynomial_stream(coeffs, x, true,
                                                         cfg));
        },
        reps);

    // The parallel code path on ONE worker: same splitting, same leaf
    // machinery, no physical parallelism — wall-clockable on this host
    // and the honest calibration source for the simulator.
    pls::streams::ExecutionConfig cfg1;
    cfg1.pool = &one_worker;
    cfg1.min_chunk = std::max<std::uint64_t>(1, n / (4ull * cores));
    const auto par1 = pls::bench::time_ms(
        [&] {
          pls::bench::keep(
              pls::powerlist::evaluate_polynomial_stream(coeffs, x, true,
                                                         cfg1));
        },
        reps);

    // Simulated P cores under the two calibrations.
    const TaskTrace trace = build_collect_trace(n, cores);
    const auto sim_meas =
        Simulator(CostModel::calibrated(par1.mean * 1e6,
                                        2.0 * static_cast<double>(n)),
                  cores)
            .run(trace);
    const auto sim_unif =
        Simulator(CostModel::calibrated(seq.mean * 1e6,
                                        2.0 * static_cast<double>(n)),
                  cores)
            .run(trace);

    table.add_row({std::to_string(lg), std::to_string(n),
                   pls::TextTable::num(seq.mean),
                   pls::TextTable::num(par1.mean),
                   pls::TextTable::num(sim_meas.makespan_ns / 1e6),
                   pls::TextTable::num(
                       seq.mean / (sim_meas.makespan_ns / 1e6), 2),
                   pls::TextTable::num(
                       seq.mean / (sim_unif.makespan_ns / 1e6), 2),
                   pls::TextTable::num(par_wall.mean),
                   pls::TextTable::num(seq.mean / par_wall.mean, 2)});
  }

  table.print();
  std::printf(
      "\npaper reference (Fig 3, 8 cores): speedups ~5.5-7.9 across\n"
      "2^20..2^26 with a dip at 2^24 caused by a JVM sequential-side\n"
      "optimisation (not modelled here). Compare speedup_unif against\n"
      "that band; speedup_meas additionally charges the zip splitting's\n"
      "strided-traversal cost, which C++ primitive arrays expose but\n"
      "Java's boxed element storage hides (see EXPERIMENTS.md).\n");
  return 0;
}
