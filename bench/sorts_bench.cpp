// SEC2-SORT — Section III lists Batcher and bitonic sort among the
// functions the PowerList theory expresses. Wall-clock comparison of the
// comparison networks against std::sort, plus a simulated-speedup series
// for the Batcher PowerFunction (its O(n log n)-work combine makes the
// span profile very different from map/reduce).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "plist/functions.hpp"
#include "powerlist/algorithms/sort.hpp"
#include "powerlist/executors.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pls::powerlist;

std::vector<int> payload(std::size_t n) {
  pls::Xoshiro256 rng(n ^ 0xabcdef);
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng.next_below(1u << 30));
  return v;
}

void BM_StdSort(benchmark::State& state) {
  const auto data = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto copy = data;
    std::sort(copy.begin(), copy.end());
    benchmark::DoNotOptimize(copy.data());
  }
}

void BM_BatcherPowerFunction(benchmark::State& state) {
  const auto data = payload(static_cast<std::size_t>(state.range(0)));
  BatcherSortFunction<int> sorter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        execute_sequential(sorter, view_of(data), {}, 64).size());
  }
}

void BM_BitonicSort(benchmark::State& state) {
  const auto data = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto copy = data;
    bitonic_sort(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}

void BM_MultiwayMergeSort3(benchmark::State& state) {
  // PList 3-way mergesort over a 3^k-divisible size nearest the range.
  std::size_t n = 1;
  while (n * 3 <= static_cast<std::size_t>(state.range(0))) n *= 3;
  const auto data = payload(n);
  pls::plist::MultiwayMergeSort<int> sorter(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pls::plist::execute_sequential(
            sorter, pls::plist::PListView<const int>::over(data), {}, 81)
            .size());
  }
}

void report_simulated_speedups() {
  std::printf("\nSimulated parallel speedups of Batcher mergesort (leaf "
              "64):\n");
  pls::TextTable table({"n", "P=1", "P=2", "P=4", "P=8", "P=16"});
  BatcherSortFunction<int> sorter;
  for (unsigned lg : {12u, 14u, 16u}) {
    const auto data = payload(std::size_t{1} << lg);
    std::vector<std::string> row{std::to_string(data.size())};
    double t1 = 0.0;
    for (unsigned p : {1u, 2u, 4u, 8u, 16u}) {
      pls::simmachine::Simulator sim(pls::simmachine::CostModel{}, p);
      const auto ex = execute_simulated(sim, sorter, view_of(data), {}, 64);
      if (p == 1) t1 = ex.sim.makespan_ns;
      row.push_back(pls::TextTable::num(t1 / ex.sim.makespan_ns, 2));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("expected shape: speedup saturates early — the sequential\n"
              "O(n log n) top-level merge bounds the span (the known\n"
              "limitation of mergesort-with-sequential-merge).\n");
}

}  // namespace

BENCHMARK(BM_StdSort)->RangeMultiplier(4)->Range(1 << 10, 1 << 18)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_BatcherPowerFunction)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_BitonicSort)->RangeMultiplier(4)->Range(1 << 10, 1 << 18)->UseRealTime()->MinTime(0.05);
BENCHMARK(BM_MultiwayMergeSort3)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)->UseRealTime()->MinTime(0.05);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_simulated_speedups();
  return 0;
}
