// Quickstart: the three layers of the library in one file.
//
//   1. Streams — the Java-Streams-like pipeline (map/filter/collect).
//   2. PowerList functions — divide-and-conquer skeletons with tie/zip.
//   3. The adaptation — PowerList computation driven through the stream
//      collect template method, as in the paper.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "powerlist/algorithms/map_reduce.hpp"
#include "powerlist/algorithms/polynomial.hpp"
#include "powerlist/collector_functions.hpp"
#include "powerlist/executors.hpp"
#include "streams/collectors.hpp"
#include "streams/stream.hpp"

using pls::streams::Stream;

int main() {
  // ---- 1. streams ----------------------------------------------------
  // Sum of squares of the multiples of 3 below 1000, in parallel.
  const long sum = Stream<long>::range(0, 1000)
                       .parallel()
                       .filter([](long v) { return v % 3 == 0; })
                       .map([](long v) { return v * v; })
                       .reduce(0L, [](long a, long b) { return a + b; });
  std::printf("sum of squares of multiples of 3 below 1000: %ld\n", sum);

  // The paper's word-joining collect (3-argument form).
  const auto sentence =
      Stream<std::string>::of({"power", "lists", "meet", "streams"})
          .parallel()
          .collect(pls::streams::collectors::joining(", "));
  std::printf("joined: %s\n", sentence.c_str());

  // ---- 2. PowerList functions -----------------------------------------
  // A PowerList is a power-of-two-length list; functions split it with
  // tie (halves) or zip (even/odd) and recombine.
  std::vector<double> data(1 << 10);
  std::iota(data.begin(), data.end(), 1.0);

  pls::powerlist::ReduceFunction<double, std::plus<double>> total{
      std::plus<double>{}};
  const double reduced = pls::powerlist::execute_sequential(
      total, pls::powerlist::view_of(data));
  std::printf("PowerList reduce of 1..1024: %.0f\n", reduced);

  // The same function on the fork-join pool: definition unchanged,
  // execution swapped (the JPLF separation the paper builds on).
  auto& pool = pls::forkjoin::ForkJoinPool::common();
  const double reduced_par = pls::powerlist::execute_forkjoin(
      pool, total, pls::powerlist::view_of(data), {}, 64);
  std::printf("same, fork-join executor:   %.0f\n", reduced_par);

  // ---- 3. the adaptation ----------------------------------------------
  // Polynomial evaluation through the stream machinery: a Collector
  // carrying a specialised ZipSpliterator that works during splitting.
  std::vector<double> coeffs(1 << 12);
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    coeffs[i] = (i % 3 == 0) ? 1.0 : -0.5;
  }
  auto shared = std::make_shared<const std::vector<double>>(coeffs);
  const double x = 0.9993;
  const double via_stream =
      pls::powerlist::evaluate_polynomial_stream(shared, x, true);
  const double via_horner =
      pls::powerlist::horner_descending(pls::powerlist::view_of(coeffs), x);
  std::printf("polynomial at %.4f: stream=%.10f horner=%.10f\n", x,
              via_stream, via_horner);
  return 0;
}
