// JPLF-style MPI execution without a cluster: the same PowerList
// computations running SPMD over the message-passing simulation, with
// simulated-time accounting showing how the hypercube ascending phase
// scales.
//
// Usage: ./examples/cluster_reduce [ranks]
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "mpisim/collectives.hpp"
#include "mpisim/power_executor.hpp"
#include "powerlist/algorithms/polynomial.hpp"
#include "support/rng.hpp"

using namespace pls::mpisim;

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::size_t n = std::size_t{1} << 20;

  pls::Xoshiro256 rng(99);
  std::vector<double> coeffs(n);
  for (auto& c : coeffs) c = rng.next_double() - 0.5;
  const double x = 0.999999;

  const double reference =
      pls::powerlist::horner_ascending(pls::powerlist::view_of(coeffs), x);

  std::printf("distributed polynomial evaluation, %d simulated ranks, "
              "n=%zu\n", ranks, n);

  World world(ranks);
  const auto stats = world.run([&](Comm& comm) {
    const double value = mpi_polynomial_eval(comm, coeffs, x);
    if (comm.rank() == 0) {
      std::printf("rank 0 result: %.12e (reference %.12e)\n", value,
                  reference);
    }
    // Also show a collective: global agreement on the max local clock.
    const double slowest =
        allreduce(comm, comm.clock_ns(),
                  [](double a, double b) { return a > b ? a : b; });
    if (comm.rank() == 0) {
      std::printf("slowest rank's simulated clock: %.3f ms\n",
                  slowest / 1e6);
    }
  });

  std::printf("\nper-rank simulated accounting:\n");
  std::printf("  rank | clock_ms | compute_ms | comm_ms | msgs | bytes\n");
  for (std::size_t r = 0; r < stats.size(); ++r) {
    const auto& s = stats[r];
    std::printf("  %4zu | %8.3f | %10.3f | %7.3f | %4llu | %llu\n", r,
                s.clock_ns / 1e6, s.compute_ns / 1e6, s.comm_ns / 1e6,
                static_cast<unsigned long long>(s.messages),
                static_cast<unsigned long long>(s.bytes));
  }
  std::printf("\nsimulated completion time: %.3f ms\n",
              world.simulated_time_ns() / 1e6);
  return 0;
}
