// Sorting with PowerList comparison networks: Batcher odd-even mergesort
// (the PowerFunction) and bitonic sort, against std::sort — correctness
// plus wall-clock on this host and a simulated-multicore projection.
//
// Usage: ./examples/parallel_sort [log2_size]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "powerlist/algorithms/sort.hpp"
#include "powerlist/executors.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

int main(int argc, char** argv) {
  const unsigned lg = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
  const std::size_t n = std::size_t{1} << lg;

  pls::Xoshiro256 rng(1234);
  std::vector<int> data(n);
  for (auto& v : data) v = static_cast<int>(rng.next_below(1u << 30));
  auto reference = data;

  std::printf("sorting %zu random ints\n\n", n);

  {
    pls::Stopwatch sw;
    std::sort(reference.begin(), reference.end());
    std::printf("std::sort                 %8.2f ms\n", sw.elapsed_ms());
  }

  {
    pls::powerlist::BatcherSortFunction<int> sorter;
    pls::Stopwatch sw;
    const auto sorted = pls::powerlist::execute_sequential(
        sorter, pls::powerlist::view_of(data), {}, 256);
    std::printf("Batcher (PowerFunction)   %8.2f ms  correct=%s\n",
                sw.elapsed_ms(), sorted == reference ? "yes" : "NO");
  }

  {
    auto& pool = pls::forkjoin::ForkJoinPool::common();
    pls::powerlist::BatcherSortFunction<int> sorter;
    pls::Stopwatch sw;
    const auto sorted = pls::powerlist::execute_forkjoin(
        pool, sorter, pls::powerlist::view_of(data), {}, 256);
    std::printf("Batcher (fork-join)       %8.2f ms  correct=%s\n",
                sw.elapsed_ms(), sorted == reference ? "yes" : "NO");
  }

  {
    auto copy = data;
    pls::Stopwatch sw;
    pls::powerlist::bitonic_sort(copy);
    std::printf("bitonic (sequential)      %8.2f ms  correct=%s\n",
                sw.elapsed_ms(), copy == reference ? "yes" : "NO");
  }

  {
    pls::powerlist::BatcherSortFunction<int> sorter;
    pls::simmachine::CostModel model;
    const auto ex = pls::powerlist::execute_simulated(
        pls::simmachine::Simulator(model, 8), sorter,
        pls::powerlist::view_of(data), {}, 256);
    std::printf(
        "Batcher on simulated 8-core: T1/TP = %.2f "
        "(merge-bound span; see sorts bench)\n",
        ex.sim.work_ns / ex.sim.makespan_ns);
  }
  return 0;
}
