// The equation-5 family in action: a Walsh-Hadamard transform driven
// through the stream machinery, where trySplit itself rewrites the data
// (the "additional operations at the splitting phase" of Section V) —
// used here for a tiny spread-spectrum demo: encode a bit pattern with
// Walsh codes, add noise, recover the bits.
#include <cstdio>
#include <vector>

#include "powerlist/algorithms/hadamard.hpp"
#include "powerlist/collector_functions.hpp"
#include "support/rng.hpp"

int main() {
  constexpr std::size_t kChips = 64;  // Walsh code length
  constexpr int kUsers = 6;           // users 1..6, one bit each

  // Each user u transmits bit b_u on Walsh code (row u of H): the summed
  // channel signal is sum_u sign(b_u) * H[u][.]; decoding is one WHT.
  const int bits[kUsers] = {1, 0, 1, 1, 0, 1};
  std::vector<double> channel(kChips, 0.0);
  for (int u = 0; u < kUsers; ++u) {
    const double sign = bits[u] ? 1.0 : -1.0;
    for (std::size_t c = 0; c < kChips; ++c) {
      const double chip =
          (pls::popcount64((u + 1) & c) % 2 == 0) ? 1.0 : -1.0;
      channel[c] += sign * chip;
    }
  }
  // Channel noise.
  pls::Xoshiro256 rng(5);
  for (auto& s : channel) s += 0.8 * (rng.next_double() - 0.5);

  // Decode: WHT through the DescendOpSpliterator stream (parallel).
  const auto spectrum =
      pls::powerlist::walsh_hadamard_stream(channel, /*parallel=*/true);

  std::printf("decoded bits (true pattern 1 0 1 1 0 1):\n");
  for (int u = 0; u < kUsers; ++u) {
    const double correlation = spectrum[static_cast<std::size_t>(u + 1)];
    std::printf("  user %d: correlation %+7.2f -> bit %d %s\n", u + 1,
                correlation, correlation > 0 ? 1 : 0,
                (correlation > 0) == (bits[u] == 1) ? "(ok)" : "(WRONG)");
  }

  // Cross-check against the O(n^2) reference.
  const auto reference = pls::powerlist::wht_reference(channel);
  double max_err = 0.0;
  for (std::size_t i = 0; i < kChips; ++i) {
    max_err = std::max(max_err, std::abs(reference[i] - spectrum[i]));
  }
  std::printf("stream WHT vs reference: max abs deviation %.3e\n", max_err);
  return 0;
}
