// Stream pipelines on text: the paper's word-joining collect plus the
// collectors library on a realistic token workload — grouping, counting,
// partitioning, and a histogram, in sequential and parallel modes.
#include <cstdio>
#include <string>
#include <vector>

#include "streams/collectors.hpp"
#include "streams/stream.hpp"

using pls::streams::Stream;
namespace collectors = pls::streams::collectors;

namespace {

std::vector<std::string> tokens() {
  // A deterministic corpus assembled from a rotating vocabulary.
  const std::vector<std::string> vocabulary{
      "stream",  "power",   "list",   "parallel", "split", "combine",
      "collect", "monoid",  "fork",   "join",     "tie",   "zip",
      "reduce",  "map",     "filter", "spliterator"};
  std::vector<std::string> out;
  out.reserve(4096);
  for (std::size_t i = 0; i < 4096; ++i) {
    out.push_back(vocabulary[(i * i + i / 3) % vocabulary.size()]);
  }
  return out;
}

}  // namespace

int main() {
  const auto corpus = tokens();

  // The paper's joining example (the combiner inserts the separator
  // between partial results in parallel mode).
  const auto preview = Stream<std::string>::of(corpus)
                           .limit(6)
                           .collect(collectors::joining(", ", "[", "]"));
  std::printf("first tokens: %s\n", preview.c_str());

  // Count distinct words (parallel).
  const auto distinct = Stream<std::string>::of(corpus)
                            .parallel()
                            .collect(collectors::to_set<std::string>());
  std::printf("distinct words: %zu\n", distinct.size());

  // Histogram by first letter, parallel grouping.
  const auto groups = Stream<std::string>::of(corpus)
                          .parallel()
                          .collect(collectors::grouping_by<std::string>(
                              [](const std::string& w) { return w[0]; }));
  std::printf("words by first letter:\n");
  for (const auto& [letter, words] : groups) {
    std::printf("  %c: %5zu  %s\n", letter, words.size(),
                std::string(words.size() / 150, '#').c_str());
  }

  // Partition by length, then average length of each side.
  const auto [long_words, short_words] =
      Stream<std::string>::of(corpus)
          .parallel()
          .collect(collectors::partitioning_by<std::string>(
              [](const std::string& w) { return w.size() > 5; }));
  std::printf("long words: %zu, short words: %zu\n", long_words.size(),
              short_words.size());
  const double avg_len = Stream<std::string>::of(corpus)
                             .parallel()
                             .collect(collectors::averaging<std::string>(
                                 [](const std::string& w) {
                                   return static_cast<double>(w.size());
                                 }));
  std::printf("average token length: %.2f\n", avg_len);

  // Longest token via max_by.
  const auto longest =
      Stream<std::string>::of(corpus).parallel().collect(
          collectors::max_by<std::string>(
              [](const std::string& a, const std::string& b) {
                return a.size() < b.size();
              }));
  std::printf("longest token: %s\n",
              longest.has_value() ? longest->c_str() : "(none)");
  return 0;
}
