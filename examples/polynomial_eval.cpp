// The paper's running example, end to end: polynomial evaluation as a
// PowerList function, executed four ways —
//   sequential Horner, the PowerFunction skeleton (sequential and
//   fork-join), the stream Collector adaptation (the paper's Section IV-B
//   machinery), and the simulated-multicore executor that stands in for
//   the paper's 8-core testbed on a single-CPU host.
//
// Usage: ./examples/polynomial_eval [log2_degree] [x]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "powerlist/algorithms/polynomial.hpp"
#include "powerlist/collector_functions.hpp"
#include "powerlist/executors.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

int main(int argc, char** argv) {
  const unsigned lg = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 20;
  const double x = argc > 2 ? std::atof(argv[2]) : 0.9999991;
  const std::size_t n = std::size_t{1} << lg;

  pls::Xoshiro256 rng(4242);
  std::vector<double> coeffs(n);
  for (auto& c : coeffs) c = rng.next_double() * 2.0 - 1.0;

  std::printf("polynomial degree 2^%u - 1 = %zu coefficients, x = %g\n\n",
              lg, n - 1, x);

  // 1. Sequential Horner (ascending coefficients), the plain baseline.
  {
    pls::Stopwatch sw;
    const double v =
        pls::powerlist::horner_ascending(pls::powerlist::view_of(coeffs), x);
    std::printf("horner (sequential)        %.10e   %8.2f ms\n", v,
                sw.elapsed_ms());
  }

  // 2. The PowerFunction of equation 4 under two executors.
  pls::powerlist::PolynomialFunction<double> vp;
  {
    pls::Stopwatch sw;
    const double v = pls::powerlist::execute_sequential(
        vp, pls::powerlist::view_of(coeffs), x, n / 64);
    std::printf("PowerFunction sequential   %.10e   %8.2f ms\n", v,
                sw.elapsed_ms());
  }
  {
    auto& pool = pls::forkjoin::ForkJoinPool::common();
    pls::Stopwatch sw;
    const double v = pls::powerlist::execute_forkjoin(
        pool, vp, pls::powerlist::view_of(coeffs), x, n / 64);
    std::printf("PowerFunction fork-join    %.10e   %8.2f ms "
                "(wall clock on this host)\n", v, sw.elapsed_ms());
  }

  // 3. The stream adaptation (descending-coefficient convention: reverse
  //    the list so all variants agree).
  {
    std::vector<double> desc(coeffs.rbegin(), coeffs.rend());
    auto shared = std::make_shared<const std::vector<double>>(std::move(desc));
    pls::Stopwatch sw;
    const double v =
        pls::powerlist::evaluate_polynomial_stream(shared, x, true);
    std::printf("stream Collector adaptation %.10e  %8.2f ms\n", v,
                sw.elapsed_ms());
  }

  // 4. Simulated 8-core execution (the paper's machine).
  {
    pls::simmachine::CostModel model;  // 1 ns/op + default overheads
    const auto ex = pls::powerlist::execute_simulated(
        pls::simmachine::Simulator(model, 8), vp,
        pls::powerlist::view_of(coeffs), x, n / 64);
    std::printf(
        "simulated 8-core machine   %.10e   %8.2f ms simulated "
        "(T1/TP = %.2f, %llu steals)\n",
        ex.result, ex.sim.makespan_ns / 1e6,
        ex.sim.work_ns / ex.sim.makespan_ns,
        static_cast<unsigned long long>(ex.sim.steals));
  }
  return 0;
}
