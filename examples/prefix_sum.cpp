// Prefix sums three ways — sequential, Sklansky (tie), Ladner-Fischer
// (zip, the paper's equation-5-shaped descending-phase recursion) — on a
// running-balance task, plus the carry-lookahead adder, which is a scan
// over the carry monoid in disguise.
//
// Usage: ./examples/prefix_sum [log2_size]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "powerlist/algorithms/adder.hpp"
#include "powerlist/algorithms/scan.hpp"
#include "powerlist/executors.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

int main(int argc, char** argv) {
  const unsigned lg = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 20;
  const std::size_t n = std::size_t{1} << lg;

  // Daily account movements: the running balance is an inclusive scan.
  pls::Xoshiro256 rng(2026);
  std::vector<long> movements(n);
  for (auto& m : movements) {
    m = static_cast<long>(rng.next_below(2001)) - 1000;
  }
  const auto view = pls::powerlist::view_of(movements);

  std::vector<long> seq, sklansky, ladner;
  {
    pls::Stopwatch sw;
    seq = pls::powerlist::scan_sequential(view, std::plus<long>{});
    std::printf("sequential scan        %8.2f ms\n", sw.elapsed_ms());
  }
  {
    pls::powerlist::SklanskyScanFunction<long, std::plus<long>> f{
        std::plus<long>{}};
    pls::Stopwatch sw;
    sklansky =
        pls::powerlist::execute_sequential(f, view, {}, n / 64).values();
    std::printf("Sklansky (tie)         %8.2f ms\n", sw.elapsed_ms());
  }
  {
    pls::Stopwatch sw;
    ladner = pls::powerlist::scan_ladner_fischer(view, std::plus<long>{});
    std::printf("Ladner-Fischer (zip)   %8.2f ms\n", sw.elapsed_ms());
  }
  std::printf("all three agree: %s\n",
              (seq == sklansky && seq == ladner) ? "yes" : "NO");
  std::printf("final balance: %ld; lowest balance: %ld\n", seq.back(),
              *std::min_element(seq.begin(), seq.end()));

  // The same scan machinery adds numbers: carry-lookahead addition.
  const std::uint64_t a = 0xDEADBEEFCAFEull, b = 0x123456789ABCull;
  const auto sum = pls::powerlist::carry_lookahead_add(
      pls::powerlist::to_bits(a, 64), pls::powerlist::to_bits(b, 64));
  std::printf("\ncarry-lookahead adder: %llx + %llx = %llx (check %llx)\n",
              static_cast<unsigned long long>(a),
              static_cast<unsigned long long>(b),
              static_cast<unsigned long long>(
                  pls::powerlist::from_bits(sum.sum)),
              static_cast<unsigned long long>(a + b));
  return 0;
}
