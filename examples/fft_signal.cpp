// FFT over PowerLists on a realistic task: pick the dominant frequencies
// out of a noisy multi-tone signal, then round-trip through the inverse
// transform.
//
// The FFT is the paper's flagship two-operator function: zip
// deconstruction, tie recombination (equation 3).
//
// Usage: ./examples/fft_signal [log2_samples]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>
#include <vector>

#include "powerlist/algorithms/fft.hpp"
#include "powerlist/executors.hpp"
#include "support/rng.hpp"

using pls::powerlist::Complex;

int main(int argc, char** argv) {
  const unsigned lg = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 12;
  const std::size_t n = std::size_t{1} << lg;
  const double sample_rate = 4096.0;  // Hz

  // Three tones + noise.
  const double tones_hz[3] = {220.0, 440.0, 1250.0};
  const double amps[3] = {1.0, 0.6, 0.3};
  pls::Xoshiro256 rng(7);
  std::vector<Complex> signal;
  signal.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / sample_rate;
    double s = 0.0;
    for (int k = 0; k < 3; ++k) {
      s += amps[k] * std::sin(2.0 * std::numbers::pi * tones_hz[k] * t);
    }
    s += 0.1 * (rng.next_double() - 0.5);  // noise
    signal.emplace_back(s, 0.0);
  }

  // PowerList FFT on the fork-join pool, direct-DFT leaves of 16.
  pls::powerlist::FftFunction fft;
  auto& pool = pls::forkjoin::ForkJoinPool::common();
  const auto spectrum = pls::powerlist::execute_forkjoin(
      pool, fft, pls::powerlist::view_of(signal), {}, 16);

  // Report the three largest magnitude bins below Nyquist.
  struct Peak {
    double hz;
    double magnitude;
  };
  std::vector<Peak> peaks;
  for (std::size_t k = 1; k < n / 2; ++k) {
    const double mag = std::abs(spectrum[k]) * 2.0 / static_cast<double>(n);
    const double hz = static_cast<double>(k) * sample_rate /
                      static_cast<double>(n);
    if (peaks.size() < 3) {
      peaks.push_back({hz, mag});
    } else {
      auto weakest = std::min_element(
          peaks.begin(), peaks.end(),
          [](const Peak& a, const Peak& b) { return a.magnitude < b.magnitude; });
      if (mag > weakest->magnitude) *weakest = {hz, mag};
    }
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.hz < b.hz; });
  std::printf("dominant frequencies (true: 220, 440, 1250 Hz):\n");
  for (const auto& p : peaks) {
    std::printf("  %7.1f Hz  amplitude %.2f\n", p.hz, p.magnitude);
  }

  // Round-trip: inverse FFT must reproduce the signal.
  const auto back = pls::powerlist::inverse_fft(spectrum);
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_err = std::max(max_err, std::abs(back[i] - signal[i]));
  }
  std::printf("inverse-FFT round-trip max error: %.3e\n", max_err);
  return 0;
}
