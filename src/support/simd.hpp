// Portable SIMD chunk kernels for the arithmetic hot loops.
//
// No intrinsics: every kernel is a fixed-width *blocked* scalar loop whose
// lanes are independent, annotated with PLS_PRAGMA_SIMD so the compiler's
// vectorizer turns the block into vector instructions on any target (and
// degrades to plain scalar code on targets without one). Block width is
// chosen from kSimdBytes / sizeof(T) — one cache-friendly vector register's
// worth of lanes.
//
// Numerical contract:
//  - Integer types: bit-exact. +, * over two's-complement / modular
//    arithmetic are associative and commutative, so re-blocking a fold
//    computes the identical value (tests/support/simd_test.cpp checks
//    against the scalar references exhaustively).
//  - Floating point: re-association changes rounding, so results are
//    ULP-bounded relative to the scalar fold, not bit-identical (the
//    proptest suite bounds the relative error; docs/execution.md states
//    the admission rule: kernels are only selected where the surrounding
//    collector declared its accumulator associative).
#pragma once

#include <complex>
#include <cstddef>
#include <functional>
#include <type_traits>

// Vectorization hint for a loop whose iterations are independent. Order of
// preference: OpenMP SIMD (when compiled with -fopenmp/-fopenmp-simd),
// clang's loop pragma, GCC's ivdep assertion, nothing.
#if defined(_OPENMP)
#define PLS_PRAGMA_SIMD _Pragma("omp simd")
#elif defined(__clang__)
#define PLS_PRAGMA_SIMD _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define PLS_PRAGMA_SIMD _Pragma("GCC ivdep")
#else
#define PLS_PRAGMA_SIMD
#endif

namespace pls::simd {

/// Nominal vector register width the blocked kernels target. 32 bytes
/// (AVX2-sized) is a good default even on 16-byte targets: the wider block
/// just unrolls 2x.
inline constexpr std::size_t kSimdBytes = 32;

/// Lanes of T per block.
template <typename T>
inline constexpr std::size_t lanes_v =
    kSimdBytes / sizeof(T) > 1 ? kSimdBytes / sizeof(T) : 1;

/// Element types the kernels accept (the "element type is arithmetic" half
/// of the kernel admission rule; the other half — accumulator
/// associativity — is the call site's responsibility).
template <typename T>
inline constexpr bool kernel_eligible_v = std::is_arithmetic_v<T>;

// ---- operator identification ----------------------------------------
//
// Generic algorithms (scan, reduce) take an arbitrary Op; the kernels only
// apply when the op is known-associative addition. simd::Plus is the
// opt-in tag functor; std::plus is recognised too.

struct Plus {
  template <typename T>
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>(a + b);
  }
};

template <typename Op>
struct is_plus : std::false_type {};
template <>
struct is_plus<Plus> : std::true_type {};
template <typename T>
struct is_plus<std::plus<T>> : std::true_type {};

template <typename Op>
inline constexpr bool is_plus_v = is_plus<std::remove_cvref_t<Op>>::value;

// ---- Horner polynomial evaluation ------------------------------------

/// Scalar reference: acc := acc * x + c[i] over the chunk, the exact
/// per-element step of PolynomialValueCollector::accumulate.
template <typename T>
constexpr T horner_chunk_scalar(T acc, T x, const T* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc = static_cast<T>(acc * x + c[i]);
  return acc;
}

/// Blocked Horner: W independent lane accumulators advance in base x^W
/// (lane[j] := lane[j] * x^W + c[i+j]), then fold with weights x^(W-1-j).
/// Algebraically identical to the scalar fold (exact for integers,
/// re-associated for floating point). Falls back to the scalar loop for
/// short chunks, where the fold overhead would dominate.
template <typename T>
T horner_chunk(T acc, T x, const T* c, std::size_t n) {
  constexpr std::size_t W = lanes_v<T>;
  if constexpr (W < 4) {
    return horner_chunk_scalar(acc, x, c, n);
  } else {
    if (n < 4 * W) return horner_chunk_scalar(acc, x, c, n);
    T xw = x;
    for (std::size_t k = 1; k < W; ++k) xw = static_cast<T>(xw * x);
    T lane[W];
    PLS_PRAGMA_SIMD
    for (std::size_t j = 0; j < W; ++j) lane[j] = c[j];
    T xpow = xw;  // x^(elements consumed by the blocked prefix)
    std::size_t i = W;
    for (; i + W <= n; i += W) {
      PLS_PRAGMA_SIMD
      for (std::size_t j = 0; j < W; ++j)
        lane[j] = static_cast<T>(lane[j] * xw + c[i + j]);
      xpow = static_cast<T>(xpow * xw);
    }
    T folded = lane[0];
    for (std::size_t j = 1; j < W; ++j)
      folded = static_cast<T>(folded * x + lane[j]);
    T res = static_cast<T>(acc * xpow + folded);
    for (; i < n; ++i) res = static_cast<T>(res * x + c[i]);
    return res;
  }
}

// ---- inclusive prefix scan (+) ---------------------------------------

/// Inclusive +-scan of in[0..n) into out[0..n) with an incoming carry
/// (out[i] = carry + in[0] + ... + in[i]); returns the carry-out. Blocks
/// of W lanes run log2(W) Hillis–Steele passes — every pass is a lane-
/// independent loop — then the running carry is broadcast-added. Exact for
/// integers, re-associated (ULP-bounded) for floating point. in == out
/// aliasing is allowed (each position is read before it is written).
template <typename T>
T inclusive_scan_add(const T* in, T* out, std::size_t n, T carry = T{}) {
  constexpr std::size_t W = lanes_v<T>;
  std::size_t i = 0;
  if constexpr (W >= 4) {
    T b[W];
    T t[W];
    for (; i + W <= n; i += W) {
      PLS_PRAGMA_SIMD
      for (std::size_t j = 0; j < W; ++j) b[j] = in[i + j];
      for (std::size_t step = 1; step < W; step <<= 1) {
        PLS_PRAGMA_SIMD
        for (std::size_t j = 0; j < W; ++j)
          t[j] = j >= step ? static_cast<T>(b[j] + b[j - step]) : b[j];
        PLS_PRAGMA_SIMD
        for (std::size_t j = 0; j < W; ++j) b[j] = t[j];
      }
      PLS_PRAGMA_SIMD
      for (std::size_t j = 0; j < W; ++j)
        out[i + j] = static_cast<T>(carry + b[j]);
      carry = out[i + W - 1];
    }
  }
  for (; i < n; ++i) {
    carry = static_cast<T>(carry + in[i]);
    out[i] = carry;
  }
  return carry;
}

/// Broadcast-add a carry into a chunk: p[i] := carry + p[i] (the Sklansky
/// combine's right-half update, carry-first to match op(carry, right[i])).
template <typename T>
void add_carry_chunk(T carry, T* p, std::size_t n) {
  PLS_PRAGMA_SIMD
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<T>(carry + p[i]);
}

// ---- FFT butterfly ---------------------------------------------------

/// One pointwise butterfly pass over n element pairs:
///   top[j] = p[j] + u[j] * q[j]
///   bot[j] = p[j] - u[j] * q[j]
/// Operates on the real/imaginary planes directly (std::complex<double>
/// guarantees array-oriented access) so the twiddle multiply and both
/// updates vectorize as one independent-iteration loop. In-place use is
/// allowed when top aliases p and bot aliases q elementwise (each index is
/// read before written); shifted overlap is not.
inline void butterfly_chunk(const std::complex<double>* p,
                            const std::complex<double>* q,
                            const std::complex<double>* u,
                            std::complex<double>* top,
                            std::complex<double>* bot, std::size_t n) {
  const double* pr = reinterpret_cast<const double*>(p);
  const double* qr = reinterpret_cast<const double*>(q);
  const double* ur = reinterpret_cast<const double*>(u);
  double* tr = reinterpret_cast<double*>(top);
  double* br = reinterpret_cast<double*>(bot);
  PLS_PRAGMA_SIMD
  for (std::size_t j = 0; j < n; ++j) {
    const double wr = ur[2 * j];
    const double wi = ur[2 * j + 1];
    const double cr = qr[2 * j];
    const double ci = qr[2 * j + 1];
    const double twr = wr * cr - wi * ci;
    const double twi = wr * ci + wi * cr;
    const double er = pr[2 * j];
    const double ei = pr[2 * j + 1];
    tr[2 * j] = er + twr;
    tr[2 * j + 1] = ei + twi;
    br[2 * j] = er - twr;
    br[2 * j + 1] = ei - twi;
  }
}

}  // namespace pls::simd
