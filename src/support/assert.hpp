// Lightweight always-on precondition checking.
//
// The library validates user-facing contract violations (a PowerList whose
// length is not a power of two, mismatched lengths passed to a pointwise
// operator, ...) with PLS_CHECK, which throws; internal invariants that are
// cheap to test are guarded with PLS_ASSERT, which aborts with a message.
// Neither macro is compiled out in release builds: the checks guard O(1)
// conditions at API boundaries, never per-element hot loops.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace pls {

/// Exception thrown when a documented precondition of a public API is
/// violated (e.g. constructing a PowerList view of non-power-of-two length).
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void assert_fail(const char* cond, const char* file,
                                     int line) {
  std::fprintf(stderr, "plstream: internal invariant violated: %s (%s:%d)\n",
               cond, file, line);
  std::abort();
}

}  // namespace detail

}  // namespace pls

/// Validate a public-API precondition; throws pls::precondition_error.
#define PLS_CHECK(cond, msg)                                            \
  do {                                                                  \
    if (!(cond)) {                                                      \
      throw ::pls::precondition_error(std::string("plstream: ") + msg); \
    }                                                                   \
  } while (false)

/// Validate an internal invariant; aborts on failure.
#define PLS_ASSERT(cond)                                          \
  do {                                                            \
    if (!(cond)) {                                                \
      ::pls::detail::assert_fail(#cond, __FILE__, __LINE__);      \
    }                                                             \
  } while (false)
