// Plain-text table formatting for the figure-reproduction harnesses.
//
// Each bench binary prints the rows/series of the paper figure it reproduces;
// this helper keeps the output aligned and machine-greppable
// (pipe-separated, one row per line).
#pragma once

#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "support/assert.hpp"

namespace pls {

/// Column-aligned text table. Collect rows, then `to_string`/`print`.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    PLS_CHECK(cells.size() == header_.size(),
              "TextTable row width differs from header width");
    rows_.push_back(std::move(cells));
  }

  std::string to_string() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
      width[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    std::ostringstream out;
    format_row(out, header_, width);
    std::size_t total = 1;
    for (std::size_t w : width) total += w + 3;
    out << std::string(total, '-') << '\n';
    for (const auto& row : rows_) format_row(out, row, width);
    return out.str();
  }

  void print() const { std::fputs(to_string().c_str(), stdout); }

  /// Format a double with fixed precision; convenience for row building.
  static std::string num(double v, int precision = 3) {
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << v;
    return out.str();
  }

 private:
  static void format_row(std::ostringstream& out,
                         const std::vector<std::string>& cells,
                         const std::vector<std::size_t>& width) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << std::left << std::setw(static_cast<int>(width[c]))
          << cells[c] << " |";
    }
    out << '\n';
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pls
