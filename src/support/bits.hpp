// Bit-manipulation helpers used throughout the PowerList machinery.
//
// PowerLists have power-of-two lengths by definition, so nearly every module
// needs exact log2 computations and power-of-two tests; the `inv` permutation
// and the iterative FFT additionally need index bit reversal.
#pragma once

#include <cstdint>
#include <cstddef>

namespace pls {

/// True iff `n` is a power of two (1, 2, 4, ...). Zero is not a power of two.
constexpr bool is_power_of_two(std::uint64_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// floor(log2(n)) for n >= 1; log2 of 0 is defined as 0 for convenience.
constexpr unsigned floor_log2(std::uint64_t n) noexcept {
  unsigned r = 0;
  while (n > 1) {
    n >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(n)) for n >= 1.
constexpr unsigned ceil_log2(std::uint64_t n) noexcept {
  return n <= 1 ? 0 : floor_log2(n - 1) + 1;
}

/// Exact log2; only meaningful when is_power_of_two(n).
constexpr unsigned exact_log2(std::uint64_t n) noexcept {
  return floor_log2(n);
}

/// Smallest power of two >= n (n == 0 yields 1).
constexpr std::uint64_t next_power_of_two(std::uint64_t n) noexcept {
  if (n <= 1) return 1;
  return std::uint64_t{1} << ceil_log2(n);
}

/// Reverse the low `bits` bits of `v` (bit 0 <-> bit bits-1, ...).
///
/// This is the index permutation computed by the PowerList function `inv`:
/// the element at index b moves to the index whose binary representation is
/// the reversal of b's.
constexpr std::uint64_t reverse_bits(std::uint64_t v, unsigned bits) noexcept {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < bits; ++i) {
    r = (r << 1) | ((v >> i) & 1u);
  }
  return r;
}

/// Number of set bits (population count); used by Gray-code checks.
constexpr unsigned popcount64(std::uint64_t v) noexcept {
  unsigned c = 0;
  while (v != 0) {
    v &= v - 1;
    ++c;
  }
  return c;
}

/// The n-th binary-reflected Gray code.
constexpr std::uint64_t gray_code(std::uint64_t n) noexcept {
  return n ^ (n >> 1);
}

}  // namespace pls
