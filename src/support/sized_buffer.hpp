// SizedBuffer<T>: uninitialized, exactly-sized element storage for
// destination-passing collects (docs/execution.md).
//
// The destination-passing (DPS) execution path allocates the result buffer
// once, up front, and lets every leaf of the split tree construct its
// elements directly into its output window. std::vector cannot express
// that ("sized but uninitialized" is not a vector state), so this class
// provides the missing primitive:
//   - one allocation of raw storage for exactly n elements;
//   - placement-new construction per slot (construct(i, args...)), safe to
//     call concurrently for distinct slots;
//   - exception-safe teardown: the destructor destroys exactly the slots
//     that were constructed, even if an accumulator threw half-way through
//     a leaf while other leaves completed theirs.
// For trivially destructible T the bookkeeping collapses to nothing; for
// other types each slot carries a one-byte constructed flag (its own
// allocation, made once alongside the storage).
//
// take_vector() moves the fully constructed contents into a std::vector —
// the escape hatch for result types that must be vectors when T is not
// default-constructible (default-constructible sinks use a vector
// directly and skip this class; see streams/sized_sink.hpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace pls {

template <typename T>
class SizedBuffer {
 public:
  explicit SizedBuffer(std::size_t n)
      : storage_(n == 0
                     ? nullptr
                     : static_cast<T*>(::operator new(
                           n * sizeof(T), std::align_val_t{alignof(T)}))),
        size_(n) {
    if constexpr (!std::is_trivially_destructible_v<T>) {
      if (n != 0) {
        flags_ = std::make_unique<std::atomic<unsigned char>[]>(n);
        for (std::size_t i = 0; i < n; ++i) {
          flags_[i].store(0, std::memory_order_relaxed);
        }
      }
    }
  }

  SizedBuffer(SizedBuffer&& other) noexcept
      : storage_(std::exchange(other.storage_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        constructed_(other.constructed_.exchange(0)),
        flags_(std::move(other.flags_)) {}

  SizedBuffer& operator=(SizedBuffer&& other) noexcept {
    if (this != &other) {
      destroy_and_free();
      storage_ = std::exchange(other.storage_, nullptr);
      size_ = std::exchange(other.size_, 0);
      constructed_.store(other.constructed_.exchange(0));
      flags_ = std::move(other.flags_);
    }
    return *this;
  }

  SizedBuffer(const SizedBuffer&) = delete;
  SizedBuffer& operator=(const SizedBuffer&) = delete;

  ~SizedBuffer() { destroy_and_free(); }

  std::size_t size() const noexcept { return size_; }
  T* data() noexcept { return storage_; }
  const T* data() const noexcept { return storage_; }

  /// Construct the element of slot `i` in place. Each slot must be
  /// constructed at most once; distinct slots may be constructed from
  /// different threads concurrently.
  template <typename... Args>
  void construct(std::size_t i, Args&&... args) {
    PLS_ASSERT(i < size_);
    ::new (static_cast<void*>(storage_ + i)) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      PLS_ASSERT(flags_[i].load(std::memory_order_relaxed) == 0);
      flags_[i].store(1, std::memory_order_release);
    }
    constructed_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// The constructed element of slot `i` (only valid after construct(i)).
  T& operator[](std::size_t i) noexcept { return storage_[i]; }
  const T& operator[](std::size_t i) const noexcept { return storage_[i]; }

  /// Number of slots constructed so far.
  std::size_t constructed() const noexcept {
    return constructed_.load(std::memory_order_acquire);
  }

  bool fully_constructed() const noexcept { return constructed() == size_; }

  /// Move the fully constructed contents out into a vector, leaving this
  /// buffer empty. One allocation plus one O(n) move pass.
  std::vector<T> take_vector() && {
    PLS_CHECK(fully_constructed(),
              "take_vector requires every slot constructed");
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) {
      out.push_back(std::move(storage_[i]));
    }
    destroy_and_free();
    return out;
  }

 private:
  void destroy_and_free() noexcept {
    if (storage_ == nullptr) return;
    if constexpr (!std::is_trivially_destructible_v<T>) {
      const std::size_t alive = constructed_.load(std::memory_order_acquire);
      if (alive == size_) {
        for (std::size_t i = 0; i < size_; ++i) storage_[i].~T();
      } else if (alive != 0) {
        for (std::size_t i = 0; i < size_; ++i) {
          if (flags_[i].load(std::memory_order_acquire) != 0) {
            storage_[i].~T();
          }
        }
      }
    }
    ::operator delete(storage_, std::align_val_t{alignof(T)});
    storage_ = nullptr;
    size_ = 0;
    constructed_.store(0, std::memory_order_relaxed);
    flags_.reset();
  }

  T* storage_ = nullptr;
  std::size_t size_ = 0;
  std::atomic<std::size_t> constructed_{0};
  /// Per-slot constructed flags; allocated only when ~T is non-trivial.
  std::unique_ptr<std::atomic<unsigned char>[]> flags_;
};

}  // namespace pls
