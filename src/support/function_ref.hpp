// function_ref: a non-owning, trivially copyable reference to a callable.
//
// The Spliterator interface (mirroring Java's) passes per-element actions
// through a type-erased callable. std::function would allocate and copy;
// function_ref is two words, never allocates, and is safe because spliterator
// traversal never stores the action beyond the call (the callable always
// outlives the traversal).
#pragma once

#include <type_traits>
#include <utility>

namespace pls {

template <typename Signature>
class function_ref;  // undefined primary template

/// Non-owning callable reference with signature R(Args...).
///
/// Lifetime contract: the referenced callable must outlive every invocation
/// through the function_ref. All uses inside this library pass function_ref
/// down the stack only.
template <typename R, typename... Args>
class function_ref<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, function_ref> &&
                !std::is_function_v<std::remove_reference_t<F>> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  function_ref(F&& f) noexcept  // NOLINT: implicit by design, mirrors std
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_(&invoke<std::remove_reference_t<F>>) {}

  /// Plain function pointers are stored directly (reinterpret_cast between
  /// function and object pointers is conditionally supported; fine on every
  /// POSIX platform this library targets).
  function_ref(R (*fn)(Args...)) noexcept  // NOLINT: implicit by design
      : obj_(reinterpret_cast<void*>(fn)), call_(&invoke_fnptr) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  template <typename F>
  static R invoke(void* obj, Args... args) {
    return (*static_cast<F*>(obj))(std::forward<Args>(args)...);
  }

  static R invoke_fnptr(void* obj, Args... args) {
    return reinterpret_cast<R (*)(Args...)>(obj)(std::forward<Args>(args)...);
  }

  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace pls
