// Deterministic pseudo-random number generation.
//
// Benchmarks and property tests must be reproducible run to run, so all
// randomness in the library flows through these explicitly seeded generators
// (never std::rand or random_device-seeded engines).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <limits>

namespace pls {

/// Process-wide seed for randomized tests: the PLS_TEST_SEED environment
/// variable (decimal or 0x-prefixed hex) when set, otherwise a fixed
/// default — so plain runs are reproducible and any failing run can be
/// replayed by exporting the seed it printed. Read once per process.
inline std::uint64_t test_seed() noexcept {
  static const std::uint64_t seed = [] {
    if (const char* env = std::getenv("PLS_TEST_SEED")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 0);
      if (end != env && *end == '\0') return static_cast<std::uint64_t>(v);
    }
    return std::uint64_t{0x5EED0FDEFA017ULL};
  }();
  return seed;
}

/// SplitMix64: tiny, fast generator; used to expand a single seed into the
/// larger state of Xoshiro256** and as a standalone generator for cheap
/// deterministic decisions (e.g. the simulator's victim selection).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the library's general-purpose generator.
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound); bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Modulo bias is negligible for the bounds used here (bench sizes,
    // worker counts) relative to 2^64.
    return (*this)() % bound;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace pls
