// Wall-clock measurement helpers for benchmarks and calibration.
#pragma once

#include <chrono>
#include <cstdint>

namespace pls {

/// Monotonic stopwatch. Started on construction; `elapsed_*` reads without
/// stopping, `restart` resets the origin.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  std::uint64_t elapsed_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

  double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }

  double elapsed_seconds() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e9;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pls
