// Cache-line alignment utilities for concurrent data structures.
#pragma once

#include <cstddef>
#include <new>

namespace pls {

/// Destructive interference size (cache line). A fixed 64 bytes: correct
/// for every mainstream x86/ARM core, and a stable constant keeps struct
/// layouts independent of compiler version and -mtune flags (GCC warns that
/// std::hardware_destructive_interference_size varies).
inline constexpr std::size_t kCacheLineSize = 64;

/// Wrap a value so adjacent instances never share a cache line; used for
/// per-worker counters and deque ends to avoid false sharing.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};
};

}  // namespace pls
