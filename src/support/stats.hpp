// Small descriptive-statistics helpers for benchmark reporting.
//
// The paper averages 5 runs per configuration; the bench harnesses do the
// same and additionally report min and relative standard deviation so noisy
// shared-host runs are visible in the output.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"

namespace pls {

struct SampleStats {
  double mean = 0.0;
  double median = 0.0;  ///< p50
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double p90 = 0.0;     ///< 90th percentile (linear interpolation)
  std::vector<double> samples;  ///< the sorted sample, for per-run reports

  /// Relative standard deviation (stddev / mean), 0 when mean == 0.
  double rel_stddev() const noexcept {
    return mean == 0.0 ? 0.0 : stddev / mean;
  }

  /// q-quantile (q in [0,1]) of the sorted sample, linearly interpolated
  /// between adjacent order statistics; 0 when the sample is empty.
  double percentile(double q) const noexcept {
    if (samples.empty()) return 0.0;
    if (q <= 0.0) return samples.front();
    if (q >= 1.0) return samples.back();
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= samples.size()) return samples.back();
    return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
  }
};

/// Compute descriptive statistics of a non-empty sample.
inline SampleStats summarize(std::vector<double> samples) {
  PLS_CHECK(!samples.empty(), "summarize() requires a non-empty sample");
  SampleStats s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const std::size_t n = samples.size();
  s.median = (n % 2 == 1) ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(n);
  double sq = 0.0;
  for (double v : samples) {
    const double d = v - s.mean;
    sq += d * d;
  }
  s.stddev = std::sqrt(sq / static_cast<double>(n));
  s.samples = std::move(samples);
  s.p90 = s.percentile(0.9);
  return s;
}

}  // namespace pls
