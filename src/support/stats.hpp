// Small descriptive-statistics helpers for benchmark reporting.
//
// The paper averages 5 runs per configuration; the bench harnesses do the
// same and additionally report min and relative standard deviation so noisy
// shared-host runs are visible in the output.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"

namespace pls {

struct SampleStats {
  double mean = 0.0;
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;  ///< population standard deviation

  /// Relative standard deviation (stddev / mean), 0 when mean == 0.
  double rel_stddev() const noexcept {
    return mean == 0.0 ? 0.0 : stddev / mean;
  }
};

/// Compute descriptive statistics of a non-empty sample.
inline SampleStats summarize(std::vector<double> samples) {
  PLS_CHECK(!samples.empty(), "summarize() requires a non-empty sample");
  SampleStats s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const std::size_t n = samples.size();
  s.median = (n % 2 == 1) ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(n);
  double sq = 0.0;
  for (double v : samples) {
    const double d = v - s.mean;
    sq += d * d;
  }
  s.stddev = std::sqrt(sq / static_cast<double>(n));
  return s;
}

}  // namespace pls
