// Durable per-terminal run history.
//
// Every executed terminal (streams evaluate/evaluate_fused, the PowerList
// reported/profiled executors) appends one RunRecord: the plan identity
// (cache_key plus the fusion/DPS/drive verdicts rendered as strings), the
// grain and where it came from, the process-wide counter delta across the
// run, wall time, and the per-run leaf-latency p50/p90. The registry is the
// queryable history the ROADMAP item-5 tuner and future overload control
// consume — one PlanCache entry per *shape* cannot answer "what happened on
// the last N runs", this can. Records are exposed through
// pls::session::runs() and serialized by the observe/export.hpp JSONL log.
//
// The registry is always-on when compiled in (like counters): appending is
// one mutex acquisition per *terminal* — not per element or per task — so
// it is never on a hot path. A fixed-capacity keep-latest ring bounds
// memory; total() stays monotone so consumers can detect overwrite.
//
// With PLS_OBSERVE=0 the registry collapses to an empty shell (RunRecord
// itself stays real so reporting code needs no #if).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "observe/config.hpp"
#include "observe/counters.hpp"

namespace pls::observe {

/// One executed terminal. Plain data, real in both build modes. Name
/// fields are pre-rendered strings (terminal_name(...) etc.) so this
/// header does not depend on streams/plan.hpp — the emitting layer
/// renders, the registry stores.
struct RunRecord {
  std::uint64_t sequence = 0;  ///< monotone append index (stamped here)
  double t_ms = 0.0;           ///< steady_now_ms() at append

  // Plan identity and verdicts.
  std::uint64_t cache_key = 0;
  std::string terminal;
  std::string origin;
  std::string drive;
  std::string grain_source;
  std::string kernel;
  std::string fusion_reason;
  std::string dps_reason;
  bool parallel = false;
  bool fused = false;
  bool dps = false;
  std::uint32_t parallelism = 0;
  std::uint64_t source_size = 0;
  std::uint64_t grain = 0;

  // Outcome.
  CounterTotals counters;  ///< process-wide aggregate delta across the run
  double wall_ms = 0.0;
  double leaf_p50_ns = 0.0;  ///< per-run leaf-chunk latency quantiles
  double leaf_p90_ns = 0.0;
};

#if PLS_OBSERVE

/// Process-wide bounded run history. Keep-latest: once kMaxRecords is
/// reached the oldest record is dropped; total() counts every append ever
/// made so `total() - records().size()` is the number dropped.
class RunRegistry {
 public:
  static constexpr std::size_t kMaxRecords = 4096;

  static RunRegistry& global() {
    static RunRegistry r;
    return r;
  }

  /// Append one record; stamps sequence and t_ms. Returns the sequence
  /// number assigned.
  std::uint64_t append(RunRecord rec) {
    std::lock_guard<std::mutex> lock(mutex_);
    rec.sequence = total_++;
    rec.t_ms = steady_now_ms();
    if (records_.size() == kMaxRecords) records_.pop_front();
    records_.push_back(std::move(rec));
    return records_.back().sequence;
  }

  /// Copy of the retained records, oldest first.
  std::vector<RunRecord> records() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<RunRecord>(records_.begin(), records_.end());
  }

  /// Retained records with sequence >= `from` (for session-scoped views).
  std::vector<RunRecord> records_since(std::uint64_t from) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<RunRecord> out;
    for (const RunRecord& r : records_) {
      if (r.sequence >= from) out.push_back(r);
    }
    return out;
  }

  /// Monotone count of appends ever made (survives ring overwrite).
  std::uint64_t total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.clear();
  }

 private:
  RunRegistry() = default;

  mutable std::mutex mutex_;
  std::deque<RunRecord> records_;
  std::uint64_t total_ = 0;
};

#else  // !PLS_OBSERVE — empty shell; every call site compiles to nothing.

class RunRegistry {
 public:
  static constexpr std::size_t kMaxRecords = 0;
  static RunRegistry& global() {
    static RunRegistry r;
    return r;
  }
  std::uint64_t append(RunRecord) { return 0; }
  std::vector<RunRecord> records() const { return {}; }
  std::vector<RunRecord> records_since(std::uint64_t) const { return {}; }
  std::uint64_t total() const { return 0; }
  void clear() {}
};

#endif  // PLS_OBSERVE

}  // namespace pls::observe
