// Background metrics sampler: registry snapshots on a timer, into a ring.
//
// A single background thread wakes every PLS_METRICS_INTERVAL_MS
// milliseconds (or an explicit start() interval), calls
// MetricsRegistry::collect(), and pushes the timestamped sample into a
// fixed-capacity keep-latest SampleRing — so utilization, backlog and
// throughput *over time* are visible from a long-lived process without
// full span tracing. The sampler is runtime-gated exactly like tracing:
// nothing runs until start() (the RAII MetricsSession in
// observe/export.hpp is the intended owner of the start/stop lifecycle —
// the session also needs the exporter's flush, which is why it lives
// there and not here).
//
// Interval resolution for start(interval_ms):
//   explicit argument > PLS_METRICS_INTERVAL_MS > 0 (disabled)
// start() with an effective interval of 0 starts no thread and returns
// false; stop() is idempotent and joins the thread.
//
// With PLS_OBSERVE=0 both types are empty shells: start() returns false,
// the ring reports no samples, and call sites compile to nothing.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "observe/config.hpp"
#include "observe/metrics.hpp"

namespace pls::observe {

/// PLS_METRICS_INTERVAL_MS, or `fallback` when unset/non-positive. Real in
/// both build modes so benches can pass the resolved value around without
/// an #if.
inline unsigned metrics_interval_env(unsigned fallback = 0) {
  if (const char* v = std::getenv("PLS_METRICS_INTERVAL_MS")) {
    const long parsed = std::strtol(v, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(parsed);
  }
  return fallback;
}

#if PLS_OBSERVE

/// Fixed-capacity keep-latest ring of timestamped samples. Mutex-guarded:
/// pushes happen once per sampling interval, reads once per export —
/// never on an execution hot path.
class SampleRing {
 public:
  static constexpr std::size_t kCapacity = 512;

  void push(MetricsSample sample) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (samples_.size() == kCapacity) samples_.pop_front();
    samples_.push_back(std::move(sample));
    ++total_pushed_;
  }

  /// Copy of the retained samples, oldest first.
  std::vector<MetricsSample> samples() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<MetricsSample>(samples_.begin(), samples_.end());
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.size();
  }

  /// Monotone count of pushes ever made (survives ring overwrite).
  std::uint64_t total_pushed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_pushed_;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::deque<MetricsSample> samples_;
  std::uint64_t total_pushed_ = 0;
};

/// The background sampling thread. One per process (global()); start/stop
/// may be called repeatedly — the thread exists only between a successful
/// start() and the next stop().
class MetricsSampler {
 public:
  static MetricsSampler& global() {
    static MetricsSampler s;
    return s;
  }

  /// Start sampling every `interval_ms` ms (0 = use the environment;
  /// still 0 = do nothing). Returns true iff the thread is running on
  /// return. A second start() while running is a no-op returning true.
  bool start(unsigned interval_ms = 0) {
    std::lock_guard<std::mutex> lock(control_mutex_);
    if (thread_.joinable()) return true;
    if (interval_ms == 0) interval_ms = metrics_interval_env(0);
    if (interval_ms == 0) return false;
    stop_requested_ = false;
    interval_ms_ = interval_ms;
    thread_ = std::thread([this] { loop(); });
    return true;
  }

  /// Stop and join the sampling thread; idempotent.
  void stop() {
    std::lock_guard<std::mutex> lock(control_mutex_);
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> wake(wake_mutex_);
      stop_requested_ = true;
    }
    wake_cv_.notify_all();
    thread_.join();
    thread_ = std::thread();
  }

  bool running() const {
    std::lock_guard<std::mutex> lock(control_mutex_);
    return thread_.joinable();
  }

  SampleRing& ring() { return ring_; }
  const SampleRing& ring() const { return ring_; }

  ~MetricsSampler() { stop(); }

 private:
  MetricsSampler() = default;

  void loop() {
    std::unique_lock<std::mutex> wake(wake_mutex_);
    while (!stop_requested_) {
      wake_cv_.wait_for(wake, std::chrono::milliseconds(interval_ms_),
                        [this] { return stop_requested_; });
      if (stop_requested_) break;
      wake.unlock();
      ring_.push(MetricsRegistry::global().collect());
      wake.lock();
    }
  }

  mutable std::mutex control_mutex_;  ///< serializes start/stop/running
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
  unsigned interval_ms_ = 0;
  std::thread thread_;
  SampleRing ring_;
};

#else  // !PLS_OBSERVE — empty shells; every call site compiles to nothing.

class SampleRing {
 public:
  static constexpr std::size_t kCapacity = 0;
  void push(MetricsSample) {}
  std::vector<MetricsSample> samples() const { return {}; }
  std::size_t size() const { return 0; }
  std::uint64_t total_pushed() const { return 0; }
  void clear() {}
};

class MetricsSampler {
 public:
  static MetricsSampler& global() {
    static MetricsSampler s;
    return s;
  }
  bool start(unsigned = 0) { return false; }
  void stop() {}
  bool running() const { return false; }
  SampleRing& ring() {
    static SampleRing r;
    return r;
  }
  const SampleRing& ring() const {
    static SampleRing r;
    return r;
  }
};

#endif  // PLS_OBSERVE

}  // namespace pls::observe
