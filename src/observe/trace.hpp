// Scoped span recorder with a chrome://tracing JSON exporter.
//
// Execution layers mark phases with RAII Spans (fork/join/split/
// accumulate/combine/...); each completed span becomes one event in a
// per-thread buffer. Recording is double-gated:
//   - compile time: PLS_OBSERVE=0 turns Span into an empty struct and
//     every recorder method into a no-op (zero codegen);
//   - run time: the recorder is disabled by default; a disabled Span
//     costs one relaxed atomic load.
// Timestamps are raw TSC ticks (observe/config.hpp) converted to
// nanoseconds at export. The simulated machine records through
// record_virtual() with its own virtual clock, so real and simulated runs
// share one event schema: real events carry pid 0, simulated pid 1.
//
// Export: write_chrome_json() emits the Trace Event Format consumed by
// chrome://tracing and https://ui.perfetto.dev ("X" complete events, ts
// and dur in microseconds).
//
// Lifecycle: the recorder owns an optional output path (PLS_TRACE_PATH
// env, or set_output_path()). flush() writes the current snapshot there,
// and enable() registers a process-exit flush, so a bench binary that
// exits early still leaves a valid chrome-trace file behind. TraceSession
// is the scoped form: enable on construction, disable + flush on
// destruction — including during stack unwinding, which the atexit hook
// alone would miss.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "observe/config.hpp"

namespace pls::observe {

enum class EventKind : std::uint8_t {
  kTask,        ///< one fork-join task execution on a worker
  kFork,        ///< invoke_two child push (instant)
  kJoin,        ///< join wait (incl. helping) after the inline left half
  kSplit,       ///< spliterator / PowerList split (descending phase)
  kAccumulate,  ///< leaf chunk accumulation (basic case)
  kCombine,     ///< combiner invocation (ascending phase)
  kSteal,       ///< successful task migration (instant)
};

inline const char* event_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::kTask: return "task";
    case EventKind::kFork: return "fork";
    case EventKind::kJoin: return "join";
    case EventKind::kSplit: return "split";
    case EventKind::kAccumulate: return "accumulate";
    case EventKind::kCombine: return "combine";
    case EventKind::kSteal: return "steal";
  }
  return "?";
}

/// One recorded span, timestamps already converted to nanoseconds and
/// rebased so the earliest event of its pid starts at 0.
struct TraceEvent {
  EventKind kind{};
  std::uint8_t pid = 0;  ///< 0 = real execution, 1 = simulated machine
  std::uint32_t tid = 0; ///< worker / virtual-processor ordinal
  double start_ns = 0.0;
  double dur_ns = 0.0;
  std::uint64_t arg = 0; ///< kind-specific payload (elements, depth, node)
};

#if PLS_OBSERVE

class TraceRecorder {
 public:
  static TraceRecorder& global() {
    static TraceRecorder r;
    return r;
  }

  /// Turn recording on. The first enable also registers an atexit flush,
  /// so an early exit() still writes the configured output file.
  void enable() {
    enabled_.store(true, std::memory_order_relaxed);
    bool expected = false;
    if (atexit_registered_.compare_exchange_strong(expected, true)) {
      std::atexit([] { TraceRecorder::global().flush(); });
    }
  }
  void disable() noexcept {
    enabled_.store(false, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Destination for flush(); empty disables file output. Initialised
  /// from the PLS_TRACE_PATH environment variable.
  void set_output_path(std::string path) {
    std::lock_guard<std::mutex> lock(path_mutex_);
    output_path_ = std::move(path);
  }

  std::string output_path() const {
    std::lock_guard<std::mutex> lock(path_mutex_);
    return output_path_;
  }

  /// Write the current snapshot to the configured output path. A no-op
  /// when no path is set or nothing was recorded; returns whether a file
  /// was written. Idempotent — flushing twice rewrites the same content.
  bool flush() const {
    const std::string path = output_path();
    if (path.empty()) return false;
    const auto evs = events();
    if (evs.empty()) return false;
    std::ofstream out(path);
    if (!out) return false;
    write_chrome_json(out);
    return static_cast<bool>(out);
  }

  /// Record one real-time span (timestamps in now_ticks() units).
  void record(EventKind kind, std::uint64_t start_ticks,
              std::uint64_t dur_ticks, std::uint64_t arg = 0) {
    if (!enabled()) return;
    ThreadBuffer& buf = local_buffer();
    std::lock_guard<std::mutex> lock(buf.mutex);
    buf.events.push_back(
        RawEvent{kind, 0, buf.tid, start_ticks, dur_ticks, arg});
  }

  /// Record one virtual-time span (timestamps in simulated nanoseconds,
  /// explicit virtual-processor id). Used by the simmachine scheduler.
  void record_virtual(EventKind kind, std::uint32_t vproc, double start_ns,
                      double dur_ns, std::uint64_t arg = 0) {
    if (!enabled()) return;
    ThreadBuffer& buf = local_buffer();
    std::lock_guard<std::mutex> lock(buf.mutex);
    buf.events.push_back(RawEvent{kind, 1, vproc,
                                  static_cast<std::uint64_t>(start_ns),
                                  static_cast<std::uint64_t>(dur_ns), arg});
  }

  /// Drop all recorded events (buffers stay registered).
  void clear() {
    std::lock_guard<std::mutex> reg_lock(registry_mutex_);
    for (auto& buf : buffers_) {
      std::lock_guard<std::mutex> lock(buf->mutex);
      buf->events.clear();
    }
  }

  /// Snapshot of all events, converted to nanoseconds and rebased so the
  /// earliest real (pid 0) event starts at t=0; virtual (pid 1) events
  /// already start near 0 on their own clock.
  std::vector<TraceEvent> events() const {
    std::vector<RawEvent> raw;
    {
      std::lock_guard<std::mutex> reg_lock(registry_mutex_);
      for (const auto& buf : buffers_) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        raw.insert(raw.end(), buf->events.begin(), buf->events.end());
      }
    }
    std::uint64_t t0 = ~std::uint64_t{0};
    for (const RawEvent& e : raw) {
      if (e.pid == 0 && e.start < t0) t0 = e.start;
    }
    const double scale = ns_per_tick();
    std::vector<TraceEvent> out;
    out.reserve(raw.size());
    for (const RawEvent& e : raw) {
      TraceEvent t;
      t.kind = e.kind;
      t.pid = e.pid;
      t.tid = e.tid;
      if (e.pid == 0) {
        t.start_ns = static_cast<double>(e.start - t0) * scale;
        t.dur_ns = static_cast<double>(e.dur) * scale;
      } else {
        t.start_ns = static_cast<double>(e.start);
        t.dur_ns = static_cast<double>(e.dur);
      }
      t.arg = e.arg;
      out.push_back(t);
    }
    return out;
  }

  /// Emit the snapshot in Chrome Trace Event Format.
  void write_chrome_json(std::ostream& os) const {
    const auto evs = events();
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent& e : evs) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << event_name(e.kind)
         << "\",\"cat\":\"pls\",\"ph\":\"X\",\"pid\":"
         << static_cast<unsigned>(e.pid) << ",\"tid\":" << e.tid
         << ",\"ts\":" << e.start_ns / 1e3 << ",\"dur\":" << e.dur_ns / 1e3
         << ",\"args\":{\"arg\":" << e.arg << "}}";
    }
    os << "]}";
  }

  std::string chrome_json() const {
    std::ostringstream os;
    write_chrome_json(os);
    return os.str();
  }

 private:
  struct RawEvent {
    EventKind kind;
    std::uint8_t pid;
    std::uint32_t tid;
    std::uint64_t start;  // ticks (pid 0) or virtual ns (pid 1)
    std::uint64_t dur;
    std::uint64_t arg;
  };

  /// Per-thread event buffer. The mutex is uncontended on the append path
  /// (only the owner appends); snapshot/clear take it cross-thread.
  /// Buffers are owned by the recorder and outlive their threads.
  struct ThreadBuffer {
    std::mutex mutex;
    std::vector<RawEvent> events;
    std::uint32_t tid = 0;
  };

  TraceRecorder() {
    if (const char* env = std::getenv("PLS_TRACE_PATH")) output_path_ = env;
  }

  ThreadBuffer& local_buffer() {
    thread_local ThreadBuffer* buf = nullptr;
    if (buf == nullptr) {
      auto owned = std::make_unique<ThreadBuffer>();
      buf = owned.get();
      std::lock_guard<std::mutex> lock(registry_mutex_);
      buf->tid = static_cast<std::uint32_t>(buffers_.size());
      buffers_.push_back(std::move(owned));
    }
    return *buf;
  }

  std::atomic<bool> enabled_{false};
  std::atomic<bool> atexit_registered_{false};
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  mutable std::mutex path_mutex_;
  std::string output_path_;
};

/// Scoped tracing session: clears stale events and enables recording on
/// construction, disables and flushes to the output path on destruction —
/// also when the scope is left by an exception, so the trace file is valid
/// even for a run that threw halfway. An explicit `path` overrides the
/// recorder's configured destination for this and later sessions.
class TraceSession {
 public:
  explicit TraceSession(std::string path = {}) {
    TraceRecorder& r = TraceRecorder::global();
    if (!path.empty()) r.set_output_path(std::move(path));
    r.clear();
    r.enable();
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  ~TraceSession() {
    TraceRecorder& r = TraceRecorder::global();
    r.disable();
    r.flush();
  }
};

/// RAII span: captures the start timestamp on construction (when the
/// recorder is enabled) and records a complete event on destruction.
class Span {
 public:
  explicit Span(EventKind kind, std::uint64_t arg = 0) noexcept
      : kind_(kind), arg_(arg),
        active_(TraceRecorder::global().enabled()),
        start_(active_ ? now_ticks() : 0) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Update the payload before the span closes (e.g. elements consumed).
  void set_arg(std::uint64_t arg) noexcept { arg_ = arg; }

  ~Span() {
    if (active_) {
      const std::uint64_t end = now_ticks();
      TraceRecorder::global().record(kind_, start_, end - start_, arg_);
    }
  }

 private:
  EventKind kind_;
  std::uint64_t arg_;
  bool active_;
  std::uint64_t start_;
};

/// Record an instant event (fork, steal) with zero duration.
inline void instant(EventKind kind, std::uint64_t arg = 0) {
  TraceRecorder& r = TraceRecorder::global();
  if (r.enabled()) r.record(kind, now_ticks(), 0, arg);
}

#else  // !PLS_OBSERVE

class TraceRecorder {
 public:
  static TraceRecorder& global() {
    static TraceRecorder r;
    return r;
  }
  void enable() noexcept {}
  void disable() noexcept {}
  bool enabled() const noexcept { return false; }
  void record(EventKind, std::uint64_t, std::uint64_t,
              std::uint64_t = 0) noexcept {}
  void record_virtual(EventKind, std::uint32_t, double, double,
                      std::uint64_t = 0) noexcept {}
  void clear() noexcept {}
  void set_output_path(std::string) noexcept {}
  std::string output_path() const { return {}; }
  bool flush() const noexcept { return false; }
  std::vector<TraceEvent> events() const { return {}; }
  void write_chrome_json(std::ostream& os) const {
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";
  }
  std::string chrome_json() const {
    return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";
  }
};

struct TraceSession {
  explicit TraceSession(std::string = {}) noexcept {}
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;
};

struct Span {
  explicit Span(EventKind, std::uint64_t = 0) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void set_arg(std::uint64_t) noexcept {}
};

inline void instant(EventKind, std::uint64_t = 0) noexcept {}

#endif  // PLS_OBSERVE

}  // namespace pls::observe
