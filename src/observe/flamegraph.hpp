// Collapsed-stack export of a profiled split tree.
//
// Converts the CriticalPathRecorder's forest into the folded format
// consumed by flamegraph.pl / speedscope / inferno ("frame;frame;frame
// weight", one line per stack): every tree node contributes its path from
// the root (frames "L"/"R" for the split direction) and one child frame
// per phase that spent time there, weighted by that phase's microseconds.
// Leaves therefore appear as `root#0;L;R;…;accumulate <µs>` — the split
// tree weighted by leaf time — and combine/split overhead shows up as
// sibling frames at the exact tree position that paid it.
//
// With PLS_OBSERVE=0 (or an empty recorder) the export writes nothing,
// which the folded format treats as an empty profile.
#pragma once

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>

#include "observe/critical_path.hpp"

namespace pls::observe {

namespace detail {

#if PLS_OBSERVE
inline void write_folded_node(std::ostream& os, const CpNode& n,
                              const std::string& path, double us_per_tick) {
  const auto weight = [&](std::uint64_t ticks) {
    return static_cast<std::uint64_t>(static_cast<double>(ticks) *
                                      us_per_tick);
  };
  if (n.split_ticks != 0) {
    os << path << ";split " << weight(n.split_ticks) << '\n';
  }
  if (n.accumulate_ticks != 0) {
    os << path << ";accumulate " << weight(n.accumulate_ticks) << '\n';
  }
  if (n.combine_ticks != 0) {
    os << path << ";combine " << weight(n.combine_ticks) << '\n';
  }
  if (!n.is_leaf()) {
    write_folded_node(os, *n.left, path + ";L", us_per_tick);
    write_folded_node(os, *n.right, path + ";R", us_per_tick);
  }
}
#endif

}  // namespace detail

/// Write the recorder's forest in collapsed-stack (folded) format, one
/// root per `root#<i>` base frame, weights in whole microseconds. Call
/// only after the profiled run completed.
inline void write_flamegraph(std::ostream& os,
                             const CriticalPathRecorder& recorder =
                                 CriticalPathRecorder::global(),
                             double ns_per_tick_scale = ns_per_tick()) {
#if PLS_OBSERVE
  const double us_per_tick = ns_per_tick_scale / 1e3;
  const auto roots = recorder.roots();
  for (std::size_t i = 0; i < roots.size(); ++i) {
    detail::write_folded_node(os, *roots[i], "root#" + std::to_string(i),
                              us_per_tick);
  }
#else
  (void)os;
  (void)recorder;
  (void)ns_per_tick_scale;
#endif
}

/// Folded profile as a string (empty when nothing was recorded).
inline std::string flamegraph_folded(
    const CriticalPathRecorder& recorder = CriticalPathRecorder::global()) {
  std::ostringstream os;
  write_flamegraph(os, recorder);
  return os.str();
}

}  // namespace pls::observe
