// Observability kill switch + clock source.
//
// The whole src/observe/ subsystem compiles down to nothing when
// PLS_OBSERVE is 0: counter blocks become empty structs with no-op inline
// members, spans become empty RAII shells, and the recorder exports an
// empty trace. The macro defaults to 1 (observability available, tracing
// still runtime-gated); build with -DPLS_OBSERVE=0 (CMake: -DPLS_OBSERVE=OFF,
// or the `observe-off` preset) for a measurement-free binary. The
// tests/observe/killswitch_test.cpp TU pins the macro to 0 locally and
// asserts the no-op contract, so both sides are covered in every build.
#pragma once

#include <chrono>
#include <cstdint>

#ifndef PLS_OBSERVE
#define PLS_OBSERVE 1
#endif

namespace pls::observe {

/// True when the observability layer is compiled in.
inline constexpr bool kEnabled = (PLS_OBSERVE != 0);

/// Raw timestamp for trace events. On x86-64 this is the TSC (a ~7ns
/// serialising-free read); elsewhere it falls back to steady_clock
/// nanoseconds. Raw ticks are converted to nanoseconds at export time via
/// tick_calibration().
inline std::uint64_t now_ticks() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Nanoseconds per tick of now_ticks(). Calibrated once per process by
/// sampling the TSC against steady_clock over a short interval; exactly
/// 1.0 on the steady_clock fallback path.
inline double ns_per_tick() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  static const double ratio = [] {
    const auto wall0 = std::chrono::steady_clock::now();
    const std::uint64_t tsc0 = now_ticks();
    // Busy-sample for ~2ms: long enough for a <1% calibration, short
    // enough to be invisible (runs once, lazily, at first export).
    const auto deadline = wall0 + std::chrono::milliseconds(2);
    while (std::chrono::steady_clock::now() < deadline) {
    }
    const std::uint64_t tsc1 = now_ticks();
    const auto wall1 = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(wall1 - wall0)
            .count());
    const double ticks = static_cast<double>(tsc1 - tsc0);
    return ticks > 0.0 ? ns / ticks : 1.0;
  }();
  return ratio;
#else
  return 1.0;
#endif
}

/// Wall-clock milliseconds since an arbitrary per-process epoch
/// (steady_clock). Used to timestamp telemetry samples and run records —
/// unlike now_ticks() it needs no calibration and is comparable across
/// threads without a scale factor.
inline double steady_now_ms() noexcept {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1e6;
}

}  // namespace pls::observe
