// Critical-path profiler for real fork-join executions.
//
// The tree walkers (streams/parallel_eval.hpp, powerlist/executors.hpp)
// mirror their split recursion into this recorder when it is enabled: one
// CpNode per tree node, with the time each node spent in its three phases
// (split / accumulate / combine) measured on whichever worker actually ran
// that phase. From the finished tree the recorder computes
//   work T1           sum of all phase times (total busy time),
//   span T∞           the critical path: split + max(children) + combine,
//   parallelism       T1 / T∞ (the maximum useful core count),
//   phase attribution where T1 went (split vs accumulate vs combine),
// and, given the run's wall time and worker count, the steal/idle residue
// P·wall − T1. These are the measured counterparts of the simmachine's
// predicted quantities (SimResult.work_ns / span_ns), so a real run can be
// checked against the Brent bound T_P ≤ T1/P + T∞ computed from the same
// pipeline — docs/benchmarking.md walks through the comparison.
//
// Recording discipline: nodes are allocated under a mutex (one allocation
// per split — far off the hot path) and handed out as stable pointers (the
// arena is a std::deque, whose growth never moves existing elements), so
// phase-time updates are plain stores to fields only the worker executing
// that node's phase writes. Analysis runs strictly after the run.
//
// The recorder is runtime-gated like the trace recorder: when disabled,
// the walkers pass nullptr down the tree and every helper is a branch on
// a constant. With PLS_OBSERVE=0 the whole class is a no-op shell.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "observe/config.hpp"
#include "support/table.hpp"

namespace pls::observe {

/// The three attributable phases of a divide-and-conquer node.
enum class CpPhase : std::uint8_t { kSplit = 0, kAccumulate, kCombine };

/// One recorded tree node, times in raw ticks (see observe/config.hpp).
/// Null child pointers mark a leaf.
struct CpNode {
  CpNode* left = nullptr;
  CpNode* right = nullptr;
  std::uint32_t depth = 0;
  std::uint64_t split_ticks = 0;
  std::uint64_t accumulate_ticks = 0;
  std::uint64_t combine_ticks = 0;
  std::uint64_t elements = 0;

  bool is_leaf() const noexcept { return left == nullptr; }

  std::uint64_t own_ticks() const noexcept {
    return split_ticks + accumulate_ticks + combine_ticks;
  }

  void add_time(CpPhase phase, std::uint64_t ticks) noexcept {
    switch (phase) {
      case CpPhase::kSplit: split_ticks += ticks; break;
      case CpPhase::kAccumulate: accumulate_ticks += ticks; break;
      case CpPhase::kCombine: combine_ticks += ticks; break;
    }
  }
};

/// Per-phase time totals in nanoseconds.
struct PhaseBreakdown {
  double split_ns = 0.0;
  double accumulate_ns = 0.0;
  double combine_ns = 0.0;

  double total_ns() const noexcept {
    return split_ns + accumulate_ns + combine_ns;
  }
  PhaseBreakdown& operator+=(const PhaseBreakdown& o) noexcept {
    split_ns += o.split_ns;
    accumulate_ns += o.accumulate_ns;
    combine_ns += o.combine_ns;
    return *this;
  }
};

/// Analysis of one profiled run — real in both build modes (all zeros when
/// the layer is compiled out), so reporting code needs no #if.
struct CriticalPathStats {
  double work_ns = 0.0;  ///< T1: total busy time over all nodes
  double span_ns = 0.0;  ///< T∞: critical-path time (roots compose serially)
  PhaseBreakdown phases{};  ///< where T1 went
  std::size_t nodes = 0;
  std::size_t leaves = 0;
  std::uint64_t elements = 0;
  unsigned max_depth = 0;

  bool empty() const noexcept { return nodes == 0; }

  /// T1/T∞ — the run's inherent parallelism (max useful core count).
  double parallelism() const noexcept {
    return span_ns > 0.0 ? work_ns / span_ns : 0.0;
  }

  /// Brent's bound on P-processor execution time: T1/P + T∞.
  double brent_bound_ns(unsigned p) const noexcept {
    return p == 0 ? 0.0 : work_ns / static_cast<double>(p) + span_ns;
  }

  /// Steal/idle residue of a run that took `wall_ns` on `workers` workers:
  /// processor-time not attributed to any phase, P·wall − T1 (clamped to
  /// zero — timer skew can push tiny runs slightly negative).
  double idle_ns(double wall_ns, unsigned workers) const noexcept {
    const double cap = wall_ns * static_cast<double>(workers);
    return cap > work_ns ? cap - work_ns : 0.0;
  }

  /// Human-readable per-phase attribution table: one row per phase
  /// (split / accumulate / combine, plus steal-idle when wall_ns and
  /// workers are given), with time and share of total processor-time.
  std::string phase_table(double wall_ns = 0.0, unsigned workers = 0) const {
    TextTable t({"phase", "time_ms", "share"});
    const double idle =
        (wall_ns > 0.0 && workers > 0) ? idle_ns(wall_ns, workers) : 0.0;
    const double denom = work_ns + idle;
    auto row = [&](const char* name, double ns) {
      t.add_row({name, TextTable::num(ns / 1e6),
                 denom > 0.0 ? TextTable::num(100.0 * ns / denom, 1) + "%"
                             : "-"});
    };
    row("split", phases.split_ns);
    row("accumulate", phases.accumulate_ns);
    row("combine", phases.combine_ns);
    if (wall_ns > 0.0 && workers > 0) row("steal-idle", idle);
    return t.to_string();
  }
};

#if PLS_OBSERVE

class CriticalPathRecorder {
 public:
  static CriticalPathRecorder& global() {
    static CriticalPathRecorder r;
    return r;
  }

  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept {
    enabled_.store(false, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drop all recorded nodes and roots. Only while no profiled run is in
  /// flight — outstanding CpNode pointers dangle after a clear.
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    nodes_.clear();
    roots_.clear();
  }

  /// Allocate a root node for a new profiled tree (one terminal operation
  /// / skeleton execution). Roots recorded in one window compose
  /// *serially* in the analysis: span = sum of root spans.
  CpNode* new_root() {
    std::lock_guard<std::mutex> lock(mutex_);
    nodes_.emplace_back();
    CpNode* root = &nodes_.back();
    roots_.push_back(root);
    return root;
  }

  /// Allocate and link both children of `parent`. The parent's thread
  /// calls this before forking, so the pointers can be captured by the
  /// child closures; the returned nodes are stable for the recorder's
  /// lifetime (deque arena).
  std::pair<CpNode*, CpNode*> fork(CpNode* parent) {
    std::lock_guard<std::mutex> lock(mutex_);
    nodes_.emplace_back();
    CpNode* l = &nodes_.back();
    nodes_.emplace_back();
    CpNode* r = &nodes_.back();
    parent->left = l;
    parent->right = r;
    l->depth = parent->depth + 1;
    r->depth = parent->depth + 1;
    return {l, r};
  }

  std::size_t node_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return nodes_.size();
  }

  /// The recorded tree roots (stable pointers; traverse only after the
  /// profiled run completed).
  std::vector<const CpNode*> roots() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {roots_.begin(), roots_.end()};
  }

  /// Analyse the recorded forest. `scale` converts recorded ticks to
  /// nanoseconds; the default is the process tick calibration. Call only
  /// after the profiled run has completed (no concurrent writers).
  CriticalPathStats analyze(double scale = ns_per_tick()) const {
    std::lock_guard<std::mutex> lock(mutex_);
    CriticalPathStats s;
    s.nodes = nodes_.size();
    for (const CpNode& n : nodes_) {
      s.phases.split_ns += static_cast<double>(n.split_ticks) * scale;
      s.phases.accumulate_ns +=
          static_cast<double>(n.accumulate_ticks) * scale;
      s.phases.combine_ns += static_cast<double>(n.combine_ticks) * scale;
      s.elements += n.elements;
      if (n.is_leaf()) ++s.leaves;
      if (n.depth > s.max_depth) s.max_depth = n.depth;
    }
    s.work_ns = s.phases.total_ns();
    for (const CpNode* root : roots_) {
      s.span_ns += span_of(*root, scale);
    }
    return s;
  }

 private:
  CriticalPathRecorder() = default;

  static double span_of(const CpNode& n, double scale) {
    const double own = static_cast<double>(n.own_ticks()) * scale;
    if (n.is_leaf()) return own;
    const double l = span_of(*n.left, scale);
    const double r = span_of(*n.right, scale);
    return own + (l > r ? l : r);
  }

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::deque<CpNode> nodes_;  // deque: growth never moves existing nodes
  std::vector<CpNode*> roots_;
};

/// Root handle for a tree walk: a fresh root when the recorder is enabled,
/// nullptr (every downstream helper no-ops) otherwise.
inline CpNode* cp_new_root() {
  CriticalPathRecorder& r = CriticalPathRecorder::global();
  return r.enabled() ? r.new_root() : nullptr;
}

/// Child handles for a fork under `parent` (nullptr propagates).
inline std::pair<CpNode*, CpNode*> cp_fork(CpNode* parent) {
  if (parent == nullptr) return {nullptr, nullptr};
  return CriticalPathRecorder::global().fork(parent);
}

inline void cp_add_elements(CpNode* node, std::uint64_t elements) {
  if (node != nullptr) node->elements += elements;
}

/// RAII phase timer for one node: no-cost when the node is nullptr.
class CpScope {
 public:
  CpScope(CpNode* node, CpPhase phase) noexcept
      : node_(node), phase_(phase),
        start_(node != nullptr ? now_ticks() : 0) {}
  CpScope(const CpScope&) = delete;
  CpScope& operator=(const CpScope&) = delete;
  ~CpScope() {
    if (node_ != nullptr) node_->add_time(phase_, now_ticks() - start_);
  }

 private:
  CpNode* node_;
  CpPhase phase_;
  std::uint64_t start_;
};

#else  // !PLS_OBSERVE — no-op shell.

class CriticalPathRecorder {
 public:
  static CriticalPathRecorder& global() {
    static CriticalPathRecorder r;
    return r;
  }
  void enable() noexcept {}
  void disable() noexcept {}
  bool enabled() const noexcept { return false; }
  void clear() {}
  CpNode* new_root() { return nullptr; }
  std::pair<CpNode*, CpNode*> fork(CpNode*) { return {nullptr, nullptr}; }
  std::size_t node_count() const { return 0; }
  std::vector<const CpNode*> roots() const { return {}; }
  CriticalPathStats analyze(double = 1.0) const { return {}; }
};

inline CpNode* cp_new_root() { return nullptr; }
inline std::pair<CpNode*, CpNode*> cp_fork(CpNode*) {
  return {nullptr, nullptr};
}
inline void cp_add_elements(CpNode*, std::uint64_t) {}

struct CpScope {
  CpScope(CpNode*, CpPhase) noexcept {}
  CpScope(const CpScope&) = delete;
  CpScope& operator=(const CpScope&) = delete;
};

#endif  // PLS_OBSERVE

}  // namespace pls::observe
