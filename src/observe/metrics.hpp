// Process-wide metrics registry: one uniform, labelled metric namespace.
//
// The batch-shaped observability layers (counters, histograms, the plan
// machinery) are consumed as snapshot deltas bracketing one terminal.
// MetricsRegistry adapts them — plus any dynamically registered sources
// such as live pool state or PlanCache occupancy — into a flat list of
// named metric rows that a scraper can read at any instant:
//
//   collect() emits, in order:
//     pls_<counter>_total            one monotone counter per
//                                    kCounterFields entry (process totals)
//     pls_max_split_depth            the one non-monotone counter field,
//                                    exposed as a gauge (high-water mark)
//     pls_hist_<metric>[_ns]        p50/p90 gauges per latency histogram,
//                                    labelled quantile="0.5"/"0.9"
//                                    (nanosecond-scaled for time metrics)
//     pls_hist_<metric>[_ns]_count  + _sum: monotone totals per histogram
//     pls_runs_total                 terminals recorded by the RunRegistry
//     <registered sources>           e.g. pls_pool_* gauges from each live
//                                    ForkJoinPool, pls_plan_cache_entries
//
// Sources are callbacks appending rows to a sample; registration returns a
// token and remove_source() blocks until no collect() is using the source,
// so a pool can deregister in its destructor and die safely. Metric names
// follow the Prometheus charset ([a-zA-Z_:][a-zA-Z0-9_:]*); rows carry at
// most one label pair, which covers every current need (quantile=, pool=).
//
// The sampled shapes (MetricRow, MetricsSample) are real in both build
// modes; with PLS_OBSERVE=0 the registry itself is an empty shell whose
// collect() returns an empty sample.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "observe/config.hpp"
#include "observe/counters.hpp"
#include "observe/histogram.hpp"
#include "observe/run_registry.hpp"

namespace pls::observe {

/// Prometheus-style metric typing: counters are monotone, gauges go both
/// ways.
enum class MetricKind : std::uint8_t { kCounter, kGauge };

/// One named value at one instant. `label_key`/`label_value` form an
/// optional single label pair (empty key = unlabelled). `help` seeds the
/// exposition's # HELP line; rows sharing a name should share help text
/// (the first occurrence wins at export time).
struct MetricRow {
  std::string name;
  MetricKind kind = MetricKind::kGauge;
  double value = 0.0;
  std::string label_key;
  std::string label_value;
  std::string help;
};

/// One timestamped registry capture — what the sampler rings and the
/// exporters consume. Real in both build modes.
struct MetricsSample {
  double t_ms = 0.0;  ///< steady_now_ms() at collection
  std::vector<MetricRow> rows;
};

#if PLS_OBSERVE

class MetricsRegistry {
 public:
  /// A source appends its rows to the sample under collection.
  using Source = std::function<void(MetricsSample&)>;

  static MetricsRegistry& global() {
    static MetricsRegistry r;
    return r;
  }

  /// Register a dynamic source; returns a token for remove_source().
  std::uint64_t add_source(Source source) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t id = next_source_id_++;
    sources_.emplace_back(id, std::move(source));
    return id;
  }

  /// Deregister; blocks until no in-flight collect() can still call the
  /// source, so the caller may free whatever the callback captures.
  void remove_source(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      if (sources_[i].first == id) {
        sources_.erase(sources_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  /// Snapshot every built-in adapter plus the registered sources.
  MetricsSample collect() const {
    MetricsSample s;
    s.t_ms = steady_now_ms();
    collect_counters(s);
    collect_histograms(s);
    s.rows.push_back(MetricRow{
        "pls_runs_total", MetricKind::kCounter,
        static_cast<double>(RunRegistry::global().total()), "", "",
        "Terminal operations recorded by the run registry"});
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, source] : sources_) {
      (void)id;
      source(s);
    }
    return s;
  }

 private:
  MetricsRegistry() = default;

  static void collect_counters(MetricsSample& s) {
    const CounterTotals t = aggregate_counters();
    for (const CounterField& f : kCounterFields) {
      MetricRow row;
      if (f.monotone) {
        row.name = std::string("pls_") + f.name + "_total";
        row.kind = MetricKind::kCounter;
      } else {
        row.name = std::string("pls_") + f.name;
        row.kind = MetricKind::kGauge;
      }
      row.value = static_cast<double>(t.*f.member);
      row.help = std::string("Process-wide ") + f.name +
                 (f.monotone ? " total" : " high-water mark");
      s.rows.push_back(std::move(row));
    }
  }

  static void collect_histograms(MetricsSample& s) {
    const HistogramSetSnapshot h = aggregate_histograms();
    const double ns = ns_per_tick();
    for (std::size_t i = 0; i < kMetricCount; ++i) {
      const auto m = static_cast<Metric>(i);
      const bool time = metric_is_time(m);
      const double scale = time ? ns : 1.0;
      const std::string base =
          std::string("pls_hist_") + metric_name(m) + (time ? "_ns" : "");
      const std::string help =
          std::string("Latency histogram for ") + metric_name(m) +
          (time ? " (nanoseconds)" : " (raw units)");
      static constexpr std::pair<double, const char*> kQuantiles[] = {
          {0.5, "0.5"}, {0.9, "0.9"}};
      for (const auto& [q, qlabel] : kQuantiles) {
        s.rows.push_back(MetricRow{base, MetricKind::kGauge,
                                   h.metric[i].quantile(q, scale), "quantile",
                                   qlabel, help});
      }
      s.rows.push_back(MetricRow{
          base + "_count", MetricKind::kCounter,
          static_cast<double>(h.metric[i].total), "", "", help + ": count"});
      s.rows.push_back(MetricRow{
          base + "_sum", MetricKind::kCounter,
          static_cast<double>(h.metric[i].sum) * scale, "", "",
          help + ": sum"});
    }
  }

  mutable std::mutex mutex_;
  std::vector<std::pair<std::uint64_t, Source>> sources_;
  std::uint64_t next_source_id_ = 1;
};

#else  // !PLS_OBSERVE — empty shell; every call site compiles to nothing.

class MetricsRegistry {
 public:
  using Source = std::function<void(MetricsSample&)>;
  static MetricsRegistry& global() {
    static MetricsRegistry r;
    return r;
  }
  std::uint64_t add_source(Source) { return 0; }
  void remove_source(std::uint64_t) {}
  MetricsSample collect() const { return {}; }
};

#endif  // PLS_OBSERVE

}  // namespace pls::observe
