// Cache-padded, per-worker log-bucketed latency histograms.
//
// A Histogram buckets values by order of magnitude: bucket b holds values
// in [2^(b-1), 2^b) (bucket 0 holds the value 0, bucket 1 the value 1).
// Recording is one relaxed fetch_add on a line only the owning thread
// writes — the same single-writer discipline as observe/counters.hpp —
// so the hot paths (task dispatch, deque pop, steal sweeps, leaf chunks)
// pay one uncontended RMW and never bounce a cache line.
//
// Every participating thread owns one HistogramBlock holding one
// Histogram per Metric:
//   kTaskRun       fork-join task execution time          (ticks)
//   kStealLatency  duration of a successful steal sweep   (ticks)
//   kQueueDepth    own-deque depth observed at pop        (tasks)
//   kLeafRun       leaf accumulation chunk time           (ticks)
//   kCombineRun    combiner invocation time               (ticks)
// Time metrics record raw now_ticks() deltas; snapshots convert to
// nanoseconds on demand (quantile/mean take a scale factor, and
// ns_per_tick() is the scale for tick-recorded metrics).
//
// Snapshots are plain mergeable structs — real in both build modes, so
// reporting code never needs an #if. Merging is bucket-wise addition,
// which is associative and commutative and conserves total counts: the
// laws tests/proptest/histogram_laws_test.cpp checks.
//
// With PLS_OBSERVE=0 every recording type collapses to an empty shell.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "observe/config.hpp"
#include "support/align.hpp"

namespace pls::observe {

/// Number of log2 buckets. 64 covers the full uint64 range: values at or
/// above 2^62 saturate into the last bucket.
inline constexpr std::size_t kHistogramBuckets = 64;

/// The per-worker metrics recorded as histograms.
enum class Metric : std::uint8_t {
  kTaskRun = 0,
  kStealLatency,
  kQueueDepth,
  kLeafRun,
  kCombineRun,
};
inline constexpr std::size_t kMetricCount = 5;

inline const char* metric_name(Metric m) noexcept {
  switch (m) {
    case Metric::kTaskRun: return "task_run";
    case Metric::kStealLatency: return "steal_latency";
    case Metric::kQueueDepth: return "queue_depth";
    case Metric::kLeafRun: return "leaf_run";
    case Metric::kCombineRun: return "combine_run";
  }
  return "?";
}

/// True when the metric records now_ticks() deltas (convert with
/// ns_per_tick()); false for unitless metrics (queue depth).
inline bool metric_is_time(Metric m) noexcept {
  return m != Metric::kQueueDepth;
}

/// Bucket index of a value: 0 for 0, otherwise bit_width(v) capped to the
/// last bucket, so bucket b > 0 spans [2^(b-1), 2^b).
inline std::size_t histogram_bucket(std::uint64_t v) noexcept {
  const std::size_t b = static_cast<std::size_t>(std::bit_width(v));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

/// Inclusive lower bound of a bucket's value range.
inline double bucket_lower_bound(std::size_t b) noexcept {
  if (b <= 1) return 0.0;
  return static_cast<double>(std::uint64_t{1} << (b - 1));
}

/// Exclusive upper bound of a bucket's value range.
inline double bucket_upper_bound(std::size_t b) noexcept {
  if (b == 0) return 1.0;
  if (b >= kHistogramBuckets - 1) return 1.8446744073709552e19;  // 2^64
  return static_cast<double>(std::uint64_t{1} << b);
}

/// Mergeable point-in-time view of one histogram. Always a real struct in
/// both build modes (zero everywhere with PLS_OBSERVE=0).
struct HistogramSnapshot {
  std::uint64_t counts[kHistogramBuckets] = {};
  std::uint64_t total = 0;      ///< number of recorded values
  std::uint64_t sum = 0;        ///< sum of recorded values
  std::uint64_t max_value = 0;  ///< largest recorded value

  bool empty() const noexcept { return total == 0; }

  /// Bucket-wise merge: associative, commutative, count-conserving.
  HistogramSnapshot& operator+=(const HistogramSnapshot& o) noexcept {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) counts[b] += o.counts[b];
    total += o.total;
    sum += o.sum;
    if (o.max_value > max_value) max_value = o.max_value;
    return *this;
  }

  friend HistogramSnapshot operator+(HistogramSnapshot a,
                                     const HistogramSnapshot& b) noexcept {
    a += b;
    return a;
  }

  /// Delta of two snapshots taken from the same monotone source
  /// (`after - before`): bucket counts, total and sum subtract; max_value
  /// keeps the later snapshot's high-water mark (it is not a counter, so
  /// a true per-interval max is unrecoverable — the caveat mirrors
  /// CounterTotals::max_split_depth).
  friend HistogramSnapshot operator-(HistogramSnapshot a,
                                     const HistogramSnapshot& b) noexcept {
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      a.counts[i] -= b.counts[i];
    }
    a.total -= b.total;
    a.sum -= b.sum;
    return a;
  }

  friend bool operator==(const HistogramSnapshot& a,
                         const HistogramSnapshot& b) noexcept {
    if (a.total != b.total || a.sum != b.sum || a.max_value != b.max_value) {
      return false;
    }
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (a.counts[i] != b.counts[i]) return false;
    }
    return true;
  }

  /// Estimated q-quantile (q in [0,1]) with linear interpolation inside
  /// the containing log bucket, scaled by `scale` (use ns_per_tick() for
  /// tick-recorded metrics). The estimate is within a factor of two of
  /// the true quantile by construction of the buckets. Returns 0 when
  /// empty.
  double quantile(double q, double scale = 1.0) const noexcept {
    if (total == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double rank = q * static_cast<double>(total);
    double cum = 0.0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (counts[b] == 0) continue;
      const double next = cum + static_cast<double>(counts[b]);
      if (rank <= next || b == kHistogramBuckets - 1 || next >= static_cast<double>(total)) {
        const double lo = bucket_lower_bound(b);
        const double hi = bucket_upper_bound(b);
        const double frac =
            counts[b] == 0 ? 0.0
                           : (rank - cum) / static_cast<double>(counts[b]);
        const double clamped = frac < 0.0 ? 0.0 : (frac > 1.0 ? 1.0 : frac);
        return (lo + clamped * (hi - lo)) * scale;
      }
      cum = next;
    }
    return static_cast<double>(max_value) * scale;
  }

  double mean(double scale = 1.0) const noexcept {
    return total == 0
               ? 0.0
               : static_cast<double>(sum) / static_cast<double>(total) * scale;
  }

  double max(double scale = 1.0) const noexcept {
    return static_cast<double>(max_value) * scale;
  }
};

/// One snapshot per metric — what aggregation hands to reporting code.
struct HistogramSetSnapshot {
  HistogramSnapshot metric[kMetricCount];

  const HistogramSnapshot& of(Metric m) const noexcept {
    return metric[static_cast<std::size_t>(m)];
  }
  HistogramSetSnapshot& operator+=(const HistogramSetSnapshot& o) noexcept {
    for (std::size_t i = 0; i < kMetricCount; ++i) metric[i] += o.metric[i];
    return *this;
  }
};

#if PLS_OBSERVE

/// Single-writer recording histogram: relaxed atomics on lines only the
/// owning thread writes; readers snapshot concurrently.
class Histogram {
 public:
  void record(std::uint64_t v) noexcept {
    counts_[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = max_value_.load(std::memory_order_relaxed);
    while (cur < v && !max_value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot s;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      s.counts[b] = counts_[b].load(std::memory_order_relaxed);
    }
    s.total = total_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max_value = max_value_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() noexcept {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_value_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> counts_[kHistogramBuckets] = {};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_value_{0};
};

/// One thread's histograms, cache-line aligned so two workers' blocks
/// never share a line.
struct alignas(kCacheLineSize) HistogramBlock {
  Histogram metric[kMetricCount];

  void record(Metric m, std::uint64_t v) noexcept {
    metric[static_cast<std::size_t>(m)].record(v);
  }

  HistogramSetSnapshot snapshot() const noexcept {
    HistogramSetSnapshot s;
    for (std::size_t i = 0; i < kMetricCount; ++i) {
      s.metric[i] = metric[i].snapshot();
    }
    return s;
  }

  void reset() noexcept {
    for (auto& h : metric) h.reset();
  }
};

/// Process-wide registry of per-thread histogram blocks; same slot
/// discipline as CounterRegistry (slots claimed on first use, never
/// recycled, overflow shares slot 0).
class HistogramRegistry {
 public:
  static constexpr std::size_t kMaxSlots = 256;

  static HistogramRegistry& global() {
    static HistogramRegistry r;
    return r;
  }

  HistogramBlock& local() {
    if (tls_block_ == nullptr) tls_block_ = &claim_slot();
    return *tls_block_;
  }

  HistogramSetSnapshot aggregate() const {
    HistogramSetSnapshot s;
    const std::size_t n = used_slots();
    for (std::size_t i = 0; i < n; ++i) s += slots_[i].snapshot();
    return s;
  }

  std::vector<HistogramSetSnapshot> per_thread() const {
    std::vector<HistogramSetSnapshot> out;
    const std::size_t n = used_slots();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(slots_[i].snapshot());
    return out;
  }

  /// Zero every block; only meaningful while the system is quiescent.
  void reset() {
    const std::size_t n = used_slots();
    for (std::size_t i = 0; i < n; ++i) slots_[i].reset();
  }

 private:
  HistogramRegistry() = default;

  std::size_t used_slots() const noexcept {
    const std::size_t n = next_slot_.load(std::memory_order_acquire);
    return n < kMaxSlots ? n : kMaxSlots;
  }

  HistogramBlock& claim_slot() {
    const std::size_t i = next_slot_.fetch_add(1, std::memory_order_acq_rel);
    return i < kMaxSlots ? slots_[i] : slots_[0];
  }

  HistogramBlock slots_[kMaxSlots];
  std::atomic<std::size_t> next_slot_{0};

  static thread_local HistogramBlock* tls_block_;
};

inline thread_local HistogramBlock* HistogramRegistry::tls_block_ = nullptr;

/// RAII phase timer: records elapsed ticks into the local block's
/// histogram for `m` on destruction.
class LatencyTimer {
 public:
  explicit LatencyTimer(Metric m) noexcept : m_(m), start_(now_ticks()) {}
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;
  ~LatencyTimer() {
    HistogramRegistry::global().local().record(m_, now_ticks() - start_);
  }

 private:
  Metric m_;
  std::uint64_t start_;
};

#else  // !PLS_OBSERVE — the whole layer is a no-op shell.

class Histogram {
 public:
  void record(std::uint64_t) noexcept {}
  HistogramSnapshot snapshot() const noexcept { return {}; }
  void reset() noexcept {}
};

struct HistogramBlock {
  void record(Metric, std::uint64_t) noexcept {}
  HistogramSetSnapshot snapshot() const noexcept { return {}; }
  void reset() noexcept {}
};

class HistogramRegistry {
 public:
  static constexpr std::size_t kMaxSlots = 0;
  static HistogramRegistry& global() {
    static HistogramRegistry r;
    return r;
  }
  HistogramBlock& local() noexcept { return block_; }
  HistogramSetSnapshot aggregate() const { return {}; }
  std::vector<HistogramSetSnapshot> per_thread() const { return {}; }
  void reset() {}

 private:
  HistogramBlock block_;
};

struct LatencyTimer {
  explicit LatencyTimer(Metric) noexcept {}
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;
};

#endif  // PLS_OBSERVE

/// The calling thread's histogram block.
inline HistogramBlock& local_histograms() {
  return HistogramRegistry::global().local();
}

/// Snapshot of the process-wide per-metric histograms (zero when compiled
/// out).
inline HistogramSetSnapshot aggregate_histograms() {
  return HistogramRegistry::global().aggregate();
}

}  // namespace pls::observe
