// Cache-line-padded per-worker execution counters.
//
// Every thread that participates in an execution (fork-join workers,
// external submitters, the thread driving a sequential leaf) owns one
// CounterBlock, obtained via local_counters(). Blocks are single-writer
// (the owning thread) and many-reader (aggregation), so all updates are
// relaxed atomic RMWs on a line nobody else writes — the increment costs
// one uncontended `lock add` and never bounces a cache line between
// workers. Aggregation walks the registry and sums snapshots on demand.
//
// What is counted (see docs/observability.md for the full schema):
//   tasks_executed        fork-join tasks run by this worker (incl. helping)
//   steals                successful task migrations *into* this worker
//   steal_failures        full victim sweeps that found nothing (idle probes)
//   forks                 invoke_two child pushes by this worker
//   splits                spliterator / PowerList splits performed
//   max_split_depth       deepest split level this worker descended to
//   elements_accumulated  elements consumed by leaf accumulation chunks
//   leaf_chunks           leaf accumulation chunks processed
//   combines              combiner invocations (ascending phase)
//   bytes_moved           element bytes physically moved between result
//                         containers (combine-phase data movement; zero on
//                         the destination-passing collect path)
//   allocations           result-container acquisitions (collector supply
//                         calls, sized-sink buffers, combiner scratch
//                         growth)
//   fused_leaves          leaf chunks evaluated by the push-mode fusion
//                         engine (docs/execution.md); leaf_chunks -
//                         fused_leaves is the legacy wrapper-walk count
//
// With PLS_OBSERVE=0 every type collapses to an empty shell and every
// member function to a no-op; call sites compile to nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "observe/config.hpp"
#include "support/align.hpp"

namespace pls::observe {

/// Plain aggregated totals — always a real struct, in both build modes, so
/// reporting code (benches, ExecutionReport, the pls:: facade) never needs
/// to be conditional.
struct CounterTotals {
  std::uint64_t tasks_executed = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_failures = 0;
  std::uint64_t forks = 0;
  std::uint64_t splits = 0;
  std::uint64_t max_split_depth = 0;
  std::uint64_t elements_accumulated = 0;
  std::uint64_t leaf_chunks = 0;
  std::uint64_t combines = 0;
  std::uint64_t bytes_moved = 0;
  std::uint64_t allocations = 0;
  std::uint64_t fused_leaves = 0;

  CounterTotals& operator+=(const CounterTotals& o) {
    tasks_executed += o.tasks_executed;
    steals += o.steals;
    steal_failures += o.steal_failures;
    forks += o.forks;
    splits += o.splits;
    max_split_depth = max_split_depth > o.max_split_depth
                          ? max_split_depth
                          : o.max_split_depth;
    elements_accumulated += o.elements_accumulated;
    leaf_chunks += o.leaf_chunks;
    combines += o.combines;
    bytes_moved += o.bytes_moved;
    allocations += o.allocations;
    fused_leaves += o.fused_leaves;
    return *this;
  }

  /// Delta of two snapshots taken from the same (monotonic) source.
  /// max_split_depth is not a counter; the later snapshot's value is kept.
  friend CounterTotals operator-(CounterTotals a, const CounterTotals& b) {
    a.tasks_executed -= b.tasks_executed;
    a.steals -= b.steals;
    a.steal_failures -= b.steal_failures;
    a.forks -= b.forks;
    a.splits -= b.splits;
    a.elements_accumulated -= b.elements_accumulated;
    a.leaf_chunks -= b.leaf_chunks;
    a.combines -= b.combines;
    a.bytes_moved -= b.bytes_moved;
    a.allocations -= b.allocations;
    a.fused_leaves -= b.fused_leaves;
    return a;
  }
};

/// One entry of the canonical counter-field table: the schema name, a
/// member pointer into CounterTotals, and whether the field is a monotone
/// counter (max_split_depth is a high-water mark — a gauge). Every
/// consumer that enumerates counter fields by name (bench JSON rows, the
/// Prometheus exposition, the JSONL run log) iterates kCounterFields so
/// there is exactly one copy of the name list.
struct CounterField {
  const char* name;
  std::uint64_t CounterTotals::*member;
  bool monotone;
};

/// The counter schema, in the order bench rows and docs/observability.md
/// present it. Real in both build modes.
inline constexpr CounterField kCounterFields[] = {
    {"tasks_executed", &CounterTotals::tasks_executed, true},
    {"steals", &CounterTotals::steals, true},
    {"steal_failures", &CounterTotals::steal_failures, true},
    {"forks", &CounterTotals::forks, true},
    {"splits", &CounterTotals::splits, true},
    {"max_split_depth", &CounterTotals::max_split_depth, false},
    {"elements_accumulated", &CounterTotals::elements_accumulated, true},
    {"leaf_chunks", &CounterTotals::leaf_chunks, true},
    {"fused_leaves", &CounterTotals::fused_leaves, true},
    {"combines", &CounterTotals::combines, true},
    {"bytes_moved", &CounterTotals::bytes_moved, true},
    {"allocations", &CounterTotals::allocations, true},
};

inline constexpr std::size_t kCounterFieldCount =
    sizeof(kCounterFields) / sizeof(kCounterFields[0]);

/// One worker's labelled totals, as returned by CounterRegistry::per_worker.
struct WorkerCounters {
  std::string label;
  CounterTotals totals;
};

/// A point-in-time capture of the whole registry: process totals plus the
/// per-worker breakdown. Scoped measurements subtract two snapshots taken
/// around the region of interest (`after - before`) instead of resetting
/// the monotonic counters — resets race with concurrent workers, deltas
/// never do. Real in both build modes (empty when compiled out).
struct CounterSnapshot {
  CounterTotals total;
  std::vector<WorkerCounters> per_worker;

  /// Delta of two snapshots from the same registry: totals subtract
  /// (operator- on CounterTotals), and per-worker rows pair up by slot
  /// index. Slots that registered after `b` was taken diff against zero.
  friend CounterSnapshot operator-(CounterSnapshot a,
                                   const CounterSnapshot& b) {
    a.total = a.total - b.total;
    for (std::size_t i = 0; i < a.per_worker.size(); ++i) {
      if (i < b.per_worker.size()) {
        a.per_worker[i].totals =
            a.per_worker[i].totals - b.per_worker[i].totals;
      }
    }
    return a;
  }
};

#if PLS_OBSERVE

/// One thread's counters: cache-line aligned (two lines since the
/// bytes_moved/allocations fields), never shared for writing.
struct alignas(kCacheLineSize) CounterBlock {
  std::atomic<std::uint64_t> tasks_executed{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> steal_failures{0};
  std::atomic<std::uint64_t> forks{0};
  std::atomic<std::uint64_t> splits{0};
  std::atomic<std::uint64_t> max_split_depth{0};
  std::atomic<std::uint64_t> elements_accumulated{0};
  std::atomic<std::uint64_t> leaf_chunks{0};
  std::atomic<std::uint64_t> combines{0};
  std::atomic<std::uint64_t> bytes_moved{0};
  std::atomic<std::uint64_t> allocations{0};
  std::atomic<std::uint64_t> fused_leaves{0};

  void on_task_executed() noexcept { bump(tasks_executed); }
  void on_steal(bool success) noexcept {
    bump(success ? steals : steal_failures);
  }
  void on_fork() noexcept { bump(forks); }
  void on_split(std::uint64_t depth) noexcept {
    bump(splits);
    raise_to(max_split_depth, depth);
  }
  void on_leaf(std::uint64_t elements) noexcept {
    bump(leaf_chunks);
    elements_accumulated.fetch_add(elements, std::memory_order_relaxed);
  }
  void on_combine() noexcept { bump(combines); }
  void on_bytes_moved(std::uint64_t bytes) noexcept {
    bytes_moved.fetch_add(bytes, std::memory_order_relaxed);
  }
  void on_allocation() noexcept { bump(allocations); }
  void on_fused_leaf() noexcept { bump(fused_leaves); }

  CounterTotals snapshot() const noexcept {
    CounterTotals t;
    t.tasks_executed = tasks_executed.load(std::memory_order_relaxed);
    t.steals = steals.load(std::memory_order_relaxed);
    t.steal_failures = steal_failures.load(std::memory_order_relaxed);
    t.forks = forks.load(std::memory_order_relaxed);
    t.splits = splits.load(std::memory_order_relaxed);
    t.max_split_depth = max_split_depth.load(std::memory_order_relaxed);
    t.elements_accumulated =
        elements_accumulated.load(std::memory_order_relaxed);
    t.leaf_chunks = leaf_chunks.load(std::memory_order_relaxed);
    t.combines = combines.load(std::memory_order_relaxed);
    t.bytes_moved = bytes_moved.load(std::memory_order_relaxed);
    t.allocations = allocations.load(std::memory_order_relaxed);
    t.fused_leaves = fused_leaves.load(std::memory_order_relaxed);
    return t;
  }

  void reset() noexcept {
    tasks_executed.store(0, std::memory_order_relaxed);
    steals.store(0, std::memory_order_relaxed);
    steal_failures.store(0, std::memory_order_relaxed);
    forks.store(0, std::memory_order_relaxed);
    splits.store(0, std::memory_order_relaxed);
    max_split_depth.store(0, std::memory_order_relaxed);
    elements_accumulated.store(0, std::memory_order_relaxed);
    leaf_chunks.store(0, std::memory_order_relaxed);
    combines.store(0, std::memory_order_relaxed);
    bytes_moved.store(0, std::memory_order_relaxed);
    allocations.store(0, std::memory_order_relaxed);
    fused_leaves.store(0, std::memory_order_relaxed);
  }

 private:
  static void bump(std::atomic<std::uint64_t>& c) noexcept {
    c.fetch_add(1, std::memory_order_relaxed);
  }
  static void raise_to(std::atomic<std::uint64_t>& c,
                       std::uint64_t v) noexcept {
    std::uint64_t cur = c.load(std::memory_order_relaxed);
    while (cur < v &&
           !c.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
};

/// Process-wide registry of per-thread counter blocks. Threads claim a
/// slot on first use and keep it for their lifetime; slots are never
/// recycled, so totals survive worker shutdown (a pool can be aggregated
/// after join). If more than kMaxSlots threads ever register, the
/// overflow threads share slot 0 — still correct (the block is atomic),
/// merely coarser attribution.
class CounterRegistry {
 public:
  static constexpr std::size_t kMaxSlots = 1024;

  static CounterRegistry& global() {
    static CounterRegistry r;
    return r;
  }

  /// The calling thread's block (claims a slot on first call).
  CounterBlock& local() {
    if (tls_block_ == nullptr) tls_block_ = &claim_slot();
    return *tls_block_;
  }

  /// Attach a human-readable label ("fj-worker-3", ...) to the calling
  /// thread's slot. Off the hot path; guarded by a mutex.
  void set_local_label(std::string label) {
    CounterBlock& block = local();
    const std::size_t slot =
        static_cast<std::size_t>(&block - slots_);
    std::lock_guard<std::mutex> lock(label_mutex_);
    labels_[slot] = std::move(label);
  }

  /// Sum of every registered block.
  CounterTotals aggregate() const {
    CounterTotals t;
    const std::size_t n = used_slots();
    for (std::size_t i = 0; i < n; ++i) t += slots_[i].snapshot();
    return t;
  }

  /// Per-slot snapshots with labels, skipping blocks that never counted
  /// anything (threads register lazily, so idle slots do not appear).
  std::vector<WorkerCounters> per_worker() const {
    std::vector<WorkerCounters> out;
    const std::size_t n = used_slots();
    std::lock_guard<std::mutex> lock(label_mutex_);
    for (std::size_t i = 0; i < n; ++i) {
      WorkerCounters w{labels_[i], slots_[i].snapshot()};
      if (w.label.empty()) w.label = "thread-" + std::to_string(i);
      out.push_back(std::move(w));
    }
    return out;
  }

  /// Zero every block. Only meaningful while the system is quiescent;
  /// prefer snapshot deltas (operator-) for scoped measurements.
  void reset() {
    const std::size_t n = used_slots();
    for (std::size_t i = 0; i < n; ++i) slots_[i].reset();
  }

 private:
  CounterRegistry() = default;

  std::size_t used_slots() const noexcept {
    const std::size_t n = next_slot_.load(std::memory_order_acquire);
    return n < kMaxSlots ? n : kMaxSlots;
  }

  CounterBlock& claim_slot() {
    const std::size_t i = next_slot_.fetch_add(1, std::memory_order_acq_rel);
    return i < kMaxSlots ? slots_[i] : slots_[0];
  }

  CounterBlock slots_[kMaxSlots];
  std::atomic<std::size_t> next_slot_{0};
  mutable std::mutex label_mutex_;
  std::string labels_[kMaxSlots];

  static thread_local CounterBlock* tls_block_;
};

inline thread_local CounterBlock* CounterRegistry::tls_block_ = nullptr;

#else  // !PLS_OBSERVE — the whole layer is a no-op shell.

struct CounterBlock {
  void on_task_executed() noexcept {}
  void on_steal(bool) noexcept {}
  void on_fork() noexcept {}
  void on_split(std::uint64_t) noexcept {}
  void on_leaf(std::uint64_t) noexcept {}
  void on_combine() noexcept {}
  void on_bytes_moved(std::uint64_t) noexcept {}
  void on_allocation() noexcept {}
  void on_fused_leaf() noexcept {}
  CounterTotals snapshot() const noexcept { return {}; }
  void reset() noexcept {}
};

class CounterRegistry {
 public:
  static constexpr std::size_t kMaxSlots = 0;
  static CounterRegistry& global() {
    static CounterRegistry r;
    return r;
  }
  CounterBlock& local() noexcept { return block_; }
  void set_local_label(std::string) {}
  CounterTotals aggregate() const { return {}; }
  std::vector<WorkerCounters> per_worker() const { return {}; }
  void reset() {}

 private:
  CounterBlock block_;
};

#endif  // PLS_OBSERVE

/// The calling thread's counter block.
inline CounterBlock& local_counters() {
  return CounterRegistry::global().local();
}

/// Snapshot of the process-wide totals (zero when compiled out).
inline CounterTotals aggregate_counters() {
  return CounterRegistry::global().aggregate();
}

/// Full registry capture for scoped delta measurement:
///   auto before = counter_snapshot();
///   run();
///   auto delta = counter_snapshot() - before;
inline CounterSnapshot counter_snapshot() {
  CounterRegistry& r = CounterRegistry::global();
  return CounterSnapshot{r.aggregate(), r.per_worker()};
}

}  // namespace pls::observe
