// Telemetry exporters: Prometheus text exposition + JSONL structured log.
//
// Two consumers over MetricsRegistry samples and the RunRegistry history:
//
//   write_prometheus(os, sample) renders one MetricsSample in the
//   Prometheus text exposition format — # HELP / # TYPE per metric name
//   (first occurrence wins), `name{label="value"} value` per row, label
//   values escaped per the spec. Scrape-ready for the future service
//   layer; real in both build modes (an empty sample renders nothing).
//
//   MetricsLog is the file exporter: one JSON object per line, mirroring
//   the PLS_TRACE_PATH lifecycle exactly — the destination comes from the
//   PLS_METRICS_PATH environment variable (or set_output_path()), and
//   enable() registers an atexit flush so an early exit() still leaves a
//   valid log behind. Lines are:
//     {"type":"run", ...}     one per RunRegistry record: plan identity
//                             (cache_key as a decimal *string* — full
//                             64-bit keys do not survive JSON doubles),
//                             verdicts, counter deltas (one field per
//                             kCounterFields entry), wall time, leaf
//                             latency quantiles
//     {"type":"sample", ...}  one per retained SampleRing entry with the
//                             full row list
//
//   MetricsSession is the scoped lifecycle (the telemetry analogue of
//   TraceSession): construction clears stale ring/run state, enables the
//   log, and starts the sampler; destruction stops the sampler, captures
//   one final sample, and flushes — also during stack unwinding, which
//   the atexit hook alone would miss. It lives here rather than in
//   observe/sampler.hpp because teardown needs the exporter's flush.
//
// With PLS_OBSERVE=0 MetricsLog and MetricsSession are empty shells and
// every call site compiles to nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>

#include "observe/config.hpp"
#include "observe/counters.hpp"
#include "observe/metrics.hpp"
#include "observe/run_registry.hpp"
#include "observe/sampler.hpp"

namespace pls::observe {

namespace detail {

/// Minimal JSON string escape (same subset as the bench encoder).
inline std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

inline std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Prometheus label-value escaping: backslash, double-quote, line feed.
inline std::string prom_escape_label(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Prometheus HELP-text escaping: backslash and line feed only.
inline std::string prom_escape_help(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace detail

/// Render one sample in the Prometheus text exposition format. Rows are
/// grouped by metric name in first-occurrence order; each name gets one
/// # HELP and one # TYPE line, then every row under that name. Real in
/// both build modes (empty sample, empty output).
inline void write_prometheus(std::ostream& os, const MetricsSample& sample) {
  const std::size_t n = sample.rows.size();
  for (std::size_t i = 0; i < n; ++i) {
    const MetricRow& head = sample.rows[i];
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (sample.rows[j].name == head.name) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    if (!head.help.empty()) {
      os << "# HELP " << head.name << ' '
         << detail::prom_escape_help(head.help) << '\n';
    }
    os << "# TYPE " << head.name << ' '
       << (head.kind == MetricKind::kCounter ? "counter" : "gauge") << '\n';
    for (std::size_t j = i; j < n; ++j) {
      const MetricRow& row = sample.rows[j];
      if (row.name != head.name) continue;
      os << row.name;
      if (!row.label_key.empty()) {
        os << '{' << row.label_key << "=\""
           << detail::prom_escape_label(row.label_value) << "\"}";
      }
      os << ' ' << detail::fmt_double(row.value) << '\n';
    }
  }
}

inline std::string prometheus_text(const MetricsSample& sample) {
  std::ostringstream os;
  write_prometheus(os, sample);
  return os.str();
}

/// Serialize one run record as a single-line JSON object. Real in both
/// build modes (the JSONL round-trip test feeds it synthetic records).
inline std::string run_record_json(const RunRecord& r) {
  std::ostringstream os;
  os << "{\"type\":\"run\",\"sequence\":" << r.sequence
     << ",\"t_ms\":" << detail::fmt_double(r.t_ms)
     << ",\"cache_key\":\"" << r.cache_key << "\""
     << ",\"terminal\":" << detail::json_escape(r.terminal)
     << ",\"origin\":" << detail::json_escape(r.origin)
     << ",\"parallel\":" << (r.parallel ? "true" : "false")
     << ",\"parallelism\":" << r.parallelism
     << ",\"source_size\":" << r.source_size
     << ",\"fused\":" << (r.fused ? "true" : "false")
     << ",\"fusion_reason\":" << detail::json_escape(r.fusion_reason)
     << ",\"dps\":" << (r.dps ? "true" : "false")
     << ",\"dps_reason\":" << detail::json_escape(r.dps_reason)
     << ",\"drive\":" << detail::json_escape(r.drive)
     << ",\"grain\":" << r.grain
     << ",\"grain_source\":" << detail::json_escape(r.grain_source)
     << ",\"kernel\":" << detail::json_escape(r.kernel)
     << ",\"counters\":{";
  for (std::size_t i = 0; i < kCounterFieldCount; ++i) {
    if (i != 0) os << ',';
    os << '"' << kCounterFields[i].name
       << "\":" << r.counters.*kCounterFields[i].member;
  }
  os << "},\"wall_ms\":" << detail::fmt_double(r.wall_ms)
     << ",\"leaf_p50_ns\":" << detail::fmt_double(r.leaf_p50_ns)
     << ",\"leaf_p90_ns\":" << detail::fmt_double(r.leaf_p90_ns) << '}';
  return os.str();
}

/// Serialize one metrics sample as a single-line JSON object.
inline std::string sample_json(const MetricsSample& s) {
  std::ostringstream os;
  os << "{\"type\":\"sample\",\"t_ms\":" << detail::fmt_double(s.t_ms)
     << ",\"rows\":[";
  for (std::size_t i = 0; i < s.rows.size(); ++i) {
    const MetricRow& row = s.rows[i];
    if (i != 0) os << ',';
    os << "{\"name\":" << detail::json_escape(row.name) << ",\"kind\":\""
       << (row.kind == MetricKind::kCounter ? "counter" : "gauge")
       << "\",\"value\":" << detail::fmt_double(row.value);
    if (!row.label_key.empty()) {
      os << ",\"labels\":{" << detail::json_escape(row.label_key) << ':'
         << detail::json_escape(row.label_value) << '}';
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

#if PLS_OBSERVE

/// The JSONL file exporter; lifecycle mirrors TraceRecorder.
class MetricsLog {
 public:
  static MetricsLog& global() {
    static MetricsLog log;
    return log;
  }

  /// Arm the exporter: the first enable registers an atexit flush, so an
  /// early exit() still writes the configured log. The singletons the
  /// flush reads are touched *before* registration — atexit handlers run
  /// interleaved with static destructors in reverse order, so anything
  /// constructed after the handler registers would be destroyed before it
  /// runs.
  void enable() {
    (void)MetricsRegistry::global();
    (void)RunRegistry::global();
    (void)MetricsSampler::global();
    bool expected = false;
    if (atexit_registered_.compare_exchange_strong(expected, true)) {
      std::atexit([] { MetricsLog::global().flush(); });
    }
  }

  /// Destination for flush(); empty disables file output. Initialised
  /// from the PLS_METRICS_PATH environment variable.
  void set_output_path(std::string path) {
    std::lock_guard<std::mutex> lock(path_mutex_);
    output_path_ = std::move(path);
  }

  std::string output_path() const {
    std::lock_guard<std::mutex> lock(path_mutex_);
    return output_path_;
  }

  /// Write every retained run record, then every retained sample, one
  /// JSON object per line. A no-op when no path is set or there is
  /// nothing to write; returns whether a file was written. Idempotent —
  /// flushing twice rewrites the same content.
  bool flush() const {
    const std::string path = output_path();
    if (path.empty()) return false;
    const auto runs = RunRegistry::global().records();
    const auto samples = MetricsSampler::global().ring().samples();
    if (runs.empty() && samples.empty()) return false;
    std::ofstream out(path);
    if (!out) return false;
    for (const RunRecord& r : runs) out << run_record_json(r) << '\n';
    for (const MetricsSample& s : samples) out << sample_json(s) << '\n';
    return static_cast<bool>(out);
  }

 private:
  MetricsLog() {
    if (const char* env = std::getenv("PLS_METRICS_PATH")) {
      output_path_ = env;
    }
  }

  std::atomic<bool> atexit_registered_{false};
  mutable std::mutex path_mutex_;
  std::string output_path_;
};

/// Scoped telemetry session: clears stale ring/run state, arms the JSONL
/// log, and starts the background sampler on construction; stops the
/// sampler, captures one final sample, and flushes on destruction — also
/// when the scope unwinds on an exception. `interval_ms` 0 defers to
/// PLS_METRICS_INTERVAL_MS (still 0: no sampling thread, run records and
/// the final flush still happen). An explicit `path` overrides the log's
/// configured destination for this and later sessions.
class MetricsSession {
 public:
  explicit MetricsSession(unsigned interval_ms = 0, std::string path = {}) {
    MetricsLog& log = MetricsLog::global();
    if (!path.empty()) log.set_output_path(std::move(path));
    log.enable();
    MetricsSampler& sampler = MetricsSampler::global();
    sampler.ring().clear();
    RunRegistry::global().clear();
    sampler.start(interval_ms);
  }

  MetricsSession(const MetricsSession&) = delete;
  MetricsSession& operator=(const MetricsSession&) = delete;

  ~MetricsSession() {
    MetricsSampler& sampler = MetricsSampler::global();
    sampler.stop();
    sampler.ring().push(MetricsRegistry::global().collect());
    MetricsLog::global().flush();
  }
};

#else  // !PLS_OBSERVE — empty shells; every call site compiles to nothing.

class MetricsLog {
 public:
  static MetricsLog& global() {
    static MetricsLog log;
    return log;
  }
  void enable() noexcept {}
  void set_output_path(std::string) noexcept {}
  std::string output_path() const { return {}; }
  bool flush() const noexcept { return false; }
};

struct MetricsSession {
  explicit MetricsSession(unsigned = 0, std::string = {}) noexcept {}
  MetricsSession(const MetricsSession&) = delete;
  MetricsSession& operator=(const MetricsSession&) = delete;
};

#endif  // PLS_OBSERVE

}  // namespace pls::observe
