// Multiway spliterators: the Spliterator extension the paper proposes.
//
// Section V: "Since the definition of the Spliterator interface offers only
// the possibility to split the data in two parts (each time), the
// possibility to include also the PList extension, and so multi-way
// divide-and-conquer is not possible (yet). If the definition of the
// Spliterator would be extended with a trySplit method that returns a set
// of Spliterators that all together cover all the elements of the source,
// then the adaptation to PList would become possible."
//
// This header builds exactly that extension: MultiwaySpliterator adds
//   try_split_n(n) -> vector of n-1 prefix spliterators (this keeps the
//   last part),
// NTie/NZip implement it over strided windows, and evaluate_collect_multiway
// runs the collect template method over an n-ary task tree, folding the
// parts in encounter order with the collector's combiner.
#pragma once

#include <memory>
#include <vector>

#include "forkjoin/pool.hpp"
#include "streams/collector.hpp"
#include "streams/parallel_eval.hpp"
#include "streams/spliterator.hpp"
#include "support/assert.hpp"

namespace pls::plist {

/// Spliterator that can also split into n parts at once.
template <typename T>
class MultiwaySpliterator : public streams::Spliterator<T> {
 public:
  /// Partition off n-1 spliterators so that, together with this one (which
  /// keeps the *last* part), they cover all remaining elements in
  /// encounter order (returned[0] first, ..., this last). Returns an empty
  /// vector when the source cannot be split n ways.
  virtual std::vector<std::unique_ptr<streams::Spliterator<T>>> try_split_n(
      std::size_t n) = 0;

  /// Binary split defaults to try_split_n(2).
  std::unique_ptr<streams::Spliterator<T>> try_split() override {
    auto parts = try_split_n(2);
    if (parts.empty()) return nullptr;
    PLS_ASSERT(parts.size() == 1);
    return std::move(parts.front());
  }
};

namespace detail {

/// Shared strided-window plumbing for the two concrete multiway sources.
/// Like SpliteratorPower2, the (start, incr, count) triple doubles as the
/// destination window of the destination-passing collect: both n-way
/// split rules partition the parent's window (n-way tie keeps the stride,
/// n-way zip multiplies it by n), so the multi-way contract extends the
/// WindowedSource one — every part of try_split_n is itself windowed.
template <typename T>
class StridedMultiwayBase : public MultiwaySpliterator<T>,
                            public streams::WindowedSource {
 public:
  using Action = typename streams::Spliterator<T>::Action;

  StridedMultiwayBase(std::shared_ptr<const std::vector<T>> data,
                      std::size_t start, std::size_t incr, std::size_t count)
      : data_(std::move(data)), start_(start), incr_(incr), count_(count) {
    PLS_CHECK(data_ != nullptr, "multiway spliterator requires storage");
    PLS_CHECK(incr >= 1, "increment must be >= 1");
    PLS_CHECK(count == 0 || start + (count - 1) * incr < data_->size(),
              "strided window exceeds storage");
  }

  bool try_advance(Action action) override {
    if (count_ == 0) return false;
    action((*data_)[start_]);
    start_ += incr_;
    --count_;
    return true;
  }

  void for_each_remaining(Action action) override {
    const std::vector<T>& v = *data_;
    std::size_t idx = start_;
    for (std::size_t k = 0; k < count_; ++k, idx += incr_) action(v[idx]);
    start_ = idx;
    count_ = 0;
  }

  std::uint64_t estimate_size() const override { return count_; }

  streams::Characteristics characteristics() const override {
    return streams::kOrdered | streams::kSized | streams::kSubsized |
           streams::kImmutable;
  }

  std::optional<streams::OutputWindow> try_output_window() const override {
    return streams::OutputWindow{start_, incr_, count_};
  }

 protected:
  std::shared_ptr<const std::vector<T>> data_;
  std::size_t start_;
  std::size_t incr_;
  std::size_t count_;
};

}  // namespace detail

/// n-way segment splitting (the n-way tie operator).
template <typename T>
class NTieSpliterator final : public detail::StridedMultiwayBase<T> {
 public:
  using detail::StridedMultiwayBase<T>::StridedMultiwayBase;

  explicit NTieSpliterator(std::shared_ptr<const std::vector<T>> data)
      : detail::StridedMultiwayBase<T>(data, 0, 1, data ? data->size() : 0) {}

  std::vector<std::unique_ptr<streams::Spliterator<T>>> try_split_n(
      std::size_t n) override {
    if (n < 2 || this->count_ < n || this->count_ % n != 0) return {};
    const std::size_t part = this->count_ / n;
    std::vector<std::unique_ptr<streams::Spliterator<T>>> out;
    out.reserve(n - 1);
    for (std::size_t k = 0; k + 1 < n; ++k) {
      out.push_back(std::make_unique<NTieSpliterator<T>>(
          this->data_, this->start_ + this->incr_ * part * k, this->incr_,
          part));
    }
    this->start_ += this->incr_ * part * (n - 1);
    this->count_ = part;
    return out;
  }
};

/// n-way interleaved splitting (the n-way zip operator): part k holds the
/// elements at positions ≡ k (mod n); this keeps the last residue.
template <typename T>
class NZipSpliterator final : public detail::StridedMultiwayBase<T> {
 public:
  using detail::StridedMultiwayBase<T>::StridedMultiwayBase;

  explicit NZipSpliterator(std::shared_ptr<const std::vector<T>> data)
      : detail::StridedMultiwayBase<T>(data, 0, 1, data ? data->size() : 0) {}

  std::vector<std::unique_ptr<streams::Spliterator<T>>> try_split_n(
      std::size_t n) override {
    if (n < 2 || this->count_ < n || this->count_ % n != 0) return {};
    const std::size_t part = this->count_ / n;
    std::vector<std::unique_ptr<streams::Spliterator<T>>> out;
    out.reserve(n - 1);
    for (std::size_t k = 0; k + 1 < n; ++k) {
      out.push_back(std::make_unique<NZipSpliterator<T>>(
          this->data_, this->start_ + this->incr_ * k, this->incr_ * n,
          part));
    }
    this->start_ += this->incr_ * (n - 1);
    this->incr_ *= n;
    this->count_ = part;
    return out;
  }
};

namespace detail {

template <typename T, typename C>
typename C::accumulation_type collect_multiway_tree(
    forkjoin::ForkJoinPool& pool, streams::Spliterator<T>& sp, const C& c,
    std::size_t arity, std::uint64_t target) {
  using A = typename C::accumulation_type;
  if (sp.estimate_size() <= target) {
    return streams::detail::collect_leaf(sp, c);
  }
  auto* multiway = dynamic_cast<MultiwaySpliterator<T>*>(&sp);
  std::vector<std::unique_ptr<streams::Spliterator<T>>> prefixes;
  if (multiway != nullptr && arity > 2) {
    prefixes = multiway->try_split_n(arity);
  }
  if (prefixes.empty()) {
    // Fall back to binary splitting.
    auto prefix = sp.try_split();
    if (!prefix) return streams::detail::collect_leaf(sp, c);
    prefixes.push_back(std::move(prefix));
  }
  // Evaluate all parts (prefixes in order, then this) in parallel.
  const std::size_t parts = prefixes.size() + 1;
  std::vector<std::optional<A>> results(parts);
  std::vector<std::function<void()>> thunks;
  thunks.reserve(parts);
  for (std::size_t k = 0; k < prefixes.size(); ++k) {
    thunks.push_back([&, k] {
      results[k].emplace(collect_multiway_tree(pool, *prefixes[k], c, arity,
                                               target));
    });
  }
  thunks.push_back([&] {
    results[parts - 1].emplace(
        collect_multiway_tree(pool, sp, c, arity, target));
  });
  // Binary fork over the thunk list.
  struct Runner {
    forkjoin::ForkJoinPool& pool;
    std::vector<std::function<void()>>& thunks;
    void run(std::size_t lo, std::size_t hi) {  // [lo, hi)
      if (hi - lo == 1) {
        thunks[lo]();
        return;
      }
      const std::size_t mid = lo + (hi - lo) / 2;
      pool.invoke_two([&] { run(lo, mid); }, [&] { run(mid, hi); });
    }
  } runner{pool, thunks};
  runner.run(0, parts);
  // Fold left in encounter order with the collector's combiner.
  A acc = std::move(*results[0]);
  for (std::size_t k = 1; k < parts; ++k) {
    observe::local_counters().on_combine();
    c.combine(acc, *results[k]);
  }
  return acc;
}

/// Destination-passing multiway collect: every part writes into its own
/// window of the shared sink, so no fold runs at all — which is what
/// makes n-way *zip* reconstruction expressible here (the windows encode
/// the n-way interleaving that no pairwise combiner can).
template <typename T, typename C>
  requires streams::SizedSinkCollector<C, T>
void collect_into_multiway_tree(forkjoin::ForkJoinPool& pool,
                                streams::Spliterator<T>& sp, const C& c,
                                typename C::sized_accumulation_type& sink,
                                const streams::OutputWindow& root,
                                std::size_t arity, std::uint64_t target,
                                unsigned depth = 0) {
  if (sp.estimate_size() <= target) {
    streams::detail::collect_into_leaf(sp, c, sink, root);
    return;
  }
  auto* multiway = dynamic_cast<MultiwaySpliterator<T>*>(&sp);
  std::vector<std::unique_ptr<streams::Spliterator<T>>> prefixes;
  if (multiway != nullptr && arity > 2) {
    prefixes = multiway->try_split_n(arity);
  }
  if (prefixes.empty()) {
    auto prefix = sp.try_split();
    if (!prefix) {
      streams::detail::collect_into_leaf(sp, c, sink, root);
      return;
    }
    prefixes.push_back(std::move(prefix));
  }
  observe::local_counters().on_split(depth);
  const std::size_t parts = prefixes.size() + 1;
  std::vector<std::function<void()>> thunks;
  thunks.reserve(parts);
  for (std::size_t k = 0; k < prefixes.size(); ++k) {
    thunks.push_back([&, k] {
      collect_into_multiway_tree(pool, *prefixes[k], c, sink, root, arity,
                                 target, depth + 1);
    });
  }
  thunks.push_back([&] {
    collect_into_multiway_tree(pool, sp, c, sink, root, arity, target,
                               depth + 1);
  });
  struct Runner {
    forkjoin::ForkJoinPool& pool;
    std::vector<std::function<void()>>& thunks;
    void run(std::size_t lo, std::size_t hi) {  // [lo, hi)
      if (hi - lo == 1) {
        thunks[lo]();
        return;
      }
      const std::size_t mid = lo + (hi - lo) / 2;
      pool.invoke_two([&] { run(lo, mid); }, [&] { run(mid, hi); });
    }
  } runner{pool, thunks};
  runner.run(0, parts);
}

}  // namespace detail

/// Run a mutable reduction over a multiway source, splitting `arity` ways
/// at each level (binary fallback where the source refuses).
///
/// On the supplier/combiner path the parts fold pairwise left-to-right
/// with the collector's combiner, which is correct for tie-structured/
/// associative collectors (concat, sums, ...) but cannot express n-way
/// *zip* reconstruction (zip_join(a,b,c) != zip_all(zip_all(a,b),c)).
/// The destination-passing path lifts that restriction: when the
/// collector is a sized sink and the source is windowed, every part
/// writes straight into its interleaved window and no combiner runs —
/// so an NZipSpliterator source reconstructs correctly at any arity.
/// Supplier/combiner functions needing n-way zip must still use
/// PListFunction::combine_n (see plist/functions.hpp).
template <typename T, typename C>
typename C::result_type evaluate_collect_multiway(
    streams::Spliterator<T>& sp, const C& c, std::size_t arity, bool parallel,
    const streams::ExecutionConfig& cfg = {}) {
  PLS_CHECK(arity >= 2, "multiway evaluation needs arity >= 2");
  if constexpr (streams::SizedSinkCollector<C, T>) {
    if (cfg.sized_sink) {
      if (auto root = streams::plan_dps_window(sp)) {
        auto sink = c.supply_sized(root->count);
        if (!parallel) {
          streams::detail::collect_into_leaf(sp, c, sink, *root);
        } else {
          auto& pool = cfg.effective_pool();
          const std::uint64_t target =
              cfg.target_size(root->count, pool.parallelism());
          pool.run([&] {
            detail::collect_into_multiway_tree(pool, sp, c, sink, *root,
                                               arity, target);
          });
        }
        return c.finish_sized(std::move(sink));
      }
    }
  }
  if (!parallel) {
    return c.finish(streams::detail::collect_leaf(sp, c));
  }
  auto& pool = cfg.effective_pool();
  const std::uint64_t target =
      cfg.target_size(sp.estimate_size(), pool.parallelism());
  auto acc = pool.run([&] {
    return detail::collect_multiway_tree(pool, sp, c, arity, target);
  });
  return c.finish(std::move(acc));
}

}  // namespace pls::plist
