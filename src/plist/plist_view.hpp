// PListView: n-way generalisation of PowerListView (Kornerup's PLists,
// Section II of the paper).
//
// A PList drops the power-of-two restriction and generalises the two
// binary constructors to arities: for n >= 2,
//   n-way tie  [ | i : i in n : p.i ]  — concatenation of n similar lists;
//   n-way zip  [ ⋈ i : i in n : p.i ]  — interleaving of n similar lists,
// so for p.i = [i*3, i*3+1, i*3+2]:
//   3-way tie = [0,1,2,3,4,5,6,7,8],  3-way zip = [0,3,6,1,4,7,2,5,8]
// (the paper's example). Deconstruction requires the length to be
// divisible by the arity.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

#include "support/assert.hpp"

namespace pls::plist {

template <typename T>
class PListView {
 public:
  using element_type = T;

  PListView(T* base, std::size_t start, std::size_t stride,
            std::size_t length)
      : base_(base), start_(start), stride_(stride), length_(length) {
    PLS_CHECK(base != nullptr, "PListView requires storage");
    PLS_CHECK(length >= 1, "PList must be non-empty");
    PLS_CHECK(stride >= 1, "PListView stride must be >= 1");
  }

  template <typename Vec>
  static PListView over(Vec& storage) {
    return PListView(storage.data(), 0, 1, storage.size());
  }

  operator PListView<const T>() const {
    return PListView<const T>(base_, start_, stride_, length_);
  }

  std::size_t length() const noexcept { return length_; }
  bool is_singleton() const noexcept { return length_ == 1; }

  T& operator[](std::size_t i) const {
    PLS_ASSERT(i < length_);
    return base_[start_ + i * stride_];
  }

  bool divisible_by(std::size_t n) const noexcept {
    return n >= 1 && length_ % n == 0;
  }

  /// n-way tie deconstruction: n consecutive blocks of length/n.
  std::vector<PListView> tie_n(std::size_t n) const {
    PLS_CHECK(n >= 2 && divisible_by(n),
              "n-way tie requires length divisible by n (n >= 2)");
    const std::size_t part = length_ / n;
    std::vector<PListView> out;
    out.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      out.push_back(
          PListView(base_, start_ + stride_ * part * k, stride_, part));
    }
    return out;
  }

  /// n-way zip deconstruction: the k-th part holds indices ≡ k (mod n).
  std::vector<PListView> zip_n(std::size_t n) const {
    PLS_CHECK(n >= 2 && divisible_by(n),
              "n-way zip requires length divisible by n (n >= 2)");
    const std::size_t part = length_ / n;
    std::vector<PListView> out;
    out.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      out.push_back(
          PListView(base_, start_ + stride_ * k, stride_ * n, part));
    }
    return out;
  }

  std::vector<std::remove_const_t<T>> to_vector() const {
    std::vector<std::remove_const_t<T>> out;
    out.reserve(length_);
    for (std::size_t i = 0; i < length_; ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  T* base_;
  std::size_t start_;
  std::size_t stride_;
  std::size_t length_;
};

/// n-way tie construction: concatenate n similar vectors.
template <typename T>
std::vector<T> tie_join(const std::vector<std::vector<T>>& parts) {
  PLS_CHECK(!parts.empty(), "tie_join requires at least one part");
  std::vector<T> out;
  out.reserve(parts.size() * parts.front().size());
  for (const auto& p : parts) {
    PLS_CHECK(p.size() == parts.front().size(),
              "tie_join requires similar parts");
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

/// n-way zip construction: interleave n similar vectors.
template <typename T>
std::vector<T> zip_join(const std::vector<std::vector<T>>& parts) {
  PLS_CHECK(!parts.empty(), "zip_join requires at least one part");
  const std::size_t n = parts.size();
  const std::size_t part_len = parts.front().size();
  for (const auto& p : parts) {
    PLS_CHECK(p.size() == part_len, "zip_join requires similar parts");
  }
  std::vector<T> out(n * part_len);
  for (std::size_t i = 0; i < part_len; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      out[i * n + k] = parts[k][i];
    }
  }
  return out;
}

}  // namespace pls::plist
