// PListFunction: multi-way divide-and-conquer skeleton (the JPLF PList
// extension the paper cites as [21]).
//
// Generalises PowerFunction to arbitrary arities: a node of length L
// splits into arity(L) parts (the arity may differ level to level, as
// PList theory allows), contexts flow down through descend_n, and results
// recombine through the n-ary combine_n — which is also what a zip-based
// n-way function needs (pairwise folding cannot express n-way
// interleaving).
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "forkjoin/pool.hpp"
#include "plist/plist_view.hpp"
#include "powerlist/function.hpp"
#include "support/assert.hpp"

namespace pls::plist {

using powerlist::NoContext;

enum class NWayOp { kTie, kZip };

template <typename T, typename R, typename Ctx = NoContext>
class PListFunction {
 public:
  using input_type = T;
  using result_type = R;
  using context_type = Ctx;

  virtual ~PListFunction() = default;

  /// How many ways to split a node of this length (>= 2 to split; return
  /// anything that does not divide the length to force a leaf).
  virtual std::size_t arity(std::size_t length) const {
    (void)length;
    return 2;
  }

  virtual NWayOp decomposition() const { return NWayOp::kTie; }

  virtual R basic_case(PListView<const T> leaf, const Ctx& ctx) const = 0;

  /// Combine the n part results, in encounter order of the parts.
  virtual R combine_n(std::vector<R>&& parts, const Ctx& ctx,
                      std::size_t length) const = 0;

  /// Contexts for the n parts (default: n copies).
  virtual std::vector<Ctx> descend_n(const Ctx& ctx, std::size_t length,
                                     std::size_t n) const {
    (void)length;
    return std::vector<Ctx>(n, ctx);
  }
};

namespace detail {

template <typename T, typename R, typename Ctx>
R run_plist(forkjoin::ForkJoinPool* pool, const PListFunction<T, R, Ctx>& f,
            PListView<const T> input, const Ctx& ctx, std::size_t leaf_size,
            std::size_t fork_grain) {
  const std::size_t n = f.arity(input.length());
  if (input.length() <= leaf_size || n < 2 || !input.divisible_by(n) ||
      input.length() / n == 0 || input.length() == 1) {
    return f.basic_case(input, ctx);
  }
  const auto parts = f.decomposition() == NWayOp::kTie ? input.tie_n(n)
                                                       : input.zip_n(n);
  const auto contexts = f.descend_n(ctx, input.length(), n);
  PLS_CHECK(contexts.size() == n, "descend_n must return arity contexts");
  std::vector<std::optional<R>> results(n);
  if (pool != nullptr && input.length() > fork_grain) {
    struct Runner {
      forkjoin::ForkJoinPool* pool;
      const PListFunction<T, R, Ctx>& f;
      const std::vector<PListView<const T>>& parts;
      const std::vector<Ctx>& contexts;
      std::vector<std::optional<R>>& results;
      std::size_t leaf_size;
      std::size_t fork_grain;
      void run(std::size_t lo, std::size_t hi) {
        if (hi - lo == 1) {
          results[lo].emplace(run_plist(pool, f, parts[lo], contexts[lo],
                                        leaf_size, fork_grain));
          return;
        }
        const std::size_t mid = lo + (hi - lo) / 2;
        pool->invoke_two([&] { run(lo, mid); }, [&] { run(mid, hi); });
      }
    } runner{pool, f, parts, contexts, results, leaf_size, fork_grain};
    runner.run(0, n);
  } else {
    for (std::size_t k = 0; k < n; ++k) {
      results[k].emplace(run_plist(pool, f, parts[k], contexts[k], leaf_size,
                                   fork_grain));
    }
  }
  std::vector<R> collected;
  collected.reserve(n);
  for (auto& r : results) collected.push_back(std::move(*r));
  return f.combine_n(std::move(collected), ctx, input.length());
}

}  // namespace detail

template <typename T, typename R, typename Ctx>
R execute_sequential(const PListFunction<T, R, Ctx>& f,
                     PListView<const T> input, Ctx ctx = Ctx{},
                     std::size_t leaf_size = 1) {
  PLS_CHECK(leaf_size >= 1, "leaf size must be >= 1");
  return detail::run_plist(nullptr, f, input, ctx, leaf_size, 0);
}

template <typename T, typename R, typename Ctx>
R execute_forkjoin(forkjoin::ForkJoinPool& pool,
                   const PListFunction<T, R, Ctx>& f,
                   PListView<const T> input, Ctx ctx = Ctx{},
                   std::size_t leaf_size = 1, std::size_t fork_grain = 1) {
  PLS_CHECK(leaf_size >= 1, "leaf size must be >= 1");
  return pool.run([&] {
    return detail::run_plist(&pool, f, input, ctx, leaf_size, fork_grain);
  });
}

// ---- example PList functions -----------------------------------------

/// n-way reduce: fold each part, combine the n partials in order.
template <typename T, typename Op>
class NWayReduce final : public PListFunction<T, T> {
 public:
  NWayReduce(Op op, std::size_t ways, NWayOp decomp = NWayOp::kTie)
      : op_(std::move(op)), ways_(ways), decomp_(decomp) {}

  std::size_t arity(std::size_t) const override { return ways_; }
  NWayOp decomposition() const override { return decomp_; }

  T basic_case(PListView<const T> leaf, const NoContext&) const override {
    T acc = leaf[0];
    for (std::size_t i = 1; i < leaf.length(); ++i) acc = op_(acc, leaf[i]);
    return acc;
  }

  T combine_n(std::vector<T>&& parts, const NoContext&,
              std::size_t) const override {
    T acc = std::move(parts[0]);
    for (std::size_t k = 1; k < parts.size(); ++k) {
      acc = op_(std::move(acc), parts[k]);
    }
    return acc;
  }

 private:
  Op op_;
  std::size_t ways_;
  NWayOp decomp_;
};

/// n-way map producing a vector, recombined with the decomposition
/// operator's construction counterpart (tie_join / zip_join).
template <typename T, typename U, typename Fn>
class NWayMap final : public PListFunction<T, std::vector<U>> {
 public:
  NWayMap(Fn fn, std::size_t ways, NWayOp decomp = NWayOp::kTie)
      : fn_(std::move(fn)), ways_(ways), decomp_(decomp) {}

  std::size_t arity(std::size_t) const override { return ways_; }
  NWayOp decomposition() const override { return decomp_; }

  std::vector<U> basic_case(PListView<const T> leaf,
                            const NoContext&) const override {
    std::vector<U> out;
    out.reserve(leaf.length());
    for (std::size_t i = 0; i < leaf.length(); ++i) out.push_back(fn_(leaf[i]));
    return out;
  }

  std::vector<U> combine_n(std::vector<std::vector<U>>&& parts,
                           const NoContext&, std::size_t) const override {
    return decomp_ == NWayOp::kTie ? tie_join(parts) : zip_join(parts);
  }

 private:
  Fn fn_;
  std::size_t ways_;
  NWayOp decomp_;
};

/// k-way merge of sorted runs (used by MultiwayMergeSort's combine).
template <typename T, typename Cmp = std::less<T>>
std::vector<T> kway_merge(const std::vector<std::vector<T>>& runs,
                          Cmp cmp = Cmp{}) {
  using Entry = std::pair<std::size_t, std::size_t>;  // (run, index)
  auto greater = [&](const Entry& a, const Entry& b) {
    return cmp(runs[b.first][b.second], runs[a.first][a.second]);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(greater)> heap(
      greater);
  std::size_t total = 0;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    total += runs[r].size();
    if (!runs[r].empty()) heap.push({r, 0});
  }
  std::vector<T> out;
  out.reserve(total);
  while (!heap.empty()) {
    const auto [r, i] = heap.top();
    heap.pop();
    out.push_back(runs[r][i]);
    if (i + 1 < runs[r].size()) heap.push({r, i + 1});
  }
  return out;
}

/// Multi-way mergesort: n-way tie decomposition, k-way merge combine.
template <typename T, typename Cmp = std::less<T>>
class MultiwayMergeSort final : public PListFunction<T, std::vector<T>> {
 public:
  explicit MultiwayMergeSort(std::size_t ways, Cmp cmp = Cmp{})
      : ways_(ways), cmp_(std::move(cmp)) {}

  std::size_t arity(std::size_t) const override { return ways_; }
  NWayOp decomposition() const override { return NWayOp::kTie; }

  std::vector<T> basic_case(PListView<const T> leaf,
                            const NoContext&) const override {
    std::vector<T> out = leaf.to_vector();
    std::sort(out.begin(), out.end(), cmp_);
    return out;
  }

  std::vector<T> combine_n(std::vector<std::vector<T>>&& parts,
                           const NoContext&, std::size_t) const override {
    return kway_merge(parts, cmp_);
  }

 private:
  std::size_t ways_;
  Cmp cmp_;
};

}  // namespace pls::plist
