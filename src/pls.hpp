// plstream — PowerList computation inside a Streams API.
//
// Umbrella header: pulls in the whole public API. Fine-grained headers
// remain available for build-time-conscious users; this is the one-stop
// include for applications and examples.
//
// Module map (see DESIGN.md for the full inventory):
//   support/    bits, RNG, stopwatch, stats, function_ref, tables
//   forkjoin/   work-stealing ForkJoinPool, parallel_for/reduce/invoke
//   simmachine/ task-trace recorder + virtual-multicore scheduler
//   streams/    Spliterator, Stream, Collector, collectors, unsized
//   powerlist/  views, PowerArray, Tie/ZipSpliterators, PowerFunction,
//               executors, the algorithm library, the Streams adaptation
//               layer, PowerStream facade, JPLF-compatibility layer
//   plist/      n-way views, multiway spliterators, PList functions
//   mpisim/     message-passing simulation + distributed executors
#pragma once

#include "support/assert.hpp"
#include "support/bits.hpp"
#include "support/function_ref.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

#include "forkjoin/parallel.hpp"
#include "forkjoin/pool.hpp"

#include "simmachine/costmodel.hpp"
#include "simmachine/scaling.hpp"
#include "simmachine/scheduler.hpp"
#include "simmachine/trace.hpp"

#include "streams/collector.hpp"
#include "streams/collectors.hpp"
#include "streams/stream.hpp"
#include "streams/unsized.hpp"

#include "powerlist/algorithms/adder.hpp"
#include "powerlist/algorithms/convolution.hpp"
#include "powerlist/algorithms/fft.hpp"
#include "powerlist/algorithms/gray.hpp"
#include "powerlist/algorithms/hadamard.hpp"
#include "powerlist/algorithms/inv_rev.hpp"
#include "powerlist/algorithms/karatsuba.hpp"
#include "powerlist/algorithms/map_reduce.hpp"
#include "powerlist/algorithms/matrix.hpp"
#include "powerlist/algorithms/mss.hpp"
#include "powerlist/algorithms/pointwise.hpp"
#include "powerlist/algorithms/polynomial.hpp"
#include "powerlist/algorithms/scan.hpp"
#include "powerlist/algorithms/shuffle.hpp"
#include "powerlist/algorithms/sort.hpp"
#include "powerlist/collector_functions.hpp"
#include "powerlist/executors.hpp"
#include "powerlist/jplf.hpp"
#include "powerlist/power_array.hpp"
#include "powerlist/power_stream.hpp"
#include "powerlist/spliterators.hpp"
#include "powerlist/view.hpp"

#include "plist/functions.hpp"
#include "plist/multiway_spliterator.hpp"
#include "plist/plist_view.hpp"

#include "mpisim/collectives.hpp"
#include "mpisim/communicator.hpp"
#include "mpisim/power_executor.hpp"
