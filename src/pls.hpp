// plstream — PowerList computation inside a Streams API.
//
// Umbrella header: pulls in the whole public API and defines the pls::
// facade (pls::config / pls::session / pls::run) — the single documented
// entry point that hands out pools, executors and observability from one
// configuration instead of having callers construct them ad hoc.
// Fine-grained headers remain available for build-time-conscious users.
//
// Module map (see DESIGN.md for the full inventory):
//   support/    bits, RNG, stopwatch, stats, function_ref, tables
//   observe/    per-worker counters + span tracing (PLS_OBSERVE switch)
//   forkjoin/   work-stealing ForkJoinPool, parallel_for/reduce/invoke
//   simmachine/ task-trace recorder + virtual-multicore scheduler
//   streams/    Spliterator, Stream, Collector, collectors, unsized
//   service/    long-lived push-mode sessions: ingest queues with
//               watermark flow control, reusable planned chains,
//               windowed terminals, the multiplexing driver
//   powerlist/  views, PowerArray, Tie/ZipSpliterators, PowerFunction,
//               executors, the algorithm library, the Streams adaptation
//               layer, PowerStream facade, JPLF-compatibility layer
//   plist/      n-way views, multiway spliterators, PList functions
//   mpisim/     message-passing simulation + distributed executors
#pragma once

#include "support/assert.hpp"
#include "support/bits.hpp"
#include "support/function_ref.hpp"
#include "support/rng.hpp"
#include "support/sized_buffer.hpp"
#include "support/stats.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

#include "forkjoin/parallel.hpp"
#include "forkjoin/pool.hpp"

#include "simmachine/costmodel.hpp"
#include "simmachine/scaling.hpp"
#include "simmachine/scheduler.hpp"
#include "simmachine/trace.hpp"

#include "streams/collector.hpp"
#include "streams/collectors.hpp"
#include "streams/sized_sink.hpp"
#include "streams/static_fusion.hpp"
#include "streams/stream.hpp"
#include "streams/unsized.hpp"
#include "support/simd.hpp"

#include "service/driver.hpp"
#include "service/facade.hpp"
#include "service/queue.hpp"
#include "service/session.hpp"

#include "powerlist/algorithms/adder.hpp"
#include "powerlist/algorithms/convolution.hpp"
#include "powerlist/algorithms/fft.hpp"
#include "powerlist/algorithms/gray.hpp"
#include "powerlist/algorithms/hadamard.hpp"
#include "powerlist/algorithms/inv_rev.hpp"
#include "powerlist/algorithms/karatsuba.hpp"
#include "powerlist/algorithms/map_reduce.hpp"
#include "powerlist/algorithms/matrix.hpp"
#include "powerlist/algorithms/mss.hpp"
#include "powerlist/algorithms/pointwise.hpp"
#include "powerlist/algorithms/polynomial.hpp"
#include "powerlist/algorithms/scan.hpp"
#include "powerlist/algorithms/shuffle.hpp"
#include "powerlist/algorithms/sort.hpp"
#include "powerlist/collector_functions.hpp"
#include "powerlist/executors.hpp"
#include "powerlist/jplf.hpp"
#include "powerlist/power_array.hpp"
#include "powerlist/power_stream.hpp"
#include "powerlist/spliterators.hpp"
#include "powerlist/view.hpp"

#include "plist/functions.hpp"
#include "plist/multiway_spliterator.hpp"
#include "plist/plist_view.hpp"

#include "mpisim/collectives.hpp"
#include "mpisim/communicator.hpp"
#include "mpisim/power_executor.hpp"

#include "observe/counters.hpp"
#include "observe/critical_path.hpp"
#include "observe/export.hpp"
#include "observe/flamegraph.hpp"
#include "observe/histogram.hpp"
#include "observe/metrics.hpp"
#include "observe/run_registry.hpp"
#include "observe/sampler.hpp"
#include "observe/trace.hpp"

#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

namespace pls {

// ---- facade re-exports ------------------------------------------------
//
// The most-used streams types under their short names, so application code
// can say pls::Stream / pls::pipe / pls::stages::map without spelling the
// inner namespaces. The full namespaces stay available underneath.

using streams::ExecutionConfig;
using streams::ExecutionPlan;
using streams::OverloadPolicy;
using streams::PlanCache;
using streams::StagePipe;
using streams::StaticPipeline;
using streams::Stream;

using streams::evaluate;
using streams::evaluate_fused;
using streams::stream_support::from_spliterator;

/// Stage-op factories for the typed static pipeline:
/// pls::pipe(pls::stages::map(f), pls::stages::filter(p), ...).
namespace stages = streams::stages;

/// Terminal descriptors for the unified evaluate() dispatch.
namespace terminals = streams::terminals;

/// The built-in collector library (to_vector, summing, counting, ...).
namespace collectors = streams::collectors;

/// Build a source-free compile-time stage stack; bind a source with
/// .over(...) and configure execution exactly like a Stream — including
/// round-tripping a session's ExecutionConfig:
///
///   pls::session s(cfg);
///   auto out = pls::pipe(pls::stages::map(f), pls::stages::filter(p))
///                  .over(values)
///                  .parallel(s.stream_config())
///                  .to_vector();
using streams::pipe;

/// One configuration object for a whole computation: how parallel, how
/// fine-grained, and whether to measure. The facade below derives pools,
/// executors and observability from it — the pre-facade spellings (raw
/// ForkJoinPool, ExecutionConfig, executor free functions) stay available
/// underneath.
struct config {
  /// Worker threads; 0 selects the process-wide common pool sized by
  /// ForkJoinPool::default_parallelism() (PLS_PARALLELISM env override).
  unsigned parallelism = 0;
  /// Decomposition grain: leaf size for skeleton executors, minimum chunk
  /// for stream terminal operations. 0 selects each layer's default
  /// (Java-style n/(4P) for streams, 1 for skeletons).
  std::size_t grain = 0;
  /// Enable span tracing for the session and report counter deltas.
  /// Counters are always collected when compiled in (PLS_OBSERVE=1);
  /// this additionally turns the trace recorder on for the session.
  bool observe = false;
  /// Enable critical-path profiling for the session: parallel executions
  /// record their split tree, and session::profile() analyses it (work T1,
  /// span T∞, parallelism, phase attribution). Zeros when PLS_OBSERVE=0.
  bool profile = false;
  /// Allow the destination-passing collect path for session streams
  /// (docs/execution.md); mirrors ExecutionConfig::sized_sink.
  bool sized_sink = true;
  /// Allow pipeline fusion for session streams (docs/execution.md,
  /// "Pipeline fusion"); mirrors ExecutionConfig::fusion.
  bool fusion = true;
  /// Let the planner's PlanCache tune the stream grain from profiled
  /// critical-path runs when `grain` is 0 (docs/execution.md, "Execution
  /// planning"); mirrors ExecutionConfig::auto_grain. Also switchable
  /// process-wide via PLS_AUTO_GRAIN=1.
  bool auto_grain = false;
  /// Service-layer knobs (docs/service.md), consumed by sessions opened
  /// from pls::service specs: per-session ingest-queue capacity, the
  /// qband watermark pair within it (0 = each mark's documented default),
  /// and the congestion policy. Mirror ExecutionConfig::queue_capacity /
  /// high_watermark / low_watermark / overload; batch terminals ignore
  /// them.
  std::size_t queue_capacity = 1024;
  std::size_t high_watermark = 0;
  std::size_t low_watermark = 0;
  OverloadPolicy overload = OverloadPolicy::kBlock;
};

/// A configured execution scope: owns (or borrows) the pool, carries the
/// grain, and scopes observability. Create one directly or through
/// pls::run(). Sessions are cheap when parallelism==0 (they borrow the
/// common pool).
class session {
 public:
  explicit session(const config& cfg) : cfg_(cfg) {
    if (cfg_.parallelism != 0) owned_pool_.emplace(cfg_.parallelism);
    counters_at_start_ = pool().counter_totals();
    runs_total_at_start_ = observe::RunRegistry::global().total();
    if (cfg_.observe) {
      tracing_ = !observe::TraceRecorder::global().enabled();
      if (tracing_) observe::TraceRecorder::global().enable();
    }
    if (cfg_.profile) {
      auto& r = observe::CriticalPathRecorder::global();
      profiling_ = !r.enabled();
      if (profiling_) {
        r.clear();
        r.enable();
      }
    }
  }

  /// Disables tracing/profiling again if this session turned them on, and
  /// flushes the trace to its configured output path (PLS_TRACE_PATH).
  ~session() {
    if (tracing_) {
      observe::TraceRecorder::global().disable();
      observe::TraceRecorder::global().flush();
    }
    if (profiling_) observe::CriticalPathRecorder::global().disable();
  }

  session(const session&) = delete;
  session& operator=(const session&) = delete;

  const config& options() const noexcept { return cfg_; }

  /// The pool this session executes on.
  forkjoin::ForkJoinPool& pool() {
    return owned_pool_ ? *owned_pool_ : forkjoin::ForkJoinPool::common();
  }

  /// Stream execution config bound to this session's pool and settings;
  /// pass to any streams terminal operation (or Stream::collect
  /// overloads). Round-trips the session's stream-relevant options
  /// losslessly: pool, grain, sized_sink and fusion all carry over.
  streams::ExecutionConfig stream_config() {
    return streams::ExecutionConfig{}
        .with_pool(pool())
        .with_min_chunk(cfg_.grain)
        .with_sized_sink(cfg_.sized_sink)
        .with_fusion(cfg_.fusion)
        .with_auto_grain(cfg_.auto_grain)
        .with_queue_capacity(cfg_.queue_capacity)
        .with_watermarks(cfg_.high_watermark, cfg_.low_watermark)
        .with_overload_policy(cfg_.overload);
  }

  /// The plan behind the most recent terminal this thread ran — verdicts,
  /// reasons, routing (streams::last_plan). PowerList executors record a
  /// synthesized plan, so this works after session::execute_reported too.
  const streams::ExecutionPlan& plan() const { return streams::last_plan(); }

  /// Human-readable dump of plan(): why the last run took the path it
  /// took (fusion and DPS verdicts with reasons, drive, grain, kernel).
  std::string explain() const { return streams::last_plan().explain(); }

  /// The skeleton leaf size for this session (config grain, or `fallback`
  /// when the grain is auto).
  std::size_t grain_or(std::size_t fallback) const noexcept {
    return cfg_.grain != 0 ? cfg_.grain : fallback;
  }

  /// Run a PowerFunction on the session pool; equivalent to
  /// execute_forkjoin(pool(), f, input, ctx, grain).
  template <typename TV, typename R, typename Ctx>
  R execute(const powerlist::PowerFunction<std::remove_const_t<TV>, R, Ctx>& f,
            powerlist::PowerListView<TV> input, Ctx ctx = Ctx{}) {
    return powerlist::execute_forkjoin(pool(), f, input, ctx, grain_or(1));
  }

  /// Same, returning the unified ExecutionReport (shape + counter delta).
  template <typename TV, typename R, typename Ctx>
  powerlist::ExecutionReport<R> execute_reported(
      const powerlist::PowerFunction<std::remove_const_t<TV>, R, Ctx>& f,
      powerlist::PowerListView<TV> input, Ctx ctx = Ctx{}) {
    return powerlist::execute_forkjoin_reported(pool(), f, input, ctx,
                                                grain_or(1));
  }

  /// Same, with critical-path profiling: the report additionally carries
  /// measured work/span/parallelism, per-phase attribution, wall time and
  /// latency histograms (see execute_forkjoin_profiled).
  template <typename TV, typename R, typename Ctx>
  powerlist::ExecutionReport<R> execute_profiled(
      const powerlist::PowerFunction<std::remove_const_t<TV>, R, Ctx>& f,
      powerlist::PowerListView<TV> input, Ctx ctx = Ctx{}) {
    return powerlist::execute_forkjoin_profiled(pool(), f, input, ctx,
                                                grain_or(1));
  }

  /// Counter delta accumulated by this session's pool since the session
  /// started (zeros when PLS_OBSERVE=0).
  observe::CounterTotals counters() {
    return pool().counter_totals() - counters_at_start_;
  }

  /// Chrome-trace JSON of everything recorded while the session traced;
  /// meaningful when config.observe was set.
  std::string trace_json() const {
    return observe::TraceRecorder::global().chrome_json();
  }

  /// Critical-path analysis of everything profiled so far in this session;
  /// meaningful when config.profile was set (all zeros otherwise, and
  /// always with PLS_OBSERVE=0).
  observe::CriticalPathStats profile() const {
    return observe::CriticalPathRecorder::global().analyze();
  }

  /// Collapsed-stack (folded) flamegraph of the profiled split trees.
  std::string flamegraph() const { return observe::flamegraph_folded(); }

  /// Process-wide latency histograms (task run, steal latency, queue
  /// depth, leaf/combine run); zeros when PLS_OBSERVE=0.
  observe::HistogramSetSnapshot histograms() const {
    return observe::aggregate_histograms();
  }

  /// Run records appended since this session started (one per executed
  /// terminal: plan identity, counter deltas, wall time, leaf latency —
  /// see observe/run_registry.hpp). Empty when PLS_OBSERVE=0; bounded by
  /// the registry's keep-latest ring for very long sessions.
  std::vector<observe::RunRecord> runs() const {
    return observe::RunRegistry::global().records_since(runs_total_at_start_);
  }

  /// One fresh metrics-registry sample (counters, histogram quantiles,
  /// pool gauges, PlanCache occupancy), e.g. to render with
  /// observe::write_prometheus. Empty when PLS_OBSERVE=0.
  observe::MetricsSample metrics() const {
    return observe::MetricsRegistry::global().collect();
  }

 private:
  config cfg_;
  std::optional<forkjoin::ForkJoinPool> owned_pool_;
  observe::CounterTotals counters_at_start_{};
  std::uint64_t runs_total_at_start_ = 0;
  bool tracing_ = false;
  bool profiling_ = false;
};

/// The single entry point: configure, run, return the callable's result.
/// The callable either takes the session (to reach the pool, stream
/// config, executors and metrics) or takes no arguments, in which case it
/// simply runs on the session's pool:
///
///   auto sum = pls::run({.parallelism = 8}, [&](pls::session& s) {
///     return pls::streams::evaluate_reduce(sp, op, true, s.stream_config());
///   });
template <typename Fn>
auto run(const config& cfg, Fn&& fn) {
  session s(cfg);
  if constexpr (std::is_invocable_v<Fn&, session&>) {
    return fn(s);
  } else {
    return s.pool().run(std::forward<Fn>(fn));
  }
}

}  // namespace pls
