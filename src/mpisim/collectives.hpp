// Collective operations over the message-passing simulation, built from
// point-to-point sends the way real MPI implementations build them:
// binomial trees for broadcast/reduce, recursive-doubling butterflies for
// the all- variants, flat fan-in/out for gather/scatter.
#pragma once

#include <cstdint>
#include <vector>

#include "mpisim/communicator.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace pls::mpisim {

/// Broadcast `value` from `root` to all ranks (binomial tree). Every rank
/// returns the broadcast value; ranks other than root ignore their input.
template <typename T>
T broadcast(Comm& comm, T value, int root, int tag = 700) {
  const int size = comm.size();
  if (size == 1) return value;
  const int relative = (comm.rank() - root + size) % size;
  // Receive from the parent (the rank that differs in the lowest set bit).
  int mask = 1;
  while (mask < size) {
    if (relative & mask) {
      const int src = (comm.rank() - mask + size) % size;
      value = comm.recv<T>(src, tag);
      break;
    }
    mask <<= 1;
  }
  // Forward to children below the received bit.
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < size) {
      const int dst = (comm.rank() + mask) % size;
      comm.send(dst, tag, value);
    }
    mask >>= 1;
  }
  return value;
}

/// Reduce all ranks' values to `root` with associative `op` (binomial
/// tree). Result is meaningful only at root; other ranks return their
/// partial. Arguments are combined in rank order (low, high).
template <typename T, typename Op>
T reduce(Comm& comm, T value, Op op, int root, int tag = 710) {
  const int size = comm.size();
  if (size == 1) return value;
  const int relative = (comm.rank() - root + size) % size;
  int mask = 1;
  while (mask < size) {
    if (relative & mask) {
      const int dst = (comm.rank() - mask + size) % size;
      comm.send(dst, tag, std::move(value));
      return T{};
    }
    if (relative + mask < size) {
      const int src = (comm.rank() + mask) % size;
      T other = comm.recv<T>(src, tag);
      value = op(std::move(value), std::move(other));
    }
    mask <<= 1;
  }
  return value;
}

/// Allreduce via recursive doubling (requires power-of-two rank count);
/// every rank returns the combined value. `op` sees (low-rank, high-rank)
/// argument order each round.
template <typename T, typename Op>
T allreduce(Comm& comm, T value, Op op, int tag = 720) {
  const int size = comm.size();
  PLS_CHECK(pls::is_power_of_two(static_cast<std::uint64_t>(size)),
            "allreduce requires a power-of-two rank count");
  for (int bit = 1; bit < size; bit <<= 1) {
    const int peer = comm.rank() ^ bit;
    T other = comm.exchange(peer, tag + bit, value);
    if (comm.rank() < peer) {
      value = op(std::move(value), std::move(other));
    } else {
      value = op(std::move(other), std::move(value));
    }
  }
  return value;
}

/// Gather every rank's value at `root`, in rank order. Only root's return
/// value is meaningful.
template <typename T>
std::vector<T> gather(Comm& comm, T value, int root, int tag = 730) {
  const int size = comm.size();
  if (comm.rank() != root) {
    comm.send(root, tag, std::move(value));
    return {};
  }
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    if (r == root) {
      out.push_back(value);
    } else {
      out.push_back(comm.recv<T>(r, tag));
    }
  }
  return out;
}

/// Scatter `parts` (significant at root, one entry per rank) so each rank
/// returns its own part.
template <typename T>
T scatter(Comm& comm, std::vector<T> parts, int root, int tag = 740) {
  const int size = comm.size();
  if (comm.rank() == root) {
    PLS_CHECK(parts.size() == static_cast<std::size_t>(size),
              "scatter needs exactly one part per rank");
    for (int r = 0; r < size; ++r) {
      if (r != root) {
        comm.send(r, tag, std::move(parts[static_cast<std::size_t>(r)]));
      }
    }
    return std::move(parts[static_cast<std::size_t>(root)]);
  }
  return comm.recv<T>(root, tag);
}

/// Allgather via gather at rank 0 + broadcast.
template <typename T>
std::vector<T> allgather(Comm& comm, T value, int tag = 750) {
  auto all = gather(comm, std::move(value), 0, tag);
  return broadcast(comm, std::move(all), 0, tag + 1);
}

/// Inclusive scan across ranks (MPI_Scan): rank r returns
/// op(v_0, ..., v_r). Hillis-Steele recursive doubling: log2(P) rounds,
/// works for any rank count; `op` must be associative.
template <typename T, typename Op>
T scan(Comm& comm, T value, Op op, int tag = 760) {
  const int size = comm.size();
  T inclusive = std::move(value);
  for (int dist = 1; dist < size; dist <<= 1) {
    const int right = comm.rank() + dist;
    const int left = comm.rank() - dist;
    // Send my running value to the rank `dist` above; receive from the
    // rank `dist` below and fold it in front.
    if (right < size) comm.send(right, tag + dist, inclusive);
    if (left >= 0) {
      T from_left = comm.recv<T>(left, tag + dist);
      inclusive = op(std::move(from_left), std::move(inclusive));
    }
  }
  return inclusive;
}

/// Exclusive scan (MPI_Exscan): rank 0 returns `identity`; rank r > 0
/// returns op(v_0, ..., v_{r-1}).
template <typename T, typename Op>
T exscan(Comm& comm, T value, Op op, T identity, int tag = 780) {
  // Shift the inclusive scan down by one rank.
  const T inclusive = scan(comm, std::move(value), op, tag);
  if (comm.rank() + 1 < comm.size()) {
    comm.send(comm.rank() + 1, tag + 1000, inclusive);
  }
  if (comm.rank() == 0) return identity;
  return comm.recv<T>(comm.rank() - 1, tag + 1000);
}

}  // namespace pls::mpisim
