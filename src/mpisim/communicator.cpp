#include "mpisim/communicator.hpp"

#include <algorithm>
#include <exception>
#include <thread>

namespace pls::mpisim {

World::World(int size, NetworkModel network)
    : size_(size), network_(network) {
  PLS_CHECK(size >= 1, "World needs at least one rank");
  mail_.reserve(static_cast<std::size_t>(size) * size);
  for (int i = 0; i < size * size; ++i) {
    mail_.push_back(std::make_unique<Mailbox>());
  }
}

std::vector<World::RankStats> World::run(
    const std::function<void(Comm&)>& program) {
  std::vector<RankStats> stats(static_cast<std::size_t>(size_));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));

  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(this, r);
      try {
        program(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
      auto& s = stats[static_cast<std::size_t>(r)];
      s.clock_ns = comm.clock_ns();
      s.compute_ns = comm.compute_ns();
      s.comm_ns = comm.comm_ns();
      s.messages = comm.messages_sent();
      s.bytes = comm.bytes_sent();
    });
  }
  for (auto& t : threads) t.join();

  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  last_time_ns_ = 0.0;
  for (const auto& s : stats) {
    last_time_ns_ = std::max(last_time_ns_, s.clock_ns);
  }
  return stats;
}

void World::barrier_wait(double& rank_clock) {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  barrier_max_clock_ = std::max(barrier_max_clock_, rank_clock);
  if (++barrier_count_ == size_) {
    barrier_release_clock_ = barrier_max_clock_ + network_.barrier_ns;
    barrier_max_clock_ = 0.0;
    barrier_count_ = 0;
    ++barrier_generation_;
    rank_clock = barrier_release_clock_;
    lock.unlock();
    barrier_cv_.notify_all();
    return;
  }
  const std::uint64_t arrived_generation = barrier_generation_;
  barrier_cv_.wait(lock, [&] {
    return barrier_generation_ != arrived_generation;
  });
  rank_clock = barrier_release_clock_;
}

}  // namespace pls::mpisim
