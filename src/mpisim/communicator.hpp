// SPMD world and per-rank communicator for the in-process MPI simulation.
//
// World::run launches one thread per rank executing the same program (SPMD,
// as with mpirun) and returns per-rank statistics. Each rank owns a Comm
// handle providing MPI-like point-to-point operations plus simulated-time
// accounting: every rank carries a virtual clock advanced by explicit
// compute charges and by message transfer costs from the NetworkModel, so
// cluster-scale timing trends can be reported from a single machine.
//
// Real thread-level blocking (mailbox waits) and virtual time are distinct:
// the former makes the execution correct, the latter makes it measurable.
#pragma once

#include <any>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "mpisim/cost.hpp"
#include "mpisim/mailbox.hpp"
#include "support/assert.hpp"

namespace pls::mpisim {

class World;

/// Number of payload bytes for cost accounting. Extend by overloading for
/// your own message types; the default charges sizeof(T).
template <typename T>
std::uint64_t payload_bytes(const T&) {
  return sizeof(T);
}

template <typename U>
std::uint64_t payload_bytes(const std::vector<U>& v) {
  return static_cast<std::uint64_t>(v.size()) * sizeof(U);
}

/// Per-rank communication endpoint. Not thread-safe: each rank thread uses
/// only its own Comm (the SPMD discipline).
class Comm {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Send `value` to `dst` with `tag`. Buffered (never blocks on the
  /// receiver); charges the sender its send overhead.
  template <typename T>
  void send(int dst, int tag, T value) {
    const std::uint64_t bytes = payload_bytes(value);
    Message msg;
    msg.tag = tag;
    msg.bytes = bytes;
    msg.available_at_ns = clock_ns_ + network().transfer_ns(bytes);
    msg.payload = std::make_any<T>(std::move(value));
    deliver(dst, std::move(msg));
    // The sender is occupied for the latency portion only.
    clock_ns_ += network().alpha_ns;
    comm_ns_ += network().alpha_ns;
    ++messages_sent_;
    bytes_sent_ += bytes;
  }

  /// Receive a T from `src` with `tag`; blocks until it arrives. The rank's
  /// virtual clock advances to the message availability time if later.
  template <typename T>
  T recv(int src, int tag) {
    Message msg = take(src, tag);
    if (msg.available_at_ns > clock_ns_) {
      comm_ns_ += msg.available_at_ns - clock_ns_;
      clock_ns_ = msg.available_at_ns;
    }
    try {
      return std::any_cast<T>(std::move(msg.payload));
    } catch (const std::bad_any_cast&) {
      throw precondition_error(
          "plstream: mpisim recv type does not match the sent payload");
    }
  }

  /// Combined send+recv with a peer (deadlock-free pairwise exchange, the
  /// workhorse of hypercube algorithms).
  template <typename T>
  T exchange(int peer, int tag, T value) {
    send(peer, tag, std::move(value));
    return recv<T>(peer, tag);
  }

  /// Non-blocking probe: is a (src, tag) message already deliverable?
  bool probe(int src, int tag);

  /// Deferred receive handle (MPI_Irecv + MPI_Test/MPI_Wait). Matching
  /// happens lazily; `ready()` probes, `wait()` blocks and performs the
  /// clock accounting of a recv.
  template <typename T>
  class RecvRequest {
   public:
    bool ready() const { return comm_->probe(src_, tag_); }
    T wait() { return comm_->recv<T>(src_, tag_); }

   private:
    friend class Comm;
    RecvRequest(Comm* comm, int src, int tag)
        : comm_(comm), src_(src), tag_(tag) {}
    Comm* comm_;
    int src_;
    int tag_;
  };

  template <typename T>
  RecvRequest<T> irecv(int src, int tag) {
    PLS_CHECK(src >= 0 && src < size() && src != rank_,
              "irecv source out of range");
    return RecvRequest<T>(this, src, tag);
  }

  /// Synchronise all ranks; every virtual clock advances to the maximum.
  void barrier();

  /// Advance this rank's virtual clock by `ns` of computation.
  void charge_compute(double ns) {
    PLS_CHECK(ns >= 0.0, "compute charges must be non-negative");
    clock_ns_ += ns;
    compute_ns_ += ns;
  }

  double clock_ns() const noexcept { return clock_ns_; }
  double compute_ns() const noexcept { return compute_ns_; }
  double comm_ns() const noexcept { return comm_ns_; }
  std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }

 private:
  friend class World;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  const NetworkModel& network() const noexcept;
  void deliver(int dst, Message msg);
  Message take(int src, int tag);

  World* world_;
  int rank_;
  double clock_ns_ = 0.0;
  double compute_ns_ = 0.0;
  double comm_ns_ = 0.0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

/// A simulated cluster of `size` ranks.
class World {
 public:
  struct RankStats {
    double clock_ns = 0.0;
    double compute_ns = 0.0;
    double comm_ns = 0.0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };

  explicit World(int size, NetworkModel network = NetworkModel{});

  int size() const noexcept { return size_; }
  const NetworkModel& network() const noexcept { return network_; }

  /// Execute `program` SPMD on all ranks (one thread each); blocks until
  /// every rank returns. Exceptions from any rank are rethrown (first rank
  /// wins). Returns per-rank statistics.
  std::vector<RankStats> run(const std::function<void(Comm&)>& program);

  /// Simulated completion time of the last run(): max over rank clocks.
  double simulated_time_ns() const noexcept { return last_time_ns_; }

 private:
  friend class Comm;

  Mailbox& mailbox(int src, int dst) {
    return *mail_[static_cast<std::size_t>(src) * size_ +
                  static_cast<std::size_t>(dst)];
  }

  void barrier_wait(double& rank_clock);

  int size_;
  NetworkModel network_;
  std::vector<std::unique_ptr<Mailbox>> mail_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
  double barrier_max_clock_ = 0.0;
  double barrier_release_clock_ = 0.0;

  double last_time_ns_ = 0.0;
};

inline int Comm::size() const noexcept { return world_->size(); }

inline const NetworkModel& Comm::network() const noexcept {
  return world_->network();
}

inline void Comm::deliver(int dst, Message msg) {
  PLS_CHECK(dst >= 0 && dst < world_->size(), "send destination out of range");
  PLS_CHECK(dst != rank_, "a rank may not send to itself");
  world_->mailbox(rank_, dst).put(std::move(msg));
}

inline Message Comm::take(int src, int tag) {
  PLS_CHECK(src >= 0 && src < world_->size(), "recv source out of range");
  PLS_CHECK(src != rank_, "a rank may not receive from itself");
  return world_->mailbox(src, rank_).take(tag);
}

inline void Comm::barrier() { world_->barrier_wait(clock_ns_); }

inline bool Comm::probe(int src, int tag) {
  PLS_CHECK(src >= 0 && src < world_->size() && src != rank_,
            "probe source out of range");
  return world_->mailbox(src, rank_).probe(tag);
}

}  // namespace pls::mpisim
