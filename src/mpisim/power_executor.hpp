// PowerList execution over the message-passing simulation — the JPLF MPI
// executor ([20] in the paper) rebuilt on mpisim.
//
// Data distribution follows the decomposition operator: k zip splits
// spread a PowerList over P = 2^k ranks so that rank r holds the elements
// whose index ≡ r (mod P); k tie splits give rank r the r-th contiguous
// block. The ascending phase is a hypercube combine: log2(P) pairwise
// exchange rounds, processing the deepest decomposition level first, so
// level-dependent combiners (the polynomial's x^(2^d) multiplier) receive
// the correct level. After the final round every rank holds the result
// (allreduce style), exactly how JPLF's MPI executor finishes reduce-like
// PowerList functions.
//
// All timing here is *simulated*: computation is charged through the
// cost-model hooks and communication through the alpha-beta network model,
// so the scaling benches report cluster-style trends from one machine.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "mpisim/collectives.hpp"
#include "mpisim/communicator.hpp"
#include "powerlist/algorithms/fft.hpp"
#include "powerlist/view.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace pls::mpisim {

/// How a PowerList is spread over the ranks.
enum class Distribution { kBlock, kCyclic };  // tie^k vs zip^k

/// The local sublist of `full` owned by `rank` of `size` ranks.
template <typename T>
std::vector<T> local_part(const std::vector<T>& full, int rank, int size,
                          Distribution dist) {
  PLS_CHECK(size >= 1 && pls::is_power_of_two(static_cast<std::uint64_t>(size)),
            "rank count must be a power of two");
  PLS_CHECK(full.size() % static_cast<std::size_t>(size) == 0,
            "list length must divide evenly over the ranks");
  const std::size_t part = full.size() / static_cast<std::size_t>(size);
  std::vector<T> out;
  out.reserve(part);
  if (dist == Distribution::kBlock) {
    const std::size_t lo = part * static_cast<std::size_t>(rank);
    out.assign(full.begin() + static_cast<std::ptrdiff_t>(lo),
               full.begin() + static_cast<std::ptrdiff_t>(lo + part));
  } else {
    for (std::size_t i = static_cast<std::size_t>(rank); i < full.size();
         i += static_cast<std::size_t>(size)) {
      out.push_back(full[i]);
    }
  }
  return out;
}

/// Hypercube combine with a level-indexed combiner.
///
/// `combine(level, low, high)` merges the value held by the rank whose bit
/// `level` is 0 (`low`) with its partner's (`high`); `level` counts
/// decomposition levels from the outermost (0). Rounds run from the
/// innermost level (log2(P)-1) down to 0, mirroring the ascending phase of
/// the PowerList recursion, and each round exchanges values with the
/// partner across one dimension — so every rank returns the combined
/// result (allreduce style), and non-commutative combiners always see
/// their arguments in encounter order.
template <typename R, typename CombineFn>
R hypercube_allcombine(Comm& comm, R value, const CombineFn& combine,
                       int tag_base = 900) {
  const int size = comm.size();
  PLS_CHECK(pls::is_power_of_two(static_cast<std::uint64_t>(size)),
            "hypercube combine requires a power-of-two rank count");
  const unsigned dims = pls::exact_log2(static_cast<std::uint64_t>(size));
  for (unsigned round = 0; round < dims; ++round) {
    const unsigned level = dims - 1 - round;  // deepest level first
    const int bit = 1 << level;
    const int peer = comm.rank() ^ bit;
    R other =
        comm.exchange(peer, tag_base + static_cast<int>(round), value);
    if ((comm.rank() & bit) == 0) {
      value = combine(level, std::move(value), std::move(other));
    } else {
      value = combine(level, std::move(other), std::move(value));
    }
  }
  return value;
}

/// Distributed reduce of a PowerList: cyclic or block distribution, local
/// sequential fold charged to the cost model, hypercube combine. `op` must
/// be associative (and commutative for cyclic distribution). Every rank
/// returns the result.
template <typename T, typename Op>
T mpi_reduce(Comm& comm, const std::vector<T>& full, Op op,
             Distribution dist = Distribution::kBlock,
             double ns_per_op = 1.0) {
  const auto local = local_part(full, comm.rank(), comm.size(), dist);
  T acc = local[0];
  for (std::size_t i = 1; i < local.size(); ++i) acc = op(acc, local[i]);
  comm.charge_compute(static_cast<double>(local.size()) * ns_per_op);
  if (comm.size() == 1) return acc;
  if (dist == Distribution::kBlock) {
    // Block (tie^k) distribution: adjacent blocks differ in the LOWEST
    // rank bit, so the ascending phase is plain recursive doubling
    // (lowest bit first), which keeps encounter order for
    // non-commutative ops.
    return allreduce(comm, std::move(acc), [&](T low, T high) {
      return op(std::move(low), std::move(high));
    });
  }
  // Cyclic (zip^k) distribution: residue bit d corresponds to tree level
  // d, so combine the deepest level (highest bit) first.
  return hypercube_allcombine(
      comm, std::move(acc),
      [&](unsigned, T low, T high) { return op(std::move(low), high); });
}

/// Distributed polynomial evaluation (ascending coefficients, equation 4):
/// cyclic distribution (zip^k), local Horner at x^P, hypercube combine
/// with the level-dependent multiplier x^(2^level). Every rank returns the
/// value; `ns_per_op` prices one multiply-add for the simulated clock.
inline double mpi_polynomial_eval(Comm& comm,
                                  const std::vector<double>& coefficients,
                                  double x, double ns_per_op = 1.0) {
  const int size = comm.size();
  const auto local =
      local_part(coefficients, comm.rank(), size, Distribution::kCyclic);
  // Local phase: the subseries sum_j local[j] * (x^P)^j.
  double point = x;
  for (int s = size; s > 1; s /= 2) point *= point;
  double acc = local.back();
  for (std::size_t i = local.size() - 1; i > 0; --i) {
    acc = acc * point + local[i - 1];
  }
  comm.charge_compute(2.0 * static_cast<double>(local.size()) * ns_per_op);
  if (size == 1) return acc;
  // Ascending phase: combine residue pairs, deepest level first; at level
  // d the multiplier is x^(2^d) (low residue + x^(2^d) * high residue).
  return hypercube_allcombine(
      comm, acc, [&](unsigned level, double low, double high) {
        double mult = x;
        for (unsigned s = 0; s < level; ++s) mult *= mult;
        comm.charge_compute(2.0 * ns_per_op);
        return low + mult * high;
      });
}

/// Distributed map: root scatters contiguous blocks, ranks map locally
/// (charging ns_per_op per element), root gathers the results back in
/// order. Returns the full mapped list at root, the local block elsewhere.
template <typename T, typename U, typename Fn>
std::vector<U> mpi_map(Comm& comm, const std::vector<T>& full, Fn fn,
                       double ns_per_op = 1.0, int root = 0) {
  const int size = comm.size();
  PLS_CHECK(full.size() % static_cast<std::size_t>(size) == 0,
            "list length must divide evenly over the ranks");
  std::vector<std::vector<T>> parts;
  if (comm.rank() == root) {
    const std::size_t part = full.size() / static_cast<std::size_t>(size);
    parts.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      const std::size_t lo = part * static_cast<std::size_t>(r);
      parts.emplace_back(full.begin() + static_cast<std::ptrdiff_t>(lo),
                         full.begin() + static_cast<std::ptrdiff_t>(lo + part));
    }
  }
  const std::vector<T> local = scatter(comm, std::move(parts), root);
  std::vector<U> mapped;
  mapped.reserve(local.size());
  for (const T& v : local) mapped.push_back(fn(v));
  comm.charge_compute(static_cast<double>(local.size()) * ns_per_op);
  auto gathered = gather(comm, std::move(mapped), root);
  if (comm.rank() != root) return mapped;
  std::vector<U> out;
  out.reserve(full.size());
  for (auto& g : gathered) {
    out.insert(out.end(), std::make_move_iterator(g.begin()),
               std::make_move_iterator(g.end()));
  }
  return out;
}

/// Distributed inclusive prefix scan of a whole list: each rank scans
/// its contiguous block locally, an exscan of the block totals provides
/// the offsets, and the offset folds into the local results. Rank r
/// returns its scanned block; gather at the caller if the full list is
/// needed. `op` must be associative.
template <typename T, typename Op>
std::vector<T> mpi_scan_list(Comm& comm, const std::vector<T>& full, Op op,
                             T identity, double ns_per_op = 1.0) {
  auto local = local_part(full, comm.rank(), comm.size(),
                          Distribution::kBlock);
  // Local inclusive scan.
  for (std::size_t i = 1; i < local.size(); ++i) {
    local[i] = op(local[i - 1], local[i]);
  }
  comm.charge_compute(static_cast<double>(local.size()) * ns_per_op);
  if (comm.size() > 1) {
    const T offset = exscan(comm, local.back(), op, identity);
    if (comm.rank() > 0) {
      for (T& v : local) v = op(offset, v);
      comm.charge_compute(static_cast<double>(local.size()) * ns_per_op);
    }
  }
  return local;
}

/// Distributed FFT over the hypercube (JPLF-style list-valued function):
/// cyclic distribution, local in-place FFT of each rank's subsequence,
/// then log2(P) butterfly rounds — at each round partner ranks exchange
/// their spectra and apply the PowerList combine
///   (P + u x Q) | (P - u x Q)
/// with u = powers(len). Vector length doubles each round; after the last
/// round every rank holds the full spectrum. `flop_ns` prices one complex
/// multiply-add for the simulated clock.
inline std::vector<pls::powerlist::Complex> mpi_fft(
    Comm& comm, const std::vector<pls::powerlist::Complex>& signal,
    double flop_ns = 1.0) {
  using pls::powerlist::Complex;
  const int size = comm.size();
  PLS_CHECK(pls::is_power_of_two(signal.size()) &&
                signal.size() >= static_cast<std::size_t>(size),
            "FFT length must be a power of two and >= rank count");
  auto local = local_part(signal, comm.rank(), size, Distribution::kCyclic);
  pls::powerlist::fft_in_place(local);
  comm.charge_compute(
      5.0 * static_cast<double>(local.size()) *
      (1.0 + pls::floor_log2(local.size())) * flop_ns);
  if (size == 1) return local;
  return hypercube_allcombine(
      comm, std::move(local),
      [&](unsigned, std::vector<Complex> low, std::vector<Complex> high) {
        const std::size_t n = low.size();
        const auto u = pls::powerlist::powers(n);
        std::vector<Complex> out(2 * n);
        for (std::size_t j = 0; j < n; ++j) {
          const Complex t = u[j] * high[j];
          out[j] = low[j] + t;
          out[j + n] = low[j] - t;
        }
        comm.charge_compute(10.0 * static_cast<double>(n) * flop_ns);
        return out;
      });
}

}  // namespace pls::mpisim
