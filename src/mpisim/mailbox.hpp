// Point-to-point message channels for the in-process MPI simulation.
//
// JPLF executes PowerList functions over MPI on clusters; this reproduction
// has no cluster, so ranks are threads and messages travel through these
// blocking mailboxes. Each (source, destination) pair owns one mailbox;
// receives match MPI-style on tag, in FIFO order among equal tags.
#pragma once

#include <any>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "support/assert.hpp"

namespace pls::mpisim {

/// A message in flight: type-erased payload plus the simulated time at
/// which it becomes visible to the receiver (sender clock + alpha-beta
/// transfer cost), which drives the simulated-time accounting.
struct Message {
  int tag = 0;
  std::any payload;
  double available_at_ns = 0.0;
  std::uint64_t bytes = 0;
};

/// Blocking FIFO channel with tag matching. Thread-safe.
class Mailbox {
 public:
  void put(Message msg) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(msg));
    }
    ready_.notify_all();
  }

  /// Block until a message with `tag` is available; returns the earliest
  /// such message (FIFO among equal tags).
  Message take(int tag) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->tag == tag) {
          Message msg = std::move(*it);
          queue_.erase(it);
          return msg;
        }
      }
      ready_.wait(lock);
    }
  }

  /// Non-blocking probe: true if a message with `tag` is waiting.
  bool probe(int tag) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& m : queue_) {
      if (m.tag == tag) return true;
    }
    return false;
  }

  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Message> queue_;
};

}  // namespace pls::mpisim
