// Alpha-beta communication cost model for the MPI simulation.
//
// Simulated message time = alpha (per-message latency) + beta * bytes
// (inverse bandwidth). Defaults approximate a commodity cluster
// interconnect (~2 us latency, ~10 GbE effective bandwidth); benches sweep
// them to show how the JPLF-style MPI executor's scaling depends on the
// network.
#pragma once

#include <cstdint>

namespace pls::mpisim {

struct NetworkModel {
  double alpha_ns = 2000.0;     ///< per-message latency
  double beta_ns_per_byte = 0.8;  ///< inverse bandwidth (0.8 ns/B ~ 10 Gb/s)
  double barrier_ns = 4000.0;   ///< cost of a barrier episode

  double transfer_ns(std::uint64_t bytes) const {
    return alpha_ns + beta_ns_per_byte * static_cast<double>(bytes);
  }
};

}  // namespace pls::mpisim
