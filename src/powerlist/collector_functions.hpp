// The Streams <-> PowerList adaptation layer (Section IV of the paper).
//
// This header is the paper's actual contribution, ported faithfully:
//
//  1. PowerArray collectors — the identity/map/reduce family expressed
//     through the collect template method: supplier = PowerArray,
//     accumulator = add, combiner = tie_all or zip_all (the paper's first
//     example: collect(PowerList::new, PowerList::add, PowerList::zipAll)
//     over a ZipSpliterator reconstructs the source).
//
//  2. PolynomialValueCollector — the paper's central example (Section
//     IV-B): a Collector whose own specialised ZipSpliterator performs the
//     splitting-phase work (doubling the exponent of x) and publishes it
//     into state shared with the collector, the "general mechanism of
//     communication between the computation phases" of Section V. Java
//     expresses the sharing with an inner class; here the spliterator and
//     the collector share a Shared block, and the paper's synchronized
//     max-update becomes an atomic fetch-max.
//
//  3. DescendOpSpliterator — the equation-5 family f(p|q) = f(p⊕q)|f(p⊗q),
//     where trySplit itself transforms the elements ("the elements should
//     be updated correspondingly, before the new Spliterator instance is
//     created", Section V) and forEachRemaining completes the recursion on
//     the leaf sublists. walsh_hadamard_stream() instantiates it with
//     (+, -).
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "powerlist/power_array.hpp"
#include "powerlist/spliterators.hpp"
#include "streams/collector.hpp"
#include "streams/sized_sink.hpp"
#include "streams/stream.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"
#include "support/simd.hpp"

namespace pls::powerlist {

/// Collector rebuilding a PowerArray, applying `fn` to each element, with
/// the combiner matching the source's decomposition operator. Implements
/// both collect protocols: the classic supplier/add/tie_all-or-zip_all
/// triple, and the sized-sink protocol of the destination-passing path —
/// under which the recombination operator is irrelevant, because the
/// source windows already encode every element's final position and no
/// combiner ever runs (docs/execution.md).
template <typename T, typename U, typename Fn>
class PowerMapCollector final
    : public streams::Collector<T, PowerArray<U>> {
 public:
  PowerMapCollector(Fn fn, DecompositionOp op)
      : fn_(std::move(fn)), op_(op) {}

  PowerArray<U> supply() const override { return {}; }

  void accumulate(PowerArray<U>& acc, const T& v) const override {
    acc.add(fn_(v));
  }

  void combine(PowerArray<U>& left, PowerArray<U>& right) const override {
    if (op_ == DecompositionOp::kTie) {
      left.tie_all(right);
    } else {
      left.zip_all(right);
    }
  }

  // ---- sized-sink protocol -------------------------------------------

  using sized_accumulation_type = streams::SizedVectorSink<U>;

  streams::SizedVectorSink<U> supply_sized(std::uint64_t n) const {
    return streams::SizedVectorSink<U>(n);
  }

  void accumulate_at(streams::SizedVectorSink<U>& sink, std::uint64_t index,
                     const T& value) const {
    sink.write(index, fn_(value));
  }

  PowerArray<U> finish_sized(streams::SizedVectorSink<U>&& sink) const {
    return PowerArray<U>::adopt(std::move(sink).take());
  }

 private:
  Fn fn_;
  DecompositionOp op_;
};

namespace detail {
struct IdentityFn {
  template <typename T>
  const T& operator()(const T& v) const noexcept {
    return v;
  }
};
}  // namespace detail

/// Collector rebuilding a PowerArray with tie recombination (use with
/// TieSpliterator sources).
template <typename T>
auto to_power_array_tie() {
  return PowerMapCollector<T, T, detail::IdentityFn>(detail::IdentityFn{},
                                                     DecompositionOp::kTie);
}

/// Collector rebuilding a PowerArray with zip recombination (use with
/// ZipSpliterator sources — the paper's identity example).
template <typename T>
auto to_power_array_zip() {
  return PowerMapCollector<T, T, detail::IdentityFn>(detail::IdentityFn{},
                                                     DecompositionOp::kZip);
}

/// map through the collect template method: the accumulator first applies
/// the function, then adds — the paper's "(list, d) -> { d = f(d);
/// list.add(d); }" — with the combiner matching the decomposition operator.
template <typename T, typename Fn>
auto power_map_collector(Fn fn, DecompositionOp op) {
  using U = std::remove_cvref_t<std::invoke_result_t<Fn&, const T&>>;
  return PowerMapCollector<T, U, Fn>(std::move(fn), op);
}

/// The mutable result container of PolynomialValueCollector: the current
/// point, the running value, and the exponent this partial works at (the
/// paper's PolynomialValue fields x, val, x_degree). `x_power` caches
/// x^x_degree: the paper's code calls Math.pow per element, but x_degree
/// is constant within a container, so hoisting the pow to the supplier
/// keeps the computation identical while making the per-element cost one
/// multiply-add — the flop-bound profile the evaluation assumes.
struct PolynomialPartial {
  double x = 0.0;
  double val = 0.0;
  std::uint64_t x_degree = 1;
  double x_power = 0.0;  ///< x^x_degree, maintained alongside x_degree
};

/// The paper's PolynomialValue (Section IV-B), descending-coefficient
/// (Horner) convention: coefficient list (a0, ..., a_{n-1}) denotes
/// a0 x^{n-1} + a1 x^{n-2} + ... + a_{n-1}.
class PolynomialValueCollector final
    : public streams::Collector<double, PolynomialPartial, double> {
 public:
  using Partial = PolynomialPartial;

  /// `simd_kernels` selects the blocked Horner chunk kernel
  /// (support/simd.hpp) for contiguous leaf chunks: same polynomial, lane-
  /// re-associated rounding (ULP-level differences on doubles). Off, every
  /// path reduces with the exact per-element fold.
  explicit PolynomialValueCollector(double x, bool simd_kernels = true)
      : x_(x), simd_kernels_(simd_kernels),
        shared_(std::make_shared<Shared>()) {}

  /// The supplier copies the function object, including the *global*
  /// splitting depth published by the spliterators: the connection between
  /// the splitting phase and the leaf phase.
  Partial supply() const override {
    const std::uint64_t degree =
        shared_->x_degree.load(std::memory_order_acquire);
    return Partial{x_, 0.0, degree,
                   std::pow(x_, static_cast<double>(degree))};
  }

  /// Leaf phase: Horner step at the leaf's exponent,
  /// val := val * x^x_degree + d.
  void accumulate(Partial& pv, const double& d) const override {
    pv.val = pv.val * pv.x_power + d;
  }

  /// Chunked leaf phase (the ChunkAccumulatingCollector hook): fold a
  /// whole contiguous coefficient chunk with the blocked SIMD Horner
  /// kernel. The fused evaluator routes accept_chunk here, turning the
  /// per-element virtual accumulate into one kernel call per chunk.
  void accumulate_chunk(Partial& pv, const double* d,
                        std::size_t n) const {
    pv.val = simd_kernels_
                 ? simd::horner_chunk(pv.val, pv.x_power, d, n)
                 : simd::horner_chunk_scalar(pv.val, pv.x_power, d, n);
  }

  /// Ascending phase: halve the exponent and fold,
  /// val := val_left * x^(x_degree/2) + val_right.
  void combine(Partial& left, Partial& right) const override {
    PLS_ASSERT(left.x_degree == right.x_degree);
    left.x_degree /= 2;
    left.x_power = std::pow(x_, static_cast<double>(left.x_degree));
    left.val = left.val * left.x_power + right.val;
  }

  double finish(Partial&& pv) const override { return pv.val; }

  /// Create the specialised spliterator bound to this collector's shared
  /// state (the paper creates it through the same functionObject).
  std::unique_ptr<streams::Spliterator<double>> make_spliterator(
      std::shared_ptr<const std::vector<double>> coefficients) const {
    PLS_CHECK(coefficients != nullptr && !coefficients->empty(),
              "polynomial needs at least one coefficient");
    const std::size_t n = coefficients->size();
    return std::unique_ptr<streams::Spliterator<double>>(
        new PZipSpliterator(shared_, std::move(coefficients), 0, 1, n, 1));
  }

  double point() const noexcept { return x_; }

 private:
  /// State shared between the collector and every split of its
  /// spliterator — the role played by the Java inner class's implicit
  /// reference to PolynomialValue.this.
  struct Shared {
    std::atomic<std::uint64_t> x_degree{1};

    void publish_max(std::uint64_t candidate) {
      // The paper guards this with synchronized and a compare; an atomic
      // fetch-max loop is the C++ equivalent.
      std::uint64_t current = x_degree.load(std::memory_order_relaxed);
      while (candidate > current &&
             !x_degree.compare_exchange_weak(current, candidate,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
      }
    }
  };

  /// The paper's PZipSpliterator: each split doubles the local exponent
  /// and publishes the maximum into the shared state.
  class PZipSpliterator final : public ZipSpliterator<double> {
   public:
    PZipSpliterator(std::shared_ptr<Shared> shared,
                    std::shared_ptr<const std::vector<double>> data,
                    std::size_t start, std::size_t incr, std::size_t count,
                    std::uint64_t x_degree)
        : ZipSpliterator<double>(std::move(data), start, incr, count),
          shared_(std::move(shared)),
          x_degree_(x_degree) {}

   protected:
    void on_split() override {
      x_degree_ *= 2;  // the next level works at the squared point
      shared_->publish_max(x_degree_);
    }

    std::unique_ptr<streams::Spliterator<double>> make_like(
        std::shared_ptr<const std::vector<double>> data, std::size_t start,
        std::size_t incr, std::size_t count) override {
      return std::unique_ptr<streams::Spliterator<double>>(
          new PZipSpliterator(shared_, std::move(data), start, incr, count,
                              x_degree_));
    }

   private:
    std::shared_ptr<Shared> shared_;
    std::uint64_t x_degree_;
  };

  double x_;
  bool simd_kernels_ = true;
  std::shared_ptr<Shared> shared_;
};

/// Evaluate a polynomial (descending coefficients) through the Streams
/// adaptation — the paper's final snippet: build the collector, its
/// spliterator (checking the POWER2 characteristic), the stream, and
/// collect. `parallel` selects the execution mode measured by Figures 3/4;
/// `simd_kernels` toggles the blocked Horner chunk kernel (on by default,
/// off recovers the exact scalar fold).
inline double evaluate_polynomial_stream(
    std::shared_ptr<const std::vector<double>> coefficients, double x,
    bool parallel, streams::ExecutionConfig cfg = {},
    bool simd_kernels = true) {
  PolynomialValueCollector pv(x, simd_kernels);
  auto spliterator = pv.make_spliterator(std::move(coefficients));
  PLS_CHECK(spliterator->has(streams::kPower2),
            "the coefficient list must have power-of-two length");
  return streams::stream_support::from_spliterator<double>(
             std::move(spliterator), parallel)
      .with_config(cfg)
      .collect(pv);
}

/// Spliterator for the equation-5 family f(p|q) = f(p ⊕ q) | f(p ⊗ q):
/// trySplit rewrites the two halves with ⊕/⊗ before handing off the
/// prefix, and forEachRemaining finishes the recursion on leaf sublists.
/// The storage is mutable and shared, but every split owns a disjoint
/// window, so no synchronisation is needed (unlike the polynomial's global
/// state — the contrast Section V draws).
/// Contiguous windows (stride 1): the transform rewrites in place, so an
/// element's final position is simply its storage position — letting the
/// destination-passing collect gather the transformed list with no
/// combine phase.
template <typename T, typename Plus, typename Times>
class DescendOpSpliterator final : public streams::Spliterator<T>,
                                   public streams::WindowedSource {
 public:
  using Action = typename streams::Spliterator<T>::Action;

  DescendOpSpliterator(std::shared_ptr<std::vector<T>> data, Plus plus,
                       Times times)
      : DescendOpSpliterator(std::move(data), 0, 0, std::move(plus),
                             std::move(times)) {
    count_ = data_->size();
    PLS_CHECK(is_power_of_two(count_),
              "equation-5 functions require power-of-two input");
  }

  bool try_advance(Action action) override {
    complete_transform();
    if (count_ == 0) return false;
    action((*data_)[start_]);
    ++start_;
    --count_;
    return true;
  }

  void for_each_remaining(Action action) override {
    // Leaf phase: finish the descending recursion on this window, then
    // emit (the paper's forEachRemaining override).
    complete_transform();
    for (std::size_t k = 0; k < count_; ++k) action((*data_)[start_ + k]);
    start_ += count_;
    count_ = 0;
  }

  std::unique_ptr<streams::Spliterator<T>> try_split() override {
    // Once the leaf-phase transform ran, splitting would re-apply the
    // rewrite over already-transformed data; refuse (as with traversal
    // generally, split-after-advance is not part of the protocol).
    if (transformed_ || count_ < 2) return nullptr;
    const std::size_t half = count_ / 2;
    // Descending phase: rewrite both halves before splitting.
    for (std::size_t i = 0; i < half; ++i) {
      const T a = (*data_)[start_ + i];
      const T b = (*data_)[start_ + half + i];
      (*data_)[start_ + i] = plus_(a, b);
      (*data_)[start_ + half + i] = times_(a, b);
    }
    auto prefix = std::unique_ptr<streams::Spliterator<T>>(
        new DescendOpSpliterator(data_, start_, half, plus_, times_));
    start_ += half;
    count_ = half;
    return prefix;
  }

  std::uint64_t estimate_size() const override { return count_; }

  streams::Characteristics characteristics() const override {
    streams::Characteristics c =
        streams::kOrdered | streams::kSized | streams::kSubsized;
    if (is_power_of_two(count_)) c |= streams::kPower2;
    return c;
  }

  std::optional<streams::OutputWindow> try_output_window() const override {
    return streams::OutputWindow{start_, 1, count_};
  }

 private:
  DescendOpSpliterator(std::shared_ptr<std::vector<T>> data,
                       std::size_t start, std::size_t count, Plus plus,
                       Times times)
      : data_(std::move(data)),
        start_(start),
        count_(count),
        plus_(std::move(plus)),
        times_(std::move(times)) {
    PLS_CHECK(data_ != nullptr, "DescendOpSpliterator requires storage");
  }

  void complete_transform() {
    if (transformed_) return;
    transformed_ = true;
    complete_range(start_, count_);
  }

  void complete_range(std::size_t lo, std::size_t n) {
    if (n < 2) return;
    const std::size_t half = n / 2;
    for (std::size_t i = 0; i < half; ++i) {
      const T a = (*data_)[lo + i];
      const T b = (*data_)[lo + half + i];
      (*data_)[lo + i] = plus_(a, b);
      (*data_)[lo + half + i] = times_(a, b);
    }
    complete_range(lo, half);
    complete_range(lo + half, half);
  }

  std::shared_ptr<std::vector<T>> data_;
  std::size_t start_;
  std::size_t count_;
  Plus plus_;
  Times times_;
  bool transformed_ = false;
};

/// Walsh-Hadamard transform through the Streams adaptation: equation 5
/// with ⊕ = + and ⊗ = −, collected with tie recombination.
template <typename T>
PowerArray<T> walsh_hadamard_stream(std::vector<T> values, bool parallel,
                                    streams::ExecutionConfig cfg = {}) {
  auto storage = std::make_shared<std::vector<T>>(std::move(values));
  auto plus = [](const T& a, const T& b) { return a + b; };
  auto times = [](const T& a, const T& b) { return a - b; };
  auto sp = std::make_unique<
      DescendOpSpliterator<T, decltype(plus), decltype(times)>>(
      storage, plus, times);
  return streams::stream_support::from_spliterator<T>(std::move(sp), parallel)
      .with_config(cfg)
      .collect(to_power_array_tie<T>());
}

}  // namespace pls::powerlist
