// PowerFunction: the divide-and-conquer skeleton of PowerList functions
// (the JPLF template method, Section III of the paper).
//
// A PowerList function is defined by cases on the structure of its
// argument:
//     f([a])    = basic case
//     f(p op q) = combine(f(p'), f(q'))      op ∈ {tie, zip}
// possibly transforming a context on the way down (the paper's "additional
// operations at the splitting phase", e.g. the polynomial example's
// x := x^2). Subclasses provide:
//   decomposition()  which operator splits the argument;
//   basic_case()     the leaf phase — executors may stop splitting above
//                    singletons, so it receives a whole sublist view;
//   combine()        the ascending phase;
//   descend()        context transformation at each split (optional);
// plus operation-count hooks that let the simulated executor price the
// task tree (see src/simmachine/).
//
// Execution is deliberately separate from definition (Section III): the
// same function object runs under the sequential, fork-join, simulated and
// mpisim executors. Implementations must therefore be safe to call
// concurrently — all hooks are const.
#pragma once

#include <cstddef>
#include <utility>

#include "powerlist/view.hpp"

namespace pls::powerlist {

/// Context placeholder for functions that carry nothing down the tree.
struct NoContext {
  friend bool operator==(NoContext, NoContext) { return true; }
};

template <typename T, typename R, typename Ctx = NoContext>
class PowerFunction {
 public:
  using input_type = T;
  using result_type = R;
  using context_type = Ctx;

  virtual ~PowerFunction() = default;

  /// Which deconstruction operator splits the argument list.
  virtual DecompositionOp decomposition() const { return DecompositionOp::kTie; }

  /// Leaf phase: compute the function on a sublist where splitting
  /// stopped (length >= 1, a power of two).
  virtual R basic_case(PowerListView<const T> leaf, const Ctx& ctx) const = 0;

  /// Ascending phase: combine the results of the two halves of a node
  /// whose sublist had `length` elements and context `ctx`.
  virtual R combine(R&& left, R&& right, const Ctx& ctx,
                    std::size_t length) const = 0;

  /// Descending phase: contexts for the two halves (default: copy).
  virtual std::pair<Ctx, Ctx> descend(const Ctx& ctx,
                                      std::size_t length) const {
    (void)length;
    return {ctx, ctx};
  }

  // ---- cost hooks for the simulated executor (abstract operations) ----

  /// Operations performed by basic_case on a leaf of `len` elements.
  virtual double leaf_cost_ops(std::size_t len) const {
    return static_cast<double>(len);
  }
  /// Operations performed by descend at a node of `len` elements.
  virtual double descend_cost_ops(std::size_t len) const {
    (void)len;
    return 0.0;
  }
  /// Operations performed by combine at a node of `len` elements.
  virtual double combine_cost_ops(std::size_t len) const {
    (void)len;
    return 1.0;
  }
};

/// A PowerList function with a *similar* (same-length) PowerList result,
/// expressed in destination-passing style: instead of returning partial
/// results for an ascending combine phase, the leaf phase writes its
/// outputs straight into the matching window of a caller-supplied
/// destination view. Both views are split with the same decomposition
/// operator, so input and output windows stay aligned at every node and
/// the join is a no-op — the executor-side mirror of the sized-sink
/// collect (docs/execution.md).
template <typename T, typename U = T, typename Ctx = NoContext>
class InplacePowerFunction {
 public:
  using input_type = T;
  using output_type = U;
  using context_type = Ctx;

  virtual ~InplacePowerFunction() = default;

  /// Which deconstruction operator splits both argument and destination.
  virtual DecompositionOp decomposition() const {
    return DecompositionOp::kTie;
  }

  /// Leaf phase: compute the function on `leaf` and write the results
  /// into `out` (similar to `leaf`; these are the elements' final
  /// positions). Runs concurrently under the fork-join executor; distinct
  /// leaves always receive disjoint destination windows.
  virtual void basic_case_into(PowerListView<const T> leaf,
                               PowerListView<U> out,
                               const Ctx& ctx) const = 0;

  /// Descending phase: contexts for the two halves (default: copy).
  virtual std::pair<Ctx, Ctx> descend(const Ctx& ctx,
                                      std::size_t length) const {
    (void)length;
    return {ctx, ctx};
  }

  // ---- cost hooks (as in PowerFunction; no combine cost — there is no
  // combine phase) -----------------------------------------------------

  virtual double leaf_cost_ops(std::size_t len) const {
    return static_cast<double>(len);
  }
  virtual double descend_cost_ops(std::size_t len) const {
    (void)len;
    return 0.0;
  }
};

}  // namespace pls::powerlist
