// PowerFunction: the divide-and-conquer skeleton of PowerList functions
// (the JPLF template method, Section III of the paper).
//
// A PowerList function is defined by cases on the structure of its
// argument:
//     f([a])    = basic case
//     f(p op q) = combine(f(p'), f(q'))      op ∈ {tie, zip}
// possibly transforming a context on the way down (the paper's "additional
// operations at the splitting phase", e.g. the polynomial example's
// x := x^2). Subclasses provide:
//   decomposition()  which operator splits the argument;
//   basic_case()     the leaf phase — executors may stop splitting above
//                    singletons, so it receives a whole sublist view;
//   combine()        the ascending phase;
//   descend()        context transformation at each split (optional);
// plus operation-count hooks that let the simulated executor price the
// task tree (see src/simmachine/).
//
// Execution is deliberately separate from definition (Section III): the
// same function object runs under the sequential, fork-join, simulated and
// mpisim executors. Implementations must therefore be safe to call
// concurrently — all hooks are const.
#pragma once

#include <cstddef>
#include <utility>

#include "powerlist/view.hpp"

namespace pls::powerlist {

/// Context placeholder for functions that carry nothing down the tree.
struct NoContext {
  friend bool operator==(NoContext, NoContext) { return true; }
};

template <typename T, typename R, typename Ctx = NoContext>
class PowerFunction {
 public:
  using input_type = T;
  using result_type = R;
  using context_type = Ctx;

  virtual ~PowerFunction() = default;

  /// Which deconstruction operator splits the argument list.
  virtual DecompositionOp decomposition() const { return DecompositionOp::kTie; }

  /// Leaf phase: compute the function on a sublist where splitting
  /// stopped (length >= 1, a power of two).
  virtual R basic_case(PowerListView<const T> leaf, const Ctx& ctx) const = 0;

  /// Ascending phase: combine the results of the two halves of a node
  /// whose sublist had `length` elements and context `ctx`.
  virtual R combine(R&& left, R&& right, const Ctx& ctx,
                    std::size_t length) const = 0;

  /// Descending phase: contexts for the two halves (default: copy).
  virtual std::pair<Ctx, Ctx> descend(const Ctx& ctx,
                                      std::size_t length) const {
    (void)length;
    return {ctx, ctx};
  }

  // ---- cost hooks for the simulated executor (abstract operations) ----

  /// Operations performed by basic_case on a leaf of `len` elements.
  virtual double leaf_cost_ops(std::size_t len) const {
    return static_cast<double>(len);
  }
  /// Operations performed by descend at a node of `len` elements.
  virtual double descend_cost_ops(std::size_t len) const {
    (void)len;
    return 0.0;
  }
  /// Operations performed by combine at a node of `len` elements.
  virtual double combine_cost_ops(std::size_t len) const {
    (void)len;
    return 1.0;
  }
};

}  // namespace pls::powerlist
