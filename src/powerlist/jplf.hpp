// JPLF-compatibility layer: the framework of Section III, with its
// original shape.
//
// JPLF (the authors' Java framework, [19]-[21]) differs from this
// library's idiomatic PowerFunction in two ways that this header
// reproduces faithfully for users porting JPLF code:
//
//  1. the deconstruction operator belongs to the *list*, not the
//     function: TiePowerList and ZipPowerList know how to split
//     themselves;
//  2. the function object supplies create_left_function /
//     create_right_function — the sub-computations may be *different
//     function objects* (how JPLF threads descending-phase state such as
//     the polynomial's squared point, without a context parameter).
//
// The template method `compute` implements the solving strategy; the
// parallel variant forks the two sub-computations on a pool.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "forkjoin/pool.hpp"
#include "powerlist/view.hpp"
#include "support/assert.hpp"

namespace pls::powerlist::jplf {

/// Abstract PowerList: a view plus a self-deconstruction rule.
template <typename T>
class BasePowerList {
 public:
  explicit BasePowerList(PowerListView<const T> view) : view_(view) {}
  virtual ~BasePowerList() = default;

  std::size_t length() const { return view_.length(); }
  bool is_singleton() const { return view_.is_singleton(); }
  const PowerListView<const T>& view() const { return view_; }

  /// Deconstruct with this list's operator.
  virtual std::pair<std::unique_ptr<BasePowerList>,
                    std::unique_ptr<BasePowerList>>
  deconstruct() const = 0;

 protected:
  PowerListView<const T> view_;
};

/// A PowerList that deconstructs with tie (halves).
template <typename T>
class TiePowerList final : public BasePowerList<T> {
 public:
  using BasePowerList<T>::BasePowerList;

  std::pair<std::unique_ptr<BasePowerList<T>>,
            std::unique_ptr<BasePowerList<T>>>
  deconstruct() const override {
    const auto [l, r] = this->view_.tie();
    return {std::make_unique<TiePowerList<T>>(l),
            std::make_unique<TiePowerList<T>>(r)};
  }
};

/// A PowerList that deconstructs with zip (even/odd).
template <typename T>
class ZipPowerList final : public BasePowerList<T> {
 public:
  using BasePowerList<T>::BasePowerList;

  std::pair<std::unique_ptr<BasePowerList<T>>,
            std::unique_ptr<BasePowerList<T>>>
  deconstruct() const override {
    const auto [l, r] = this->view_.zip();
    return {std::make_unique<ZipPowerList<T>>(l),
            std::make_unique<ZipPowerList<T>>(r)};
  }
};

/// The JPLF PowerFunction: subclasses provide the four primitive
/// operations; `compute` is the template method.
template <typename T, typename R>
class JplfPowerFunction {
 public:
  virtual ~JplfPowerFunction() = default;

  /// Solve a basic case (length <= basic_threshold()).
  virtual R basic_case(const BasePowerList<T>& list) = 0;

  /// Combine the two sub-results.
  virtual R combine(R left, R right) = 0;

  /// Function objects for the two sub-computations. These may differ from
  /// *this — JPLF's way of performing descending-phase work.
  virtual std::unique_ptr<JplfPowerFunction> create_left_function() const = 0;
  virtual std::unique_ptr<JplfPowerFunction> create_right_function()
      const = 0;

  /// Lists at or below this length are basic cases.
  virtual std::size_t basic_threshold() const { return 1; }

  /// The template method: the divide-and-conquer solving strategy.
  R compute(const BasePowerList<T>& list) {
    if (list.length() <= basic_threshold()) {
      return basic_case(list);
    }
    auto [left_list, right_list] = list.deconstruct();
    auto left_fn = create_left_function();
    auto right_fn = create_right_function();
    R left = left_fn->compute(*left_list);
    R right = right_fn->compute(*right_list);
    return combine(std::move(left), std::move(right));
  }

  /// Parallel solving strategy: same decomposition, the two
  /// sub-computations forked on the pool. Sub-function objects are
  /// per-branch (fresh from create_*_function), so no sharing is needed;
  /// basic_case/combine of *distinct objects* run concurrently.
  R compute_parallel(forkjoin::ForkJoinPool& pool,
                     const BasePowerList<T>& list) {
    return pool.run([&] { return compute_parallel_impl(pool, list); });
  }

 private:
  R compute_parallel_impl(forkjoin::ForkJoinPool& pool,
                          const BasePowerList<T>& list) {
    if (list.length() <= basic_threshold()) {
      return basic_case(list);
    }
    auto [left_list, right_list] = list.deconstruct();
    auto left_fn = create_left_function();
    auto right_fn = create_right_function();
    std::optional<R> left;
    std::optional<R> right;
    pool.invoke_two(
        [&] {
          left.emplace(left_fn->compute_parallel_impl(pool, *left_list));
        },
        [&] {
          right.emplace(
              right_fn->compute_parallel_impl(pool, *right_list));
        });
    return combine(std::move(*left), std::move(*right));
  }
};

}  // namespace pls::powerlist::jplf
