// PowerArray<T>: the owning PowerList container of the Streams adaptation.
//
// This is the C++ port of the paper's PowerList class (Figure 2): "a class
// PowerList that extends a list (more specifically an ArrayList); the class
// provides tieAll and zipAll methods, which append the elements of a
// collection argument, accordingly". It is the mutable result container
// used with the collect template method:
//   supplier   -> PowerArray{}
//   accumulator-> add
//   combiner   -> tie_all (linear splits) or zip_all (zip splits)
//
// During a collect, intermediate PowerArrays may hold any length; the
// power-of-two property is guaranteed by construction when the source
// spliterator had the POWER2 characteristic.
#pragma once

#include <initializer_list>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/bits.hpp"
#include "powerlist/view.hpp"

namespace pls::powerlist {

template <typename T>
class PowerArray {
 public:
  PowerArray() = default;
  explicit PowerArray(std::vector<T> values) : values_(std::move(values)) {}
  PowerArray(std::initializer_list<T> values) : values_(values) {}

  /// Append one element (the accumulator of the collect template method).
  void add(const T& value) { values_.push_back(value); }
  void add(T&& value) { values_.push_back(std::move(value)); }

  /// tie construction: append all of `other` after this (p | q).
  void tie_all(PowerArray& other) {
    values_.insert(values_.end(),
                   std::make_move_iterator(other.values_.begin()),
                   std::make_move_iterator(other.values_.end()));
    other.values_.clear();
  }

  /// zip construction: interleave `other` with this (p ⋈ q). Requires
  /// similar (equal-length) arguments, as the PowerList algebra does.
  void zip_all(PowerArray& other) {
    PLS_CHECK(values_.size() == other.values_.size(),
              "zip_all requires similar PowerLists");
    std::vector<T> zipped;
    zipped.reserve(values_.size() * 2);
    for (std::size_t i = 0; i < values_.size(); ++i) {
      zipped.push_back(std::move(values_[i]));
      zipped.push_back(std::move(other.values_[i]));
    }
    values_ = std::move(zipped);
    other.values_.clear();
  }

  std::size_t size() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }
  bool is_power_list() const noexcept {
    return is_power_of_two(values_.size());
  }

  const T& operator[](std::size_t i) const { return values_[i]; }
  T& operator[](std::size_t i) { return values_[i]; }

  const std::vector<T>& values() const noexcept { return values_; }
  std::vector<T> take() && { return std::move(values_); }

  /// Read-only PowerList view (requires power-of-two size).
  PowerListView<const T> view() const {
    return PowerListView<const T>::over(values_);
  }

  friend bool operator==(const PowerArray& a, const PowerArray& b) {
    return a.values_ == b.values_;
  }

 private:
  std::vector<T> values_;
};

}  // namespace pls::powerlist
