// PowerArray<T>: the owning PowerList container of the Streams adaptation.
//
// This is the C++ port of the paper's PowerList class (Figure 2): "a class
// PowerList that extends a list (more specifically an ArrayList); the class
// provides tieAll and zipAll methods, which append the elements of a
// collection argument, accordingly". It is the mutable result container
// used with the collect template method:
//   supplier   -> PowerArray{}
//   accumulator-> add
//   combiner   -> tie_all (linear splits) or zip_all (zip splits)
//
// During a collect, intermediate PowerArrays may hold any length; the
// power-of-two property is guaranteed by construction when the source
// spliterator had the POWER2 characteristic.
#pragma once

#include <initializer_list>
#include <utility>
#include <vector>

#include "observe/counters.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"
#include "powerlist/view.hpp"

namespace pls::powerlist {

template <typename T>
class PowerArray {
 public:
  PowerArray() = default;
  explicit PowerArray(std::vector<T> values) : values_(std::move(values)) {}
  PowerArray(std::initializer_list<T> values) : values_(values) {}

  /// Adopt a fully materialised buffer (the destination-passing collect
  /// builds the whole vector in place and hands it over here — no
  /// per-element adds and no tie_all/zip_all combines).
  static PowerArray adopt(std::vector<T> values) {
    return PowerArray(std::move(values));
  }

  /// Append one element (the accumulator of the collect template method).
  void add(const T& value) { values_.push_back(value); }
  void add(T&& value) { values_.push_back(std::move(value)); }

  /// tie construction: append all of `other` after this (p | q).
  void tie_all(PowerArray& other) {
    observe::local_counters().on_bytes_moved(other.values_.size() *
                                             sizeof(T));
    values_.reserve(values_.size() + other.values_.size());
    values_.insert(values_.end(),
                   std::make_move_iterator(other.values_.begin()),
                   std::make_move_iterator(other.values_.end()));
    other.values_.clear();
  }

  /// zip construction: interleave `other` with this (p ⋈ q). Requires
  /// similar (equal-length) arguments, as the PowerList algebra does.
  /// Interleaves into a scratch buffer that persists across calls: in a
  /// combine tree the left accumulator zips once per level, so after the
  /// first few levels the scratch is grown rather than freshly allocated.
  void zip_all(PowerArray& other) {
    PLS_CHECK(values_.size() == other.values_.size(),
              "zip_all requires similar PowerLists");
    const std::size_t n = values_.size();
    observe::local_counters().on_bytes_moved(2 * n * sizeof(T));
    if (scratch_.capacity() < 2 * n) {
      observe::local_counters().on_allocation();
      scratch_.reserve(2 * n);
    }
    scratch_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      scratch_.push_back(std::move(values_[i]));
      scratch_.push_back(std::move(other.values_[i]));
    }
    // Swap rather than assign: the old element buffer becomes the next
    // scratch, so successive zips recycle storage in both directions.
    values_.swap(scratch_);
    other.values_.clear();
  }

  std::size_t size() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }
  bool is_power_list() const noexcept {
    return is_power_of_two(values_.size());
  }

  const T& operator[](std::size_t i) const { return values_[i]; }
  T& operator[](std::size_t i) { return values_[i]; }

  const std::vector<T>& values() const noexcept { return values_; }
  std::vector<T> take() && { return std::move(values_); }

  /// Read-only PowerList view (requires power-of-two size).
  PowerListView<const T> view() const {
    return PowerListView<const T>::over(values_);
  }

  friend bool operator==(const PowerArray& a, const PowerArray& b) {
    return a.values_ == b.values_;
  }

 private:
  std::vector<T> values_;
  /// Reused interleave buffer for zip_all (see the method comment).
  std::vector<T> scratch_;
};

}  // namespace pls::powerlist
