// PowerListView: a no-copy view of a PowerList (Misra 1994).
//
// A PowerList is a list whose length is a power of two, deconstructible in
// two ways:
//   tie:  p | q  — p is the first half, q the second half;
//   zip:  p ⋈ q — p holds the even-indexed elements, q the odd-indexed.
//
// Following JPLF (Section V of the paper: "updating only the data structure
// information"), a view never copies elements: it is (storage, start,
// stride, length), and both deconstruction operators merely produce two new
// views over the same storage:
//   tie:  (start, stride, n/2) and (start + stride*n/2, stride, n/2)
//   zip:  (start, 2*stride, n/2) and (start + stride, 2*stride, n/2)
//
// The element type T may be const-qualified for read-only views;
// PowerListView<const T> is implicitly constructible from
// PowerListView<T>.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace pls::powerlist {

/// Which deconstruction operator a PowerList function splits with.
enum class DecompositionOp { kTie, kZip };

template <typename T>
class PowerListView {
 public:
  using element_type = T;

  /// View over `length` elements of `base` at `start`, spaced `stride`.
  /// `length` must be a power of two.
  PowerListView(T* base, std::size_t start, std::size_t stride,
                std::size_t length)
      : base_(base), start_(start), stride_(stride), length_(length) {
    PLS_CHECK(base != nullptr, "PowerListView requires storage");
    PLS_CHECK(is_power_of_two(length),
              "PowerList length must be a power of two");
    PLS_CHECK(stride >= 1, "PowerListView stride must be >= 1");
  }

  /// Full view over a vector (its size must be a power of two).
  template <typename Vec>
  static PowerListView over(Vec& storage) {
    return PowerListView(storage.data(), 0, 1, storage.size());
  }

  /// Read-only views convert implicitly from mutable ones.
  operator PowerListView<const T>() const {
    return PowerListView<const T>(base_, start_, stride_, length_);
  }

  std::size_t length() const noexcept { return length_; }
  bool is_singleton() const noexcept { return length_ == 1; }
  /// log2(length): the number of decomposition levels below this view.
  unsigned levels() const noexcept { return exact_log2(length_); }

  std::size_t start() const noexcept { return start_; }
  std::size_t stride() const noexcept { return stride_; }
  T* base() const noexcept { return base_; }

  /// The i-th element of this PowerList.
  T& operator[](std::size_t i) const {
    PLS_ASSERT(i < length_);
    return base_[start_ + i * stride_];
  }

  /// tie deconstruction: first and second halves.
  std::pair<PowerListView, PowerListView> tie() const {
    PLS_CHECK(length_ >= 2, "cannot deconstruct a singleton");
    const std::size_t half = length_ / 2;
    return {PowerListView(base_, start_, stride_, half),
            PowerListView(base_, start_ + stride_ * half, stride_, half)};
  }

  /// zip deconstruction: even- and odd-indexed elements.
  std::pair<PowerListView, PowerListView> zip() const {
    PLS_CHECK(length_ >= 2, "cannot deconstruct a singleton");
    const std::size_t half = length_ / 2;
    return {PowerListView(base_, start_, stride_ * 2, half),
            PowerListView(base_, start_ + stride_, stride_ * 2, half)};
  }

  /// Deconstruct with the given operator.
  std::pair<PowerListView, PowerListView> split(DecompositionOp op) const {
    return op == DecompositionOp::kTie ? tie() : zip();
  }

  /// Materialise the viewed elements, in order.
  std::vector<std::remove_const_t<T>> to_vector() const {
    std::vector<std::remove_const_t<T>> out;
    out.reserve(length_);
    for (std::size_t i = 0; i < length_; ++i) out.push_back((*this)[i]);
    return out;
  }

  /// Two views are `similar` when they have the same length (the
  /// precondition of the PowerList construction operators and of the
  /// extended pointwise operators).
  template <typename U>
  bool similar(const PowerListView<U>& other) const noexcept {
    return length_ == other.length();
  }

 private:
  T* base_;
  std::size_t start_;
  std::size_t stride_;
  std::size_t length_;
};

/// Deduction helper: read-only view over a const vector.
template <typename T>
PowerListView<const T> view_of(const std::vector<T>& v) {
  return PowerListView<const T>::over(v);
}

/// Deduction helper: mutable view over a vector.
template <typename T>
PowerListView<T> view_of(std::vector<T>& v) {
  return PowerListView<T>::over(v);
}

}  // namespace pls::powerlist
