// Polynomial multiplication (convolution) through the PowerList FFT —
// the application that makes the FFT a *library* feature rather than a
// demo: multiply two coefficient lists in O(n log n).
#pragma once

#include <cmath>
#include <complex>
#include <vector>

#include "powerlist/algorithms/fft.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace pls::powerlist {

/// Direct O(n*m) convolution (reference).
inline std::vector<double> convolve_naive(const std::vector<double>& a,
                                          const std::vector<double>& b) {
  PLS_CHECK(!a.empty() && !b.empty(), "convolution needs non-empty inputs");
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

/// FFT convolution: zero-pad to the next power of two >= |a|+|b|-1,
/// transform, multiply pointwise, transform back.
inline std::vector<double> convolve_fft(const std::vector<double>& a,
                                        const std::vector<double>& b) {
  PLS_CHECK(!a.empty() && !b.empty(), "convolution needs non-empty inputs");
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_power_of_two(out_len);
  std::vector<Complex> fa(n, Complex{0.0, 0.0});
  std::vector<Complex> fb(n, Complex{0.0, 0.0});
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = Complex{a[i], 0.0};
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = Complex{b[i], 0.0};
  fft_in_place(fa);
  fft_in_place(fb);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  const auto inv = inverse_fft(std::move(fa));
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = inv[i].real();
  return out;
}

/// Multiply two polynomials given as ascending coefficient lists.
inline std::vector<double> poly_multiply(const std::vector<double>& a,
                                         const std::vector<double>& b) {
  // Below this size the O(n^2) kernel wins (no transform overhead).
  constexpr std::size_t kNaiveCutoff = 64;
  if (a.size() * b.size() <= kNaiveCutoff * kNaiveCutoff) {
    return convolve_naive(a, b);
  }
  return convolve_fft(a, b);
}

}  // namespace pls::powerlist
