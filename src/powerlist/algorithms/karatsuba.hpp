// Karatsuba polynomial multiplication — divide-and-conquer with THREE
// sub-problems per level, the textbook example of why the PList
// generalisation (arbitrary arity, Section II) matters: binary
// PowerList recursion cannot express it, the 3-way skeleton can.
//
//   a = a_lo + a_hi x^m,  b = b_lo + b_hi x^m          (m = n/2)
//   a*b = P0 + (P2 - P0 - P1) x^m + P1 x^{2m}
//   P0 = a_lo*b_lo,  P1 = a_hi*b_hi,  P2 = (a_lo+a_hi)*(b_lo+b_hi)
//
// O(n^{log2 3}) multiplications; the three products are independent and
// fork on the pool.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "forkjoin/pool.hpp"
#include "powerlist/algorithms/convolution.hpp"
#include "support/assert.hpp"

namespace pls::powerlist {

namespace detail {

template <typename T>
std::vector<T> karatsuba_rec(const std::vector<T>& a,
                             const std::vector<T>& b, std::size_t cutoff,
                             forkjoin::ForkJoinPool* pool) {
  const std::size_t n = a.size();  // == b.size(), power of two
  if (n <= cutoff) {
    // Base case: schoolbook convolution.
    std::vector<T> out(2 * n - 1, T{});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) out[i + j] += a[i] * b[j];
    }
    out.resize(2 * n, T{});  // uniform length simplifies recombination
    return out;
  }
  const std::size_t m = n / 2;
  const std::vector<T> a_lo(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(m));
  const std::vector<T> a_hi(a.begin() + static_cast<std::ptrdiff_t>(m), a.end());
  const std::vector<T> b_lo(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(m));
  const std::vector<T> b_hi(b.begin() + static_cast<std::ptrdiff_t>(m), b.end());
  std::vector<T> a_sum(m), b_sum(m);
  for (std::size_t i = 0; i < m; ++i) {
    a_sum[i] = a_lo[i] + a_hi[i];
    b_sum[i] = b_lo[i] + b_hi[i];
  }

  std::optional<std::vector<T>> p0, p1, p2;
  if (pool != nullptr) {
    pool->invoke_two(
        [&] { p0.emplace(karatsuba_rec(a_lo, b_lo, cutoff, pool)); },
        [&] {
          pool->invoke_two(
              [&] { p1.emplace(karatsuba_rec(a_hi, b_hi, cutoff, pool)); },
              [&] { p2.emplace(karatsuba_rec(a_sum, b_sum, cutoff, pool)); });
        });
  } else {
    p0.emplace(karatsuba_rec(a_lo, b_lo, cutoff, nullptr));
    p1.emplace(karatsuba_rec(a_hi, b_hi, cutoff, nullptr));
    p2.emplace(karatsuba_rec(a_sum, b_sum, cutoff, nullptr));
  }

  // Combine: out = P0 + (P2 - P0 - P1) x^m + P1 x^{2m}.  |Pk| = 2m = n.
  std::vector<T> out(2 * n, T{});
  for (std::size_t i = 0; i < n; ++i) {
    out[i] += (*p0)[i];
    out[i + m] += (*p2)[i] - (*p0)[i] - (*p1)[i];
    out[i + n] += (*p1)[i];
  }
  return out;
}

}  // namespace detail

/// Multiply two ascending-coefficient polynomials of equal power-of-two
/// length; returns 2n coefficients (the top one zero-padded).
/// Fork the three sub-products on `pool` when given.
template <typename T>
std::vector<T> karatsuba_multiply(const std::vector<T>& a,
                                  const std::vector<T>& b,
                                  std::size_t cutoff = 32,
                                  forkjoin::ForkJoinPool* pool = nullptr) {
  PLS_CHECK(a.size() == b.size() && is_power_of_two(a.size()),
            "karatsuba requires similar power-of-two inputs");
  PLS_CHECK(cutoff >= 1, "cutoff must be >= 1");
  if (pool != nullptr) {
    return pool->run(
        [&] { return detail::karatsuba_rec(a, b, cutoff, pool); });
  }
  return detail::karatsuba_rec(a, b, cutoff, nullptr);
}

}  // namespace pls::powerlist
