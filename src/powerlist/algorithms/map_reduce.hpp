// map and reduce as PowerList functions (Section II, equation 1).
//
//   map(f, [a])    = [f a]
//   map(f, p | q)  = map(f, p) | map(f, q)        (or the zip variant)
//   red(op, [a])   = a
//   red(op, p | q) = op(red(op, p), red(op, q))
//
// Both admit tie- and zip-based definitions; the choice changes the memory
// access pattern, not the result (for reduce under zip this additionally
// requires commutativity — see the class comments). The tie/zip ablation
// bench measures exactly this difference.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "powerlist/function.hpp"
#include "powerlist/power_array.hpp"
#include "powerlist/view.hpp"

namespace pls::powerlist {

/// map as a PowerFunction producing an owning PowerArray. The combine
/// operator mirrors the decomposition operator, so the output ordering is
/// restored whichever way the input was split.
template <typename T, typename U, typename Fn>
class MapFunction final : public PowerFunction<T, PowerArray<U>> {
 public:
  explicit MapFunction(Fn fn, DecompositionOp op = DecompositionOp::kTie)
      : fn_(std::move(fn)), op_(op) {}

  DecompositionOp decomposition() const override { return op_; }

  PowerArray<U> basic_case(PowerListView<const T> leaf,
                           const NoContext&) const override {
    PowerArray<U> out;
    for (std::size_t i = 0; i < leaf.length(); ++i) out.add(fn_(leaf[i]));
    return out;
  }

  PowerArray<U> combine(PowerArray<U>&& left, PowerArray<U>&& right,
                        const NoContext&, std::size_t) const override {
    if (op_ == DecompositionOp::kTie) {
      left.tie_all(right);
    } else {
      left.zip_all(right);
    }
    return std::move(left);
  }

  double combine_cost_ops(std::size_t len) const override {
    return static_cast<double>(len);  // container merge is O(len)
  }

 private:
  Fn fn_;
  DecompositionOp op_;
};

/// reduce as a PowerFunction. `op` must be associative; with zip
/// decomposition it must also be commutative (zip reorders the fold).
template <typename T, typename Op>
class ReduceFunction final : public PowerFunction<T, T> {
 public:
  explicit ReduceFunction(Op op, DecompositionOp decomp = DecompositionOp::kTie)
      : op_(std::move(op)), decomp_(decomp) {}

  DecompositionOp decomposition() const override { return decomp_; }

  T basic_case(PowerListView<const T> leaf, const NoContext&) const override {
    T acc = leaf[0];
    for (std::size_t i = 1; i < leaf.length(); ++i) acc = op_(acc, leaf[i]);
    return acc;
  }

  T combine(T&& left, T&& right, const NoContext&,
            std::size_t) const override {
    return op_(std::move(left), std::move(right));
  }

 private:
  Op op_;
  DecompositionOp decomp_;
};

/// In-place map over views: dst[i] = f(src[i]), divide-and-conquer via
/// the requested operator (no allocation; used by the executors' benches).
template <typename T, typename U, typename Fn>
void map_into(PowerListView<const T> src, PowerListView<U> dst, const Fn& fn,
              DecompositionOp op = DecompositionOp::kTie) {
  PLS_CHECK(src.similar(dst), "map_into requires similar views");
  if (src.length() == 1) {
    dst[0] = fn(src[0]);
    return;
  }
  const auto [src_left, src_right] = src.split(op);
  const auto [dst_left, dst_right] = dst.split(op);
  map_into(src_left, dst_left, fn, op);
  map_into(src_right, dst_right, fn, op);
}

}  // namespace pls::powerlist
