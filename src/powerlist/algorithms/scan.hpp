// Prefix sums (scan) over PowerLists.
//
// Three implementations of inclusive scan with an associative operator:
//   - scan_sequential: the O(n) reference;
//   - SklanskyScanFunction: the tie-based PowerList recursion
//       ps(p | q) = ps(p) | (last(ps(p)) ⊕ ps(q))
//     (O(n log n) work, O(log n) depth — Sklansky's construction);
//   - scan_ladner_fischer: the zip-based recursion from Misra's paper
//       ps(p ⋈ q) = (shift(t) ⊕ p) ⋈ t   where t = ps(p ⊕ q)
//     which performs work at the *descending* phase (computing p ⊕ q
//     before the single recursive call) — the shape of equation 5 in the
//     paper, where splitting is not pure data distribution.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "powerlist/function.hpp"
#include "powerlist/power_array.hpp"
#include "powerlist/view.hpp"
#include "support/assert.hpp"
#include "support/simd.hpp"

namespace pls::powerlist {

/// Inclusive sequential scan of a view (const or mutable). Known-+ ops
/// over arithmetic elements on contiguous views take the blocked
/// Hillis–Steele chunk kernel (support/simd.hpp) instead of the serial
/// fold: exact for integers, ULP-level re-association for floating point.
template <typename TV, typename Op, typename T = std::remove_const_t<TV>>
std::vector<T> scan_sequential(PowerListView<TV> p, Op op) {
  if constexpr (simd::is_plus_v<Op> && simd::kernel_eligible_v<T>) {
    if (p.stride() == 1) {
      std::vector<T> out(p.length());
      simd::inclusive_scan_add(p.base() + p.start(), out.data(), p.length());
      return out;
    }
  }
  std::vector<T> out;
  out.reserve(p.length());
  T acc = p[0];
  out.push_back(acc);
  for (std::size_t i = 1; i < p.length(); ++i) {
    acc = op(acc, p[i]);
    out.push_back(acc);
  }
  return out;
}

/// Sklansky's scan as a tie-based PowerFunction.
template <typename T, typename Op>
class SklanskyScanFunction final : public PowerFunction<T, PowerArray<T>> {
 public:
  explicit SklanskyScanFunction(Op op) : op_(std::move(op)) {}

  DecompositionOp decomposition() const override {
    return DecompositionOp::kTie;
  }

  PowerArray<T> basic_case(PowerListView<const T> leaf,
                           const NoContext&) const override {
    return PowerArray<T>(scan_sequential(leaf, op_));
  }

  PowerArray<T> combine(PowerArray<T>&& left, PowerArray<T>&& right,
                        const NoContext&, std::size_t) const override {
    const T& carry = left[left.size() - 1];
    if constexpr (simd::is_plus_v<Op> && simd::kernel_eligible_v<T>) {
      simd::add_carry_chunk(carry, &right[0], right.size());
    } else {
      for (std::size_t i = 0; i < right.size(); ++i) {
        right[i] = op_(carry, right[i]);
      }
    }
    left.tie_all(right);
    return std::move(left);
  }

  double combine_cost_ops(std::size_t len) const override {
    return static_cast<double>(len);  // half the node is updated + merge
  }

 private:
  Op op_;
};

/// Ladner-Fischer scan: the zip-based PowerList recursion. Note the
/// descending-phase computation (p ⊕ q) and the *single* recursive call —
/// a D&C shape outside the binary-fork skeleton, implemented directly.
template <typename TV, typename Op, typename T = std::remove_const_t<TV>>
std::vector<T> scan_ladner_fischer(PowerListView<TV> p, const Op& op) {
  if (p.length() == 1) return {p[0]};
  const auto [evens, odds] = p.zip();
  // Descending phase: pairwise-combined list (p ⊕ q).
  std::vector<T> pairs;
  pairs.reserve(evens.length());
  for (std::size_t i = 0; i < evens.length(); ++i) {
    pairs.push_back(op(evens[i], odds[i]));
  }
  const std::vector<T> t =
      scan_ladner_fischer(PowerListView<const T>::over(pairs), op);
  // Ascending phase: interleave (shift(t) ⊕ p) with t.
  std::vector<T> out(p.length());
  for (std::size_t i = 0; i < evens.length(); ++i) {
    out[2 * i] = (i == 0) ? evens[0] : op(t[i - 1], evens[i]);
    out[2 * i + 1] = t[i];
  }
  return out;
}

}  // namespace pls::powerlist
