// Maximum segment sum as a PowerList homomorphism.
//
// The related-work section of the paper points to list homomorphisms
// (Bird-Meertens / Cole) as the formal kin of PowerList D&C: "they allow
// representations as compositions between map and reduce functionals."
// MSS is the canonical almost-homomorphism: it becomes a true reduce
// after tupling each element into (mss, best prefix, best suffix, total),
// so it runs on the unchanged ReduceFunction/tie machinery.
#pragma once

#include <algorithm>
#include <vector>

#include "powerlist/algorithms/map_reduce.hpp"
#include "powerlist/executors.hpp"
#include "powerlist/view.hpp"

namespace pls::powerlist {

/// The MSS tuple: all four quantities needed to combine segments.
/// Empty segments are allowed (all values >= 0 is not assumed; the empty
/// segment contributes sum 0).
template <typename T>
struct MssState {
  T best{};    ///< maximum segment sum within this part
  T prefix{};  ///< maximum sum of a prefix
  T suffix{};  ///< maximum sum of a suffix
  T total{};   ///< sum of the whole part

  static MssState of(T value) {
    const T clamped = std::max(value, T{});
    return MssState{clamped, clamped, clamped, value};
  }

  friend MssState mss_combine(const MssState& l, const MssState& r) {
    MssState out;
    out.best = std::max({l.best, r.best, l.suffix + r.prefix});
    out.prefix = std::max(l.prefix, l.total + r.prefix);
    out.suffix = std::max(r.suffix, r.total + l.suffix);
    out.total = l.total + r.total;
    return out;
  }

  friend bool operator==(const MssState&, const MssState&) = default;
};

/// Sequential reference: Kadane's algorithm (empty segment allowed).
template <typename TV, typename T = std::remove_const_t<TV>>
T mss_sequential(PowerListView<TV> p) {
  T best{};
  T running{};
  for (std::size_t i = 0; i < p.length(); ++i) {
    running = std::max(T{}, running + p[i]);
    best = std::max(best, running);
  }
  return best;
}

/// MSS as a tie-based PowerFunction over the tupled monoid.
template <typename T>
class MssFunction final : public PowerFunction<T, MssState<T>> {
 public:
  MssState<T> basic_case(PowerListView<const T> leaf,
                         const NoContext&) const override {
    MssState<T> acc = MssState<T>::of(leaf[0]);
    for (std::size_t i = 1; i < leaf.length(); ++i) {
      acc = mss_combine(acc, MssState<T>::of(leaf[i]));
    }
    return acc;
  }

  MssState<T> combine(MssState<T>&& l, MssState<T>&& r, const NoContext&,
                      std::size_t) const override {
    return mss_combine(l, r);
  }
};

/// Convenience: maximum segment sum of a PowerList, sequential executor.
template <typename TV, typename T = std::remove_const_t<TV>>
T mss(PowerListView<TV> p, std::size_t leaf_size = 1) {
  MssFunction<T> f;
  return execute_sequential(f, PowerListView<const T>(p), {}, leaf_size)
      .best;
}

}  // namespace pls::powerlist
