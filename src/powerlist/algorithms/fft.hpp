// Fast Fourier Transform over PowerLists (Section II, equation 3).
//
//   fft([a])    = [a]
//   fft(p ⋈ q)  = (P + u × Q) | (P - u × Q)
// with P = fft(p), Q = fft(q), u = powers(p) = (w^0, ..., w^{n-1}) and w
// the (2n)-th principal root of unity. This is the Cooley-Tukey
// decimation-in-time algorithm written with zip deconstruction and tie
// recombination — the flagship example of needing both operators.
//
// Also here: powers(), a naive O(n^2) DFT used as the correctness
// reference, an iterative in-place radix-2 FFT (the conventional
// optimised formulation, via the inv permutation), and the inverse
// transform for round-trip tests.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <numbers>
#include <utility>
#include <vector>

#include "powerlist/function.hpp"
#include "powerlist/view.hpp"
#include "powerlist/algorithms/inv_rev.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"
#include "support/simd.hpp"

namespace pls::powerlist {

using Complex = std::complex<double>;

/// powers(p) for a PowerList of length n: (w^0, ..., w^{n-1}), w the
/// (2n)-th principal root of unity, sign -1 for the forward transform.
inline std::vector<Complex> powers(std::size_t n, double sign = -1.0) {
  PLS_CHECK(is_power_of_two(n), "powers() requires a power-of-two length");
  std::vector<Complex> u;
  u.reserve(n);
  const double theta = sign * std::numbers::pi / static_cast<double>(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double a = theta * static_cast<double>(j);
    u.emplace_back(std::cos(a), std::sin(a));
  }
  return u;
}

/// Naive O(n^2) discrete Fourier transform (reference).
inline std::vector<Complex> dft(PowerListView<const Complex> p,
                                double sign = -1.0) {
  const std::size_t n = p.length();
  std::vector<Complex> out(n);
  const double theta = sign * 2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double a = theta * static_cast<double>(k * j);
      acc += p[j] * Complex{std::cos(a), std::sin(a)};
    }
    out[k] = acc;
  }
  return out;
}

/// fft as a PowerFunction: zip deconstruction, butterfly recombination.
/// The basic case on a leaf sublist is a direct DFT of that sublist (the
/// "sequential computation" specialisation Section V describes for leaves
/// where parallel decomposition stopped).
class FftFunction final : public PowerFunction<Complex, std::vector<Complex>> {
 public:
  explicit FftFunction(double sign = -1.0) : sign_(sign) {}

  DecompositionOp decomposition() const override {
    return DecompositionOp::kZip;
  }

  std::vector<Complex> basic_case(PowerListView<const Complex> leaf,
                                  const NoContext&) const override {
    if (leaf.length() == 1) return {leaf[0]};
    return dft(leaf, sign_);
  }

  std::vector<Complex> combine(std::vector<Complex>&& left,
                               std::vector<Complex>&& right, const NoContext&,
                               std::size_t) const override {
    const std::size_t n = left.size();
    const std::vector<Complex> u = powers(n, sign_);
    std::vector<Complex> out(2 * n);
    // out[j] = P + u×Q, out[j+n] = P - u×Q (tie recombination), as one
    // vectorized pass over the real/imaginary planes.
    simd::butterfly_chunk(left.data(), right.data(), u.data(), out.data(),
                          out.data() + n, n);
    return out;
  }

  double leaf_cost_ops(std::size_t len) const override {
    return len == 1 ? 1.0 : static_cast<double>(len * len * 8);
  }
  double combine_cost_ops(std::size_t len) const override {
    return static_cast<double>(len) * 10.0;  // twiddle + butterfly per pair
  }

 private:
  double sign_;
};

/// Iterative in-place radix-2 FFT: inv (bit-reversal) permutation followed
/// by log n butterfly passes. The conventional optimised formulation used
/// as the performance baseline in the FFT bench. Each pass builds its
/// twiddle table once (the same incremental w, w*w_len, ... products the
/// classic inner loop computes) and reuses it across every block of the
/// pass, so the butterflies run as the vectorized chunk kernel instead of
/// a serial complex-multiply dependency chain.
inline void fft_in_place(std::vector<Complex>& a, double sign = -1.0) {
  PLS_CHECK(is_power_of_two(a.size()), "FFT length must be a power of two");
  inv_permute_in_place(a);
  const std::size_t n = a.size();
  std::vector<Complex> u;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double theta =
        sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const Complex w_len{std::cos(theta), std::sin(theta)};
    const std::size_t half = len / 2;
    u.resize(half);
    Complex w{1.0, 0.0};
    for (std::size_t j = 0; j < half; ++j) {
      u[j] = w;
      w *= w_len;
    }
    for (std::size_t i = 0; i < n; i += len) {
      // In-place butterfly: top aliases p and bot aliases q elementwise,
      // which butterfly_chunk permits.
      simd::butterfly_chunk(&a[i], &a[i + half], u.data(), &a[i],
                            &a[i + half], half);
    }
  }
}

/// Inverse FFT (unscaled forward with sign +1, then divide by n).
inline std::vector<Complex> inverse_fft(std::vector<Complex> spectrum) {
  fft_in_place(spectrum, +1.0);
  const double n = static_cast<double>(spectrum.size());
  for (Complex& c : spectrum) c /= n;
  return spectrum;
}

}  // namespace pls::powerlist
