// Extended pointwise operators on similar PowerLists (Section II).
//
// Scalar binary operators extend to PowerLists positionally: (p op q)[i] =
// p[i] op q[i] for similar (equal-length) p, q; scalars broadcast
// (x · p)[i] = x · p[i]. The FFT definition uses + , - and × in exactly
// this sense.
#pragma once

#include <vector>

#include "powerlist/view.hpp"
#include "support/assert.hpp"

namespace pls::powerlist {

/// Elementwise op over similar PowerLists, materialised into a vector.
/// Sized output + indexed stores (rather than push_back), so the loop is a
/// pure independent-iteration map the vectorizer handles.
template <typename T, typename U, typename Op>
auto pointwise(PowerListView<const T> a, PowerListView<const U> b, Op op)
    -> std::vector<decltype(op(a[0], b[0]))> {
  PLS_CHECK(a.similar(b), "pointwise operators require similar PowerLists");
  std::vector<decltype(op(a[0], b[0]))> out(a.length());
  for (std::size_t i = 0; i < a.length(); ++i) out[i] = op(a[i], b[i]);
  return out;
}

/// Elementwise op writing into a destination view (no allocation).
template <typename T, typename U, typename V, typename Op>
void pointwise_into(PowerListView<const T> a, PowerListView<const U> b,
                    PowerListView<V> dst, Op op) {
  PLS_CHECK(a.similar(b) && a.similar(dst),
            "pointwise operators require similar PowerLists");
  for (std::size_t i = 0; i < a.length(); ++i) dst[i] = op(a[i], b[i]);
}

/// Broadcast a scalar over a PowerList: out[i] = op(scalar, p[i]).
template <typename S, typename T, typename Op>
auto broadcast(const S& scalar, PowerListView<const T> p, Op op)
    -> std::vector<decltype(op(scalar, p[0]))> {
  std::vector<decltype(op(scalar, p[0]))> out(p.length());
  for (std::size_t i = 0; i < p.length(); ++i) out[i] = op(scalar, p[i]);
  return out;
}

/// p + q on similar PowerLists.
template <typename T>
std::vector<T> add(PowerListView<const T> a, PowerListView<const T> b) {
  return pointwise(a, b, [](const T& x, const T& y) { return x + y; });
}

/// p × q (elementwise) on similar PowerLists.
template <typename T>
std::vector<T> mul(PowerListView<const T> a, PowerListView<const T> b) {
  return pointwise(a, b, [](const T& x, const T& y) { return x * y; });
}

}  // namespace pls::powerlist
