// Walsh-Hadamard transform: the concrete instance of the paper's
// equation 5 family
//     f([a])   = [a]
//     f(p | q) = f(p ⊕ q) | f(p ⊗ q)
// with ⊕ = + and ⊗ = −. These are the functions whose *descending* phase
// transforms the data (the elements must be rewritten while splitting),
// which the Streams adaptation supports through a trySplit override
// (see DescendOpSpliterator in collector_functions.hpp).
#pragma once

#include <cstddef>
#include <vector>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace pls::powerlist {

/// O(n^2) reference: WHT[k] = sum_j (-1)^popcount(j & k) v[j]
/// (Sylvester/Hadamard ordering, which the equation-5 recursion produces).
template <typename T>
std::vector<T> wht_reference(const std::vector<T>& v) {
  PLS_CHECK(is_power_of_two(v.size()), "WHT length must be a power of two");
  std::vector<T> out(v.size());
  for (std::size_t k = 0; k < v.size(); ++k) {
    T acc{};
    for (std::size_t j = 0; j < v.size(); ++j) {
      if (popcount64(j & k) % 2 == 0) {
        acc += v[j];
      } else {
        acc -= v[j];
      }
    }
    out[k] = acc;
  }
  return out;
}

/// Apply the equation-5 recursion to the window [lo, lo+n) in place.
template <typename T>
void wht_in_place_range(std::vector<T>& v, std::size_t lo, std::size_t n) {
  if (n < 2) return;
  const std::size_t half = n / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const T a = v[lo + i];
    const T b = v[lo + half + i];
    v[lo + i] = a + b;       // ⊕ side
    v[lo + half + i] = a - b;  // ⊗ side
  }
  wht_in_place_range(v, lo, half);
  wht_in_place_range(v, lo + half, half);
}

/// Fast in-place WHT via the equation-5 recursion (O(n log n)).
template <typename T>
void wht_in_place(std::vector<T>& v) {
  PLS_CHECK(is_power_of_two(v.size()), "WHT length must be a power of two");
  wht_in_place_range(v, std::size_t{0}, v.size());
}

}  // namespace pls::powerlist
