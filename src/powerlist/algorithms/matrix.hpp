// Matrices as two-dimensional PowerLists: quadrant divide-and-conquer.
//
// The paper's related work ([3], Anand & Shyamasundar) uses PowerLists to
// "capture both parallelism and recursion succinctly" for partitioned
// matrices. This module gives the same flavour on a shared-memory
// substrate: square matrices of power-of-two order with no-copy quadrant
// views (the 2D analogue of tie deconstruction), and the classic D&C
// kernels — transpose, matrix-vector, and matrix-matrix multiplication —
// each with a fork-join parallel variant and a naive reference.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "forkjoin/pool.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace pls::powerlist {

/// Square power-of-two-order matrix, row-major owning storage.
class Matrix {
 public:
  Matrix() : order_(0) {}

  explicit Matrix(std::size_t order, double fill = 0.0)
      : order_(order), cells_(order * order, fill) {
    PLS_CHECK(is_power_of_two(order), "matrix order must be a power of two");
  }

  static Matrix identity(std::size_t order) {
    Matrix m(order);
    for (std::size_t i = 0; i < order; ++i) m.at(i, i) = 1.0;
    return m;
  }

  std::size_t order() const noexcept { return order_; }

  double& at(std::size_t row, std::size_t col) {
    PLS_ASSERT(row < order_ && col < order_);
    return cells_[row * order_ + col];
  }
  double at(std::size_t row, std::size_t col) const {
    PLS_ASSERT(row < order_ && col < order_);
    return cells_[row * order_ + col];
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.order_ == b.order_ && a.cells_ == b.cells_;
  }

  double max_abs_diff(const Matrix& other) const {
    PLS_CHECK(order_ == other.order_, "matrices must be similar");
    double worst = 0.0;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      worst = std::max(worst, std::abs(cells_[i] - other.cells_[i]));
    }
    return worst;
  }

 private:
  std::size_t order_;
  std::vector<double> cells_;
};

/// No-copy view of a square sub-block (the 2D analogue of PowerListView):
/// (storage, row0, col0, order, row_stride).
template <typename M>  // Matrix or const Matrix
class MatrixView {
 public:
  explicit MatrixView(M& matrix)
      : matrix_(&matrix), row0_(0), col0_(0), order_(matrix.order()) {}

  MatrixView(M& matrix, std::size_t row0, std::size_t col0,
             std::size_t order)
      : matrix_(&matrix), row0_(row0), col0_(col0), order_(order) {
    PLS_CHECK(row0 + order <= matrix.order() &&
                  col0 + order <= matrix.order(),
              "matrix view out of range");
  }

  std::size_t order() const noexcept { return order_; }

  decltype(auto) at(std::size_t r, std::size_t c) const {
    return matrix_->at(row0_ + r, col0_ + c);
  }

  /// Quadrant deconstruction: (r, c) in {0,1}^2 selects the block.
  MatrixView quadrant(int r, int c) const {
    PLS_CHECK(order_ >= 2, "cannot deconstruct a 1x1 matrix");
    const std::size_t half = order_ / 2;
    return MatrixView(*matrix_, row0_ + (r != 0 ? half : 0),
                      col0_ + (c != 0 ? half : 0), half);
  }

 private:
  M* matrix_;
  std::size_t row0_;
  std::size_t col0_;
  std::size_t order_;
};

// ---- reference kernels -----------------------------------------------

/// Naive O(n^3) multiplication (reference).
inline Matrix matmul_naive(const Matrix& a, const Matrix& b) {
  PLS_CHECK(a.order() == b.order(), "matrices must be similar");
  const std::size_t n = a.order();
  Matrix out(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = a.at(i, k);
      for (std::size_t j = 0; j < n; ++j) {
        out.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return out;
}

/// Naive matrix-vector product (reference).
inline std::vector<double> matvec_naive(const Matrix& a,
                                        const std::vector<double>& x) {
  PLS_CHECK(a.order() == x.size(), "vector length must match matrix order");
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t i = 0; i < a.order(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < a.order(); ++j) acc += a.at(i, j) * x[j];
    y[i] = acc;
  }
  return y;
}

// ---- quadrant D&C kernels ----------------------------------------------

namespace detail {

/// dst += a * b over views, splitting into quadrants until `leaf`.
/// The 8 sub-multiplications group into two rounds of 4: within a round
/// the destination quadrants are disjoint, so the 4 tasks fork safely;
/// the rounds are sequenced because both accumulate into dst.
template <typename MA, typename MB, typename MD>
void matmul_acc(MatrixView<MA> a, MatrixView<MB> b, MatrixView<MD> dst,
                std::size_t leaf, forkjoin::ForkJoinPool* pool) {
  const std::size_t n = a.order();
  if (n <= leaf) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < n; ++k) {
        const double aik = a.at(i, k);
        for (std::size_t j = 0; j < n; ++j) {
          dst.at(i, j) += aik * b.at(k, j);
        }
      }
    }
    return;
  }
  for (int round = 0; round < 2; ++round) {
    auto task = [&, round](int r, int c) {
      // dst[r][c] += a[r][round] * b[round][c]
      matmul_acc(a.quadrant(r, round), b.quadrant(round, c),
                 dst.quadrant(r, c), leaf, pool);
    };
    if (pool != nullptr) {
      pool->invoke_two(
          [&] {
            pool->invoke_two([&] { task(0, 0); }, [&] { task(0, 1); });
          },
          [&] {
            pool->invoke_two([&] { task(1, 0); }, [&] { task(1, 1); });
          });
    } else {
      task(0, 0);
      task(0, 1);
      task(1, 0);
      task(1, 1);
    }
  }
}

template <typename MS, typename MD>
void transpose_rec(MatrixView<MS> src, MatrixView<MD> dst,
                   std::size_t leaf) {
  const std::size_t n = src.order();
  if (n <= leaf) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        dst.at(j, i) = src.at(i, j);
      }
    }
    return;
  }
  // dst quadrant (c, r) receives src quadrant (r, c) transposed.
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      transpose_rec(src.quadrant(r, c), dst.quadrant(c, r), leaf);
    }
  }
}

}  // namespace detail

/// Quadrant D&C multiplication; sequential when pool is null.
inline Matrix matmul_dc(const Matrix& a, const Matrix& b,
                        std::size_t leaf = 32,
                        forkjoin::ForkJoinPool* pool = nullptr) {
  PLS_CHECK(a.order() == b.order(), "matrices must be similar");
  PLS_CHECK(leaf >= 1, "leaf must be >= 1");
  Matrix out(a.order());
  MatrixView<const Matrix> va(a), vb(b);
  MatrixView<Matrix> vo(out);
  if (pool != nullptr) {
    pool->run([&] { detail::matmul_acc(va, vb, vo, leaf, pool); });
  } else {
    detail::matmul_acc(va, vb, vo, leaf,
                       static_cast<forkjoin::ForkJoinPool*>(nullptr));
  }
  return out;
}

/// Cache-oblivious D&C transpose.
inline Matrix transpose_dc(const Matrix& a, std::size_t leaf = 32) {
  Matrix out(a.order());
  MatrixView<const Matrix> src(a);
  MatrixView<Matrix> dst(out);
  detail::transpose_rec(src, dst, leaf);
  return out;
}

/// Matrix-vector product by row-halving (tie over the row PowerList);
/// forks the two halves when a pool is given.
inline std::vector<double> matvec_dc(const Matrix& a,
                                     const std::vector<double>& x,
                                     std::size_t leaf_rows = 64,
                                     forkjoin::ForkJoinPool* pool = nullptr) {
  PLS_CHECK(a.order() == x.size(), "vector length must match matrix order");
  std::vector<double> y(x.size(), 0.0);
  struct Runner {
    const Matrix& a;
    const std::vector<double>& x;
    std::vector<double>& y;
    std::size_t leaf;
    forkjoin::ForkJoinPool* pool;
    void rows(std::size_t lo, std::size_t hi) {
      if (hi - lo <= leaf) {
        for (std::size_t i = lo; i < hi; ++i) {
          double acc = 0.0;
          for (std::size_t j = 0; j < a.order(); ++j) {
            acc += a.at(i, j) * x[j];
          }
          y[i] = acc;
        }
        return;
      }
      const std::size_t mid = lo + (hi - lo) / 2;
      if (pool != nullptr) {
        pool->invoke_two([&] { rows(lo, mid); }, [&] { rows(mid, hi); });
      } else {
        rows(lo, mid);
        rows(mid, hi);
      }
    }
  } runner{a, x, y, leaf_rows, pool};
  if (pool != nullptr) {
    pool->run([&] { runner.rows(0, a.order()); });
  } else {
    runner.rows(0, a.order());
  }
  return y;
}

}  // namespace pls::powerlist
