// Binary adder circuits over PowerLists.
//
// Kapur & Subramaniam (reference [4] of the paper) verified adder
// circuits specified as PowerList functions; this header reproduces the
// two classic designs over bit PowerLists (least-significant bit first):
//
//   ripple_carry_add — the O(n)-depth sequential-carry reference;
//   carry_lookahead_add — carries computed by a parallel *scan* over the
//     (generate, propagate) carry-status monoid; with Ladner-Fischer or
//     Sklansky scan this is exactly the O(log n)-depth lookahead circuit,
//     and it reuses this library's PowerList scan machinery.
//
// Bits are std::uint8_t 0/1; numbers may carry out (returned separately).
#pragma once

#include <cstdint>
#include <vector>

#include "powerlist/algorithms/scan.hpp"
#include "powerlist/view.hpp"
#include "support/assert.hpp"

namespace pls::powerlist {

/// Carry status of a bit position: kill (carry out is 0), generate
/// (carry out is 1), or propagate (carry out equals carry in).
enum class CarryStatus : std::uint8_t { kKill = 0, kGenerate = 1, kPropagate = 2 };

/// The carry-status monoid: `then(a, b)` is the status of a two-position
/// group where `a` feeds `b` (b closer to the MSB). Associative, identity
/// kPropagate.
constexpr CarryStatus carry_then(CarryStatus a, CarryStatus b) {
  return b == CarryStatus::kPropagate ? a : b;
}

struct AddResult {
  std::vector<std::uint8_t> sum;  ///< LSB-first, same width as inputs
  bool carry_out = false;
};

namespace detail {

inline void check_bits(const std::vector<std::uint8_t>& bits) {
  for (auto b : bits) {
    PLS_CHECK(b <= 1, "adder inputs must be 0/1 bit vectors");
  }
}

}  // namespace detail

/// Reference adder: sequential carry ripple.
inline AddResult ripple_carry_add(const std::vector<std::uint8_t>& a,
                                  const std::vector<std::uint8_t>& b) {
  PLS_CHECK(a.size() == b.size() && !a.empty(),
            "adder requires similar non-empty inputs");
  detail::check_bits(a);
  detail::check_bits(b);
  AddResult r;
  r.sum.resize(a.size());
  std::uint8_t carry = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::uint8_t s = static_cast<std::uint8_t>(a[i] + b[i] + carry);
    r.sum[i] = s & 1u;
    carry = s >> 1;
  }
  r.carry_out = carry != 0;
  return r;
}

/// Carry-lookahead adder: per-position (generate/propagate/kill) statuses,
/// a PowerList scan with the carry monoid, then one XOR layer.
/// Requires power-of-two width (it is a PowerList circuit).
inline AddResult carry_lookahead_add(const std::vector<std::uint8_t>& a,
                                     const std::vector<std::uint8_t>& b) {
  PLS_CHECK(a.size() == b.size() && !a.empty(),
            "adder requires similar non-empty inputs");
  detail::check_bits(a);
  detail::check_bits(b);
  const std::size_t n = a.size();

  // Position statuses (LSB first).
  std::vector<CarryStatus> status(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] && b[i]) {
      status[i] = CarryStatus::kGenerate;
    } else if (a[i] || b[i]) {
      status[i] = CarryStatus::kPropagate;
    } else {
      status[i] = CarryStatus::kKill;
    }
  }

  // Inclusive scan with the carry monoid: prefix[i] is the status of the
  // group [0..i]; with carry-in 0, the carry INTO position i+1 is 1 iff
  // prefix[i] == kGenerate (kPropagate resolves to the carry-in, 0).
  const auto prefix = scan_ladner_fischer(
      PowerListView<const CarryStatus>::over(status), carry_then);

  AddResult r;
  r.sum.resize(n);
  std::uint8_t carry_in = 0;
  for (std::size_t i = 0; i < n; ++i) {
    carry_in = i == 0 ? 0
                      : static_cast<std::uint8_t>(
                            prefix[i - 1] == CarryStatus::kGenerate ? 1 : 0);
    r.sum[i] = static_cast<std::uint8_t>((a[i] ^ b[i] ^ carry_in) & 1u);
  }
  r.carry_out = prefix[n - 1] == CarryStatus::kGenerate;
  return r;
}

/// Helpers for tests and examples: number <-> LSB-first bit PowerList.
inline std::vector<std::uint8_t> to_bits(std::uint64_t value, unsigned width) {
  std::vector<std::uint8_t> bits(width);
  for (unsigned i = 0; i < width; ++i) {
    bits[i] = static_cast<std::uint8_t>((value >> i) & 1u);
  }
  return bits;
}

inline std::uint64_t from_bits(const std::vector<std::uint8_t>& bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    v |= static_cast<std::uint64_t>(bits[i] & 1u) << i;
  }
  return v;
}

}  // namespace pls::powerlist
