// Gray code sequences as a PowerList construction (Section III lists Gray
// codes among the functions expressible in the theory).
//
// The binary-reflected Gray code sequence satisfies the PowerList
// recursion
//   G(0)   = [0]
//   G(n+1) = (0·G(n)) | (1·rev(G(n)))
// i.e. tie of the previous sequence with a 0 bit prefixed and its reversal
// with a 1 bit prefixed — a tie+rev construction. The closed form is
// g(i) = i xor (i >> 1).
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"
#include "support/bits.hpp"

namespace pls::powerlist {

/// The 2^bits binary-reflected Gray codes via the PowerList recursion.
inline std::vector<std::uint64_t> gray_sequence(unsigned bits) {
  PLS_CHECK(bits <= 62, "gray_sequence supports at most 62 bits");
  std::vector<std::uint64_t> g{0};
  for (unsigned b = 0; b < bits; ++b) {
    const std::uint64_t prefix = std::uint64_t{1} << b;
    const std::size_t n = g.size();
    g.reserve(2 * n);
    // 1·rev(G(b)): append the reversal with the new bit set.
    for (std::size_t i = n; i > 0; --i) {
      g.push_back(prefix | g[i - 1]);
    }
  }
  return g;
}

/// Closed-form n-th Gray code (reference; also exported from support/bits).
inline std::uint64_t gray_closed_form(std::uint64_t n) {
  return gray_code(n);
}

}  // namespace pls::powerlist
