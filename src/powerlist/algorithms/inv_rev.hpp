// inv and rev: the permutations that need both operators (Section II).
//
//   inv([a])   = [a]                rev([a])   = [a]
//   inv(p | q) = inv(p) ⋈ inv(q)    rev(p | q) = rev(q) | rev(p)
//
// inv moves the element at index b to the index whose binary
// representation is the reversal of b's — it is the permutation that makes
// the iterative FFT work, and the canonical example of a function
// inexpressible with one deconstruction operator alone (equation 2).
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "powerlist/function.hpp"
#include "powerlist/power_array.hpp"
#include "powerlist/view.hpp"
#include "support/bits.hpp"

namespace pls::powerlist {

/// inv as a PowerFunction: tie deconstruction, zip recombination.
template <typename T>
class InvFunction final : public PowerFunction<T, PowerArray<T>> {
 public:
  DecompositionOp decomposition() const override {
    return DecompositionOp::kTie;
  }

  PowerArray<T> basic_case(PowerListView<const T> leaf,
                           const NoContext&) const override {
    // inv on a leaf sublist: the bit-reversal permutation of the leaf.
    PowerArray<T> out;
    const unsigned bits = leaf.levels();
    for (std::size_t i = 0; i < leaf.length(); ++i) {
      out.add(leaf[reverse_bits(i, bits)]);
    }
    return out;
  }

  PowerArray<T> combine(PowerArray<T>&& left, PowerArray<T>&& right,
                        const NoContext&, std::size_t) const override {
    left.zip_all(right);
    return std::move(left);
  }

  double combine_cost_ops(std::size_t len) const override {
    return static_cast<double>(len);
  }
};

/// rev as a PowerFunction: tie both ways, halves swapped.
template <typename T>
class RevFunction final : public PowerFunction<T, PowerArray<T>> {
 public:
  DecompositionOp decomposition() const override {
    return DecompositionOp::kTie;
  }

  PowerArray<T> basic_case(PowerListView<const T> leaf,
                           const NoContext&) const override {
    PowerArray<T> out;
    for (std::size_t i = leaf.length(); i > 0; --i) out.add(leaf[i - 1]);
    return out;
  }

  PowerArray<T> combine(PowerArray<T>&& left, PowerArray<T>&& right,
                        const NoContext&, std::size_t) const override {
    right.tie_all(left);
    return std::move(right);
  }

  double combine_cost_ops(std::size_t len) const override {
    return static_cast<double>(len);
  }
};

/// Direct O(n) bit-reversal permutation (reference implementation and the
/// building block of the iterative FFT). Accepts const or mutable views.
template <typename TV, typename T = std::remove_const_t<TV>>
std::vector<T> inv_permutation(PowerListView<TV> p) {
  const unsigned bits = p.levels();
  std::vector<T> out(p.length());
  for (std::size_t i = 0; i < p.length(); ++i) {
    out[reverse_bits(i, bits)] = p[i];
  }
  return out;
}

/// In-place bit-reversal permutation of a power-of-two-sized vector.
template <typename T>
void inv_permute_in_place(std::vector<T>& v) {
  const unsigned bits = exact_log2(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    const std::size_t j = reverse_bits(i, bits);
    if (i < j) std::swap(v[i], v[j]);
  }
}

}  // namespace pls::powerlist
