// Permutation functions from Misra's PowerList paper: shift, rotate, and
// the perfect shuffle (the permutation that ties `tie` and `zip`
// together: shuffle(p | q) = p ⋈ q).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "powerlist/view.hpp"
#include "support/assert.hpp"

namespace pls::powerlist {

/// shift(p, fill): every element moves one position right; the first
/// position takes `fill` and the last element falls off. (The `shift`
/// used by the Ladner-Fischer scan definition.)
template <typename TV, typename T = std::remove_const_t<TV>>
std::vector<T> shift_right(PowerListView<TV> p, T fill) {
  std::vector<T> out;
  out.reserve(p.length());
  out.push_back(std::move(fill));
  for (std::size_t i = 0; i + 1 < p.length(); ++i) out.push_back(p[i]);
  return out;
}

/// Rotate right by one: rr(p)[i] = p[(i - 1) mod n]. PowerList form:
/// rr(p ⋈ q) = rr(q) ⋈ p.
template <typename TV, typename T = std::remove_const_t<TV>>
std::vector<T> rotate_right(PowerListView<TV> p) {
  std::vector<T> out;
  out.reserve(p.length());
  out.push_back(p[p.length() - 1]);
  for (std::size_t i = 0; i + 1 < p.length(); ++i) out.push_back(p[i]);
  return out;
}

/// Rotate left by one: rl(p)[i] = p[(i + 1) mod n]. PowerList form:
/// rl(p ⋈ q) = q ⋈ rl(p).
template <typename TV, typename T = std::remove_const_t<TV>>
std::vector<T> rotate_left(PowerListView<TV> p) {
  std::vector<T> out;
  out.reserve(p.length());
  for (std::size_t i = 1; i < p.length(); ++i) out.push_back(p[i]);
  out.push_back(p[0]);
  return out;
}

/// Perfect shuffle: shuffle(p | q) = p ⋈ q — the riffle of the two
/// halves. On indices: element at i goes to position 2i mod (n-1) (with
/// the last element fixed).
template <typename TV, typename T = std::remove_const_t<TV>>
std::vector<T> shuffle(PowerListView<TV> p) {
  PLS_CHECK(p.length() >= 2, "shuffle needs at least two elements");
  const auto [lo, hi] = p.tie();
  std::vector<T> out;
  out.reserve(p.length());
  for (std::size_t i = 0; i < lo.length(); ++i) {
    out.push_back(lo[i]);
    out.push_back(hi[i]);
  }
  return out;
}

/// Inverse perfect shuffle: unshuffle(p ⋈ q) = p | q.
template <typename TV, typename T = std::remove_const_t<TV>>
std::vector<T> unshuffle(PowerListView<TV> p) {
  PLS_CHECK(p.length() >= 2, "unshuffle needs at least two elements");
  const auto [evens, odds] = p.zip();
  std::vector<T> out;
  out.reserve(p.length());
  for (std::size_t i = 0; i < evens.length(); ++i) out.push_back(evens[i]);
  for (std::size_t i = 0; i < odds.length(); ++i) out.push_back(odds[i]);
  return out;
}

}  // namespace pls::powerlist
