// Sorting networks over PowerLists: Batcher odd-even mergesort and bitonic
// sort (two of the functions Section III lists as expressible in the
// PowerList theory).
//
// Batcher's odd-even mergesort:
//   bsort(p | q)  = bmerge(bsort(p), bsort(q))
//   bmerge(x, y)  = zip-recursive: merge the even subsequences and the odd
//                   subsequences, interleave, then compare-exchange
//                   adjacent interior pairs.
// Bitonic sort:
//   sort ascending/descending halves (tie), then clean the bitonic
//   sequence with log n compare-exchange passes.
//
// Both are comparison networks: data-independent compare-exchange
// patterns, which is what makes them PowerList-expressible.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "forkjoin/pool.hpp"
#include "powerlist/function.hpp"
#include "powerlist/view.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace pls::powerlist {

namespace detail {

template <typename T, typename Cmp>
void compare_exchange(T& lo, T& hi, const Cmp& cmp) {
  if (cmp(hi, lo)) std::swap(lo, hi);
}

}  // namespace detail

/// Batcher odd-even merge of two sorted power-of-two vectors of equal
/// length; returns the sorted concatenation.
template <typename T, typename Cmp = std::less<T>>
std::vector<T> odd_even_merge(const std::vector<T>& a,
                              const std::vector<T>& b, Cmp cmp = Cmp{}) {
  PLS_CHECK(a.size() == b.size() && is_power_of_two(a.size()),
            "odd_even_merge requires similar power-of-two inputs");
  const std::size_t n = a.size();
  if (n == 1) {
    std::vector<T> out{a[0], b[0]};
    detail::compare_exchange(out[0], out[1], cmp);
    return out;
  }
  std::vector<T> a_even, a_odd, b_even, b_odd;
  a_even.reserve(n / 2);
  a_odd.reserve(n / 2);
  b_even.reserve(n / 2);
  b_odd.reserve(n / 2);
  for (std::size_t i = 0; i < n; i += 2) {
    a_even.push_back(a[i]);
    a_odd.push_back(a[i + 1]);
    b_even.push_back(b[i]);
    b_odd.push_back(b[i + 1]);
  }
  const std::vector<T> evens = odd_even_merge(a_even, b_even, cmp);
  const std::vector<T> odds = odd_even_merge(a_odd, b_odd, cmp);
  std::vector<T> out(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    out[2 * i] = evens[i];
    out[2 * i + 1] = odds[i];
  }
  for (std::size_t i = 1; i + 1 < out.size(); i += 2) {
    detail::compare_exchange(out[i], out[i + 1], cmp);
  }
  return out;
}

/// Batcher odd-even mergesort as a PowerFunction: tie decomposition, the
/// merge network as the combining phase.
template <typename T, typename Cmp = std::less<T>>
class BatcherSortFunction final
    : public PowerFunction<T, std::vector<T>> {
 public:
  explicit BatcherSortFunction(Cmp cmp = Cmp{}) : cmp_(std::move(cmp)) {}

  DecompositionOp decomposition() const override {
    return DecompositionOp::kTie;
  }

  std::vector<T> basic_case(PowerListView<const T> leaf,
                            const NoContext&) const override {
    std::vector<T> out = leaf.to_vector();
    std::sort(out.begin(), out.end(), cmp_);
    return out;
  }

  std::vector<T> combine(std::vector<T>&& left, std::vector<T>&& right,
                         const NoContext&, std::size_t) const override {
    return odd_even_merge(left, right, cmp_);
  }

  double leaf_cost_ops(std::size_t len) const override {
    return static_cast<double>(len) * (1.0 + floor_log2(len));
  }
  double combine_cost_ops(std::size_t len) const override {
    // The merge network on len elements has O(len log len) comparators.
    return static_cast<double>(len) * (1.0 + floor_log2(len));
  }

 private:
  Cmp cmp_;
};

/// Clean a bitonic sequence in [lo, lo+n): after this, it is sorted.
template <typename T, typename Cmp>
void bitonic_clean(std::vector<T>& v, std::size_t lo, std::size_t n,
                   bool ascending, const Cmp& cmp) {
  if (n < 2) return;
  const std::size_t half = n / 2;
  for (std::size_t i = lo; i < lo + half; ++i) {
    const bool out_of_order = ascending ? cmp(v[i + half], v[i])
                                        : cmp(v[i], v[i + half]);
    if (out_of_order) std::swap(v[i], v[i + half]);
  }
  bitonic_clean(v, lo, half, ascending, cmp);
  bitonic_clean(v, lo + half, half, ascending, cmp);
}

namespace detail {

template <typename T, typename Cmp>
void bitonic_sort_rec(std::vector<T>& v, std::size_t lo, std::size_t n,
                      bool ascending, const Cmp& cmp,
                      forkjoin::ForkJoinPool* pool, std::size_t grain) {
  if (n < 2) return;
  const std::size_t half = n / 2;
  if (pool != nullptr && n > grain) {
    pool->invoke_two(
        [&] { bitonic_sort_rec(v, lo, half, true, cmp, pool, grain); },
        [&] {
          bitonic_sort_rec(v, lo + half, half, false, cmp, pool, grain);
        });
  } else {
    bitonic_sort_rec(v, lo, half, true, cmp, nullptr, grain);
    bitonic_sort_rec(v, lo + half, half, false, cmp, nullptr, grain);
  }
  bitonic_clean(v, lo, n, ascending, cmp);
}

}  // namespace detail

/// Bitonic sort (sequential). Size must be a power of two.
template <typename T, typename Cmp = std::less<T>>
void bitonic_sort(std::vector<T>& v, Cmp cmp = Cmp{}) {
  PLS_CHECK(is_power_of_two(v.size()),
            "bitonic_sort requires a power-of-two size");
  detail::bitonic_sort_rec(v, 0, v.size(), true, cmp, nullptr, 0);
}

/// Odd-even transposition sort: n rounds of alternating compare-exchange
/// phases (the simplest PowerList-expressible sorting network, the 1-D
/// systolic sort). O(n^2) comparators but O(n) depth with O(n)
/// processors; each phase's exchanges are independent, so a phase maps
/// to a parallel_for. Kept sequential here as the didactic reference.
template <typename T, typename Cmp = std::less<T>>
void odd_even_transposition_sort(std::vector<T>& v, Cmp cmp = Cmp{}) {
  const std::size_t n = v.size();
  for (std::size_t round = 0; round < n; ++round) {
    const std::size_t start = round % 2;  // even phase, odd phase, ...
    for (std::size_t i = start; i + 1 < n; i += 2) {
      detail::compare_exchange(v[i], v[i + 1], cmp);
    }
  }
}

/// Bitonic sort with the two half-sorts forked on a pool; chunks of at
/// most `grain` elements sort sequentially.
template <typename T, typename Cmp = std::less<T>>
void bitonic_sort_parallel(forkjoin::ForkJoinPool& pool, std::vector<T>& v,
                           std::size_t grain = 1024, Cmp cmp = Cmp{}) {
  PLS_CHECK(is_power_of_two(v.size()),
            "bitonic_sort requires a power-of-two size");
  pool.run([&] {
    detail::bitonic_sort_rec(v, 0, v.size(), true, cmp, &pool, grain);
  });
}

}  // namespace pls::powerlist
