// Polynomial evaluation over PowerLists — the paper's running example and
// the workload of its performance evaluation (Figures 3 and 4).
//
// With ascending coefficients (coeffs[i] multiplies x^i) the PowerList
// definition is equation 4:
//   vp([a], x)      = a
//   vp(p ⋈ q, x)    = vp(p, x²) + x · vp(q, x²)
// The descending phase squares the point — the canonical example of a
// function with "additional operations at the splitting phase".
//
// Two conventions appear in the paper: equation 4 uses ascending
// coefficients, while the PolynomialValue collector code uses Horner's
// descending order (first coefficient = highest power). This header
// provides sequential references for both; PolynomialFunction implements
// equation 4, and the collector port (collector_functions.hpp) follows the
// paper's code.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include "powerlist/executors.hpp"
#include "powerlist/function.hpp"
#include "powerlist/view.hpp"

namespace pls::powerlist {

/// Horner evaluation, ascending coefficients: sum coeffs[i] * x^i.
/// TV may be const-qualified (mutable and const views both accepted).
template <typename TV, typename T = std::remove_const_t<TV>>
T horner_ascending(PowerListView<TV> coeffs, T x) {
  T acc = coeffs[coeffs.length() - 1];
  for (std::size_t i = coeffs.length() - 1; i > 0; --i) {
    acc = acc * x + coeffs[i - 1];
  }
  return acc;
}

/// Horner evaluation, descending coefficients: coeffs[0] is the leading
/// coefficient (the convention of the paper's collector code).
template <typename TV, typename T = std::remove_const_t<TV>>
T horner_descending(PowerListView<TV> coeffs, T x) {
  T acc = coeffs[0];
  for (std::size_t i = 1; i < coeffs.length(); ++i) {
    acc = acc * x + coeffs[i];
  }
  return acc;
}

/// Equation 4 as a PowerFunction. Context = the evaluation point for the
/// current node; descend squares it; combine is l + x·r.
template <typename T>
class PolynomialFunction final : public PowerFunction<T, T, T> {
 public:
  DecompositionOp decomposition() const override {
    return DecompositionOp::kZip;
  }

  T basic_case(PowerListView<const T> leaf, const T& x) const override {
    // The leaf holds every 2^k-th coefficient; with the context already
    // squared k times, plain Horner on the leaf evaluates its subseries.
    return horner_ascending(leaf, x);
  }

  T combine(T&& left, T&& right, const T& x, std::size_t) const override {
    return left + x * right;
  }

  std::pair<T, T> descend(const T& x, std::size_t) const override {
    const T squared = x * x;
    return {squared, squared};
  }

  double leaf_cost_ops(std::size_t len) const override {
    return 2.0 * static_cast<double>(len);  // one mul + one add per coeff
  }
  double descend_cost_ops(std::size_t) const override { return 1.0; }
  double combine_cost_ops(std::size_t) const override { return 2.0; }
};

/// The tupling transformation of the paper's reference [22] ("Transforming
/// powerlist based divide&conquer programs for an improved execution
/// model"): equation 4's descending-phase squaring disappears when each
/// node returns the *pair* (value, x^length) and the function switches to
/// tie decomposition:
///     F([a])    = (a, x)
///     F(p | q)  = (v_p + w_p * v_q,  w_p * w_q)
///                 where (v_p, w_p) = F(p), (v_q, w_q) = F(q)
/// — no context flows down at all; the powers of x are built bottom-up.
template <typename T>
struct PolyPair {
  T value{};  ///< vp(part, x)
  T power{};  ///< x^length(part)
};

template <typename T>
class TupledPolynomialFunction final
    : public PowerFunction<T, PolyPair<T>, T> {
 public:
  DecompositionOp decomposition() const override {
    return DecompositionOp::kTie;
  }

  PolyPair<T> basic_case(PowerListView<const T> leaf,
                         const T& x) const override {
    // Sequential Horner over the leaf plus x^len, both O(len).
    PolyPair<T> out;
    out.value = horner_ascending(leaf, x);
    out.power = x;
    for (std::size_t i = 1; i < leaf.length(); ++i) out.power *= x;
    return out;
  }

  PolyPair<T> combine(PolyPair<T>&& left, PolyPair<T>&& right, const T&,
                      std::size_t) const override {
    return PolyPair<T>{left.value + left.power * right.value,
                       left.power * right.power};
  }

  /// No descending work: contexts just copy (the default), which is the
  /// point of the transformation.

  double leaf_cost_ops(std::size_t len) const override {
    return 3.0 * static_cast<double>(len);  // Horner + power build-up
  }
  double combine_cost_ops(std::size_t) const override { return 3.0; }
};

/// Convenience: evaluate via the tupled function (ascending coefficients).
template <typename TV, typename T = std::remove_const_t<TV>>
T polynomial_value_tupled(PowerListView<TV> coeffs, T x,
                          std::size_t leaf_size = 1) {
  TupledPolynomialFunction<T> f;
  return execute_sequential(f, PowerListView<const T>(coeffs), x, leaf_size)
      .value;
}

}  // namespace pls::powerlist
