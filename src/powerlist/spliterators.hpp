// TieSpliterator and ZipSpliterator: the spliterator specialisations of
// Section IV-A (Figure 1 of the paper).
//
// Both derive from SpliteratorPower2, which models a strided window over
// shared storage as (start, increment, count) and contributes the POWER2
// characteristic whenever the remaining element count is a power of two —
// the admission test for applying PowerList functions to a stream.
//
//   TieSpliterator::try_split  — carves off the first half, same stride
//                                (the default "segment" partitioning).
//   ZipSpliterator::try_split  — carves off the even-position elements
//                                (stride doubles; this keeps the odds),
//                                exactly the paper's PZipSpliterator logic.
//
// Subclasses may override on_split() to perform the paper's "additional
// operations at the splitting phase", and for_each_remaining() to
// specialise the basic-case computation on the sublists where splitting
// stopped (Section V).
#pragma once

#include <memory>
#include <vector>

#include "streams/spliterator.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace pls::powerlist {

/// Base for PowerList spliterators: a strided view (start, incr, count)
/// over shared storage, plus the POWER2 characteristic.
///
/// The (start, incr, count) triple doubles as the destination window of
/// the destination-passing collect (streams::WindowedSource): the root's
/// encounter order is storage order, and both split rules transform the
/// triple exactly the way the result positions partition — tie keeps the
/// stride and halves the count, zip doubles the stride — so a leaf's
/// source window *is* its output window.
template <typename T>
class SpliteratorPower2 : public streams::Spliterator<T>,
                          public streams::WindowedSource {
 public:
  using Action = typename streams::Spliterator<T>::Action;

  SpliteratorPower2(std::shared_ptr<const std::vector<T>> data,
                    std::size_t start, std::size_t incr, std::size_t count)
      : data_(std::move(data)), start_(start), incr_(incr), count_(count) {
    PLS_CHECK(data_ != nullptr, "SpliteratorPower2 requires storage");
    PLS_CHECK(incr >= 1, "increment must be >= 1");
    PLS_CHECK(count == 0 || start + (count - 1) * incr < data_->size(),
              "strided window exceeds storage");
  }

  bool try_advance(Action action) override {
    if (count_ == 0) return false;
    action((*data_)[start_]);
    start_ += incr_;
    --count_;
    return true;
  }

  void for_each_remaining(Action action) override {
    const std::vector<T>& v = *data_;
    std::size_t idx = start_;
    for (std::size_t k = 0; k < count_; ++k, idx += incr_) action(v[idx]);
    start_ = idx;
    count_ = 0;
  }

  std::uint64_t estimate_size() const override { return count_; }

  streams::Characteristics characteristics() const override {
    streams::Characteristics c = streams::kOrdered | streams::kSized |
                                 streams::kSubsized | streams::kImmutable;
    if (is_power_of_two(count_)) c |= streams::kPower2;
    return c;
  }

  std::optional<streams::OutputWindow> try_output_window() const override {
    return streams::OutputWindow{start_, incr_, count_};
  }

  /// Unit-stride windows are contiguous storage: hand the span straight to
  /// the fused chunk transport (and its SIMD collector kernels) with no
  /// per-element indirection. Strided windows (zip split products) keep
  /// the element-at-a-time protocol.
  std::pair<const T*, std::size_t> try_contiguous_chunk(
      std::size_t max_n) override {
    if (incr_ != 1 || count_ == 0) return {nullptr, 0};
    const std::size_t n = count_ < max_n ? count_ : max_n;
    const T* p = data_->data() + start_;
    start_ += n;
    count_ -= n;
    return {p, n};
  }

  std::size_t start() const noexcept { return start_; }
  std::size_t increment() const noexcept { return incr_; }
  std::size_t count() const noexcept { return count_; }
  const std::shared_ptr<const std::vector<T>>& storage() const noexcept {
    return data_;
  }

 protected:
  std::shared_ptr<const std::vector<T>> data_;
  std::size_t start_;
  std::size_t incr_;
  std::size_t count_;
};

/// Linear ("segment") splitting — the PowerList tie operator.
template <typename T>
class TieSpliterator : public SpliteratorPower2<T> {
 public:
  using SpliteratorPower2<T>::SpliteratorPower2;

  explicit TieSpliterator(std::shared_ptr<const std::vector<T>> data)
      : SpliteratorPower2<T>(data, 0, 1, data ? data->size() : 0) {}

  std::unique_ptr<streams::Spliterator<T>> try_split() override {
    if (this->count_ < 2) return nullptr;
    const std::size_t half = this->count_ / 2;
    this->on_split();
    auto prefix = this->make_like(this->data_, this->start_, this->incr_,
                                  half);
    this->start_ += this->incr_ * half;
    this->count_ -= half;
    return prefix;
  }

 protected:
  /// Splitting-phase hook (no-op by default).
  virtual void on_split() {}

  /// Factory for the prefix spliterator; override so split products keep
  /// the derived type.
  virtual std::unique_ptr<streams::Spliterator<T>> make_like(
      std::shared_ptr<const std::vector<T>> data, std::size_t start,
      std::size_t incr, std::size_t count) {
    return std::make_unique<TieSpliterator<T>>(std::move(data), start, incr,
                                               count);
  }
};

/// Interleaved splitting — the PowerList zip operator. The prefix takes
/// the even-position elements (stride doubled); this keeps the odds.
template <typename T>
class ZipSpliterator : public SpliteratorPower2<T> {
 public:
  using SpliteratorPower2<T>::SpliteratorPower2;

  explicit ZipSpliterator(std::shared_ptr<const std::vector<T>> data)
      : SpliteratorPower2<T>(data, 0, 1, data ? data->size() : 0) {}

  std::unique_ptr<streams::Spliterator<T>> try_split() override {
    // Zip only deconstructs even-length lists (PowerLists always are).
    if (this->count_ < 2 || this->count_ % 2 != 0) return nullptr;
    const std::size_t half = this->count_ / 2;
    this->on_split();
    auto prefix = this->make_like(this->data_, this->start_,
                                  this->incr_ * 2, half);
    this->start_ += this->incr_;
    this->incr_ *= 2;
    this->count_ = half;
    return prefix;
  }

 protected:
  virtual void on_split() {}

  virtual std::unique_ptr<streams::Spliterator<T>> make_like(
      std::shared_ptr<const std::vector<T>> data, std::size_t start,
      std::size_t incr, std::size_t count) {
    return std::make_unique<ZipSpliterator<T>>(std::move(data), start, incr,
                                               count);
  }
};

}  // namespace pls::powerlist
