// PowerStream<T>: the convenience facade a downstream user adopts.
//
// Wraps a PowerList (power-of-two vector) and exposes the library's
// PowerList functions with one execution configuration: sequential,
// fork-join on a chosen pool, or simulated multicore — the "execution is
// managed separately from definition" principle surfaced as a fluent API.
//
//   auto ps = PowerStream<double>::of(values).via(pool).with_leaf(4096);
//   double s   = ps.reduce(std::plus<>{});
//   auto spect = PowerStream<Complex>::of(signal).fft();
#pragma once

#include <complex>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "forkjoin/pool.hpp"
#include "powerlist/algorithms/fft.hpp"
#include "powerlist/algorithms/inv_rev.hpp"
#include "powerlist/algorithms/map_reduce.hpp"
#include "powerlist/algorithms/polynomial.hpp"
#include "powerlist/algorithms/scan.hpp"
#include "powerlist/algorithms/sort.hpp"
#include "powerlist/executors.hpp"
#include "support/assert.hpp"

namespace pls::powerlist {

enum class ExecutionMode { kSequential, kForkJoin };

template <typename T>
class PowerStream {
 public:
  /// Adopt a power-of-two-length vector.
  static PowerStream of(std::vector<T> values) {
    PLS_CHECK(is_power_of_two(values.size()),
              "PowerStream requires a power-of-two length");
    return PowerStream(std::move(values));
  }

  // ---- execution configuration (fluent) -------------------------------

  PowerStream&& via(forkjoin::ForkJoinPool& pool) && {
    pool_ = &pool;
    mode_ = ExecutionMode::kForkJoin;
    return std::move(*this);
  }

  PowerStream&& sequential() && {
    mode_ = ExecutionMode::kSequential;
    return std::move(*this);
  }

  PowerStream&& with_leaf(std::size_t leaf_size) && {
    PLS_CHECK(leaf_size >= 1, "leaf size must be >= 1");
    leaf_ = leaf_size;
    return std::move(*this);
  }

  // ---- PowerList functions ---------------------------------------------

  /// map with the chosen decomposition operator; returns a new
  /// PowerStream with the same execution configuration.
  template <typename Fn>
  auto map(Fn fn, DecompositionOp op = DecompositionOp::kTie) && {
    using U = std::remove_cvref_t<std::invoke_result_t<Fn&, const T&>>;
    MapFunction<T, U, Fn> f(std::move(fn), op);
    PowerArray<U> out = run(f, NoContext{});
    PowerStream<U> next(std::move(out).take());
    next.pool_ = pool_;
    next.mode_ = mode_;
    next.leaf_ = leaf_;
    return next;
  }

  /// reduce with an associative operator (commutative if zip is chosen).
  template <typename Op>
  T reduce(Op op, DecompositionOp decomp = DecompositionOp::kTie) const {
    ReduceFunction<T, Op> f(std::move(op), decomp);
    return run(f, NoContext{});
  }

  /// Inclusive prefix scan (Sklansky construction).
  template <typename Op>
  std::vector<T> scan(Op op) const {
    SklanskyScanFunction<T, Op> f(std::move(op));
    return run(f, NoContext{}).values();
  }

  /// Bit-reversal permutation (inv).
  std::vector<T> inv() const {
    InvFunction<T> f;
    return run(f, NoContext{}).values();
  }

  /// Reversal (rev).
  std::vector<T> rev() const {
    RevFunction<T> f;
    return run(f, NoContext{}).values();
  }

  /// Batcher odd-even mergesort.
  template <typename Cmp = std::less<T>>
  std::vector<T> sorted(Cmp cmp = Cmp{}) const {
    BatcherSortFunction<T, Cmp> f(std::move(cmp));
    return run(f, NoContext{});
  }

  /// Polynomial value at x (this stream's values as ascending
  /// coefficients; equation 4).
  T polynomial_value(T x) const {
    PolynomialFunction<T> f;
    return run(f, x);
  }

  /// FFT (only for T = std::complex<double>).
  std::vector<Complex> fft() const {
    static_assert(std::is_same_v<T, Complex>,
                  "fft requires PowerStream<std::complex<double>>");
    FftFunction f;
    return run(f, NoContext{});
  }

  // ---- access -----------------------------------------------------------

  const std::vector<T>& values() const noexcept { return values_; }
  std::vector<T> take() && { return std::move(values_); }
  std::size_t size() const noexcept { return values_.size(); }
  PowerListView<const T> view() const {
    return PowerListView<const T>::over(values_);
  }

 private:
  explicit PowerStream(std::vector<T> values) : values_(std::move(values)) {}

  template <typename U>
  friend class PowerStream;

  template <typename R, typename Ctx>
  R run(const PowerFunction<T, R, Ctx>& f, Ctx ctx) const {
    const std::size_t leaf =
        leaf_ != 0 ? leaf_
                   : std::max<std::size_t>(
                         1, values_.size() /
                                (4 * (pool_ != nullptr
                                          ? pool_->parallelism()
                                          : forkjoin::ForkJoinPool::
                                                default_parallelism())));
    if (mode_ == ExecutionMode::kForkJoin) {
      auto& pool =
          pool_ != nullptr ? *pool_ : forkjoin::ForkJoinPool::common();
      return execute_forkjoin(pool, f, view(), ctx, leaf);
    }
    return execute_sequential(f, view(), ctx, leaf);
  }

  std::vector<T> values_;
  forkjoin::ForkJoinPool* pool_ = nullptr;
  ExecutionMode mode_ = ExecutionMode::kSequential;
  std::size_t leaf_ = 0;  ///< 0 = auto (n / 4P)
};

}  // namespace pls::powerlist
