// Executors for PowerFunctions: sequential, fork-join, and simulated.
//
// JPLF's key design point (Section III) is that execution is managed
// separately from function definition; these executors all consume the
// same PowerFunction interface:
//   execute_sequential — plain depth-first recursion;
//   execute_forkjoin   — both halves through ForkJoinPool::invoke_two;
//   execute_simulated  — depth-first recursion that additionally records
//                        the fork-join task tree with the function's
//                        operation counts, then schedules it on P virtual
//                        processors (the stand-in for the paper's 8-core
//                        testbed; see DESIGN.md, Substitutions).
// A fourth executor runs over the message-passing simulation
// (src/mpisim/power_executor.hpp).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>

#include "forkjoin/pool.hpp"
#include "observe/counters.hpp"
#include "observe/critical_path.hpp"
#include "observe/histogram.hpp"
#include "observe/trace.hpp"
#include "powerlist/function.hpp"
#include "powerlist/view.hpp"
#include "simmachine/scheduler.hpp"
#include "simmachine/trace.hpp"
#include "streams/plan.hpp"
#include "support/assert.hpp"
#include "support/bits.hpp"

namespace pls::powerlist {

namespace detail {

template <typename T, typename R, typename Ctx>
R run_sequential(const PowerFunction<T, R, Ctx>& f,
                 PowerListView<const T> input, const Ctx& ctx,
                 std::size_t leaf_size) {
  if (input.length() <= leaf_size) return f.basic_case(input, ctx);
  const auto [left_view, right_view] = input.split(f.decomposition());
  auto [left_ctx, right_ctx] = f.descend(ctx, input.length());
  R left = run_sequential(f, left_view, left_ctx, leaf_size);
  R right = run_sequential(f, right_view, right_ctx, leaf_size);
  return f.combine(std::move(left), std::move(right), ctx, input.length());
}

template <typename T, typename R, typename Ctx>
R run_forkjoin(forkjoin::ForkJoinPool& pool, const PowerFunction<T, R, Ctx>& f,
               PowerListView<const T> input, const Ctx& ctx,
               std::size_t leaf_size, unsigned depth = 0,
               observe::CpNode* cp = nullptr) {
  if (input.length() <= leaf_size) {
    observe::Span span(observe::EventKind::kAccumulate, input.length());
    observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
    observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
    observe::cp_add_elements(cp, input.length());
    observe::local_counters().on_leaf(input.length());
    return f.basic_case(input, ctx);
  }
  const std::uint64_t split_start = cp != nullptr ? observe::now_ticks() : 0;
  const auto [left_view, right_view] = input.split(f.decomposition());
  auto [left_ctx, right_ctx] = f.descend(ctx, input.length());
  if (cp != nullptr) {
    cp->add_time(observe::CpPhase::kSplit, observe::now_ticks() - split_start);
  }
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  std::optional<R> left;
  std::optional<R> right;
  pool.invoke_two(
      [&, cl = cl] {
        left.emplace(run_forkjoin(pool, f, left_view, left_ctx, leaf_size,
                                  depth + 1, cl));
      },
      [&, cr = cr] {
        right.emplace(run_forkjoin(pool, f, right_view, right_ctx, leaf_size,
                                   depth + 1, cr));
      });
  observe::Span span(observe::EventKind::kCombine, depth);
  observe::CpScope phase(cp, observe::CpPhase::kCombine);
  observe::LatencyTimer combine_timer(observe::Metric::kCombineRun);
  observe::local_counters().on_combine();
  return f.combine(std::move(*left), std::move(*right), ctx, input.length());
}

template <typename T, typename R, typename Ctx>
R run_traced(const PowerFunction<T, R, Ctx>& f, PowerListView<const T> input,
             const Ctx& ctx, std::size_t leaf_size,
             simmachine::TaskTrace& trace, simmachine::TaskTrace::NodeId& id) {
  if (input.length() <= leaf_size) {
    id = trace.add_leaf(f.leaf_cost_ops(input.length()));
    return f.basic_case(input, ctx);
  }
  const auto [left_view, right_view] = input.split(f.decomposition());
  auto [left_ctx, right_ctx] = f.descend(ctx, input.length());
  simmachine::TaskTrace::NodeId left_id = 0;
  simmachine::TaskTrace::NodeId right_id = 0;
  R left = run_traced(f, left_view, left_ctx, leaf_size, trace, left_id);
  R right = run_traced(f, right_view, right_ctx, leaf_size, trace, right_id);
  id = trace.add_fork(f.descend_cost_ops(input.length()),
                      f.combine_cost_ops(input.length()), left_id, right_id);
  return f.combine(std::move(left), std::move(right), ctx, input.length());
}

inline std::size_t checked_leaf_size(std::size_t leaf_size) {
  PLS_CHECK(leaf_size >= 1, "leaf size must be >= 1");
  return leaf_size;
}

template <typename T, typename U, typename Ctx>
void run_sequential_into(const InplacePowerFunction<T, U, Ctx>& f,
                         PowerListView<const T> input, PowerListView<U> out,
                         const Ctx& ctx, std::size_t leaf_size) {
  if (input.length() <= leaf_size) {
    f.basic_case_into(input, out, ctx);
    return;
  }
  const auto [left_in, right_in] = input.split(f.decomposition());
  const auto [left_out, right_out] = out.split(f.decomposition());
  auto [left_ctx, right_ctx] = f.descend(ctx, input.length());
  run_sequential_into(f, left_in, left_out, left_ctx, leaf_size);
  run_sequential_into(f, right_in, right_out, right_ctx, leaf_size);
}

template <typename T, typename U, typename Ctx>
void run_forkjoin_into(forkjoin::ForkJoinPool& pool,
                       const InplacePowerFunction<T, U, Ctx>& f,
                       PowerListView<const T> input, PowerListView<U> out,
                       const Ctx& ctx, std::size_t leaf_size,
                       unsigned depth = 0, observe::CpNode* cp = nullptr) {
  if (input.length() <= leaf_size) {
    observe::Span span(observe::EventKind::kAccumulate, input.length());
    observe::CpScope phase(cp, observe::CpPhase::kAccumulate);
    observe::LatencyTimer leaf_timer(observe::Metric::kLeafRun);
    observe::cp_add_elements(cp, input.length());
    observe::local_counters().on_leaf(input.length());
    f.basic_case_into(input, out, ctx);
    return;
  }
  const std::uint64_t split_start = cp != nullptr ? observe::now_ticks() : 0;
  const auto [left_in, right_in] = input.split(f.decomposition());
  const auto [left_out, right_out] = out.split(f.decomposition());
  auto [left_ctx, right_ctx] = f.descend(ctx, input.length());
  if (cp != nullptr) {
    cp->add_time(observe::CpPhase::kSplit, observe::now_ticks() - split_start);
  }
  observe::local_counters().on_split(depth);
  const auto [cl, cr] = observe::cp_fork(cp);
  pool.invoke_two(
      [&, cl = cl] {
        run_forkjoin_into(pool, f, left_in, left_out, left_ctx, leaf_size,
                          depth + 1, cl);
      },
      [&, cr = cr] {
        run_forkjoin_into(pool, f, right_in, right_out, right_ctx, leaf_size,
                          depth + 1, cr);
      });
  // No combine phase: both halves wrote disjoint windows of `out`.
}

}  // namespace detail

/// Depth-first sequential execution. The view parameter is deduced from
/// either a mutable or a const view (TV may be const-qualified).
template <typename TV, typename R, typename Ctx>
R execute_sequential(
    const PowerFunction<std::remove_const_t<TV>, R, Ctx>& f,
    PowerListView<TV> input, Ctx ctx = Ctx{}, std::size_t leaf_size = 1) {
  detail::checked_leaf_size(leaf_size);
  return detail::run_sequential(
      f, PowerListView<const std::remove_const_t<TV>>(input), ctx,
      leaf_size);
}

/// Parallel execution on a fork-join pool. The function's hooks run
/// concurrently; they are const and must be thread-safe.
template <typename TV, typename R, typename Ctx>
R execute_forkjoin(forkjoin::ForkJoinPool& pool,
                   const PowerFunction<std::remove_const_t<TV>, R, Ctx>& f,
                   PowerListView<TV> input, Ctx ctx = Ctx{},
                   std::size_t leaf_size = 1) {
  detail::checked_leaf_size(leaf_size);
  PowerListView<const std::remove_const_t<TV>> view(input);
  observe::CpNode* cp = observe::cp_new_root();
  return pool.run([&] {
    return detail::run_forkjoin(pool, f, view, ctx, leaf_size, 0, cp);
  });
}

/// Depth-first sequential destination-passing execution: split input and
/// destination together, let every leaf write its final window. `out`
/// must be similar to `input` and not alias it.
template <typename TV, typename U, typename Ctx>
void execute_sequential_into(
    const InplacePowerFunction<std::remove_const_t<TV>, U, Ctx>& f,
    PowerListView<TV> input, PowerListView<U> out, Ctx ctx = Ctx{},
    std::size_t leaf_size = 1) {
  detail::checked_leaf_size(leaf_size);
  PLS_CHECK(input.similar(out),
            "destination must be similar to the input PowerList");
  detail::run_sequential_into(
      f, PowerListView<const std::remove_const_t<TV>>(input), out, ctx,
      leaf_size);
}

/// Parallel destination-passing execution on a fork-join pool: the
/// executor-side analogue of the sized-sink collect — leaves write
/// concurrently into disjoint windows of `out`, and there is no combine
/// phase at all. `out` must be similar to `input` and not alias it.
template <typename TV, typename U, typename Ctx>
void execute_forkjoin_into(
    forkjoin::ForkJoinPool& pool,
    const InplacePowerFunction<std::remove_const_t<TV>, U, Ctx>& f,
    PowerListView<TV> input, PowerListView<U> out, Ctx ctx = Ctx{},
    std::size_t leaf_size = 1) {
  detail::checked_leaf_size(leaf_size);
  PLS_CHECK(input.similar(out),
            "destination must be similar to the input PowerList");
  PowerListView<const std::remove_const_t<TV>> view(input);
  observe::CpNode* cp = observe::cp_new_root();
  pool.run([&] {
    detail::run_forkjoin_into(pool, f, view, out, ctx, leaf_size, 0, cp);
  });
}

/// Structural statistics of one execution: how the skeleton actually
/// decomposed the input.
struct ExecutionStats {
  std::size_t basic_cases = 0;   ///< leaf-phase invocations
  std::size_t combines = 0;      ///< ascending-phase invocations
  std::size_t descends = 0;      ///< splitting-phase invocations
  unsigned max_depth = 0;        ///< deepest recursion level reached
  std::size_t min_leaf_length = 0;
  std::size_t max_leaf_length = 0;
};

/// Unified result of any reporting executor — the single type the
/// instrumented, simulated, and fork-join-reported paths all return
/// (previously three ad-hoc structs: InstrumentedExecution,
/// SimulatedExecution, and bare ExecutionStats). Fields not produced by a
/// given path stay default-initialised:
///   execute_instrumented       fills result + stats;
///   execute_simulated          fills result + stats + sim (simulated=true);
///   execute_forkjoin_reported  fills result + stats + counters;
///   execute_forkjoin_profiled  additionally fills profile + wall_ns +
///                              histograms (critical-path run).
template <typename R>
struct ExecutionReport {
  R result;
  ExecutionStats stats{};
  simmachine::SimResult sim{};        ///< meaningful when `simulated`
  bool simulated = false;
  observe::CounterTotals counters{};  ///< pool-worker delta for the run
  observe::CriticalPathStats profile{};  ///< measured T1/T∞ (profiled runs)
  observe::HistogramSetSnapshot histograms{};  ///< latency histograms
  double wall_ns = 0.0;  ///< wall-clock time of the profiled run
  streams::ExecutionPlan plan{};  ///< how the run was routed (reported runs)

  /// Human-readable profile: work/span/parallelism header plus the
  /// per-phase (split / accumulate / combine / steal-idle) attribution
  /// table. Empty string when the run was not profiled.
  std::string profile_summary(unsigned workers = 0) const {
    if (profile.empty()) return {};
    std::ostringstream os;
    os << "work T1 = " << profile.work_ns / 1e6 << " ms, span Tinf = "
       << profile.span_ns / 1e6 << " ms, parallelism T1/Tinf = "
       << profile.parallelism();
    if (workers > 0) {
      os << ", Brent bound T" << workers << " <= "
         << profile.brent_bound_ns(workers) / 1e6 << " ms";
    }
    os << '\n' << profile.phase_table(wall_ns, workers);
    return os.str();
  }
};

namespace detail {

/// Closed-form decomposition shape of a power-of-two recursion: both
/// decomposition operators halve, so the tree is uniform and fully
/// determined by (length, leaf_size) — no need to instrument the parallel
/// recursion to know how it unfolded.
inline ExecutionStats uniform_shape(std::size_t length,
                                    std::size_t leaf_size) {
  ExecutionStats s;
  unsigned depth = 0;
  std::size_t len = length;
  while (len > leaf_size && len % 2 == 0) {
    len /= 2;
    ++depth;
  }
  const std::size_t leaves = std::size_t{1} << depth;
  s.basic_cases = leaves;
  s.descends = leaves - 1;
  s.combines = leaves - 1;
  s.max_depth = depth;
  s.min_leaf_length = len;
  s.max_leaf_length = len;
  return s;
}

template <typename T, typename R, typename Ctx>
R run_instrumented(const PowerFunction<T, R, Ctx>& f,
                   PowerListView<const T> input, const Ctx& ctx,
                   std::size_t leaf_size, unsigned depth,
                   ExecutionStats& stats) {
  stats.max_depth = std::max(stats.max_depth, depth);
  if (input.length() <= leaf_size) {
    ++stats.basic_cases;
    if (stats.min_leaf_length == 0 ||
        input.length() < stats.min_leaf_length) {
      stats.min_leaf_length = input.length();
    }
    stats.max_leaf_length = std::max(stats.max_leaf_length, input.length());
    return f.basic_case(input, ctx);
  }
  ++stats.descends;
  const auto [left_view, right_view] = input.split(f.decomposition());
  auto [left_ctx, right_ctx] = f.descend(ctx, input.length());
  R left = run_instrumented(f, left_view, left_ctx, leaf_size, depth + 1,
                            stats);
  R right = run_instrumented(f, right_view, right_ctx, leaf_size, depth + 1,
                             stats);
  ++stats.combines;
  return f.combine(std::move(left), std::move(right), ctx, input.length());
}

/// Plan describing a PowerList fork-join run in the planner's vocabulary
/// (origin kSynthesized): the divide-and-conquer drive is fixed by the
/// executor, so fusion/DPS verdicts read kNotAStreamPipeline and the grain
/// is the caller's leaf_size. Recorded via streams::record_plan so
/// pls::session::explain() covers PowerList runs too.
inline streams::ExecutionPlan synthesized_plan(std::size_t length,
                                               std::size_t leaf_size,
                                               const forkjoin::ForkJoinPool&
                                                   pool) {
  streams::ExecutionPlan p;
  p.origin = streams::PlanOrigin::kSynthesized;
  p.terminal = streams::TerminalKind::kPowerFunction;
  p.parallel = true;
  p.parallelism = pool.parallelism();
  p.source_size = length;
  p.sized = true;
  p.subsized = true;
  p.windowed = false;
  p.power_of_two = is_power_of_two(static_cast<std::uint64_t>(length));
  p.stages = 0;
  p.one_to_one = true;
  p.cancels = false;
  p.fused = false;
  p.fusion_reason = streams::PlanReason::kNotAStreamPipeline;
  p.dps = false;
  p.dps_reason = streams::PlanReason::kNotAStreamPipeline;
  p.drive = streams::DriveMode::kForkJoinTree;
  p.grain = leaf_size;
  p.grain_source = streams::GrainSource::kExplicit;
  p.kernel = streams::KernelMode::kScalarLoop;
  p.cache_key = streams::plan_cache_key(
      streams::TerminalKind::kPowerFunction, length, p.parallelism, 0, true,
      false);
  return p;
}

}  // namespace detail

/// Sequential execution that additionally reports how the recursion
/// unfolded — the observable counterpart of the paper's remark that "we
/// don't have control over the level at which parallel decomposition
/// stops" (here we do, and the stats prove where it stopped).
template <typename TV, typename R, typename Ctx>
ExecutionReport<R> execute_instrumented(
    const PowerFunction<std::remove_const_t<TV>, R, Ctx>& f,
    PowerListView<TV> input, Ctx ctx = Ctx{}, std::size_t leaf_size = 1) {
  detail::checked_leaf_size(leaf_size);
  ExecutionStats stats;
  R result = detail::run_instrumented(
      f, PowerListView<const std::remove_const_t<TV>>(input), ctx,
      leaf_size, 0, stats);
  ExecutionReport<R> report{std::move(result)};
  report.stats = stats;
  return report;
}

/// Execute sequentially while recording the task tree, then schedule it on
/// the simulator's virtual processors. The report carries both the
/// decomposition shape and the simulated schedule.
template <typename TV, typename R, typename Ctx>
ExecutionReport<R> execute_simulated(
    const simmachine::Simulator& sim,
    const PowerFunction<std::remove_const_t<TV>, R, Ctx>& f,
    PowerListView<TV> input, Ctx ctx = Ctx{}, std::size_t leaf_size = 1) {
  detail::checked_leaf_size(leaf_size);
  simmachine::TaskTrace trace;
  simmachine::TaskTrace::NodeId root = 0;
  R result = detail::run_traced(
      f, PowerListView<const std::remove_const_t<TV>>(input), ctx, leaf_size,
      trace, root);
  trace.set_root(root);
  ExecutionReport<R> report{std::move(result)};
  report.stats = detail::uniform_shape(input.length(), leaf_size);
  report.sim = sim.run(trace);
  report.simulated = true;
  return report;
}

/// Parallel execution on a fork-join pool that additionally reports the
/// decomposition shape (closed form — the halving recursion is uniform)
/// and the pool's observability-counter delta for the run (zeros when
/// PLS_OBSERVE=0). The delta is pool-wide: concurrent unrelated work on
/// the same pool is attributed to this report.
template <typename TV, typename R, typename Ctx>
ExecutionReport<R> execute_forkjoin_reported(
    forkjoin::ForkJoinPool& pool,
    const PowerFunction<std::remove_const_t<TV>, R, Ctx>& f,
    PowerListView<TV> input, Ctx ctx = Ctx{}, std::size_t leaf_size = 1) {
  detail::checked_leaf_size(leaf_size);
  // Plan before running so the run-record scope brackets the execution
  // (one RunRecord per executed terminal, PowerList runs included).
  const streams::ExecutionPlan plan =
      detail::synthesized_plan(input.length(), leaf_size, pool);
  streams::record_plan(plan);
  const observe::CounterTotals before = pool.counter_totals();
  std::optional<R> result;
  {
    streams::RunScope run_scope(plan);
    result.emplace(execute_forkjoin(pool, f, input, ctx, leaf_size));
  }
  ExecutionReport<R> report{std::move(*result)};
  report.stats = detail::uniform_shape(input.length(), leaf_size);
  report.counters = pool.counter_totals() - before;
  report.plan = plan;
  return report;
}

/// Parallel execution with full critical-path profiling: clears and
/// enables the global CriticalPathRecorder for the duration of the run,
/// then reports measured work T1, span T∞, per-phase attribution, the
/// run's wall time, and the aggregated latency histograms alongside the
/// counter delta. The recorder is process-global, so profile exactly one
/// run at a time; report.profile is all zeros when PLS_OBSERVE=0.
template <typename TV, typename R, typename Ctx>
ExecutionReport<R> execute_forkjoin_profiled(
    forkjoin::ForkJoinPool& pool,
    const PowerFunction<std::remove_const_t<TV>, R, Ctx>& f,
    PowerListView<TV> input, Ctx ctx = Ctx{}, std::size_t leaf_size = 1) {
  detail::checked_leaf_size(leaf_size);
  const streams::ExecutionPlan plan =
      detail::synthesized_plan(input.length(), leaf_size, pool);
  streams::record_plan(plan);
  auto& recorder = observe::CriticalPathRecorder::global();
  recorder.clear();
  recorder.enable();
  const observe::CounterTotals before = pool.counter_totals();
  const auto wall0 = std::chrono::steady_clock::now();
  std::optional<R> result;
  {
    streams::RunScope run_scope(plan);
    result.emplace(execute_forkjoin(pool, f, input, ctx, leaf_size));
  }
  const auto wall1 = std::chrono::steady_clock::now();
  recorder.disable();
  ExecutionReport<R> report{std::move(*result)};
  report.stats = detail::uniform_shape(input.length(), leaf_size);
  report.counters = pool.counter_totals() - before;
  report.profile = recorder.analyze();
  report.histograms = observe::aggregate_histograms();
  report.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall1 - wall0)
          .count());
  report.plan = plan;
  return report;
}

}  // namespace pls::powerlist
