// DeterministicPool: seeded schedule fuzzing for the fork-join pool.
//
// A real ForkJoinPool run is nondeterministic: which child of each fork is
// stolen, and by whom, depends on timing. That nondeterminism is exactly
// where stream-pipeline bugs hide (non-associative combiners, encounter-
// order violations, shared-sink races) — and exactly what a failing test
// cannot replay. DeterministicPool removes the timing: it installs a
// seeded ForkScheduleHook (forkjoin/pool.hpp) that serializes every fork
// onto one thread and decides, per fork, whether the forked child runs
// first ("it was stolen and finished before the parent continued") or
// second (the undisturbed LIFO pop). One seed = one exact interleaving; a
// sweep of seeds explores distinct schedules; and because the decision
// sequence is recorded, a test can assert that a replay took the identical
// schedule, not just produced the same answer.
//
// The pool is a drop-in: pass `det.pool()` anywhere a ForkJoinPool& (or
// ExecutionConfig::pool) is expected.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "forkjoin/pool.hpp"
#include "support/rng.hpp"

namespace pls::proptest {

/// Seeded schedule: each fork decision is one bit of a SplitMix64 stream,
/// recorded for replay verification. Decisions are made on the single
/// worker executing the serialized task tree; the trace is safe to read
/// once the submitting run() returned (the result handoff synchronizes).
class SeededSchedule final : public forkjoin::ForkScheduleHook {
 public:
  explicit SeededSchedule(std::uint64_t seed) : rng_(seed) {}

  bool run_forked_first() override {
    const bool forked_first = (rng_.next() & 1) != 0;
    trace_.push_back(forked_first);
    return forked_first;
  }

  /// The decision sequence taken so far (true = forked child ran first).
  const std::vector<bool>& trace() const noexcept { return trace_; }

  std::uint64_t decisions() const noexcept { return trace_.size(); }

 private:
  SplitMix64 rng_;
  std::vector<bool> trace_;
};

/// A single-worker ForkJoinPool with a SeededSchedule installed for its
/// whole lifetime. parallelism() == 1 plus the serialized invoke_two makes
/// every run a pure function of (submitted task, seed).
class DeterministicPool {
 public:
  explicit DeterministicPool(std::uint64_t seed)
      : seed_(seed), schedule_(seed), pool_(1) {
    pool_.set_schedule_hook(&schedule_);
  }

  // schedule_ is declared before pool_, so the pool (and its worker, the
  // only caller of the hook) is destroyed first.

  forkjoin::ForkJoinPool& pool() noexcept { return pool_; }

  template <typename F>
  auto run(F&& f) {
    return pool_.run(std::forward<F>(f));
  }

  std::uint64_t seed() const noexcept { return seed_; }

  /// The interleaving this pool executed: one entry per fork, in fork
  /// order. Two runs agree iff they took the identical schedule.
  const std::vector<bool>& schedule_trace() const noexcept {
    return schedule_.trace();
  }

 private:
  std::uint64_t seed_;
  SeededSchedule schedule_;
  forkjoin::ForkJoinPool pool_;
};

}  // namespace pls::proptest
