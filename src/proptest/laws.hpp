// Law suites: executable statements of the algebraic contracts the library
// rests on, checked against arbitrary implementations.
//
//   check_spliterator_laws — the Spliterator contract (java.util.Spliterator
//     semantics): bulk/stepwise traversal agreement, SIZED bookkeeping,
//     SUBSIZED split-size conservation, split disjointness + coverage in
//     encounter order, and destination-window consistency for
//     WindowedSource implementations (windows of split children partition
//     the parent's window).
//
//   check_collector_laws — the Collector contract: combiner associativity
//     (any combine tree over any contiguous partition yields the single-
//     accumulator result), supplier identity, and — for sized-sink
//     collectors — equivalence of the destination-passing protocol with
//     the supplier/combiner fold.
//
// Both return PropStatus so they slot directly into proptest::check as the
// property body; the Rand argument drives partition and split choices so
// every proptest iteration exercises a different decomposition.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "proptest/prop.hpp"
#include "streams/collector.hpp"
#include "streams/sized_sink.hpp"
#include "streams/spliterator.hpp"

namespace pls::proptest {

/// Consume every remaining element through for_each_remaining.
template <typename T>
std::vector<T> drain_bulk(streams::Spliterator<T>& sp) {
  std::vector<T> out;
  sp.for_each_remaining([&](const T& v) { out.push_back(v); });
  return out;
}

/// Consume every remaining element one try_advance at a time.
template <typename T>
std::vector<T> drain_stepwise(streams::Spliterator<T>& sp) {
  std::vector<T> out;
  while (sp.try_advance([&](const T& v) { out.push_back(v); })) {
  }
  return out;
}

/// The result positions a window covers, in window (encounter) order.
inline std::vector<std::uint64_t> window_positions(
    const streams::OutputWindow& w) {
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(w.count));
  for (std::uint64_t j = 0; j < w.count; ++j) {
    out.push_back(w.start + j * w.incr);
  }
  return out;
}

/// How a spliterator's try_split relates to encounter order.
///   kPrefix: the returned spliterator covers a strict prefix (tie-style
///     halving, array/range chunking) — concatenating leaf traversals in
///     prefix-first tree order reproduces the full encounter order.
///   kInterleaved: splits partition by position pattern (zip-style
///     even/odd), so leaf concatenation is a permutation of the source;
///     encounter positions are recoverable only through output windows.
enum class SplitOrder { kPrefix, kInterleaved };

namespace detail {

inline PropStatus law_fail(const std::string& law, const std::string& what) {
  return PropStatus::fail("[" + law + "] " + what);
}

/// One fully-drained leaf of a split tree: its traversal plus the window
/// it advertised before draining (when the source is windowed).
template <typename T>
struct SplitLeaf {
  std::optional<streams::OutputWindow> window;
  std::vector<T> values;
};

/// Recursively split `sp` under Rand-driven decisions, checking the split
/// laws at every node and appending leaf traversals (prefix subtree first)
/// to `leaves`.
template <typename T>
PropStatus split_tree_check(streams::Spliterator<T>& sp, Rand& r,
                            unsigned depth,
                            std::vector<SplitLeaf<T>>& leaves) {
  const std::uint64_t before_estimate = sp.estimate_size();
  const bool sized = sp.has(streams::kSized);
  const bool subsized = sp.has(streams::kSized | streams::kSubsized);
  const std::optional<streams::OutputWindow> parent_window =
      streams::output_window_of(sp);

  // Stop splitting on a Rand coin (deeper levels stop more eagerly), so
  // iterations cover shallow and deep decompositions alike.
  const bool want_split = depth < 12 && r.chance(3, depth < 2 ? 3 : 4);
  std::unique_ptr<streams::Spliterator<T>> prefix =
      want_split ? sp.try_split() : nullptr;
  if (prefix == nullptr) {
    const std::uint64_t claimed = sp.estimate_size();
    const auto leaf_window = streams::output_window_of(sp);
    std::vector<T> chunk = drain_bulk(sp);
    if (sized && claimed != chunk.size()) {
      std::ostringstream os;
      os << "leaf claimed " << claimed << " elements but yielded "
         << chunk.size();
      return law_fail("sized-leaf", os.str());
    }
    if (sp.has(streams::kSized) && sp.estimate_size() != 0) {
      return law_fail("sized-leaf", "estimate_size nonzero after full drain");
    }
    leaves.push_back(SplitLeaf<T>{leaf_window, std::move(chunk)});
    return PropStatus::pass();
  }

  if (subsized) {
    if (!prefix->has(streams::kSized)) {
      return law_fail("subsized", "split of a SUBSIZED source lost SIZED");
    }
    const std::uint64_t sum = prefix->estimate_size() + sp.estimate_size();
    if (sum != before_estimate) {
      std::ostringstream os;
      os << "child sizes " << prefix->estimate_size() << " + "
         << sp.estimate_size() << " != parent " << before_estimate;
      return law_fail("subsized", os.str());
    }
  }

  // Window law: when the parent names a window consistent with its size,
  // the children's windows must exist and partition it exactly.
  if (parent_window.has_value() && subsized &&
      parent_window->count == before_estimate) {
    const auto left_window = streams::output_window_of(*prefix);
    const auto right_window = streams::output_window_of(sp);
    if (!left_window.has_value() || !right_window.has_value()) {
      return law_fail("window", "windowed parent split to windowless child");
    }
    if (left_window->count != prefix->estimate_size() ||
        right_window->count != sp.estimate_size()) {
      return law_fail("window", "child window count != child size");
    }
    std::vector<std::uint64_t> got = window_positions(*left_window);
    const std::vector<std::uint64_t> right = window_positions(*right_window);
    got.insert(got.end(), right.begin(), right.end());
    std::sort(got.begin(), got.end());
    if (std::adjacent_find(got.begin(), got.end()) != got.end()) {
      return law_fail("window", "child windows overlap");
    }
    std::vector<std::uint64_t> want = window_positions(*parent_window);
    std::sort(want.begin(), want.end());
    if (got != want) {
      return law_fail("window",
                      "child windows do not cover the parent window");
    }
  }

  if (PropStatus s = split_tree_check(*prefix, r, depth + 1, leaves); !s.ok) {
    return s;
  }
  return split_tree_check(sp, r, depth + 1, leaves);
}

}  // namespace detail

/// Check the Spliterator contract for the spliterators produced by `make`
/// (each call must return a fresh spliterator over the same conceptual
/// source). Rand drives the split decisions. Pass
/// SplitOrder::kInterleaved for zip-style sources, whose splits permute
/// encounter order and carry it in output windows instead.
template <typename T>
PropStatus check_spliterator_laws(
    const std::function<std::unique_ptr<streams::Spliterator<T>>()>& make,
    Rand& r, SplitOrder order = SplitOrder::kPrefix) {
  auto bulk_sp = make();
  const std::vector<T> full = drain_bulk(*bulk_sp);

  {
    auto step_sp = make();
    const std::vector<T> stepped = drain_stepwise(*step_sp);
    if (stepped != full) {
      return detail::law_fail(
          "traversal", "try_advance and for_each_remaining sequences differ");
    }
    if (step_sp->try_advance([](const T&) {})) {
      return detail::law_fail("traversal",
                              "try_advance succeeded after exhaustion");
    }
  }

  {
    auto sized_sp = make();
    if (sized_sp->has(streams::kSized) &&
        sized_sp->estimate_size() != full.size()) {
      std::ostringstream os;
      os << "SIZED estimate " << sized_sp->estimate_size() << " != actual "
         << full.size();
      return detail::law_fail("sized", os.str());
    }
    const auto window = streams::output_window_of(*sized_sp);
    if (window.has_value() && sized_sp->has(streams::kSized) &&
        window->count != sized_sp->estimate_size()) {
      // Windows are allowed to be absent, but a present window must agree
      // with the size it claims to cover.
      std::ostringstream os;
      os << "window count " << window->count << " != estimate "
         << sized_sp->estimate_size();
      return detail::law_fail("window", os.str());
    }
  }

  auto tree_sp = make();
  const auto root_window = streams::output_window_of(*tree_sp);
  std::vector<detail::SplitLeaf<T>> leaves;
  if (PropStatus s = detail::split_tree_check(*tree_sp, r, 0, leaves);
      !s.ok) {
    return s;
  }
  std::vector<T> concatenated;
  concatenated.reserve(full.size());
  for (const auto& leaf : leaves) {
    concatenated.insert(concatenated.end(), leaf.values.begin(),
                        leaf.values.end());
  }
  if (concatenated.size() != full.size()) {
    std::ostringstream os;
    os << "split-tree leaves yielded " << concatenated.size()
       << " elements, full traversal " << full.size()
       << " — splits lost or duplicated elements";
    return detail::law_fail("coverage", os.str());
  }
  if (order == SplitOrder::kPrefix && concatenated != full) {
    return detail::law_fail(
        "coverage",
        "prefix-order leaf concatenation differs from the full traversal");
  }
  // Placement law: when the root advertises an exact window, every leaf's
  // window maps its elements to encounter positions; scattering leaf
  // values through their windows must rebuild the full traversal. This is
  // the property the destination-passing collect rests on — and for
  // interleaved (zip-style) splits it is the *only* order guarantee.
  if (root_window.has_value() && root_window->count == full.size()) {
    std::vector<T> placed(full.size());
    std::vector<bool> hit(full.size(), false);
    for (const auto& leaf : leaves) {
      if (!leaf.window.has_value()) {
        return detail::law_fail("placement",
                                "windowed root produced a windowless leaf");
      }
      if (leaf.window->count != leaf.values.size()) {
        return detail::law_fail("placement",
                                "leaf window count != leaf traversal size");
      }
      const auto positions = window_positions(*leaf.window);
      for (std::size_t k = 0; k < positions.size(); ++k) {
        const std::uint64_t raw = positions[k] - root_window->start;
        if (raw % root_window->incr != 0) {
          return detail::law_fail(
              "placement", "leaf position off the root window's stride");
        }
        const std::uint64_t idx = raw / root_window->incr;
        if (idx >= full.size() || hit[static_cast<std::size_t>(idx)]) {
          return detail::law_fail(
              "placement", "leaf positions escape or overlap the root window");
        }
        hit[static_cast<std::size_t>(idx)] = true;
        placed[static_cast<std::size_t>(idx)] = leaf.values[k];
      }
    }
    if (placed != full) {
      return detail::law_fail(
          "placement",
          "window-scattered leaves do not rebuild the full traversal");
    }
  } else if (order == SplitOrder::kInterleaved) {
    // No window to recover order through: the weakest honest law is
    // multiset equality.
    std::vector<T> a = concatenated, b = full;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) {
      return detail::law_fail(
          "coverage", "leaf multiset differs from the full traversal");
    }
  }
  return PropStatus::pass();
}

namespace detail {

template <typename T, typename C>
typename C::accumulation_type fold_segment(const C& c,
                                           const std::vector<T>& input,
                                           std::size_t lo, std::size_t hi) {
  auto acc = c.supply();
  for (std::size_t i = lo; i < hi; ++i) c.accumulate(acc, input[i]);
  return acc;
}

/// Combine the segments of [seg_lo, seg_hi) under a Rand-shaped binary
/// tree, respecting segment (encounter) order.
template <typename T, typename C>
typename C::accumulation_type combine_tree(
    const C& c, const std::vector<T>& input,
    const std::vector<std::size_t>& bounds, std::size_t seg_lo,
    std::size_t seg_hi, Rand& r) {
  if (seg_hi - seg_lo == 1) {
    return fold_segment(c, input, bounds[seg_lo], bounds[seg_lo + 1]);
  }
  const std::size_t mid =
      seg_lo + 1 +
      static_cast<std::size_t>(r.below(seg_hi - seg_lo - 1));
  auto left = combine_tree(c, input, bounds, seg_lo, mid, r);
  auto right = combine_tree(c, input, bounds, mid, seg_hi, r);
  c.combine(left, right);
  return left;
}

}  // namespace detail

/// Check the Collector laws for `c` over `input`. Rand drives partition
/// boundaries and combine-tree shapes. The collector's result type must be
/// equality-comparable.
template <typename T, typename C>
PropStatus check_collector_laws(const C& c, const std::vector<T>& input,
                                Rand& r) {
  const auto reference = [&] {
    auto acc = detail::fold_segment(c, input, 0, input.size());
    return c.finish(std::move(acc));
  }();

  // Associativity over a random contiguous partition, combined two ways:
  // a strict left fold and a random binary tree.
  const std::size_t max_segments = input.size() < 7 ? input.size() + 1 : 8;
  const std::size_t segments =
      1 + static_cast<std::size_t>(r.below(max_segments));
  std::vector<std::size_t> bounds{0};
  for (std::size_t s = 1; s < segments; ++s) {
    bounds.push_back(static_cast<std::size_t>(r.below(input.size() + 1)));
  }
  bounds.push_back(input.size());
  std::sort(bounds.begin(), bounds.end());

  {
    auto acc = detail::fold_segment(c, input, bounds[0], bounds[1]);
    for (std::size_t s = 1; s + 1 < bounds.size(); ++s) {
      auto next = detail::fold_segment(c, input, bounds[s], bounds[s + 1]);
      c.combine(acc, next);
    }
    if (!(c.finish(std::move(acc)) == reference)) {
      return detail::law_fail("associativity",
                              "left-fold combine over a partition differs "
                              "from the single-accumulator result");
    }
  }
  {
    auto acc = detail::combine_tree(c, input, bounds, 0, bounds.size() - 1, r);
    if (!(c.finish(std::move(acc)) == reference)) {
      return detail::law_fail("associativity",
                              "tree-shaped combine over a partition differs "
                              "from the single-accumulator result");
    }
  }

  // Identity: a fresh supply() is a left and right identity of combine.
  {
    auto acc = detail::fold_segment(c, input, 0, input.size());
    auto empty = c.supply();
    c.combine(acc, empty);
    if (!(c.finish(std::move(acc)) == reference)) {
      return detail::law_fail("identity",
                              "combining with an empty right container "
                              "changed the result");
    }
  }
  {
    auto empty = c.supply();
    auto acc = detail::fold_segment(c, input, 0, input.size());
    c.combine(empty, acc);
    if (!(c.finish(std::move(empty)) == reference)) {
      return detail::law_fail("identity",
                              "combining into an empty left container "
                              "changed the result");
    }
  }

  // Sized-sink protocol ≡ supplier/combiner fold: writing each position
  // exactly once, in an arbitrary (Rand-shuffled) order, must produce the
  // same result as the sequential fold.
  if constexpr (streams::SizedSinkCollector<C, T>) {
    auto sink = c.supply_sized(input.size());
    std::vector<std::size_t> order(input.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[static_cast<std::size_t>(r.below(i))]);
    }
    for (std::size_t pos : order) {
      c.accumulate_at(sink, pos, input[pos]);
    }
    if (!(c.finish_sized(std::move(sink)) == reference)) {
      return detail::law_fail("sized-sink",
                              "destination-passing protocol differs from "
                              "the supplier/combiner fold");
    }
  }

  return PropStatus::pass();
}

}  // namespace pls::proptest
