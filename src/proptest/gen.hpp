// Reusable generators for the property suites: sizes (arbitrary and
// power-of-two), value vectors, and split-decision streams.
//
// Generators are plain callables Rand& -> T, composed ad hoc; nothing here
// allocates global state, so every generated value is a pure function of
// the Rand it consumed.
#pragma once

#include <cstdint>
#include <vector>

#include "proptest/prop.hpp"

namespace pls::proptest {

/// Power-of-two size 2^k with k uniform in [min_log2, max_log2].
inline std::uint64_t gen_pow2_size(Rand& r, unsigned min_log2,
                                   unsigned max_log2) {
  const unsigned k = static_cast<unsigned>(
      r.in_range(static_cast<std::int64_t>(min_log2),
                 static_cast<std::int64_t>(max_log2)));
  return std::uint64_t{1} << k;
}

/// Size in [lo, hi], biased toward small values (half the draws come from
/// the bottom eighth of the range) — boundary sizes find most bugs.
inline std::uint64_t gen_size(Rand& r, std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  if (span > 8 && r.coin()) {
    return lo + r.below(span / 8 + 1);
  }
  return lo + r.below(span);
}

/// Vector of n integers in [lo, hi].
inline std::vector<std::int64_t> gen_values(Rand& r, std::uint64_t n,
                                            std::int64_t lo,
                                            std::int64_t hi) {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(r.in_range(lo, hi));
  return out;
}

/// Deterministic value for index i under a seed — the pure-function twin
/// of gen_values for Generate-style sources, where the producing closure
/// must be re-evaluable at any index.
inline std::int64_t value_at(std::uint64_t seed, std::uint64_t i) {
  SplitMix64 sm(seed ^ (i * 0x9E3779B97F4A7C15ULL + 0x71CE));
  return static_cast<std::int64_t>(sm.next() >> 16);
}

}  // namespace pls::proptest
