// Property-based testing core: seeded random source, property runner with
// automatic shrinking, and reproducible failure reports.
//
// Design goals (docs/testing.md):
//   - dependency-free: everything derives from support/rng.hpp;
//   - replayable: every run is a pure function of one 64-bit seed
//     (PLS_TEST_SEED), and every failure report prints the exact
//     environment line that reproduces the identical counterexample,
//     shrink path, and — for schedule-fuzzed properties — interleaving;
//   - shrinking by value: a shrinker maps a failing value to simpler
//     candidates; the runner greedily descends to a local minimum, so the
//     reported counterexample is the smallest the shrinker can reach.
//
// A property is any callable taking the generated value and returning
// either bool or PropStatus (which carries a message); thrown exceptions
// count as failures with the exception text as the message.
#pragma once

#include <cstdint>
#include <exception>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace pls::proptest {

/// Seeded random source handed to generators. Thin convenience layer over
/// Xoshiro256 so generator code reads declaratively.
class Rand {
 public:
  explicit Rand(std::uint64_t seed) : rng_(seed) {}

  std::uint64_t bits() { return rng_(); }

  /// Uniform in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return rng_.next_below(bound); }

  /// Uniform in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t in_range(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     rng_.next_below(span));
  }

  bool coin() { return (rng_() & 1) != 0; }

  /// Bernoulli with probability num/denom.
  bool chance(std::uint64_t num, std::uint64_t denom) {
    return rng_.next_below(denom) < num;
  }

  template <typename Seq>
  const auto& pick(const Seq& options) {
    return options[static_cast<std::size_t>(below(options.size()))];
  }

 private:
  Xoshiro256 rng_;
};

/// Outcome of one property application.
struct PropStatus {
  bool ok = true;
  std::string message;

  static PropStatus pass() { return {true, {}}; }
  static PropStatus fail(std::string msg) { return {false, std::move(msg)}; }
};

/// Runner configuration. The default seed is the process-wide
/// PLS_TEST_SEED (support/rng.hpp), so exporting a printed seed replays
/// every check in the binary identically.
struct Config {
  std::uint64_t seed = test_seed();
  int iterations = 100;
  int max_shrink_steps = 1000;
};

namespace detail {

template <typename T>
concept Describable = requires(const T& t) {
  { t.debug_string() } -> std::convertible_to<std::string>;
};

template <typename T>
concept Streamable = requires(std::ostream& os, const T& t) { os << t; };

}  // namespace detail

/// Human-readable rendering of a generated value for failure reports:
/// uses T::debug_string() when present, ranges render element-wise
/// (capped), everything ostream-printable falls back to operator<<.
template <typename T>
std::string describe(const T& value) {
  if constexpr (detail::Describable<T>) {
    return value.debug_string();
  } else if constexpr (std::is_same_v<T, bool>) {
    return value ? "true" : "false";
  } else if constexpr (std::is_arithmetic_v<T>) {
    return std::to_string(value);
  } else if constexpr (requires(const T& t) {
                         t.begin();
                         t.end();
                         t.size();
                       }) {
    std::ostringstream os;
    os << "[";
    std::size_t shown = 0;
    for (const auto& e : value) {
      if (shown == 32) {
        os << ", …";
        break;
      }
      if (shown != 0) os << ", ";
      os << describe(e);
      ++shown;
    }
    os << "] (" << value.size() << " elements)";
    return os.str();
  } else if constexpr (detail::Streamable<T>) {
    std::ostringstream os;
    os << value;
    return os.str();
  } else {
    return "<opaque value>";
  }
}

template <typename A, typename B>
std::string describe(const std::pair<A, B>& p) {
  return "(" + describe(p.first) + ", " + describe(p.second) + ")";
}

/// Result of one check() run. `report` is ready to stream into a gtest
/// assertion message; `ok` is the overall verdict.
template <typename T>
struct CheckResult {
  bool ok = true;
  std::uint64_t seed = 0;
  int iterations_run = 0;
  /// Iteration index (0-based) whose generated value falsified the
  /// property, or -1 when all passed.
  int failing_iteration = -1;
  /// Accepted shrink steps taken from the original failing value.
  int shrink_steps = 0;
  std::optional<T> counterexample;
  std::string message;
  std::string report;
};

namespace detail {

template <typename Prop, typename T>
PropStatus apply_property(Prop& prop, const T& value) {
  try {
    if constexpr (std::is_same_v<std::invoke_result_t<Prop&, const T&>,
                                 PropStatus>) {
      return prop(value);
    } else {
      return prop(value) ? PropStatus::pass()
                         : PropStatus::fail("property returned false");
    }
  } catch (const std::exception& e) {
    return PropStatus::fail(std::string("exception: ") + e.what());
  } catch (...) {
    return PropStatus::fail("non-standard exception");
  }
}

}  // namespace detail

/// Run `prop` against `iterations` values drawn from `gen`, shrinking the
/// first failure with `shrinker` (failing value -> simpler candidates;
/// return an empty vector to disable shrinking for a value).
///
/// Determinism contract: for a fixed (cfg.seed, gen, shrinker, prop) the
/// entire run — iteration order, failing value, shrink path, final
/// counterexample — is identical across processes. Iteration i draws from
/// a Rand seeded by the i-th output of a SplitMix64 stream over cfg.seed,
/// so failures replay even when the iteration count changes above i.
template <typename Gen, typename Shrink, typename Prop>
auto check(std::string_view name, const Config& cfg, Gen&& gen,
           Shrink&& shrinker, Prop&& prop)
    -> CheckResult<std::decay_t<std::invoke_result_t<Gen&, Rand&>>> {
  using T = std::decay_t<std::invoke_result_t<Gen&, Rand&>>;
  CheckResult<T> result;
  result.seed = cfg.seed;
  SplitMix64 iteration_seeds(cfg.seed);
  for (int i = 0; i < cfg.iterations; ++i) {
    Rand rand(iteration_seeds.next());
    T value = gen(rand);
    PropStatus status = detail::apply_property(prop, value);
    ++result.iterations_run;
    if (status.ok) continue;

    // Greedy shrink: take the first simpler candidate that still fails,
    // repeat until none does (or the step budget runs out).
    result.failing_iteration = i;
    int steps = 0;
    bool made_progress = true;
    while (made_progress && steps < cfg.max_shrink_steps) {
      made_progress = false;
      for (T& candidate : shrinker(value)) {
        PropStatus candidate_status = detail::apply_property(prop, candidate);
        ++steps;
        if (!candidate_status.ok) {
          value = std::move(candidate);
          status = std::move(candidate_status);
          made_progress = true;
          break;
        }
        if (steps >= cfg.max_shrink_steps) break;
      }
      if (made_progress) ++result.shrink_steps;
    }

    result.ok = false;
    result.message = status.message;
    std::ostringstream report;
    report << "[proptest] FALSIFIED: " << name << "\n"
           << "[proptest]   failing iteration: " << i << " of "
           << cfg.iterations << "\n"
           << "[proptest]   counterexample (after " << result.shrink_steps
           << " shrink steps): " << describe(value) << "\n"
           << "[proptest]   reason: " << status.message << "\n"
           << "[proptest]   replay: PLS_TEST_SEED=0x" << std::hex << cfg.seed
           << std::dec << "\n";
    result.report = report.str();
    result.counterexample = std::move(value);
    return result;
  }
  return result;
}

/// check() without shrinking.
template <typename Gen, typename Prop>
auto check(std::string_view name, const Config& cfg, Gen&& gen, Prop&& prop) {
  using T = std::decay_t<std::invoke_result_t<Gen&, Rand&>>;
  return check(
      name, cfg, std::forward<Gen>(gen),
      [](const T&) { return std::vector<T>{}; }, std::forward<Prop>(prop));
}

// ---- standard shrinkers --------------------------------------------------

/// Integer shrink candidates, ordered most-aggressive first: 0, halves
/// toward the value, value - 1. Greedy descent over these converges to the
/// smallest failing integer.
inline std::vector<std::uint64_t> shrink_integer(std::uint64_t v) {
  std::vector<std::uint64_t> out;
  if (v == 0) return out;
  out.push_back(0);
  if (v / 2 != 0) out.push_back(v / 2);
  if (v - 1 != v / 2) out.push_back(v - 1);
  return out;
}

/// Power-of-two shrink: halve toward 1.
inline std::vector<std::uint64_t> shrink_pow2(std::uint64_t v) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t c = v / 2; c >= 1; c /= 2) out.push_back(c);
  return out;
}

/// Vector shrink candidates: empty, first/second half, drop-one-element
/// (for short vectors), plus shrinking one element toward zero.
template <typename T>
std::vector<std::vector<T>> shrink_vector(const std::vector<T>& v) {
  std::vector<std::vector<T>> out;
  if (v.empty()) return out;
  out.emplace_back();
  const std::size_t n = v.size();
  if (n >= 2) {
    out.emplace_back(v.begin(), v.begin() + n / 2);
    out.emplace_back(v.begin() + n / 2, v.end());
  }
  if (n <= 8) {
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<T> dropped;
      dropped.reserve(n - 1);
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) dropped.push_back(v[j]);
      }
      out.push_back(std::move(dropped));
    }
  }
  if constexpr (std::is_integral_v<T>) {
    for (std::size_t i = 0; i < n && i < 8; ++i) {
      if (v[i] != T{0}) {
        std::vector<T> zeroed = v;
        zeroed[i] = T{0};
        out.push_back(std::move(zeroed));
      }
    }
  }
  return out;
}

}  // namespace pls::proptest

/// Assert that a CheckResult passed, streaming its full report on failure.
/// A macro (not a function) so gtest records the caller's file and line.
#define PLS_EXPECT_PROP(result_expr)                       \
  do {                                                     \
    const auto& pls_prop_result_ = (result_expr);          \
    EXPECT_TRUE(pls_prop_result_.ok) << pls_prop_result_.report; \
  } while (false)
