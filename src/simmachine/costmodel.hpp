// Deterministic cost model for the simulated parallel machine.
//
// The host this reproduction runs on is pinned to a single CPU, so the
// paper's Figure 3 (speedup on 8 cores) cannot be measured with wall clocks.
// Instead, PowerList executions are recorded as a fork-join task tree whose
// node costs are *operation counts*; this model maps operations to
// nanoseconds (calibrated against one real sequential run) and prices the
// scheduling overheads (task spawn, steal, join bookkeeping) that produce
// the sub-linear speedup region the paper shows for small inputs.
#pragma once

#include "support/assert.hpp"

namespace pls::simmachine {

struct CostModel {
  /// Nanoseconds per abstract operation (calibrated).
  double ns_per_op = 1.0;
  /// Cost charged to the spawning worker per forked child.
  double spawn_overhead_ns = 120.0;
  /// Cost charged to a thief for acquiring a task from another worker.
  double steal_overhead_ns = 450.0;
  /// Bookkeeping cost at each join point.
  double join_overhead_ns = 60.0;

  /// Derive ns_per_op from a measured sequential run: `measured_ns` wall
  /// time for `total_ops` abstract operations.
  static CostModel calibrated(double measured_ns, double total_ops,
                              CostModel base);
  static CostModel calibrated(double measured_ns, double total_ops) {
    return calibrated(measured_ns, total_ops, CostModel{});
  }
};

inline CostModel CostModel::calibrated(double measured_ns, double total_ops,
                                       CostModel base) {
  PLS_CHECK(total_ops > 0.0, "calibration requires a positive op count");
  PLS_CHECK(measured_ns > 0.0, "calibration requires a positive time");
  base.ns_per_op = measured_ns / total_ops;
  return base;
}

}  // namespace pls::simmachine
