#include "simmachine/scheduler.hpp"

#include <deque>
#include <queue>
#include <tuple>

#include "observe/trace.hpp"

namespace pls::simmachine {

namespace {

enum class SegmentKind : std::uint8_t { kDescend, kLeaf, kCombine };

struct Segment {
  SegmentKind kind;
  TaskTrace::NodeId node;
};

struct WorkerState {
  double clock = 0.0;          // time the worker becomes/became free
  bool busy = false;
  Segment current{SegmentKind::kLeaf, 0};
  std::deque<Segment> stack;   // back = LIFO top (own pops), front = steals
};

/// Completion event: (time, worker). Min-heap by time, ties by worker index.
using Event = std::pair<double, unsigned>;

struct EventOrder {
  bool operator()(const Event& a, const Event& b) const {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;
  }
};

}  // namespace

Simulator::Simulator(CostModel model, unsigned processors)
    : model_(model), processors_(processors) {
  PLS_CHECK(processors >= 1, "Simulator needs at least one processor");
}

SimResult Simulator::run(const TaskTrace& trace) const {
  const TaskTrace::NodeId root = trace.root();

  // Parent links and pending-children counters for join detection.
  std::vector<TaskTrace::NodeId> parent(trace.node_count(),
                                        TaskTrace::kNoNode);
  std::vector<std::uint8_t> pending(trace.node_count(), 0);
  for (TaskTrace::NodeId id = 0;
       id < static_cast<TaskTrace::NodeId>(trace.node_count()); ++id) {
    const auto& n = trace.node(id);
    if (!n.is_leaf()) {
      parent[n.left] = id;
      parent[n.right] = id;
      pending[id] = 2;
    }
  }

  std::vector<WorkerState> workers(processors_);
  std::priority_queue<Event, std::vector<Event>, EventOrder> events;

  SimResult result;
  result.processors = processors_;
  result.span_ns = trace.span_ops() * model_.ns_per_op;
  result.pure_work_ns = trace.total_work_ops() * model_.ns_per_op;

  const auto duration_of = [&](const Segment& seg) {
    const auto& n = trace.node(seg.node);
    switch (seg.kind) {
      case SegmentKind::kDescend:
        return n.pre_ops * model_.ns_per_op + 2.0 * model_.spawn_overhead_ns;
      case SegmentKind::kLeaf:
        return n.pre_ops * model_.ns_per_op;
      case SegmentKind::kCombine:
        return n.post_ops * model_.ns_per_op + model_.join_overhead_ns;
    }
    return 0.0;  // unreachable
  };

  // When tracing is enabled, simulated segments are recorded through the
  // same recorder as real executions (pid 1, virtual-nanosecond clock,
  // tid = virtual processor), so both produce one chrome-trace schema:
  // descend → split, leaf → accumulate, combine → combine.
  auto& recorder = observe::TraceRecorder::global();
  const auto observe_kind = [](SegmentKind k) {
    switch (k) {
      case SegmentKind::kDescend: return observe::EventKind::kSplit;
      case SegmentKind::kLeaf: return observe::EventKind::kAccumulate;
      case SegmentKind::kCombine: return observe::EventKind::kCombine;
    }
    return observe::EventKind::kTask;  // unreachable
  };

  const auto start_segment = [&](unsigned w, Segment seg, double start) {
    WorkerState& ws = workers[w];
    ws.busy = true;
    ws.current = seg;
    const double dur = duration_of(seg);
    result.work_ns += dur;
    ws.clock = start + dur;
    events.push({ws.clock, w});
    ++result.segments;
    if (recorder.enabled()) {
      recorder.record_virtual(observe_kind(seg.kind), w, start, dur,
                              seg.node);
    }
  };

  // Give a free worker something to do at time `t`. Returns false if the
  // worker stays idle.
  const auto dispatch = [&](unsigned w, double t) {
    WorkerState& ws = workers[w];
    if (!ws.stack.empty()) {
      Segment seg = ws.stack.back();
      ws.stack.pop_back();
      start_segment(w, seg, t);
      return true;
    }
    // Steal sweep: round-robin from the next worker; take the oldest entry
    // (the largest remaining subtree) from the first non-empty victim.
    for (unsigned k = 1; k < processors_; ++k) {
      const unsigned victim = (w + k) % processors_;
      if (!workers[victim].stack.empty()) {
        Segment seg = workers[victim].stack.front();
        workers[victim].stack.pop_front();
        ++result.steals;
        if (recorder.enabled()) {
          recorder.record_virtual(observe::EventKind::kSteal, w, t,
                                  model_.steal_overhead_ns, victim);
        }
        start_segment(w, seg, t + model_.steal_overhead_ns);
        return true;
      }
    }
    ws.busy = false;
    ws.clock = t;
    return false;
  };

  // Seed: the root segment runs on worker 0 at time zero.
  {
    const Segment root_seg{trace.node(root).is_leaf() ? SegmentKind::kLeaf
                                                      : SegmentKind::kDescend,
                           root};
    start_segment(0, root_seg, 0.0);
  }

  double finish_time = 0.0;
  while (!events.empty()) {
    const auto [t, w] = events.top();
    events.pop();
    WorkerState& ws = workers[w];
    const Segment done = ws.current;
    ws.busy = false;

    switch (done.kind) {
      case SegmentKind::kDescend: {
        const auto& n = trace.node(done.node);
        // Push right below left so the spawner continues depth-first into
        // the left child, mirroring invoke_two's inline-left policy.
        const auto seg_for = [&](TaskTrace::NodeId child) {
          return Segment{trace.node(child).is_leaf() ? SegmentKind::kLeaf
                                                     : SegmentKind::kDescend,
                         child};
        };
        ws.stack.push_back(seg_for(n.right));
        ws.stack.push_back(seg_for(n.left));
        break;
      }
      case SegmentKind::kLeaf:
      case SegmentKind::kCombine: {
        // A Leaf or Combine segment finishes its node entirely.
        if (done.node == root) {
          finish_time = t;
          break;
        }
        const TaskTrace::NodeId p = parent[done.node];
        PLS_ASSERT(p != TaskTrace::kNoNode);
        if (--pending[p] == 0) {
          // Continuation runs on the worker finishing the last child.
          ws.stack.push_back(Segment{SegmentKind::kCombine, p});
        }
        break;
      }
    }

    dispatch(w, t);
    // Newly published work may feed workers that went idle earlier.
    for (unsigned v = 0; v < processors_; ++v) {
      if (!workers[v].busy) dispatch(v, t);
    }
  }

  result.makespan_ns = finish_time;
  return result;
}

}  // namespace pls::simmachine
