// Fork-join task trees recorded from divide-and-conquer executions.
//
// A TaskTrace is a series-parallel DAG in tree form: every internal node is
// a binary fork with a "descend" segment (work before the fork: splitting a
// PowerList, the polynomial example's x := x^2, ...), two children executed
// in parallel, and a "combine" segment (the ascending phase). Leaves carry
// the basic-case work. Costs are abstract operation counts; the scheduler
// prices them with a CostModel.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "support/assert.hpp"

namespace pls::simmachine {

class TaskTrace {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

  struct Node {
    double pre_ops = 0.0;   ///< leaf work, or descend work for forks
    double post_ops = 0.0;  ///< combine work (forks only)
    NodeId left = kNoNode;
    NodeId right = kNoNode;

    bool is_leaf() const noexcept { return left == kNoNode; }
  };

  /// Add a leaf performing `ops` operations. Returns its id.
  NodeId add_leaf(double ops) {
    PLS_CHECK(ops >= 0.0, "leaf op count must be non-negative");
    nodes_.push_back(Node{ops, 0.0, kNoNode, kNoNode});
    return last_id();
  }

  /// Add a fork node over existing children. Returns its id.
  NodeId add_fork(double descend_ops, double combine_ops, NodeId left,
                  NodeId right) {
    PLS_CHECK(descend_ops >= 0.0 && combine_ops >= 0.0,
              "fork op counts must be non-negative");
    PLS_CHECK(left < nodes_.size() && right < nodes_.size(),
              "fork children must already exist");
    nodes_.push_back(Node{descend_ops, combine_ops, left, right});
    return last_id();
  }

  void set_root(NodeId id) {
    PLS_CHECK(id < nodes_.size(), "root must be an existing node");
    root_ = id;
  }

  NodeId root() const {
    PLS_CHECK(root_ != kNoNode, "trace has no root");
    return root_;
  }

  bool has_root() const noexcept { return root_ != kNoNode; }
  std::size_t node_count() const noexcept { return nodes_.size(); }

  const Node& node(NodeId id) const {
    PLS_CHECK(id < nodes_.size(), "node id out of range");
    return nodes_[id];
  }

  /// Total work (T1) in abstract operations.
  double total_work_ops() const {
    double sum = 0.0;
    for (const Node& n : nodes_) sum += n.pre_ops + n.post_ops;
    return sum;
  }

  /// Critical-path length (T-infinity) in abstract operations.
  double span_ops() const { return span_of(root()); }

  /// Build a perfectly balanced binary D&C trace with `levels` fork levels
  /// over a problem of size `n` (n = 2^levels * leaf size is implied by the
  /// callbacks). The callbacks receive the sublist length at that node:
  ///   leaf_ops(len), descend_ops(len), combine_ops(len).
  template <typename LeafFn, typename DescendFn, typename CombineFn>
  static TaskTrace balanced(unsigned levels, std::size_t n,
                            const LeafFn& leaf_ops,
                            const DescendFn& descend_ops,
                            const CombineFn& combine_ops) {
    PLS_CHECK(n >= 1, "problem size must be positive");
    PLS_CHECK((n >> levels) << levels == n,
              "problem size must be divisible by 2^levels");
    TaskTrace trace;
    trace.set_root(trace.build_balanced(levels, n, leaf_ops, descend_ops,
                                        combine_ops));
    return trace;
  }

 private:
  NodeId last_id() const {
    return static_cast<NodeId>(nodes_.size() - 1);
  }

  template <typename LeafFn, typename DescendFn, typename CombineFn>
  NodeId build_balanced(unsigned levels, std::size_t len,
                        const LeafFn& leaf_ops, const DescendFn& descend_ops,
                        const CombineFn& combine_ops) {
    if (levels == 0) {
      return add_leaf(leaf_ops(len));
    }
    const NodeId l = build_balanced(levels - 1, len / 2, leaf_ops,
                                    descend_ops, combine_ops);
    const NodeId r = build_balanced(levels - 1, len / 2, leaf_ops,
                                    descend_ops, combine_ops);
    return add_fork(descend_ops(len), combine_ops(len), l, r);
  }

  double span_of(NodeId id) const {
    const Node& n = nodes_[id];
    if (n.is_leaf()) return n.pre_ops;
    return n.pre_ops + std::max(span_of(n.left), span_of(n.right)) +
           n.post_ops;
  }

  std::vector<Node> nodes_;
  NodeId root_ = kNoNode;
};

}  // namespace pls::simmachine
