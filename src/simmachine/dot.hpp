// Task-trace export to Graphviz DOT, for inspecting the fork-join
// structures the executors record (debugging aid and documentation tool;
// render with `dot -Tsvg trace.dot`).
#pragma once

#include <sstream>
#include <string>

#include "simmachine/trace.hpp"

namespace pls::simmachine {

/// Render the trace as a DOT digraph: leaves are boxes labelled with
/// their op counts; forks are ellipses labelled "pre/post"; edges point
/// from parent to children.
inline std::string to_dot(const TaskTrace& trace,
                          const std::string& name = "task_trace") {
  std::ostringstream out;
  out << "digraph " << name << " {\n";
  out << "  node [fontsize=10];\n";
  for (TaskTrace::NodeId id = 0;
       id < static_cast<TaskTrace::NodeId>(trace.node_count()); ++id) {
    const auto& n = trace.node(id);
    if (n.is_leaf()) {
      out << "  n" << id << " [shape=box, label=\"leaf " << id << "\\n"
          << n.pre_ops << " ops\"];\n";
    } else {
      out << "  n" << id << " [shape=ellipse, label=\"fork " << id << "\\n"
          << n.pre_ops << " / " << n.post_ops << "\"];\n";
      out << "  n" << id << " -> n" << n.left << ";\n";
      out << "  n" << id << " -> n" << n.right << ";\n";
    }
  }
  if (trace.has_root()) {
    out << "  n" << trace.root() << " [style=bold];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace pls::simmachine
