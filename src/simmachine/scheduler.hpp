// Event-driven work-stealing scheduler over recorded task traces.
//
// Simulates P virtual processors executing a TaskTrace under the same
// policy the real ForkJoinPool uses: forked children go on the spawning
// worker's LIFO stack, idle workers steal the *oldest* entry from a victim
// (FIFO — the largest remaining subtree), and the combine segment of a fork
// runs on the worker that completed the fork's last child (continuation
// locality). Spawn, steal and join overheads are priced by the CostModel,
// which is what produces the realistic sub-linear speedups for small
// problems.
//
// The simulation is fully deterministic: victim scanning is round-robin
// from a seeded start, and ties in time are broken by worker index.
#pragma once

#include <cstdint>
#include <vector>

#include "simmachine/costmodel.hpp"
#include "simmachine/trace.hpp"

namespace pls::simmachine {

/// Summary of one simulated execution.
struct SimResult {
  unsigned processors = 1;
  double makespan_ns = 0.0;    ///< simulated parallel completion time
  double work_ns = 0.0;        ///< T1: total priced work incl. overheads
  double pure_work_ns = 0.0;   ///< T1 without scheduling overheads
  double span_ns = 0.0;        ///< T-infinity (critical path, no overheads)
  std::uint64_t steals = 0;    ///< successful task migrations
  std::uint64_t segments = 0;  ///< executed segments (leaves+descends+combines)

  /// Fraction of processor-time spent on work: work_ns / (P * makespan).
  double utilization() const {
    return makespan_ns > 0.0
               ? work_ns / (static_cast<double>(processors) * makespan_ns)
               : 0.0;
  }

  /// Speedup relative to a given sequential time.
  double speedup_vs(double sequential_ns) const {
    return makespan_ns > 0.0 ? sequential_ns / makespan_ns : 0.0;
  }

  /// Brent's bound on the P-processor completion time predicted from the
  /// priced work and span: T_P <= T1/P + T∞. The measured counterpart is
  /// observe::CriticalPathStats::brent_bound_ns — comparing the two is how
  /// a real run is checked against the model (docs/benchmarking.md).
  double brent_bound_ns() const {
    return processors == 0
               ? 0.0
               : work_ns / static_cast<double>(processors) + span_ns;
  }

  /// Inherent parallelism of the trace, T1/T∞.
  double parallelism() const {
    return span_ns > 0.0 ? work_ns / span_ns : 0.0;
  }
};

/// Virtual machine executing task traces on P simulated processors.
class Simulator {
 public:
  Simulator(CostModel model, unsigned processors);

  /// Simulate the trace; deterministic for fixed (model, processors).
  SimResult run(const TaskTrace& trace) const;

  const CostModel& model() const noexcept { return model_; }
  unsigned processors() const noexcept { return processors_; }

 private:
  CostModel model_;
  unsigned processors_;
};

}  // namespace pls::simmachine
