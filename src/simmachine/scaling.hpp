// Scaling-curve helpers: run one trace across a processor sweep and
// summarise strong-scaling behaviour (speedup, efficiency, the knee).
#pragma once

#include <algorithm>
#include <vector>

#include "simmachine/scheduler.hpp"

namespace pls::simmachine {

struct ScalingPoint {
  unsigned processors = 1;
  double makespan_ns = 0.0;
  double speedup = 1.0;     ///< T1 / TP
  double efficiency = 1.0;  ///< speedup / P
};

struct ScalingCurve {
  std::vector<ScalingPoint> points;

  /// Largest processor count with efficiency >= threshold (the scaling
  /// knee); returns 1 if even P=1 misses the threshold.
  unsigned knee(double efficiency_threshold = 0.5) const {
    unsigned best = 1;
    for (const auto& p : points) {
      if (p.efficiency >= efficiency_threshold) best = p.processors;
    }
    return best;
  }

  double max_speedup() const {
    double best = 0.0;
    for (const auto& p : points) best = std::max(best, p.speedup);
    return best;
  }
};

/// Simulate `trace` for each processor count in `sweep` under `model`.
/// The P=1 run defines T1 (so overheads are included consistently).
inline ScalingCurve scaling_curve(const TaskTrace& trace,
                                  const CostModel& model,
                                  const std::vector<unsigned>& sweep) {
  PLS_CHECK(!sweep.empty(), "scaling_curve needs at least one point");
  ScalingCurve curve;
  const double t1 = Simulator(model, 1).run(trace).makespan_ns;
  for (unsigned p : sweep) {
    const SimResult r = Simulator(model, p).run(trace);
    ScalingPoint point;
    point.processors = p;
    point.makespan_ns = r.makespan_ns;
    point.speedup = r.makespan_ns > 0.0 ? t1 / r.makespan_ns : 0.0;
    point.efficiency = point.speedup / static_cast<double>(p);
    curve.points.push_back(point);
  }
  return curve;
}

}  // namespace pls::simmachine
