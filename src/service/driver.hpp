// ServiceDriver: multiplexes many ServiceSessions over one ForkJoinPool.
//
// The driver owns no threads of its own for draining — it is a scheduler
// front-end. pump() scans the sessions, claims each one that has queued
// elements, and submits its drain as a fire-and-forget pool task
// (ForkJoinPool::submit); thousands of sessions therefore share the
// pool's workers, and a drain task costs the pool exactly what any other
// external submission does. The per-session claim flag keeps window
// state sequential (one drain in flight per session) while drains of
// different sessions run concurrently.
//
// Two ways to run the pump:
//   - call pump() yourself whenever producers have made progress
//     (deterministic, what the tests do);
//   - start(interval) a background pump thread that scans periodically
//     (the continuous-service deployment; stop()/destructor joins it).
//
// drain_all() is the quiescence barrier: it pumps with drain_all=true
// and waits until every submitted drain finished and no session has
// queued elements left — the service-side analogue of a terminal
// returning. The destructor stops the pump, quiesces, and deregisters
// the metrics source, so a driver can never outlive-dangle its sessions
// or its telemetry callback.
//
// Telemetry: one MetricsRegistry source per driver exporting aggregate
// gauges (session count, total/max queue depth, shed and batch totals,
// p50/p99 batch latency over all sessions) plus per-session queue-depth
// rows for small fleets (< kPerSessionRowLimit, so a 10k-session driver
// does not flood the exposition).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "forkjoin/pool.hpp"
#include "observe/histogram.hpp"
#include "observe/metrics.hpp"
#include "service/session.hpp"
#include "support/assert.hpp"

namespace pls::service {

class ServiceDriver {
 public:
  /// Per-session metric rows are emitted only below this session count.
  static constexpr std::size_t kPerSessionRowLimit = 32;

  explicit ServiceDriver(forkjoin::ForkJoinPool* pool = nullptr)
      : pool_(pool) {
    metrics_source_ = observe::MetricsRegistry::global().add_source(
        [this](observe::MetricsSample& sample) { append_metrics(sample); });
  }

  ~ServiceDriver() {
    stop();
    quiesce();
    // remove_source blocks until no in-flight collect() can still call
    // the callback, so destroying members below is safe.
    observe::MetricsRegistry::global().remove_source(metrics_source_);
  }

  ServiceDriver(const ServiceDriver&) = delete;
  ServiceDriver& operator=(const ServiceDriver&) = delete;

  forkjoin::ForkJoinPool& pool() const {
    return pool_ != nullptr ? *pool_ : forkjoin::ForkJoinPool::common();
  }

  /// Register a session; the driver keeps it alive (shared) until
  /// destruction. Returns the session unchanged for chaining.
  template <typename S>
  std::shared_ptr<S> add(std::shared_ptr<S> session) {
    static_assert(std::is_base_of_v<SessionBase, S>,
                  "driver sessions derive from SessionBase");
    std::shared_ptr<SessionBase> base = session;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      sessions_.push_back(std::move(base));
    }
    return session;
  }

  /// Session-id dispenser for the facade (ids are labels, not indices).
  std::uint64_t next_session_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  std::size_t session_count() const {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    return sessions_.size();
  }

  /// One scheduling sweep: submit a drain task for every ready,
  /// unclaimed session. Returns how many tasks were submitted. The task
  /// holds the session by shared_ptr, so a session stays alive for its
  /// in-flight drain even if the driver is destroyed concurrently —
  /// though quiesce() in the destructor makes that moot.
  std::size_t pump(bool drain_all = false) {
    std::vector<std::shared_ptr<SessionBase>> snapshot;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      snapshot = sessions_;
    }
    std::size_t submitted = 0;
    for (auto& s : snapshot) {
      if (!s->ready() || !s->try_claim()) continue;
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      ++submitted;
      pool().submit([this, s, drain_all] {
        s->drain(drain_all);
        s->release();
        if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Taking the lock before notifying closes the race against a
          // quiesce() waiter between its predicate check and its sleep.
          std::lock_guard<std::mutex> lock(quiesce_mutex_);
          quiesce_cv_.notify_all();
        }
      });
    }
    return submitted;
  }

  /// Wait until every submitted drain task finished.
  void quiesce() {
    std::unique_lock<std::mutex> lock(quiesce_mutex_);
    quiesce_cv_.wait(lock, [&] {
      return in_flight_.load(std::memory_order_acquire) == 0;
    });
  }

  /// Drain every session dry and wait for completion: pump (each drain
  /// emptying its queue), quiesce, and repeat until a fully quiesced
  /// sweep finds no session with queued elements. The re-check after
  /// quiescence matters: a sweep can submit nothing because earlier
  /// pump() tasks still hold session claims, and a single-batch drain
  /// from such a task may leave elements behind.
  void drain_all() {
    for (;;) {
      pump(/*drain_all=*/true);
      quiesce();
      std::vector<std::shared_ptr<SessionBase>> snapshot;
      {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        snapshot = sessions_;
      }
      bool any_ready = false;
      for (const auto& s : snapshot) {
        if (s->ready()) {
          any_ready = true;
          break;
        }
      }
      if (!any_ready) return;
    }
  }

  /// Start the background pump thread (idempotent).
  void start(std::chrono::milliseconds interval = std::chrono::milliseconds(1)) {
    std::lock_guard<std::mutex> lock(pump_mutex_);
    if (pump_thread_.joinable()) return;
    pump_stop_.store(false, std::memory_order_release);
    pump_thread_ = std::thread([this, interval] {
      while (!pump_stop_.load(std::memory_order_acquire)) {
        pump(false);
        std::this_thread::sleep_for(interval);
      }
    });
  }

  /// Stop and join the background pump thread (idempotent; in-flight
  /// drain tasks keep running — quiesce() waits for those).
  void stop() {
    std::lock_guard<std::mutex> lock(pump_mutex_);
    if (!pump_thread_.joinable()) return;
    pump_stop_.store(true, std::memory_order_release);
    pump_thread_.join();
    pump_thread_ = std::thread();
  }

 private:
  void append_metrics(observe::MetricsSample& sample) const {
    std::vector<std::shared_ptr<SessionBase>> snapshot;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      snapshot = sessions_;
    }
    std::size_t depth_total = 0;
    std::size_t depth_max = 0;
    std::uint64_t shed_total = 0;
    std::uint64_t batches_total = 0;
    observe::HistogramSnapshot batch_latency;
    for (const auto& s : snapshot) {
      const QueueStats q = s->queue_stats();
      depth_total += q.depth;
      if (q.depth > depth_max) depth_max = q.depth;
      shed_total += q.shed;
      batches_total += q.batches;
      batch_latency += s->latency();
    }
    using observe::MetricKind;
    using observe::MetricRow;
    sample.rows.push_back(MetricRow{
        "pls_service_sessions", MetricKind::kGauge,
        static_cast<double>(snapshot.size()), "", "",
        "Sessions registered with this service driver"});
    sample.rows.push_back(MetricRow{
        "pls_service_queue_depth_total", MetricKind::kGauge,
        static_cast<double>(depth_total), "", "",
        "Queued elements across all session ingest queues"});
    sample.rows.push_back(MetricRow{
        "pls_service_queue_depth_max", MetricKind::kGauge,
        static_cast<double>(depth_max), "", "",
        "Deepest current session ingest queue"});
    sample.rows.push_back(MetricRow{
        "pls_service_shed_total", MetricKind::kCounter,
        static_cast<double>(shed_total), "", "",
        "Elements shed by overload policies across all sessions"});
    sample.rows.push_back(MetricRow{
        "pls_service_batches_total", MetricKind::kCounter,
        static_cast<double>(batches_total), "", "",
        "Micro-batches drained across all sessions"});
    const double scale = observe::ns_per_tick();
    sample.rows.push_back(MetricRow{
        "pls_service_batch_latency_ns", MetricKind::kGauge,
        batch_latency.quantile(0.5, scale), "quantile", "0.5",
        "Batch service-time quantiles across all sessions (nanoseconds)"});
    sample.rows.push_back(MetricRow{
        "pls_service_batch_latency_ns", MetricKind::kGauge,
        batch_latency.quantile(0.99, scale), "quantile", "0.99",
        "Batch service-time quantiles across all sessions (nanoseconds)"});
    if (snapshot.size() < kPerSessionRowLimit) {
      for (const auto& s : snapshot) {
        const QueueStats q = s->queue_stats();
        sample.rows.push_back(MetricRow{
            "pls_service_queue_depth", MetricKind::kGauge,
            static_cast<double>(q.depth), "session", std::to_string(s->id()),
            "Queued elements in one session's ingest queue"});
      }
    }
  }

  forkjoin::ForkJoinPool* pool_;

  mutable std::mutex sessions_mutex_;
  std::vector<std::shared_ptr<SessionBase>> sessions_;
  std::atomic<std::uint64_t> next_id_{0};

  std::atomic<std::size_t> in_flight_{0};
  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;

  std::mutex pump_mutex_;
  std::thread pump_thread_;
  std::atomic<bool> pump_stop_{false};

  std::uint64_t metrics_source_ = 0;
};

}  // namespace pls::service
